//===- lp/Simplex.h - bounded-variable revised simplex ---------*- C++ -*-===//
///
/// \file
/// Revised primal simplex for bounded-variable LPs, replacing the Gurobi
/// solver used in the paper's evaluation. Internally the general form of
/// lp/LinearProgram.h is rewritten as
///
///   A x - s = 0,   VarLo <= x <= VarHi,   RowLo <= s <= RowHi,
///
/// and solved with a dense basis inverse maintained by product-form
/// (eta) updates. Features: composite phase-1 (infeasibility
/// minimization), Dantzig pricing with Bland's rule anti-cycling
/// fallback, row equilibration, periodic refactorization with
/// a final clean-solve verification before an Optimal status is
/// reported, and dual values for optimality certificates.
///
//===----------------------------------------------------------------------===//

#ifndef PRDNN_LP_SIMPLEX_H
#define PRDNN_LP_SIMPLEX_H

#include "lp/LinearProgram.h"

#include <atomic>
#include <vector>

namespace prdnn {
namespace lp {

enum class SolveStatus {
  Optimal,
  Infeasible,
  Unbounded,
  IterationLimit,
  NumericalError,
  /// The caller's SimplexOptions::CancelFlag became true; the solve
  /// stopped cooperatively between iterations.
  Cancelled,
};

const char *toString(SolveStatus Status);

struct SimplexOptions {
  /// Primal feasibility tolerance (applied to row-scaled data).
  double FeasTol = 1e-7;
  /// Reduced-cost (dual feasibility) tolerance.
  double OptTol = 1e-7;
  /// Smallest pivot magnitude accepted during ratio tests.
  double PivotTol = 1e-9;
  /// Hard cap on total simplex iterations across both phases.
  int MaxIterations = 200000;
  /// Equilibrate rows by their largest coefficient magnitude.
  bool ScaleRows = true;
  /// Iterations without objective progress before switching to Bland's
  /// rule (guards against cycling under degeneracy).
  int StallLimit = 300;
  /// Recompute the basis inverse from scratch every this many pivots.
  int RefactorInterval = 2000;
  /// Optional cooperative-cancellation flag, polled between simplex
  /// iterations (the engine points this at its job's JobContext). When
  /// it becomes true the solve returns SolveStatus::Cancelled. The
  /// pointee must outlive the solve; null disables polling.
  const std::atomic<bool> *CancelFlag = nullptr;
};

struct LpSolution {
  SolveStatus Status = SolveStatus::NumericalError;
  /// Values of the structural variables (empty unless Optimal).
  std::vector<double> X;
  /// Objective value c . X.
  double Objective = 0.0;
  /// Dual value per row (unscaled); Lagrange multipliers of the row
  /// constraints at optimality.
  std::vector<double> RowDuals;
  int Iterations = 0;
  int Phase1Iterations = 0;
};

/// Solves \p Problem; never throws. Statuses other than Optimal leave
/// LpSolution::X empty (Infeasible/Unbounded are definitive answers;
/// IterationLimit/NumericalError are solver failures).
LpSolution solveLp(const LinearProgram &Problem,
                   const SimplexOptions &Options = SimplexOptions());

} // namespace lp
} // namespace prdnn

#endif // PRDNN_LP_SIMPLEX_H
