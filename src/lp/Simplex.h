//===- lp/Simplex.h - bounded-variable revised simplex ---------*- C++ -*-===//
///
/// \file
/// Revised primal simplex for bounded-variable LPs, replacing the Gurobi
/// solver used in the paper's evaluation. Internally the general form of
/// lp/LinearProgram.h is rewritten as
///
///   A x - s = 0,   VarLo <= x <= VarHi,   RowLo <= s <= RowHi,
///
/// and solved with a dense basis inverse maintained by product-form
/// (eta) updates. Features: composite phase-1 (infeasibility
/// minimization), Dantzig pricing with Bland's rule anti-cycling
/// fallback, row equilibration, periodic refactorization with
/// a final clean-solve verification before an Optimal status is
/// reported, and dual values for optimality certificates.
///
/// The dense inner kernels (pricing, FTRAN/BTRAN, refactorization, eta
/// update, ratio-test preselection) run blocked and parallel on the
/// shared support/Parallel.h pool once the problem reaches
/// SimplexOptions::ParallelMinDim kept rows; below that - or with
/// SimplexOptions::ParallelKernels off (the ablation baseline) - the
/// scalar reference kernels run instead. Both paths are bit-for-bit
/// identical at any thread count: identical pivot sequences, identical
/// LpSolution bits (see src/lp/README.md for the determinism contract).
///
//===----------------------------------------------------------------------===//

#ifndef PRDNN_LP_SIMPLEX_H
#define PRDNN_LP_SIMPLEX_H

#include "linalg/Kernels.h"
#include "lp/LinearProgram.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace prdnn {
namespace lp {

enum class SolveStatus {
  Optimal,
  Infeasible,
  Unbounded,
  IterationLimit,
  NumericalError,
  /// The caller's SimplexOptions::CancelFlag became true; the solve
  /// stopped cooperatively between iterations.
  Cancelled,
};

const char *toString(SolveStatus Status);

/// A snapshot of the solver's terminal basis, exported from an Optimal
/// solve (SimplexOptions::ExportBasis) and re-injectable into a later
/// solve of a structurally identical LP (SimplexOptions::WarmBasis).
/// Dimensions are in the solver's internal shape: NumRows kept rows M
/// (rows with at least one nonzero coefficient) and NumVars total
/// variables NT = structurals + M slacks. Basic[r] is the variable
/// basic in kept row r; NonbasicState[j] is the VarStatus byte of
/// variable j (0 basic, 1 at lower, 2 at upper, 3 free-nonbasic).
/// Pivots records how many pivots the exporting solve spent - metadata
/// for cache diagnostics, never consulted by the solver.
///
/// A warm basis is advisory: the solver validates it structurally,
/// refactorizes it once, and falls back bit-exactly to the cold slack
/// basis if it is malformed, singular, or dimensioned for a different
/// LP. See src/lp/README.md ("warm starts and determinism").
struct SimplexBasis {
  int NumRows = 0;
  int NumVars = 0;
  std::vector<int> Basic;
  std::vector<std::uint8_t> NonbasicState;
  int Pivots = 0;
};

struct SimplexOptions {
  /// Primal feasibility tolerance (applied to row-scaled data).
  double FeasTol = 1e-7;
  /// Reduced-cost (dual feasibility) tolerance.
  double OptTol = 1e-7;
  /// Smallest pivot magnitude accepted during ratio tests.
  double PivotTol = 1e-9;
  /// Hard cap on total simplex iterations across both phases.
  int MaxIterations = 200000;
  /// Equilibrate rows by their largest coefficient magnitude.
  bool ScaleRows = true;
  /// Iterations without objective progress before switching to Bland's
  /// rule (guards against cycling under degeneracy).
  int StallLimit = 300;
  /// Recompute the basis inverse from scratch every this many pivots.
  int RefactorInterval = 2000;
  /// Optional cooperative-cancellation flag, polled between simplex
  /// iterations (the engine points this at its job's JobContext). When
  /// it becomes true the solve returns SolveStatus::Cancelled. The
  /// pointee must outlive the solve; null disables polling.
  const std::atomic<bool> *CancelFlag = nullptr;
  /// Run the blocked/parallel inner kernels on the shared thread pool.
  /// Off is the scalar-kernels ablation baseline; both settings produce
  /// bit-for-bit identical solutions and pivot sequences.
  bool ParallelKernels = true;
  /// Minimum kept-row count M before the parallel kernels engage;
  /// smaller LPs (the many per-layer solves of an engine sweep) run the
  /// scalar kernels and pay no pool-dispatch overhead. Results are
  /// identical either way; this only moves the crossover.
  int ParallelMinDim = 192;
  /// Optional warm-start basis (advisory; see SimplexBasis). When
  /// non-null and structurally valid for this LP, the solve starts from
  /// it after one fresh refactorization instead of the slack basis; on
  /// any validation or factorization failure the solver silently runs
  /// the cold path, bit-for-bit. The pointee must outlive the solve.
  /// Replaying the terminal basis of the *identical* LP re-derives the
  /// cold solution bit-for-bit at zero pivots; warm-starting a merely
  /// similar LP (e.g. drifted bounds) yields an optimal solution that
  /// may differ from that LP's cold solve in low-order bits when the
  /// optimum is not unique at tolerance - callers needing strict
  /// bit-identity must gate on exact LP equality, as the repair
  /// engine's basis cache does (core/PointRepair.cpp).
  const SimplexBasis *WarmBasis = nullptr;
  /// Export the terminal basis of an Optimal solve into
  /// LpSolution::OptimalBasis (off by default: the snapshot copies
  /// O(M + NT) ints, which the common non-cached solve never needs).
  bool ExportBasis = false;
  /// Kernel determinism tier for the dense inner loops (pricing dots,
  /// FTRAN/BTRAN, refactorization elimination, eta updates). Strict is
  /// the bit-for-bit contract above. Fast vectorizes those loops; the
  /// rounding drift can change pivot choices near ties, so Fast solves
  /// are verified at the *solution* level (status, objective,
  /// feasibility within tolerance - bench_kernel_backends), never by
  /// pivot hash, and warm-start basis caching is restricted to Strict
  /// (core/PointRepair.cpp).
  linalg::Determinism Determinism = linalg::Determinism::Strict;
};

/// Per-solve counters and kernel timings, returned in LpSolution::Stats
/// and accumulated into RepairStats::LpKernels by the repair pipeline.
/// PivotHash is an order-sensitive FNV-1a digest of the pivot sequence
/// (entering index, direction, bound flip / leaving row per step);
/// tests compare it across thread counts to assert the parallel kernels
/// reproduce the scalar pivot path exactly.
struct SimplexStats {
  int Iterations = 0;
  int Pivots = 0;
  int BoundFlips = 0;
  int Refactors = 0;
  std::uint64_t PivotHash = 0xcbf29ce484222325ULL; // FNV-1a offset basis
  double PricingSeconds = 0.0;
  double FtranSeconds = 0.0;
  double BtranSeconds = 0.0;
  double RatioSeconds = 0.0;
  double UpdateSeconds = 0.0;
  double RefactorSeconds = 0.0;
  /// Whether this solve ran the parallel kernels (ParallelKernels on
  /// and M >= ParallelMinDim).
  bool ParallelKernels = false;

  /// Total seconds attributed to the six instrumented kernels.
  double kernelSeconds() const {
    return PricingSeconds + FtranSeconds + BtranSeconds + RatioSeconds +
           UpdateSeconds + RefactorSeconds;
  }

  /// Folds \p Other in (counter sums, order-sensitive hash mix); used
  /// to aggregate the per-solve stats of a multi-round repair.
  void accumulate(const SimplexStats &Other) {
    Iterations += Other.Iterations;
    Pivots += Other.Pivots;
    BoundFlips += Other.BoundFlips;
    Refactors += Other.Refactors;
    PivotHash = (PivotHash ^ Other.PivotHash) * 0x100000001b3ULL;
    PricingSeconds += Other.PricingSeconds;
    FtranSeconds += Other.FtranSeconds;
    BtranSeconds += Other.BtranSeconds;
    RatioSeconds += Other.RatioSeconds;
    UpdateSeconds += Other.UpdateSeconds;
    RefactorSeconds += Other.RefactorSeconds;
    ParallelKernels = ParallelKernels || Other.ParallelKernels;
  }
};

struct LpSolution {
  SolveStatus Status = SolveStatus::NumericalError;
  /// Values of the structural variables (empty unless Optimal).
  std::vector<double> X;
  /// Objective value c . X.
  double Objective = 0.0;
  /// Dual value per row (unscaled); Lagrange multipliers of the row
  /// constraints at optimality.
  std::vector<double> RowDuals;
  int Iterations = 0;
  int Phase1Iterations = 0;
  /// Pivot counts, refactorizations, pivot-sequence hash, and
  /// per-kernel seconds for this solve (stamped on every status).
  SimplexStats Stats;
  /// The terminal basis (Optimal solves with ExportBasis only).
  std::shared_ptr<const SimplexBasis> OptimalBasis;
  /// Whether this solve actually started from SimplexOptions::WarmBasis
  /// (i.e. the warm basis passed validation and refactorized); false
  /// when no warm basis was supplied or the cold fallback ran.
  bool WarmStarted = false;
};

/// Solves \p Problem; never throws. Statuses other than Optimal leave
/// LpSolution::X empty (Infeasible/Unbounded are definitive answers;
/// IterationLimit/NumericalError are solver failures).
LpSolution solveLp(const LinearProgram &Problem,
                   const SimplexOptions &Options = SimplexOptions());

} // namespace lp
} // namespace prdnn

#endif // PRDNN_LP_SIMPLEX_H
