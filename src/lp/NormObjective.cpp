//===- lp/NormObjective.cpp ------------------------------------------------===//

#include "lp/NormObjective.h"

#include "support/Error.h"

#include <cassert>
#include <cmath>

using namespace prdnn;
using namespace prdnn::lp;

const char *prdnn::lp::toString(Norm N) {
  switch (N) {
  case Norm::L1:
    return "l1";
  case Norm::LInf:
    return "linf";
  case Norm::L1PlusLInf:
    return "l1+linf";
  }
  PRDNN_UNREACHABLE("bad Norm");
}

DeltaLp::DeltaLp(int NumDelta, Norm Objective, double Bound,
                 double LInfWeight)
    : NumDelta(NumDelta), Objective(Objective), LInfWeight(LInfWeight) {
  assert(NumDelta >= 0 && "negative delta dimension");
  assert(Bound > 0.0 && "delta box bound must be positive");

  switch (Objective) {
  case Norm::L1:
  case Norm::L1PlusLInf: {
    // Delta_j = P_j - Q_j with P_j, Q_j in [0, Bound]; minimizing
    // sum(P+Q) makes min(P_j, Q_j) = 0 at any optimum, so the objective
    // equals |Delta|_1. No extra rows are needed, which matters because
    // simplex cost scales with the square of the row count.
    PosBase = Problem.numVariables();
    for (int J = 0; J < NumDelta; ++J)
      Problem.addVariable(0.0, Bound, 1.0);
    NegBase = Problem.numVariables();
    for (int J = 0; J < NumDelta; ++J)
      Problem.addVariable(0.0, Bound, 1.0);
    if (Objective == Norm::L1PlusLInf) {
      TVar = Problem.addVariable(0.0, Bound, LInfWeight);
      // P_j + Q_j - T <= 0 encodes |Delta_j| <= T given split
      // optimality.
      for (int J = 0; J < NumDelta; ++J)
        Problem.addRowLe({PosBase + J, NegBase + J, TVar},
                         {1.0, 1.0, -1.0}, 0.0);
    }
    break;
  }
  case Norm::LInf: {
    DeltaBase = Problem.numVariables();
    for (int J = 0; J < NumDelta; ++J)
      Problem.addVariable(-Bound, Bound, 0.0);
    TVar = Problem.addVariable(0.0, Bound, 1.0);
    for (int J = 0; J < NumDelta; ++J) {
      Problem.addRowLe({DeltaBase + J, TVar}, {1.0, -1.0}, 0.0);
      Problem.addRowLe({DeltaBase + J, TVar}, {-1.0, -1.0}, 0.0);
    }
    break;
  }
  }
}

void DeltaLp::addConstraint(const std::vector<double> &Coef, double Lo,
                            double Hi, double DropTol) {
  assert(static_cast<int>(Coef.size()) == NumDelta &&
         "constraint dimension mismatch");
  std::vector<int> Index;
  std::vector<double> Value;
  for (int J = 0; J < NumDelta; ++J) {
    double C = Coef[static_cast<size_t>(J)];
    if (std::fabs(C) <= DropTol)
      continue;
    if (DeltaBase >= 0) {
      Index.push_back(DeltaBase + J);
      Value.push_back(C);
    } else {
      Index.push_back(PosBase + J);
      Value.push_back(C);
      Index.push_back(NegBase + J);
      Value.push_back(-C);
    }
  }
  Problem.addRow(std::move(Index), std::move(Value), Lo, Hi);
}

std::vector<double> DeltaLp::extractDelta(const std::vector<double> &X) const {
  assert(static_cast<int>(X.size()) == Problem.numVariables() &&
         "solution dimension mismatch");
  std::vector<double> Delta(static_cast<size_t>(NumDelta));
  for (int J = 0; J < NumDelta; ++J) {
    if (DeltaBase >= 0)
      Delta[J] = X[static_cast<size_t>(DeltaBase + J)];
    else
      Delta[J] = X[static_cast<size_t>(PosBase + J)] -
                 X[static_cast<size_t>(NegBase + J)];
  }
  return Delta;
}

double DeltaLp::objectiveValue(const std::vector<double> &Delta) const {
  double L1 = 0.0, LInf = 0.0;
  for (double D : Delta) {
    L1 += std::fabs(D);
    LInf = std::max(LInf, std::fabs(D));
  }
  switch (Objective) {
  case Norm::L1:
    return L1;
  case Norm::LInf:
    return LInf;
  case Norm::L1PlusLInf:
    return L1 + LInfWeight * LInf;
  }
  PRDNN_UNREACHABLE("bad Norm");
}
