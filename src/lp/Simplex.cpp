//===- lp/Simplex.cpp - bounded-variable revised simplex -------------------===//
//
// Implementation notes. The LP
//
//   min c.x   s.t.  RowLo <= A x <= RowHi,  VarLo <= x <= VarHi
//
// is rewritten with one slack per row as the equality system
//
//   [A | -I] z = 0,    z = (x, s),   s_i in [RowLo_i, RowHi_i].
//
// The initial basis is the slack set (basis matrix -I), which is always
// nonsingular; phase 1 then minimizes the total bound violation of the
// basic variables (composite phase-1 for bounded variables, cf. Chvatal
// ch. 8), after which phase 2 minimizes the true objective. The basis
// inverse is kept densely and updated with product-form (eta) pivots;
// it is recomputed from scratch by Gauss-Jordan elimination periodically
// and before any terminal status is reported, so returned solutions are
// always re-verified against a freshly factorized basis.
//
//===----------------------------------------------------------------------===//

#include "lp/Simplex.h"

#include "support/Error.h"

#include <cassert>
#include <cmath>
#include <cstdint>

using namespace prdnn;
using namespace prdnn::lp;

const char *prdnn::lp::toString(SolveStatus Status) {
  switch (Status) {
  case SolveStatus::Optimal:
    return "Optimal";
  case SolveStatus::Infeasible:
    return "Infeasible";
  case SolveStatus::Unbounded:
    return "Unbounded";
  case SolveStatus::IterationLimit:
    return "IterationLimit";
  case SolveStatus::NumericalError:
    return "NumericalError";
  case SolveStatus::Cancelled:
    return "Cancelled";
  }
  PRDNN_UNREACHABLE("bad SolveStatus");
}

namespace {

enum class VarStatus : uint8_t { Basic, AtLower, AtUpper, FreeNb };

/// One simplex solve; owns all scaled problem data and factorizations.
class Worker {
public:
  Worker(const LinearProgram &Problem, const SimplexOptions &Options)
      : Prob(Problem), Opt(Options) {}

  LpSolution run();

private:
  const LinearProgram &Prob;
  SimplexOptions Opt;

  // Shapes: M kept rows, NS structural variables, NT = NS + M total.
  int M = 0, NS = 0, NT = 0;
  std::vector<int> KeptRows;     // worker row -> original row index
  std::vector<double> ColA;      // column-major scaled A, entry (i,j) at
                                 // j*M + i
  std::vector<double> RowScale;  // per kept row
  std::vector<double> Lo, Hi, Cost; // per total variable
  std::vector<int> Basis;           // var basic in each row
  std::vector<VarStatus> Stat;      // per total variable
  std::vector<double> X;            // per total variable
  std::vector<double> Binv;         // dense M*M, row-major
  std::vector<double> W, Y, Cb, Rhs;

  int Iterations = 0;
  int Phase1Iterations = 0;
  int PivotsSinceRefactor = 0;
  bool Bland = false;
  int Stall = 0;
  double PrevObj = 0.0;
  bool HavePrevObj = false;

  bool buildProblem(LpSolution &Out); // false => Out holds final status
  void initialBasis();
  bool refactor();
  void recomputeBasicValues();
  double infeasibility() const;
  double currentObjective() const;
  double columnDot(const std::vector<double> &Vec, int J) const;
  void computeColumn(int J);
  void computeDuals();
  bool isFixed(int J) const { return Hi[J] - Lo[J] <= 1e-30; }

  int chooseEntering(bool Phase1, int &SigmaOut);

  struct RatioResult {
    double T = 0.0;
    int Row = -1;
    bool LeaveAtUpper = false;
    bool BoundFlip = false;
    bool Unbounded = false;
  };
  RatioResult ratioTest(int J, int Sigma, bool Phase1);
  void applyStep(int J, int Sigma, const RatioResult &R);
  void updateBinv(int PivotRow);

  SolveStatus iterate(bool Phase1);
  LpSolution finish(SolveStatus Status);
};

bool Worker::buildProblem(LpSolution &Out) {
  NS = Prob.numVariables();

  // Light presolve: drop rows with no nonzero coefficients. Such a row
  // is vacuous when 0 lies within its bounds and makes the whole LP
  // infeasible otherwise.
  for (int I = 0; I < Prob.numRows(); ++I) {
    const LpRow &Row = Prob.row(I);
    bool HasNonzero = false;
    for (double V : Row.Value)
      if (V != 0.0)
        HasNonzero = true;
    if (HasNonzero) {
      KeptRows.push_back(I);
      continue;
    }
    if (Row.Lo > Opt.FeasTol || Row.Hi < -Opt.FeasTol) {
      Out = LpSolution();
      Out.Status = SolveStatus::Infeasible;
      return false;
    }
  }
  M = static_cast<int>(KeptRows.size());
  NT = NS + M;

  // Row equilibration: divide each row (and its bounds) by its largest
  // coefficient magnitude so feasibility tolerances are meaningful.
  RowScale.assign(static_cast<size_t>(M), 1.0);
  if (Opt.ScaleRows) {
    for (int R = 0; R < M; ++R) {
      const LpRow &Row = Prob.row(KeptRows[R]);
      double MaxAbs = 0.0;
      for (double V : Row.Value)
        MaxAbs = std::max(MaxAbs, std::fabs(V));
      if (MaxAbs > 0.0)
        RowScale[R] = MaxAbs;
    }
  }

  ColA.assign(static_cast<size_t>(M) * static_cast<size_t>(NS), 0.0);
  for (int R = 0; R < M; ++R) {
    const LpRow &Row = Prob.row(KeptRows[R]);
    for (size_t K = 0; K < Row.Index.size(); ++K) {
      int J = Row.Index[K];
      ColA[static_cast<size_t>(J) * M + R] += Row.Value[K] / RowScale[R];
    }
  }

  Lo.resize(NT);
  Hi.resize(NT);
  Cost.assign(static_cast<size_t>(NT), 0.0);
  for (int J = 0; J < NS; ++J) {
    Lo[J] = Prob.variableLo(J);
    Hi[J] = Prob.variableHi(J);
    Cost[J] = Prob.objectiveCoef(J);
  }
  for (int R = 0; R < M; ++R) {
    const LpRow &Row = Prob.row(KeptRows[R]);
    Lo[NS + R] = Row.Lo / RowScale[R];
    Hi[NS + R] = Row.Hi / RowScale[R];
  }
  return true;
}

void Worker::initialBasis() {
  Basis.resize(M);
  Stat.assign(static_cast<size_t>(NT), VarStatus::AtLower);
  X.assign(static_cast<size_t>(NT), 0.0);
  Binv.assign(static_cast<size_t>(M) * M, 0.0);
  W.resize(M);
  Y.resize(M);
  Cb.resize(M);
  Rhs.resize(M);

  for (int J = 0; J < NS; ++J) {
    bool LoFinite = std::isfinite(Lo[J]);
    bool HiFinite = std::isfinite(Hi[J]);
    if (!LoFinite && !HiFinite) {
      Stat[J] = VarStatus::FreeNb;
      X[J] = 0.0;
    } else if (LoFinite && (!HiFinite || std::fabs(Lo[J]) <= std::fabs(Hi[J]))) {
      Stat[J] = VarStatus::AtLower;
      X[J] = Lo[J];
    } else {
      Stat[J] = VarStatus::AtUpper;
      X[J] = Hi[J];
    }
  }
  for (int R = 0; R < M; ++R) {
    Basis[R] = NS + R;
    Stat[NS + R] = VarStatus::Basic;
    Binv[static_cast<size_t>(R) * M + R] = -1.0;
  }
  recomputeBasicValues();
}

bool Worker::refactor() {
  // Rebuild Binv from the current basis by Gauss-Jordan elimination with
  // partial pivoting.
  std::vector<double> B(static_cast<size_t>(M) * M, 0.0);
  for (int R = 0; R < M; ++R) {
    int J = Basis[R];
    if (J < NS) {
      const double *Col = ColA.data() + static_cast<size_t>(J) * M;
      for (int I = 0; I < M; ++I)
        B[static_cast<size_t>(I) * M + R] = Col[I];
    } else {
      B[static_cast<size_t>(J - NS) * M + R] = -1.0;
    }
  }
  std::vector<double> Inv(static_cast<size_t>(M) * M, 0.0);
  for (int I = 0; I < M; ++I)
    Inv[static_cast<size_t>(I) * M + I] = 1.0;

  for (int K = 0; K < M; ++K) {
    int Pivot = K;
    double Best = std::fabs(B[static_cast<size_t>(K) * M + K]);
    for (int I = K + 1; I < M; ++I) {
      double Mag = std::fabs(B[static_cast<size_t>(I) * M + K]);
      if (Mag > Best) {
        Best = Mag;
        Pivot = I;
      }
    }
    if (Best < 1e-12)
      return false;
    if (Pivot != K)
      for (int C = 0; C < M; ++C) {
        std::swap(B[static_cast<size_t>(K) * M + C],
                  B[static_cast<size_t>(Pivot) * M + C]);
        std::swap(Inv[static_cast<size_t>(K) * M + C],
                  Inv[static_cast<size_t>(Pivot) * M + C]);
      }
    double Scale = 1.0 / B[static_cast<size_t>(K) * M + K];
    for (int C = 0; C < M; ++C) {
      B[static_cast<size_t>(K) * M + C] *= Scale;
      Inv[static_cast<size_t>(K) * M + C] *= Scale;
    }
    for (int I = 0; I < M; ++I) {
      if (I == K)
        continue;
      double Factor = B[static_cast<size_t>(I) * M + K];
      if (Factor == 0.0)
        continue;
      for (int C = 0; C < M; ++C) {
        B[static_cast<size_t>(I) * M + C] -=
            Factor * B[static_cast<size_t>(K) * M + C];
        Inv[static_cast<size_t>(I) * M + C] -=
            Factor * Inv[static_cast<size_t>(K) * M + C];
      }
    }
  }
  Binv = std::move(Inv);
  PivotsSinceRefactor = 0;
  return true;
}

void Worker::recomputeBasicValues() {
  // Basic values solve B xB = -N xN (the equality rhs is zero).
  std::fill(Rhs.begin(), Rhs.end(), 0.0);
  for (int J = 0; J < NT; ++J) {
    if (Stat[J] == VarStatus::Basic || X[J] == 0.0)
      continue;
    if (J < NS) {
      const double *Col = ColA.data() + static_cast<size_t>(J) * M;
      for (int I = 0; I < M; ++I)
        Rhs[I] -= Col[I] * X[J];
    } else {
      Rhs[J - NS] += X[J];
    }
  }
  for (int R = 0; R < M; ++R) {
    const double *Row = Binv.data() + static_cast<size_t>(R) * M;
    double Sum = 0.0;
    for (int I = 0; I < M; ++I)
      Sum += Row[I] * Rhs[I];
    X[Basis[R]] = Sum;
  }
}

double Worker::infeasibility() const {
  // Sums violations that exceed the per-variable feasibility tolerance.
  // Using the same threshold as the phase-1 cost classification keeps
  // the two consistent: a state with only sub-tolerance violations is
  // feasible and has a zero phase-1 gradient.
  double Total = 0.0;
  for (int R = 0; R < M; ++R) {
    int K = Basis[R];
    double V = X[K];
    if (V < Lo[K] - Opt.FeasTol)
      Total += Lo[K] - V;
    else if (V > Hi[K] + Opt.FeasTol)
      Total += V - Hi[K];
  }
  return Total;
}

double Worker::currentObjective() const {
  double Sum = 0.0;
  for (int J = 0; J < NT; ++J)
    if (Cost[J] != 0.0)
      Sum += Cost[J] * X[J];
  return Sum;
}

double Worker::columnDot(const std::vector<double> &Vec, int J) const {
  if (J >= NS)
    return -Vec[J - NS];
  const double *Col = ColA.data() + static_cast<size_t>(J) * M;
  double Sum = 0.0;
  for (int I = 0; I < M; ++I)
    Sum += Vec[I] * Col[I];
  return Sum;
}

void Worker::computeColumn(int J) {
  // W = Binv * Atilde_J.
  if (J >= NS) {
    int K = J - NS;
    for (int R = 0; R < M; ++R)
      W[R] = -Binv[static_cast<size_t>(R) * M + K];
    return;
  }
  const double *Col = ColA.data() + static_cast<size_t>(J) * M;
  for (int R = 0; R < M; ++R) {
    const double *Row = Binv.data() + static_cast<size_t>(R) * M;
    double Sum = 0.0;
    for (int I = 0; I < M; ++I)
      Sum += Row[I] * Col[I];
    W[R] = Sum;
  }
}

void Worker::computeDuals() {
  // Y^T = Cb^T Binv.
  std::fill(Y.begin(), Y.end(), 0.0);
  for (int R = 0; R < M; ++R) {
    double C = Cb[R];
    if (C == 0.0)
      continue;
    const double *Row = Binv.data() + static_cast<size_t>(R) * M;
    for (int I = 0; I < M; ++I)
      Y[I] += C * Row[I];
  }
}

int Worker::chooseEntering(bool Phase1, int &SigmaOut) {
  // Full Dantzig pricing (best |rc|); Bland's rule takes the first
  // improving index instead. Partial pricing was tried and reverted: on
  // the repair LPs' split-variable columns it zigzags into iteration
  // blow-ups that dwarf the per-iteration savings.
  int BestJ = -1;
  int BestSigma = 0;
  double BestScore = Opt.OptTol;
  for (int J = 0; J < NT; ++J) {
    VarStatus S = Stat[J];
    if (S == VarStatus::Basic || isFixed(J))
      continue;
    double Rc = (Phase1 ? 0.0 : Cost[J]) - columnDot(Y, J);
    int Sigma = 0;
    if ((S == VarStatus::AtLower || S == VarStatus::FreeNb) &&
        Rc < -Opt.OptTol)
      Sigma = 1;
    else if ((S == VarStatus::AtUpper || S == VarStatus::FreeNb) &&
             Rc > Opt.OptTol)
      Sigma = -1;
    if (Sigma == 0)
      continue;
    if (Bland) {
      // Bland's rule: first improving index.
      SigmaOut = Sigma;
      return J;
    }
    double Score = std::fabs(Rc);
    if (Score > BestScore) {
      BestScore = Score;
      BestJ = J;
      BestSigma = Sigma;
    }
  }
  SigmaOut = BestSigma;
  return BestJ;
}

Worker::RatioResult Worker::ratioTest(int J, int Sigma, bool Phase1) {
  RatioResult Result;
  double BestT = kInfinity;
  bool BestIsFlip = false;
  int BestRow = -1;
  bool BestAtUpper = false;
  double BestPivotMag = 0.0;

  // The entering variable's own travel between its bounds.
  if (std::isfinite(Lo[J]) && std::isfinite(Hi[J])) {
    BestT = Hi[J] - Lo[J];
    BestIsFlip = true;
  }

  double FeasEps = Opt.FeasTol;
  for (int R = 0; R < M; ++R) {
    double Wr = W[R];
    if (std::fabs(Wr) <= Opt.PivotTol)
      continue;
    double Delta = -Sigma * Wr; // d X[Basis[R]] / d t
    int K = Basis[R];
    double V = X[K];

    double Limit = kInfinity;
    bool AtUpper = false;
    if (Phase1 && V < Lo[K] - FeasEps) {
      // Infeasible below its lower bound: blocks only when rising back
      // to that bound.
      if (Delta > 0.0) {
        Limit = (Lo[K] - V) / Delta;
        AtUpper = false;
      }
    } else if (Phase1 && V > Hi[K] + FeasEps) {
      if (Delta < 0.0) {
        Limit = (Hi[K] - V) / Delta;
        AtUpper = true;
      }
    } else if (Delta > 0.0) {
      if (std::isfinite(Hi[K])) {
        Limit = (Hi[K] - V) / Delta;
        AtUpper = true;
      }
    } else { // Delta < 0
      if (std::isfinite(Lo[K])) {
        Limit = (Lo[K] - V) / Delta;
        AtUpper = false;
      }
    }
    if (!std::isfinite(Limit))
      continue;
    if (Limit < 0.0)
      Limit = 0.0; // degenerate: basic already (numerically) at bound

    // Prefer strictly smaller ratios; within a small tie window prefer
    // the larger pivot magnitude for numerical stability (or the lowest
    // basis index under Bland's rule). Ties against a bound flip keep
    // the flip, which is the cheapest step.
    bool Better = false;
    if (!std::isfinite(BestT) || Limit < BestT - 1e-9 * (1.0 + BestT)) {
      Better = true;
    } else if (Limit <= BestT + 1e-9 * (1.0 + BestT) && BestRow >= 0) {
      if (Bland)
        Better = Basis[R] < Basis[BestRow];
      else
        Better = std::fabs(Wr) > BestPivotMag;
    }
    if (Better) {
      BestT = Limit;
      BestRow = R;
      BestAtUpper = AtUpper;
      BestPivotMag = std::fabs(Wr);
      BestIsFlip = false;
    }
  }

  if (!std::isfinite(BestT)) {
    Result.Unbounded = true;
    return Result;
  }
  Result.T = BestT;
  Result.Row = BestRow;
  Result.LeaveAtUpper = BestAtUpper;
  Result.BoundFlip = BestIsFlip;
  return Result;
}

void Worker::applyStep(int J, int Sigma, const RatioResult &R) {
  double T = R.T;
  // Move all basic variables along the step direction.
  if (T != 0.0)
    for (int Row = 0; Row < M; ++Row)
      X[Basis[Row]] -= Sigma * T * W[Row];

  if (R.BoundFlip) {
    X[J] = Sigma > 0 ? Hi[J] : Lo[J];
    Stat[J] = Sigma > 0 ? VarStatus::AtUpper : VarStatus::AtLower;
    return;
  }

  assert(R.Row >= 0 && "pivot without a blocking row");
  int Leaving = Basis[R.Row];
  X[Leaving] = R.LeaveAtUpper ? Hi[Leaving] : Lo[Leaving];
  Stat[Leaving] = R.LeaveAtUpper ? VarStatus::AtUpper : VarStatus::AtLower;

  X[J] += Sigma * T;
  Basis[R.Row] = J;
  Stat[J] = VarStatus::Basic;
  updateBinv(R.Row);
  ++PivotsSinceRefactor;
}

void Worker::updateBinv(int PivotRow) {
  // Product-form update: with W = Binv * Atilde_entering, the new inverse
  // is E * Binv where E differs from the identity only in column
  // PivotRow.
  double Pivot = W[PivotRow];
  assert(std::fabs(Pivot) > 0.0 && "zero pivot in eta update");
  double *PivRow = Binv.data() + static_cast<size_t>(PivotRow) * M;
  double Inv = 1.0 / Pivot;
  for (int C = 0; C < M; ++C)
    PivRow[C] *= Inv;
  for (int R = 0; R < M; ++R) {
    if (R == PivotRow)
      continue;
    double Factor = W[R];
    if (Factor == 0.0)
      continue;
    double *Row = Binv.data() + static_cast<size_t>(R) * M;
    for (int C = 0; C < M; ++C)
      Row[C] -= Factor * PivRow[C];
  }
}

SolveStatus Worker::iterate(bool Phase1) {
  Bland = false;
  Stall = 0;
  HavePrevObj = false;
  while (true) {
    // Cooperative cancellation: a relaxed load per iteration is noise
    // next to the O(M * NT) pricing pass below.
    if (Opt.CancelFlag &&
        Opt.CancelFlag->load(std::memory_order_relaxed))
      return SolveStatus::Cancelled;
    if (Iterations >= Opt.MaxIterations)
      return SolveStatus::IterationLimit;
    if (PivotsSinceRefactor >= Opt.RefactorInterval) {
      if (!refactor())
        return SolveStatus::NumericalError;
      recomputeBasicValues();
    }

    double Obj;
    if (Phase1) {
      double Infeas = infeasibility();
      if (Infeas == 0.0)
        return SolveStatus::Optimal; // feasible; caller verifies
      for (int R = 0; R < M; ++R) {
        int K = Basis[R];
        double V = X[K];
        Cb[R] = V < Lo[K] - Opt.FeasTol   ? -1.0
                : V > Hi[K] + Opt.FeasTol ? 1.0
                                          : 0.0;
      }
      Obj = Infeas;
    } else {
      for (int R = 0; R < M; ++R)
        Cb[R] = Cost[Basis[R]];
      Obj = currentObjective();
    }
    computeDuals();

    // Cycling guard: no measurable progress for StallLimit iterations
    // switches pricing to Bland's rule until progress resumes.
    if (HavePrevObj && Obj >= PrevObj - 1e-12) {
      if (++Stall >= Opt.StallLimit)
        Bland = true;
    } else {
      Stall = 0;
      Bland = false;
    }
    PrevObj = Obj;
    HavePrevObj = true;

    int Sigma = 0;
    int Entering = chooseEntering(Phase1, Sigma);
    if (Entering < 0)
      return Phase1 ? SolveStatus::Infeasible : SolveStatus::Optimal;

    computeColumn(Entering);
    RatioResult R = ratioTest(Entering, Sigma, Phase1);
    if (R.Unbounded) {
      // A cost-improving ray. In phase 1 the objective is bounded below
      // by zero, so an unbounded ray indicates numerical trouble.
      return Phase1 ? SolveStatus::NumericalError : SolveStatus::Unbounded;
    }
    applyStep(Entering, Sigma, R);
    ++Iterations;
    if (Phase1)
      ++Phase1Iterations;
  }
}

LpSolution Worker::finish(SolveStatus Status) {
  LpSolution Out;
  Out.Status = Status;
  Out.Iterations = Iterations;
  Out.Phase1Iterations = Phase1Iterations;
  if (Status != SolveStatus::Optimal)
    return Out;

  Out.X.assign(X.begin(), X.begin() + NS);
  Out.Objective = Prob.objectiveValue(Out.X);

  // Duals: Y was last computed with phase-2 basic costs; unscale rows
  // and scatter over dropped (vacuous) rows.
  for (int R = 0; R < M; ++R)
    Cb[R] = Cost[Basis[R]];
  computeDuals();
  Out.RowDuals.assign(static_cast<size_t>(Prob.numRows()), 0.0);
  for (int R = 0; R < M; ++R)
    Out.RowDuals[KeptRows[R]] = Y[R] / RowScale[R];
  return Out;
}

LpSolution Worker::run() {
  LpSolution Early;
  if (!buildProblem(Early))
    return Early;

  // Trivial cases first.
  if (NS == 0) {
    LpSolution Out;
    Out.Status = SolveStatus::Optimal;
    Out.RowDuals.assign(static_cast<size_t>(Prob.numRows()), 0.0);
    return Out;
  }
  if (M == 0) {
    LpSolution Out;
    Out.X.resize(NS);
    for (int J = 0; J < NS; ++J) {
      double C = Prob.objectiveCoef(J);
      double L = Prob.variableLo(J), H = Prob.variableHi(J);
      if (C > 0.0) {
        if (!std::isfinite(L)) {
          Out.Status = SolveStatus::Unbounded;
          Out.X.clear();
          return Out;
        }
        Out.X[J] = L;
      } else if (C < 0.0) {
        if (!std::isfinite(H)) {
          Out.Status = SolveStatus::Unbounded;
          Out.X.clear();
          return Out;
        }
        Out.X[J] = H;
      } else {
        Out.X[J] = std::isfinite(L) ? L : (std::isfinite(H) ? H : 0.0);
      }
    }
    Out.Status = SolveStatus::Optimal;
    Out.Objective = Prob.objectiveValue(Out.X);
    Out.RowDuals.assign(static_cast<size_t>(Prob.numRows()), 0.0);
    return Out;
  }

  initialBasis();

  // Phase 1 with refactorized verification: a "feasible" or
  // "infeasible" verdict from drifted arithmetic is re-checked against
  // a clean factorization before being believed.
  bool Feasible = false;
  bool InfeasibleConfirmed = false;
  for (int Attempt = 0; Attempt < 6 && !Feasible; ++Attempt) {
    SolveStatus Status = iterate(/*Phase1=*/true);
    if (Status == SolveStatus::IterationLimit ||
        Status == SolveStatus::NumericalError ||
        Status == SolveStatus::Unbounded ||
        Status == SolveStatus::Cancelled)
      return finish(Status == SolveStatus::Unbounded
                        ? SolveStatus::NumericalError
                        : Status);
    if (!refactor())
      return finish(SolveStatus::NumericalError);
    recomputeBasicValues();
    if (infeasibility() == 0.0) {
      Feasible = true;
      break;
    }
    if (Status == SolveStatus::Infeasible) {
      // Only believe an infeasibility verdict that is reproduced from a
      // freshly refactorized basis.
      if (InfeasibleConfirmed)
        return finish(SolveStatus::Infeasible);
      InfeasibleConfirmed = true;
      continue;
    }
    InfeasibleConfirmed = false;
    // Status was Optimal but the clean recompute disagrees: resume.
  }
  if (!Feasible)
    return finish(SolveStatus::NumericalError);

  // Phase 2, same verification discipline.
  for (int Attempt = 0; Attempt < 6; ++Attempt) {
    SolveStatus Status = iterate(/*Phase1=*/false);
    if (Status != SolveStatus::Optimal)
      return finish(Status);
    if (!refactor())
      return finish(SolveStatus::NumericalError);
    recomputeBasicValues();
    if (infeasibility() > 0.0) {
      // Drifted into infeasibility; clean it up via phase 1 again.
      SolveStatus P1 = iterate(/*Phase1=*/true);
      if (P1 != SolveStatus::Optimal)
        return finish(P1 == SolveStatus::Infeasible
                          ? SolveStatus::NumericalError
                          : P1);
      continue;
    }
    // Verify dual feasibility on the clean factorization.
    for (int R = 0; R < M; ++R)
      Cb[R] = Cost[Basis[R]];
    computeDuals();
    bool DualOk = true;
    for (int J = 0; J < NT && DualOk; ++J) {
      if (Stat[J] == VarStatus::Basic || isFixed(J))
        continue;
      double Rc = Cost[J] - columnDot(Y, J);
      if ((Stat[J] == VarStatus::AtLower || Stat[J] == VarStatus::FreeNb) &&
          Rc < -50 * Opt.OptTol)
        DualOk = false;
      if ((Stat[J] == VarStatus::AtUpper || Stat[J] == VarStatus::FreeNb) &&
          Rc > 50 * Opt.OptTol)
        DualOk = false;
    }
    if (DualOk)
      return finish(SolveStatus::Optimal);
  }
  return finish(SolveStatus::NumericalError);
}

} // namespace

LpSolution prdnn::lp::solveLp(const LinearProgram &Problem,
                              const SimplexOptions &Options) {
  Worker W(Problem, Options);
  return W.run();
}
