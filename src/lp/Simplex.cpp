//===- lp/Simplex.cpp - bounded-variable revised simplex -------------------===//
//
// Implementation notes. The LP
//
//   min c.x   s.t.  RowLo <= A x <= RowHi,  VarLo <= x <= VarHi
//
// is rewritten with one slack per row as the equality system
//
//   [A | -I] z = 0,    z = (x, s),   s_i in [RowLo_i, RowHi_i].
//
// The initial basis is the slack set (basis matrix -I), which is always
// nonsingular; phase 1 then minimizes the total bound violation of the
// basic variables (composite phase-1 for bounded variables, cf. Chvatal
// ch. 8), after which phase 2 minimizes the true objective. The basis
// inverse is kept densely and updated with product-form (eta) pivots;
// it is recomputed from scratch by Gauss-Jordan elimination periodically
// and before any terminal status is reported, so returned solutions are
// always re-verified against a freshly factorized basis.
//
// Kernel parallelism. Once M >= SimplexOptions::ParallelMinDim (and
// ParallelKernels is on), the dense inner kernels run blocked on the
// shared support/Parallel.h pool under the library-wide determinism
// contract - every output element keeps the exact accumulation order of
// the scalar kernel, and block merges are deterministic - so the
// parallel path is bit-for-bit identical to the scalar path at any
// thread count (same pivot sequence, same LpSolution bits; enforced by
// tests/lp_test.cpp). Per-kernel notes:
//  - pricing: one batched reduced-cost pass rc = c - A~^T y over
//    column-blocked ColA (slack columns are the -I block); per-block
//    Dantzig candidates merge in ascending block order with the scalar
//    scan's strict-> rule, so the chosen column matches the scalar
//    earliest-max exactly. Bland's rule sweeps fixed groups of blocks
//    with an early exit, returning the globally first improving index.
//  - FTRAN/BTRAN: row-blocked (resp. column-blocked) matvecs; each
//    output element is one sequential dot / accumulation in the scalar
//    order.
//  - refactorization / eta update: the O(M^2)-per-step row-elimination
//    updates parallelize over rows; each row's arithmetic is
//    independent of the partitioning.
//  - ratio test: blocking rows are preselected per row block (the
//    per-row limit computation is order-free), then merged by a serial
//    replay of the scalar scan. The merge must be serial: the tie
//    window tracks the incumbent ratio, so candidate selection is
//    genuinely order-dependent and per-block winners would diverge.
// See src/lp/README.md for the full contract.
//
//===----------------------------------------------------------------------===//

#include "lp/Simplex.h"

#include "support/Error.h"
#include "support/Parallel.h"
#include "support/Timer.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>

using namespace prdnn;
using namespace prdnn::lp;

const char *prdnn::lp::toString(SolveStatus Status) {
  switch (Status) {
  case SolveStatus::Optimal:
    return "Optimal";
  case SolveStatus::Infeasible:
    return "Infeasible";
  case SolveStatus::Unbounded:
    return "Unbounded";
  case SolveStatus::IterationLimit:
    return "IterationLimit";
  case SolveStatus::NumericalError:
    return "NumericalError";
  case SolveStatus::Cancelled:
    return "Cancelled";
  }
  // Statuses now travel over the wire (rpc/Wire.h); a value from a
  // foreign peer must print, not abort.
  return "unknown";
}

namespace {

enum class VarStatus : uint8_t { Basic, AtLower, AtUpper, FreeNb };

/// Accumulates the enclosing scope's wall time into a SimplexStats
/// field; timing never feeds back into any computed value, so the
/// instrumentation cannot perturb determinism.
class KernelTimer {
public:
  explicit KernelTimer(double &Accumulator) : Accumulator(Accumulator) {}
  ~KernelTimer() { Accumulator += Timer.seconds(); }
  KernelTimer(const KernelTimer &) = delete;
  KernelTimer &operator=(const KernelTimer &) = delete;

private:
  double &Accumulator;
  WallTimer Timer;
};

/// One simplex solve; owns all scaled problem data and factorizations.
class Worker {
public:
  Worker(const LinearProgram &Problem, const SimplexOptions &Options)
      : Prob(Problem), Opt(Options) {}

  LpSolution run();

private:
  const LinearProgram &Prob;
  SimplexOptions Opt;

  // Shapes: M kept rows, NS structural variables, NT = NS + M total.
  int M = 0, NS = 0, NT = 0;
  std::vector<int> KeptRows;     // worker row -> original row index
  std::vector<double> ColA;      // column-major scaled A, entry (i,j) at
                                 // j*M + i
  std::vector<double> RowScale;  // per kept row
  std::vector<double> Lo, Hi, Cost; // per total variable
  std::vector<int> Basis;           // var basic in each row
  std::vector<VarStatus> Stat;      // per total variable
  std::vector<double> X;            // per total variable
  std::vector<double> Binv;         // dense M*M, row-major
  std::vector<double> W, Y, Cb, Rhs;

  // Parallel-kernel state. All scratch lives on the Worker and is
  // sized once in initialBasis(), so the iteration hot loop allocates
  // nothing (asserted in debug builds via the capacity watermark).
  bool Par = false; // parallel kernels active for this solve
  static constexpr int PriceGrain = 64;  // columns per pricing block
  static constexpr int RatioGrain = 256; // rows per ratio block
  /// Blocks swept together (with one deterministic merge) per early-
  /// exit round of parallel Bland pricing. A fixed constant: the merge
  /// result is group-size independent, but a fixed value keeps the
  /// work profile reproducible too.
  static constexpr int BlandGroupBlocks = 16;
  int NumPriceBlocks = 0, NumRatioBlocks = 0;
  std::vector<double> Rc;              // NT reduced costs (batched pass)
  std::vector<double> PriceBlockScore; // per pricing block: Dantzig best
  std::vector<int> PriceBlockJ, PriceBlockSigma;
  std::vector<int> PriceBlockFirst; // per block: Bland first-improving
  struct RatioCand {
    double Limit;
    double WAbs;
    int Row;
    bool AtUpper;
  };
  std::vector<std::vector<RatioCand>> RatioBlocks; // preselected rows
  std::vector<double> RefB, RefInv;                // refactor scratch

  SimplexStats Stats;

  int Iterations = 0;
  int Phase1Iterations = 0;
  int PivotsSinceRefactor = 0;
  bool Bland = false;
  int Stall = 0;
  double PrevObj = 0.0;
  bool HavePrevObj = false;
  bool WarmStartedV = false; // warm basis accepted for this solve

#ifndef NDEBUG
  // Per-iteration-allocation guard: capacities of every hot-loop
  // buffer, snapshotted after setup; iterate() asserts the counter of
  // capacity changes stays zero.
  std::vector<size_t> ScratchWatermark, ScratchCapsNow;
  void collectScratchCaps(std::vector<size_t> &Out) const;
  void snapshotScratch();
  int scratchGrowths();
#endif

  bool buildProblem(LpSolution &Out); // false => Out holds final status
  void initialBasis();
  void setSlackBasis();
  bool tryWarmStart(const SimplexBasis &Warm);
  bool refactor();
  void recomputeBasicValues();
  double infeasibility() const;
  double currentObjective() const;
  double columnDot(const std::vector<double> &Vec, int J) const;
  void computeColumn(int J);
  void computeDuals();
  bool isFixed(int J) const { return Hi[J] - Lo[J] <= 1e-30; }

  /// The one pricing rule, shared by every kernel path (scalar scan,
  /// parallel Dantzig blocks, Bland sweeps, batched verification):
  /// prices column \p J against the current duals Y and returns the
  /// improving direction (+1 rising from lower / free, -1 falling from
  /// upper / free) or 0. Skips basic and fixed columns, leaving
  /// \p RcOut untouched; otherwise stores the reduced cost there.
  int priceColumn(int J, bool Phase1, double &RcOut) const {
    VarStatus S = Stat[static_cast<size_t>(J)];
    if (S == VarStatus::Basic || isFixed(J))
      return 0;
    double RcJ = (Phase1 ? 0.0 : Cost[static_cast<size_t>(J)]) -
                 columnDot(Y, J);
    RcOut = RcJ;
    if ((S == VarStatus::AtLower || S == VarStatus::FreeNb) &&
        RcJ < -Opt.OptTol)
      return 1;
    if ((S == VarStatus::AtUpper || S == VarStatus::FreeNb) &&
        RcJ > Opt.OptTol)
      return -1;
    return 0;
  }

  int chooseEntering(bool Phase1, int &SigmaOut);
  int chooseEnteringScalar(bool Phase1, int &SigmaOut);
  int chooseEnteringDantzigPar(bool Phase1, int &SigmaOut);
  int chooseEnteringBlandPar(bool Phase1, int &SigmaOut);
  /// Parallel reduced-cost pass over every nonbasic, unfixed column
  /// into Rc (no candidate selection); used by the dual-feasibility
  /// verification in run().
  void batchReducedCosts(bool Phase1);

  struct RatioResult {
    double T = 0.0;
    int Row = -1;
    bool LeaveAtUpper = false;
    bool BoundFlip = false;
    bool Unbounded = false;
  };
  RatioResult ratioTest(int J, int Sigma, bool Phase1);
  RatioResult ratioTestScalar(int J, int Sigma, bool Phase1);
  RatioResult ratioTestParallel(int J, int Sigma, bool Phase1);

  /// The one per-row blocking computation, shared by the scalar scan
  /// and the parallel preselection: how far the entering step travels
  /// before basic row \p R blocks it (Blocking false if it never does).
  struct RowLimit {
    double Limit = 0.0;
    double WAbs = 0.0;
    bool AtUpper = false;
    bool Blocking = false;
  };
  RowLimit rowLimit(int R, int Sigma, bool Phase1) const {
    RowLimit Out;
    double Wr = W[static_cast<size_t>(R)];
    if (std::fabs(Wr) <= Opt.PivotTol)
      return Out;
    double Delta = -Sigma * Wr; // d X[Basis[R]] / d t
    int K = Basis[static_cast<size_t>(R)];
    double V = X[static_cast<size_t>(K)];
    double FeasEps = Opt.FeasTol;

    double Limit = kInfinity;
    bool AtUpper = false;
    if (Phase1 && V < Lo[K] - FeasEps) {
      // Infeasible below its lower bound: blocks only when rising back
      // to that bound.
      if (Delta > 0.0) {
        Limit = (Lo[K] - V) / Delta;
        AtUpper = false;
      }
    } else if (Phase1 && V > Hi[K] + FeasEps) {
      if (Delta < 0.0) {
        Limit = (Hi[K] - V) / Delta;
        AtUpper = true;
      }
    } else if (Delta > 0.0) {
      if (std::isfinite(Hi[K])) {
        Limit = (Hi[K] - V) / Delta;
        AtUpper = true;
      }
    } else { // Delta < 0
      if (std::isfinite(Lo[K])) {
        Limit = (Lo[K] - V) / Delta;
        AtUpper = false;
      }
    }
    if (!std::isfinite(Limit))
      return Out;
    if (Limit < 0.0)
      Limit = 0.0; // degenerate: basic already (numerically) at bound
    Out.Limit = Limit;
    Out.WAbs = std::fabs(Wr);
    Out.AtUpper = AtUpper;
    Out.Blocking = true;
    return Out;
  }

  /// The one incumbent-relative acceptance rule of the ratio test,
  /// shared by the scalar scan and the parallel merge. Prefer strictly
  /// smaller ratios; within a small tie window prefer the larger pivot
  /// magnitude for numerical stability (or the lowest basis index under
  /// Bland's rule). Ties against a bound flip (BestRow < 0) keep the
  /// flip, which is the cheapest step.
  bool ratioBetter(double Limit, double WAbs, int Row, double BestT,
                   int BestRow, double BestPivotMag) const {
    if (!std::isfinite(BestT) || Limit < BestT - 1e-9 * (1.0 + BestT))
      return true;
    if (Limit <= BestT + 1e-9 * (1.0 + BestT) && BestRow >= 0) {
      if (Bland)
        return Basis[static_cast<size_t>(Row)] <
               Basis[static_cast<size_t>(BestRow)];
      return WAbs > BestPivotMag;
    }
    return false;
  }
  void applyStep(int J, int Sigma, const RatioResult &R);
  void updateBinv(int PivotRow);

  SolveStatus iterate(bool Phase1);
  LpSolution finish(SolveStatus Status);
};

#ifndef NDEBUG
void Worker::collectScratchCaps(std::vector<size_t> &Out) const {
  Out.clear();
  Out.push_back(W.capacity());
  Out.push_back(Y.capacity());
  Out.push_back(Cb.capacity());
  Out.push_back(Rhs.capacity());
  Out.push_back(Binv.capacity());
  Out.push_back(X.capacity());
  Out.push_back(Basis.capacity());
  Out.push_back(Rc.capacity());
  Out.push_back(PriceBlockScore.capacity());
  Out.push_back(PriceBlockJ.capacity());
  Out.push_back(PriceBlockSigma.capacity());
  Out.push_back(PriceBlockFirst.capacity());
  Out.push_back(RefB.capacity());
  Out.push_back(RefInv.capacity());
  for (const auto &Block : RatioBlocks)
    Out.push_back(Block.capacity());
}

void Worker::snapshotScratch() {
  collectScratchCaps(ScratchWatermark);
  ScratchCapsNow.reserve(ScratchWatermark.capacity());
}

/// Number of hot-loop buffers whose capacity changed since the
/// snapshot - i.e. per-iteration allocations. Must stay 0.
int Worker::scratchGrowths() {
  collectScratchCaps(ScratchCapsNow);
  if (ScratchCapsNow.size() != ScratchWatermark.size())
    return static_cast<int>(ScratchCapsNow.size() + ScratchWatermark.size());
  int Growths = 0;
  for (size_t I = 0; I < ScratchCapsNow.size(); ++I)
    Growths += ScratchCapsNow[I] != ScratchWatermark[I];
  return Growths;
}
#endif

bool Worker::buildProblem(LpSolution &Out) {
  NS = Prob.numVariables();

  // Light presolve: drop rows with no nonzero coefficients. Such a row
  // is vacuous when 0 lies within its bounds and makes the whole LP
  // infeasible otherwise.
  for (int I = 0; I < Prob.numRows(); ++I) {
    const LpRow &Row = Prob.row(I);
    bool HasNonzero = false;
    for (double V : Row.Value)
      if (V != 0.0) {
        HasNonzero = true;
        break;
      }
    if (HasNonzero) {
      KeptRows.push_back(I);
      continue;
    }
    if (Row.Lo > Opt.FeasTol || Row.Hi < -Opt.FeasTol) {
      Out = LpSolution();
      Out.Status = SolveStatus::Infeasible;
      return false;
    }
  }
  M = static_cast<int>(KeptRows.size());
  NT = NS + M;

  // Row equilibration: divide each row (and its bounds) by its largest
  // coefficient magnitude so feasibility tolerances are meaningful.
  RowScale.assign(static_cast<size_t>(M), 1.0);
  if (Opt.ScaleRows) {
    for (int R = 0; R < M; ++R) {
      const LpRow &Row = Prob.row(KeptRows[R]);
      double MaxAbs = 0.0;
      for (double V : Row.Value)
        MaxAbs = std::max(MaxAbs, std::fabs(V));
      if (MaxAbs > 0.0)
        RowScale[R] = MaxAbs;
    }
  }

  ColA.assign(static_cast<size_t>(M) * static_cast<size_t>(NS), 0.0);
  for (int R = 0; R < M; ++R) {
    const LpRow &Row = Prob.row(KeptRows[R]);
    for (size_t K = 0; K < Row.Index.size(); ++K) {
      int J = Row.Index[K];
      ColA[static_cast<size_t>(J) * M + R] += Row.Value[K] / RowScale[R];
    }
  }

  Lo.resize(NT);
  Hi.resize(NT);
  Cost.assign(static_cast<size_t>(NT), 0.0);
  for (int J = 0; J < NS; ++J) {
    Lo[J] = Prob.variableLo(J);
    Hi[J] = Prob.variableHi(J);
    Cost[J] = Prob.objectiveCoef(J);
  }
  for (int R = 0; R < M; ++R) {
    const LpRow &Row = Prob.row(KeptRows[R]);
    Lo[NS + R] = Row.Lo / RowScale[R];
    Hi[NS + R] = Row.Hi / RowScale[R];
  }
  return true;
}

void Worker::initialBasis() {
  Basis.resize(M);
  Stat.assign(static_cast<size_t>(NT), VarStatus::AtLower);
  X.assign(static_cast<size_t>(NT), 0.0);
  Binv.assign(static_cast<size_t>(M) * M, 0.0);
  W.resize(M);
  Y.resize(M);
  Cb.resize(M);
  Rhs.resize(M);
  // Refactorization scratch (both kernel paths) and the batched-pricing
  // / ratio-preselection scratch (parallel path only), sized once so no
  // iteration ever allocates.
  RefB.resize(static_cast<size_t>(M) * M);
  RefInv.resize(static_cast<size_t>(M) * M);
  if (Par) {
    Rc.resize(static_cast<size_t>(NT));
    NumPriceBlocks = (NT + PriceGrain - 1) / PriceGrain;
    PriceBlockScore.resize(static_cast<size_t>(NumPriceBlocks));
    PriceBlockJ.resize(static_cast<size_t>(NumPriceBlocks));
    PriceBlockSigma.resize(static_cast<size_t>(NumPriceBlocks));
    PriceBlockFirst.resize(static_cast<size_t>(NumPriceBlocks));
    NumRatioBlocks = (M + RatioGrain - 1) / RatioGrain;
    RatioBlocks.resize(static_cast<size_t>(NumRatioBlocks));
    for (auto &Block : RatioBlocks)
      Block.reserve(RatioGrain); // a block never holds more rows
  }
#ifndef NDEBUG
  snapshotScratch();
#endif

  setSlackBasis();
}

void Worker::setSlackBasis() {
  // The cold starting point: every structural nonbasic at its
  // "cheaper" bound (or free at zero) and the always-nonsingular slack
  // basis with inverse -I. Also the bit-exact fallback target when a
  // warm basis is rejected: it rebuilds Stat/X/Basis/Binv wholesale, so
  // a failed warm attempt leaves no trace in any computed value.
  for (int J = 0; J < NS; ++J) {
    bool LoFinite = std::isfinite(Lo[J]);
    bool HiFinite = std::isfinite(Hi[J]);
    if (!LoFinite && !HiFinite) {
      Stat[J] = VarStatus::FreeNb;
      X[J] = 0.0;
    } else if (LoFinite && (!HiFinite || std::fabs(Lo[J]) <= std::fabs(Hi[J]))) {
      Stat[J] = VarStatus::AtLower;
      X[J] = Lo[J];
    } else {
      Stat[J] = VarStatus::AtUpper;
      X[J] = Hi[J];
    }
  }
  std::fill(Binv.begin(), Binv.end(), 0.0);
  for (int R = 0; R < M; ++R) {
    Basis[R] = NS + R;
    Stat[NS + R] = VarStatus::Basic;
    X[NS + R] = 0.0;
    Binv[static_cast<size_t>(R) * M + R] = -1.0;
  }
  recomputeBasicValues();
}

bool Worker::tryWarmStart(const SimplexBasis &Warm) {
  // Validation pass - no Worker state is touched until the snapshot is
  // known to be structurally coherent for *this* LP: exact dimensions,
  // status bytes in range, exactly M basic variables listed once each
  // in Basic[] and marked basic, and bound states only where the bound
  // exists. (The basis-cache key is tolerant of RHS-only drift, so a
  // coherent basis may still be primal-infeasible here; phase 1 repairs
  // that from the warm point, which is the cheap crash we want.)
  if (Warm.NumRows != M || Warm.NumVars != NT)
    return false;
  if (static_cast<int>(Warm.Basic.size()) != M ||
      static_cast<int>(Warm.NonbasicState.size()) != NT)
    return false;
  int BasicCount = 0;
  for (int J = 0; J < NT; ++J) {
    std::uint8_t S = Warm.NonbasicState[J];
    if (S > static_cast<std::uint8_t>(VarStatus::FreeNb))
      return false;
    if (S == static_cast<std::uint8_t>(VarStatus::Basic))
      ++BasicCount;
    if (S == static_cast<std::uint8_t>(VarStatus::AtLower) &&
        !std::isfinite(Lo[J]))
      return false;
    if (S == static_cast<std::uint8_t>(VarStatus::AtUpper) &&
        !std::isfinite(Hi[J]))
      return false;
  }
  if (BasicCount != M)
    return false;
  std::vector<char> InBasis(static_cast<size_t>(NT), 0);
  for (int R = 0; R < M; ++R) {
    int J = Warm.Basic[R];
    if (J < 0 || J >= NT || InBasis[static_cast<size_t>(J)] ||
        Warm.NonbasicState[static_cast<size_t>(J)] !=
            static_cast<std::uint8_t>(VarStatus::Basic))
      return false;
    InBasis[static_cast<size_t>(J)] = 1;
  }

  // Apply, then refactorize once from scratch. A structurally coherent
  // basis can still be numerically singular (e.g. duplicated structural
  // columns); refactor() detects that and we fall back to the slack
  // basis, which rebuilds every mutated buffer - the cold path then
  // proceeds bit-identically to a solve that never saw the warm basis.
  for (int J = 0; J < NT; ++J) {
    switch (static_cast<VarStatus>(Warm.NonbasicState[J])) {
    case VarStatus::Basic:
      Stat[J] = VarStatus::Basic; // X filled by recomputeBasicValues
      break;
    case VarStatus::AtLower:
      Stat[J] = VarStatus::AtLower;
      X[J] = Lo[J];
      break;
    case VarStatus::AtUpper:
      Stat[J] = VarStatus::AtUpper;
      X[J] = Hi[J];
      break;
    case VarStatus::FreeNb:
      Stat[J] = VarStatus::FreeNb;
      X[J] = 0.0;
      break;
    }
  }
  for (int R = 0; R < M; ++R)
    Basis[R] = Warm.Basic[R];
  if (!refactor()) {
    setSlackBasis();
    return false;
  }
  recomputeBasicValues();
  return true;
}

bool Worker::refactor() {
  // Rebuild Binv from the current basis by Gauss-Jordan elimination with
  // partial pivoting, into the hoisted RefB/RefInv scratch. The row-
  // elimination updates parallelize over rows: each row's arithmetic is
  // independent of the partitioning, so the factorization is
  // bit-identical to the serial one.
  KernelTimer Timer(Stats.RefactorSeconds);
  ++Stats.Refactors;
  std::vector<double> &B = RefB;
  std::vector<double> &Inv = RefInv;
  std::fill(B.begin(), B.end(), 0.0);
  auto BuildColumn = [&](int R) {
    int J = Basis[R];
    if (J < NS) {
      const double *Col = ColA.data() + static_cast<size_t>(J) * M;
      for (int I = 0; I < M; ++I)
        B[static_cast<size_t>(I) * M + R] = Col[I];
    } else {
      B[static_cast<size_t>(J - NS) * M + R] = -1.0;
    }
  };
  if (Par)
    parallelFor(0, M, [&](std::int64_t R) { BuildColumn(static_cast<int>(R)); });
  else
    for (int R = 0; R < M; ++R)
      BuildColumn(R);
  std::fill(Inv.begin(), Inv.end(), 0.0);
  for (int I = 0; I < M; ++I)
    Inv[static_cast<size_t>(I) * M + I] = 1.0;

  for (int K = 0; K < M; ++K) {
    int Pivot = K;
    double Best = std::fabs(B[static_cast<size_t>(K) * M + K]);
    for (int I = K + 1; I < M; ++I) {
      double Mag = std::fabs(B[static_cast<size_t>(I) * M + K]);
      if (Mag > Best) {
        Best = Mag;
        Pivot = I;
      }
    }
    if (Best < 1e-12)
      return false;
    if (Pivot != K)
      for (int C = 0; C < M; ++C) {
        std::swap(B[static_cast<size_t>(K) * M + C],
                  B[static_cast<size_t>(Pivot) * M + C]);
        std::swap(Inv[static_cast<size_t>(K) * M + C],
                  Inv[static_cast<size_t>(Pivot) * M + C]);
      }
    double Scale = 1.0 / B[static_cast<size_t>(K) * M + K];
    for (int C = 0; C < M; ++C) {
      B[static_cast<size_t>(K) * M + C] *= Scale;
      Inv[static_cast<size_t>(K) * M + C] *= Scale;
    }
    auto EliminateRow = [&](int I) {
      if (I == K)
        return;
      double Factor = B[static_cast<size_t>(I) * M + K];
      if (Factor == 0.0)
        return;
      // y -= F * x as axpy(y, x, -F): exact in IEEE, so the Strict bits
      // match the fused loop; splitting B/Inv into two sweeps only
      // reorders independent elementwise updates.
      linalg::kernelAxpy(B.data() + static_cast<size_t>(I) * M,
                         B.data() + static_cast<size_t>(K) * M, -Factor, M,
                         Opt.Determinism);
      linalg::kernelAxpy(Inv.data() + static_cast<size_t>(I) * M,
                         Inv.data() + static_cast<size_t>(K) * M, -Factor, M,
                         Opt.Determinism);
    };
    if (Par)
      parallelFor(0, M,
                  [&](std::int64_t I) { EliminateRow(static_cast<int>(I)); });
    else
      for (int I = 0; I < M; ++I)
        EliminateRow(I);
  }
  // Adopt the fresh inverse; RefInv inherits the old Binv storage (same
  // capacity) and is overwritten on the next refactorization.
  std::swap(Binv, Inv);
  PivotsSinceRefactor = 0;
  return true;
}

void Worker::recomputeBasicValues() {
  // Basic values solve B xB = -N xN (the equality rhs is zero).
  std::fill(Rhs.begin(), Rhs.end(), 0.0);
  for (int J = 0; J < NT; ++J) {
    if (Stat[J] == VarStatus::Basic || X[J] == 0.0)
      continue;
    if (J < NS) {
      const double *Col = ColA.data() + static_cast<size_t>(J) * M;
      linalg::kernelAxpy(Rhs.data(), Col, -X[J], M, Opt.Determinism);
    } else {
      Rhs[J - NS] += X[J];
    }
  }
  // Basic entries of X are distinct slots, so the row-blocked matvec
  // writes disjointly; each element keeps its scalar accumulation order.
  auto RowValue = [&](int R) {
    X[Basis[R]] = linalg::kernelDot(
        Binv.data() + static_cast<size_t>(R) * M, Rhs.data(), M,
        Opt.Determinism);
  };
  if (Par)
    parallelFor(0, M, [&](std::int64_t R) { RowValue(static_cast<int>(R)); });
  else
    for (int R = 0; R < M; ++R)
      RowValue(R);
}

double Worker::infeasibility() const {
  // Sums violations that exceed the per-variable feasibility tolerance.
  // Using the same threshold as the phase-1 cost classification keeps
  // the two consistent: a state with only sub-tolerance violations is
  // feasible and has a zero phase-1 gradient.
  double Total = 0.0;
  for (int R = 0; R < M; ++R) {
    int K = Basis[R];
    double V = X[K];
    if (V < Lo[K] - Opt.FeasTol)
      Total += Lo[K] - V;
    else if (V > Hi[K] + Opt.FeasTol)
      Total += V - Hi[K];
  }
  return Total;
}

double Worker::currentObjective() const {
  double Sum = 0.0;
  for (int J = 0; J < NT; ++J)
    if (Cost[J] != 0.0)
      Sum += Cost[J] * X[J];
  return Sum;
}

double Worker::columnDot(const std::vector<double> &Vec, int J) const {
  if (J >= NS)
    return -Vec[J - NS];
  const double *Col = ColA.data() + static_cast<size_t>(J) * M;
  return linalg::kernelDot(Vec.data(), Col, M, Opt.Determinism);
}

void Worker::computeColumn(int J) {
  // FTRAN: W = Binv * Atilde_J. Row-blocked parallel matvec; every
  // W[R] is one sequential dot in the scalar order, so partitioning
  // cannot move a single bit.
  KernelTimer Timer(Stats.FtranSeconds);
  if (J >= NS) {
    int K = J - NS;
    for (int R = 0; R < M; ++R)
      W[R] = -Binv[static_cast<size_t>(R) * M + K];
    return;
  }
  const double *Col = ColA.data() + static_cast<size_t>(J) * M;
  auto RowDot = [&](int R) {
    W[R] = linalg::kernelDot(Binv.data() + static_cast<size_t>(R) * M, Col,
                             M, Opt.Determinism);
  };
  if (Par)
    parallelFor(0, M, [&](std::int64_t R) { RowDot(static_cast<int>(R)); });
  else
    for (int R = 0; R < M; ++R)
      RowDot(R);
}

void Worker::computeDuals() {
  // BTRAN: Y^T = Cb^T Binv. Column-blocked: each block walks the basic
  // rows in ascending order and accumulates its slice of Y, preserving
  // every Y[I]'s scalar accumulation order while still reading Binv
  // rows contiguously.
  KernelTimer Timer(Stats.BtranSeconds);
  if (!Par) {
    std::fill(Y.begin(), Y.end(), 0.0);
    for (int R = 0; R < M; ++R) {
      double C = Cb[R];
      if (C == 0.0)
        continue;
      linalg::kernelAxpy(Y.data(), Binv.data() + static_cast<size_t>(R) * M,
                         C, M, Opt.Determinism);
    }
    return;
  }
  parallelForRanges(0, M, [&](std::int64_t Begin, std::int64_t End) {
    std::fill(Y.begin() + Begin, Y.begin() + End, 0.0);
    for (int R = 0; R < M; ++R) {
      double C = Cb[R];
      if (C == 0.0)
        continue;
      const double *Row = Binv.data() + static_cast<size_t>(R) * M;
      linalg::kernelAxpy(Y.data() + Begin, Row + Begin, C,
                         static_cast<int>(End - Begin), Opt.Determinism);
    }
  });
}

int Worker::chooseEntering(bool Phase1, int &SigmaOut) {
  KernelTimer Timer(Stats.PricingSeconds);
  if (!Par)
    return chooseEnteringScalar(Phase1, SigmaOut);
  return Bland ? chooseEnteringBlandPar(Phase1, SigmaOut)
               : chooseEnteringDantzigPar(Phase1, SigmaOut);
}

int Worker::chooseEnteringScalar(bool Phase1, int &SigmaOut) {
  // Full Dantzig pricing (best |rc|); Bland's rule takes the first
  // improving index instead. Partial pricing was tried and reverted: on
  // the repair LPs' split-variable columns it zigzags into iteration
  // blow-ups that dwarf the per-iteration savings.
  int BestJ = -1;
  int BestSigma = 0;
  double BestScore = Opt.OptTol;
  for (int J = 0; J < NT; ++J) {
    double RcJ = 0.0;
    int Sigma = priceColumn(J, Phase1, RcJ);
    if (Sigma == 0)
      continue;
    if (Bland) {
      // Bland's rule: first improving index.
      SigmaOut = Sigma;
      return J;
    }
    double Score = std::fabs(RcJ);
    if (Score > BestScore) {
      BestScore = Score;
      BestJ = J;
      BestSigma = Sigma;
    }
  }
  SigmaOut = BestSigma;
  return BestJ;
}

int Worker::chooseEnteringDantzigPar(bool Phase1, int &SigmaOut) {
  // Batched reduced-cost pass rc = c - A~^T y over column blocks of
  // ColA (slack columns j >= NS are the -I block inside columnDot).
  // Each column's dot keeps the scalar accumulation order; each block
  // keeps the scalar scan's running-best rule (strict >, earliest index
  // kept on ties), and blocks merge in ascending order under the same
  // rule - so the winner is exactly the scalar scan's earliest-max.
  parallelForRanges(
      0, NT,
      [&](std::int64_t Begin, std::int64_t End) {
        size_t Block = static_cast<size_t>(Begin / PriceGrain);
        double BestScore = Opt.OptTol;
        int BestJ = -1;
        int BestSigma = 0;
        for (std::int64_t J = Begin; J < End; ++J) {
          double RcJ = 0.0;
          int Sigma = priceColumn(static_cast<int>(J), Phase1, RcJ);
          if (Sigma == 0)
            continue;
          double Score = std::fabs(RcJ);
          if (Score > BestScore) {
            BestScore = Score;
            BestJ = static_cast<int>(J);
            BestSigma = Sigma;
          }
        }
        PriceBlockScore[Block] = BestScore;
        PriceBlockJ[Block] = BestJ;
        PriceBlockSigma[Block] = BestSigma;
      },
      PriceGrain);

  double BestScore = Opt.OptTol;
  int BestJ = -1;
  int BestSigma = 0;
  for (int Block = 0; Block < NumPriceBlocks; ++Block) {
    if (PriceBlockJ[Block] >= 0 && PriceBlockScore[Block] > BestScore) {
      BestScore = PriceBlockScore[Block];
      BestJ = PriceBlockJ[Block];
      BestSigma = PriceBlockSigma[Block];
    }
  }
  SigmaOut = BestSigma;
  return BestJ;
}

int Worker::chooseEnteringBlandPar(bool Phase1, int &SigmaOut) {
  // Bland's rule wants the globally first improving index, so a full
  // batched pass would waste the early exit the scalar scan enjoys.
  // Instead sweep fixed-size groups of column blocks: within a group
  // each block finds its first improving index in parallel, then the
  // ascending-order merge takes the earliest hit - the same index the
  // scalar scan returns - and later groups are never priced.
  for (int Group = 0; Group < NumPriceBlocks; Group += BlandGroupBlocks) {
    int GroupEnd = std::min(NumPriceBlocks, Group + BlandGroupBlocks);
    std::int64_t ColBegin = static_cast<std::int64_t>(Group) * PriceGrain;
    std::int64_t ColEnd =
        std::min<std::int64_t>(NT, static_cast<std::int64_t>(GroupEnd) *
                                       PriceGrain);
    parallelForRanges(
        ColBegin, ColEnd,
        [&](std::int64_t Begin, std::int64_t End) {
          size_t Block = static_cast<size_t>(Begin / PriceGrain);
          int Found = -1;
          int FoundSigma = 0;
          for (std::int64_t J = Begin; J < End; ++J) {
            double RcJ = 0.0;
            int Sigma = priceColumn(static_cast<int>(J), Phase1, RcJ);
            if (Sigma != 0) {
              Found = static_cast<int>(J);
              FoundSigma = Sigma;
              break;
            }
          }
          PriceBlockFirst[Block] = Found;
          PriceBlockSigma[Block] = FoundSigma;
        },
        PriceGrain);
    for (int Block = Group; Block < GroupEnd; ++Block) {
      if (PriceBlockFirst[Block] >= 0) {
        SigmaOut = PriceBlockSigma[Block];
        return PriceBlockFirst[Block];
      }
    }
  }
  SigmaOut = 0;
  return -1;
}

void Worker::batchReducedCosts(bool Phase1) {
  KernelTimer Timer(Stats.PricingSeconds);
  parallelForRanges(
      0, NT,
      [&](std::int64_t Begin, std::int64_t End) {
        // Rc[J] stays untouched (stale) for skipped basic/fixed
        // columns, which no reader consults.
        for (std::int64_t J = Begin; J < End; ++J)
          priceColumn(static_cast<int>(J), Phase1, Rc[static_cast<size_t>(J)]);
      },
      PriceGrain);
}

Worker::RatioResult Worker::ratioTest(int J, int Sigma, bool Phase1) {
  KernelTimer Timer(Stats.RatioSeconds);
  return Par ? ratioTestParallel(J, Sigma, Phase1)
             : ratioTestScalar(J, Sigma, Phase1);
}

Worker::RatioResult Worker::ratioTestScalar(int J, int Sigma, bool Phase1) {
  RatioResult Result;
  double BestT = kInfinity;
  bool BestIsFlip = false;
  int BestRow = -1;
  bool BestAtUpper = false;
  double BestPivotMag = 0.0;

  // The entering variable's own travel between its bounds.
  if (std::isfinite(Lo[J]) && std::isfinite(Hi[J])) {
    BestT = Hi[J] - Lo[J];
    BestIsFlip = true;
  }

  for (int R = 0; R < M; ++R) {
    RowLimit L = rowLimit(R, Sigma, Phase1);
    if (!L.Blocking)
      continue;
    if (ratioBetter(L.Limit, L.WAbs, R, BestT, BestRow, BestPivotMag)) {
      BestT = L.Limit;
      BestRow = R;
      BestAtUpper = L.AtUpper;
      BestPivotMag = L.WAbs;
      BestIsFlip = false;
    }
  }

  if (!std::isfinite(BestT)) {
    Result.Unbounded = true;
    return Result;
  }
  Result.T = BestT;
  Result.Row = BestRow;
  Result.LeaveAtUpper = BestAtUpper;
  Result.BoundFlip = BestIsFlip;
  return Result;
}

Worker::RatioResult Worker::ratioTestParallel(int J, int Sigma, bool Phase1) {
  // Phase A - blocking-row preselection: rowLimit is pure per-row
  // arithmetic (the same helper the scalar scan uses), so row blocks
  // compute it in parallel, compacting the rows that actually block
  // (finite limit, pivot above tolerance) into per-block candidate
  // lists in row order.
  parallelForRanges(
      0, M,
      [&](std::int64_t Begin, std::int64_t End) {
        auto &Cands = RatioBlocks[static_cast<size_t>(Begin / RatioGrain)];
        Cands.clear();
        for (std::int64_t R = Begin; R < End; ++R) {
          RowLimit L = rowLimit(static_cast<int>(R), Sigma, Phase1);
          if (L.Blocking)
            Cands.push_back({L.Limit, L.WAbs, static_cast<int>(R),
                             L.AtUpper});
        }
      },
      RatioGrain);

  // Phase B - deterministic merge: a serial replay of the scalar scan
  // over the preselected rows in ascending block/row order. This must
  // stay serial: the tie window is relative to the incumbent BestT,
  // which drifts across ties, so "which row wins" is order-dependent -
  // a per-block winner could discard a row that wins a tie against a
  // *different* incumbent in the global ordering. Non-blocking rows
  // never touch the scalar state, so skipping them here is exact.
  RatioResult Result;
  double BestT = kInfinity;
  bool BestIsFlip = false;
  int BestRow = -1;
  bool BestAtUpper = false;
  double BestPivotMag = 0.0;

  // The entering variable's own travel between its bounds.
  if (std::isfinite(Lo[J]) && std::isfinite(Hi[J])) {
    BestT = Hi[J] - Lo[J];
    BestIsFlip = true;
  }

  for (int Block = 0; Block < NumRatioBlocks; ++Block) {
    for (const RatioCand &Cand : RatioBlocks[static_cast<size_t>(Block)]) {
      if (ratioBetter(Cand.Limit, Cand.WAbs, Cand.Row, BestT, BestRow,
                      BestPivotMag)) {
        BestT = Cand.Limit;
        BestRow = Cand.Row;
        BestAtUpper = Cand.AtUpper;
        BestPivotMag = Cand.WAbs;
        BestIsFlip = false;
      }
    }
  }

  if (!std::isfinite(BestT)) {
    Result.Unbounded = true;
    return Result;
  }
  Result.T = BestT;
  Result.Row = BestRow;
  Result.LeaveAtUpper = BestAtUpper;
  Result.BoundFlip = BestIsFlip;
  return Result;
}

void Worker::applyStep(int J, int Sigma, const RatioResult &R) {
  // Pivot-sequence digest (order-sensitive FNV-1a): entering index,
  // direction, and bound-flip vs. (row, leaving side). Tests compare it
  // across kernel paths and thread counts - equal hashes mean the
  // parallel kernels walked the exact scalar pivot path.
  auto Mix = [this](std::uint64_t V) {
    Stats.PivotHash = (Stats.PivotHash ^ V) * 0x100000001b3ULL;
  };
  Mix(static_cast<std::uint64_t>(J));
  Mix(static_cast<std::uint64_t>(Sigma + 2));
  if (R.BoundFlip) {
    ++Stats.BoundFlips;
    Mix(~std::uint64_t{0});
  } else {
    ++Stats.Pivots;
    Mix(static_cast<std::uint64_t>(R.Row));
    Mix(R.LeaveAtUpper ? 3 : 5);
  }

  double T = R.T;
  // Move all basic variables along the step direction.
  if (T != 0.0)
    for (int Row = 0; Row < M; ++Row)
      X[Basis[Row]] -= Sigma * T * W[Row];

  if (R.BoundFlip) {
    X[J] = Sigma > 0 ? Hi[J] : Lo[J];
    Stat[J] = Sigma > 0 ? VarStatus::AtUpper : VarStatus::AtLower;
    return;
  }

  assert(R.Row >= 0 && "pivot without a blocking row");
  int Leaving = Basis[R.Row];
  X[Leaving] = R.LeaveAtUpper ? Hi[Leaving] : Lo[Leaving];
  Stat[Leaving] = R.LeaveAtUpper ? VarStatus::AtUpper : VarStatus::AtLower;

  X[J] += Sigma * T;
  Basis[R.Row] = J;
  Stat[J] = VarStatus::Basic;
  updateBinv(R.Row);
  ++PivotsSinceRefactor;
}

void Worker::updateBinv(int PivotRow) {
  // Product-form update: with W = Binv * Atilde_entering, the new inverse
  // is E * Binv where E differs from the identity only in column
  // PivotRow. Rows other than the pivot row update independently, so
  // the eta update parallelizes over rows bit-identically.
  KernelTimer Timer(Stats.UpdateSeconds);
  double Pivot = W[PivotRow];
  assert(std::fabs(Pivot) > 0.0 && "zero pivot in eta update");
  double *PivRow = Binv.data() + static_cast<size_t>(PivotRow) * M;
  double Inv = 1.0 / Pivot;
  for (int C = 0; C < M; ++C)
    PivRow[C] *= Inv;
  auto UpdateRow = [&](int R) {
    if (R == PivotRow)
      return;
    double Factor = W[R];
    if (Factor == 0.0)
      return;
    linalg::kernelAxpy(Binv.data() + static_cast<size_t>(R) * M, PivRow,
                       -Factor, M, Opt.Determinism);
  };
  if (Par)
    parallelFor(0, M, [&](std::int64_t R) { UpdateRow(static_cast<int>(R)); });
  else
    for (int R = 0; R < M; ++R)
      UpdateRow(R);
}

SolveStatus Worker::iterate(bool Phase1) {
  Bland = false;
  Stall = 0;
  HavePrevObj = false;
  while (true) {
    // Cooperative cancellation: a relaxed load per iteration is noise
    // next to the O(M * NT) pricing pass below.
    if (Opt.CancelFlag &&
        Opt.CancelFlag->load(std::memory_order_relaxed))
      return SolveStatus::Cancelled;
    assert(scratchGrowths() == 0 &&
           "simplex hot loop allocated: a per-iteration scratch buffer "
           "grew after setup");
    if (Iterations >= Opt.MaxIterations)
      return SolveStatus::IterationLimit;
    if (PivotsSinceRefactor >= Opt.RefactorInterval) {
      if (!refactor())
        return SolveStatus::NumericalError;
      recomputeBasicValues();
    }

    double Obj;
    if (Phase1) {
      double Infeas = infeasibility();
      if (Infeas == 0.0)
        return SolveStatus::Optimal; // feasible; caller verifies
      for (int R = 0; R < M; ++R) {
        int K = Basis[R];
        double V = X[K];
        Cb[R] = V < Lo[K] - Opt.FeasTol   ? -1.0
                : V > Hi[K] + Opt.FeasTol ? 1.0
                                          : 0.0;
      }
      Obj = Infeas;
    } else {
      for (int R = 0; R < M; ++R)
        Cb[R] = Cost[Basis[R]];
      Obj = currentObjective();
    }
    computeDuals();

    // Cycling guard: no measurable progress for StallLimit iterations
    // switches pricing to Bland's rule until progress resumes.
    if (HavePrevObj && Obj >= PrevObj - 1e-12) {
      if (++Stall >= Opt.StallLimit)
        Bland = true;
    } else {
      Stall = 0;
      Bland = false;
    }
    PrevObj = Obj;
    HavePrevObj = true;

    int Sigma = 0;
    int Entering = chooseEntering(Phase1, Sigma);
    if (Entering < 0)
      return Phase1 ? SolveStatus::Infeasible : SolveStatus::Optimal;

    computeColumn(Entering);
    RatioResult R = ratioTest(Entering, Sigma, Phase1);
    if (R.Unbounded) {
      // A cost-improving ray. In phase 1 the objective is bounded below
      // by zero, so an unbounded ray indicates numerical trouble.
      return Phase1 ? SolveStatus::NumericalError : SolveStatus::Unbounded;
    }
    applyStep(Entering, Sigma, R);
    ++Iterations;
    if (Phase1)
      ++Phase1Iterations;
  }
}

LpSolution Worker::finish(SolveStatus Status) {
  LpSolution Out;
  Out.Status = Status;
  Out.Iterations = Iterations;
  Out.Phase1Iterations = Phase1Iterations;
  Stats.Iterations = Iterations;
  Stats.ParallelKernels = Par;
  Out.WarmStarted = WarmStartedV;
  if (Status != SolveStatus::Optimal) {
    Out.Stats = Stats;
    return Out;
  }

  if (Opt.ExportBasis) {
    auto B = std::make_shared<SimplexBasis>();
    B->NumRows = M;
    B->NumVars = NT;
    B->Basic = Basis;
    B->NonbasicState.resize(static_cast<size_t>(NT));
    for (int J = 0; J < NT; ++J)
      B->NonbasicState[static_cast<size_t>(J)] =
          static_cast<std::uint8_t>(Stat[static_cast<size_t>(J)]);
    B->Pivots = Stats.Pivots;
    Out.OptimalBasis = std::move(B);
  }

  Out.X.assign(X.begin(), X.begin() + NS);
  Out.Objective = Prob.objectiveValue(Out.X);

  // Duals: Y was last computed with phase-2 basic costs; unscale rows
  // and scatter over dropped (vacuous) rows.
  for (int R = 0; R < M; ++R)
    Cb[R] = Cost[Basis[R]];
  computeDuals();
  Out.RowDuals.assign(static_cast<size_t>(Prob.numRows()), 0.0);
  for (int R = 0; R < M; ++R)
    Out.RowDuals[KeptRows[R]] = Y[R] / RowScale[R];
  Out.Stats = Stats;
  return Out;
}

LpSolution Worker::run() {
  LpSolution Early;
  if (!buildProblem(Early))
    return Early;

  // Kernel-path decision, made once per solve: the blocked/parallel
  // kernels only pay off when the O(M^2) FTRAN/BTRAN and O(M * NT)
  // pricing passes dominate the pool-dispatch cost. Either path yields
  // bit-identical results; this is purely a performance crossover.
  Par = Opt.ParallelKernels && M >= Opt.ParallelMinDim;

  // Trivial cases first.
  if (NS == 0) {
    LpSolution Out;
    Out.Status = SolveStatus::Optimal;
    Out.RowDuals.assign(static_cast<size_t>(Prob.numRows()), 0.0);
    return Out;
  }
  if (M == 0) {
    LpSolution Out;
    Out.X.resize(NS);
    for (int J = 0; J < NS; ++J) {
      double C = Prob.objectiveCoef(J);
      double L = Prob.variableLo(J), H = Prob.variableHi(J);
      if (C > 0.0) {
        if (!std::isfinite(L)) {
          Out.Status = SolveStatus::Unbounded;
          Out.X.clear();
          return Out;
        }
        Out.X[J] = L;
      } else if (C < 0.0) {
        if (!std::isfinite(H)) {
          Out.Status = SolveStatus::Unbounded;
          Out.X.clear();
          return Out;
        }
        Out.X[J] = H;
      } else {
        Out.X[J] = std::isfinite(L) ? L : (std::isfinite(H) ? H : 0.0);
      }
    }
    Out.Status = SolveStatus::Optimal;
    Out.Objective = Prob.objectiveValue(Out.X);
    Out.RowDuals.assign(static_cast<size_t>(Prob.numRows()), 0.0);
    return Out;
  }

  initialBasis();

  // Warm start (advisory): crash onto the cached basis if it validates
  // and refactorizes; otherwise the slack basis from initialBasis() is
  // already in place (tryWarmStart restores it on a post-apply
  // failure), so the cold path below is untouched bit-for-bit.
  if (Opt.WarmBasis)
    WarmStartedV = tryWarmStart(*Opt.WarmBasis);

  // Phase 1 with refactorized verification: a "feasible" or
  // "infeasible" verdict from drifted arithmetic is re-checked against
  // a clean factorization before being believed.
  bool Feasible = false;
  bool InfeasibleConfirmed = false;
  for (int Attempt = 0; Attempt < 6 && !Feasible; ++Attempt) {
    SolveStatus Status = iterate(/*Phase1=*/true);
    if (Status == SolveStatus::IterationLimit ||
        Status == SolveStatus::NumericalError ||
        Status == SolveStatus::Unbounded ||
        Status == SolveStatus::Cancelled)
      return finish(Status == SolveStatus::Unbounded
                        ? SolveStatus::NumericalError
                        : Status);
    if (!refactor())
      return finish(SolveStatus::NumericalError);
    recomputeBasicValues();
    if (infeasibility() == 0.0) {
      Feasible = true;
      break;
    }
    if (Status == SolveStatus::Infeasible) {
      // Only believe an infeasibility verdict that is reproduced from a
      // freshly refactorized basis.
      if (InfeasibleConfirmed)
        return finish(SolveStatus::Infeasible);
      InfeasibleConfirmed = true;
      continue;
    }
    InfeasibleConfirmed = false;
    // Status was Optimal but the clean recompute disagrees: resume.
  }
  if (!Feasible)
    return finish(SolveStatus::NumericalError);

  // Phase 2, same verification discipline.
  for (int Attempt = 0; Attempt < 6; ++Attempt) {
    SolveStatus Status = iterate(/*Phase1=*/false);
    if (Status != SolveStatus::Optimal)
      return finish(Status);
    if (!refactor())
      return finish(SolveStatus::NumericalError);
    recomputeBasicValues();
    if (infeasibility() > 0.0) {
      // Drifted into infeasibility; clean it up via phase 1 again.
      SolveStatus P1 = iterate(/*Phase1=*/true);
      if (P1 != SolveStatus::Optimal)
        return finish(P1 == SolveStatus::Infeasible
                          ? SolveStatus::NumericalError
                          : P1);
      continue;
    }
    // Verify dual feasibility on the clean factorization. The parallel
    // path batches the reduced costs (same per-column bits) and checks
    // the sign conditions serially; the verdict is identical to the
    // scalar early-exit scan because the conditions are per-column.
    for (int R = 0; R < M; ++R)
      Cb[R] = Cost[Basis[R]];
    computeDuals();
    bool DualOk = true;
    if (Par)
      batchReducedCosts(/*Phase1=*/false);
    for (int J = 0; J < NT && DualOk; ++J) {
      if (Stat[J] == VarStatus::Basic || isFixed(J))
        continue;
      double RcJ = Par ? Rc[J] : Cost[J] - columnDot(Y, J);
      if ((Stat[J] == VarStatus::AtLower || Stat[J] == VarStatus::FreeNb) &&
          RcJ < -50 * Opt.OptTol)
        DualOk = false;
      if ((Stat[J] == VarStatus::AtUpper || Stat[J] == VarStatus::FreeNb) &&
          RcJ > 50 * Opt.OptTol)
        DualOk = false;
    }
    if (DualOk)
      return finish(SolveStatus::Optimal);
  }
  return finish(SolveStatus::NumericalError);
}

} // namespace

LpSolution prdnn::lp::solveLp(const LinearProgram &Problem,
                              const SimplexOptions &Options) {
  Worker W(Problem, Options);
  return W.run();
}
