//===- lp/LinearProgram.h - LP problem container ---------------*- C++ -*-===//
///
/// \file
/// Container for linear programs in general bounded form:
///
///   minimize    c . x
///   subject to  RowLo_i <= a_i . x <= RowHi_i   for every row i
///               VarLo_j <= x_j     <= VarHi_j   for every variable j
///
/// with +/- infinity allowed on any bound. This is the problem class the
/// paper hands to Gurobi (Definition 2.6 plus the standard two-sided
/// extension); lp/Simplex.h provides the solver.
///
//===----------------------------------------------------------------------===//

#ifndef PRDNN_LP_LINEARPROGRAM_H
#define PRDNN_LP_LINEARPROGRAM_H

#include <limits>
#include <vector>

namespace prdnn {
namespace lp {

/// Infinity marker for unbounded variable/row bounds.
constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// A single two-sided linear constraint RowLo <= sum coef*x <= RowHi,
/// stored sparsely.
struct LpRow {
  std::vector<int> Index;
  std::vector<double> Value;
  double Lo;
  double Hi;
};

/// General-form LP container; see file comment for the problem shape.
class LinearProgram {
public:
  /// Adds a variable with the given bounds and objective coefficient;
  /// returns its index.
  int addVariable(double Lo, double Hi, double ObjectiveCoef = 0.0);

  /// Adds a free (unbounded) variable; returns its index.
  int addFreeVariable(double ObjectiveCoef = 0.0) {
    return addVariable(-kInfinity, kInfinity, ObjectiveCoef);
  }

  void setObjectiveCoef(int Var, double Coef);

  /// Adds the two-sided row Lo <= sum Value[k]*x[Index[k]] <= Hi;
  /// returns the row index. Duplicate indices within a row are not
  /// allowed.
  int addRow(std::vector<int> Index, std::vector<double> Value, double Lo,
             double Hi);

  /// Convenience: sum coef*x <= Hi.
  int addRowLe(std::vector<int> Index, std::vector<double> Value, double Hi) {
    return addRow(std::move(Index), std::move(Value), -kInfinity, Hi);
  }

  /// Convenience: sum coef*x >= Lo.
  int addRowGe(std::vector<int> Index, std::vector<double> Value, double Lo) {
    return addRow(std::move(Index), std::move(Value), Lo, kInfinity);
  }

  /// Convenience: sum coef*x == Value.
  int addRowEq(std::vector<int> Index, std::vector<double> Value,
               double Rhs) {
    return addRow(std::move(Index), std::move(Value), Rhs, Rhs);
  }

  int numVariables() const { return static_cast<int>(VarLo.size()); }
  int numRows() const { return static_cast<int>(Rows.size()); }

  double variableLo(int Var) const { return VarLo[Var]; }
  double variableHi(int Var) const { return VarHi[Var]; }
  double objectiveCoef(int Var) const { return Objective[Var]; }
  const LpRow &row(int Row) const { return Rows[Row]; }

  /// Value of row \p Row's linear form at \p X.
  double rowActivity(int Row, const std::vector<double> &X) const;

  /// Objective value c . x.
  double objectiveValue(const std::vector<double> &X) const;

  /// Largest bound violation (rows and variables) of \p X; 0 when
  /// feasible.
  double maxViolation(const std::vector<double> &X) const;

private:
  std::vector<double> VarLo, VarHi, Objective;
  std::vector<LpRow> Rows;
};

} // namespace lp
} // namespace prdnn

#endif // PRDNN_LP_LINEARPROGRAM_H
