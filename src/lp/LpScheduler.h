//===- lp/LpScheduler.h - sharded scheduling of independent LPs -*- C++ -*-===//
///
/// \file
/// Runs a batch of independent LP solves (or any independent tasks)
/// concurrently on a fixed number of shard threads, instead of
/// serializing them on the calling thread. The motivating consumer is
/// the repair engine's auto-layer sweep (api/RepairEngine.cpp): each
/// candidate layer's repair attempt is an independent job whose LPs are
/// typically far below SimplexOptions::ParallelMinDim, so the blocked
/// in-solve kernels never engage and the sweep's parallelism must come
/// from running *whole attempts* side by side.
///
/// Model: the scheduler owns \c slots() shard threads for the duration
/// of one runTasks() call. Tasks are claimed from a single atomic
/// counter in ascending index order, so shards stay busy until the
/// batch drains regardless of per-task skew. Each task runs entirely on
/// one shard thread with its own solver instance and scratch (a
/// lp::Simplex Worker allocates all state per solve), so tasks share no
/// mutable state and need no locks.
///
/// Determinism: task *results* must not depend on which shard runs a
/// task or in what order tasks complete - true for repair attempts,
/// whose outputs are pure functions of their inputs at any thread count
/// (the library-wide contract). The caller indexes results by task and
/// assembles them serially afterwards, so a sharded batch is
/// bit-identical to the serial loop it replaces. Shared caches are safe
/// concurrent consumers: artifacts are content-addressed, so whichever
/// shard computes first publishes the same bits any other would.
///
//===----------------------------------------------------------------------===//

#ifndef PRDNN_LP_LPSCHEDULER_H
#define PRDNN_LP_LPSCHEDULER_H

#include <functional>

namespace prdnn {
namespace lp {

/// See the file comment.
class LpScheduler {
public:
  /// \p Slots caps concurrent tasks; <= 0 takes the global pool size
  /// (support/Parallel.h: PRDNN_NUM_THREADS or hardware concurrency).
  explicit LpScheduler(int Slots = 0);

  int slots() const { return SlotCount; }

  /// Runs \p Body(Task, Shard) for every Task in [0, NumTasks) across
  /// min(NumTasks, slots()) shard threads; Shard identifies the slot
  /// (0-based) the task leased. Blocks until the batch drains. \p
  /// ShouldStop, when non-null, is polled before each claim: once it
  /// returns true no further task starts (running tasks finish). The
  /// first exception thrown by a body is rethrown here after all
  /// shards join; later tasks are not claimed once one body has
  /// thrown.
  void runTasks(int NumTasks, const std::function<bool()> &ShouldStop,
                const std::function<void(int Task, int Shard)> &Body);

private:
  int SlotCount;
};

} // namespace lp
} // namespace prdnn

#endif // PRDNN_LP_LPSCHEDULER_H
