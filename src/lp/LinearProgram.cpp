//===- lp/LinearProgram.cpp ------------------------------------------------===//

#include "lp/LinearProgram.h"

#include <cassert>
#include <cmath>

using namespace prdnn;
using namespace prdnn::lp;

int LinearProgram::addVariable(double Lo, double Hi, double ObjectiveCoef) {
  assert(Lo <= Hi && "variable with empty bound interval");
  VarLo.push_back(Lo);
  VarHi.push_back(Hi);
  Objective.push_back(ObjectiveCoef);
  return numVariables() - 1;
}

void LinearProgram::setObjectiveCoef(int Var, double Coef) {
  assert(Var >= 0 && Var < numVariables() && "bad variable index");
  Objective[static_cast<size_t>(Var)] = Coef;
}

int LinearProgram::addRow(std::vector<int> Index, std::vector<double> Value,
                          double Lo, double Hi) {
  assert(Index.size() == Value.size() && "row index/value length mismatch");
  assert(Lo <= Hi && "row with empty bound interval");
#ifndef NDEBUG
  for (int I : Index)
    assert(I >= 0 && I < numVariables() && "row references unknown variable");
#endif
  Rows.push_back(LpRow{std::move(Index), std::move(Value), Lo, Hi});
  return numRows() - 1;
}

double LinearProgram::rowActivity(int Row, const std::vector<double> &X) const {
  const LpRow &R = Rows[static_cast<size_t>(Row)];
  double Sum = 0.0;
  for (size_t K = 0; K < R.Index.size(); ++K)
    Sum += R.Value[K] * X[static_cast<size_t>(R.Index[K])];
  return Sum;
}

double LinearProgram::objectiveValue(const std::vector<double> &X) const {
  double Sum = 0.0;
  for (int J = 0; J < numVariables(); ++J)
    Sum += Objective[static_cast<size_t>(J)] * X[static_cast<size_t>(J)];
  return Sum;
}

double LinearProgram::maxViolation(const std::vector<double> &X) const {
  double Worst = 0.0;
  for (int J = 0; J < numVariables(); ++J) {
    Worst = std::max(Worst, VarLo[J] - X[static_cast<size_t>(J)]);
    Worst = std::max(Worst, X[static_cast<size_t>(J)] - VarHi[J]);
  }
  for (int I = 0; I < numRows(); ++I) {
    double Activity = rowActivity(I, X);
    Worst = std::max(Worst, Rows[I].Lo - Activity);
    Worst = std::max(Worst, Activity - Rows[I].Hi);
  }
  return std::max(Worst, 0.0);
}
