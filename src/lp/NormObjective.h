//===- lp/NormObjective.h - minimal-norm delta LPs -------------*- C++ -*-===//
///
/// \file
/// Builds LPs whose decision variables encode a parameter-change vector
/// Delta with an l1, l-infinity, or combined norm objective, as used by
/// the repair algorithms (Definition 5.3's "user-defined measure of
/// size"). The l1 norm is encoded row-free by the classic split
/// Delta_j = P_j - Q_j with P, Q >= 0 and unit costs; the l-infinity
/// norm adds a bound variable T with coupling rows |Delta_j| <= T.
///
//===----------------------------------------------------------------------===//

#ifndef PRDNN_LP_NORMOBJECTIVE_H
#define PRDNN_LP_NORMOBJECTIVE_H

#include "lp/LinearProgram.h"
#include "lp/Simplex.h"

#include <vector>

namespace prdnn {
namespace lp {

/// Which norm of Delta the LP minimizes (Definition 5.3).
enum class Norm {
  L1,
  LInf,
  /// Sum of the l1 norm and a weighted l-infinity term; reduces the
  /// number of touched weights while also capping the largest change.
  L1PlusLInf,
};

const char *toString(Norm N);

/// An LP over an N-dimensional change vector Delta with a norm
/// objective. Constraints are stated directly over Delta; the encoding
/// into LP variables (variable splitting for l1, coupling rows for
/// l-infinity) is internal.
class DeltaLp {
public:
  /// \param NumDelta dimension of Delta.
  /// \param Objective which norm to minimize.
  /// \param Bound box constraint |Delta_j| <= Bound (kInfinity for
  ///        unbounded); a finite bound keeps phase-1 starts graceful.
  /// \param LInfWeight weight of the l-infinity term for L1PlusLInf.
  DeltaLp(int NumDelta, Norm Objective, double Bound = kInfinity,
          double LInfWeight = 1.0);

  int numDelta() const { return NumDelta; }

  /// Adds the constraint Lo <= Coef . Delta <= Hi. \p Coef is dense of
  /// dimension numDelta(); entries with magnitude <= \p DropTol are
  /// dropped from the row.
  void addConstraint(const std::vector<double> &Coef, double Lo, double Hi,
                     double DropTol = 0.0);

  const LinearProgram &problem() const { return Problem; }

  /// Recovers Delta from a solver solution over problem()'s variables.
  std::vector<double> extractDelta(const std::vector<double> &X) const;

  /// Norm value of the extracted Delta under this objective.
  double objectiveValue(const std::vector<double> &Delta) const;

private:
  int NumDelta;
  Norm Objective;
  double LInfWeight;
  LinearProgram Problem;
  // L1 / L1PlusLInf: PosBase..PosBase+N and NegBase.. are the split
  // variables. LInf: DeltaBase.. are the raw variables. TVar is the
  // l-infinity bound variable when present.
  int PosBase = -1, NegBase = -1, DeltaBase = -1, TVar = -1;
};

} // namespace lp
} // namespace prdnn

#endif // PRDNN_LP_NORMOBJECTIVE_H
