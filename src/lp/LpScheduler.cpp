//===- lp/LpScheduler.cpp -------------------------------------------------===//

#include "lp/LpScheduler.h"

#include "support/Parallel.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

using namespace prdnn;
using namespace prdnn::lp;

LpScheduler::LpScheduler(int Slots)
    : SlotCount(Slots > 0 ? Slots : globalThreadCount()) {
  if (SlotCount < 1)
    SlotCount = 1;
}

void LpScheduler::runTasks(
    int NumTasks, const std::function<bool()> &ShouldStop,
    const std::function<void(int Task, int Shard)> &Body) {
  if (NumTasks <= 0)
    return;

  // Dedicated shard threads rather than pool loops: a task may itself
  // call parallelFor (large LPs, Jacobian assembly), and nesting whole
  // multi-second tasks inside one pool loop would hold the pool's run
  // lock across the batch. The shard threads are coarse (one spawn per
  // slot per batch), so thread-creation cost is noise next to a solve.
  int Shards = NumTasks < SlotCount ? NumTasks : SlotCount;
  std::atomic<int> NextTask{0};
  std::exception_ptr FirstError;
  std::mutex ErrorMutex;
  std::atomic<bool> Failed{false};

  auto ShardMain = [&](int Shard) {
    while (true) {
      if (Failed.load(std::memory_order_relaxed) ||
          (ShouldStop && ShouldStop()))
        return;
      int Task = NextTask.fetch_add(1, std::memory_order_relaxed);
      if (Task >= NumTasks)
        return;
      try {
        Body(Task, Shard);
      } catch (...) {
        std::lock_guard<std::mutex> Lock(ErrorMutex);
        if (!FirstError)
          FirstError = std::current_exception();
        Failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  if (Shards == 1) {
    // Degenerate batch: run inline, no thread churn.
    ShardMain(0);
  } else {
    std::vector<std::thread> Threads;
    Threads.reserve(static_cast<std::size_t>(Shards - 1));
    for (int S = 1; S < Shards; ++S)
      Threads.emplace_back(ShardMain, S);
    ShardMain(0);
    for (std::thread &T : Threads)
      T.join();
  }
  if (FirstError)
    std::rethrow_exception(FirstError);
}
