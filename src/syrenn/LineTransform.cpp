//===- syrenn/LineTransform.cpp ----------------------------------------------===//

#include "syrenn/LineTransform.h"

#include "support/Casting.h"

#include <algorithm>
#include <cassert>

using namespace prdnn;

std::size_t LinePartition::approxBytes() const {
  return sizeof(*this) + Ts.size() * sizeof(double) +
         (static_cast<std::size_t>(A.size()) +
          static_cast<std::size_t>(B.size())) *
             sizeof(double);
}

Vector LinePartition::pointAt(double T) const {
  Vector P = B;
  P -= A;
  P *= T;
  P += A;
  return P;
}

LinePartition prdnn::lineRegions(const Network &Net, const Vector &A,
                                 const Vector &B) {
  assert(Net.isPiecewiseLinear() &&
         "LinRegions requires a piecewise-linear network");
  assert(A.size() == Net.inputSize() && B.size() == Net.inputSize() &&
         "segment endpoints must live in the input space");

  LinePartition Result;
  Result.A = A;
  Result.B = B;

  std::vector<double> Ts = {0.0, 1.0};
  std::vector<Vector> Vals = {A, B};

  std::vector<double> Fractions;
  for (int LayerIdx = 0; LayerIdx < Net.numLayers(); ++LayerIdx) {
    const Layer &L = Net.layer(LayerIdx);
    const auto *Act = dyn_cast<ActivationLayer>(&L);
    if (!Act) {
      // Affine layer: endpoint values map through; breakpoints are
      // unchanged (affine maps preserve affineness in t).
      applyBatchToRows(L, Vals);
      continue;
    }

    // Subdivide every piece at this activation's pattern crossings.
    std::vector<double> NewTs;
    std::vector<Vector> NewVals;
    NewTs.reserve(Ts.size());
    NewVals.reserve(Vals.size());
    for (size_t I = 0; I + 1 < Ts.size(); ++I) {
      NewTs.push_back(Ts[I]);
      NewVals.push_back(Vals[I]);

      Fractions.clear();
      Act->appendCrossings(Vals[I], Vals[I + 1], Fractions);
      if (Fractions.empty())
        continue;
      std::sort(Fractions.begin(), Fractions.end());
      double Span = Ts[I + 1] - Ts[I];
      for (double S : Fractions) {
        assert(S > 0.0 && S < 1.0 && "crossing fraction must be interior");
        double T = Ts[I] + S * Span;
        // Drop duplicates / numerically-coincident breakpoints.
        if (T - NewTs.back() <= 1e-12 || Ts[I + 1] - T <= 1e-12)
          continue;
        Vector V = Vals[I + 1];
        V -= Vals[I];
        V *= S;
        V += Vals[I];
        NewTs.push_back(T);
        NewVals.push_back(std::move(V));
      }
    }
    NewTs.push_back(Ts.back());
    NewVals.push_back(Vals.back());

    // Apply the activation at every breakpoint (sigma is continuous, so
    // breakpoint values remain exact).
    applyBatchToRows(*Act, NewVals);

    Ts = std::move(NewTs);
    Vals = std::move(NewVals);
  }

  Result.Ts = std::move(Ts);
  return Result;
}
