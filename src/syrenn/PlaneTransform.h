//===- syrenn/PlaneTransform.h - exact 2-D symbolic transform --*- C++ -*-===//
///
/// \file
/// Computes LinRegions(N, P) for a convex polygon P lying in a 2-D
/// affine subspace of the input space: the partition of P into convex
/// polygons on which N is affine. This is the 2-D transform of
/// Sotoudeh & Thakur [55], used by Task 3 (ACAS-style repair) where the
/// paper repairs 2-D slices of the 5-D input region.
///
/// Supported networks: any linear layers interleaved with *elementwise*
/// PWL activations (ReLU / LeakyReLU / HardTanh) - exactly the ACAS
/// family. Each activation unit's threshold induces a line in the
/// plane; polygons are split by Sutherland-Hodgman-style clipping.
///
//===----------------------------------------------------------------------===//

#ifndef PRDNN_SYRENN_PLANETRANSFORM_H
#define PRDNN_SYRENN_PLANETRANSFORM_H

#include "nn/Network.h"

#include <vector>

namespace prdnn {

/// One linear region of the network restricted to the input polygon.
struct PlaneRegion {
  /// Polygon vertices in input space, in boundary order.
  std::vector<Vector> InputVertices;
  /// Matching 2-D coordinates in the plane's orthonormal frame.
  std::vector<std::pair<double, double>> PlaneVertices;

  /// Average of the vertices: strictly interior for a convex polygon,
  /// hence a representative of the region's activation pattern.
  Vector centroid() const;

  /// Polygon area in the plane frame (shoelace).
  double area() const;

  /// Approximate heap footprint, for the artifact cache's byte budget.
  std::size_t approxBytes() const;
};

/// LinRegions(Net, conv(PolygonVertices)). The vertices must be in
/// convex position, ordered along the boundary, and coplanar (within a
/// 2-D affine subspace). Net must be PWL with elementwise activations.
std::vector<PlaneRegion> planeRegions(const Network &Net,
                                      const std::vector<Vector> &Polygon);

} // namespace prdnn

#endif // PRDNN_SYRENN_PLANETRANSFORM_H
