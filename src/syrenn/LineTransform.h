//===- syrenn/LineTransform.h - exact 1-D symbolic transform ---*- C++ -*-===//
///
/// \file
/// Computes LinRegions(N, [A, B]) for a piecewise-linear network N and a
/// segment [A, B] in its input space: the exact, minimal-up-to-
/// oversubdivision partition 0 = t_0 < ... < t_k = 1 such that N is
/// affine on each piece. This is the 1-D ExactLine transform of
/// Sotoudeh & Thakur [54, 55], which the paper's Algorithm 2 relies on.
///
/// Method: push the endpoint set through the network layer by layer.
/// Within a piece every intermediate value is affine in t (inductively),
/// so each activation layer's pattern changes only at computable
/// crossing fractions (ActivationLayer::appendCrossings); inserting
/// those as new breakpoints restores the invariant.
///
//===----------------------------------------------------------------------===//

#ifndef PRDNN_SYRENN_LINETRANSFORM_H
#define PRDNN_SYRENN_LINETRANSFORM_H

#include "nn/Network.h"

#include <vector>

namespace prdnn {

/// Partition of the segment A -> B into linear regions of a network.
struct LinePartition {
  Vector A, B;
  /// Breakpoints 0 = Ts.front() < ... < Ts.back() = 1; N is affine on
  /// [Ts[i], Ts[i+1]].
  std::vector<double> Ts;

  int numPieces() const { return static_cast<int>(Ts.size()) - 1; }

  /// Input-space point A + T (B - A).
  Vector pointAt(double T) const;

  /// Parameter midpoint of piece \p Piece (an interior representative).
  double midpoint(int Piece) const {
    return 0.5 * (Ts[static_cast<size_t>(Piece)] +
                  Ts[static_cast<size_t>(Piece) + 1]);
  }

  /// Approximate heap footprint, for the artifact cache's byte budget.
  std::size_t approxBytes() const;
};

/// LinRegions(Net, [A, B]); Net must be piecewise-linear.
LinePartition lineRegions(const Network &Net, const Vector &A,
                          const Vector &B);

} // namespace prdnn

#endif // PRDNN_SYRENN_LINETRANSFORM_H
