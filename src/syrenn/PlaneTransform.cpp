//===- syrenn/PlaneTransform.cpp ----------------------------------------------===//

#include "syrenn/PlaneTransform.h"

#include "nn/ActivationLayers.h"
#include "support/Casting.h"
#include "support/Parallel.h"

#include <cassert>
#include <cmath>

using namespace prdnn;

std::size_t PlaneRegion::approxBytes() const {
  std::size_t Total = sizeof(*this) +
                      PlaneVertices.size() * sizeof(std::pair<double, double>);
  for (const Vector &V : InputVertices)
    Total += sizeof(Vector) +
             static_cast<std::size_t>(V.size()) * sizeof(double);
  return Total;
}

Vector PlaneRegion::centroid() const {
  assert(!InputVertices.empty() && "centroid of empty polygon");
  Vector Sum(InputVertices.front().size());
  for (const Vector &V : InputVertices)
    Sum += V;
  Sum *= 1.0 / static_cast<double>(InputVertices.size());
  return Sum;
}

double PlaneRegion::area() const {
  double Twice = 0.0;
  int N = static_cast<int>(PlaneVertices.size());
  for (int I = 0; I < N; ++I) {
    const auto &[X1, Y1] = PlaneVertices[static_cast<size_t>(I)];
    const auto &[X2, Y2] = PlaneVertices[static_cast<size_t>((I + 1) % N)];
    Twice += X1 * Y2 - X2 * Y1;
  }
  return 0.5 * std::fabs(Twice);
}

namespace {

/// Working polygon: input-space vertices, plane coordinates, and the
/// current layer's value at each vertex.
struct WorkPolygon {
  std::vector<Vector> Input;
  std::vector<std::pair<double, double>> Plane;
  std::vector<Vector> Vals;

  int size() const { return static_cast<int>(Input.size()); }
};

double planeArea(const std::vector<std::pair<double, double>> &Pts) {
  double Twice = 0.0;
  int N = static_cast<int>(Pts.size());
  for (int I = 0; I < N; ++I) {
    const auto &[X1, Y1] = Pts[static_cast<size_t>(I)];
    const auto &[X2, Y2] = Pts[static_cast<size_t>((I + 1) % N)];
    Twice += X1 * Y2 - X2 * Y1;
  }
  return 0.5 * Twice;
}

/// Removes consecutive (plane-coordinate) duplicates.
void dedupe(WorkPolygon &Poly) {
  WorkPolygon Out;
  int N = Poly.size();
  for (int I = 0; I < N; ++I) {
    int Prev = (I + N - 1) % N;
    double Dx = Poly.Plane[I].first - Poly.Plane[Prev].first;
    double Dy = Poly.Plane[I].second - Poly.Plane[Prev].second;
    if (N > 1 && Dx * Dx + Dy * Dy < 1e-22)
      continue;
    Out.Input.push_back(Poly.Input[I]);
    Out.Plane.push_back(Poly.Plane[I]);
    Out.Vals.push_back(Poly.Vals[I]);
  }
  Poly = std::move(Out);
}

bool isDegenerate(const WorkPolygon &Poly) {
  return Poly.size() < 3 || std::fabs(planeArea(Poly.Plane)) < 1e-14;
}

/// Splits \p Poly by the level set {value[Unit] == Threshold}. Appends
/// the (up to two) non-degenerate sides to \p Out.
void splitPolygon(const WorkPolygon &Poly, int Unit, double Threshold,
                  std::vector<WorkPolygon> &Out) {
  int N = Poly.size();
  std::vector<double> D(static_cast<size_t>(N));
  double Scale = 0.0;
  for (int I = 0; I < N; ++I) {
    D[I] = Poly.Vals[I][Unit] - Threshold;
    Scale = std::max(Scale, std::fabs(D[I]));
  }
  double Eps = 1e-10 * std::max(1.0, Scale);

  bool AnyPos = false, AnyNeg = false;
  for (double V : D) {
    AnyPos |= V > Eps;
    AnyNeg |= V < -Eps;
  }
  if (!AnyPos || !AnyNeg) {
    Out.push_back(Poly);
    return;
  }

  WorkPolygon Pos, Neg;
  for (int I = 0; I < N; ++I) {
    int Next = (I + 1) % N;
    if (D[I] >= -Eps) {
      Pos.Input.push_back(Poly.Input[I]);
      Pos.Plane.push_back(Poly.Plane[I]);
      Pos.Vals.push_back(Poly.Vals[I]);
    }
    if (D[I] <= Eps) {
      Neg.Input.push_back(Poly.Input[I]);
      Neg.Plane.push_back(Poly.Plane[I]);
      Neg.Vals.push_back(Poly.Vals[I]);
    }
    bool Crosses = (D[I] > Eps && D[Next] < -Eps) ||
                   (D[I] < -Eps && D[Next] > Eps);
    if (!Crosses)
      continue;
    double S = D[I] / (D[I] - D[Next]);
    Vector In = Poly.Input[Next];
    In -= Poly.Input[I];
    In *= S;
    In += Poly.Input[I];
    Vector Val = Poly.Vals[Next];
    Val -= Poly.Vals[I];
    Val *= S;
    Val += Poly.Vals[I];
    std::pair<double, double> Pl{
        Poly.Plane[I].first + S * (Poly.Plane[Next].first -
                                   Poly.Plane[I].first),
        Poly.Plane[I].second + S * (Poly.Plane[Next].second -
                                    Poly.Plane[I].second)};
    Pos.Input.push_back(In);
    Pos.Plane.push_back(Pl);
    Pos.Vals.push_back(Val);
    Neg.Input.push_back(std::move(In));
    Neg.Plane.push_back(Pl);
    Neg.Vals.push_back(std::move(Val));
  }
  dedupe(Pos);
  dedupe(Neg);
  if (!isDegenerate(Pos))
    Out.push_back(std::move(Pos));
  if (!isDegenerate(Neg))
    Out.push_back(std::move(Neg));
}

} // namespace

std::vector<PlaneRegion>
prdnn::planeRegions(const Network &Net, const std::vector<Vector> &Polygon) {
  assert(Net.isPiecewiseLinear() &&
         "LinRegions requires a piecewise-linear network");
  assert(Polygon.size() >= 3 && "plane transform needs a polygon");

  // Build an orthonormal frame (U1, U2) of the polygon's plane.
  const Vector &Origin = Polygon.front();
  Vector U1 = Polygon[1];
  U1 -= Origin;
  double N1 = U1.norm2();
  assert(N1 > 1e-12 && "degenerate polygon edge");
  U1 *= 1.0 / N1;
  Vector U2;
  bool HaveU2 = false;
  for (size_t I = 2; I < Polygon.size() && !HaveU2; ++I) {
    Vector W = Polygon[I];
    W -= Origin;
    Vector Proj = U1 * W.dot(U1);
    W -= Proj;
    double N2 = W.norm2();
    if (N2 > 1e-9) {
      W *= 1.0 / N2;
      U2 = std::move(W);
      HaveU2 = true;
    }
  }
  assert(HaveU2 && "polygon vertices are collinear");

  WorkPolygon Initial;
  for (const Vector &V : Polygon) {
    Vector Rel = V;
    Rel -= Origin;
    Initial.Input.push_back(V);
    Initial.Plane.push_back({Rel.dot(U1), Rel.dot(U2)});
    Initial.Vals.push_back(V);
  }
  dedupe(Initial);
  assert(!isDegenerate(Initial) && "input polygon is degenerate");

  std::vector<WorkPolygon> Polys = {std::move(Initial)};
  std::vector<WorkPolygon> Next;

  for (int LayerIdx = 0; LayerIdx < Net.numLayers(); ++LayerIdx) {
    const Layer &L = Net.layer(LayerIdx);
    if (const auto *Linear = dyn_cast<LinearLayer>(&L)) {
      // Polygons are independent; each one maps its vertex set through
      // the layer in a single batched call.
      parallelFor(0, static_cast<std::int64_t>(Polys.size()),
                  [&](std::int64_t P) {
                    applyBatchToRows(*Linear,
                                     Polys[static_cast<size_t>(P)].Vals);
                  });
      continue;
    }
    const auto *Act = dyn_cast<ElementwiseActivation>(&L);
    assert(Act && "plane transform supports elementwise PWL activations "
                  "(no max-pool)");
    std::vector<double> Thresholds = Act->thresholds();
    for (int Unit = 0; Unit < Act->inputSize(); ++Unit) {
      for (double Th : Thresholds) {
        Next.clear();
        for (const WorkPolygon &Poly : Polys)
          splitPolygon(Poly, Unit, Th, Next);
        std::swap(Polys, Next);
      }
    }
    parallelFor(0, static_cast<std::int64_t>(Polys.size()),
                [&](std::int64_t P) {
                  for (Vector &V : Polys[static_cast<size_t>(P)].Vals)
                    V = Act->apply(V);
                });
  }

  std::vector<PlaneRegion> Result;
  Result.reserve(Polys.size());
  for (WorkPolygon &Poly : Polys) {
    PlaneRegion Region;
    Region.InputVertices = std::move(Poly.Input);
    Region.PlaneVertices = std::move(Poly.Plane);
    Result.push_back(std::move(Region));
  }
  return Result;
}
