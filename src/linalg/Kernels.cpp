//===- linalg/Kernels.cpp --------------------------------------------------===//
//
// Fast-tier kernel backends. Two implementations per primitive:
//
//  - avx2_fma: AVX2/FMA intrinsics compiled with a per-function target
//    attribute, so this translation unit builds fine under generic
//    flags (-mno-avx2) and the instructions only ever execute after a
//    runtime CPUID check passes.
//  - portable: four-accumulator unrolled scalar loops. Still
//    reassociated relative to Strict (hence epsilon-, not bit-,
//    comparable), but legal on any x86-64 / non-x86 host.
//
// The backend is resolved exactly once per process (thread-safe static
// init) from __builtin_cpu_supports, never from compile-time macros:
// a binary built on an AVX2 host must not SIGILL on an older machine.
//
//===----------------------------------------------------------------------===//

#include "linalg/Kernels.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define PRDNN_KERNELS_X86 1
#include <immintrin.h>
#endif

using namespace prdnn;
using namespace prdnn::linalg;

namespace {

// --- Portable backend ------------------------------------------------------
//
// Four independent accumulators expose instruction-level parallelism to
// any compiler; the pairwise (S0+S1)+(S2+S3) combine keeps the error
// profile close to the SIMD path's lane-wise reduction.

double dotPortable(const double *A, const double *B, int N) {
  double S0 = 0.0, S1 = 0.0, S2 = 0.0, S3 = 0.0;
  int I = 0;
  for (; I + 4 <= N; I += 4) {
    S0 += A[I] * B[I];
    S1 += A[I + 1] * B[I + 1];
    S2 += A[I + 2] * B[I + 2];
    S3 += A[I + 3] * B[I + 3];
  }
  double Sum = (S0 + S1) + (S2 + S3);
  for (; I < N; ++I)
    Sum += A[I] * B[I];
  return Sum;
}

void axpyPortable(double *Y, const double *X, double Scale, int N) {
  // Elementwise with independent elements: auto-vectorization cannot
  // change per-element rounding, so this matches Strict bit-for-bit
  // under -ffp-contract=off. Kept as the Fast fallback anyway so the
  // tier semantics ("Fast means epsilon, not bits") stay uniform.
  for (int I = 0; I < N; ++I)
    Y[I] += Scale * X[I];
}

#ifdef PRDNN_KERNELS_X86

// --- AVX2 + FMA backend ----------------------------------------------------

__attribute__((target("avx2,fma"))) double
dotAvx2(const double *A, const double *B, int N) {
  __m256d Acc0 = _mm256_setzero_pd();
  __m256d Acc1 = _mm256_setzero_pd();
  __m256d Acc2 = _mm256_setzero_pd();
  __m256d Acc3 = _mm256_setzero_pd();
  int I = 0;
  for (; I + 16 <= N; I += 16) {
    Acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(A + I), _mm256_loadu_pd(B + I),
                           Acc0);
    Acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(A + I + 4),
                           _mm256_loadu_pd(B + I + 4), Acc1);
    Acc2 = _mm256_fmadd_pd(_mm256_loadu_pd(A + I + 8),
                           _mm256_loadu_pd(B + I + 8), Acc2);
    Acc3 = _mm256_fmadd_pd(_mm256_loadu_pd(A + I + 12),
                           _mm256_loadu_pd(B + I + 12), Acc3);
  }
  for (; I + 4 <= N; I += 4)
    Acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(A + I), _mm256_loadu_pd(B + I),
                           Acc0);
  __m256d Acc = _mm256_add_pd(_mm256_add_pd(Acc0, Acc1),
                              _mm256_add_pd(Acc2, Acc3));
  __m128d Halves =
      _mm_add_pd(_mm256_castpd256_pd128(Acc), _mm256_extractf128_pd(Acc, 1));
  double Sum = _mm_cvtsd_f64(_mm_add_sd(Halves, _mm_unpackhi_pd(Halves,
                                                                Halves)));
  for (; I < N; ++I)
    Sum += A[I] * B[I];
  return Sum;
}

__attribute__((target("avx2,fma"))) void
axpyAvx2(double *Y, const double *X, double Scale, int N) {
  __m256d S = _mm256_set1_pd(Scale);
  int I = 0;
  for (; I + 8 <= N; I += 8) {
    _mm256_storeu_pd(
        Y + I, _mm256_fmadd_pd(S, _mm256_loadu_pd(X + I),
                               _mm256_loadu_pd(Y + I)));
    _mm256_storeu_pd(
        Y + I + 4, _mm256_fmadd_pd(S, _mm256_loadu_pd(X + I + 4),
                                   _mm256_loadu_pd(Y + I + 4)));
  }
  for (; I + 4 <= N; I += 4)
    _mm256_storeu_pd(
        Y + I, _mm256_fmadd_pd(S, _mm256_loadu_pd(X + I),
                               _mm256_loadu_pd(Y + I)));
  for (; I < N; ++I)
    Y[I] += Scale * X[I];
}

#endif // PRDNN_KERNELS_X86

struct Backend {
  double (*Dot)(const double *, const double *, int);
  void (*Axpy)(double *, const double *, double, int);
  const char *Name;
  bool Simd;
};

const Backend &resolvedBackend() {
  static const Backend B = [] {
#ifdef PRDNN_KERNELS_X86
    __builtin_cpu_init();
    if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma"))
      return Backend{dotAvx2, axpyAvx2, "avx2_fma", true};
#endif
    return Backend{dotPortable, axpyPortable, "portable", false};
  }();
  return B;
}

thread_local Determinism CurrentTier = Determinism::Strict;

} // namespace

const char *linalg::toString(Determinism Tier) {
  return Tier == Determinism::Strict ? "strict" : "fast";
}

const char *linalg::kernelBackendName() { return resolvedBackend().Name; }

bool linalg::kernelBackendIsSimd() { return resolvedBackend().Simd; }

double detail::fastDot(const double *A, const double *B, int N) {
  return resolvedBackend().Dot(A, B, N);
}

void detail::fastAxpy(double *Y, const double *X, double Scale, int N) {
  resolvedBackend().Axpy(Y, X, Scale, N);
}

Determinism linalg::currentKernelTier() { return CurrentTier; }

KernelTierScope::KernelTierScope(Determinism Tier) : Saved(CurrentTier) {
  CurrentTier = Tier;
}

KernelTierScope::~KernelTierScope() { CurrentTier = Saved; }
