//===- linalg/Vector.h - dense double vector -------------------*- C++ -*-===//
///
/// \file
/// Dense vector of doubles. This (with linalg/Matrix.h) replaces the
/// PyTorch tensor operations the paper's implementation relied on; the
/// repair pipeline only needs dense real arithmetic.
///
//===----------------------------------------------------------------------===//

#ifndef PRDNN_LINALG_VECTOR_H
#define PRDNN_LINALG_VECTOR_H

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <vector>

namespace prdnn {

/// Dense, heap-allocated vector of doubles with the handful of
/// operations the repair pipeline needs.
class Vector {
public:
  Vector() = default;

  /// Zero vector of dimension \p Size.
  explicit Vector(int Size) : Values(static_cast<size_t>(Size), 0.0) {
    assert(Size >= 0 && "negative vector size");
  }

  Vector(std::initializer_list<double> Init) : Values(Init) {}

  explicit Vector(std::vector<double> Init) : Values(std::move(Init)) {}

  /// Vector of dimension \p Size with every entry \p Value.
  static Vector constant(int Size, double Value);

  int size() const { return static_cast<int>(Values.size()); }

  double operator[](int Index) const {
    assert(Index >= 0 && Index < size() && "vector index out of range");
    return Values[static_cast<size_t>(Index)];
  }
  double &operator[](int Index) {
    assert(Index >= 0 && Index < size() && "vector index out of range");
    return Values[static_cast<size_t>(Index)];
  }

  const double *data() const { return Values.data(); }
  double *data() { return Values.data(); }
  const std::vector<double> &values() const { return Values; }

  auto begin() const { return Values.begin(); }
  auto end() const { return Values.end(); }

  Vector &operator+=(const Vector &Other);
  Vector &operator-=(const Vector &Other);
  Vector &operator*=(double Scale);

  Vector operator+(const Vector &Other) const;
  Vector operator-(const Vector &Other) const;
  Vector operator*(double Scale) const;

  double dot(const Vector &Other) const;

  /// Sum of absolute values.
  double norm1() const;
  /// Euclidean norm.
  double norm2() const;
  /// Maximum absolute value (0 for the empty vector).
  double normInf() const;

  /// Index of the (first) largest entry; vector must be non-empty.
  int argmax() const;

  /// Largest absolute difference against \p Other.
  double maxAbsDiff(const Vector &Other) const;

private:
  std::vector<double> Values;
};

} // namespace prdnn

#endif // PRDNN_LINALG_VECTOR_H
