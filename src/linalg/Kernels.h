//===- linalg/Kernels.h - dense kernel backends with tiers -----*- C++ -*-===//
///
/// \file
/// The kernel-backend layer behind every dense hot loop (GEMM in
/// Matrix.cpp, the simplex pricing/FTRAN/BTRAN/refactorization loops in
/// lp/Simplex.cpp): two explicit determinism tiers over the same two
/// primitives, dot and axpy.
///
///  - Determinism::Strict (the default) preserves the repo's bit-exact
///    contract: plain left-to-right scalar accumulation, no fusing, no
///    reassociation. It is byte-for-byte the pre-existing scalar loop -
///    the Strict path is inlined below precisely so routing a caller
///    through this layer cannot change its codegen-visible semantics.
///  - Determinism::Fast trades bit-reproducibility for throughput:
///    reassociated multi-accumulator reductions, and AVX2/FMA when the
///    *running* CPU supports it (decided once at runtime, never at
///    compile time - see kernelBackendName). Fast results are
///    epsilon-verified against Strict (tests/kernels_test.cpp,
///    bench_kernel_backends); the bound is documented in
///    src/linalg/README.md.
///
/// The active tier travels two ways: explicitly (every kernel takes a
/// Determinism argument) and ambiently (a thread-local set by
/// KernelTierScope, read by Matrix's default entry points so deep
/// callees like the batched-Jacobian GEMMs inherit the requesting
/// job's tier without signature churn). Worker threads do NOT inherit
/// the scope automatically - parallel callers must capture the tier by
/// value into their task lambdas, as Matrix.cpp does.
///
//===----------------------------------------------------------------------===//

#ifndef PRDNN_LINALG_KERNELS_H
#define PRDNN_LINALG_KERNELS_H

#include <cstdint>

namespace prdnn {
namespace linalg {

/// Kernel determinism tier. Values are the wire encoding
/// (rpc/Wire.cpp) - append only.
enum class Determinism : std::uint8_t {
  /// Bit-for-bit scalar accumulation order; identical results across
  /// thread counts, machines, and builds. Mandatory for warm-start
  /// basis replay and the ablation benches' identity checks.
  Strict = 0,
  /// Vectorized/reassociated accumulation, epsilon-close to Strict.
  /// Backend (AVX2+FMA vs portable unrolled scalar) is chosen at
  /// runtime per host, so Fast artifacts are not comparable across
  /// machines and never enter the Strict cache key space.
  Fast = 1,
};

const char *toString(Determinism Tier);

/// Name of the backend the Fast tier resolved to on this host:
/// "avx2_fma" or "portable". Resolved once, at first use, from CPUID -
/// a binary built with AVX2 available never executes AVX2 instructions
/// on a host without them.
const char *kernelBackendName();

/// True when the Fast tier is using SIMD (AVX2+FMA) on this host.
bool kernelBackendIsSimd();

namespace detail {

/// Out-of-line Fast-tier primitives (multi-accumulator / SIMD).
double fastDot(const double *A, const double *B, int N);
void fastAxpy(double *Y, const double *X, double Scale, int N);

} // namespace detail

/// Dot product sum_i A[i]*B[i].
///
/// Strict: the exact scalar loop every pre-existing caller ran, inlined
/// here so the compiler sees the same code it always did.
inline double kernelDot(const double *A, const double *B, int N,
                        Determinism Tier) {
  if (Tier == Determinism::Strict) {
    double Sum = 0.0;
    for (int I = 0; I < N; ++I)
      Sum += A[I] * B[I];
    return Sum;
  }
  return detail::fastDot(A, B, N);
}

/// Y[i] += Scale * X[i]. Callers' zero-skips (skipping Scale == 0
/// entirely) stay at the call site - they are semantically identical in
/// both tiers and part of the Strict accumulation order.
///
/// A subtraction loop `Y[i] -= F * X[i]` routes through here as
/// kernelAxpy(Y, X, -F, N): IEEE negation is exact and
/// a + (-t) == a - t, so the Strict bits are unchanged.
inline void kernelAxpy(double *Y, const double *X, double Scale, int N,
                       Determinism Tier) {
  if (Tier == Determinism::Strict) {
    for (int I = 0; I < N; ++I)
      Y[I] += Scale * X[I];
    return;
  }
  detail::fastAxpy(Y, X, Scale, N);
}

/// The calling thread's ambient tier (Strict unless a KernelTierScope
/// is live on this thread).
Determinism currentKernelTier();

/// RAII ambient-tier override for the current thread. Installed at the
/// top of each repair job (core/PointRepair.cpp) so the nn/ GEMMs the
/// job calls inherit the request's tier; restores the previous tier on
/// destruction, so nested scopes and reused pool threads stay correct.
class KernelTierScope {
public:
  explicit KernelTierScope(Determinism Tier);
  ~KernelTierScope();

  KernelTierScope(const KernelTierScope &) = delete;
  KernelTierScope &operator=(const KernelTierScope &) = delete;

private:
  Determinism Saved;
};

} // namespace linalg
} // namespace prdnn

#endif // PRDNN_LINALG_KERNELS_H
