//===- linalg/Matrix.h - dense row-major matrix ----------------*- C++ -*-===//
///
/// \file
/// Dense row-major matrix of doubles. Used for layer weights, the
/// backward accumulation matrices in nn/Jacobian.h, the simplex
/// solver's basis inverse, and - one point per row - the batches flowing
/// through the batched repair engine (Layer::applyBatch,
/// paramJacobianBatch).
///
/// The matrix products are cache-blocked and run on the global thread
/// pool (support/Parallel.h) when the operand sizes warrant it. Under
/// the default Strict determinism tier each output row is produced by
/// exactly one task with an accumulation order identical to the
/// sequential loop, so results are bit-for-bit independent of the
/// thread count. The Fast tier (linalg/Kernels.h) vectorizes the inner
/// loops instead and is epsilon-verified against Strict. Entry points
/// without an explicit tier argument read the calling thread's ambient
/// tier (linalg::currentKernelTier()); the tier is captured by value
/// before any pool fan-out so worker threads compute under the
/// caller's tier.
///
//===----------------------------------------------------------------------===//

#ifndef PRDNN_LINALG_MATRIX_H
#define PRDNN_LINALG_MATRIX_H

#include "linalg/Kernels.h"
#include "linalg/Vector.h"

#include <cassert>
#include <vector>

namespace prdnn {

/// Dense row-major matrix.
class Matrix {
public:
  Matrix() : NumRows(0), NumCols(0) {}

  /// Zero matrix with \p Rows x \p Cols entries.
  Matrix(int Rows, int Cols)
      : NumRows(Rows), NumCols(Cols),
        Values(static_cast<size_t>(Rows) * static_cast<size_t>(Cols), 0.0) {
    assert(Rows >= 0 && Cols >= 0 && "negative matrix shape");
  }

  static Matrix identity(int Size);

  /// Builds a matrix from nested initializer rows (for tests/examples).
  static Matrix fromRows(std::initializer_list<std::initializer_list<double>>
                             Rows);

  /// Stacks \p Rows (all of equal dimension) as the rows of a matrix:
  /// the standard way a batch of points becomes a batch matrix.
  static Matrix fromRowVectors(const std::vector<Vector> &Rows);

  int rows() const { return NumRows; }
  int cols() const { return NumCols; }

  double operator()(int Row, int Col) const {
    assert(Row >= 0 && Row < NumRows && Col >= 0 && Col < NumCols &&
           "matrix index out of range");
    return Values[static_cast<size_t>(Row) * NumCols + Col];
  }
  double &operator()(int Row, int Col) {
    assert(Row >= 0 && Row < NumRows && Col >= 0 && Col < NumCols &&
           "matrix index out of range");
    return Values[static_cast<size_t>(Row) * NumCols + Col];
  }

  const double *rowData(int Row) const {
    assert(Row >= 0 && Row < NumRows && "row index out of range");
    return Values.data() + static_cast<size_t>(Row) * NumCols;
  }
  double *rowData(int Row) {
    assert(Row >= 0 && Row < NumRows && "row index out of range");
    return Values.data() + static_cast<size_t>(Row) * NumCols;
  }

  /// Copies row \p Row into a Vector.
  Vector row(int Row) const;

  /// Overwrites row \p Row with \p V (dimension must equal cols()).
  void setRow(int Row, const Vector &V);

  /// Matrix-vector product A*x (ambient-tier overloads defer to the
  /// calling thread's linalg::currentKernelTier()).
  Vector apply(const Vector &X) const {
    return apply(X, linalg::currentKernelTier());
  }
  Vector apply(const Vector &X, linalg::Determinism Tier) const;

  /// Transposed product A^T * x.
  Vector applyTransposed(const Vector &X) const {
    return applyTransposed(X, linalg::currentKernelTier());
  }
  Vector applyTransposed(const Vector &X, linalg::Determinism Tier) const;

  /// Matrix-matrix product (*this) * Other. Cache-blocked over the
  /// inner dimension and parallel over output rows for large operands;
  /// under Strict the per-element accumulation order matches the naive
  /// loop exactly.
  Matrix multiply(const Matrix &Other) const {
    return multiply(Other, linalg::currentKernelTier());
  }
  Matrix multiply(const Matrix &Other, linalg::Determinism Tier) const;

  /// Product against a transposed right operand: (*this) * Other^T,
  /// with Other stored row-major (so each output entry is a dot product
  /// of two contiguous rows). This is the batched fully-connected
  /// forward kernel: Out = In * W^T.
  Matrix multiplyTransposed(const Matrix &Other) const {
    return multiplyTransposed(Other, linalg::currentKernelTier());
  }
  Matrix multiplyTransposed(const Matrix &Other,
                            linalg::Determinism Tier) const;

  Matrix transposed() const;

  Matrix &operator+=(const Matrix &Other);
  Matrix &operator*=(double Scale);

  /// Largest absolute entry.
  double normInf() const;

  /// Largest absolute difference against \p Other (shapes must match).
  double maxAbsDiff(const Matrix &Other) const;

private:
  int NumRows, NumCols;
  std::vector<double> Values;
};

} // namespace prdnn

#endif // PRDNN_LINALG_MATRIX_H
