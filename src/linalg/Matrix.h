//===- linalg/Matrix.h - dense row-major matrix ----------------*- C++ -*-===//
///
/// \file
/// Dense row-major matrix of doubles. Used for layer weights, the
/// backward accumulation matrices in nn/Jacobian.h, and the simplex
/// solver's basis inverse.
///
//===----------------------------------------------------------------------===//

#ifndef PRDNN_LINALG_MATRIX_H
#define PRDNN_LINALG_MATRIX_H

#include "linalg/Vector.h"

#include <cassert>
#include <vector>

namespace prdnn {

/// Dense row-major matrix.
class Matrix {
public:
  Matrix() : NumRows(0), NumCols(0) {}

  /// Zero matrix with \p Rows x \p Cols entries.
  Matrix(int Rows, int Cols)
      : NumRows(Rows), NumCols(Cols),
        Values(static_cast<size_t>(Rows) * static_cast<size_t>(Cols), 0.0) {
    assert(Rows >= 0 && Cols >= 0 && "negative matrix shape");
  }

  static Matrix identity(int Size);

  /// Builds a matrix from nested initializer rows (for tests/examples).
  static Matrix fromRows(std::initializer_list<std::initializer_list<double>>
                             Rows);

  int rows() const { return NumRows; }
  int cols() const { return NumCols; }

  double operator()(int Row, int Col) const {
    assert(Row >= 0 && Row < NumRows && Col >= 0 && Col < NumCols &&
           "matrix index out of range");
    return Values[static_cast<size_t>(Row) * NumCols + Col];
  }
  double &operator()(int Row, int Col) {
    assert(Row >= 0 && Row < NumRows && Col >= 0 && Col < NumCols &&
           "matrix index out of range");
    return Values[static_cast<size_t>(Row) * NumCols + Col];
  }

  const double *rowData(int Row) const {
    assert(Row >= 0 && Row < NumRows && "row index out of range");
    return Values.data() + static_cast<size_t>(Row) * NumCols;
  }
  double *rowData(int Row) {
    assert(Row >= 0 && Row < NumRows && "row index out of range");
    return Values.data() + static_cast<size_t>(Row) * NumCols;
  }

  /// Matrix-vector product A*x.
  Vector apply(const Vector &X) const;

  /// Transposed product A^T * x.
  Vector applyTransposed(const Vector &X) const;

  /// Matrix-matrix product (*this) * Other.
  Matrix multiply(const Matrix &Other) const;

  Matrix transposed() const;

  Matrix &operator+=(const Matrix &Other);
  Matrix &operator*=(double Scale);

  /// Largest absolute entry.
  double normInf() const;

  /// Largest absolute difference against \p Other (shapes must match).
  double maxAbsDiff(const Matrix &Other) const;

private:
  int NumRows, NumCols;
  std::vector<double> Values;
};

} // namespace prdnn

#endif // PRDNN_LINALG_MATRIX_H
