//===- linalg/Vector.cpp ---------------------------------------------------===//

#include "linalg/Vector.h"

#include <cmath>

using namespace prdnn;

Vector Vector::constant(int Size, double Value) {
  Vector Result(Size);
  for (int I = 0; I < Size; ++I)
    Result[I] = Value;
  return Result;
}

Vector &Vector::operator+=(const Vector &Other) {
  assert(size() == Other.size() && "vector size mismatch");
  for (int I = 0, E = size(); I < E; ++I)
    Values[static_cast<size_t>(I)] += Other[I];
  return *this;
}

Vector &Vector::operator-=(const Vector &Other) {
  assert(size() == Other.size() && "vector size mismatch");
  for (int I = 0, E = size(); I < E; ++I)
    Values[static_cast<size_t>(I)] -= Other[I];
  return *this;
}

Vector &Vector::operator*=(double Scale) {
  for (double &V : Values)
    V *= Scale;
  return *this;
}

Vector Vector::operator+(const Vector &Other) const {
  Vector Result = *this;
  Result += Other;
  return Result;
}

Vector Vector::operator-(const Vector &Other) const {
  Vector Result = *this;
  Result -= Other;
  return Result;
}

Vector Vector::operator*(double Scale) const {
  Vector Result = *this;
  Result *= Scale;
  return Result;
}

double Vector::dot(const Vector &Other) const {
  assert(size() == Other.size() && "vector size mismatch");
  double Sum = 0.0;
  for (int I = 0, E = size(); I < E; ++I)
    Sum += (*this)[I] * Other[I];
  return Sum;
}

double Vector::norm1() const {
  double Sum = 0.0;
  for (double V : Values)
    Sum += std::fabs(V);
  return Sum;
}

double Vector::norm2() const { return std::sqrt(dot(*this)); }

double Vector::normInf() const {
  double Max = 0.0;
  for (double V : Values)
    Max = std::max(Max, std::fabs(V));
  return Max;
}

int Vector::argmax() const {
  assert(size() > 0 && "argmax of empty vector");
  int Best = 0;
  for (int I = 1, E = size(); I < E; ++I)
    if ((*this)[I] > (*this)[Best])
      Best = I;
  return Best;
}

double Vector::maxAbsDiff(const Vector &Other) const {
  assert(size() == Other.size() && "vector size mismatch");
  double Max = 0.0;
  for (int I = 0, E = size(); I < E; ++I)
    Max = std::max(Max, std::fabs((*this)[I] - Other[I]));
  return Max;
}
