//===- linalg/Matrix.cpp ---------------------------------------------------===//

#include "linalg/Matrix.h"

#include "support/Parallel.h"

#include <algorithm>
#include <cmath>

using namespace prdnn;

namespace {

/// K-dimension block size for the GEMM kernels: 256 doubles (2 KB) of
/// the left row stay hot while the matching right-rows block streams.
constexpr int kGemmKBlock = 256;

/// Flop threshold below which a product runs inline; smaller products
/// lose more to task handoff than they gain from the pool.
constexpr double kParallelFlopThreshold = 1e5;

} // namespace

Matrix Matrix::identity(int Size) {
  Matrix Result(Size, Size);
  for (int I = 0; I < Size; ++I)
    Result(I, I) = 1.0;
  return Result;
}

Matrix Matrix::fromRows(
    std::initializer_list<std::initializer_list<double>> Rows) {
  int NumRows = static_cast<int>(Rows.size());
  int NumCols = NumRows == 0 ? 0 : static_cast<int>(Rows.begin()->size());
  Matrix Result(NumRows, NumCols);
  int R = 0;
  for (const auto &Row : Rows) {
    assert(static_cast<int>(Row.size()) == NumCols && "ragged matrix rows");
    int C = 0;
    for (double V : Row)
      Result(R, C++) = V;
    ++R;
  }
  return Result;
}

Matrix Matrix::fromRowVectors(const std::vector<Vector> &Rows) {
  int NumRows = static_cast<int>(Rows.size());
  int NumCols = NumRows == 0 ? 0 : Rows.front().size();
  Matrix Result(NumRows, NumCols);
  for (int R = 0; R < NumRows; ++R) {
    assert(Rows[static_cast<size_t>(R)].size() == NumCols &&
           "ragged matrix rows");
    Result.setRow(R, Rows[static_cast<size_t>(R)]);
  }
  return Result;
}

Vector Matrix::row(int Row) const {
  Vector Result(NumCols);
  const double *Data = rowData(Row);
  for (int C = 0; C < NumCols; ++C)
    Result[C] = Data[C];
  return Result;
}

void Matrix::setRow(int Row, const Vector &V) {
  assert(V.size() == NumCols && "row width mismatch");
  double *Data = rowData(Row);
  for (int C = 0; C < NumCols; ++C)
    Data[C] = V[C];
}

Vector Matrix::apply(const Vector &X, linalg::Determinism Tier) const {
  assert(X.size() == NumCols && "matrix-vector shape mismatch");
  Vector Result(NumRows);
  for (int R = 0; R < NumRows; ++R)
    Result[R] = linalg::kernelDot(rowData(R), X.data(), NumCols, Tier);
  return Result;
}

Vector Matrix::applyTransposed(const Vector &X,
                               linalg::Determinism Tier) const {
  assert(X.size() == NumRows && "matrix-vector shape mismatch");
  Vector Result(NumCols);
  for (int R = 0; R < NumRows; ++R) {
    double Scale = X[R];
    if (Scale == 0.0)
      continue;
    linalg::kernelAxpy(Result.data(), rowData(R), Scale, NumCols, Tier);
  }
  return Result;
}

Matrix Matrix::multiply(const Matrix &Other, linalg::Determinism Tier) const {
  assert(NumCols == Other.NumRows && "matrix-matrix shape mismatch");
  Matrix Result(NumRows, Other.NumCols);
  // Blocked ikj kernel: K-blocks ascend, so under Strict each output
  // element accumulates in the same order (with the same zero-skips) as
  // the naive loop - blocking and threading never change the result
  // bits. The tier is captured by value so pool workers use the
  // caller's tier, not their own thread-local default.
  auto RowRange = [&, Tier](std::int64_t RowBegin, std::int64_t RowEnd) {
    for (int KBlock = 0; KBlock < NumCols; KBlock += kGemmKBlock) {
      int KEnd = std::min(KBlock + kGemmKBlock, NumCols);
      for (int R = static_cast<int>(RowBegin); R < RowEnd; ++R) {
        const double *LhsRow = rowData(R);
        double *OutRow = Result.rowData(R);
        for (int K = KBlock; K < KEnd; ++K) {
          double Scale = LhsRow[K];
          if (Scale == 0.0)
            continue;
          linalg::kernelAxpy(OutRow, Other.rowData(K), Scale, Other.NumCols,
                             Tier);
        }
      }
    }
  };
  double Flops = static_cast<double>(NumRows) * NumCols * Other.NumCols;
  if (Flops >= kParallelFlopThreshold)
    parallelForRanges(0, NumRows, RowRange);
  else
    RowRange(0, NumRows);
  return Result;
}

Matrix Matrix::multiplyTransposed(const Matrix &Other,
                                  linalg::Determinism Tier) const {
  assert(NumCols == Other.NumCols && "matrix-matrix shape mismatch");
  Matrix Result(NumRows, Other.NumRows);
  auto RowRange = [&, Tier](std::int64_t RowBegin, std::int64_t RowEnd) {
    for (int R = static_cast<int>(RowBegin); R < RowEnd; ++R) {
      const double *LhsRow = rowData(R);
      double *OutRow = Result.rowData(R);
      for (int O = 0; O < Other.NumRows; ++O)
        OutRow[O] =
            linalg::kernelDot(Other.rowData(O), LhsRow, NumCols, Tier);
    }
  };
  double Flops = static_cast<double>(NumRows) * NumCols * Other.NumRows;
  if (Flops >= kParallelFlopThreshold)
    parallelForRanges(0, NumRows, RowRange);
  else
    RowRange(0, NumRows);
  return Result;
}

Matrix Matrix::transposed() const {
  Matrix Result(NumCols, NumRows);
  for (int R = 0; R < NumRows; ++R)
    for (int C = 0; C < NumCols; ++C)
      Result(C, R) = (*this)(R, C);
  return Result;
}

Matrix &Matrix::operator+=(const Matrix &Other) {
  assert(NumRows == Other.NumRows && NumCols == Other.NumCols &&
         "matrix shape mismatch");
  for (size_t I = 0, E = Values.size(); I < E; ++I)
    Values[I] += Other.Values[I];
  return *this;
}

Matrix &Matrix::operator*=(double Scale) {
  for (double &V : Values)
    V *= Scale;
  return *this;
}

double Matrix::normInf() const {
  double Max = 0.0;
  for (double V : Values)
    Max = std::max(Max, std::fabs(V));
  return Max;
}

double Matrix::maxAbsDiff(const Matrix &Other) const {
  assert(NumRows == Other.NumRows && NumCols == Other.NumCols &&
         "matrix shape mismatch");
  double Max = 0.0;
  for (size_t I = 0, E = Values.size(); I < E; ++I)
    Max = std::max(Max, std::fabs(Values[I] - Other.Values[I]));
  return Max;
}
