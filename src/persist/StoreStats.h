//===- persist/StoreStats.h - persistent-store counters --------*- C++ -*-===//
///
/// \file
/// Counters of one persist::ArtifactStore. A standalone header (no
/// dependencies) so cache/ArtifactCache.h can embed it in CacheStats
/// without pulling the store - which itself depends on the cache's
/// artifact types - into every cache consumer.
///
//===----------------------------------------------------------------------===//

#ifndef PRDNN_PERSIST_STORESTATS_H
#define PRDNN_PERSIST_STORESTATS_H

#include <cstdint>

namespace prdnn {
namespace persist {

/// Aggregate counters; monotonic except BytesHeld / Entries /
/// PendingWrites.
struct StoreStats {
  /// load() found and decoded an entry.
  std::uint64_t Hits = 0;
  /// load() found nothing usable (absent or corrupt).
  std::uint64_t Misses = 0;
  /// Entries published (temp-write + rename completed).
  std::uint64_t Writes = 0;
  /// Write-behind requests skipped: entry already on disk, blob larger
  /// than the whole budget, or the write queue was full.
  std::uint64_t WriteSkips = 0;
  /// Entries deleted by the byte-budget GC (LRU by mtime).
  std::uint64_t Evictions = 0;
  /// Entries that failed frame/payload validation on load; each is
  /// deleted and counted as a miss, so corruption degrades to a
  /// recompute, never a wrong answer.
  std::uint64_t CorruptSkips = 0;
  /// Approximate on-disk footprint (exact after the last GC scan).
  std::uint64_t BytesHeld = 0;
  std::uint64_t Entries = 0;
  std::uint64_t BudgetBytes = 0;
  /// Write-behind requests queued but not yet published.
  std::uint64_t PendingWrites = 0;

  double hitRate() const {
    std::uint64_t Total = Hits + Misses;
    return Total == 0 ? 0.0
                      : static_cast<double>(Hits) /
                            static_cast<double>(Total);
  }
};

} // namespace persist
} // namespace prdnn

#endif // PRDNN_PERSIST_STORESTATS_H
