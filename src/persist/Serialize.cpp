//===- persist/Serialize.cpp ----------------------------------------------===//

#include "persist/Serialize.h"

#include "nn/ActivationLayers.h"
#include "nn/LinearLayers.h"
#include "nn/Network.h"
#include "nn/PoolLayers.h"
#include "support/Casting.h"
#include "support/Error.h"

#include <cassert>
#include <fstream>

using namespace prdnn;
using namespace prdnn::persist;

namespace {

// Sanity bounds for deserialized dimensions: generous for any network
// this library runs, small enough that garbage input cannot trigger
// multi-gigabyte allocations before validation catches it.
constexpr int kMaxDim = 1 << 22;
constexpr std::int64_t kMaxParams = std::int64_t(1) << 28;

bool validDim(int V) { return V > 0 && V <= kMaxDim; }

/// A*B*C as a flat activation size: every partial product is checked
/// before multiplying, so dimensions that each pass validDim cannot
/// overflow (or merely explode) the product.
bool validSize3(int A, int B, int C) {
  std::int64_t AB = static_cast<std::int64_t>(A) * B;
  return AB <= kMaxDim && AB * C <= kMaxDim;
}

/// OutC*InC*KH*KW + OutC without intermediate overflow; -1 when over
/// the kMaxParams bound.
std::int64_t convParamCount(int OutC, int InC, int KH, int KW) {
  std::int64_t A = static_cast<std::int64_t>(OutC) * InC; // <= 2^44
  std::int64_t B = static_cast<std::int64_t>(KH) * KW;    // <= 2^44
  if (A > kMaxParams || B > kMaxParams || A > kMaxParams / B)
    return -1;
  std::int64_t Total = A * B + OutC;
  return Total > kMaxParams ? -1 : Total;
}

/// Guards an element count against the bytes actually left in the
/// stream (every element is at least \p ElementBytes wide), so a
/// corrupted count fails before allocation instead of after.
bool plausibleCount(ByteReader &R, std::uint64_t Count,
                    std::size_t ElementBytes) {
  if (Count > R.remaining() / ElementBytes) {
    R.fail(CodecError::Corrupt);
    return false;
  }
  return true;
}

void writeDoubleSeq(ByteWriter &W, const std::vector<double> &Values) {
  W.u64(Values.size());
  W.doubles(Values.data(), Values.size());
}

bool readDoubleSeq(ByteReader &R, std::vector<double> &Values) {
  std::uint64_t Count = 0;
  if (!R.u64(Count) || !plausibleCount(R, Count, 8))
    return false;
  Values.resize(static_cast<std::size_t>(Count));
  return R.doubles(Values.data(), Values.size());
}

// --- Artifact payloads ------------------------------------------------------

void writeJacobianRows(ByteWriter &W, const JacobianRowsArtifact &A) {
  W.u64(A.Coef.size());
  for (const std::vector<double> &Row : A.Coef)
    writeDoubleSeq(W, Row);
  writeDoubleSeq(W, A.Hi);
}

std::shared_ptr<const CacheArtifact> readJacobianRows(ByteReader &R) {
  auto A = std::make_shared<JacobianRowsArtifact>();
  std::uint64_t Rows = 0;
  if (!R.u64(Rows) || !plausibleCount(R, Rows, 8))
    return nullptr;
  A->Coef.resize(static_cast<std::size_t>(Rows));
  for (std::vector<double> &Row : A->Coef)
    if (!readDoubleSeq(R, Row))
      return nullptr;
  if (!readDoubleSeq(R, A->Hi))
    return nullptr;
  if (A->Hi.size() != A->Coef.size()) {
    R.fail(CodecError::Corrupt);
    return nullptr;
  }
  return A;
}

void writeLinePartition(ByteWriter &W, const LinePartition &Line) {
  writeVector(W, Line.A);
  writeVector(W, Line.B);
  writeDoubleSeq(W, Line.Ts);
}

bool readLinePartition(ByteReader &R, LinePartition &Line) {
  if (!readVector(R, Line.A) || !readVector(R, Line.B) ||
      !readDoubleSeq(R, Line.Ts))
    return false;
  if (Line.Ts.size() < 2 || Line.A.size() != Line.B.size()) {
    R.fail(CodecError::Corrupt);
    return false;
  }
  return true;
}

void writePlaneRegion(ByteWriter &W, const PlaneRegion &Region) {
  W.u64(Region.InputVertices.size());
  for (const Vector &V : Region.InputVertices)
    writeVector(W, V);
  assert(Region.PlaneVertices.size() == Region.InputVertices.size() &&
         "plane region vertex lists disagree");
  for (const auto &[X, Y] : Region.PlaneVertices) {
    W.f64(X);
    W.f64(Y);
  }
}

bool readPlaneRegion(ByteReader &R, PlaneRegion &Region) {
  std::uint64_t Verts = 0;
  if (!R.u64(Verts) || !plausibleCount(R, Verts, 8))
    return false;
  Region.InputVertices.resize(static_cast<std::size_t>(Verts));
  for (Vector &V : Region.InputVertices)
    if (!readVector(R, V))
      return false;
  Region.PlaneVertices.resize(static_cast<std::size_t>(Verts));
  for (auto &[X, Y] : Region.PlaneVertices)
    if (!R.f64(X) || !R.f64(Y))
      return false;
  return true;
}

void writeSyrennTransform(ByteWriter &W, const SyrennTransformArtifact &A) {
  W.u64(A.Partitions.size());
  for (const SyrennTransformArtifact::Partition &P : A.Partitions) {
    if (const auto *Line = std::get_if<LinePartition>(&P)) {
      W.u8(0);
      writeLinePartition(W, *Line);
    } else {
      const auto &Regions = std::get<std::vector<PlaneRegion>>(P);
      W.u8(1);
      W.u64(Regions.size());
      for (const PlaneRegion &Region : Regions)
        writePlaneRegion(W, Region);
    }
  }
}

std::shared_ptr<const CacheArtifact> readSyrennTransform(ByteReader &R) {
  auto A = std::make_shared<SyrennTransformArtifact>();
  std::uint64_t Count = 0;
  if (!R.u64(Count) || !plausibleCount(R, Count, 1))
    return nullptr;
  A->Partitions.resize(static_cast<std::size_t>(Count));
  for (SyrennTransformArtifact::Partition &P : A->Partitions) {
    std::uint8_t Tag = 0;
    if (!R.u8(Tag))
      return nullptr;
    if (Tag == 0) {
      LinePartition Line;
      if (!readLinePartition(R, Line))
        return nullptr;
      P = std::move(Line);
    } else if (Tag == 1) {
      std::uint64_t Regions = 0;
      if (!R.u64(Regions) || !plausibleCount(R, Regions, 8))
        return nullptr;
      std::vector<PlaneRegion> Parsed(static_cast<std::size_t>(Regions));
      for (PlaneRegion &Region : Parsed)
        if (!readPlaneRegion(R, Region))
          return nullptr;
      P = std::move(Parsed);
    } else {
      R.fail(CodecError::Corrupt);
      return nullptr;
    }
  }
  return A;
}

void writePatternBatch(ByteWriter &W, const PatternBatchArtifact &A) {
  W.u64(A.Patterns.size());
  for (const NetworkPattern &Pattern : A.Patterns)
    writePattern(W, Pattern);
}

std::shared_ptr<const CacheArtifact> readPatternBatch(ByteReader &R) {
  auto A = std::make_shared<PatternBatchArtifact>();
  std::uint64_t Count = 0;
  if (!R.u64(Count) || !plausibleCount(R, Count, 4))
    return nullptr;
  A->Patterns.resize(static_cast<std::size_t>(Count));
  for (NetworkPattern &Pattern : A->Patterns)
    if (!readPattern(R, Pattern))
      return nullptr;
  return A;
}

void writeSimplexBasis(ByteWriter &W, const SimplexBasisArtifact &A) {
  W.i32(A.NumRows);
  W.i32(A.NumVars);
  W.i32(A.Pivots);
  W.u64(A.RhsDigest.Hi);
  W.u64(A.RhsDigest.Lo);
  W.u64(A.Basic.size());
  for (int V : A.Basic)
    W.i32(V);
  W.u64(A.NonbasicState.size());
  W.bytes(A.NonbasicState.data(), A.NonbasicState.size());
}

std::shared_ptr<const CacheArtifact> readSimplexBasis(ByteReader &R) {
  auto A = std::make_shared<SimplexBasisArtifact>();
  if (!R.i32(A->NumRows) || !R.i32(A->NumVars) || !R.i32(A->Pivots))
    return nullptr;
  if (!R.u64(A->RhsDigest.Hi) || !R.u64(A->RhsDigest.Lo))
    return nullptr;
  std::uint64_t Rows = 0;
  if (!R.u64(Rows) || !plausibleCount(R, Rows, 4))
    return nullptr;
  A->Basic.resize(static_cast<std::size_t>(Rows));
  for (int &V : A->Basic)
    if (!R.i32(V))
      return nullptr;
  std::uint64_t Vars = 0;
  if (!R.u64(Vars) || !plausibleCount(R, Vars, 1))
    return nullptr;
  A->NonbasicState.resize(static_cast<std::size_t>(Vars));
  if (!R.bytes(A->NonbasicState.data(), A->NonbasicState.size()))
    return nullptr;
  // Structural coherence: the counts must match the recorded shape and
  // each basic index must be a valid, basic-marked variable. The solver
  // re-validates on injection (tryWarmStart), but a corrupted store
  // entry should be rejected - and deleted - at the codec boundary.
  if (A->NumRows < 0 || A->NumVars < 0 ||
      A->Basic.size() != static_cast<std::size_t>(A->NumRows) ||
      A->NonbasicState.size() != static_cast<std::size_t>(A->NumVars)) {
    R.fail(CodecError::Corrupt);
    return nullptr;
  }
  for (int V : A->Basic)
    if (V < 0 || V >= A->NumVars) {
      R.fail(CodecError::Corrupt);
      return nullptr;
    }
  for (std::uint8_t S : A->NonbasicState)
    if (S > 3) {
      R.fail(CodecError::Corrupt);
      return nullptr;
    }
  return A;
}

} // namespace

void prdnn::persist::writeVector(ByteWriter &W, const Vector &V) {
  W.u32(static_cast<std::uint32_t>(V.size()));
  W.doubles(V.data(), static_cast<std::size_t>(V.size()));
}

bool prdnn::persist::readVector(ByteReader &R, Vector &V) {
  std::uint32_t Size = 0;
  if (!R.u32(Size) || !plausibleCount(R, Size, 8))
    return false;
  V = Vector(static_cast<int>(Size));
  return R.doubles(V.data(), Size);
}

void prdnn::persist::writeMatrix(ByteWriter &W, const Matrix &M) {
  W.u32(static_cast<std::uint32_t>(M.rows()));
  W.u32(static_cast<std::uint32_t>(M.cols()));
  for (int Row = 0; Row < M.rows(); ++Row)
    W.doubles(M.rowData(Row), static_cast<std::size_t>(M.cols()));
}

bool prdnn::persist::readMatrix(ByteReader &R, Matrix &M) {
  int Rows = 0, Cols = 0;
  if (!R.i32(Rows) || !R.i32(Cols))
    return false;
  if (Rows < 0 || Cols < 0 || Rows > kMaxDim || Cols > kMaxDim ||
      (Cols > 0 && static_cast<std::int64_t>(Rows) > kMaxParams / Cols)) {
    R.fail(CodecError::Corrupt);
    return false;
  }
  if (!plausibleCount(R, static_cast<std::size_t>(Rows) * Cols, 8))
    return false;
  M = Matrix(Rows, Cols);
  for (int Row = 0; Row < Rows; ++Row)
    if (!R.doubles(M.rowData(Row), static_cast<std::size_t>(Cols)))
      return false;
  return true;
}

void prdnn::persist::writePattern(ByteWriter &W,
                                  const NetworkPattern &Pattern) {
  W.u32(static_cast<std::uint32_t>(Pattern.Patterns.size()));
  for (const std::vector<int> &LayerPattern : Pattern.Patterns) {
    W.u32(static_cast<std::uint32_t>(LayerPattern.size()));
    for (int V : LayerPattern)
      W.i32(V);
  }
}

bool prdnn::persist::readPattern(ByteReader &R, NetworkPattern &Pattern) {
  std::uint32_t Layers = 0;
  if (!R.u32(Layers) || !plausibleCount(R, Layers, 4))
    return false;
  Pattern.Patterns.resize(Layers);
  for (std::vector<int> &LayerPattern : Pattern.Patterns) {
    std::uint32_t Units = 0;
    if (!R.u32(Units) || !plausibleCount(R, Units, 4))
      return false;
    LayerPattern.resize(Units);
    for (int &V : LayerPattern)
      if (!R.i32(V))
        return false;
  }
  return true;
}

void prdnn::persist::serializeArtifact(const CacheArtifact &Artifact,
                                       ArtifactKind Kind, ByteWriter &W) {
  switch (Kind) {
  case ArtifactKind::JacobianRows:
    writeJacobianRows(W, static_cast<const JacobianRowsArtifact &>(Artifact));
    return;
  case ArtifactKind::SyrennTransform:
    writeSyrennTransform(
        W, static_cast<const SyrennTransformArtifact &>(Artifact));
    return;
  case ArtifactKind::PatternBatch:
    writePatternBatch(W, static_cast<const PatternBatchArtifact &>(Artifact));
    return;
  case ArtifactKind::SimplexBasis:
    writeSimplexBasis(W, static_cast<const SimplexBasisArtifact &>(Artifact));
    return;
  }
  PRDNN_UNREACHABLE("bad ArtifactKind");
}

std::shared_ptr<const CacheArtifact>
prdnn::persist::deserializeArtifact(ArtifactKind Kind, ByteReader &R) {
  std::shared_ptr<const CacheArtifact> Artifact;
  switch (Kind) {
  case ArtifactKind::JacobianRows:
    Artifact = readJacobianRows(R);
    break;
  case ArtifactKind::SyrennTransform:
    Artifact = readSyrennTransform(R);
    break;
  case ArtifactKind::PatternBatch:
    Artifact = readPatternBatch(R);
    break;
  case ArtifactKind::SimplexBasis:
    Artifact = readSimplexBasis(R);
    break;
  }
  if (!Artifact)
    return nullptr;
  if (R.remaining() != 0) {
    // Unconsumed payload bytes: a different (longer) encoding than
    // this build writes, so don't trust the prefix.
    R.fail(CodecError::Corrupt);
    return nullptr;
  }
  return Artifact;
}

// --- Networks ---------------------------------------------------------------

void prdnn::persist::serializeNetwork(const Network &Net, ByteWriter &W) {
  W.u32(static_cast<std::uint32_t>(Net.numLayers()));
  std::vector<double> Params;
  for (int I = 0; I < Net.numLayers(); ++I) {
    const Layer &L = Net.layer(I);
    W.u8(static_cast<std::uint8_t>(L.getKind()));
    switch (L.getKind()) {
    case LayerKind::FullyConnected: {
      const auto &Fc = cast<FullyConnectedLayer>(L);
      W.u32(static_cast<std::uint32_t>(Fc.outputSize()));
      W.u32(static_cast<std::uint32_t>(Fc.inputSize()));
      Fc.getParams(Params);
      W.doubles(Params.data(), Params.size());
      break;
    }
    case LayerKind::Conv2D: {
      const auto &Conv = cast<Conv2DLayer>(L);
      W.u32(static_cast<std::uint32_t>(Conv.inChannels()));
      W.u32(static_cast<std::uint32_t>(Conv.inHeight()));
      W.u32(static_cast<std::uint32_t>(Conv.inWidth()));
      W.u32(static_cast<std::uint32_t>(Conv.outChannels()));
      W.u32(static_cast<std::uint32_t>(Conv.kernelHeight()));
      W.u32(static_cast<std::uint32_t>(Conv.kernelWidth()));
      W.u32(static_cast<std::uint32_t>(Conv.stride()));
      W.u32(static_cast<std::uint32_t>(Conv.padding()));
      Conv.getParams(Params);
      W.doubles(Params.data(), Params.size());
      break;
    }
    case LayerKind::AvgPool2D:
    case LayerKind::MaxPool2D: {
      const PoolGeometry &G = L.getKind() == LayerKind::AvgPool2D
                                  ? cast<AvgPool2DLayer>(L).geometry()
                                  : cast<MaxPool2DLayer>(L).geometry();
      W.u32(static_cast<std::uint32_t>(G.Channels));
      W.u32(static_cast<std::uint32_t>(G.InH));
      W.u32(static_cast<std::uint32_t>(G.InW));
      W.u32(static_cast<std::uint32_t>(G.WindowH));
      W.u32(static_cast<std::uint32_t>(G.WindowW));
      W.u32(static_cast<std::uint32_t>(G.Stride));
      break;
    }
    case LayerKind::LeakyReLU:
      W.u32(static_cast<std::uint32_t>(L.inputSize()));
      W.f64(cast<LeakyReLULayer>(L).alpha());
      break;
    case LayerKind::Flatten:
    case LayerKind::ReLU:
    case LayerKind::HardTanh:
    case LayerKind::Tanh:
    case LayerKind::Sigmoid:
      W.u32(static_cast<std::uint32_t>(L.inputSize()));
      break;
    }
  }
}

std::optional<Network> prdnn::persist::deserializeNetwork(ByteReader &R) {
  std::uint32_t NumLayers = 0;
  if (!R.u32(NumLayers) || !plausibleCount(R, NumLayers, 5))
    return std::nullopt;

  Network Net;
  auto Corrupt = [&]() -> std::optional<Network> {
    R.fail(CodecError::Corrupt);
    return std::nullopt;
  };
  /// Appends \p L after validating the size chain that Network::
  /// addLayer only asserts (asserts are off in Release; a garbage
  /// stream must not fabricate an inconsistent network).
  auto Append = [&](std::unique_ptr<Layer> L) {
    if (Net.numLayers() > 0 &&
        Net.layer(Net.numLayers() - 1).outputSize() != L->inputSize())
      return false;
    Net.addLayer(std::move(L));
    return true;
  };

  for (std::uint32_t I = 0; I < NumLayers; ++I) {
    std::uint8_t Tag = 0;
    if (!R.u8(Tag))
      return std::nullopt;
    switch (static_cast<LayerKind>(Tag)) {
    case LayerKind::FullyConnected: {
      int Out = 0, In = 0;
      if (!R.i32(Out) || !R.i32(In))
        return std::nullopt;
      if (!validDim(Out) || !validDim(In) ||
          static_cast<std::int64_t>(Out) * In + Out > kMaxParams)
        return Corrupt();
      std::size_t Count = static_cast<std::size_t>(Out) * In + Out;
      if (!plausibleCount(R, Count, 8))
        return std::nullopt;
      std::vector<double> Params(Count);
      if (!R.doubles(Params.data(), Count))
        return std::nullopt;
      Matrix W(Out, In);
      std::size_t P = 0;
      for (int Row = 0; Row < Out; ++Row)
        for (int Col = 0; Col < In; ++Col)
          W(Row, Col) = Params[P++];
      Vector B(Out);
      for (int Row = 0; Row < Out; ++Row)
        B[Row] = Params[P++];
      if (!Append(std::make_unique<FullyConnectedLayer>(std::move(W),
                                                        std::move(B))))
        return Corrupt();
      break;
    }
    case LayerKind::Conv2D: {
      int InC = 0, InH = 0, InW = 0, OutC = 0, KH = 0, KW = 0, Stride = 0,
          Pad = 0;
      if (!R.i32(InC) || !R.i32(InH) || !R.i32(InW) || !R.i32(OutC) ||
          !R.i32(KH) || !R.i32(KW) || !R.i32(Stride) || !R.i32(Pad))
        return std::nullopt;
      if (!validDim(InC) || !validDim(InH) || !validDim(InW) ||
          !validDim(OutC) || !validDim(KH) || !validDim(KW) || Stride < 1 ||
          Pad < 0 || Pad > kMaxDim || InH + 2 * Pad < KH ||
          InW + 2 * Pad < KW || !validSize3(InC, InH, InW))
        return Corrupt();
      int OutH = (InH + 2 * Pad - KH) / Stride + 1;
      int OutW = (InW + 2 * Pad - KW) / Stride + 1;
      if (!validSize3(OutC, OutH, OutW))
        return Corrupt();
      std::int64_t TotalParams = convParamCount(OutC, InC, KH, KW);
      if (TotalParams < 0)
        return Corrupt();
      std::int64_t KernelCount = TotalParams - OutC;
      std::size_t Count = static_cast<std::size_t>(TotalParams);
      if (!plausibleCount(R, Count, 8))
        return std::nullopt;
      std::vector<double> Params(Count);
      if (!R.doubles(Params.data(), Count))
        return std::nullopt;
      std::vector<double> Kernels(
          Params.begin(), Params.begin() + static_cast<std::size_t>(
                                               KernelCount));
      std::vector<double> Bias(
          Params.begin() + static_cast<std::size_t>(KernelCount),
          Params.end());
      if (!Append(std::make_unique<Conv2DLayer>(
              InC, InH, InW, OutC, KH, KW, Stride, Pad, std::move(Kernels),
              std::move(Bias))))
        return Corrupt();
      break;
    }
    case LayerKind::AvgPool2D:
    case LayerKind::MaxPool2D: {
      int C = 0, H = 0, W = 0, WH = 0, WW = 0, S = 0;
      if (!R.i32(C) || !R.i32(H) || !R.i32(W) || !R.i32(WH) || !R.i32(WW) ||
          !R.i32(S))
        return std::nullopt;
      if (!validDim(C) || !validDim(H) || !validDim(W) || !validDim(WH) ||
          !validDim(WW) || S < 1 || WH > H || WW > W ||
          (H - WH) % S != 0 || (W - WW) % S != 0 || !validSize3(C, H, W))
        return Corrupt();
      std::unique_ptr<Layer> L;
      if (static_cast<LayerKind>(Tag) == LayerKind::AvgPool2D)
        L = std::make_unique<AvgPool2DLayer>(C, H, W, WH, WW, S);
      else
        L = std::make_unique<MaxPool2DLayer>(C, H, W, WH, WW, S);
      if (!Append(std::move(L)))
        return Corrupt();
      break;
    }
    case LayerKind::LeakyReLU: {
      int N = 0;
      double Alpha = 0.0;
      if (!R.i32(N) || !R.f64(Alpha))
        return std::nullopt;
      if (!validDim(N))
        return Corrupt();
      if (!Append(std::make_unique<LeakyReLULayer>(N, Alpha)))
        return Corrupt();
      break;
    }
    case LayerKind::Flatten:
    case LayerKind::ReLU:
    case LayerKind::HardTanh:
    case LayerKind::Tanh:
    case LayerKind::Sigmoid: {
      int N = 0;
      if (!R.i32(N))
        return std::nullopt;
      if (!validDim(N))
        return Corrupt();
      std::unique_ptr<Layer> L;
      switch (static_cast<LayerKind>(Tag)) {
      case LayerKind::Flatten:
        L = std::make_unique<FlattenLayer>(N);
        break;
      case LayerKind::ReLU:
        L = std::make_unique<ReLULayer>(N);
        break;
      case LayerKind::HardTanh:
        L = std::make_unique<HardTanhLayer>(N);
        break;
      case LayerKind::Tanh:
        L = std::make_unique<TanhLayer>(N);
        break;
      case LayerKind::Sigmoid:
        L = std::make_unique<SigmoidLayer>(N);
        break;
      default:
        PRDNN_UNREACHABLE("unexpected layer tag");
      }
      if (!Append(std::move(L)))
        return Corrupt();
      break;
    }
    default:
      return Corrupt();
    }
  }
  return Net;
}

bool prdnn::persist::saveNetworkBinary(const Network &Net,
                                       const std::string &Path) {
  ByteWriter W;
  serializeNetwork(Net, W);
  std::vector<std::uint8_t> Blob = frame(kNetworkBlobKind, W.buffer());
  std::ofstream Os(Path, std::ios::binary | std::ios::trunc);
  if (!Os)
    return false;
  Os.write(reinterpret_cast<const char *>(Blob.data()),
           static_cast<std::streamsize>(Blob.size()));
  return static_cast<bool>(Os);
}

std::optional<Network>
prdnn::persist::loadNetworkBinary(const std::string &Path,
                                  CodecError *Error) {
  auto Fail = [&](CodecError E) -> std::optional<Network> {
    if (Error)
      *Error = E;
    return std::nullopt;
  };
  std::ifstream Is(Path, std::ios::binary);
  if (!Is)
    return Fail(CodecError::Truncated);
  std::vector<std::uint8_t> Blob((std::istreambuf_iterator<char>(Is)),
                                 std::istreambuf_iterator<char>());
  FrameView View;
  CodecError FrameError = unframe(Blob.data(), Blob.size(), View);
  if (FrameError != CodecError::None)
    return Fail(FrameError);
  if (View.BlobKind != kNetworkBlobKind)
    return Fail(CodecError::Corrupt);
  ByteReader R(View.Payload, View.PayloadSize);
  std::optional<Network> Net = deserializeNetwork(R);
  if (!Net || R.remaining() != 0)
    return Fail(R.error() == CodecError::None ? CodecError::Corrupt
                                              : R.error());
  if (Error)
    *Error = CodecError::None;
  return Net;
}
