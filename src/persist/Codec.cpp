//===- persist/Codec.cpp --------------------------------------------------===//

#include "persist/Codec.h"

#include "support/Hash.h"

using namespace prdnn;
using namespace prdnn::persist;

const char *prdnn::persist::toString(CodecError Error) {
  switch (Error) {
  case CodecError::None:
    return "None";
  case CodecError::Truncated:
    return "Truncated";
  case CodecError::BadMagic:
    return "BadMagic";
  case CodecError::BadVersion:
    return "BadVersion";
  case CodecError::ForeignEndian:
    return "ForeignEndian";
  case CodecError::Corrupt:
    return "Corrupt";
  }
  // A CodecError can arrive over the wire (rpc/Wire.h), so an
  // out-of-range value must print, not abort.
  return "unknown";
}

namespace {

constexpr std::uint8_t kMagic[4] = {'P', 'R', 'D', 'A'};
constexpr std::uint32_t kEndianTag = 0x01020304u;
constexpr std::size_t kHeaderSize = kFrameHeaderSize;
constexpr std::size_t kTrailerSize = kFrameTrailerSize;

Digest128 payloadDigest(const std::uint8_t *Data, std::size_t Size) {
  Hasher H;
  H.bytes(Data, Size);
  return H.digest();
}

} // namespace

std::vector<std::uint8_t>
prdnn::persist::frame(std::uint8_t BlobKind,
                      const std::vector<std::uint8_t> &Payload) {
  ByteWriter W;
  W.bytes(kMagic, sizeof(kMagic));
  W.u32(kFormatVersion);
  // Native byte order on purpose: a foreign-endian producer's tag reads
  // back byte-swapped, which unframe() rejects as ForeignEndian.
  W.bytes(&kEndianTag, sizeof(kEndianTag));
  W.u8(BlobKind);
  W.u64(Payload.size());
  W.bytes(Payload.data(), Payload.size());
  Digest128 Digest = payloadDigest(Payload.data(), Payload.size());
  W.u64(Digest.Hi);
  W.u64(Digest.Lo);
  return W.take();
}

CodecError prdnn::persist::unframe(const std::uint8_t *Data,
                                   std::size_t Size, FrameView &Out) {
  // Magic first (whenever enough bytes exist to judge it), so a file
  // that is not a frame at all reads as BadMagic, not Truncated.
  if (Size >= sizeof(kMagic) &&
      std::memcmp(Data, kMagic, sizeof(kMagic)) != 0)
    return CodecError::BadMagic;
  if (Size < kHeaderSize + kTrailerSize)
    return CodecError::Truncated;

  ByteReader R(Data + 4, Size - 4);
  std::uint32_t Version = 0;
  R.u32(Version);
  std::uint32_t Endian = 0;
  R.bytes(&Endian, sizeof(Endian)); // native order, mirroring frame()
  if (Endian != kEndianTag) {
    std::uint32_t Swapped = ((Endian & 0x000000ffu) << 24) |
                            ((Endian & 0x0000ff00u) << 8) |
                            ((Endian & 0x00ff0000u) >> 8) |
                            ((Endian & 0xff000000u) >> 24);
    return Swapped == kEndianTag ? CodecError::ForeignEndian
                                 : CodecError::Corrupt;
  }
  if (Version != kFormatVersion)
    return CodecError::BadVersion;

  std::uint8_t Kind = 0;
  std::uint64_t PayloadSize = 0;
  R.u8(Kind);
  R.u64(PayloadSize);
  if (!R.ok())
    return R.error();
  if (PayloadSize > R.remaining())
    return CodecError::Truncated;
  if (R.remaining() != PayloadSize + kTrailerSize)
    // Trailing garbage (or a short trailer): not a well-formed frame.
    return R.remaining() < PayloadSize + kTrailerSize ? CodecError::Truncated
                                                      : CodecError::Corrupt;

  const std::uint8_t *Payload = Data + kHeaderSize;
  Digest128 Expected = payloadDigest(Payload,
                                     static_cast<std::size_t>(PayloadSize));
  ByteReader Trailer(Payload + PayloadSize, kTrailerSize);
  Digest128 Stored;
  Trailer.u64(Stored.Hi);
  Trailer.u64(Stored.Lo);
  if (!(Stored == Expected))
    return CodecError::Corrupt;

  Out.BlobKind = Kind;
  Out.Payload = Payload;
  Out.PayloadSize = static_cast<std::size_t>(PayloadSize);
  return CodecError::None;
}

CodecError prdnn::persist::peekFrame(const std::uint8_t *Header,
                                     std::size_t Size,
                                     std::uint8_t &BlobKind,
                                     std::uint64_t &PayloadSize) {
  // Same judgment order as unframe(): magic first so garbage input
  // reads as BadMagic rather than Truncated.
  if (Size >= sizeof(kMagic) &&
      std::memcmp(Header, kMagic, sizeof(kMagic)) != 0)
    return CodecError::BadMagic;
  if (Size < kHeaderSize)
    return CodecError::Truncated;

  ByteReader R(Header + 4, Size - 4);
  std::uint32_t Version = 0;
  R.u32(Version);
  std::uint32_t Endian = 0;
  R.bytes(&Endian, sizeof(Endian));
  if (Endian != kEndianTag) {
    std::uint32_t Swapped = ((Endian & 0x000000ffu) << 24) |
                            ((Endian & 0x0000ff00u) << 8) |
                            ((Endian & 0x00ff0000u) >> 8) |
                            ((Endian & 0xff000000u) >> 24);
    return Swapped == kEndianTag ? CodecError::ForeignEndian
                                 : CodecError::Corrupt;
  }
  if (Version != kFormatVersion)
    return CodecError::BadVersion;

  std::uint8_t Kind = 0;
  std::uint64_t Declared = 0;
  R.u8(Kind);
  R.u64(Declared);
  if (!R.ok())
    return R.error();
  BlobKind = Kind;
  PayloadSize = Declared;
  return CodecError::None;
}
