//===- persist/ArtifactStore.h - disk-backed artifact store ----*- C++ -*-===//
///
/// \file
/// The L2 tier of the repair-artifact cache: a content-addressed
/// on-disk map from the cache's 128-bit keys to serialized artifacts
/// (persist/Serialize.h blobs framed by persist/Codec.h). Unlike the
/// in-memory ArtifactCache it is owned by nobody's lifetime: a fresh
/// engine pointed at the same directory starts warm (server restarts),
/// and multiple processes can share one store concurrently.
///
/// Layout: two-level hex fan-out of the key digest,
///
///   <dir>/ab/cd/<kind>-<32 hex digest chars>.art
///
/// where ab/cd are the first two bytes of Digest.Hi - at most 65536
/// directories, keeping every directory small under millions of
/// entries.
///
/// Publication is atomic: writers serialize into a unique temp file in
/// the entry's directory and rename() it into place, so concurrent
/// writers (threads or processes) race benignly - the entry appears
/// all-at-once with *some* writer's bytes, and since keys are content
/// addresses every writer's bytes are identical. Readers therefore
/// never observe a partial entry; a torn file from a crashed writer
/// fails the frame's digest check and is deleted and recomputed
/// (CorruptSkips), never trusted.
///
/// Writes are asynchronous by default (storeAsync): a single writer
/// thread drains a bounded queue off the job workers' critical path,
/// skipping entries that already exist (another thread, an earlier
/// run, or another process published first). When the queue is full
/// the write is dropped and counted (WriteSkips) - persistence is an
/// optimization, never backpressure on repairs. flush() drains the
/// queue for benches and orderly shutdown; the destructor flushes too.
///
/// Capacity: a byte budget enforced by LRU-over-mtime GC after writes.
/// load() refreshes an entry's mtime, so recently-used entries survive.
/// Budget enforcement is approximate across processes (each process
/// tracks its own view and rescans when it believes the budget is
/// exceeded); correctness never depends on it.
///
//===----------------------------------------------------------------------===//

#ifndef PRDNN_PERSIST_ARTIFACTSTORE_H
#define PRDNN_PERSIST_ARTIFACTSTORE_H

#include "cache/ArtifactCache.h"
#include "persist/StoreStats.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

namespace prdnn {
namespace persist {

struct StoreOptions {
  /// Root directory; created (with parents) if absent.
  std::string Directory;
  /// On-disk byte budget; exceeding it triggers LRU-by-mtime GC.
  std::uint64_t BudgetBytes = std::uint64_t(1) << 30;
  /// Bounded write-behind queue; further writes are skipped, not
  /// queued (see the file comment).
  int MaxQueuedWrites = 256;
};

/// See the file comment.
class ArtifactStore {
public:
  explicit ArtifactStore(StoreOptions Options);

  /// Flushes queued writes and joins the writer thread.
  ~ArtifactStore();

  ArtifactStore(const ArtifactStore &) = delete;
  ArtifactStore &operator=(const ArtifactStore &) = delete;

  /// Reads and decodes the entry for \p Key; null when absent or
  /// corrupt (a corrupt entry is deleted and counted - the caller
  /// recomputes). A hit refreshes the entry's mtime (LRU recency).
  std::shared_ptr<const CacheArtifact> load(const CacheKey &Key);

  /// Queues \p Value for asynchronous publication under \p Key. The
  /// artifact must be immutable (the cache's artifacts are); the
  /// writer thread serializes it off the caller's critical path.
  void storeAsync(const CacheKey &Key,
                  std::shared_ptr<const CacheArtifact> Value);

  /// Serializes and publishes synchronously on the calling thread
  /// (tests, tools; also the writer thread's implementation).
  void storeSync(const CacheKey &Key, const CacheArtifact &Value);

  /// Blocks until every queued write has been published.
  void flush();

  StoreStats stats() const;

  /// Zeroes the monotonic counters (hits/misses/writes/evictions/
  /// corrupt-skips); BytesHeld / Entries / BudgetBytes are state, not
  /// counters, and are kept.
  void resetStats();

  const std::string &directory() const { return Dir; }
  std::uint64_t budgetBytes() const { return Budget; }

  /// The entry path \p Key maps to (exposed so tests can corrupt or
  /// inspect entries).
  std::string entryPath(const CacheKey &Key) const;

private:
  struct QueuedWrite {
    CacheKey Key;
    std::shared_ptr<const CacheArtifact> Value;
  };

  void writerMain();
  /// Deletes oldest-mtime entries until the store fits the budget;
  /// also sweeps stale temp files. Serialized by GcMutex.
  void collectGarbage();
  /// Scans the store, refreshing BytesHeld / Entries.
  void scanExisting();

  std::string Dir;
  std::uint64_t Budget;
  int MaxQueuedWrites;

  mutable std::mutex QueueMutex;
  std::condition_variable QueueCv;  ///< writer waits for work
  std::condition_variable DrainCv;  ///< flush() waits for empty + idle
  std::deque<QueuedWrite> Queue;
  bool WriterBusy = false;
  bool Stopping = false;
  std::thread Writer;

  std::mutex GcMutex;
  std::atomic<std::uint64_t> NextTempId{0};

  mutable std::atomic<std::uint64_t> HitCount{0};
  mutable std::atomic<std::uint64_t> MissCount{0};
  std::atomic<std::uint64_t> WriteCount{0};
  std::atomic<std::uint64_t> WriteSkipCount{0};
  std::atomic<std::uint64_t> EvictionCount{0};
  mutable std::atomic<std::uint64_t> CorruptSkipCount{0};
  std::atomic<std::uint64_t> BytesHeld{0};
  std::atomic<std::uint64_t> EntryCount{0};
};

} // namespace persist
} // namespace prdnn

#endif // PRDNN_PERSIST_ARTIFACTSTORE_H
