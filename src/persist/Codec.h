//===- persist/Codec.h - versioned binary artifact codec -------*- C++ -*-===//
///
/// \file
/// The byte-level codec of the persistent artifact store
/// (persist/ArtifactStore.h): a little-endian binary format with a
/// bounds-checked reader and a self-describing frame around every blob.
///
/// Frame layout (all multi-byte integers little-endian):
///
///   offset  size  field
///   0       4     magic "PRDA"
///   4       4     format version (kFormatVersion)
///   8       4     endian tag: 0x01020304 written with *native* byte
///                 order, so a file produced on a foreign-endian host is
///                 detected instead of silently misread
///   12      1     blob kind (ArtifactKind value, or kNetworkBlobKind)
///   13      8     payload size P
///   21      P     payload
///   21+P    16    payload digest (support/Hash.h Digest128, Hi then Lo)
///
/// The digest trailer makes torn or bit-rotted files detectable: a
/// store entry whose payload does not re-hash to its trailer is
/// *corrupt*, and every consumer degrades to recomputation - never a
/// wrong answer. Reads are fully bounds-checked (ByteReader), so
/// truncated or garbage input yields a typed CodecError, not UB.
///
/// The payload encoding is fixed-width little-endian regardless of
/// host order; doubles travel as their IEEE-754 bit patterns, so every
/// value (NaN payloads and -0.0 included) round-trips bit-exactly -
/// the determinism contract of the artifact cache extends to disk.
///
//===----------------------------------------------------------------------===//

#ifndef PRDNN_PERSIST_CODEC_H
#define PRDNN_PERSIST_CODEC_H

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace prdnn {
namespace persist {

/// Why a decode failed; None means success.
enum class CodecError : std::uint8_t {
  None,
  /// Fewer bytes than the format requires (cut-short file or field).
  Truncated,
  /// The magic bytes are not "PRDA" (not a store blob at all).
  BadMagic,
  /// A format version this build does not speak.
  BadVersion,
  /// Written on a host of the opposite endianness.
  ForeignEndian,
  /// Structurally present but invalid: digest mismatch, impossible
  /// sizes, unknown tags, or trailing garbage.
  Corrupt,
};

const char *toString(CodecError Error);

/// Current frame format version. Bump on any layout change; readers
/// reject other versions with BadVersion (no silent migrations).
inline constexpr std::uint32_t kFormatVersion = 1;

/// Fixed frame prologue: magic + version + endian tag + kind + payload
/// size. A stream consumer (rpc/Wire.h) reads exactly this many bytes,
/// peeks the declared payload size with peekFrame(), then reads the
/// payload + trailer - so a frame's length is known before any large
/// buffer is committed.
inline constexpr std::size_t kFrameHeaderSize = 4 + 4 + 4 + 1 + 8;
/// Digest128 trailer (Hi then Lo).
inline constexpr std::size_t kFrameTrailerSize = 16;

/// Appends little-endian primitives to a growing byte buffer.
class ByteWriter {
public:
  void u8(std::uint8_t V) { Buffer.push_back(V); }

  void u32(std::uint32_t V) {
    for (int I = 0; I < 4; ++I)
      Buffer.push_back(static_cast<std::uint8_t>(V >> (8 * I)));
  }

  void u64(std::uint64_t V) {
    for (int I = 0; I < 8; ++I)
      Buffer.push_back(static_cast<std::uint8_t>(V >> (8 * I)));
  }

  void i32(int V) { u32(static_cast<std::uint32_t>(V)); }
  void i64(std::int64_t V) { u64(static_cast<std::uint64_t>(V)); }

  /// IEEE-754 bit pattern; -0.0 and NaN payloads round-trip exactly.
  void f64(double V) {
    std::uint64_t Bits;
    std::memcpy(&Bits, &V, sizeof(Bits));
    u64(Bits);
  }

  void doubles(const double *Data, std::size_t Count) {
    for (std::size_t I = 0; I < Count; ++I)
      f64(Data[I]);
  }

  /// u32 length prefix + raw bytes.
  void str(const std::string &S) {
    u32(static_cast<std::uint32_t>(S.size()));
    bytes(S.data(), S.size());
  }

  void bytes(const void *Data, std::size_t Size) {
    const auto *P = static_cast<const std::uint8_t *>(Data);
    Buffer.insert(Buffer.end(), P, P + Size);
  }

  const std::vector<std::uint8_t> &buffer() const { return Buffer; }
  std::vector<std::uint8_t> take() { return std::move(Buffer); }

private:
  std::vector<std::uint8_t> Buffer;
};

/// Bounds-checked little-endian reader over a byte span. Every read
/// reports success; the first failure sticks (error()), subsequent
/// reads fail fast, so decode loops can check once at the end.
class ByteReader {
public:
  ByteReader(const std::uint8_t *Data, std::size_t Size)
      : Data(Data), Size(Size) {}

  bool ok() const { return Err == CodecError::None; }
  CodecError error() const { return Err; }
  std::size_t remaining() const { return Size - Pos; }

  /// Marks the stream failed with \p Error (for semantic validation
  /// failures the byte-level reads cannot see, e.g. impossible sizes).
  void fail(CodecError Error) {
    if (Err == CodecError::None)
      Err = Error;
  }

  bool u8(std::uint8_t &V) {
    if (!need(1))
      return false;
    V = Data[Pos++];
    return true;
  }

  bool u32(std::uint32_t &V) {
    if (!need(4))
      return false;
    V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<std::uint32_t>(Data[Pos++]) << (8 * I);
    return true;
  }

  bool u64(std::uint64_t &V) {
    if (!need(8))
      return false;
    V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<std::uint64_t>(Data[Pos++]) << (8 * I);
    return true;
  }

  bool i32(int &V) {
    std::uint32_t U;
    if (!u32(U))
      return false;
    V = static_cast<int>(U);
    return true;
  }

  bool i64(std::int64_t &V) {
    std::uint64_t U;
    if (!u64(U))
      return false;
    V = static_cast<std::int64_t>(U);
    return true;
  }

  bool f64(double &V) {
    std::uint64_t Bits;
    if (!u64(Bits))
      return false;
    std::memcpy(&V, &Bits, sizeof(V));
    return true;
  }

  bool doubles(double *Out, std::size_t Count) {
    if (!need(Count * 8))
      return false;
    for (std::size_t I = 0; I < Count; ++I)
      f64(Out[I]);
    return true;
  }

  bool str(std::string &S) {
    std::uint32_t Len;
    if (!u32(Len))
      return false;
    if (!need(Len))
      return false;
    S.assign(reinterpret_cast<const char *>(Data + Pos), Len);
    Pos += Len;
    return true;
  }

  bool bytes(void *Out, std::size_t Count) {
    if (!need(Count))
      return false;
    std::memcpy(Out, Data + Pos, Count);
    Pos += Count;
    return true;
  }

private:
  bool need(std::size_t Count) {
    if (Err != CodecError::None)
      return false;
    if (Count > Size - Pos) {
      Err = CodecError::Truncated;
      return false;
    }
    return true;
  }

  const std::uint8_t *Data;
  std::size_t Size;
  std::size_t Pos = 0;
  CodecError Err = CodecError::None;
};

/// Wraps \p Payload in the header + digest-trailer frame described in
/// the file comment.
std::vector<std::uint8_t> frame(std::uint8_t BlobKind,
                                const std::vector<std::uint8_t> &Payload);

/// Validates the frame around \p Data and exposes its payload in place
/// (no copy). Checks magic, version, endianness, declared payload size
/// against the actual byte count, and the digest trailer.
struct FrameView {
  std::uint8_t BlobKind = 0;
  const std::uint8_t *Payload = nullptr;
  std::size_t PayloadSize = 0;
};

CodecError unframe(const std::uint8_t *Data, std::size_t Size,
                   FrameView &Out);

/// Decodes just the fixed prologue of a frame (exactly kFrameHeaderSize
/// bytes) without touching the payload: validates magic, version, and
/// endian tag, and reports the blob kind and declared payload size so a
/// stream reader knows how many more bytes to expect. The digest is NOT
/// checked here - run the full unframe() once payload + trailer arrive.
CodecError peekFrame(const std::uint8_t *Header, std::size_t Size,
                     std::uint8_t &BlobKind, std::uint64_t &PayloadSize);

} // namespace persist
} // namespace prdnn

#endif // PRDNN_PERSIST_CODEC_H
