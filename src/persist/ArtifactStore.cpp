//===- persist/ArtifactStore.cpp ------------------------------------------===//

#include "persist/ArtifactStore.h"

#include "persist/Codec.h"
#include "persist/Serialize.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <vector>

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

namespace fs = std::filesystem;

using namespace prdnn;
using namespace prdnn::persist;

namespace {

constexpr const char *kEntrySuffix = ".art";
constexpr const char *kTempPrefix = ".tmp-";

char hexDigit(unsigned V) {
  return static_cast<char>(V < 10 ? '0' + V : 'a' + (V - 10));
}

void appendHex64(std::string &Out, std::uint64_t V) {
  for (int Shift = 60; Shift >= 0; Shift -= 4)
    Out.push_back(hexDigit(static_cast<unsigned>((V >> Shift) & 0xf)));
}

bool isEntryFile(const fs::path &Path) {
  const std::string Name = Path.filename().string();
  return Name.size() > 4 &&
         Name.compare(Name.size() - 4, 4, kEntrySuffix) == 0;
}

bool isTempFile(const fs::path &Path) {
  const std::string Name = Path.filename().string();
  return Name.compare(0, 5, kTempPrefix) == 0;
}

std::uint64_t processId() {
#ifdef _WIN32
  return static_cast<std::uint64_t>(_getpid());
#else
  return static_cast<std::uint64_t>(::getpid());
#endif
}

} // namespace

ArtifactStore::ArtifactStore(StoreOptions Options)
    : Dir(std::move(Options.Directory)), Budget(Options.BudgetBytes),
      MaxQueuedWrites(std::max(1, Options.MaxQueuedWrites)) {
  std::error_code Ec;
  fs::create_directories(Dir, Ec);
  scanExisting();
  Writer = std::thread([this] { writerMain(); });
}

ArtifactStore::~ArtifactStore() {
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    Stopping = true;
  }
  QueueCv.notify_all();
  Writer.join();
}

std::string ArtifactStore::entryPath(const CacheKey &Key) const {
  std::string Name;
  Name.reserve(64);
  Name += toString(Key.Kind);
  Name.push_back('-');
  appendHex64(Name, Key.Digest.Hi);
  appendHex64(Name, Key.Digest.Lo);
  Name += kEntrySuffix;

  std::string Fan1, Fan2;
  Fan1.push_back(hexDigit(static_cast<unsigned>(Key.Digest.Hi >> 60) & 0xf));
  Fan1.push_back(hexDigit(static_cast<unsigned>(Key.Digest.Hi >> 56) & 0xf));
  Fan2.push_back(hexDigit(static_cast<unsigned>(Key.Digest.Hi >> 52) & 0xf));
  Fan2.push_back(hexDigit(static_cast<unsigned>(Key.Digest.Hi >> 48) & 0xf));
  return (fs::path(Dir) / Fan1 / Fan2 / Name).string();
}

std::shared_ptr<const CacheArtifact>
ArtifactStore::load(const CacheKey &Key) {
  const std::string Path = entryPath(Key);
  std::ifstream Is(Path, std::ios::binary | std::ios::ate);
  if (!Is) {
    MissCount.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  // One sized read (this is the hot L1-miss path); a short or failed
  // read falls through to the frame validation, which rejects it.
  std::streamsize Size = Is.tellg();
  std::vector<std::uint8_t> Blob(
      Size > 0 ? static_cast<std::size_t>(Size) : 0);
  Is.seekg(0);
  if (!Blob.empty() &&
      !Is.read(reinterpret_cast<char *>(Blob.data()), Size))
    Blob.resize(static_cast<std::size_t>(Is.gcount()));
  Is.close();

  auto CorruptSkip = [&]() -> std::shared_ptr<const CacheArtifact> {
    // Torn write from a crashed process, bit rot, or a foreign format:
    // drop the entry so the next writer republishes good bytes, and
    // let the caller recompute - corruption can cost time, never
    // correctness.
    CorruptSkipCount.fetch_add(1, std::memory_order_relaxed);
    MissCount.fetch_add(1, std::memory_order_relaxed);
    std::error_code Ec;
    std::uint64_t Size = Blob.size();
    if (fs::remove(Path, Ec) && !Ec) {
      // Saturating decrements: counters are approximate across
      // processes.
      std::uint64_t Held = BytesHeld.load(std::memory_order_relaxed);
      BytesHeld.store(Held >= Size ? Held - Size : 0,
                      std::memory_order_relaxed);
      std::uint64_t N = EntryCount.load(std::memory_order_relaxed);
      EntryCount.store(N > 0 ? N - 1 : 0, std::memory_order_relaxed);
    }
    return nullptr;
  };

  FrameView View;
  if (unframe(Blob.data(), Blob.size(), View) != CodecError::None)
    return CorruptSkip();
  if (View.BlobKind != blobKindOf(Key.Kind))
    return CorruptSkip();
  ByteReader R(View.Payload, View.PayloadSize);
  std::shared_ptr<const CacheArtifact> Artifact =
      deserializeArtifact(Key.Kind, R);
  if (!Artifact)
    return CorruptSkip();

  HitCount.fetch_add(1, std::memory_order_relaxed);
  // Refresh recency for the LRU-by-mtime GC (best effort).
  std::error_code Ec;
  fs::last_write_time(Path, fs::file_time_type::clock::now(), Ec);
  return Artifact;
}

void ArtifactStore::storeAsync(const CacheKey &Key,
                               std::shared_ptr<const CacheArtifact> Value) {
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    if (!Stopping &&
        static_cast<int>(Queue.size()) < MaxQueuedWrites) {
      Queue.push_back(QueuedWrite{Key, std::move(Value)});
    } else {
      WriteSkipCount.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  QueueCv.notify_one();
}

void ArtifactStore::storeSync(const CacheKey &Key,
                              const CacheArtifact &Value) {
  const std::string Path = entryPath(Key);
  std::error_code Ec;
  if (fs::exists(Path, Ec)) {
    // Published already - by an earlier job, a concurrent thread's
    // rename, or another process on the shared store. A republish still
    // signals the entry is hot, so refresh its mtime (best effort) the
    // same way load() does: otherwise an artifact that is recomputed
    // and re-stored every run but never read back would keep a stale
    // mtime and be the LRU-by-mtime GC's first victim.
    fs::last_write_time(Path, fs::file_time_type::clock::now(), Ec);
    WriteSkipCount.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  ByteWriter W;
  serializeArtifact(Value, Key.Kind, W);
  std::vector<std::uint8_t> Blob = frame(blobKindOf(Key.Kind), W.buffer());
  if (Blob.size() > Budget) {
    // Larger than the whole store: writing it would only evict
    // everything else before being evicted itself.
    WriteSkipCount.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  fs::path Entry(Path);
  fs::create_directories(Entry.parent_path(), Ec);

  // Unique temp name in the *entry's* directory so the final rename
  // never crosses a filesystem boundary (atomicity).
  std::string TempName = kTempPrefix + std::to_string(processId()) + "-" +
                         std::to_string(NextTempId.fetch_add(
                             1, std::memory_order_relaxed));
  fs::path Temp = Entry.parent_path() / TempName;
  {
    std::ofstream Os(Temp, std::ios::binary | std::ios::trunc);
    if (!Os) {
      WriteSkipCount.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    Os.write(reinterpret_cast<const char *>(Blob.data()),
             static_cast<std::streamsize>(Blob.size()));
    if (!Os) {
      Os.close();
      fs::remove(Temp, Ec);
      WriteSkipCount.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  // Atomic publication: readers see the old state (nothing) or the
  // complete entry, never a prefix. Concurrent renames to the same
  // path race benignly (identical content-addressed bytes).
  fs::rename(Temp, Entry, Ec);
  if (Ec) {
    fs::remove(Temp, Ec);
    WriteSkipCount.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  WriteCount.fetch_add(1, std::memory_order_relaxed);
  EntryCount.fetch_add(1, std::memory_order_relaxed);
  if (BytesHeld.fetch_add(Blob.size(), std::memory_order_relaxed) +
          Blob.size() >
      Budget)
    collectGarbage();
}

void ArtifactStore::flush() {
  std::unique_lock<std::mutex> Lock(QueueMutex);
  DrainCv.wait(Lock, [&] { return Queue.empty() && !WriterBusy; });
}

void ArtifactStore::writerMain() {
  std::unique_lock<std::mutex> Lock(QueueMutex);
  while (true) {
    QueueCv.wait(Lock, [&] { return Stopping || !Queue.empty(); });
    if (Queue.empty())
      return; // Stopping and drained (the destructor's flush contract)
    QueuedWrite Write = std::move(Queue.front());
    Queue.pop_front();
    WriterBusy = true;
    Lock.unlock();

    storeSync(Write.Key, *Write.Value);
    Write.Value.reset();

    Lock.lock();
    WriterBusy = false;
    if (Queue.empty())
      DrainCv.notify_all();
  }
}

void ArtifactStore::scanExisting() { collectGarbage(); }

void ArtifactStore::collectGarbage() {
  std::lock_guard<std::mutex> Lock(GcMutex);

  struct EntryInfo {
    fs::path Path;
    std::uint64_t Size;
    fs::file_time_type Mtime;
  };
  std::vector<EntryInfo> Entries;
  std::uint64_t TotalBytes = 0;
  std::error_code Ec;
  const auto Now = fs::file_time_type::clock::now();

  for (fs::recursive_directory_iterator
           It(Dir, fs::directory_options::skip_permission_denied, Ec),
       End;
       !Ec && It != End; It.increment(Ec)) {
    if (!It->is_regular_file(Ec))
      continue;
    const fs::path &Path = It->path();
    std::uint64_t Size = It->file_size(Ec);
    if (Ec) {
      Ec.clear();
      continue;
    }
    fs::file_time_type Mtime = It->last_write_time(Ec);
    if (Ec) {
      Ec.clear();
      continue;
    }
    if (isTempFile(Path)) {
      // A temp file older than a minute is debris from a crashed or
      // killed writer (live writers rename within milliseconds).
      if (Now - Mtime > std::chrono::minutes(1))
        fs::remove(Path, Ec);
      continue;
    }
    if (!isEntryFile(Path))
      continue;
    TotalBytes += Size;
    Entries.push_back(EntryInfo{Path, Size, Mtime});
  }

  if (TotalBytes > Budget) {
    std::sort(Entries.begin(), Entries.end(),
              [](const EntryInfo &A, const EntryInfo &B) {
                return A.Mtime < B.Mtime;
              });
    for (const EntryInfo &Victim : Entries) {
      if (TotalBytes <= Budget)
        break;
      std::error_code RemoveEc;
      if (fs::remove(Victim.Path, RemoveEc) && !RemoveEc) {
        TotalBytes -= Victim.Size;
        EvictionCount.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  // The scan is authoritative: refresh the approximate counters.
  std::uint64_t Count = 0;
  std::uint64_t Held = 0;
  for (const EntryInfo &E : Entries) {
    std::error_code StatEc;
    if (fs::exists(E.Path, StatEc) && !StatEc) {
      ++Count;
      Held += E.Size;
    }
  }
  BytesHeld.store(Held, std::memory_order_relaxed);
  EntryCount.store(Count, std::memory_order_relaxed);
}

StoreStats ArtifactStore::stats() const {
  StoreStats Stats;
  Stats.Hits = HitCount.load(std::memory_order_relaxed);
  Stats.Misses = MissCount.load(std::memory_order_relaxed);
  Stats.Writes = WriteCount.load(std::memory_order_relaxed);
  Stats.WriteSkips = WriteSkipCount.load(std::memory_order_relaxed);
  Stats.Evictions = EvictionCount.load(std::memory_order_relaxed);
  Stats.CorruptSkips = CorruptSkipCount.load(std::memory_order_relaxed);
  Stats.BytesHeld = BytesHeld.load(std::memory_order_relaxed);
  Stats.Entries = EntryCount.load(std::memory_order_relaxed);
  Stats.BudgetBytes = Budget;
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    Stats.PendingWrites = Queue.size() + (WriterBusy ? 1 : 0);
  }
  return Stats;
}

void ArtifactStore::resetStats() {
  HitCount.store(0, std::memory_order_relaxed);
  MissCount.store(0, std::memory_order_relaxed);
  WriteCount.store(0, std::memory_order_relaxed);
  WriteSkipCount.store(0, std::memory_order_relaxed);
  EvictionCount.store(0, std::memory_order_relaxed);
  CorruptSkipCount.store(0, std::memory_order_relaxed);
}
