//===- persist/Serialize.h - artifact & network serializers ----*- C++ -*-===//
///
/// \file
/// Binary (de)serializers over persist/Codec.h for everything the
/// persistent artifact store holds:
///
///   - the three cache artifact kinds (Jacobian row blocks, SyReNN
///     transform sets, activation-pattern batches), bit-exact so an L2
///     hit returns exactly the bytes a recomputation would produce;
///   - whole Networks (every layer kind), the binary sibling of
///     nn/Serialization's text format - same information, but doubles
///     travel as IEEE-754 bit patterns, so parameters round-trip
///     bit-exactly and loading is bounds-checked end to end.
///
/// Deserializers validate structure (dimensions positive and bounded,
/// layer sizes chained, element counts consistent with the remaining
/// byte budget) before allocating, so truncated or garbage input fails
/// with a typed CodecError instead of aborting or fabricating a
/// partial object.
///
//===----------------------------------------------------------------------===//

#ifndef PRDNN_PERSIST_SERIALIZE_H
#define PRDNN_PERSIST_SERIALIZE_H

#include "cache/ArtifactCache.h"
#include "linalg/Matrix.h"
#include "persist/Codec.h"

#include <memory>
#include <optional>
#include <string>

namespace prdnn {

class Network;

namespace persist {

/// Frame kind byte for serialized whole networks (artifact blobs use
/// their ArtifactKind value; keep this outside that enum's range).
inline constexpr std::uint8_t kNetworkBlobKind = 0x40;

/// Frame kind byte of an artifact blob.
inline std::uint8_t blobKindOf(ArtifactKind Kind) {
  return static_cast<std::uint8_t>(Kind);
}

/// u32 length prefix + IEEE-754 bit patterns: the vector encoding the
/// artifact payloads use, exposed for other framed formats (rpc/Wire)
/// so every layer spells doubles the same bit-exact way.
void writeVector(ByteWriter &W, const Vector &V);
bool readVector(ByteReader &R, Vector &V);

/// Row-major: u32 rows + u32 cols + rows*cols doubles.
void writeMatrix(ByteWriter &W, const Matrix &M);
bool readMatrix(ByteReader &R, Matrix &M);

/// One activation pattern: u32 layer count, then per layer u32 units +
/// i32 values (the pattern-batch artifact encoding for a single item).
void writePattern(ByteWriter &W, const NetworkPattern &Pattern);
bool readPattern(ByteReader &R, NetworkPattern &Pattern);

/// Appends \p Artifact's payload encoding to \p W. \p Kind must match
/// the artifact's dynamic type.
void serializeArtifact(const CacheArtifact &Artifact, ArtifactKind Kind,
                       ByteWriter &W);

/// Decodes one \p Kind artifact from \p R; null on malformed input
/// (R.error() says why). The whole remaining payload must be consumed.
std::shared_ptr<const CacheArtifact> deserializeArtifact(ArtifactKind Kind,
                                                         ByteReader &R);

/// Appends \p Net's payload encoding to \p W (bit-exact parameters).
void serializeNetwork(const Network &Net, ByteWriter &W);

/// Decodes a network from \p R; nullopt on malformed input.
std::optional<Network> deserializeNetwork(ByteReader &R);

/// Writes \p Net to \p Path as a framed binary blob (kNetworkBlobKind);
/// false on I/O error.
bool saveNetworkBinary(const Network &Net, const std::string &Path);

/// Loads a framed binary network. On failure returns nullopt and (when
/// \p Error is non-null) the typed reason - including Truncated /
/// Corrupt for cut-short or bit-rotted files and BadMagic for files
/// that are not binary networks at all.
std::optional<Network> loadNetworkBinary(const std::string &Path,
                                         CodecError *Error = nullptr);

} // namespace persist
} // namespace prdnn

#endif // PRDNN_PERSIST_SERIALIZE_H
