//===- cache/ArtifactCache.h - shared repair-artifact cache ----*- C++ -*-===//
///
/// \file
/// A content-addressed, byte-budgeted cache for the expensive artifacts
/// of the repair pipeline, shared by every job of a RepairEngine:
///
///   JacobianRows    - the assembled LP constraint rows of one Jacobian
///                     chunk of a point spec (Algorithm 1, lines 4-6);
///   SyrennTransform - the LinRegions partitions of a polytope spec's
///                     shapes (Algorithm 2, line 2);
///   PatternBatch    - activation patterns at a batch of points (the
///                     per-region pattern capture of Appendix B);
///   SimplexBasis    - the optimal simplex basis of one repair LP,
///                     used to warm-start structurally identical later
///                     solves (lp/Simplex.h, SimplexOptions::WarmBasis).
///
/// Keys are 128-bit content digests (cache/Fingerprint.h) over the
/// network fingerprint and a canonical serialization of every input the
/// artifact depends on, so equal keys imply bit-for-bit equal artifacts
/// (up to a simultaneous collision in both independent hash lanes).
/// Because the compute functions themselves are deterministic for any
/// thread count (the thread-pool contract), a cache hit returns exactly
/// the bytes a recomputation would produce: warm runs are bit-for-bit
/// identical to cold runs, cache on or off.
///
/// Concurrency: the map is sharded with per-shard mutexes; lookups and
/// insertions on different shards never contend. Insertion is
/// single-flight: the first getOrCompute() for a key computes (outside
/// the shard lock), concurrent callers for the same key block on the
/// shard's condition variable and receive the one shared artifact
/// instead of recomputing.
///
/// Eviction: per-shard LRU under a per-shard slice of the byte budget.
/// An artifact larger than its shard's slice is returned to the caller
/// but not retained, and its key is remembered so later callers (and
/// waiters) compute directly - concurrently - instead of serializing
/// through the single-flight claim. Hit / miss / eviction / byte
/// statistics are aggregated across shards (stats()).
///
/// L2 tier: an optional persist::ArtifactStore backs the cache on
/// disk. An L1 miss reads through to the store *inside* the
/// single-flight claim (so concurrent callers of one key deserialize
/// once) and publishes the loaded artifact to L1; a computed artifact
/// is published to L1 and queued for asynchronous write-behind to the
/// store, off the caller's critical path. Serialization is bit-exact
/// (persist/Serialize.h), so an L2 hit returns exactly the bytes a
/// recomputation would produce and the determinism contract is
/// unchanged; a corrupt store entry is skipped (and deleted) and the
/// artifact recomputed. The Hits/Misses counters remain L1-tier
/// counters (an L2 hit is an L1 miss); store counters live in
/// CacheStats::Store.
///
//===----------------------------------------------------------------------===//

#ifndef PRDNN_CACHE_ARTIFACTCACHE_H
#define PRDNN_CACHE_ARTIFACTCACHE_H

#include "cache/Fingerprint.h"
#include "nn/ActivationPattern.h"
#include "persist/StoreStats.h"
#include "syrenn/LineTransform.h"
#include "syrenn/PlaneTransform.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <variant>
#include <vector>

namespace prdnn {

namespace persist {
class ArtifactStore;
} // namespace persist

/// What a cache entry holds; see the file comment.
enum class ArtifactKind : std::uint8_t {
  JacobianRows,
  SyrennTransform,
  PatternBatch,
  SimplexBasis,
};

const char *toString(ArtifactKind Kind);

/// Content address of one artifact: the kind plus a digest over every
/// input the artifact depends on (network fingerprint included).
struct CacheKey {
  ArtifactKind Kind = ArtifactKind::JacobianRows;
  Digest128 Digest;

  bool operator==(const CacheKey &Other) const = default;
};

/// Base of every cached value. Artifacts are immutable once published;
/// bytes() sizes the entry for the LRU byte budget.
class CacheArtifact {
public:
  virtual ~CacheArtifact();
  virtual std::size_t bytes() const = 0;
};

/// The assembled LP rows of one Jacobian chunk: row r is
/// Coef[r] . Delta <= Hi[r], in the chunk's row order (the caller's
/// RowOffset layout).
struct JacobianRowsArtifact final : CacheArtifact {
  std::vector<std::vector<double>> Coef;
  std::vector<double> Hi;

  std::size_t bytes() const override;
};

/// The LinRegions partitions of every polytope of a spec, in spec
/// order (shapes only - constraints are attached by the consumer, so
/// specs differing only in output constraints share this artifact).
struct SyrennTransformArtifact final : CacheArtifact {
  using Partition = std::variant<LinePartition, std::vector<PlaneRegion>>;
  std::vector<Partition> Partitions;

  std::size_t bytes() const override;
};

/// Activation patterns at a batch of points, in batch order.
struct PatternBatchArtifact final : CacheArtifact {
  std::vector<NetworkPattern> Patterns;

  std::size_t bytes() const override;
};

/// The optimal simplex basis of one repair LP, mirroring
/// lp::SimplexBasis field-for-field (kept as plain fields here so the
/// cache layer does not depend on lp headers; the LP phase converts).
/// Keyed tolerant of RHS-only drift - the constraint *coefficients*
/// hash into the key but the right-hand sides do not - so a
/// resubmission whose spec moved only row bounds still warm-starts.
struct SimplexBasisArtifact final : CacheArtifact {
  int NumRows = 0;
  int NumVars = 0;
  /// Digest of the producing LP's bounds and costs - everything the
  /// coefficient-only cache key deliberately leaves out. Consumers
  /// replay the basis only when this matches their LP exactly: a
  /// replayed terminal basis of the *identical* LP re-derives the
  /// solution bit-for-bit, whereas warm-starting a merely
  /// RHS-drifted LP can terminate at a different equally-optimal
  /// basis and change low-order bits (see lp/README.md).
  Digest128 RhsDigest;
  std::vector<int> Basic;
  std::vector<std::uint8_t> NonbasicState;
  int Pivots = 0;

  std::size_t bytes() const override;
};

/// Aggregate counters; monotonic except BytesHeld / Entries. Hits and
/// Misses are L1 (in-memory) counters: an artifact served from the
/// backing store counts as an L1 miss plus a Store.Hits increment.
struct CacheStats {
  std::uint64_t Hits = 0;
  std::uint64_t Misses = 0;
  std::uint64_t Evictions = 0;
  std::uint64_t Insertions = 0;
  std::uint64_t BytesHeld = 0;
  std::uint64_t Entries = 0;
  std::uint64_t BudgetBytes = 0;
  /// Counters of the L2 backing store; all-zero when HasStore is
  /// false.
  bool HasStore = false;
  persist::StoreStats Store;

  double hitRate() const {
    std::uint64_t Total = Hits + Misses;
    return Total == 0 ? 0.0 : static_cast<double>(Hits) /
                                  static_cast<double>(Total);
  }
};

/// Where getOrCompute() found the artifact: None = this caller
/// computed it; L1 = served from memory (a prior insert or a shared
/// in-flight compute); L2 = deserialized from the backing store (and
/// promoted to L1).
enum class CacheTier : std::uint8_t {
  None,
  L1,
  L2,
};

/// See the file comment.
class ArtifactCache {
public:
  using ComputeFn = std::function<std::shared_ptr<const CacheArtifact>()>;

  /// \p BudgetBytes bounds retained artifact bytes (split evenly across
  /// \p NumShards); 0 disables retention (every call computes). \p
  /// Store, when non-null, backs the cache as an L2 tier (see the file
  /// comment).
  explicit ArtifactCache(
      std::size_t BudgetBytes, int NumShards = 16,
      std::shared_ptr<persist::ArtifactStore> Store = nullptr);

  ~ArtifactCache();

  ArtifactCache(const ArtifactCache &) = delete;
  ArtifactCache &operator=(const ArtifactCache &) = delete;

  /// Returns the artifact for \p Key, computing it with \p Compute on a
  /// miss (single-flight: concurrent callers of the same key compute
  /// once and share the result). \p WasHit, when non-null, reports
  /// whether this caller got a previously-computed artifact (waiters on
  /// an in-flight compute count as hits, as do L2 loads); \p Tier, when
  /// non-null, additionally says which tier served it. If \p Compute
  /// throws, the in-flight entry is abandoned and the exception
  /// propagates; waiting callers retry the compute themselves.
  std::shared_ptr<const CacheArtifact>
  getOrCompute(const CacheKey &Key, const ComputeFn &Compute,
               bool *WasHit = nullptr, CacheTier *Tier = nullptr);

  /// Drops every retained entry (in-flight computes are unaffected and
  /// publish into the emptied map). The backing store's entries are
  /// *kept* (they address content, which has not changed); only the
  /// in-memory tier empties.
  void clear();

  /// Zeroes the monotonic hit/miss/eviction/insertion counters (and
  /// the store's, when one is attached) without touching retained
  /// entries, so warm-vs-cold measurement phases start from clean
  /// counters. BytesHeld / Entries reflect state and are kept.
  void resetStats();

  CacheStats stats() const;
  std::size_t budgetBytes() const { return Budget; }

  /// The L2 backing store, or null.
  persist::ArtifactStore *store() const { return StoreV.get(); }

private:
  struct KeyHash {
    std::size_t operator()(const CacheKey &Key) const {
      return static_cast<std::size_t>(
          Key.Digest.Hi ^ (Key.Digest.Lo * 0x9e3779b97f4a7c15ull) ^
          static_cast<std::uint64_t>(Key.Kind));
    }
  };

  struct Entry {
    std::shared_ptr<const CacheArtifact> Value;
    std::size_t Bytes = 0;
    bool Ready = false;
    /// Position in the shard's LRU list (Ready entries only).
    std::list<CacheKey>::iterator LruIt;
  };

  struct Shard {
    std::mutex Mutex;
    std::condition_variable Cv; ///< waiters on in-flight computes
    std::unordered_map<CacheKey, Entry, KeyHash> Map;
    /// Most-recently-used first; only Ready entries are listed (and
    /// hence evictable).
    std::list<CacheKey> Lru;
    /// Keys whose artifact proved larger than the shard's budget
    /// slice: later callers compute directly, without claiming the
    /// single-flight entry - otherwise concurrent jobs on an
    /// unretainable key would serialize their computes one at a time
    /// through the claim/erase cycle.
    std::unordered_set<CacheKey, KeyHash> Oversized;
    std::size_t BytesHeld = 0;
  };

  Shard &shardFor(const CacheKey &Key) {
    return *Shards[static_cast<std::size_t>(
        (Key.Digest.Lo ^ static_cast<std::uint64_t>(Key.Kind)) %
        Shards.size())];
  }

  /// Evicts LRU entries of \p S until it fits its budget slice; caller
  /// holds the shard lock.
  void evictOverBudget(Shard &S);

  std::size_t Budget;
  std::size_t ShardBudget;
  std::vector<std::unique_ptr<Shard>> Shards;
  std::shared_ptr<persist::ArtifactStore> StoreV; ///< null without L2

  mutable std::atomic<std::uint64_t> HitCount{0};
  mutable std::atomic<std::uint64_t> MissCount{0};
  std::atomic<std::uint64_t> EvictionCount{0};
  std::atomic<std::uint64_t> InsertionCount{0};
  std::atomic<std::uint64_t> TotalBytes{0};
  std::atomic<std::uint64_t> EntryCount{0};
};

} // namespace prdnn

#endif // PRDNN_CACHE_ARTIFACTCACHE_H
