//===- cache/Fingerprint.cpp ----------------------------------------------===//

#include "cache/Fingerprint.h"

#include "nn/ActivationPattern.h"
#include "nn/Layer.h"
#include "nn/Network.h"
#include "support/Casting.h"

using namespace prdnn;

NetworkFingerprint prdnn::fingerprintNetwork(const Network &Net) {
  Hasher H;
  H.i32(Net.numLayers());
  std::vector<double> Params;
  for (int I = 0; I < Net.numLayers(); ++I) {
    const Layer &L = Net.layer(I);
    // describe() encodes kind and geometry ("fc 16x6", "conv ...",
    // "relu 16", ...); sizes guard against describe collisions.
    H.i32(static_cast<int>(L.getKind()));
    H.str(L.describe());
    H.i32(L.inputSize());
    H.i32(L.outputSize());
    if (const auto *Lin = dyn_cast<LinearLayer>(&L)) {
      H.i32(Lin->numParams());
      if (Lin->numParams() > 0) {
        Lin->getParams(Params);
        H.doubles(Params.data(), Params.size());
      }
    }
  }
  return NetworkFingerprint{H.digest()};
}

void prdnn::hashVector(Hasher &H, const Vector &V) {
  H.i32(V.size());
  H.doubles(V.data(), static_cast<std::size_t>(V.size()));
}

void prdnn::hashMatrix(Hasher &H, const Matrix &M) {
  H.i32(M.rows());
  H.i32(M.cols());
  if (M.rows() > 0)
    H.doubles(M.rowData(0),
              static_cast<std::size_t>(M.rows()) *
                  static_cast<std::size_t>(M.cols()));
}

void prdnn::hashDeterminism(Hasher &H, linalg::Determinism Tier) {
  if (Tier == linalg::Determinism::Strict)
    return; // pre-tier keys were all Strict; keep them byte-identical
  H.u64(0x74696572ull); // "tier" tag, so Fast can never alias a Strict
                        // stream that happened to end the same way
  H.u64(static_cast<std::uint64_t>(Tier));
  H.str(linalg::kernelBackendName());
}

std::string prdnn::toHex(const Digest128 &Digest) {
  static const char *Alphabet = "0123456789abcdef";
  std::string Out;
  Out.reserve(32);
  for (std::uint64_t Word : {Digest.Hi, Digest.Lo})
    for (int Shift = 60; Shift >= 0; Shift -= 4)
      Out.push_back(Alphabet[(Word >> Shift) & 0xf]);
  return Out;
}

std::optional<Digest128> prdnn::digestFromHex(const std::string &Hex) {
  if (Hex.size() != 32)
    return std::nullopt;
  std::uint64_t Words[2] = {0, 0};
  for (int W = 0; W < 2; ++W)
    for (int I = 0; I < 16; ++I) {
      char C = Hex[static_cast<std::size_t>(16 * W + I)];
      unsigned Nibble;
      if (C >= '0' && C <= '9')
        Nibble = static_cast<unsigned>(C - '0');
      else if (C >= 'a' && C <= 'f')
        Nibble = static_cast<unsigned>(C - 'a') + 10;
      else if (C >= 'A' && C <= 'F')
        Nibble = static_cast<unsigned>(C - 'A') + 10;
      else
        return std::nullopt;
      Words[W] = (Words[W] << 4) | Nibble;
    }
  return Digest128{Words[0], Words[1]};
}

void prdnn::hashPattern(Hasher &H, const NetworkPattern &Pattern) {
  H.i32(static_cast<int>(Pattern.Patterns.size()));
  for (const std::vector<int> &LayerPattern : Pattern.Patterns) {
    H.i32(static_cast<int>(LayerPattern.size()));
    for (int P : LayerPattern)
      H.i32(P);
  }
}
