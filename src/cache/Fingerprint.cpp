//===- cache/Fingerprint.cpp ----------------------------------------------===//

#include "cache/Fingerprint.h"

#include "nn/ActivationPattern.h"
#include "nn/Layer.h"
#include "nn/Network.h"
#include "support/Casting.h"

using namespace prdnn;

NetworkFingerprint prdnn::fingerprintNetwork(const Network &Net) {
  Hasher H;
  H.i32(Net.numLayers());
  std::vector<double> Params;
  for (int I = 0; I < Net.numLayers(); ++I) {
    const Layer &L = Net.layer(I);
    // describe() encodes kind and geometry ("fc 16x6", "conv ...",
    // "relu 16", ...); sizes guard against describe collisions.
    H.i32(static_cast<int>(L.getKind()));
    H.str(L.describe());
    H.i32(L.inputSize());
    H.i32(L.outputSize());
    if (const auto *Lin = dyn_cast<LinearLayer>(&L)) {
      H.i32(Lin->numParams());
      if (Lin->numParams() > 0) {
        Lin->getParams(Params);
        H.doubles(Params.data(), Params.size());
      }
    }
  }
  return NetworkFingerprint{H.digest()};
}

void prdnn::hashVector(Hasher &H, const Vector &V) {
  H.i32(V.size());
  H.doubles(V.data(), static_cast<std::size_t>(V.size()));
}

void prdnn::hashMatrix(Hasher &H, const Matrix &M) {
  H.i32(M.rows());
  H.i32(M.cols());
  if (M.rows() > 0)
    H.doubles(M.rowData(0),
              static_cast<std::size_t>(M.rows()) *
                  static_cast<std::size_t>(M.cols()));
}

void prdnn::hashPattern(Hasher &H, const NetworkPattern &Pattern) {
  H.i32(static_cast<int>(Pattern.Patterns.size()));
  for (const std::vector<int> &LayerPattern : Pattern.Patterns) {
    H.i32(static_cast<int>(LayerPattern.size()));
    for (int P : LayerPattern)
      H.i32(P);
  }
}
