//===- cache/ArtifactCache.cpp --------------------------------------------===//

#include "cache/ArtifactCache.h"

#include "persist/ArtifactStore.h"
#include "support/Error.h"

#include <algorithm>
#include <cassert>

using namespace prdnn;

const char *prdnn::toString(ArtifactKind Kind) {
  switch (Kind) {
  case ArtifactKind::JacobianRows:
    return "JacobianRows";
  case ArtifactKind::SyrennTransform:
    return "SyrennTransform";
  case ArtifactKind::PatternBatch:
    return "PatternBatch";
  case ArtifactKind::SimplexBasis:
    return "SimplexBasis";
  }
  PRDNN_UNREACHABLE("bad ArtifactKind");
}

CacheArtifact::~CacheArtifact() = default;

namespace {

/// Heap footprint approximations: payload bytes plus the container
/// headers, so the LRU budget tracks real memory, not just doubles.
constexpr std::size_t kVectorOverhead = sizeof(std::vector<double>);

std::size_t vectorBytes(std::size_t Elements, std::size_t ElementSize) {
  return kVectorOverhead + Elements * ElementSize;
}

} // namespace

std::size_t JacobianRowsArtifact::bytes() const {
  std::size_t Total = sizeof(*this) + vectorBytes(Hi.size(), sizeof(double));
  for (const std::vector<double> &Row : Coef)
    Total += vectorBytes(Row.size(), sizeof(double));
  return Total;
}

std::size_t SyrennTransformArtifact::bytes() const {
  std::size_t Total = sizeof(*this);
  for (const Partition &P : Partitions) {
    Total += sizeof(Partition);
    if (const auto *Line = std::get_if<LinePartition>(&P)) {
      Total += Line->approxBytes();
    } else {
      for (const PlaneRegion &Region : std::get<std::vector<PlaneRegion>>(P))
        Total += Region.approxBytes();
    }
  }
  return Total;
}

std::size_t PatternBatchArtifact::bytes() const {
  std::size_t Total = sizeof(*this);
  for (const NetworkPattern &Pattern : Patterns) {
    Total += kVectorOverhead;
    for (const std::vector<int> &LayerPattern : Pattern.Patterns)
      Total += vectorBytes(LayerPattern.size(), sizeof(int));
  }
  return Total;
}

std::size_t SimplexBasisArtifact::bytes() const {
  return sizeof(*this) + vectorBytes(Basic.size(), sizeof(int)) +
         vectorBytes(NonbasicState.size(), sizeof(std::uint8_t));
}

ArtifactCache::ArtifactCache(std::size_t BudgetBytes, int NumShards,
                             std::shared_ptr<persist::ArtifactStore> Store)
    : Budget(BudgetBytes), StoreV(std::move(Store)) {
  if (NumShards < 1)
    NumShards = 1;
  Shards.reserve(static_cast<std::size_t>(NumShards));
  for (int I = 0; I < NumShards; ++I)
    Shards.push_back(std::make_unique<Shard>());
  ShardBudget = Budget / Shards.size();
}

ArtifactCache::~ArtifactCache() = default;

void ArtifactCache::evictOverBudget(Shard &S) {
  while (S.BytesHeld > ShardBudget && !S.Lru.empty()) {
    const CacheKey &Victim = S.Lru.back();
    auto It = S.Map.find(Victim);
    assert(It != S.Map.end() && It->second.Ready &&
           "LRU lists only ready entries");
    S.BytesHeld -= It->second.Bytes;
    TotalBytes.fetch_sub(It->second.Bytes, std::memory_order_relaxed);
    EntryCount.fetch_sub(1, std::memory_order_relaxed);
    EvictionCount.fetch_add(1, std::memory_order_relaxed);
    S.Map.erase(It);
    S.Lru.pop_back();
  }
}

std::shared_ptr<const CacheArtifact>
ArtifactCache::getOrCompute(const CacheKey &Key, const ComputeFn &Compute,
                            bool *WasHit, CacheTier *Tier) {
  auto Report = [&](bool Hit, CacheTier From) {
    if (WasHit)
      *WasHit = Hit;
    if (Tier)
      *Tier = From;
  };
  Shard &S = shardFor(Key);
  std::unique_lock<std::mutex> Lock(S.Mutex);
  while (true) {
    if (S.Oversized.count(Key)) {
      // Known not to fit the shard's budget slice: compute without
      // claiming the single-flight entry, so concurrent callers of an
      // unretainable key overlap instead of serializing through the
      // claim/erase cycle. Each call is a genuine L1 miss; the store,
      // when present, may still serve it (unretainable in memory is
      // not unretainable on disk).
      MissCount.fetch_add(1, std::memory_order_relaxed);
      Lock.unlock();
      if (StoreV) {
        if (std::shared_ptr<const CacheArtifact> Loaded =
                StoreV->load(Key)) {
          Report(true, CacheTier::L2);
          return Loaded;
        }
      }
      Report(false, CacheTier::None);
      std::shared_ptr<const CacheArtifact> Computed = Compute();
      if (StoreV)
        StoreV->storeAsync(Key, Computed);
      return Computed;
    }
    auto It = S.Map.find(Key);
    if (It == S.Map.end())
      break;
    if (It->second.Ready) {
      // Hit: refresh recency and share the artifact.
      S.Lru.splice(S.Lru.begin(), S.Lru, It->second.LruIt);
      HitCount.fetch_add(1, std::memory_order_relaxed);
      Report(true, CacheTier::L1);
      return It->second.Value;
    }
    // Another caller is computing this key: wait for it to publish
    // (counts as a hit - the artifact was computed once, shared). If
    // the compute failed the entry disappears and the loop retries,
    // computing here.
    S.Cv.wait(Lock);
  }

  // L1 miss: claim the key with an in-flight entry, then - unlocked -
  // read through to the store before computing. The claim covers the
  // L2 load too, so concurrent callers of one key deserialize once.
  S.Map.emplace(Key, Entry{});
  MissCount.fetch_add(1, std::memory_order_relaxed);
  Lock.unlock();

  std::shared_ptr<const CacheArtifact> Value;
  bool FromStore = false;
  try {
    // The L2 load shares the compute path's cleanup: if either throws
    // (deserialization allocations included), the claim must be
    // released and waiters woken, or every later caller of this key
    // would block forever on a never-ready entry.
    if (StoreV) {
      Value = StoreV->load(Key);
      FromStore = Value != nullptr;
    }
    if (!Value)
      Value = Compute();
  } catch (...) {
    Lock.lock();
    S.Map.erase(Key);
    Lock.unlock();
    S.Cv.notify_all();
    throw;
  }
  Report(FromStore, FromStore ? CacheTier::L2 : CacheTier::None);
  assert(Value && "cache compute returned null artifact");
  std::size_t Bytes = Value->bytes();

  Lock.lock();
  auto It = S.Map.find(Key);
  assert(It != S.Map.end() && !It->second.Ready &&
         "in-flight entry vanished");
  if (Bytes <= ShardBudget) {
    It->second.Value = Value;
    It->second.Bytes = Bytes;
    It->second.Ready = true;
    S.Lru.push_front(Key);
    It->second.LruIt = S.Lru.begin();
    S.BytesHeld += Bytes;
    TotalBytes.fetch_add(Bytes, std::memory_order_relaxed);
    EntryCount.fetch_add(1, std::memory_order_relaxed);
    InsertionCount.fetch_add(1, std::memory_order_relaxed);
    evictOverBudget(S);
  } else {
    // Larger than the shard's whole slice: hand it to the caller but
    // never retain it, and remember the key so waiters (and every
    // later caller) compute directly instead of re-claiming. The
    // negative set is bounded: on overflow it resets, costing each
    // forgotten key one extra claim round - not unbounded memory in a
    // long-lived server whose artifacts never fit.
    constexpr std::size_t kMaxOversizedKeys = 1024;
    if (S.Oversized.size() >= kMaxOversizedKeys)
      S.Oversized.clear();
    S.Oversized.insert(Key);
    S.Map.erase(It);
  }
  Lock.unlock();
  S.Cv.notify_all();
  // Write-behind: persist freshly computed artifacts asynchronously,
  // after waiters were released - the disk never gates a repair. An
  // L2 load is not re-written (the entry is already on disk).
  if (StoreV && !FromStore)
    StoreV->storeAsync(Key, Value);
  return Value;
}

void ArtifactCache::clear() {
  for (std::unique_ptr<Shard> &ShardPtr : Shards) {
    Shard &S = *ShardPtr;
    std::lock_guard<std::mutex> Lock(S.Mutex);
    for (const CacheKey &Key : S.Lru) {
      const Entry &E = S.Map.at(Key);
      TotalBytes.fetch_sub(E.Bytes, std::memory_order_relaxed);
      EntryCount.fetch_sub(1, std::memory_order_relaxed);
      S.Map.erase(Key);
    }
    S.Lru.clear();
    S.Oversized.clear();
    S.BytesHeld = 0;
  }
}

void ArtifactCache::resetStats() {
  HitCount.store(0, std::memory_order_relaxed);
  MissCount.store(0, std::memory_order_relaxed);
  EvictionCount.store(0, std::memory_order_relaxed);
  InsertionCount.store(0, std::memory_order_relaxed);
  if (StoreV)
    StoreV->resetStats();
}

CacheStats ArtifactCache::stats() const {
  CacheStats Stats;
  Stats.Hits = HitCount.load(std::memory_order_relaxed);
  Stats.Misses = MissCount.load(std::memory_order_relaxed);
  Stats.Evictions = EvictionCount.load(std::memory_order_relaxed);
  Stats.Insertions = InsertionCount.load(std::memory_order_relaxed);
  Stats.BytesHeld = TotalBytes.load(std::memory_order_relaxed);
  Stats.Entries = EntryCount.load(std::memory_order_relaxed);
  Stats.BudgetBytes = Budget;
  if (StoreV) {
    Stats.HasStore = true;
    Stats.Store = StoreV->stats();
  }
  return Stats;
}
