//===- cache/Fingerprint.h - content addresses for cache keys --*- C++ -*-===//
///
/// \file
/// Content addressing for the repair-artifact cache: a stable
/// NetworkFingerprint over a network's full topology *and* parameter
/// bits, plus hashing helpers for the value types that appear in cache
/// keys (vectors, matrices, activation patterns).
///
/// Two networks share a fingerprint iff they have the same layer
/// sequence (kinds and geometry, via each layer's describe() string and
/// sizes) and bit-for-bit equal parameters - so any parameter edit,
/// however small, changes the address and can never alias a cached
/// artifact computed from the old network. This is what makes it safe
/// for one engine-wide cache to serve jobs on *different* networks.
///
//===----------------------------------------------------------------------===//

#ifndef PRDNN_CACHE_FINGERPRINT_H
#define PRDNN_CACHE_FINGERPRINT_H

#include "linalg/Kernels.h"
#include "support/Hash.h"

#include <optional>
#include <string>

namespace prdnn {

class Network;
class Vector;
class Matrix;
struct NetworkPattern;

/// Content address of one immutable network; see the file comment.
struct NetworkFingerprint {
  Digest128 Digest;

  bool operator==(const NetworkFingerprint &Other) const = default;
};

/// Hashes topology (layer count, kinds, geometry) and every parameter's
/// bit pattern. Cost is one linear pass over the parameters - trivial
/// next to a single Jacobian chunk - so engines recompute it per job
/// rather than trusting object identity.
NetworkFingerprint fingerprintNetwork(const Network &Net);

/// Key-building helpers: absorb a value's dimensions and exact bits.
void hashVector(Hasher &H, const Vector &V);
void hashMatrix(Hasher &H, const Matrix &M);
void hashPattern(Hasher &H, const NetworkPattern &Pattern);

/// Absorbs the kernel determinism tier the artifact was (or would be)
/// computed under. Every cache/store/basis key must call this: a
/// Fast-tier artifact is epsilon-, not bit-, equal to its Strict twin
/// and must never satisfy a Strict request. Strict absorbs nothing, so
/// every pre-tier cache key (all of which were Strict by construction)
/// is unchanged and warm L2 stores survive the upgrade; Fast absorbs a
/// tier tag plus the resolved backend name
/// (linalg::kernelBackendName()), because Fast bits depend on the
/// host's backend and the L2 store is shared across machines.
void hashDeterminism(Hasher &H, linalg::Determinism Tier);

/// 32 lowercase hex chars (Hi then Lo): the digest's canonical text
/// form, used wherever a content address becomes a file name or wire
/// token (persist/ArtifactStore entry names, serve/ModelRegistry).
std::string toHex(const Digest128 &Digest);
inline std::string toHex(const NetworkFingerprint &Fp) {
  return toHex(Fp.Digest);
}

/// Parses the canonical 32-hex-char form back (case-insensitive);
/// nullopt on any other length or a non-hex character.
std::optional<Digest128> digestFromHex(const std::string &Hex);

} // namespace prdnn

#endif // PRDNN_CACHE_FINGERPRINT_H
