//===- serve/AdmissionController.h - bounded in-flight admission *- C++ -*-===//
///
/// \file
/// Admission control for a serving front end (serve/RepairService.h):
/// a bounded count of in-flight jobs plus per-priority-class quotas,
/// with typed reject-with-reason decisions when saturated and a
/// ProgressSnapshot-style queueStats() observability surface (depth,
/// per-class counts, oldest admitted wait).
///
/// This is the cross-process complement of the RepairEngine's own
/// priority+aging queue: the engine orders work *within* one process,
/// while admission bounds how much work each process accepts from the
/// fleet in the first place - so saturation surfaces to the caller as
/// an immediate typed reject (retry elsewhere, shed load) instead of
/// unbounded queueing, and per-class quotas keep a flood of Low
/// traffic from monopolizing the slots a High client needs. Within
/// the admitted set, class order and aging-based anti-starvation are
/// the engine queue's job (EngineOptions::AgingSeconds); scheduling
/// only - results are never affected by admission order.
///
/// Tickets: tryAdmit() returns an id (monotonic per controller) the
/// caller must release() exactly once when the job resolves; ids make
/// release idempotent-by-construction (a ticket releases once) and
/// give queueStats() its oldest-wait clock.
///
//===----------------------------------------------------------------------===//

#ifndef PRDNN_SERVE_ADMISSIONCONTROLLER_H
#define PRDNN_SERVE_ADMISSIONCONTROLLER_H

#include "api/RepairRequest.h"

#include <array>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>

namespace prdnn {
namespace serve {

/// Why tryAdmit() rejected; None means admitted.
enum class AdmitReject : std::uint8_t {
  None,
  /// The controller is at MaxInFlight across all classes.
  Saturated,
  /// The request's class is at its quota (other classes may still
  /// have room).
  ClassQuota,
};

const char *toString(AdmitReject Reject);

struct AdmissionOptions {
  /// Total admitted-but-unresolved jobs this process will carry
  /// (queued + running); further requests reject with Saturated.
  int MaxInFlight = 64;
  /// Per-class caps, indexed by RepairRequest::Priority value
  /// (High = 0, Neutral = 1, Low = 2); 0 means "no per-class cap".
  /// Quotas may oversubscribe MaxInFlight (they bound each class
  /// independently; the total bound always applies).
  std::array<int, 3> ClassQuota = {0, 0, 0};
};

/// One observation of the admission state, in the spirit of
/// ProgressSnapshot: plain data, safe to take concurrently.
struct AdmissionSnapshot {
  /// Admitted jobs not yet released (the in-flight set).
  int Depth = 0;
  /// In-flight jobs per class, indexed by the Priority value.
  std::array<int, 3> ByClass{};
  /// Seconds since the oldest still-in-flight job was admitted (0
  /// when idle): the "is something stuck" signal.
  double OldestWaitSeconds = 0.0;
  /// Monotonic counters.
  std::uint64_t Admitted = 0;
  std::uint64_t SaturatedRejects = 0;
  std::uint64_t QuotaRejects = 0;
};

/// See the file comment.
class AdmissionController {
public:
  explicit AdmissionController(AdmissionOptions Options);

  AdmissionController(const AdmissionController &) = delete;
  AdmissionController &operator=(const AdmissionController &) = delete;

  /// Tries to admit one \p Class job. Returns a non-zero ticket on
  /// admission (release it when the job resolves); returns 0 and sets
  /// \p Reject (when non-null) to the typed reason otherwise. Never
  /// blocks.
  std::uint64_t tryAdmit(RepairRequest::Priority Class,
                         AdmitReject *Reject = nullptr);

  /// Releases an admitted ticket (exactly once per tryAdmit success).
  /// Unknown / already-released tickets are ignored.
  void release(std::uint64_t Ticket);

  /// Depth, per-class counts, oldest wait, and reject counters.
  AdmissionSnapshot queueStats() const;

  /// Zeroes the monotonic counters (Admitted, SaturatedRejects,
  /// QuotaRejects). Live admission state - in-flight tickets, class
  /// counts - is untouched, so resetting mid-traffic is safe. Part of
  /// the uniform telemetry reset (obs/Metrics.h).
  void resetStats();

  const AdmissionOptions &options() const { return Opts; }

private:
  using Clock = std::chrono::steady_clock;

  struct InFlight {
    RepairRequest::Priority Class = RepairRequest::Priority::Neutral;
    Clock::time_point Admitted;
  };

  AdmissionOptions Opts;

  mutable std::mutex Mutex;
  /// Keyed by ticket; tickets are monotonic, so begin() is the oldest
  /// admission (the queueStats() oldest-wait clock).
  std::map<std::uint64_t, InFlight> Active;
  std::array<int, 3> CountByClass{};
  std::uint64_t NextTicket = 1;
  std::uint64_t AdmittedCount = 0;
  std::uint64_t SaturatedRejectCount = 0;
  std::uint64_t QuotaRejectCount = 0;
};

} // namespace serve
} // namespace prdnn

#endif // PRDNN_SERVE_ADMISSIONCONTROLLER_H
