//===- serve/ModelRegistry.h - fingerprint-addressed model store *- C++ -*-===//
///
/// \file
/// A content-addressed registry of whole networks, persisted next to
/// the repair artifacts of a shared persist::ArtifactStore directory:
/// serving requests name a model by its NetworkFingerprint instead of
/// shipping weights, and every serving process pointed at the same
/// directory resolves the same immutable bytes.
///
/// Layout: <store-dir>/models/<32 hex digest chars>.net, one framed
/// binary network (persist::saveNetworkBinary) per entry, named by the
/// network's own content fingerprint. The `.net` suffix keeps entries
/// invisible to the artifact store's LRU GC, which only considers
/// `.art` entry files - a registered model is never evicted to make
/// room for Jacobian blocks (registry entries are the *roots* the
/// artifacts hang off; losing one invalidates a fingerprint every
/// client may still hold).
///
/// Publication is atomic and idempotent: writers serialize into a
/// unique temp file in the models directory and rename() it into
/// place, so concurrent publishers - threads or processes - race
/// benignly (a fingerprint is a content address; every writer's bytes
/// are identical), and a publish of an already-registered model is a
/// cheap existence check.
///
/// Resolution is verified: a loaded network's fingerprint is
/// *recomputed* and compared against the address it was resolved by.
/// A mismatch (bit rot the codec's digest somehow missed, or a file
/// renamed under a foreign address) or a corrupt/truncated frame is
/// rejected with a typed RegistryError - never served, never a crash -
/// and the bad entry is deleted so a later republish heals it.
/// Successful loads enter a per-process in-memory cache (fingerprint
/// -> shared immutable Network), so a serving process deserializes
/// each model once, not per request.
///
//===----------------------------------------------------------------------===//

#ifndef PRDNN_SERVE_MODELREGISTRY_H
#define PRDNN_SERVE_MODELREGISTRY_H

#include "cache/Fingerprint.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace prdnn {

class Network;

namespace serve {

/// Why a registry operation failed; None means success.
enum class RegistryError : std::uint8_t {
  None,
  /// No entry on disk for the requested fingerprint.
  NotFound,
  /// The entry exists but its frame/payload failed codec validation
  /// (truncated, bit-rotted, or not a network blob); the entry was
  /// deleted so a republish can heal it.
  Corrupt,
  /// The entry decoded into a valid network whose *recomputed*
  /// fingerprint differs from the address it was resolved by (e.g. a
  /// file renamed under a foreign address); rejected and deleted -
  /// a fingerprint-addressed request never sees a mismatched model.
  FingerprintMismatch,
  /// Filesystem-level failure (unwritable directory, rename error).
  IoError,
};

const char *toString(RegistryError Error);

/// Aggregate counters of one ModelRegistry; monotonic.
struct RegistryStats {
  /// publish() wrote a new entry.
  std::uint64_t Publishes = 0;
  /// publish() found the entry already on disk (another thread,
  /// process, or an earlier run published first).
  std::uint64_t PublishSkips = 0;
  /// resolve() calls.
  std::uint64_t Resolves = 0;
  /// Of Resolves, served from the per-process in-memory cache.
  std::uint64_t CacheHits = 0;
  /// Of Resolves, loaded (and fingerprint-verified) from disk.
  std::uint64_t DiskLoads = 0;
  /// Of Resolves, no entry on disk.
  std::uint64_t NotFound = 0;
  /// Entries rejected for codec-level corruption (deleted).
  std::uint64_t CorruptRejects = 0;
  /// Entries rejected because the recomputed fingerprint mismatched
  /// the address (deleted).
  std::uint64_t MismatchRejects = 0;

  /// Fraction of resolves served without touching disk.
  double cacheHitRate() const {
    return Resolves == 0 ? 0.0
                         : static_cast<double>(CacheHits) /
                               static_cast<double>(Resolves);
  }
};

/// See the file comment.
class ModelRegistry {
public:
  /// \p StoreDirectory is the *shared store* root (the same directory
  /// an ArtifactStore / EngineOptions::StoreDirectory points at);
  /// models live under its `models/` subdirectory, created on first
  /// use.
  explicit ModelRegistry(std::string StoreDirectory);

  ModelRegistry(const ModelRegistry &) = delete;
  ModelRegistry &operator=(const ModelRegistry &) = delete;

  /// Persists \p Net under its content fingerprint (atomic
  /// temp-then-rename; idempotent - an existing entry is left alone)
  /// and seeds the in-memory cache with a private copy. Returns the
  /// fingerprint clients should address the model by; on I/O failure
  /// reports IoError through \p Error (the fingerprint is still
  /// returned - the caller may retry or serve the cached copy).
  NetworkFingerprint publish(const Network &Net,
                             RegistryError *Error = nullptr);

  /// Returns the immutable network addressed by \p Fp, from the
  /// per-process cache or (verified) from disk; null with a typed
  /// \p Error on failure. See the file comment for the verification
  /// and rejection rules.
  std::shared_ptr<const Network> resolve(const NetworkFingerprint &Fp,
                                         RegistryError *Error = nullptr);

  /// Whether an entry for \p Fp exists (cache or disk), without
  /// loading or verifying it.
  bool contains(const NetworkFingerprint &Fp) const;

  /// Fingerprints of every entry on disk (unverified - resolve()
  /// still re-checks), in unspecified order.
  std::vector<NetworkFingerprint> list() const;

  /// Drops the per-process cache (entries on disk are untouched), so
  /// the next resolve of each model re-loads and re-verifies. For
  /// tests and memory pressure; concurrent resolves are safe.
  void dropCache();

  RegistryStats stats() const;

  /// Zeroes the monotonic counters; the entry cache and on-disk
  /// entries are untouched. Part of the uniform telemetry reset
  /// (obs/Metrics.h).
  void resetStats() {
    PublishCount.store(0, std::memory_order_relaxed);
    PublishSkipCount.store(0, std::memory_order_relaxed);
    ResolveCount.store(0, std::memory_order_relaxed);
    CacheHitCount.store(0, std::memory_order_relaxed);
    DiskLoadCount.store(0, std::memory_order_relaxed);
    NotFoundCount.store(0, std::memory_order_relaxed);
    CorruptRejectCount.store(0, std::memory_order_relaxed);
    MismatchRejectCount.store(0, std::memory_order_relaxed);
  }

  /// The on-disk path \p Fp maps to (exposed so tests can corrupt or
  /// inspect entries).
  std::string entryPath(const NetworkFingerprint &Fp) const;

  /// The `models/` directory this registry publishes into.
  const std::string &directory() const { return Dir; }

private:
  struct FpHash {
    std::size_t operator()(const NetworkFingerprint &Fp) const {
      return static_cast<std::size_t>(
          Fp.Digest.Hi ^ (Fp.Digest.Lo * 0x9e3779b97f4a7c15ull));
    }
  };

  std::string Dir; ///< <store-dir>/models

  mutable std::mutex CacheMutex;
  std::unordered_map<NetworkFingerprint, std::shared_ptr<const Network>,
                     FpHash>
      Cache;

  std::atomic<std::uint64_t> NextTempId{0};

  std::atomic<std::uint64_t> PublishCount{0};
  std::atomic<std::uint64_t> PublishSkipCount{0};
  mutable std::atomic<std::uint64_t> ResolveCount{0};
  mutable std::atomic<std::uint64_t> CacheHitCount{0};
  mutable std::atomic<std::uint64_t> DiskLoadCount{0};
  mutable std::atomic<std::uint64_t> NotFoundCount{0};
  mutable std::atomic<std::uint64_t> CorruptRejectCount{0};
  mutable std::atomic<std::uint64_t> MismatchRejectCount{0};
};

} // namespace serve
} // namespace prdnn

#endif // PRDNN_SERVE_MODELREGISTRY_H
