//===- serve/RepairService.h - fleet serving front end ---------*- C++ -*-===//
///
/// \file
/// The serving tier over the RepairEngine: a front end that accepts
/// ServeRequests naming a model by NetworkFingerprint instead of
/// carrying weights, resolves the model through a shared, verified
/// ModelRegistry (per-process cache over the store directory's
/// `models/` entries), gates acceptance through an AdmissionController
/// (bounded in-flight, per-class quotas, typed reject-with-reason when
/// saturated), and dispatches admitted jobs to its RepairEngine -
/// whose artifact cache is backed by the same shared store directory,
/// so every serving process warms every other one.
///
/// A fleet deployment runs one RepairService per process, all pointed
/// at one store directory:
///
///   clients --fp--> [Service A: registry cache | admission | engine]
///   clients --fp--> [Service B: registry cache | admission | engine]
///                         \          shared <dir>          /
///                          models/*.net + ab/cd/*.art artifacts
///
/// Determinism contract: an accepted request's report is bit-for-bit
/// identical to RepairEngine::run() of the equivalent RepairRequest on
/// the same network in-process - the registry serializes bit-exactly
/// and re-verifies fingerprints on load, and the engine's cache/store
/// tiers are bit-exact by construction - so *which* process serves a
/// request (and how warm it is) never changes the answer. Enforced by
/// tests/serve_test.cpp and bench/bench_serve_fleet.cpp (non-zero exit
/// on any divergence).
///
/// Admission never blocks and never queues beyond the engine: the
/// service clamps the engine's queue capacity to at least MaxInFlight,
/// so an admitted submit() cannot park in engine backpressure - the
/// admission bound *is* the backpressure, surfaced as a typed reject
/// the caller can act on (retry, shed, or route to another process).
///
//===----------------------------------------------------------------------===//

#ifndef PRDNN_SERVE_REPAIRSERVICE_H
#define PRDNN_SERVE_REPAIRSERVICE_H

#include "api/RepairEngine.h"
#include "serve/AdmissionController.h"
#include "serve/ModelRegistry.h"

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace prdnn {
namespace serve {

/// One serving request: a repair described as data, with the network
/// referenced by content fingerprint instead of shipped as weights.
struct ServeRequest {
  /// Which registered model to repair (ModelRegistry::publish's
  /// return value; also discoverable via list()).
  NetworkFingerprint Model;
  /// Point spec (Algorithm 1) or polytope spec (Algorithm 2).
  std::variant<PointSpec, PolytopeSpec> Spec;
  /// A parameterized linear layer index, or kAutoLayer to sweep.
  int LayerIndex = kAutoLayer;
  /// Candidate layers for the sweep; empty = all parameterized.
  std::vector<int> SweepLayers;
  /// Scheduling class: admission quota bucket *and* engine queue
  /// class.
  RepairRequest::Priority Class = RepairRequest::Priority::Neutral;
  RepairOptions Options;
};

/// Why submit() rejected; None means accepted.
enum class ServeReject : std::uint8_t {
  None,
  /// AdmissionController: at MaxInFlight.
  Saturated,
  /// AdmissionController: the request's class is at its quota.
  ClassQuota,
  /// No registry entry for the requested fingerprint.
  UnknownModel,
  /// The registry entry failed codec validation (deleted; republish
  /// to heal).
  ModelCorrupt,
  /// The registry entry's recomputed fingerprint mismatched its
  /// address (deleted) - never served.
  ModelMismatch,
};

const char *toString(ServeReject Reject);

/// What submit() returns: an accepted submission carries the engine
/// job handle; a rejected one carries the typed reason.
struct ServeSubmission {
  ServeReject Reject = ServeReject::None;
  JobHandle Handle; ///< valid iff accepted

  bool accepted() const { return Reject == ServeReject::None; }
};

/// One aggregated observability snapshot of a RepairService: the front
/// end's own accept/reject counters plus every tier behind it -
/// registry, admission, engine queue, cache, and store - so a status
/// endpoint (rpc/RpcServer.h's Status exchange) is a single stats()
/// call rather than four.
struct ServiceStats {
  std::uint64_t Accepted = 0;
  std::uint64_t Rejected = 0;
  /// Rejections by ServeReject value (index 0, None, stays 0).
  std::array<std::uint64_t, 6> RejectsByReason{};
  /// ModelRegistry::stats(): publish/resolve/corrupt counters.
  RegistryStats Registry;
  /// AdmissionController::queueStats(): in-flight depth, per-class
  /// counts, saturation/quota rejects.
  AdmissionSnapshot Admission;
  /// RepairEngine::queueStats(): queue depth, running jobs, oldest
  /// wait.
  EngineQueueStats Engine;
  /// Engine artifact-cache counters (store counters ride along in
  /// Cache.Store when a persistent store is attached).
  CacheStats Cache;
};

/// Combined observability snapshot: the admission tier and the engine
/// queue in one ProgressSnapshot-style value.
struct ServiceQueueStats {
  AdmissionSnapshot Admission;
  EngineQueueStats Engine;
};

struct ServiceOptions {
  /// The shared store directory (required): the engine's L2 artifact
  /// store *and* the model registry both live here, which is what
  /// lets N processes share one warm state.
  std::string StoreDirectory;
  /// Engine configuration. StoreDirectory is overridden by the field
  /// above; QueueCapacity is clamped to >= Admission.MaxInFlight (see
  /// the file comment). Engine.Telemetry, when preset, is adopted as
  /// the service's sink (overriding the Telemetry flag below).
  EngineOptions Engine;
  AdmissionOptions Admission;
  /// Create an obs::Telemetry for this service (one registry + trace
  /// ring spanning front end, admission, registry, engine, cache, and
  /// store - the page the RPC Metrics exchange serves). Telemetry is
  /// inert by contract (bit-identical reports either way,
  /// test-enforced), so it defaults on; turn it off to shave the
  /// atomics. Ignored when Engine.Telemetry is already set.
  bool Telemetry = true;
};

/// See the file comment.
class RepairService {
public:
  explicit RepairService(ServiceOptions Options);
  ~RepairService();

  RepairService(const RepairService &) = delete;
  RepairService &operator=(const RepairService &) = delete;

  /// Admission-gates, resolves, and dispatches \p Request. On
  /// acceptance the returned handle behaves exactly like
  /// RepairEngine::submit()'s; the admission slot is released
  /// automatically when the job resolves (completion hook). On
  /// rejection nothing was enqueued and the typed reason says why.
  /// Never blocks on queue space.
  ServeSubmission submit(ServeRequest Request);

  /// The registry this service resolves fingerprints through (also
  /// the publication side for loaders).
  ModelRegistry &registry() { return Registry; }
  const ModelRegistry &registry() const { return Registry; }

  RepairEngine &engine() { return Engine; }
  const RepairEngine &engine() const { return Engine; }

  /// Admission + engine queue observability in one snapshot.
  ServiceQueueStats queueStats() const;

  /// Aggregated snapshot of every tier (see ServiceStats): front-end
  /// accept/reject counters, registry, admission, engine queue, and
  /// cache/store counters in one call.
  ServiceStats stats() const;

  /// Drains the engine's write-behind store queue (orderly shutdown /
  /// handoff to a successor process).
  void flush() { Engine.flushStore(); }

  /// The service's telemetry sink - one MetricsRegistry + TraceBuffer
  /// spanning every tier behind this front end - or null when
  /// telemetry is off. This is what the RPC Metrics exchange
  /// snapshots.
  const std::shared_ptr<obs::Telemetry> &telemetry() const { return Telem; }

  /// The uniform counter reset: with telemetry on, one
  /// MetricsRegistry::reset() zeroes the front-end accept/reject
  /// counters, admission and registry counters, engine instruments,
  /// and cache/store counters together (via the registered hooks);
  /// without telemetry the same tiers are reset by hand. Live state
  /// (in-flight tickets, queue depth, cached models/artifacts) is
  /// untouched.
  void resetStats();

  const ServiceOptions &options() const { return Opts; }

private:
  void registerTelemetry();
  void resetOwnStats();

  ServiceOptions Opts;
  ModelRegistry Registry;
  AdmissionController Admission;
  /// Must precede Engine: the engine options capture this pointer.
  std::shared_ptr<obs::Telemetry> Telem;
  RepairEngine Engine;

  std::atomic<std::uint64_t> AcceptedCount{0};
  std::atomic<std::uint64_t> RejectedCount{0};
  std::array<std::atomic<std::uint64_t>, 6> RejectCounts{};
};

} // namespace serve
} // namespace prdnn

#endif // PRDNN_SERVE_REPAIRSERVICE_H
