//===- serve/ModelRegistry.cpp --------------------------------------------===//

#include "serve/ModelRegistry.h"

#include "nn/Network.h"
#include "persist/Serialize.h"

#include <filesystem>
#include <system_error>
#include <utility>

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

namespace fs = std::filesystem;

using namespace prdnn;
using namespace prdnn::serve;

namespace {

constexpr const char *kModelSuffix = ".net";
constexpr const char *kTempPrefix = ".tmp-";

std::uint64_t processId() {
#ifdef _WIN32
  return static_cast<std::uint64_t>(_getpid());
#else
  return static_cast<std::uint64_t>(::getpid());
#endif
}

void setError(RegistryError *Error, RegistryError Value) {
  if (Error)
    *Error = Value;
}

} // namespace

const char *prdnn::serve::toString(RegistryError Error) {
  switch (Error) {
  case RegistryError::None:
    return "none";
  case RegistryError::NotFound:
    return "not-found";
  case RegistryError::Corrupt:
    return "corrupt";
  case RegistryError::FingerprintMismatch:
    return "fingerprint-mismatch";
  case RegistryError::IoError:
    return "io-error";
  }
  return "unknown";
}

ModelRegistry::ModelRegistry(std::string StoreDirectory)
    : Dir((fs::path(std::move(StoreDirectory)) / "models").string()) {
  std::error_code Ec;
  fs::create_directories(Dir, Ec);
}

std::string ModelRegistry::entryPath(const NetworkFingerprint &Fp) const {
  return (fs::path(Dir) / (toHex(Fp) + kModelSuffix)).string();
}

NetworkFingerprint ModelRegistry::publish(const Network &Net,
                                          RegistryError *Error) {
  setError(Error, RegistryError::None);
  NetworkFingerprint Fp = fingerprintNetwork(Net);

  // Seed the per-process cache with a private immutable copy so the
  // publisher's own serving path never re-reads what it just wrote
  // (and keeps working even if the disk write below fails).
  {
    std::lock_guard<std::mutex> Lock(CacheMutex);
    if (!Cache.count(Fp))
      Cache.emplace(Fp, std::make_shared<const Network>(Net));
  }

  const std::string Path = entryPath(Fp);
  std::error_code Ec;
  if (fs::exists(Path, Ec)) {
    // Published already - by an earlier run, a concurrent thread, or
    // another process on the shared directory. Content addressing
    // makes the bytes identical, so there is nothing to do.
    PublishSkipCount.fetch_add(1, std::memory_order_relaxed);
    return Fp;
  }

  fs::create_directories(Dir, Ec);
  // Unique temp name in the models directory itself so the final
  // rename never crosses a filesystem boundary (atomicity).
  std::string TempName =
      kTempPrefix + std::to_string(processId()) + "-" +
      std::to_string(NextTempId.fetch_add(1, std::memory_order_relaxed));
  fs::path Temp = fs::path(Dir) / TempName;
  if (!persist::saveNetworkBinary(Net, Temp.string())) {
    setError(Error, RegistryError::IoError);
    fs::remove(Temp, Ec);
    return Fp;
  }
  fs::rename(Temp, fs::path(Path), Ec);
  if (Ec) {
    fs::remove(Temp, Ec);
    // A concurrent publisher may have renamed first; that is success.
    std::error_code ExistsEc;
    if (fs::exists(Path, ExistsEc)) {
      PublishSkipCount.fetch_add(1, std::memory_order_relaxed);
      return Fp;
    }
    setError(Error, RegistryError::IoError);
    return Fp;
  }
  PublishCount.fetch_add(1, std::memory_order_relaxed);
  return Fp;
}

std::shared_ptr<const Network>
ModelRegistry::resolve(const NetworkFingerprint &Fp, RegistryError *Error) {
  setError(Error, RegistryError::None);
  ResolveCount.fetch_add(1, std::memory_order_relaxed);

  {
    std::lock_guard<std::mutex> Lock(CacheMutex);
    auto It = Cache.find(Fp);
    if (It != Cache.end()) {
      CacheHitCount.fetch_add(1, std::memory_order_relaxed);
      return It->second;
    }
  }

  const std::string Path = entryPath(Fp);
  std::error_code Ec;
  if (!fs::exists(Path, Ec)) {
    NotFoundCount.fetch_add(1, std::memory_order_relaxed);
    setError(Error, RegistryError::NotFound);
    return nullptr;
  }

  persist::CodecError Codec = persist::CodecError::None;
  std::optional<Network> Loaded = persist::loadNetworkBinary(Path, &Codec);
  if (!Loaded) {
    // Torn write from a crashed publisher, bit rot, or a foreign file:
    // reject with a typed error and delete the entry so the next
    // publish republishes good bytes. Corruption can cost a reload,
    // never a wrong model.
    CorruptRejectCount.fetch_add(1, std::memory_order_relaxed);
    fs::remove(Path, Ec);
    setError(Error, RegistryError::Corrupt);
    return nullptr;
  }

  // The load must re-derive the address: a valid network stored under
  // the wrong fingerprint must never be served as if it were the
  // requested model (this is the registry's analogue of the artifact
  // store's digest check, one level up - it also catches the
  // vanishingly unlikely case of a payload digest collision).
  if (!(fingerprintNetwork(*Loaded) == Fp)) {
    MismatchRejectCount.fetch_add(1, std::memory_order_relaxed);
    fs::remove(Path, Ec);
    setError(Error, RegistryError::FingerprintMismatch);
    return nullptr;
  }

  auto Shared = std::make_shared<const Network>(std::move(*Loaded));
  DiskLoadCount.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> Lock(CacheMutex);
    // A concurrent resolve of the same model may have inserted first;
    // keep the incumbent so every caller shares one instance.
    return Cache.emplace(Fp, std::move(Shared)).first->second;
  }
}

bool ModelRegistry::contains(const NetworkFingerprint &Fp) const {
  {
    std::lock_guard<std::mutex> Lock(CacheMutex);
    if (Cache.count(Fp))
      return true;
  }
  std::error_code Ec;
  return fs::exists(entryPath(Fp), Ec);
}

std::vector<NetworkFingerprint> ModelRegistry::list() const {
  std::vector<NetworkFingerprint> Out;
  std::error_code Ec;
  for (fs::directory_iterator
           It(Dir, fs::directory_options::skip_permission_denied, Ec),
       End;
       !Ec && It != End; It.increment(Ec)) {
    if (!It->is_regular_file(Ec))
      continue;
    std::string Name = It->path().filename().string();
    if (Name.size() != 32 + 4 ||
        Name.compare(32, 4, kModelSuffix) != 0)
      continue;
    if (std::optional<Digest128> Digest =
            digestFromHex(Name.substr(0, 32)))
      Out.push_back(NetworkFingerprint{*Digest});
  }
  return Out;
}

void ModelRegistry::dropCache() {
  std::lock_guard<std::mutex> Lock(CacheMutex);
  Cache.clear();
}

RegistryStats ModelRegistry::stats() const {
  RegistryStats Stats;
  Stats.Publishes = PublishCount.load(std::memory_order_relaxed);
  Stats.PublishSkips = PublishSkipCount.load(std::memory_order_relaxed);
  Stats.Resolves = ResolveCount.load(std::memory_order_relaxed);
  Stats.CacheHits = CacheHitCount.load(std::memory_order_relaxed);
  Stats.DiskLoads = DiskLoadCount.load(std::memory_order_relaxed);
  Stats.NotFound = NotFoundCount.load(std::memory_order_relaxed);
  Stats.CorruptRejects = CorruptRejectCount.load(std::memory_order_relaxed);
  Stats.MismatchRejects =
      MismatchRejectCount.load(std::memory_order_relaxed);
  return Stats;
}
