//===- serve/AdmissionController.cpp --------------------------------------===//

#include "serve/AdmissionController.h"

#include <algorithm>

using namespace prdnn;
using namespace prdnn::serve;

const char *prdnn::serve::toString(AdmitReject Reject) {
  switch (Reject) {
  case AdmitReject::None:
    return "none";
  case AdmitReject::Saturated:
    return "saturated";
  case AdmitReject::ClassQuota:
    return "class-quota";
  }
  return "unknown";
}

AdmissionController::AdmissionController(AdmissionOptions Options)
    : Opts(Options) {
  if (Opts.MaxInFlight < 1)
    Opts.MaxInFlight = 1;
  for (int &Quota : Opts.ClassQuota)
    Quota = std::max(0, Quota);
}

std::uint64_t AdmissionController::tryAdmit(RepairRequest::Priority Class,
                                            AdmitReject *Reject) {
  const auto ClassIndex = static_cast<std::size_t>(Class);
  std::lock_guard<std::mutex> Lock(Mutex);
  if (static_cast<int>(Active.size()) >= Opts.MaxInFlight) {
    ++SaturatedRejectCount;
    if (Reject)
      *Reject = AdmitReject::Saturated;
    return 0;
  }
  if (Opts.ClassQuota[ClassIndex] > 0 &&
      CountByClass[ClassIndex] >= Opts.ClassQuota[ClassIndex]) {
    ++QuotaRejectCount;
    if (Reject)
      *Reject = AdmitReject::ClassQuota;
    return 0;
  }
  std::uint64_t Ticket = NextTicket++;
  Active.emplace(Ticket, InFlight{Class, Clock::now()});
  ++CountByClass[ClassIndex];
  ++AdmittedCount;
  if (Reject)
    *Reject = AdmitReject::None;
  return Ticket;
}

void AdmissionController::release(std::uint64_t Ticket) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Active.find(Ticket);
  if (It == Active.end())
    return;
  --CountByClass[static_cast<std::size_t>(It->second.Class)];
  Active.erase(It);
}

AdmissionSnapshot AdmissionController::queueStats() const {
  AdmissionSnapshot Snap;
  std::lock_guard<std::mutex> Lock(Mutex);
  Snap.Depth = static_cast<int>(Active.size());
  Snap.ByClass = CountByClass;
  if (!Active.empty()) {
    // Tickets are monotonic: the first key is the oldest admission.
    Snap.OldestWaitSeconds =
        std::chrono::duration<double>(Clock::now() -
                                      Active.begin()->second.Admitted)
            .count();
  }
  Snap.Admitted = AdmittedCount;
  Snap.SaturatedRejects = SaturatedRejectCount;
  Snap.QuotaRejects = QuotaRejectCount;
  return Snap;
}

void AdmissionController::resetStats() {
  std::lock_guard<std::mutex> Lock(Mutex);
  AdmittedCount = 0;
  SaturatedRejectCount = 0;
  QuotaRejectCount = 0;
}
