//===- serve/RepairService.cpp --------------------------------------------===//

#include "serve/RepairService.h"

#include <algorithm>

using namespace prdnn;
using namespace prdnn::serve;

const char *prdnn::serve::toString(ServeReject Reject) {
  switch (Reject) {
  case ServeReject::None:
    return "none";
  case ServeReject::Saturated:
    return "saturated";
  case ServeReject::ClassQuota:
    return "class-quota";
  case ServeReject::UnknownModel:
    return "unknown-model";
  case ServeReject::ModelCorrupt:
    return "model-corrupt";
  case ServeReject::ModelMismatch:
    return "model-mismatch";
  }
  return "unknown";
}

namespace {

/// The engine options a service actually runs: the shared directory
/// wired in, enough queue capacity that an admitted job never blocks
/// in engine backpressure (admission is the backpressure), and the
/// service's telemetry sink installed.
EngineOptions serviceEngineOptions(const ServiceOptions &Options,
                                   std::shared_ptr<obs::Telemetry> Telem) {
  EngineOptions Engine = Options.Engine;
  Engine.StoreDirectory = Options.StoreDirectory;
  Engine.QueueCapacity = std::max(
      Engine.QueueCapacity, std::max(1, Options.Admission.MaxInFlight));
  Engine.Telemetry = std::move(Telem);
  return Engine;
}

std::shared_ptr<obs::Telemetry> serviceTelemetry(const ServiceOptions &Opts) {
  if (Opts.Engine.Telemetry) // caller-provided sink wins
    return Opts.Engine.Telemetry;
  return Opts.Telemetry ? std::make_shared<obs::Telemetry>() : nullptr;
}

/// Metric-safe spelling of a reject reason ("class-quota" ->
/// "class_quota").
std::string rejectSlug(ServeReject Reject) {
  std::string Slug = toString(Reject);
  for (char &C : Slug)
    if (C == '-')
      C = '_';
  return Slug;
}

} // namespace

RepairService::RepairService(ServiceOptions Options)
    : Opts(std::move(Options)), Registry(Opts.StoreDirectory),
      Admission(Opts.Admission), Telem(serviceTelemetry(Opts)),
      Engine(serviceEngineOptions(Opts, Telem)) {
  if (Telem)
    registerTelemetry();
}

RepairService::~RepairService() {
  if (Telem)
    Telem->Registry.removeOwner(this);
}

void RepairService::registerTelemetry() {
  obs::MetricsRegistry &Reg = Telem->Registry;
  Reg.addCollector(this, "prdnn_serve_accepted_total",
                   obs::MetricType::Counter, "Requests admitted and enqueued",
                   [this] {
                     return double(
                         AcceptedCount.load(std::memory_order_relaxed));
                   });
  Reg.addCollector(this, "prdnn_serve_rejected_total",
                   obs::MetricType::Counter, "Requests rejected (any reason)",
                   [this] {
                     return double(
                         RejectedCount.load(std::memory_order_relaxed));
                   });
  for (std::size_t I = 1; I < RejectCounts.size(); ++I) {
    const auto Reason = static_cast<ServeReject>(I);
    Reg.addCollector(this,
                     "prdnn_serve_rejects_" + rejectSlug(Reason) + "_total",
                     obs::MetricType::Counter,
                     std::string("Rejections with reason ") +
                         toString(Reason),
                     [this, I] {
                       return double(
                           RejectCounts[I].load(std::memory_order_relaxed));
                     });
  }
  Reg.addCollector(this, "prdnn_admission_inflight", obs::MetricType::Gauge,
                   "Admitted jobs not yet released", [this] {
                     return double(Admission.queueStats().Depth);
                   });
  Reg.addCollector(this, "prdnn_admission_oldest_wait_seconds",
                   obs::MetricType::Gauge,
                   "Seconds since the oldest in-flight admission", [this] {
                     return Admission.queueStats().OldestWaitSeconds;
                   });
  Reg.addCollector(this, "prdnn_admission_admitted_total",
                   obs::MetricType::Counter, "Admission grants", [this] {
                     return double(Admission.queueStats().Admitted);
                   });
  Reg.addCollector(this, "prdnn_admission_saturated_rejects_total",
                   obs::MetricType::Counter,
                   "Admission rejects at MaxInFlight", [this] {
                     return double(Admission.queueStats().SaturatedRejects);
                   });
  Reg.addCollector(this, "prdnn_admission_quota_rejects_total",
                   obs::MetricType::Counter,
                   "Admission rejects at a class quota", [this] {
                     return double(Admission.queueStats().QuotaRejects);
                   });
  auto RegVal = [this](auto Member) {
    return [this, Member]() { return double(Registry.stats().*Member); };
  };
  Reg.addCollector(this, "prdnn_registry_publishes_total",
                   obs::MetricType::Counter, "Models published to disk",
                   RegVal(&RegistryStats::Publishes));
  Reg.addCollector(this, "prdnn_registry_publish_skips_total",
                   obs::MetricType::Counter,
                   "Publishes that found the entry already on disk",
                   RegVal(&RegistryStats::PublishSkips));
  Reg.addCollector(this, "prdnn_registry_resolves_total",
                   obs::MetricType::Counter, "Fingerprint resolutions",
                   RegVal(&RegistryStats::Resolves));
  Reg.addCollector(this, "prdnn_registry_cache_hits_total",
                   obs::MetricType::Counter,
                   "Resolutions served from the in-memory model cache",
                   RegVal(&RegistryStats::CacheHits));
  Reg.addCollector(this, "prdnn_registry_disk_loads_total",
                   obs::MetricType::Counter,
                   "Resolutions loaded and verified from disk",
                   RegVal(&RegistryStats::DiskLoads));
  Reg.addCollector(this, "prdnn_registry_not_found_total",
                   obs::MetricType::Counter,
                   "Resolutions with no entry on disk",
                   RegVal(&RegistryStats::NotFound));
  Reg.addCollector(this, "prdnn_registry_corrupt_rejects_total",
                   obs::MetricType::Counter,
                   "Entries rejected for codec corruption",
                   RegVal(&RegistryStats::CorruptRejects));
  Reg.addCollector(this, "prdnn_registry_mismatch_rejects_total",
                   obs::MetricType::Counter,
                   "Entries rejected for fingerprint mismatch",
                   RegVal(&RegistryStats::MismatchRejects));
  Reg.addResetHook(this, [this] { resetOwnStats(); });
}

void RepairService::resetOwnStats() {
  AcceptedCount.store(0, std::memory_order_relaxed);
  RejectedCount.store(0, std::memory_order_relaxed);
  for (auto &Count : RejectCounts)
    Count.store(0, std::memory_order_relaxed);
  Admission.resetStats();
  Registry.resetStats();
}

void RepairService::resetStats() {
  if (Telem) {
    // One registry-wide reset; the hooks reach this service's
    // counters *and* the engine's cache/store counters.
    Telem->Registry.reset();
    return;
  }
  resetOwnStats();
  Engine.resetCacheStats();
}

ServeSubmission RepairService::submit(ServeRequest Request) {
  auto RejectWith = [&](ServeReject Reason) {
    RejectedCount.fetch_add(1, std::memory_order_relaxed);
    RejectCounts[static_cast<std::size_t>(Reason)].fetch_add(
        1, std::memory_order_relaxed);
    ServeSubmission Submission;
    Submission.Reject = Reason;
    return Submission;
  };

  // Admission first: it is the cheap check, and a saturated service
  // should shed load before spending a disk read on the model.
  AdmitReject Admit = AdmitReject::None;
  std::uint64_t Ticket = Admission.tryAdmit(Request.Class, &Admit);
  if (Ticket == 0)
    return RejectWith(Admit == AdmitReject::ClassQuota
                          ? ServeReject::ClassQuota
                          : ServeReject::Saturated);

  RegistryError RegErr = RegistryError::None;
  std::shared_ptr<const Network> Net =
      Registry.resolve(Request.Model, &RegErr);
  if (!Net) {
    Admission.release(Ticket);
    switch (RegErr) {
    case RegistryError::Corrupt:
      return RejectWith(ServeReject::ModelCorrupt);
    case RegistryError::FingerprintMismatch:
      return RejectWith(ServeReject::ModelMismatch);
    case RegistryError::NotFound:
    case RegistryError::IoError:
    case RegistryError::None:
      return RejectWith(ServeReject::UnknownModel);
    }
    return RejectWith(ServeReject::UnknownModel);
  }

  RepairRequest Engineside;
  Engineside.Net = std::move(Net);
  Engineside.Spec = std::move(Request.Spec);
  Engineside.LayerIndex = Request.LayerIndex;
  Engineside.SweepLayers = std::move(Request.SweepLayers);
  Engineside.JobPriority = Request.Class;
  Engineside.Options = std::move(Request.Options);

  ServeSubmission Submission;
  // The completion hook releases the admission slot as the job
  // resolves - worker thread, teardown cancellation, and backpressure
  // cancellation paths alike - so Depth tracks truly-in-flight jobs.
  Submission.Handle = Engine.submit(
      std::move(Engineside), /*CheckpointHook=*/{},
      [this, Ticket](const RepairReport &) { Admission.release(Ticket); });
  AcceptedCount.fetch_add(1, std::memory_order_relaxed);
  return Submission;
}

ServiceQueueStats RepairService::queueStats() const {
  ServiceQueueStats Stats;
  Stats.Admission = Admission.queueStats();
  Stats.Engine = Engine.queueStats();
  return Stats;
}

ServiceStats RepairService::stats() const {
  ServiceStats Stats;
  Stats.Accepted = AcceptedCount.load(std::memory_order_relaxed);
  Stats.Rejected = RejectedCount.load(std::memory_order_relaxed);
  for (std::size_t I = 0; I < RejectCounts.size(); ++I)
    Stats.RejectsByReason[I] =
        RejectCounts[I].load(std::memory_order_relaxed);
  Stats.Registry = Registry.stats();
  Stats.Admission = Admission.queueStats();
  Stats.Engine = Engine.queueStats();
  Stats.Cache = Engine.cacheStats();
  return Stats;
}
