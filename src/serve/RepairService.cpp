//===- serve/RepairService.cpp --------------------------------------------===//

#include "serve/RepairService.h"

#include <algorithm>

using namespace prdnn;
using namespace prdnn::serve;

const char *prdnn::serve::toString(ServeReject Reject) {
  switch (Reject) {
  case ServeReject::None:
    return "none";
  case ServeReject::Saturated:
    return "saturated";
  case ServeReject::ClassQuota:
    return "class-quota";
  case ServeReject::UnknownModel:
    return "unknown-model";
  case ServeReject::ModelCorrupt:
    return "model-corrupt";
  case ServeReject::ModelMismatch:
    return "model-mismatch";
  }
  return "unknown";
}

namespace {

/// The engine options a service actually runs: the shared directory
/// wired in, and enough queue capacity that an admitted job never
/// blocks in engine backpressure (admission is the backpressure).
EngineOptions serviceEngineOptions(const ServiceOptions &Options) {
  EngineOptions Engine = Options.Engine;
  Engine.StoreDirectory = Options.StoreDirectory;
  Engine.QueueCapacity = std::max(
      Engine.QueueCapacity, std::max(1, Options.Admission.MaxInFlight));
  return Engine;
}

} // namespace

RepairService::RepairService(ServiceOptions Options)
    : Opts(std::move(Options)), Registry(Opts.StoreDirectory),
      Admission(Opts.Admission), Engine(serviceEngineOptions(Opts)) {}

ServeSubmission RepairService::submit(ServeRequest Request) {
  auto RejectWith = [&](ServeReject Reason) {
    RejectedCount.fetch_add(1, std::memory_order_relaxed);
    RejectCounts[static_cast<std::size_t>(Reason)].fetch_add(
        1, std::memory_order_relaxed);
    ServeSubmission Submission;
    Submission.Reject = Reason;
    return Submission;
  };

  // Admission first: it is the cheap check, and a saturated service
  // should shed load before spending a disk read on the model.
  AdmitReject Admit = AdmitReject::None;
  std::uint64_t Ticket = Admission.tryAdmit(Request.Class, &Admit);
  if (Ticket == 0)
    return RejectWith(Admit == AdmitReject::ClassQuota
                          ? ServeReject::ClassQuota
                          : ServeReject::Saturated);

  RegistryError RegErr = RegistryError::None;
  std::shared_ptr<const Network> Net =
      Registry.resolve(Request.Model, &RegErr);
  if (!Net) {
    Admission.release(Ticket);
    switch (RegErr) {
    case RegistryError::Corrupt:
      return RejectWith(ServeReject::ModelCorrupt);
    case RegistryError::FingerprintMismatch:
      return RejectWith(ServeReject::ModelMismatch);
    case RegistryError::NotFound:
    case RegistryError::IoError:
    case RegistryError::None:
      return RejectWith(ServeReject::UnknownModel);
    }
    return RejectWith(ServeReject::UnknownModel);
  }

  RepairRequest Engineside;
  Engineside.Net = std::move(Net);
  Engineside.Spec = std::move(Request.Spec);
  Engineside.LayerIndex = Request.LayerIndex;
  Engineside.SweepLayers = std::move(Request.SweepLayers);
  Engineside.JobPriority = Request.Class;
  Engineside.Options = std::move(Request.Options);

  ServeSubmission Submission;
  // The completion hook releases the admission slot as the job
  // resolves - worker thread, teardown cancellation, and backpressure
  // cancellation paths alike - so Depth tracks truly-in-flight jobs.
  Submission.Handle = Engine.submit(
      std::move(Engineside), /*CheckpointHook=*/{},
      [this, Ticket](const RepairReport &) { Admission.release(Ticket); });
  AcceptedCount.fetch_add(1, std::memory_order_relaxed);
  return Submission;
}

ServiceQueueStats RepairService::queueStats() const {
  ServiceQueueStats Stats;
  Stats.Admission = Admission.queueStats();
  Stats.Engine = Engine.queueStats();
  return Stats;
}

ServiceStats RepairService::stats() const {
  ServiceStats Stats;
  Stats.Accepted = AcceptedCount.load(std::memory_order_relaxed);
  Stats.Rejected = RejectedCount.load(std::memory_order_relaxed);
  for (std::size_t I = 0; I < RejectCounts.size(); ++I)
    Stats.RejectsByReason[I] =
        RejectCounts[I].load(std::memory_order_relaxed);
  Stats.Registry = Registry.stats();
  Stats.Admission = Admission.queueStats();
  Stats.Engine = Engine.queueStats();
  Stats.Cache = Engine.cacheStats();
  return Stats;
}
