//===- core/PointRepair.cpp -----------------------------------------------===//

#include "core/PointRepair.h"

#include "cache/ArtifactCache.h"
#include "core/RepairContext.h"
#include "nn/Jacobian.h"
#include "nn/LinearLayers.h"
#include "support/Casting.h"
#include "support/Error.h"
#include "support/Parallel.h"
#include "support/Timer.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

using namespace prdnn;

const char *prdnn::toString(RepairStatus Status) {
  switch (Status) {
  case RepairStatus::Success:
    return "Success";
  case RepairStatus::Infeasible:
    return "Infeasible";
  case RepairStatus::SolverFailure:
    return "SolverFailure";
  case RepairStatus::Cancelled:
    return "Cancelled";
  }
  // Statuses now travel over the wire (rpc/Wire.h); a value from a
  // foreign peer must print, not abort.
  return "unknown";
}

namespace {

/// One LP row over the *effective* (unfrozen) parameters:
/// Coef . Delta <= Hi.
struct SpecRow {
  std::vector<double> Coef;
  double Hi;

  double violationAt(const std::vector<double> &Delta) const {
    double Activity = 0.0;
    for (size_t J = 0; J < Coef.size(); ++J)
      Activity += Coef[J] * Delta[J];
    return Activity - Hi;
  }
};

/// Rows of \p Rows (excluding those marked in \p InLp, when non-null)
/// whose violation at \p Delta exceeds \p Tol, in ascending row order.
/// The scan is chunked across the thread pool; chunks are merged in
/// order, so the result matches the sequential scan exactly.
std::vector<std::pair<double, int>>
violatedRows(const std::vector<SpecRow> &Rows, const std::vector<char> *InLp,
             const std::vector<double> &Delta, double Tol) {
  std::int64_t NumRows = static_cast<std::int64_t>(Rows.size());
  const std::int64_t Grain = 1024;
  std::int64_t NumChunks = (NumRows + Grain - 1) / Grain;
  std::vector<std::vector<std::pair<double, int>>> PerChunk(
      static_cast<size_t>(NumChunks));
  parallelForRanges(
      0, NumRows,
      [&](std::int64_t Begin, std::int64_t End) {
        auto &Local = PerChunk[static_cast<size_t>(Begin / Grain)];
        for (std::int64_t RI = Begin; RI < End; ++RI) {
          if (InLp && (*InLp)[static_cast<size_t>(RI)])
            continue;
          double V = Rows[static_cast<size_t>(RI)].violationAt(Delta);
          if (V > Tol)
            Local.push_back({V, static_cast<int>(RI)});
        }
      },
      Grain);
  std::vector<std::pair<double, int>> Result;
  for (auto &Local : PerChunk)
    Result.insert(Result.end(), Local.begin(), Local.end());
  return Result;
}

} // namespace

RepairResult prdnn::detail::repairPointsImpl(const Network &Net,
                                             int LayerIndex,
                                             const PointSpec &Spec,
                                             const RepairOptions &Options,
                                             JobContext *Ctx) {
  WallTimer Total;
  RepairResult Result;
  Result.Stats.SpecPoints = static_cast<int>(Spec.size());

  // Resolve the request's kernel tier (the engine resolves the optional
  // against EngineOptions::Determinism before calling; a direct
  // detail:: call with it unset runs Strict) and install it as this
  // thread's ambient tier, so the nn/ GEMM entry points of the Jacobian
  // phase - all invoked from this thread - inherit it.
  linalg::Determinism Tier =
      Options.Determinism.value_or(linalg::Determinism::Strict);
  linalg::KernelTierScope TierScope(Tier);
  Result.Stats.Determinism = Tier;

  // LP accounting, declared up front so every exit path - cancellation
  // included - stamps the timing stats consistently.
  double LpSeconds = 0.0;
  int LpIterations = 0;
  int RowsUsed = 0;
  bool Solved = false;

  /// Stamps TotalSeconds and the OtherSeconds remainder on *every* exit
  /// path, early returns and cancellations included.
  auto FinalizeStats = [&] {
    Result.Stats.LpSeconds = LpSeconds;
    Result.Stats.LpIterations = LpIterations;
    Result.Stats.LpRowsUsed = RowsUsed;
    Result.Stats.TotalSeconds = Total.seconds();
    Result.Stats.OtherSeconds = std::max(
        0.0, Result.Stats.TotalSeconds - Result.Stats.JacobianSeconds -
                 Result.Stats.LpSeconds);
  };
  auto Cancelled = [&] {
    Result.Status = RepairStatus::Cancelled;
    FinalizeStats();
    return Result;
  };

  const auto *Target = dyn_cast<LinearLayer>(&Net.layer(LayerIndex));
  assert(Target && Target->numParams() > 0 &&
         "repair layer must be a parameterized linear layer");
  int NumParams = Target->numParams();

  // Effective (unfrozen) parameter index map.
  std::vector<int> Effective;
  if (Options.ParamMask) {
    assert(static_cast<int>(Options.ParamMask->size()) == NumParams &&
           "parameter mask size mismatch");
    for (int P = 0; P < NumParams; ++P)
      if ((*Options.ParamMask)[static_cast<size_t>(P)])
        Effective.push_back(P);
  } else {
    Effective.resize(static_cast<size_t>(NumParams));
    std::iota(Effective.begin(), Effective.end(), 0);
  }
  int NumEff = static_cast<int>(Effective.size());
  assert(NumEff > 0 && "all parameters frozen");

  // --- Jacobian phase (Algorithm 1, lines 4-6) -----------------------------
  // Jacobians come from the batched engine (nn/Jacobian.h) in chunks
  // sized to bound the live J storage, and each chunk's constraint rows
  // are assembled in parallel into preallocated slots (row order - and
  // every row's bits - identical to the per-point loop). Cancellation
  // is polled between chunks (between points on the per-point path),
  // never inside them.
  int NumPoints = static_cast<int>(Spec.size());
  if (Ctx) {
    Ctx->beginPhase(RepairPhase::Jacobian, NumPoints);
    if (Ctx->checkpoint(RepairPhase::Jacobian))
      return Cancelled();
  }
  std::vector<int> RowOffset(static_cast<size_t>(NumPoints) + 1, 0);
  for (int P = 0; P < NumPoints; ++P) {
    assert(Spec[static_cast<size_t>(P)].Constraint.A.cols() ==
               Net.outputSize() &&
           "constraint output dimension mismatch");
    RowOffset[static_cast<size_t>(P) + 1] =
        RowOffset[static_cast<size_t>(P)] +
        Spec[static_cast<size_t>(P)].Constraint.numRows();
  }
  std::vector<SpecRow> Rows(
      static_cast<size_t>(RowOffset[static_cast<size_t>(NumPoints)]));
  {
    WallTimer JacobianTimer;
    /// Stamps the phase time on every exit from this scope, the
    /// mid-phase cancellation returns included.
    auto StampJacobian = [&] {
      Result.Stats.JacobianSeconds = JacobianTimer.seconds();
    };
    // Assembles constraint row K of one point from its Jacobian into
    // (CoefOut, HiOut); bits match the seed per-point loop. Shared by
    // the in-place path and the cached-block path, so both produce
    // identical rows.
    auto AssembleRow = [&](int PointIndex, int K, const JacobianResult &Jr,
                           std::vector<double> &CoefOut, double &HiOut) {
      const OutputConstraint &C =
          Spec[static_cast<size_t>(PointIndex)].Constraint;
      // Row k: (A_k J) Delta <= b_k - A_k N(x) - RowMargin.
      CoefOut.assign(static_cast<size_t>(NumEff), 0.0);
      double Activity = 0.0;
      for (int O = 0; O < C.A.cols(); ++O) {
        double AKo = C.A(K, O);
        if (AKo == 0.0)
          continue;
        Activity += AKo * Jr.Output[O];
        const double *JRow = Jr.J.rowData(O);
        for (int E = 0; E < NumEff; ++E)
          CoefOut[static_cast<size_t>(E)] += AKo * JRow[Effective[E]];
      }
      HiOut = C.B[K] - Activity - Options.RowMargin;
    };
    // Assembles all of point PointIndex's rows into their preallocated
    // Rows slots.
    auto AssembleRows = [&](int PointIndex, const JacobianResult &Jr) {
      const OutputConstraint &C =
          Spec[static_cast<size_t>(PointIndex)].Constraint;
      for (int K = 0; K < C.numRows(); ++K) {
        SpecRow &Row = Rows[static_cast<size_t>(
            RowOffset[static_cast<size_t>(PointIndex)] + K)];
        AssembleRow(PointIndex, K, Jr, Row.Coef, Row.Hi);
      }
    };

    if (!Options.BatchedJacobians) {
      // Seed per-point path (ablation baseline).
      for (int P = 0; P < NumPoints; ++P) {
        if (Ctx && Ctx->checkpoint(RepairPhase::Jacobian)) {
          StampJacobian();
          return Cancelled();
        }
        const SpecPoint &Point = Spec[static_cast<size_t>(P)];
        AssembleRows(P, paramJacobian(Net, LayerIndex, Point.X,
                                      Point.Pattern ? &*Point.Pattern
                                                    : nullptr));
        if (Ctx)
          Ctx->advance(1);
      }
    } else {
      // Batched engine, in chunks capping the live batch storage
      // (Jacobians + stacked backward matrix + layer intermediates) at
      // ~64 MiB, with each chunk's rows assembled in parallel.
      std::int64_t MaxWidth = 0, SumWidths = Net.inputSize();
      for (int I = 0; I < Net.numLayers(); ++I) {
        MaxWidth = std::max<std::int64_t>(MaxWidth,
                                          Net.layer(I).outputSize());
        SumWidths += Net.layer(I).outputSize();
      }
      std::int64_t BytesPerPoint =
          static_cast<std::int64_t>(8) *
          (static_cast<std::int64_t>(Net.outputSize()) * NumParams +
           Net.outputSize() * MaxWidth + SumWidths);
      int ChunkPoints = static_cast<int>(std::clamp<std::int64_t>(
          (64 << 20) / std::max<std::int64_t>(1, BytesPerPoint), 1, 256));

      // The engine's shared artifact cache, when this job carries one:
      // each chunk's assembled rows are addressed by the network
      // fingerprint, the layer, the row margin, the effective-parameter
      // map, and the chunk's points (inputs, pinned patterns, and
      // output constraints) - everything the rows depend on - so a hit
      // is bit-for-bit the block this chunk would assemble.
      ArtifactCache *Cache =
          (Ctx && Options.UseCache) ? Ctx->cache() : nullptr;
      auto ChunkKey = [&](int Base, int Count) {
        Hasher H;
        const NetworkFingerprint &Fp = Ctx->networkFingerprint();
        H.u64(Fp.Digest.Hi);
        H.u64(Fp.Digest.Lo);
        hashDeterminism(H, Tier); // Fast blocks never serve Strict
        H.i32(LayerIndex);
        H.f64(Options.RowMargin);
        H.i32(NumEff);
        for (int E : Effective)
          H.i32(E);
        H.i32(Count);
        for (int I = 0; I < Count; ++I) {
          const SpecPoint &P = Spec[static_cast<size_t>(Base + I)];
          hashVector(H, P.X);
          H.i32(P.Pattern ? 1 : 0);
          if (P.Pattern)
            hashPattern(H, *P.Pattern);
          hashMatrix(H, P.Constraint.A);
          hashVector(H, P.Constraint.B);
        }
        return CacheKey{ArtifactKind::JacobianRows, H.digest()};
      };
      // One chunk's Jacobians, exactly as the uncached path computes
      // them.
      auto ComputeChunkJacobians = [&](int Base, int Count) {
        std::vector<Vector> Xs;
        std::vector<const NetworkPattern *> Pinned;
        Xs.reserve(static_cast<size_t>(Count));
        Pinned.reserve(static_cast<size_t>(Count));
        bool AnyPinned = false;
        for (int I = 0; I < Count; ++I) {
          const SpecPoint &P = Spec[static_cast<size_t>(Base + I)];
          Xs.push_back(P.X);
          Pinned.push_back(P.Pattern ? &*P.Pattern : nullptr);
          AnyPinned = AnyPinned || P.Pattern.has_value();
        }
        if (!AnyPinned)
          Pinned.clear(); // pure batched forward, no per-row dispatch
        return paramJacobianBatch(Net, LayerIndex, Xs, Pinned);
      };

      for (int Base = 0; Base < NumPoints; Base += ChunkPoints) {
        if (Ctx && Ctx->checkpoint(RepairPhase::Jacobian)) {
          StampJacobian();
          return Cancelled();
        }
        int Count = std::min(ChunkPoints, NumPoints - Base);
        if (!Cache) {
          std::vector<JacobianResult> Jrs = ComputeChunkJacobians(Base, Count);
          parallelFor(0, Count, [&](std::int64_t I) {
            AssembleRows(Base + static_cast<int>(I),
                         Jrs[static_cast<size_t>(I)]);
          });
        } else {
          int ChunkRowBase = RowOffset[static_cast<size_t>(Base)];
          int ChunkRows =
              RowOffset[static_cast<size_t>(Base + Count)] - ChunkRowBase;
          bool Hit = false;
          CacheTier Tier = CacheTier::None;
          auto Artifact = std::static_pointer_cast<const JacobianRowsArtifact>(
              Cache->getOrCompute(
                  ChunkKey(Base, Count),
                  [&]() -> std::shared_ptr<const CacheArtifact> {
                    auto Block = std::make_shared<JacobianRowsArtifact>();
                    Block->Coef.resize(static_cast<size_t>(ChunkRows));
                    Block->Hi.resize(static_cast<size_t>(ChunkRows));
                    std::vector<JacobianResult> Jrs =
                        ComputeChunkJacobians(Base, Count);
                    parallelFor(0, Count, [&](std::int64_t I) {
                      int PointIndex = Base + static_cast<int>(I);
                      const OutputConstraint &C =
                          Spec[static_cast<size_t>(PointIndex)].Constraint;
                      for (int K = 0; K < C.numRows(); ++K) {
                        size_t Slot = static_cast<size_t>(
                            RowOffset[static_cast<size_t>(PointIndex)] + K -
                            ChunkRowBase);
                        AssembleRow(PointIndex, K,
                                    Jrs[static_cast<size_t>(I)],
                                    Block->Coef[Slot], Block->Hi[Slot]);
                      }
                    });
                    return Block;
                  },
                  &Hit, &Tier));
          // Copy the (shared, immutable) block into this repair's row
          // slots; copies cannot perturb bits.
          parallelForRanges(0, ChunkRows, [&](std::int64_t BeginR,
                                              std::int64_t EndR) {
            for (std::int64_t RI = BeginR; RI < EndR; ++RI) {
              SpecRow &Row =
                  Rows[static_cast<size_t>(ChunkRowBase + RI)];
              Row.Coef = Artifact->Coef[static_cast<size_t>(RI)];
              Row.Hi = Artifact->Hi[static_cast<size_t>(RI)];
            }
          });
          if (Hit) {
            ++Result.Stats.JacobianCacheHits;
            Ctx->noteCacheHits(1);
            if (Tier == CacheTier::L2) {
              ++Result.Stats.JacobianStoreHits;
              Ctx->noteStoreHits(1);
            }
          } else {
            ++Result.Stats.JacobianCacheMisses;
            Ctx->noteCacheMisses(1);
          }
        }
        if (Ctx)
          Ctx->advance(Count);
      }
    }
    StampJacobian();
  }
  Result.Stats.SpecRows = static_cast<int>(Rows.size());

  // --- LP phase (Algorithm 1, lines 7-8) ------------------------------------
  // The engine's cancel flag is threaded into the solver, which polls
  // it between simplex iterations; rounds of constraint generation are
  // additional checkpoints.
  std::vector<double> DeltaEff(static_cast<size_t>(NumEff), 0.0);
  if (Ctx) {
    Ctx->beginPhase(RepairPhase::Lp, /*Total=*/0);
    if (Ctx->checkpoint(RepairPhase::Lp))
      return Cancelled();
  }
  // Thread the job's cancel flag into the solver - unless the caller
  // installed their own flag in Options.Lp, which keeps priority (an
  // engine cancel then still lands at the next CG-round checkpoint,
  // just not mid-solve).
  lp::SimplexOptions LpOptions = Options.Lp;
  if (Ctx && !LpOptions.CancelFlag)
    LpOptions.CancelFlag = Ctx->cancelFlag();
  // A Fast repair tier promotes the simplex kernels too (a caller who
  // pre-set Options.Lp.Determinism = Fast under a Strict repair tier
  // keeps their setting - the basis gate below keys off the effective
  // LP tier either way).
  if (Tier == linalg::Determinism::Fast)
    LpOptions.Determinism = linalg::Determinism::Fast;
  bool LpCancelled = false;

  // Warm-start basis cache (the fourth artifact kind). The key hashes
  // everything that fixes the LP's *structure* - network fingerprint,
  // layer, effective-parameter map, objective norm, and every used
  // row's coefficient bits in row order - but deliberately not the
  // right-hand sides (Rows[].Hi, which absorb RowMargin and the spec's
  // output bounds) nor DeltaBound: those only move bounds, so a
  // resubmission whose spec drifted in RHS only still finds the entry
  // instead of piling up near-duplicates. Replay, however, is gated on
  // an exact digest of the excluded parts (RhsDigest below): replaying
  // the terminal basis of the *identical* LP re-derives the solution
  // bit-for-bit, whereas warm-starting a drifted LP can terminate at a
  // different equally-optimal basis and change low-order bits - which
  // would break the cache-never-changes-results contract. A
  // digest-mismatched hit therefore solves cold (bit-identical to
  // cache-off by construction) and counts as a basis miss. Equal keys
  // imply an identically-shaped LP, so an exported basis always has
  // the right dimensions for a replayed hit.
  // Strict is the only basis-cache tier: a Fast solve's terminal basis
  // reflects Fast pivoting on this host's backend, and replaying it
  // cannot re-derive the Strict solution bit-for-bit - so Fast solves
  // never read or publish bases (they solve cold; the tier is also in
  // the key via hashDeterminism as defense in depth).
  bool LpStrict = LpOptions.Determinism == linalg::Determinism::Strict;
  ArtifactCache *BasisCache =
      (Ctx && Options.UseCache && Options.WarmStartBasis && LpStrict)
          ? Ctx->cache()
          : nullptr;
  auto BasisKey = [&](const std::vector<int> &Use) {
    Hasher H;
    const NetworkFingerprint &Fp = Ctx->networkFingerprint();
    H.u64(Fp.Digest.Hi);
    H.u64(Fp.Digest.Lo);
    hashDeterminism(H, LpOptions.Determinism);
    H.i32(LayerIndex);
    H.i32(NumEff);
    for (int E : Effective)
      H.i32(E);
    H.i32(static_cast<int>(Options.Objective));
    H.i32(static_cast<int>(Use.size()));
    for (int RI : Use) {
      const std::vector<double> &Coef = Rows[static_cast<size_t>(RI)].Coef;
      H.doubles(Coef.data(), Coef.size());
    }
    return CacheKey{ArtifactKind::SimplexBasis, H.digest()};
  };
  /// Digest of everything the basis key leaves out: the built LP's
  /// variable bounds, costs, and row bounds. Key + RhsDigest together
  /// pin the LinearProgram exactly (the key pins the coefficients).
  auto LpRhsDigest = [](const lp::LinearProgram &P) {
    Hasher H;
    H.i32(P.numVariables());
    for (int V = 0; V < P.numVariables(); ++V) {
      H.f64(P.variableLo(V));
      H.f64(P.variableHi(V));
      H.f64(P.objectiveCoef(V));
    }
    H.i32(P.numRows());
    for (int R = 0; R < P.numRows(); ++R) {
      H.f64(P.row(R).Lo);
      H.f64(P.row(R).Hi);
    }
    return H.digest();
  };
  /// Thrown out of the basis-cache compute closure when the cold solve
  /// did not end Optimal: getOrCompute's exception path releases the
  /// single-flight claim without publishing, so nothing is cached.
  struct NoBasis {};

  auto SolveWithRows = [&](const std::vector<int> &Use,
                           std::vector<double> &Out) -> lp::SolveStatus {
    lp::DeltaLp Lp(NumEff, Options.Objective, Options.DeltaBound);
    for (int RI : Use)
      Lp.addConstraint(Rows[static_cast<size_t>(RI)].Coef, -lp::kInfinity,
                       Rows[static_cast<size_t>(RI)].Hi);
    const lp::LinearProgram &Problem = Lp.problem();
    lp::SimplexOptions SolveOptions = LpOptions;
    lp::LpSolution Sol;
    bool SolvedCold = false;
    auto RunSolve = [&] {
      WallTimer LpTimer;
      Sol = lp::solveLp(Problem, SolveOptions);
      LpSeconds += LpTimer.seconds();
    };

    if (!BasisCache) {
      RunSolve();
    } else {
      // Lookup and publish share one getOrCompute so the basis rides
      // the cache's single-flight, read-through, and write-behind
      // machinery: on a miss the compute closure IS the cold solve
      // (exporting its terminal basis), so concurrent jobs racing on
      // one key solve it once and the others warm-start from the
      // shared result.
      SolveOptions.ExportBasis = true;
      Digest128 RhsDigest = LpRhsDigest(Problem);
      bool Hit = false;
      CacheTier Tier = CacheTier::None;
      std::shared_ptr<const CacheArtifact> Cached;
      try {
        Cached = BasisCache->getOrCompute(
            BasisKey(Use),
            [&]() -> std::shared_ptr<const CacheArtifact> {
              RunSolve();
              SolvedCold = true;
              if (Sol.Status != lp::SolveStatus::Optimal || !Sol.OptimalBasis)
                throw NoBasis{};
              auto A = std::make_shared<SimplexBasisArtifact>();
              A->NumRows = Sol.OptimalBasis->NumRows;
              A->NumVars = Sol.OptimalBasis->NumVars;
              A->Basic = Sol.OptimalBasis->Basic;
              A->NonbasicState = Sol.OptimalBasis->NonbasicState;
              A->Pivots = Sol.OptimalBasis->Pivots;
              A->RhsDigest = RhsDigest;
              return A;
            },
            &Hit, &Tier);
      } catch (const NoBasis &) {
        // Cold solve ran but ended non-Optimal; Sol holds its status.
      }
      if (!SolvedCold) {
        // Served from cache (L1, L2, or a concurrent job's in-flight
        // solve). Replay only when the RHS digest certifies the cached
        // basis came from this exact LP - a drifted LP solves cold so
        // cache-on stays bit-identical to cache-off. The solver still
        // re-validates and falls back to the cold path bit-exactly on
        // a corrupt or singular basis.
        const auto &A = static_cast<const SimplexBasisArtifact &>(*Cached);
        lp::SimplexBasis Warm;
        if (A.RhsDigest == RhsDigest) {
          Warm.NumRows = A.NumRows;
          Warm.NumVars = A.NumVars;
          Warm.Basic = A.Basic;
          Warm.NonbasicState = A.NonbasicState;
          Warm.Pivots = A.Pivots;
          SolveOptions.WarmBasis = &Warm;
        }
        RunSolve();
      }
      if (Hit && Sol.WarmStarted) {
        ++Result.Stats.BasisHits;
        Ctx->noteCacheHits(1);
        if (Tier == CacheTier::L2) {
          ++Result.Stats.BasisStoreHits;
          Ctx->noteStoreHits(1);
        }
      } else {
        // Miss, a non-Optimal (uncacheable) solve, or a cached basis
        // the solver rejected - all ran the cold path.
        ++Result.Stats.BasisMisses;
        Ctx->noteCacheMisses(1);
      }
    }

    LpIterations += Sol.Iterations;
    Result.Stats.LpKernels.accumulate(Sol.Stats);
    if (Sol.Status == lp::SolveStatus::Optimal)
      Out = Lp.extractDelta(Sol.X);
    if (Sol.Status == lp::SolveStatus::Cancelled)
      LpCancelled = true;
    if (Ctx)
      Ctx->advance(1);
    return Sol.Status;
  };

  if (!Options.UseConstraintGeneration) {
    std::vector<int> All(Rows.size());
    std::iota(All.begin(), All.end(), 0);
    lp::SolveStatus Status = SolveWithRows(All, DeltaEff);
    RowsUsed = static_cast<int>(All.size());
    if (LpCancelled)
      return Cancelled();
    if (Status == lp::SolveStatus::Infeasible) {
      Result.Status = RepairStatus::Infeasible;
      FinalizeStats();
      return Result;
    }
    Solved = Status == lp::SolveStatus::Optimal;
  } else {
    // Constraint generation: start from the rows violated by Delta = 0
    // and add violated rows until the relaxation optimum is feasible for
    // every row (then it is optimal for the full LP).
    std::vector<char> InLp(Rows.size(), 0);
    std::vector<int> Active;
    for (size_t RI = 0; RI < Rows.size(); ++RI)
      if (Rows[RI].Hi < 0.0) {
        Active.push_back(static_cast<int>(RI));
        InLp[RI] = 1;
      }

    if (Active.empty()) {
      // Delta = 0 already satisfies the (margined) spec.
      Solved = true;
    } else {
      for (int Round = 0; Round < Options.MaxCgRounds && !Solved; ++Round) {
        if (Ctx && Ctx->checkpoint(RepairPhase::Lp))
          return Cancelled();
        ++Result.Stats.CgRounds;
        lp::SolveStatus Status = SolveWithRows(Active, DeltaEff);
        RowsUsed = static_cast<int>(Active.size());
        if (LpCancelled)
          return Cancelled();
        if (Status == lp::SolveStatus::Infeasible) {
          // A subset is infeasible, so the full system is too.
          Result.Status = RepairStatus::Infeasible;
          FinalizeStats();
          return Result;
        }
        if (Status != lp::SolveStatus::Optimal)
          break; // fall through to the full solve below

        // Collect rows the relaxation optimum still violates (parallel
        // scan, sequential order).
        std::vector<std::pair<double, int>> Violated =
            violatedRows(Rows, &InLp, DeltaEff, 10 * Options.Lp.FeasTol);
        if (Violated.empty()) {
          Solved = true;
          break;
        }
        int Take = std::min<int>(Options.CgBatch,
                                 static_cast<int>(Violated.size()));
        std::partial_sort(Violated.begin(), Violated.begin() + Take,
                          Violated.end(), std::greater<>());
        for (int K = 0; K < Take; ++K) {
          Active.push_back(Violated[K].second);
          InLp[Violated[K].second] = 1;
        }
      }
    }

    if (!Solved) {
      // Generation did not converge in budget; fall back to one full
      // solve (still exact).
      if (Ctx && Ctx->checkpoint(RepairPhase::Lp))
        return Cancelled();
      std::vector<int> All(Rows.size());
      std::iota(All.begin(), All.end(), 0);
      lp::SolveStatus Status = SolveWithRows(All, DeltaEff);
      RowsUsed = static_cast<int>(All.size());
      if (LpCancelled)
        return Cancelled();
      if (Status == lp::SolveStatus::Infeasible) {
        Result.Status = RepairStatus::Infeasible;
        FinalizeStats();
        return Result;
      }
      Solved = Status == lp::SolveStatus::Optimal;
    }
  }

  if (!Solved) {
    Result.Status = RepairStatus::SolverFailure;
    FinalizeStats();
    return Result;
  }

  // --- Apply and verify (Algorithm 1, lines 9-10) ---------------------------
  if (Ctx) {
    Ctx->beginPhase(RepairPhase::Verify, NumPoints);
    if (Ctx->checkpoint(RepairPhase::Verify))
      return Cancelled();
  }
  Result.Delta.assign(static_cast<size_t>(NumParams), 0.0);
  for (int E = 0; E < NumEff; ++E)
    Result.Delta[static_cast<size_t>(Effective[E])] = DeltaEff[E];
  for (double D : Result.Delta) {
    Result.DeltaL1 += std::fabs(D);
    Result.DeltaLInf = std::max(Result.DeltaLInf, std::fabs(D));
  }

  DecoupledNetwork Repaired = DecoupledNetwork::fromNetwork(Net);
  cast<LinearLayer>(Repaired.valueChannel().layer(LayerIndex))
      .addToParams(Result.Delta);

  // Re-verify the specification against the repaired DDNN itself. Max
  // violation is order-independent, so the parallel scan over points is
  // deterministic.
  std::vector<double> PointViolation(static_cast<size_t>(NumPoints), 0.0);
  parallelFor(0, NumPoints, [&](std::int64_t P) {
    const SpecPoint &Point = Spec[static_cast<size_t>(P)];
    Vector Y = Point.Pattern
                   ? Repaired.evaluateWithPattern(Point.X, *Point.Pattern)
                   : Repaired.evaluate(Point.X);
    PointViolation[static_cast<size_t>(P)] = Point.Constraint.violation(Y);
  });
  double Verified = 0.0;
  for (double V : PointViolation)
    Verified = std::max(Verified, V);
  if (Ctx)
    Ctx->advance(NumPoints);
  Result.Stats.VerifiedViolation = Verified;
  if (Verified > 100 * Options.Lp.FeasTol + 1e-9) {
    // The LP said feasible but the network disagrees: numerical failure,
    // never silently accepted.
    Result.Status = RepairStatus::SolverFailure;
    FinalizeStats();
    return Result;
  }

  Result.Repaired = std::move(Repaired);
  Result.Status = RepairStatus::Success;
  FinalizeStats();
  return Result;
}
