//===- core/PointRepair.cpp -----------------------------------------------===//

#include "core/PointRepair.h"

#include "nn/Jacobian.h"
#include "nn/LinearLayers.h"
#include "support/Casting.h"
#include "support/Error.h"
#include "support/Timer.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

using namespace prdnn;

const char *prdnn::toString(RepairStatus Status) {
  switch (Status) {
  case RepairStatus::Success:
    return "Success";
  case RepairStatus::Infeasible:
    return "Infeasible";
  case RepairStatus::SolverFailure:
    return "SolverFailure";
  }
  PRDNN_UNREACHABLE("bad RepairStatus");
}

namespace {

/// One LP row over the *effective* (unfrozen) parameters:
/// Coef . Delta <= Hi.
struct SpecRow {
  std::vector<double> Coef;
  double Hi;

  double violationAt(const std::vector<double> &Delta) const {
    double Activity = 0.0;
    for (size_t J = 0; J < Coef.size(); ++J)
      Activity += Coef[J] * Delta[J];
    return Activity - Hi;
  }
};

} // namespace

RepairResult prdnn::repairPoints(const Network &Net, int LayerIndex,
                                 const PointSpec &Spec,
                                 const RepairOptions &Options) {
  WallTimer Total;
  RepairResult Result;
  Result.Stats.SpecPoints = static_cast<int>(Spec.size());

  const auto *Target = dyn_cast<LinearLayer>(&Net.layer(LayerIndex));
  assert(Target && Target->numParams() > 0 &&
         "repair layer must be a parameterized linear layer");
  int NumParams = Target->numParams();

  // Effective (unfrozen) parameter index map.
  std::vector<int> Effective;
  if (Options.ParamMask) {
    assert(static_cast<int>(Options.ParamMask->size()) == NumParams &&
           "parameter mask size mismatch");
    for (int P = 0; P < NumParams; ++P)
      if ((*Options.ParamMask)[static_cast<size_t>(P)])
        Effective.push_back(P);
  } else {
    Effective.resize(static_cast<size_t>(NumParams));
    std::iota(Effective.begin(), Effective.end(), 0);
  }
  int NumEff = static_cast<int>(Effective.size());
  assert(NumEff > 0 && "all parameters frozen");

  // --- Jacobian phase (Algorithm 1, lines 4-6) -----------------------------
  std::vector<SpecRow> Rows;
  {
    WallTimer JacobianTimer;
    for (const SpecPoint &P : Spec) {
      JacobianResult Jr =
          paramJacobian(Net, LayerIndex, P.X,
                        P.Pattern ? &*P.Pattern : nullptr);
      const OutputConstraint &C = P.Constraint;
      assert(C.A.cols() == Net.outputSize() &&
             "constraint output dimension mismatch");
      // Row k: (A_k J) Delta <= b_k - A_k N(x) - RowMargin.
      for (int K = 0; K < C.numRows(); ++K) {
        SpecRow Row;
        Row.Coef.assign(static_cast<size_t>(NumEff), 0.0);
        double Activity = 0.0;
        for (int O = 0; O < C.A.cols(); ++O) {
          double AKo = C.A(K, O);
          if (AKo == 0.0)
            continue;
          Activity += AKo * Jr.Output[O];
          const double *JRow = Jr.J.rowData(O);
          for (int E = 0; E < NumEff; ++E)
            Row.Coef[static_cast<size_t>(E)] += AKo * JRow[Effective[E]];
        }
        Row.Hi = C.B[K] - Activity - Options.RowMargin;
        Rows.push_back(std::move(Row));
      }
    }
    Result.Stats.JacobianSeconds = JacobianTimer.seconds();
  }
  Result.Stats.SpecRows = static_cast<int>(Rows.size());

  // --- LP phase (Algorithm 1, lines 7-8) ------------------------------------
  std::vector<double> DeltaEff(static_cast<size_t>(NumEff), 0.0);
  double LpSeconds = 0.0;
  int LpIterations = 0;
  int RowsUsed = 0;
  bool Solved = false;

  auto SolveWithRows = [&](const std::vector<int> &Use,
                           std::vector<double> &Out) -> lp::SolveStatus {
    lp::DeltaLp Lp(NumEff, Options.Objective, Options.DeltaBound);
    for (int RI : Use)
      Lp.addConstraint(Rows[static_cast<size_t>(RI)].Coef, -lp::kInfinity,
                       Rows[static_cast<size_t>(RI)].Hi);
    WallTimer LpTimer;
    lp::LpSolution Sol = lp::solveLp(Lp.problem(), Options.Lp);
    LpSeconds += LpTimer.seconds();
    LpIterations += Sol.Iterations;
    if (Sol.Status == lp::SolveStatus::Optimal)
      Out = Lp.extractDelta(Sol.X);
    return Sol.Status;
  };

  if (!Options.UseConstraintGeneration) {
    std::vector<int> All(Rows.size());
    std::iota(All.begin(), All.end(), 0);
    lp::SolveStatus Status = SolveWithRows(All, DeltaEff);
    RowsUsed = static_cast<int>(All.size());
    if (Status == lp::SolveStatus::Infeasible) {
      Result.Status = RepairStatus::Infeasible;
      Result.Stats.LpSeconds = LpSeconds;
      Result.Stats.TotalSeconds = Total.seconds();
      return Result;
    }
    Solved = Status == lp::SolveStatus::Optimal;
  } else {
    // Constraint generation: start from the rows violated by Delta = 0
    // and add violated rows until the relaxation optimum is feasible for
    // every row (then it is optimal for the full LP).
    std::vector<char> InLp(Rows.size(), 0);
    std::vector<int> Active;
    for (size_t RI = 0; RI < Rows.size(); ++RI)
      if (Rows[RI].Hi < 0.0) {
        Active.push_back(static_cast<int>(RI));
        InLp[RI] = 1;
      }

    if (Active.empty()) {
      // Delta = 0 already satisfies the (margined) spec.
      Solved = true;
    } else {
      for (int Round = 0; Round < Options.MaxCgRounds && !Solved; ++Round) {
        ++Result.Stats.CgRounds;
        lp::SolveStatus Status = SolveWithRows(Active, DeltaEff);
        RowsUsed = static_cast<int>(Active.size());
        if (Status == lp::SolveStatus::Infeasible) {
          // A subset is infeasible, so the full system is too.
          Result.Status = RepairStatus::Infeasible;
          Result.Stats.LpSeconds = LpSeconds;
          Result.Stats.LpIterations = LpIterations;
          Result.Stats.LpRowsUsed = RowsUsed;
          Result.Stats.TotalSeconds = Total.seconds();
          return Result;
        }
        if (Status != lp::SolveStatus::Optimal)
          break; // fall through to the full solve below

        // Collect rows the relaxation optimum still violates.
        std::vector<std::pair<double, int>> Violated;
        for (size_t RI = 0; RI < Rows.size(); ++RI) {
          if (InLp[RI])
            continue;
          double V = Rows[RI].violationAt(DeltaEff);
          if (V > 10 * Options.Lp.FeasTol)
            Violated.push_back({V, static_cast<int>(RI)});
        }
        if (Violated.empty()) {
          Solved = true;
          break;
        }
        int Take = std::min<int>(Options.CgBatch,
                                 static_cast<int>(Violated.size()));
        std::partial_sort(Violated.begin(), Violated.begin() + Take,
                          Violated.end(), std::greater<>());
        for (int K = 0; K < Take; ++K) {
          Active.push_back(Violated[K].second);
          InLp[Violated[K].second] = 1;
        }
      }
    }

    if (!Solved) {
      // Generation did not converge in budget; fall back to one full
      // solve (still exact).
      std::vector<int> All(Rows.size());
      std::iota(All.begin(), All.end(), 0);
      lp::SolveStatus Status = SolveWithRows(All, DeltaEff);
      RowsUsed = static_cast<int>(All.size());
      if (Status == lp::SolveStatus::Infeasible) {
        Result.Status = RepairStatus::Infeasible;
        Result.Stats.LpSeconds = LpSeconds;
        Result.Stats.LpIterations = LpIterations;
        Result.Stats.LpRowsUsed = RowsUsed;
        Result.Stats.TotalSeconds = Total.seconds();
        return Result;
      }
      Solved = Status == lp::SolveStatus::Optimal;
    }
  }

  Result.Stats.LpSeconds = LpSeconds;
  Result.Stats.LpIterations = LpIterations;
  Result.Stats.LpRowsUsed = RowsUsed;

  if (!Solved) {
    Result.Status = RepairStatus::SolverFailure;
    Result.Stats.TotalSeconds = Total.seconds();
    return Result;
  }

  // --- Apply and verify (Algorithm 1, lines 9-10) ---------------------------
  Result.Delta.assign(static_cast<size_t>(NumParams), 0.0);
  for (int E = 0; E < NumEff; ++E)
    Result.Delta[static_cast<size_t>(Effective[E])] = DeltaEff[E];
  for (double D : Result.Delta) {
    Result.DeltaL1 += std::fabs(D);
    Result.DeltaLInf = std::max(Result.DeltaLInf, std::fabs(D));
  }

  DecoupledNetwork Repaired = DecoupledNetwork::fromNetwork(Net);
  cast<LinearLayer>(Repaired.valueChannel().layer(LayerIndex))
      .addToParams(Result.Delta);

  // Re-verify the specification against the repaired DDNN itself.
  double Verified = 0.0;
  for (const SpecPoint &P : Spec) {
    Vector Y = P.Pattern ? Repaired.evaluateWithPattern(P.X, *P.Pattern)
                         : Repaired.evaluate(P.X);
    Verified = std::max(Verified, P.Constraint.violation(Y));
  }
  Result.Stats.VerifiedViolation = Verified;
  if (Verified > 100 * Options.Lp.FeasTol + 1e-9) {
    // The LP said feasible but the network disagrees: numerical failure,
    // never silently accepted.
    Result.Status = RepairStatus::SolverFailure;
    Result.Stats.TotalSeconds = Total.seconds();
    return Result;
  }

  Result.Repaired = std::move(Repaired);
  Result.Status = RepairStatus::Success;
  Result.Stats.TotalSeconds = Total.seconds();
  Result.Stats.OtherSeconds = std::max(
      0.0, Result.Stats.TotalSeconds - Result.Stats.JacobianSeconds -
               Result.Stats.LpSeconds);
  return Result;
}
