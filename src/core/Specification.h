//===- core/Specification.h - repair specifications ------------*- C++ -*-===//
///
/// \file
/// Pointwise and polytope repair specifications (Definitions 5.1 and
/// 6.1). Each specification element pairs an input object (a point, a
/// segment, or a planar convex polygon) with a polyhedral output
/// constraint A N(x) <= b. Builders cover the constraint shapes the
/// evaluation uses: "classified as label L (with margin)" and output
/// boxes.
///
//===----------------------------------------------------------------------===//

#ifndef PRDNN_CORE_SPECIFICATION_H
#define PRDNN_CORE_SPECIFICATION_H

#include "nn/ActivationPattern.h"
#include "nn/Network.h"

#include <optional>
#include <variant>
#include <vector>

namespace prdnn {

/// Polyhedral output constraint A y <= b.
struct OutputConstraint {
  Matrix A;
  Vector B;

  int numRows() const { return A.rows(); }

  /// Largest violation max_k (A y - b)_k clamped at 0.
  double violation(const Vector &Y) const;

  bool satisfiedBy(const Vector &Y, double Tol = 1e-6) const {
    return violation(Y) <= Tol;
  }
};

/// "Output argmax is \p Label, with margin": y_j - y_Label <= -Margin
/// for all j != Label. The general affine form from §3.1.
OutputConstraint classificationConstraint(int NumClasses, int Label,
                                          double Margin = 0.0);

/// Lo <= y <= Hi componentwise; infinite bounds are skipped.
OutputConstraint boxConstraint(const Vector &Lo, const Vector &Hi);

/// One point of a pointwise repair specification. \p Pattern, when
/// present, pins the activation pattern used for the Jacobian and the
/// satisfaction check (Appendix B: vertices of linear regions must be
/// repaired as members of a specific region).
struct SpecPoint {
  Vector X;
  OutputConstraint Constraint;
  std::optional<NetworkPattern> Pattern;
};

/// Pointwise repair specification (X, A., b.) of Definition 5.1.
using PointSpec = std::vector<SpecPoint>;

/// 1-D input polytope: the segment from A to B.
struct SegmentPolytope {
  Vector A, B;
};

/// 2-D input polytope: a convex polygon given by its vertices (in
/// order), lying in a 2-D affine subspace of the input space.
struct PlanePolytope {
  std::vector<Vector> Vertices;
};

/// One polytope of a polytope repair specification (Definition 6.1).
struct SpecPolytope {
  std::variant<SegmentPolytope, PlanePolytope> Shape;
  OutputConstraint Constraint;
};

using PolytopeSpec = std::vector<SpecPolytope>;

/// N |= (X, A., b.) (Definition 5.2), checked pointwise with pinned
/// patterns honored.
bool satisfies(const Network &Net, const PointSpec &Spec, double Tol = 1e-6);

/// Largest constraint violation over the spec (0 when satisfied).
double maxViolation(const Network &Net, const PointSpec &Spec);

} // namespace prdnn

#endif // PRDNN_CORE_SPECIFICATION_H
