//===- core/PolytopeRepair.cpp -------------------------------------------===//

#include "core/PolytopeRepair.h"

#include "core/RepairContext.h"
#include "support/Parallel.h"
#include "support/Timer.h"
#include "syrenn/LineTransform.h"
#include "syrenn/PlaneTransform.h"

#include <cassert>

using namespace prdnn;

PointSpec prdnn::keyPointSpec(const Network &Net, const PolytopeSpec &Spec,
                              double *LinRegionsSeconds, int *NumRegions) {
  assert(Net.isPiecewiseLinear() &&
         "polytope repair requires a piecewise-linear network (§6)");
  int NumPolytopes = static_cast<int>(Spec.size());
  // Each polytope's SyReNN transform and key-point construction is
  // independent; transform the whole spec in parallel and concatenate
  // the per-polytope results in spec order (so point order - and, per
  // the thread-pool contract, every point's bits - match the
  // sequential loop).
  std::vector<PointSpec> PerPolytope(static_cast<size_t>(NumPolytopes));
  std::vector<int> PerPolytopeRegions(static_cast<size_t>(NumPolytopes), 0);
  // Wall time of the whole parallel transform phase, measured on the
  // calling thread (summing per-task timers would overstate elapsed
  // time by up to the thread count). Includes the per-region pattern
  // capture, which is part of producing the key points.
  WallTimer TransformTimer;

  parallelFor(0, NumPolytopes, [&](std::int64_t PIdx) {
    const SpecPolytope &P = Spec[static_cast<size_t>(PIdx)];
    PointSpec &Points = PerPolytope[static_cast<size_t>(PIdx)];
    int &Regions = PerPolytopeRegions[static_cast<size_t>(PIdx)];
    if (const auto *Segment = std::get_if<SegmentPolytope>(&P.Shape)) {
      LinePartition Partition = lineRegions(Net, Segment->A, Segment->B);
      Regions = Partition.numPieces();
      for (int Piece = 0; Piece < Partition.numPieces(); ++Piece) {
        // The region's pattern, sampled at an interior point; both piece
        // endpoints are repaired *as members of this region*
        // (Appendix B), so interior breakpoints appear twice with
        // different patterns.
        NetworkPattern Pattern = computePattern(
            Net, Partition.pointAt(Partition.midpoint(Piece)));
        for (double T2 : {Partition.Ts[static_cast<size_t>(Piece)],
                          Partition.Ts[static_cast<size_t>(Piece) + 1]})
          Points.push_back(
              SpecPoint{Partition.pointAt(T2), P.Constraint, Pattern});
      }
    } else {
      const auto &Plane = std::get<PlanePolytope>(P.Shape);
      std::vector<PlaneRegion> PlaneRegions =
          planeRegions(Net, Plane.Vertices);
      Regions = static_cast<int>(PlaneRegions.size());
      for (const PlaneRegion &Region : PlaneRegions) {
        NetworkPattern Pattern = computePattern(Net, Region.centroid());
        for (const Vector &V : Region.InputVertices)
          Points.push_back(SpecPoint{V, P.Constraint, Pattern});
      }
    }
  });
  double TransformSeconds = TransformTimer.seconds();

  PointSpec Points;
  int Regions = 0;
  for (int P = 0; P < NumPolytopes; ++P) {
    Regions += PerPolytopeRegions[static_cast<size_t>(P)];
    auto &Local = PerPolytope[static_cast<size_t>(P)];
    Points.insert(Points.end(), std::make_move_iterator(Local.begin()),
                  std::make_move_iterator(Local.end()));
  }

  if (LinRegionsSeconds)
    *LinRegionsSeconds = TransformSeconds;
  if (NumRegions)
    *NumRegions = Regions;
  return Points;
}

RepairResult prdnn::detail::repairPolytopesImpl(const Network &Net,
                                                int LayerIndex,
                                                const PolytopeSpec &Spec,
                                                const RepairOptions &Options,
                                                JobContext *Ctx) {
  WallTimer Total;
  double LinRegionsSeconds = 0.0;
  int NumRegions = 0;

  // --- LinRegions phase (Algorithm 2, line 2) -------------------------------
  // The SyReNN transform runs to completion once started; cancellation
  // is polled at its boundaries.
  if (Ctx) {
    Ctx->beginPhase(RepairPhase::LinRegions,
                    static_cast<std::int64_t>(Spec.size()));
    if (Ctx->checkpoint(RepairPhase::LinRegions)) {
      RepairResult Result;
      Result.Status = RepairStatus::Cancelled;
      Result.Stats.TotalSeconds = Total.seconds();
      return Result;
    }
  }
  PointSpec Points = keyPointSpec(Net, Spec, &LinRegionsSeconds, &NumRegions);
  if (Ctx)
    Ctx->advance(static_cast<std::int64_t>(Spec.size()));

  RepairResult Result =
      repairPointsImpl(Net, LayerIndex, Points, Options, Ctx);
  Result.Stats.LinRegionsSeconds = LinRegionsSeconds;
  Result.Stats.KeyPoints = static_cast<int>(Points.size());
  Result.Stats.LinearRegions = NumRegions;
  Result.Stats.TotalSeconds = Total.seconds();
  Result.Stats.OtherSeconds =
      std::max(0.0, Result.Stats.TotalSeconds - Result.Stats.JacobianSeconds -
                        Result.Stats.LpSeconds - LinRegionsSeconds);
  return Result;
}
