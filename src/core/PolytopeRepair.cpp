//===- core/PolytopeRepair.cpp -------------------------------------------===//

#include "core/PolytopeRepair.h"

#include "cache/ArtifactCache.h"
#include "core/RepairContext.h"
#include "support/Parallel.h"
#include "support/Timer.h"
#include "syrenn/LineTransform.h"
#include "syrenn/PlaneTransform.h"

#include <algorithm>
#include <cassert>

using namespace prdnn;

KeyPointsResult prdnn::keyPoints(const Network &Net, const PolytopeSpec &Spec,
                                 JobContext *Ctx, bool UseCache,
                                 linalg::Determinism Tier) {
  assert(Net.isPiecewiseLinear() &&
         "polytope repair requires a piecewise-linear network (§6)");
  // Ambient tier for the batched work on this thread; the per-polytope
  // transform tasks below run on pool workers and install it
  // themselves.
  linalg::KernelTierScope TierScope(Tier);
  int NumPolytopes = static_cast<int>(Spec.size());
  KeyPointsResult Result;
  // Wall time of the whole key-point construction, measured on the
  // calling thread (summing per-task timers would overstate elapsed
  // time by up to the thread count). Includes the per-region pattern
  // capture, which is part of producing the key points.
  WallTimer TransformTimer;
  ArtifactCache *Cache = (Ctx && UseCache) ? Ctx->cache() : nullptr;

  // --- Partitions (the SyReNN transform proper, Algorithm 2 line 2) --------
  // Each polytope's transform is independent; the whole spec runs in
  // parallel, and per the thread-pool contract every partition's bits
  // match the sequential loop. Cached by (network fingerprint, shape
  // bits): output constraints are attached later, so specs differing
  // only in constraints share the artifact.
  auto ComputePartitions = [&]() -> std::shared_ptr<const CacheArtifact> {
    auto Artifact = std::make_shared<SyrennTransformArtifact>();
    Artifact->Partitions.resize(static_cast<size_t>(NumPolytopes));
    parallelFor(0, NumPolytopes, [&](std::int64_t PIdx) {
      linalg::KernelTierScope WorkerScope(Tier);
      const SpecPolytope &P = Spec[static_cast<size_t>(PIdx)];
      if (const auto *Segment = std::get_if<SegmentPolytope>(&P.Shape))
        Artifact->Partitions[static_cast<size_t>(PIdx)] =
            lineRegions(Net, Segment->A, Segment->B);
      else
        Artifact->Partitions[static_cast<size_t>(PIdx)] =
            planeRegions(Net, std::get<PlanePolytope>(P.Shape).Vertices);
    });
    return Artifact;
  };
  std::shared_ptr<const SyrennTransformArtifact> Transform;
  if (Cache) {
    Hasher H;
    const NetworkFingerprint &Fp = Ctx->networkFingerprint();
    H.u64(Fp.Digest.Hi);
    H.u64(Fp.Digest.Lo);
    hashDeterminism(H, Tier);
    H.i32(NumPolytopes);
    for (const SpecPolytope &P : Spec) {
      if (const auto *Segment = std::get_if<SegmentPolytope>(&P.Shape)) {
        H.i32(0);
        hashVector(H, Segment->A);
        hashVector(H, Segment->B);
      } else {
        const auto &Plane = std::get<PlanePolytope>(P.Shape);
        H.i32(1);
        H.i32(static_cast<int>(Plane.Vertices.size()));
        for (const Vector &V : Plane.Vertices)
          hashVector(H, V);
      }
    }
    bool Hit = false;
    CacheTier Served = CacheTier::None;
    Transform = std::static_pointer_cast<const SyrennTransformArtifact>(
        Cache->getOrCompute({ArtifactKind::SyrennTransform, H.digest()},
                            ComputePartitions, &Hit, &Served));
    if (Hit) {
      ++Result.TransformCacheHits;
      Ctx->noteCacheHits(1);
      if (Served == CacheTier::L2) {
        ++Result.TransformStoreHits;
        Ctx->noteStoreHits(1);
      }
    } else {
      ++Result.TransformCacheMisses;
      Ctx->noteCacheMisses(1);
    }
  } else {
    Transform = std::static_pointer_cast<const SyrennTransformArtifact>(
        ComputePartitions());
  }

  // --- Region representatives, polytope-major ------------------------------
  // One interior point per linear region: the pattern sample the key
  // points of that region are pinned to (Appendix B).
  std::vector<Vector> Reps;
  std::vector<int> RepOffset(static_cast<size_t>(NumPolytopes) + 1, 0);
  for (int P = 0; P < NumPolytopes; ++P) {
    const SyrennTransformArtifact::Partition &Partition =
        Transform->Partitions[static_cast<size_t>(P)];
    if (const auto *Line = std::get_if<LinePartition>(&Partition)) {
      Result.LinearRegions += Line->numPieces();
      for (int Piece = 0; Piece < Line->numPieces(); ++Piece)
        Reps.push_back(Line->pointAt(Line->midpoint(Piece)));
    } else {
      const auto &Regions = std::get<std::vector<PlaneRegion>>(Partition);
      Result.LinearRegions += static_cast<int>(Regions.size());
      for (const PlaneRegion &Region : Regions)
        Reps.push_back(Region.centroid());
    }
    RepOffset[static_cast<size_t>(P) + 1] = static_cast<int>(Reps.size());
  }

  // --- Patterns at the representatives (batched) ---------------------------
  // computePatternBatch is bit-for-bit the per-point computePattern of
  // the seed loop; caching the batch shares the capture across jobs
  // whose transforms already matched.
  auto ComputePatterns = [&]() -> std::shared_ptr<const CacheArtifact> {
    auto Artifact = std::make_shared<PatternBatchArtifact>();
    Artifact->Patterns = computePatternBatch(Net, Reps);
    return Artifact;
  };
  std::shared_ptr<const PatternBatchArtifact> Patterns;
  if (Cache && !Reps.empty()) {
    Hasher H;
    const NetworkFingerprint &Fp = Ctx->networkFingerprint();
    H.u64(Fp.Digest.Hi);
    H.u64(Fp.Digest.Lo);
    hashDeterminism(H, Tier);
    H.i32(static_cast<int>(Reps.size()));
    for (const Vector &V : Reps)
      hashVector(H, V);
    bool Hit = false;
    CacheTier Served = CacheTier::None;
    Patterns = std::static_pointer_cast<const PatternBatchArtifact>(
        Cache->getOrCompute({ArtifactKind::PatternBatch, H.digest()},
                            ComputePatterns, &Hit, &Served));
    if (Hit) {
      ++Result.PatternCacheHits;
      Ctx->noteCacheHits(1);
      if (Served == CacheTier::L2) {
        ++Result.PatternStoreHits;
        Ctx->noteStoreHits(1);
      }
    } else {
      ++Result.PatternCacheMisses;
      Ctx->noteCacheMisses(1);
    }
  } else {
    Patterns = std::static_pointer_cast<const PatternBatchArtifact>(
        ComputePatterns());
  }

  // --- Assemble key points with constraints attached ------------------------
  // Same point and pattern order as the seed loop: polytope-major,
  // piece/region order, both piece endpoints (or all region vertices)
  // repaired *as members of their region* - interior breakpoints appear
  // twice with different patterns.
  for (int P = 0; P < NumPolytopes; ++P) {
    const SpecPolytope &SpecP = Spec[static_cast<size_t>(P)];
    const SyrennTransformArtifact::Partition &Partition =
        Transform->Partitions[static_cast<size_t>(P)];
    int Rep = RepOffset[static_cast<size_t>(P)];
    if (const auto *Line = std::get_if<LinePartition>(&Partition)) {
      for (int Piece = 0; Piece < Line->numPieces(); ++Piece) {
        const NetworkPattern &Pattern =
            Patterns->Patterns[static_cast<size_t>(Rep + Piece)];
        for (double T2 : {Line->Ts[static_cast<size_t>(Piece)],
                          Line->Ts[static_cast<size_t>(Piece) + 1]})
          Result.Points.push_back(
              SpecPoint{Line->pointAt(T2), SpecP.Constraint, Pattern});
      }
    } else {
      const auto &Regions = std::get<std::vector<PlaneRegion>>(Partition);
      for (size_t R = 0; R < Regions.size(); ++R) {
        const NetworkPattern &Pattern =
            Patterns->Patterns[static_cast<size_t>(Rep) + R];
        for (const Vector &V : Regions[R].InputVertices)
          Result.Points.push_back(SpecPoint{V, SpecP.Constraint, Pattern});
      }
    }
  }

  Result.Seconds = TransformTimer.seconds();
  return Result;
}

PointSpec prdnn::keyPointSpec(const Network &Net, const PolytopeSpec &Spec,
                              double *LinRegionsSeconds, int *NumRegions) {
  KeyPointsResult Result = keyPoints(Net, Spec, /*Ctx=*/nullptr,
                                     /*UseCache=*/false);
  if (LinRegionsSeconds)
    *LinRegionsSeconds = Result.Seconds;
  if (NumRegions)
    *NumRegions = Result.LinearRegions;
  return std::move(Result.Points);
}

RepairResult prdnn::detail::repairPolytopesImpl(const Network &Net,
                                                int LayerIndex,
                                                const PolytopeSpec &Spec,
                                                const RepairOptions &Options,
                                                JobContext *Ctx) {
  WallTimer Total;

  // --- LinRegions phase (Algorithm 2, line 2) -------------------------------
  // The SyReNN transform runs to completion once started; cancellation
  // is polled at its boundaries.
  if (Ctx) {
    Ctx->beginPhase(RepairPhase::LinRegions,
                    static_cast<std::int64_t>(Spec.size()));
    if (Ctx->checkpoint(RepairPhase::LinRegions)) {
      RepairResult Result;
      Result.Status = RepairStatus::Cancelled;
      Result.Stats.TotalSeconds = Total.seconds();
      return Result;
    }
  }
  KeyPointsResult KeyPts =
      keyPoints(Net, Spec, Ctx, Options.UseCache,
                Options.Determinism.value_or(linalg::Determinism::Strict));
  if (Ctx)
    Ctx->advance(static_cast<std::int64_t>(Spec.size()));

  RepairResult Result =
      repairPointsImpl(Net, LayerIndex, KeyPts.Points, Options, Ctx);
  Result.Stats.LinRegionsSeconds = KeyPts.Seconds;
  Result.Stats.KeyPoints = static_cast<int>(KeyPts.Points.size());
  Result.Stats.LinearRegions = KeyPts.LinearRegions;
  Result.Stats.LinRegionsCacheHits = KeyPts.TransformCacheHits;
  Result.Stats.LinRegionsCacheMisses = KeyPts.TransformCacheMisses;
  Result.Stats.PatternCacheHits = KeyPts.PatternCacheHits;
  Result.Stats.PatternCacheMisses = KeyPts.PatternCacheMisses;
  Result.Stats.LinRegionsStoreHits = KeyPts.TransformStoreHits;
  Result.Stats.PatternStoreHits = KeyPts.PatternStoreHits;
  Result.Stats.TotalSeconds = Total.seconds();
  Result.Stats.OtherSeconds =
      std::max(0.0, Result.Stats.TotalSeconds - Result.Stats.JacobianSeconds -
                        Result.Stats.LpSeconds - KeyPts.Seconds);
  return Result;
}
