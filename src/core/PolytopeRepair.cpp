//===- core/PolytopeRepair.cpp -------------------------------------------===//

#include "core/PolytopeRepair.h"

#include "support/Timer.h"
#include "syrenn/LineTransform.h"
#include "syrenn/PlaneTransform.h"

#include <cassert>

using namespace prdnn;

PointSpec prdnn::keyPointSpec(const Network &Net, const PolytopeSpec &Spec,
                              double *LinRegionsSeconds, int *NumRegions) {
  assert(Net.isPiecewiseLinear() &&
         "polytope repair requires a piecewise-linear network (§6)");
  PointSpec Points;
  int Regions = 0;
  WallTimer Timer;
  double TransformSeconds = 0.0;

  for (const SpecPolytope &P : Spec) {
    if (const auto *Segment = std::get_if<SegmentPolytope>(&P.Shape)) {
      WallTimer T;
      LinePartition Partition = lineRegions(Net, Segment->A, Segment->B);
      TransformSeconds += T.seconds();
      Regions += Partition.numPieces();
      for (int Piece = 0; Piece < Partition.numPieces(); ++Piece) {
        // The region's pattern, sampled at an interior point; both piece
        // endpoints are repaired *as members of this region*
        // (Appendix B), so interior breakpoints appear twice with
        // different patterns.
        NetworkPattern Pattern = computePattern(
            Net, Partition.pointAt(Partition.midpoint(Piece)));
        for (double T2 : {Partition.Ts[static_cast<size_t>(Piece)],
                          Partition.Ts[static_cast<size_t>(Piece) + 1]})
          Points.push_back(
              SpecPoint{Partition.pointAt(T2), P.Constraint, Pattern});
      }
      continue;
    }
    const auto &Plane = std::get<PlanePolytope>(P.Shape);
    WallTimer T;
    std::vector<PlaneRegion> PlaneRegions = planeRegions(Net, Plane.Vertices);
    TransformSeconds += T.seconds();
    Regions += static_cast<int>(PlaneRegions.size());
    for (const PlaneRegion &Region : PlaneRegions) {
      NetworkPattern Pattern = computePattern(Net, Region.centroid());
      for (const Vector &V : Region.InputVertices)
        Points.push_back(SpecPoint{V, P.Constraint, Pattern});
    }
  }

  if (LinRegionsSeconds)
    *LinRegionsSeconds = TransformSeconds;
  if (NumRegions)
    *NumRegions = Regions;
  return Points;
}

RepairResult prdnn::repairPolytopes(const Network &Net, int LayerIndex,
                                    const PolytopeSpec &Spec,
                                    const RepairOptions &Options) {
  WallTimer Total;
  double LinRegionsSeconds = 0.0;
  int NumRegions = 0;
  PointSpec Points = keyPointSpec(Net, Spec, &LinRegionsSeconds, &NumRegions);

  RepairResult Result = repairPoints(Net, LayerIndex, Points, Options);
  Result.Stats.LinRegionsSeconds = LinRegionsSeconds;
  Result.Stats.KeyPoints = static_cast<int>(Points.size());
  Result.Stats.LinearRegions = NumRegions;
  Result.Stats.TotalSeconds = Total.seconds();
  Result.Stats.OtherSeconds =
      std::max(0.0, Result.Stats.TotalSeconds - Result.Stats.JacobianSeconds -
                        Result.Stats.LpSeconds - LinRegionsSeconds);
  return Result;
}
