//===- core/DecoupledNetwork.h - Decoupled DNNs (paper §4) -----*- C++ -*-===//
///
/// \file
/// The Decoupled DNN architecture (Definitions 4.1 and 4.3): two
/// channels with identical layer structure. The *activation channel*
/// runs the network normally and decides, per activation layer, the
/// linearization center; the *value channel* runs its own parameters
/// through Linearize[sigma, center] instead of sigma. Consequences used
/// throughout the library:
///
///  - Theorem 4.4: fromNetwork(N) computes exactly N.
///  - Theorem 4.5: the output is affine in any single value-channel
///    layer's parameters (see nn/Jacobian.h).
///  - Theorem 4.6: for PWL networks, value-channel edits do not move
///    the linear regions (they are decided by the activation channel).
///
//===----------------------------------------------------------------------===//

#ifndef PRDNN_CORE_DECOUPLEDNETWORK_H
#define PRDNN_CORE_DECOUPLEDNETWORK_H

#include "nn/ActivationPattern.h"
#include "nn/Network.h"

#include <iosfwd>
#include <optional>

namespace prdnn {

/// A Decoupled DNN; see file comment.
class DecoupledNetwork {
public:
  /// Theorem 4.4 construction: both channels copy \p Net, so the DDNN
  /// computes exactly the same function.
  static DecoupledNetwork fromNetwork(const Network &Net);

  /// General constructor; channels must have identical layer structure
  /// (same kinds and shapes per index).
  DecoupledNetwork(Network Activation, Network Value);

  const Network &activationChannel() const { return Activation; }
  const Network &valueChannel() const { return Value; }
  /// Mutable value channel: this is what repair edits (Algorithm 1,
  /// line 9).
  Network &valueChannel() { return Value; }

  int inputSize() const { return Activation.inputSize(); }
  int outputSize() const { return Value.outputSize(); }
  int numLayers() const { return Activation.numLayers(); }

  /// DDNN semantics (Definition 4.3): activation channel fixes the
  /// linearization centers, value channel produces the output.
  Vector evaluate(const Vector &X) const;

  int classify(const Vector &X) const { return evaluate(X).argmax(); }

  /// Evaluates the value channel under an explicitly pinned activation
  /// pattern (PWL networks; Appendix B).
  Vector evaluateWithPattern(const Vector &X,
                             const NetworkPattern &Pattern) const;

  /// Fraction of inputs classified as their label (by DDNN semantics).
  double accuracy(const std::vector<Vector> &Inputs,
                  const std::vector<int> &Labels) const;

private:
  Network Activation;
  Network Value;
};

/// Serializes both channels ("prdnn-ddnn v1" framing both networks).
void writeDecoupled(const DecoupledNetwork &Net, std::ostream &Os);
std::optional<DecoupledNetwork> readDecoupled(std::istream &Is);

} // namespace prdnn

#endif // PRDNN_CORE_DECOUPLEDNETWORK_H
