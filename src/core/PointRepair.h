//===- core/PointRepair.h - Provable Pointwise Repair (§5) -----*- C++ -*-===//
///
/// \file
/// Algorithm 1 (PointRepair): reduces single-layer repair of a DDNN to
/// a linear program over the parameter change Delta of one value-channel
/// layer. Because the DDNN output is affine in those parameters
/// (Theorem 4.5), each spec row A_x N'(x) <= b_x becomes the exact
/// linear constraint (A_x J_x) Delta <= b_x - A_x N(x), and the LP's
/// norm objective yields a *provably minimal* single-layer repair
/// (Theorem 5.4) - or a proof that none exists (Infeasible).
///
/// The primary public entry point is api/RepairEngine.h: build a
/// RepairRequest (point or polytope spec, fixed layer or auto layer
/// sweep) and run() it synchronously or submit() it as an async job
/// with progress and cancellation. The repairPoints() free function
/// below survives as a thin wrapper over the engine for one-shot
/// fixed-layer repairs; it produces bit-for-bit the same result.
///
/// Engineering additions over the paper's pseudocode, all
/// guarantee-preserving:
///  - optional constraint generation: solve on the violated rows first
///    and add rows lazily; a relaxation optimum feasible for all rows is
///    optimal for the full LP (standard cutting-plane argument);
///  - an optional parameter mask to freeze a subset of the layer's
///    parameters (used e.g. to reproduce the paper's Figure 3 example,
///    whose hand-drawn network lacks some bias edges);
///  - a final network-level re-verification of the spec, so a Success
///    status certifies the repaired DDNN itself, not just LP algebra;
///  - cooperative cancellation and progress reporting through an
///    optional JobContext (core/RepairContext.h), checked at phase and
///    chunk boundaries so cancellation never perturbs computed bits.
///
//===----------------------------------------------------------------------===//

#ifndef PRDNN_CORE_POINTREPAIR_H
#define PRDNN_CORE_POINTREPAIR_H

#include "core/DecoupledNetwork.h"
#include "core/Specification.h"
#include "lp/NormObjective.h"
#include "lp/Simplex.h"

#include <optional>

namespace prdnn {

class JobContext;

enum class RepairStatus {
  /// A provably minimal single-layer repair was found and re-verified.
  Success,
  /// No single-layer repair of the chosen layer satisfies the spec
  /// (definitive, per Theorem 5.4).
  Infeasible,
  /// The LP solver failed (iteration limit / numerical trouble).
  SolverFailure,
  /// The job's cancellation flag was raised; the repair stopped
  /// cooperatively at a phase / chunk / simplex-iteration boundary.
  /// Timing stats (TotalSeconds included) are still stamped.
  Cancelled,
};

const char *toString(RepairStatus Status);

struct RepairOptions {
  /// Which norm of Delta to minimize (Definition 5.3's measure).
  lp::Norm Objective = lp::Norm::L1;
  /// Box constraint |Delta_j| <= DeltaBound (kInfinity allowed).
  double DeltaBound = lp::kInfinity;
  /// Margin subtracted from spec rows inside the LP; a small positive
  /// value keeps satisfaction strict under floating-point noise.
  double RowMargin = 1e-6;
  /// Solve on violated rows first, adding violated rows lazily.
  bool UseConstraintGeneration = true;
  int MaxCgRounds = 64;
  /// Violated rows admitted per generation round.
  int CgBatch = 512;
  /// Optional per-parameter mask (size = layer param count); false
  /// freezes the parameter at its current value.
  std::optional<std::vector<bool>> ParamMask;
  /// Compute spec-row Jacobians through the batched engine
  /// (paramJacobianBatch + parallel row assembly). Disable to fall back
  /// to the original per-point loop - kept as the ablation baseline for
  /// benchmarks; both paths produce bit-for-bit identical rows.
  bool BatchedJacobians = true;
  /// Consult the engine's shared artifact cache (cache/ArtifactCache.h)
  /// for Jacobian row blocks, SyReNN transforms, and pattern batches.
  /// Only effective when the job carries a cache (RepairEngine with
  /// EngineOptions::EnableCache); hits are bit-for-bit identical to
  /// recomputation, so the default on never changes results. The
  /// per-point ablation path (BatchedJacobians = false) always
  /// recomputes.
  bool UseCache = true;
  /// Cache the optimal simplex basis of each LP solve as a fourth
  /// artifact kind (ArtifactKind::SimplexBasis) and warm-start later
  /// identical solves from it (lp/Simplex.h,
  /// SimplexOptions::WarmBasis). The basis key hashes the constraint
  /// *coefficients* but not the right-hand sides, so a resubmission
  /// whose spec moved only row bounds shares the entry slot; replay,
  /// though, is gated on an exact digest of the remaining LP data,
  /// because only replaying the terminal basis of the identical LP is
  /// bit-identical to the cold solve (drift-hits solve cold; invalid
  /// or singular bases fall back to the cold path bit-exactly). The
  /// default on therefore never changes results. Only effective when
  /// the job carries a cache, like UseCache.
  bool WarmStartBasis = true;
  /// Kernel determinism tier for this repair's dense hot paths (the
  /// batched-Jacobian GEMMs and, unless Lp.Determinism is already Fast,
  /// the simplex inner loops). Unset inherits the engine's default
  /// (EngineOptions::Determinism; Strict for the one-shot wrappers).
  /// Fast results are epsilon-close, not bit-identical, to Strict; the
  /// resolved tier is stamped into RepairStats::Determinism, keys every
  /// cached artifact (a Fast artifact never satisfies a Strict request),
  /// and disables warm-start basis caching, which is Strict-only.
  std::optional<linalg::Determinism> Determinism;
  lp::SimplexOptions Lp;
};

struct RepairStats {
  /// The kernel tier this repair actually ran under (the request's
  /// RepairOptions::Determinism resolved against the engine default).
  linalg::Determinism Determinism = linalg::Determinism::Strict;
  double JacobianSeconds = 0.0;
  double LpSeconds = 0.0;
  double OtherSeconds = 0.0;
  double TotalSeconds = 0.0;
  int SpecPoints = 0;
  int SpecRows = 0;
  int LpRowsUsed = 0;
  int CgRounds = 0;
  int LpIterations = 0;
  /// Simplex kernel counters and timings accumulated over every LP
  /// solve of this repair (all constraint-generation rounds): pivot /
  /// bound-flip / refactorization counts, the pivot-sequence hash, and
  /// per-kernel seconds (pricing, FTRAN/BTRAN, ratio test, eta update,
  /// refactorization). ParallelKernels records whether any solve ran
  /// the blocked parallel path.
  lp::SimplexStats LpKernels;
  /// Post-repair max spec violation measured on the network itself.
  double VerifiedViolation = 0.0;
  // Filled by polytope repair (Algorithm 2) only:
  /// Time computing LinRegions (SyReNN transforms).
  double LinRegionsSeconds = 0.0;
  /// Key points generated from region vertices (the paper's "Points").
  int KeyPoints = 0;
  /// Linear regions across all specification polytopes.
  int LinearRegions = 0;
  // Artifact-cache lookups, by phase (all zero when the repair runs
  // without a cache). Hits are bit-identical to recomputation; the
  // counters only explain where the time went.
  /// Jacobian row-block lookups (one per chunk of the Jacobian phase).
  int JacobianCacheHits = 0;
  int JacobianCacheMisses = 0;
  /// SyReNN transform lookups (one per polytope spec).
  int LinRegionsCacheHits = 0;
  int LinRegionsCacheMisses = 0;
  /// Activation-pattern batch lookups (one per polytope spec).
  int PatternCacheHits = 0;
  int PatternCacheMisses = 0;
  /// Simplex warm-start basis lookups (one per LP solve attempted
  /// against the cache; see RepairOptions::WarmStartBasis). A hit
  /// means the LP actually started from a cached basis; a cached basis
  /// that failed solver validation counts as a miss.
  int BasisHits = 0;
  int BasisMisses = 0;
  // Of the cache hits above, how many were served by the persistent L2
  // store (persist/ArtifactStore.h) rather than engine memory - the
  // warm-restart signal. Always <= the matching CacheHits counter;
  // zero when the engine runs without a store.
  int JacobianStoreHits = 0;
  int LinRegionsStoreHits = 0;
  int PatternStoreHits = 0;
  int BasisStoreHits = 0;

  int cacheHits() const {
    return JacobianCacheHits + LinRegionsCacheHits + PatternCacheHits +
           BasisHits;
  }
  int cacheMisses() const {
    return JacobianCacheMisses + LinRegionsCacheMisses + PatternCacheMisses +
           BasisMisses;
  }
  int storeHits() const {
    return JacobianStoreHits + LinRegionsStoreHits + PatternStoreHits +
           BasisStoreHits;
  }
};

struct RepairResult {
  RepairStatus Status = RepairStatus::SolverFailure;
  /// The repaired DDNN (valid iff Status == Success).
  std::optional<DecoupledNetwork> Repaired;
  /// Full-layer Delta (zeros at frozen parameters).
  std::vector<double> Delta;
  double DeltaL1 = 0.0;
  double DeltaLInf = 0.0;
  RepairStats Stats;
};

/// Algorithm 1 as a one-shot call; a thin wrapper over
/// RepairEngine::run (api/RepairEngine.h), bit-for-bit identical to
/// it. \p LayerIndex names a parameterized linear layer of \p Net (see
/// Network::parameterizedLayerIndices).
RepairResult repairPoints(const Network &Net, int LayerIndex,
                          const PointSpec &Spec,
                          const RepairOptions &Options = RepairOptions());

namespace detail {

/// Algorithm 1 proper. \p Ctx, when non-null, receives phase/progress
/// updates and is polled for cancellation at chunk boundaries; a null
/// \p Ctx behaves exactly like the seed implementation.
RepairResult repairPointsImpl(const Network &Net, int LayerIndex,
                              const PointSpec &Spec,
                              const RepairOptions &Options, JobContext *Ctx);

} // namespace detail

} // namespace prdnn

#endif // PRDNN_CORE_POINTREPAIR_H
