//===- core/RepairContext.cpp ---------------------------------------------===//

#include "core/RepairContext.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/Error.h"

using namespace prdnn;

const char *prdnn::toString(RepairPhase Phase) {
  switch (Phase) {
  case RepairPhase::Queued:
    return "Queued";
  case RepairPhase::LinRegions:
    return "LinRegions";
  case RepairPhase::Jacobian:
    return "Jacobian";
  case RepairPhase::Lp:
    return "Lp";
  case RepairPhase::Verify:
    return "Verify";
  case RepairPhase::Done:
    return "Done";
  }
  // Statuses now travel over the wire (rpc/Wire.h); a value from a
  // foreign peer must print, not abort.
  return "unknown";
}

ProgressSnapshot JobContext::snapshot() const {
  // Individually-atomic reads: a snapshot taken across a phase
  // transition may pair the new phase with the old counters for one
  // observation, but every field is itself monotonic within its epoch.
  ProgressSnapshot S;
  S.Phase = static_cast<RepairPhase>(PhaseV.load(std::memory_order_relaxed));
  S.ItemsDone = Done.load(std::memory_order_relaxed);
  S.ItemsTotal = Total.load(std::memory_order_relaxed);
  S.SweepLayer = SweepLayerV.load(std::memory_order_relaxed);
  S.SweepDone = SweepDoneV.load(std::memory_order_relaxed);
  S.SweepTotal = SweepTotalV.load(std::memory_order_relaxed);
  S.CancelRequested = cancelRequested();
  S.CacheHits = CacheHitsV.load(std::memory_order_relaxed);
  S.CacheMisses = CacheMissesV.load(std::memory_order_relaxed);
  S.StoreHits = StoreHitsV.load(std::memory_order_relaxed);
  return S;
}

bool JobContext::checkpoint(RepairPhase Phase) {
  PhaseV.store(static_cast<int>(Phase), std::memory_order_relaxed);
  if (Hook)
    Hook(Phase);
  return cancelRequested();
}

void JobContext::beginPhase(RepairPhase Phase, std::int64_t NewTotal) {
  // Trace first: the close of the previous span reads the outgoing
  // phase's item counters before they reset.
  if (TraceV)
    tracePhase(Phase);
  Done.store(0, std::memory_order_relaxed);
  Total.store(NewTotal, std::memory_order_relaxed);
  PhaseV.store(static_cast<int>(Phase), std::memory_order_relaxed);
}

// Builds the TraceEvent for \p Span closing now; TraceMutex held.
obs::TraceEvent JobContext::closeEvent(const OpenSpan &Span,
                                       std::uint32_t ThreadId,
                                       std::uint64_t Now) const {
  obs::TraceEvent E;
  E.JobId = TraceJobId;
  E.Name = Span.Name;
  E.ThreadId = ThreadId;
  E.StartNanos = Span.StartNanos;
  E.DurationNanos = Now > Span.StartNanos ? Now - Span.StartNanos : 0;
  E.SweepLayer = Span.Layer;
  const auto Delta = [](std::int64_t Cur, std::int64_t Base) {
    return Cur > Base ? static_cast<std::uint64_t>(Cur - Base) : 0;
  };
  E.CacheHits = Delta(CacheHitsV.load(std::memory_order_relaxed),
                      Span.CacheHits0);
  E.CacheMisses = Delta(CacheMissesV.load(std::memory_order_relaxed),
                        Span.CacheMisses0);
  E.StoreHits = Delta(StoreHitsV.load(std::memory_order_relaxed),
                      Span.StoreHits0);
  const std::int64_t ItemsDone = Done.load(std::memory_order_relaxed);
  const std::int64_t ItemsTotal = Total.load(std::memory_order_relaxed);
  E.ItemsDone = ItemsDone > 0 ? static_cast<std::uint64_t>(ItemsDone) : 0;
  E.ItemsTotal = ItemsTotal > 0 ? static_cast<std::uint64_t>(ItemsTotal) : 0;
  return E;
}

void JobContext::tracePhase(RepairPhase Phase) {
  const std::uint32_t Tid = obs::threadOrdinal();
  const std::uint64_t Now = obs::TraceBuffer::nowNanos();
  std::lock_guard<std::mutex> Lock(TraceMutex);
  if (Phase == RepairPhase::Done) {
    // Job over: flush every thread's open span (sharded sweeps may
    // have left shard spans open after a cancellation).
    for (auto &[ThreadId, Span] : TraceSpans) {
      if (!Span.Open)
        continue;
      TraceV->record(closeEvent(Span, ThreadId, Now));
      Span.Open = false;
    }
    return;
  }
  OpenSpan &Span = TraceSpans[Tid];
  if (Span.Open)
    TraceV->record(closeEvent(Span, Tid, Now));
  Span.Name = prdnn::toString(Phase);
  Span.StartNanos = Now;
  Span.CacheHits0 = CacheHitsV.load(std::memory_order_relaxed);
  Span.CacheMisses0 = CacheMissesV.load(std::memory_order_relaxed);
  Span.StoreHits0 = StoreHitsV.load(std::memory_order_relaxed);
  Span.Open = true;
}

void JobContext::traceEnd() {
  const std::uint32_t Tid = obs::threadOrdinal();
  const std::uint64_t Now = obs::TraceBuffer::nowNanos();
  std::lock_guard<std::mutex> Lock(TraceMutex);
  auto It = TraceSpans.find(Tid);
  if (It == TraceSpans.end() || !It->second.Open)
    return;
  TraceV->record(closeEvent(It->second, Tid, Now));
  It->second.Open = false;
}

void JobContext::traceSetLayer(int Layer) {
  const std::uint32_t Tid = obs::threadOrdinal();
  std::lock_guard<std::mutex> Lock(TraceMutex);
  // Sticky per-thread tag: spans opened by this thread from here on
  // (and the one currently open, if any) belong to this sweep layer.
  TraceSpans[Tid].Layer = Layer;
}
