//===- core/RepairContext.cpp ---------------------------------------------===//

#include "core/RepairContext.h"

#include "support/Error.h"

using namespace prdnn;

const char *prdnn::toString(RepairPhase Phase) {
  switch (Phase) {
  case RepairPhase::Queued:
    return "Queued";
  case RepairPhase::LinRegions:
    return "LinRegions";
  case RepairPhase::Jacobian:
    return "Jacobian";
  case RepairPhase::Lp:
    return "Lp";
  case RepairPhase::Verify:
    return "Verify";
  case RepairPhase::Done:
    return "Done";
  }
  // Statuses now travel over the wire (rpc/Wire.h); a value from a
  // foreign peer must print, not abort.
  return "unknown";
}

ProgressSnapshot JobContext::snapshot() const {
  // Individually-atomic reads: a snapshot taken across a phase
  // transition may pair the new phase with the old counters for one
  // observation, but every field is itself monotonic within its epoch.
  ProgressSnapshot S;
  S.Phase = static_cast<RepairPhase>(PhaseV.load(std::memory_order_relaxed));
  S.ItemsDone = Done.load(std::memory_order_relaxed);
  S.ItemsTotal = Total.load(std::memory_order_relaxed);
  S.SweepLayer = SweepLayerV.load(std::memory_order_relaxed);
  S.SweepDone = SweepDoneV.load(std::memory_order_relaxed);
  S.SweepTotal = SweepTotalV.load(std::memory_order_relaxed);
  S.CancelRequested = cancelRequested();
  S.CacheHits = CacheHitsV.load(std::memory_order_relaxed);
  S.CacheMisses = CacheMissesV.load(std::memory_order_relaxed);
  S.StoreHits = StoreHitsV.load(std::memory_order_relaxed);
  return S;
}

bool JobContext::checkpoint(RepairPhase Phase) {
  PhaseV.store(static_cast<int>(Phase), std::memory_order_relaxed);
  if (Hook)
    Hook(Phase);
  return cancelRequested();
}

void JobContext::beginPhase(RepairPhase Phase, std::int64_t NewTotal) {
  Done.store(0, std::memory_order_relaxed);
  Total.store(NewTotal, std::memory_order_relaxed);
  PhaseV.store(static_cast<int>(Phase), std::memory_order_relaxed);
}
