//===- core/Specification.cpp --------------------------------------------------===//

#include "core/Specification.h"

#include <cassert>
#include <cmath>

using namespace prdnn;

double OutputConstraint::violation(const Vector &Y) const {
  assert(Y.size() == A.cols() && "output dimension mismatch");
  double Worst = 0.0;
  for (int R = 0; R < A.rows(); ++R) {
    double Activity = 0.0;
    const double *Row = A.rowData(R);
    for (int C = 0; C < A.cols(); ++C)
      Activity += Row[C] * Y[C];
    Worst = std::max(Worst, Activity - B[R]);
  }
  return Worst;
}

OutputConstraint prdnn::classificationConstraint(int NumClasses, int Label,
                                                 double Margin) {
  assert(Label >= 0 && Label < NumClasses && "label out of range");
  OutputConstraint C;
  C.A = Matrix(NumClasses - 1, NumClasses);
  C.B = Vector(NumClasses - 1);
  int Row = 0;
  for (int J = 0; J < NumClasses; ++J) {
    if (J == Label)
      continue;
    C.A(Row, J) = 1.0;
    C.A(Row, Label) = -1.0;
    C.B[Row] = -Margin;
    ++Row;
  }
  return C;
}

OutputConstraint prdnn::boxConstraint(const Vector &Lo, const Vector &Hi) {
  assert(Lo.size() == Hi.size() && "box bound dimension mismatch");
  int Dim = Lo.size();
  int Rows = 0;
  for (int I = 0; I < Dim; ++I) {
    if (std::isfinite(Hi[I]))
      ++Rows;
    if (std::isfinite(Lo[I]))
      ++Rows;
  }
  OutputConstraint C;
  C.A = Matrix(Rows, Dim);
  C.B = Vector(Rows);
  int Row = 0;
  for (int I = 0; I < Dim; ++I) {
    if (std::isfinite(Hi[I])) {
      C.A(Row, I) = 1.0;
      C.B[Row] = Hi[I];
      ++Row;
    }
    if (std::isfinite(Lo[I])) {
      C.A(Row, I) = -1.0;
      C.B[Row] = -Lo[I];
      ++Row;
    }
  }
  return C;
}

bool prdnn::satisfies(const Network &Net, const PointSpec &Spec, double Tol) {
  return maxViolation(Net, Spec) <= Tol;
}

double prdnn::maxViolation(const Network &Net, const PointSpec &Spec) {
  double Worst = 0.0;
  for (const SpecPoint &P : Spec) {
    Vector Y = P.Pattern ? evaluateWithPattern(Net, P.X, *P.Pattern)
                         : Net.evaluate(P.X);
    Worst = std::max(Worst, P.Constraint.violation(Y));
  }
  return Worst;
}
