//===- core/DecoupledNetwork.cpp ---------------------------------------------===//

#include "core/DecoupledNetwork.h"

#include "nn/Serialization.h"
#include "support/Casting.h"

#include <cassert>
#include <istream>
#include <ostream>

using namespace prdnn;

DecoupledNetwork DecoupledNetwork::fromNetwork(const Network &Net) {
  return DecoupledNetwork(Net, Net);
}

DecoupledNetwork::DecoupledNetwork(Network Activation, Network Value)
    : Activation(std::move(Activation)), Value(std::move(Value)) {
  assert(this->Activation.numLayers() == this->Value.numLayers() &&
         "channel layer counts must match");
#ifndef NDEBUG
  for (int I = 0; I < this->Activation.numLayers(); ++I) {
    assert(this->Activation.layer(I).getKind() ==
               this->Value.layer(I).getKind() &&
           "channel layer kinds must match");
    assert(this->Activation.layer(I).inputSize() ==
               this->Value.layer(I).inputSize() &&
           this->Activation.layer(I).outputSize() ==
               this->Value.layer(I).outputSize() &&
           "channel layer shapes must match");
  }
#endif
}

Vector DecoupledNetwork::evaluate(const Vector &X) const {
  // Definition 4.3. VA tracks the activation channel (plain semantics);
  // VV tracks the value channel, whose activation layers apply the
  // linearization of sigma around the activation channel's input.
  Vector VA = X;
  Vector VV = X;
  for (int I = 0; I < numLayers(); ++I) {
    const Layer &LA = Activation.layer(I);
    const Layer &LV = Value.layer(I);
    if (const auto *Act = dyn_cast<ActivationLayer>(&LV)) {
      Vector NextV = Act->applyLinearized(/*Center=*/VA, VV);
      VA = LA.apply(VA);
      VV = std::move(NextV);
    } else {
      VA = LA.apply(VA);
      VV = LV.apply(VV);
    }
  }
  return VV;
}

Vector DecoupledNetwork::evaluateWithPattern(
    const Vector &X, const NetworkPattern &Pattern) const {
  return prdnn::evaluateWithPattern(Value, X, Pattern);
}

double DecoupledNetwork::accuracy(const std::vector<Vector> &Inputs,
                                  const std::vector<int> &Labels) const {
  assert(Inputs.size() == Labels.size() && "inputs/labels length mismatch");
  if (Inputs.empty())
    return 0.0;
  int Correct = 0;
  for (size_t I = 0; I < Inputs.size(); ++I)
    if (classify(Inputs[I]) == Labels[I])
      ++Correct;
  return static_cast<double>(Correct) / static_cast<double>(Inputs.size());
}

void prdnn::writeDecoupled(const DecoupledNetwork &Net, std::ostream &Os) {
  Os << "prdnn-ddnn v1\n";
  writeNetwork(Net.activationChannel(), Os);
  writeNetwork(Net.valueChannel(), Os);
}

std::optional<DecoupledNetwork> prdnn::readDecoupled(std::istream &Is) {
  std::string Magic, Version;
  if (!(Is >> Magic >> Version) || Magic != "prdnn-ddnn" || Version != "v1")
    return std::nullopt;
  std::optional<Network> Activation = readNetwork(Is);
  if (!Activation)
    return std::nullopt;
  std::optional<Network> Value = readNetwork(Is);
  if (!Value)
    return std::nullopt;
  if (Activation->numLayers() != Value->numLayers())
    return std::nullopt;
  for (int I = 0; I < Activation->numLayers(); ++I)
    if (Activation->layer(I).getKind() != Value->layer(I).getKind() ||
        Activation->layer(I).inputSize() != Value->layer(I).inputSize() ||
        Activation->layer(I).outputSize() != Value->layer(I).outputSize())
      return std::nullopt;
  return DecoupledNetwork(std::move(*Activation), std::move(*Value));
}
