//===- core/PolytopeRepair.h - Provable Polytope Repair (§6) ---*- C++ -*-===//
///
/// \file
/// Algorithm 2 (PolytopeRepair): reduces repair over polytopes with
/// infinitely many points to pointwise repair on finitely many *key
/// points*. For a PWL network whose value channel alone is edited, the
/// linear regions do not move (Theorem 4.6), each region's image is the
/// convex hull of its vertices' images, and hence the polytope spec
/// holds iff the point spec on all region vertices holds (Theorem 6.4).
///
/// The primary public entry point is api/RepairEngine.h: a
/// RepairRequest carrying a PolytopeSpec runs this algorithm (the
/// engine's LinRegions phase is Algorithm 2's SyReNN transform, after
/// which it proceeds through Algorithm 1's Jacobian/LP/Verify phases).
/// The repairPolytopes() free function below survives as a thin
/// wrapper over the engine for one-shot fixed-layer repairs.
///
/// Key points are generated with their owning region's activation
/// pattern pinned (Appendix B), so the same input can appear once per
/// adjacent region with different Jacobians.
///
/// Supported polytopes: 1-D segments (via syrenn/LineTransform.h) and
/// 2-D convex polygons (via syrenn/PlaneTransform.h), matching the
/// scalability envelope reported in the paper (§2, §7.3).
///
//===----------------------------------------------------------------------===//

#ifndef PRDNN_CORE_POLYTOPEREPAIR_H
#define PRDNN_CORE_POLYTOPEREPAIR_H

#include "core/PointRepair.h"

namespace prdnn {

/// Algorithm 2 as a one-shot call; a thin wrapper over
/// RepairEngine::run (api/RepairEngine.h), bit-for-bit identical to
/// it. \p Net must be piecewise-linear; \p LayerIndex names a
/// parameterized linear layer. Statuses as in repairPoints; on Success
/// the repaired DDNN provably satisfies the constraint on *every* point
/// of every specification polytope.
RepairResult repairPolytopes(const Network &Net, int LayerIndex,
                             const PolytopeSpec &Spec,
                             const RepairOptions &Options = RepairOptions());

/// The point specification Algorithm 2 constructs (exposed for tests,
/// diagnostics, and the FT/MFT baselines, which sample the same key
/// points). \p LinRegionsSeconds and \p NumRegions, when non-null,
/// receive the transform time and region count.
PointSpec keyPointSpec(const Network &Net, const PolytopeSpec &Spec,
                       double *LinRegionsSeconds = nullptr,
                       int *NumRegions = nullptr);

/// keyPointSpec's output plus its cost accounting: transform wall time
/// and the artifact-cache lookups the construction performed (zero
/// when run without a cache).
struct KeyPointsResult {
  PointSpec Points;
  int LinearRegions = 0;
  double Seconds = 0.0;
  /// SyReNN transform artifact (the partitions of the spec's shapes).
  int TransformCacheHits = 0;
  int TransformCacheMisses = 0;
  /// Activation-pattern batch artifact (per-region representatives).
  int PatternCacheHits = 0;
  int PatternCacheMisses = 0;
  /// Of the hits above, those served by the persistent L2 store.
  int TransformStoreHits = 0;
  int PatternStoreHits = 0;
};

/// Cache-aware keyPointSpec: when \p Ctx carries an artifact cache and
/// \p UseCache is set, the SyReNN partitions (keyed by the network
/// fingerprint and the polytope *shapes*, so specs differing only in
/// output constraints share them) and the per-region pattern batch are
/// cached artifacts. Bit-for-bit identical to keyPointSpec for every
/// cache state. \p Tier is the kernel determinism tier the construction
/// runs under (and part of both artifact keys when Fast, so a Fast
/// transform never serves a Strict request); Strict is bit-for-bit the
/// pre-tier behavior.
KeyPointsResult
keyPoints(const Network &Net, const PolytopeSpec &Spec,
          JobContext *Ctx = nullptr, bool UseCache = true,
          linalg::Determinism Tier = linalg::Determinism::Strict);

namespace detail {

/// Algorithm 2 proper; see repairPointsImpl for the \p Ctx contract
/// (cancellation here is additionally polled around the LinRegions
/// transform phase).
RepairResult repairPolytopesImpl(const Network &Net, int LayerIndex,
                                 const PolytopeSpec &Spec,
                                 const RepairOptions &Options,
                                 JobContext *Ctx);

} // namespace detail

} // namespace prdnn

#endif // PRDNN_CORE_POLYTOPEREPAIR_H
