//===- core/RepairContext.h - job context for engine repairs ---*- C++ -*-===//
///
/// \file
/// The cooperative control channel between a running repair and its
/// observers: cancellation, per-phase progress, and (for tests) a
/// checkpoint hook. A JobContext is owned by the RepairEngine job (or
/// stack-allocated for synchronous runs) and passed by pointer into the
/// core algorithms, which
///
///  - announce phase transitions (LinRegions -> Jacobian -> Lp ->
///    Verify, mapping to Algorithm 2 line 2 / Algorithm 1 lines 4-6 /
///    lines 7-8 / lines 9-10 of the paper);
///  - publish monotonic item counters within each phase (Jacobian
///    chunks, constraint-generation rounds, verified points);
///  - poll for cancellation at chunk boundaries (and, via
///    SimplexOptions::CancelFlag, between simplex iterations). A
///    cancelled repair returns RepairStatus::Cancelled with its timing
///    stats stamped; it never tears partially-written state.
///
/// All observation methods are safe to call concurrently with the
/// running repair; counters are per-phase monotonic (a new phase or a
/// new sweep layer resets them, with the phase/sweep fields telling the
/// observer which epoch a snapshot belongs to).
///
//===----------------------------------------------------------------------===//

#ifndef PRDNN_CORE_REPAIRCONTEXT_H
#define PRDNN_CORE_REPAIRCONTEXT_H

#include "cache/Fingerprint.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>

namespace prdnn {

class ArtifactCache;

namespace obs {
class TraceBuffer;
struct TraceEvent;
} // namespace obs

/// Phases of an engine repair job, in execution order. LinRegions only
/// occurs for polytope requests (Algorithm 2's SyReNN transform);
/// Jacobian / Lp / Verify are Algorithm 1's three stages.
enum class RepairPhase {
  Queued,
  LinRegions,
  Jacobian,
  Lp,
  Verify,
  Done,
};

const char *toString(RepairPhase Phase);

/// One observation of a running job's progress.
struct ProgressSnapshot {
  RepairPhase Phase = RepairPhase::Queued;
  /// Work items finished / expected in the current phase. ItemsTotal
  /// is 0 when the total is unknown up front (the LP phase's
  /// constraint-generation rounds).
  std::int64_t ItemsDone = 0;
  std::int64_t ItemsTotal = 0;
  /// Layer currently being attempted (-1 before the first attempt) and
  /// the sweep position; SweepTotal is 1 for fixed-layer requests.
  int SweepLayer = -1;
  int SweepDone = 0;
  int SweepTotal = 0;
  bool CancelRequested = false;
  /// Artifact-cache lookups so far, across all phases of the job (0 /
  /// 0 when the job runs without a cache). Monotonic over the whole
  /// job, unlike the per-phase item counters.
  std::int64_t CacheHits = 0;
  std::int64_t CacheMisses = 0;
  /// Of CacheHits, those served by the persistent L2 store (0 when the
  /// engine has no store).
  std::int64_t StoreHits = 0;
};

/// Shared state of one repair job; see the file comment.
class JobContext {
public:
  JobContext() = default;
  JobContext(const JobContext &) = delete;
  JobContext &operator=(const JobContext &) = delete;

  // --- Observer side --------------------------------------------------------

  /// Requests cooperative cancellation; the repair notices at its next
  /// checkpoint and returns RepairStatus::Cancelled.
  void requestCancel() { Cancel.store(true, std::memory_order_relaxed); }

  bool cancelRequested() const {
    return Cancel.load(std::memory_order_relaxed);
  }

  /// The flag the LP solver polls (SimplexOptions::CancelFlag).
  const std::atomic<bool> *cancelFlag() const { return &Cancel; }

  ProgressSnapshot snapshot() const;

  // --- Repair side (called from the job thread) -----------------------------

  /// Cancellation checkpoint: records the current phase, invokes the
  /// checkpoint hook (if any), and returns whether the repair should
  /// stop. Called at phase and chunk boundaries only - never inside
  /// bit-for-bit-sensitive inner loops.
  bool checkpoint(RepairPhase Phase);

  /// Enters \p Phase with \p Total expected items (0 if unknown) and
  /// resets the item counter.
  void beginPhase(RepairPhase Phase, std::int64_t Total);

  /// Adds \p Count finished items to the current phase.
  void advance(std::int64_t Count = 1) {
    Done.fetch_add(Count, std::memory_order_relaxed);
  }

  void beginSweep(int Total) {
    SweepTotalV.store(Total, std::memory_order_relaxed);
  }
  void beginSweepLayer(int Layer) {
    SweepLayerV.store(Layer, std::memory_order_relaxed);
    if (TraceV)
      traceSetLayer(Layer);
  }
  void finishSweepLayer() {
    SweepDoneV.fetch_add(1, std::memory_order_relaxed);
    if (TraceV)
      traceEnd();
  }

  void markDone() { beginPhase(RepairPhase::Done, 0); }

  // --- Tracing (obs/Trace.h) ------------------------------------------------

  /// Installs the telemetry trace sink for this job. Same contract as
  /// setCache: written before the job runs, read from job (and sweep
  /// shard) threads. A null buffer (the default) makes every trace
  /// path a no-op - the telemetry-off configuration.
  void setTrace(obs::TraceBuffer *Buffer, std::uint64_t JobId) {
    TraceV = Buffer;
    TraceJobId = JobId;
  }

  obs::TraceBuffer *trace() const { return TraceV; }
  std::uint64_t traceJobId() const { return TraceJobId; }

  // --- Artifact cache (cache/ArtifactCache.h) -------------------------------

  /// Installs the engine's shared artifact cache for this job, with
  /// the request network's content fingerprint. Must be called before
  /// the job runs (the engine does, when caching is enabled for the
  /// request); the repair algorithms read it from the job thread.
  void setCache(ArtifactCache *NewCache, NetworkFingerprint Fingerprint) {
    CacheV = NewCache;
    NetFp = Fingerprint;
  }

  /// The cache the job's repairs should consult, or null.
  ArtifactCache *cache() const { return CacheV; }

  /// Fingerprint of the request's network (meaningful iff cache() is
  /// non-null).
  const NetworkFingerprint &networkFingerprint() const { return NetFp; }

  void noteCacheHits(std::int64_t Count) {
    CacheHitsV.fetch_add(Count, std::memory_order_relaxed);
  }
  void noteCacheMisses(std::int64_t Count) {
    CacheMissesV.fetch_add(Count, std::memory_order_relaxed);
  }
  void noteStoreHits(std::int64_t Count) {
    StoreHitsV.fetch_add(Count, std::memory_order_relaxed);
  }

  /// Installs a hook invoked (on the job thread) at every checkpoint
  /// with the checkpoint's phase - the deterministic way for tests to
  /// cancel "mid-Jacobian" or "mid-LP". Must be installed before the
  /// job starts; the engine forwards the hook given to submit().
  void setCheckpointHook(std::function<void(RepairPhase)> NewHook) {
    Hook = std::move(NewHook);
  }

  /// Whether a checkpoint hook is installed. The engine serializes
  /// sweep attempts for hooked jobs (EngineOptions::SweepShards): the
  /// hook contract says "invoked on the job thread", and tests rely on
  /// deterministic single-threaded hook invocation to cancel at exact
  /// checkpoints.
  bool hasCheckpointHook() const { return static_cast<bool>(Hook); }

private:
  /// One per-thread open span, keyed by obs::threadOrdinal(): the
  /// serialized path only ever holds one entry, the sharded sweep path
  /// one per shard thread. Guarded by TraceMutex; all trace methods
  /// are no-ops when TraceV is null, so the lock is never taken (and
  /// telemetry-off runs take no new synchronization at all).
  struct OpenSpan {
    const char *Name = "";
    std::uint64_t StartNanos = 0;
    std::int32_t Layer = -1;
    std::int64_t CacheHits0 = 0;
    std::int64_t CacheMisses0 = 0;
    std::int64_t StoreHits0 = 0;
    bool Open = false;
  };

  obs::TraceEvent closeEvent(const OpenSpan &Span, std::uint32_t ThreadId,
                             std::uint64_t Now) const;
  /// Closes the calling thread's span (if open) and opens a new one
  /// named after \p Phase; Done instead closes every remaining span.
  void tracePhase(RepairPhase Phase);
  /// Closes the calling thread's span (sharded sweeps: each shard
  /// thread closes its own layer span).
  void traceEnd();
  /// Tags the calling thread's spans with \p Layer.
  void traceSetLayer(int Layer);

  std::atomic<bool> Cancel{false};
  std::atomic<int> PhaseV{static_cast<int>(RepairPhase::Queued)};
  std::atomic<std::int64_t> Done{0};
  std::atomic<std::int64_t> Total{0};
  std::atomic<int> SweepLayerV{-1};
  std::atomic<int> SweepDoneV{0};
  std::atomic<int> SweepTotalV{0};
  std::atomic<std::int64_t> CacheHitsV{0};
  std::atomic<std::int64_t> CacheMissesV{0};
  std::atomic<std::int64_t> StoreHitsV{0};
  /// Written before the job runs, read only from the job thread.
  ArtifactCache *CacheV = nullptr;
  NetworkFingerprint NetFp;
  /// Written before the job runs, read only from the job thread.
  std::function<void(RepairPhase)> Hook;
  /// Written before the job runs (setTrace), read from job threads.
  obs::TraceBuffer *TraceV = nullptr;
  std::uint64_t TraceJobId = 0;
  std::mutex TraceMutex;
  std::map<std::uint32_t, OpenSpan> TraceSpans;
};

} // namespace prdnn

#endif // PRDNN_CORE_REPAIRCONTEXT_H
