//===- data/Corruptions.h - image corruption operators ---------*- C++ -*-===//
///
/// \file
/// Corruption operators in the style of MNIST-C [46]. Task 2 uses the
/// fog operator: images are blended toward a smooth bright haze field,
/// and the repair specification is the *line* from a clean image to its
/// fogged version - "each image along the line is corrupted by a
/// different amount of fog" (§1).
///
//===----------------------------------------------------------------------===//

#ifndef PRDNN_DATA_CORRUPTIONS_H
#define PRDNN_DATA_CORRUPTIONS_H

#include "linalg/Vector.h"
#include "support/Rng.h"

namespace prdnn {
namespace data {

/// MNIST-C-style fog: I' = (1 - Severity) I + Severity * Haze, where
/// Haze is a smooth (bilinearly upsampled) bright random field.
/// Severity in [0, 1].
Vector fogCorrupt(const Vector &Image, int Height, int Width,
                  double Severity, Rng &R);

/// Additive Gaussian pixel noise, clamped to [0, 1].
Vector noiseCorrupt(const Vector &Image, double Stddev, Rng &R);

/// Multiplies contrast around 0.5: I' = 0.5 + Factor (I - 0.5).
Vector contrastCorrupt(const Vector &Image, double Factor);

/// Zeroes a random full-height or full-width bar of the given width
/// (per channel for multi-channel images laid out channel-major).
Vector occludeBar(const Vector &Image, int Channels, int Height, int Width,
                  int BarWidth, Rng &R);

} // namespace data
} // namespace prdnn

#endif // PRDNN_DATA_CORRUPTIONS_H
