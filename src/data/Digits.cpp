//===- data/Digits.cpp ----------------------------------------------------===//

#include "data/Digits.h"

#include "nn/ActivationLayers.h"
#include "nn/LinearLayers.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace prdnn;
using namespace prdnn::data;

namespace {

// Seven-segment encoding; segments: 0=top, 1=top-right, 2=bottom-right,
// 3=bottom, 4=bottom-left, 5=top-left, 6=middle.
constexpr int kSegments[10] = {
    0b0111111, // 0: all but middle
    0b0000110, // 1
    0b1011011, // 2
    0b1001111, // 3
    0b1100110, // 4
    0b1101101, // 5
    0b1111101, // 6
    0b0000111, // 7
    0b1111111, // 8
    0b1101111, // 9
};

struct SegmentBox {
  int Y0, X0, Y1, X1; // inclusive pixel box (pre-jitter)
};

/// Segment geometry on a 12-row x 8-column glyph box.
SegmentBox segmentBox(int Segment, int Thickness) {
  int T = Thickness;
  switch (Segment) {
  case 0:
    return {0, 0, T - 1, 7}; // top
  case 1:
    return {0, 8 - T, 5, 7}; // top-right
  case 2:
    return {6, 8 - T, 11, 7}; // bottom-right
  case 3:
    return {12 - T, 0, 11, 7}; // bottom
  case 4:
    return {6, 0, 11, T - 1}; // bottom-left
  case 5:
    return {0, 0, 5, T - 1}; // top-left
  case 6:
    return {6 - T / 2, 0, 6 - T / 2 + T - 1, 7}; // middle
  }
  return {0, 0, 0, 0};
}

} // namespace

Vector prdnn::data::makeDigitImage(int Digit, Rng &R) {
  assert(Digit >= 0 && Digit < kDigitClasses && "digit out of range");
  Vector Image(kDigitPixels);

  int OffY = 2 + R.uniformInt(-1, 1);
  int OffX = 4 + R.uniformInt(-2, 2);
  int Thickness = R.uniformInt(1, 2);
  double Intensity = R.uniform(0.7, 1.0);

  int Mask = kSegments[Digit];
  for (int Segment = 0; Segment < 7; ++Segment) {
    if (!(Mask & (1 << Segment)))
      continue;
    SegmentBox Box = segmentBox(Segment, Thickness);
    for (int Y = Box.Y0; Y <= Box.Y1; ++Y)
      for (int X = Box.X0; X <= Box.X1; ++X) {
        int PY = Y + OffY, PX = X + OffX;
        if (PY < 0 || PY >= kDigitImage || PX < 0 || PX >= kDigitImage)
          continue;
        Image[PY * kDigitImage + PX] = Intensity;
      }
  }
  for (int I = 0; I < kDigitPixels; ++I) {
    Image[I] += R.normal(0.0, 0.08);
    Image[I] = std::clamp(Image[I], 0.0, 1.0);
  }
  return Image;
}

Dataset prdnn::data::makeDigits(int Count, Rng &R) {
  Dataset Data;
  for (int I = 0; I < Count; ++I) {
    int Digit = I % kDigitClasses;
    Data.push(makeDigitImage(Digit, R), Digit);
  }
  return Data;
}

Network prdnn::data::trainDigitClassifier(int Hidden, int TrainCount,
                                          int Epochs, Rng &R) {
  Network Net;
  auto RandomFc = [&R](int Out, int In) {
    Matrix W(Out, In);
    double Scale = std::sqrt(2.0 / In); // He initialization
    for (int I = 0; I < Out; ++I)
      for (int J = 0; J < In; ++J)
        W(I, J) = Scale * R.normal();
    return std::make_unique<FullyConnectedLayer>(std::move(W), Vector(Out));
  };
  Net.addLayer(RandomFc(Hidden, kDigitPixels));
  Net.addLayer(std::make_unique<ReLULayer>(Hidden));
  Net.addLayer(RandomFc(Hidden, Hidden));
  Net.addLayer(std::make_unique<ReLULayer>(Hidden));
  Net.addLayer(RandomFc(kDigitClasses, Hidden));

  Dataset Train = makeDigits(TrainCount, R);
  SgdOptions Options;
  Options.LearningRate = 0.05;
  Options.Momentum = 0.9;
  Options.BatchSize = 32;
  Options.Epochs = Epochs;
  trainSgd(Net, Train, Options, R);
  return Net;
}
