//===- data/Digits.h - synthetic handwritten-digit stand-in ----*- C++ -*-===//
///
/// \file
/// Synthetic 16x16 grayscale digit images, the repo-local substitute
/// for MNIST (see DESIGN.md §3). Digits are rendered from jittered
/// seven-segment templates with varying position, thickness, stroke
/// intensity, and additive noise: easy enough that a small FC ReLU
/// network reaches MNIST-like accuracy, hard enough that corruptions
/// (data/Corruptions.h) break it - which is all Task 2 needs.
///
//===----------------------------------------------------------------------===//

#ifndef PRDNN_DATA_DIGITS_H
#define PRDNN_DATA_DIGITS_H

#include "support/Rng.h"
#include "train/Sgd.h"

namespace prdnn {
namespace data {

constexpr int kDigitImage = 16;
constexpr int kDigitPixels = kDigitImage * kDigitImage;
constexpr int kDigitClasses = 10;

/// Renders one digit image of class \p Digit.
Vector makeDigitImage(int Digit, Rng &R);

/// A balanced dataset of \p Count images.
Dataset makeDigits(int Count, Rng &R);

/// The standard Task-2 "buggy network": an MNIST-style ReLU-3-N
/// fully-connected classifier trained on clean digits.
Network trainDigitClassifier(int Hidden, int TrainCount, int Epochs, Rng &R);

} // namespace data
} // namespace prdnn

#endif // PRDNN_DATA_DIGITS_H
