//===- data/Corruptions.cpp ----------------------------------------------------===//

#include "data/Corruptions.h"

#include <algorithm>
#include <cassert>

using namespace prdnn;
using namespace prdnn::data;

Vector prdnn::data::fogCorrupt(const Vector &Image, int Height, int Width,
                               double Severity, Rng &R) {
  assert(Image.size() == Height * Width && "image shape mismatch");
  assert(Severity >= 0.0 && Severity <= 1.0 && "severity out of range");
  // Coarse 4x4 haze lattice, bilinearly upsampled: smooth like the
  // plasma-fractal fog of MNIST-C, cheap and deterministic.
  constexpr int Coarse = 4;
  double Lattice[Coarse + 1][Coarse + 1];
  for (int Y = 0; Y <= Coarse; ++Y)
    for (int X = 0; X <= Coarse; ++X)
      Lattice[Y][X] = R.uniform(0.65, 1.0);

  Vector Out(Image.size());
  for (int Y = 0; Y < Height; ++Y) {
    double FY = static_cast<double>(Y) / Height * Coarse;
    int LY = std::min(static_cast<int>(FY), Coarse - 1);
    double TY = FY - LY;
    for (int X = 0; X < Width; ++X) {
      double FX = static_cast<double>(X) / Width * Coarse;
      int LX = std::min(static_cast<int>(FX), Coarse - 1);
      double TX = FX - LX;
      double Haze = (1 - TY) * ((1 - TX) * Lattice[LY][LX] +
                                TX * Lattice[LY][LX + 1]) +
                    TY * ((1 - TX) * Lattice[LY + 1][LX] +
                          TX * Lattice[LY + 1][LX + 1]);
      int I = Y * Width + X;
      Out[I] = std::clamp((1.0 - Severity) * Image[I] + Severity * Haze,
                          0.0, 1.0);
    }
  }
  return Out;
}

Vector prdnn::data::noiseCorrupt(const Vector &Image, double Stddev, Rng &R) {
  Vector Out = Image;
  for (int I = 0; I < Out.size(); ++I)
    Out[I] = std::clamp(Out[I] + R.normal(0.0, Stddev), 0.0, 1.0);
  return Out;
}

Vector prdnn::data::contrastCorrupt(const Vector &Image, double Factor) {
  Vector Out = Image;
  for (int I = 0; I < Out.size(); ++I)
    Out[I] = std::clamp(0.5 + Factor * (Out[I] - 0.5), 0.0, 1.0);
  return Out;
}

Vector prdnn::data::occludeBar(const Vector &Image, int Channels, int Height,
                               int Width, int BarWidth, Rng &R) {
  assert(Image.size() == Channels * Height * Width && "image shape mismatch");
  Vector Out = Image;
  bool Verticalbar = R.bernoulli(0.5);
  if (Verticalbar) {
    int X0 = R.uniformInt(0, std::max(0, Width - BarWidth));
    for (int C = 0; C < Channels; ++C)
      for (int Y = 0; Y < Height; ++Y)
        for (int X = X0; X < std::min(Width, X0 + BarWidth); ++X)
          Out[(C * Height + Y) * Width + X] = 0.0;
  } else {
    int Y0 = R.uniformInt(0, std::max(0, Height - BarWidth));
    for (int C = 0; C < Channels; ++C)
      for (int Y = Y0; Y < std::min(Height, Y0 + BarWidth); ++Y)
        for (int X = 0; X < Width; ++X)
          Out[(C * Height + Y) * Width + X] = 0.0;
  }
  return Out;
}
