//===- data/ShapeWorld.cpp -------------------------------------------------===//

#include "data/ShapeWorld.h"

#include "data/Corruptions.h"
#include "nn/ActivationLayers.h"
#include "nn/LinearLayers.h"
#include "nn/PoolLayers.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace prdnn;
using namespace prdnn::data;

namespace {

/// Shape mask value (0/1) for class Shape at pixel (Y, X) given a
/// jittered center (CY, CX) and radius Rad.
bool inShape(int Shape, int Y, int X, double CY, double CX, double Rad) {
  double DY = Y - CY, DX = X - CX;
  double AbsY = std::fabs(DY), AbsX = std::fabs(DX);
  double Dist = std::sqrt(DY * DY + DX * DX);
  switch (Shape) {
  case 0: // disk
    return Dist <= Rad;
  case 1: // square outline
    return std::max(AbsY, AbsX) <= Rad && std::max(AbsY, AbsX) >= Rad - 1.6;
  case 2: // triangle (upward)
    return DY >= -Rad && DY <= Rad && AbsX <= (DY + Rad) * 0.5;
  case 3: // cross
    return (AbsY <= 1.2 && AbsX <= Rad) || (AbsX <= 1.2 && AbsY <= Rad);
  case 4: // ring
    return Dist <= Rad && Dist >= Rad - 1.8;
  case 5: // horizontal bar
    return AbsY <= 1.8 && AbsX <= Rad;
  case 6: // vertical bar
    return AbsX <= 1.8 && AbsY <= Rad;
  case 7: // diamond
    return AbsY + AbsX <= Rad;
  case 8: // checker
    return (static_cast<int>(AbsY / 2) + static_cast<int>(AbsX / 2)) % 2 ==
               0 &&
           std::max(AbsY, AbsX) <= Rad;
  }
  return false;
}

} // namespace

Vector prdnn::data::makeShapeImage(int Shape, Rng &R) {
  assert(Shape >= 0 && Shape < kShapeClasses && "shape class out of range");
  Vector Image(kShapePixels);

  double CY = kShapeImage / 2.0 + R.uniform(-1.5, 1.5);
  double CX = kShapeImage / 2.0 + R.uniform(-1.5, 1.5);
  double Rad = R.uniform(4.0, 6.0);

  // A distinct but jittered base color per class plus a dim background.
  double Hue = (Shape * 0.83 + R.uniform(-0.06, 0.06));
  Hue -= std::floor(Hue);
  double Fg[3] = {0.55 + 0.45 * std::sin(2 * M_PI * Hue),
                  0.55 + 0.45 * std::sin(2 * M_PI * Hue + 2.1),
                  0.55 + 0.45 * std::sin(2 * M_PI * Hue + 4.2)};
  double Bg = R.uniform(0.05, 0.2);

  for (int C = 0; C < kShapeChannels; ++C)
    for (int Y = 0; Y < kShapeImage; ++Y)
      for (int X = 0; X < kShapeImage; ++X) {
        double Value = inShape(Shape, Y, X, CY, CX, Rad) ? Fg[C] : Bg;
        Value += R.normal(0.0, 0.05);
        Image[(C * kShapeImage + Y) * kShapeImage + X] =
            std::clamp(Value, 0.0, 1.0);
      }
  return Image;
}

Dataset prdnn::data::makeShapeWorld(int Count, Rng &R) {
  Dataset Data;
  for (int I = 0; I < Count; ++I) {
    int Shape = I % kShapeClasses;
    Data.push(makeShapeImage(Shape, R), Shape);
  }
  return Data;
}

Vector prdnn::data::shiftDistribution(const Vector &Image, Rng &R) {
  Vector Out = Image;
  const int HW = kShapeImage * kShapeImage;

  // Channel permutation (severe hue shift).
  if (R.bernoulli(0.7)) {
    int Perm[3] = {1, 2, 0};
    if (R.bernoulli(0.5)) {
      Perm[0] = 2;
      Perm[1] = 0;
      Perm[2] = 1;
    }
    Vector Tmp = Out;
    for (int C = 0; C < 3; ++C)
      for (int I = 0; I < HW; ++I)
        Out[C * HW + I] = Tmp[Perm[C] * HW + I];
  }
  // Contrast inversion.
  if (R.bernoulli(0.5))
    for (int I = 0; I < Out.size(); ++I)
      Out[I] = 1.0 - Out[I];
  // Occluding bar.
  if (R.bernoulli(0.6))
    Out = occludeBar(Out, kShapeChannels, kShapeImage, kShapeImage,
                     R.uniformInt(2, 4), R);
  // Heavy noise.
  Out = noiseCorrupt(Out, R.uniform(0.1, 0.25), R);
  return Out;
}

Dataset prdnn::data::makeNaturalAdversarials(const Network &Net, int Count,
                                             Rng &R) {
  Dataset Data;
  int Shape = 0;
  int Attempts = 0;
  const int MaxAttempts = 400 * Count + 1000;
  while (Data.size() < Count && ++Attempts < MaxAttempts) {
    Vector Image = shiftDistribution(makeShapeImage(Shape, R), R);
    // NAE's defining filter: keep only what the model gets wrong.
    if (Net.classify(Image) != Shape) {
      Data.push(std::move(Image), Shape);
      Shape = (Shape + 1) % kShapeClasses;
    }
  }
  assert(Data.size() == Count &&
         "failed to find enough adversarial examples");
  return Data;
}

Network prdnn::data::trainShapeClassifier(int TrainCount, int Epochs,
                                          Rng &R) {
  Network Net;
  auto RandomConv = [&R](int InC, int InH, int InW, int OutC, int K, int S,
                         int P) {
    std::vector<double> Kernels(
        static_cast<size_t>(OutC) * InC * K * K);
    double Scale = std::sqrt(2.0 / (InC * K * K));
    for (double &V : Kernels)
      V = Scale * R.normal();
    return std::make_unique<Conv2DLayer>(InC, InH, InW, OutC, K, K, S, P,
                                         std::move(Kernels),
                                         std::vector<double>(OutC, 0.0));
  };
  auto RandomFc = [&R](int Out, int In) {
    Matrix W(Out, In);
    double Scale = std::sqrt(2.0 / In);
    for (int I = 0; I < Out; ++I)
      for (int J = 0; J < In; ++J)
        W(I, J) = Scale * R.normal();
    return std::make_unique<FullyConnectedLayer>(std::move(W), Vector(Out));
  };

  // conv(3->6) relu pool | conv(6->6) relu pool | fc 16 relu | fc 9:
  // ten layers, four of them repairable, mirroring the paper's
  // SqueezeNet slice at a scale our dense simplex handles comfortably.
  Net.addLayer(RandomConv(3, 16, 16, 6, 3, 1, 1));
  Net.addLayer(std::make_unique<ReLULayer>(6 * 16 * 16));
  Net.addLayer(std::make_unique<MaxPool2DLayer>(6, 16, 16, 2, 2, 2));
  Net.addLayer(RandomConv(6, 8, 8, 6, 3, 1, 1));
  Net.addLayer(std::make_unique<ReLULayer>(6 * 8 * 8));
  Net.addLayer(std::make_unique<MaxPool2DLayer>(6, 8, 8, 2, 2, 2));
  Net.addLayer(std::make_unique<FlattenLayer>(6 * 4 * 4));
  Net.addLayer(RandomFc(16, 6 * 4 * 4));
  Net.addLayer(std::make_unique<ReLULayer>(16));
  Net.addLayer(RandomFc(kShapeClasses, 16));

  Dataset Train = makeShapeWorld(TrainCount, R);
  SgdOptions Options;
  Options.LearningRate = 0.02;
  Options.Momentum = 0.9;
  Options.BatchSize = 32;
  Options.Epochs = Epochs;
  trainSgd(Net, Train, Options, R);
  return Net;
}
