//===- data/Acas.h - collision-avoidance policy stand-in -------*- C++ -*-===//
///
/// \file
/// An ACAS Xu-style aircraft collision-avoidance substrate, the
/// repo-local substitute for the N_{2,9} network and property phi_8 of
/// Task 3 (see DESIGN.md §3). A closed-form advisory policy over the
/// normalized 5-D state [rho, theta, psi, v_own, v_int] in [-1,1]^5 is
/// sampled to train a 7-layer FC ReLU network; the safety property is
/// the phi_8 analogue
///
///    for all x in SafeRegion: advisory(x) in {COC, WL}
///
/// which the trained network violates in pockets - exactly the setup
/// the paper repairs on 2-D slices.
///
//===----------------------------------------------------------------------===//

#ifndef PRDNN_DATA_ACAS_H
#define PRDNN_DATA_ACAS_H

#include "support/Rng.h"
#include "train/Sgd.h"

namespace prdnn {
namespace data {

constexpr int kAcasInputs = 5;
constexpr int kAcasAdvisories = 5;

/// Advisory indices (clear-of-conflict, weak/strong left/right).
enum AcasAdvisory {
  AcasCoc = 0,
  AcasWeakLeft = 1,
  AcasWeakRight = 2,
  AcasStrongLeft = 3,
  AcasStrongRight = 4,
};

/// The ground-truth rule-based policy; input components in [-1, 1]:
/// x0 = normalized distance rho, x1 = bearing theta / pi, x2 = relative
/// heading psi / pi, x3/x4 = normalized speeds.
int acasAdvisory(const Vector &X);

/// Threat score underlying the policy (COC iff below kAcasCocThreat).
double acasThreat(const Vector &X);
constexpr double kAcasCocThreat = 0.35;

/// The safe region: distance x0 >= kAcasSafeRho guarantees the true
/// policy is COC (threat provably < kAcasCocThreat there).
constexpr double kAcasSafeRho = 0.4;

/// True iff \p Advisory is permitted inside the safe region (phi_8
/// analogue: COC or weak-left).
bool acasSafeAdvisory(int Advisory);

/// Uniform samples over [-1,1]^5 labeled by the policy.
Dataset makeAcasDataset(int Count, Rng &R);

/// Trains the Task-3 "buggy network": FC ReLU, \p Hidden units per
/// hidden layer, 5 hidden layers (7 layers with the in/out maps).
Network trainAcasNetwork(int Hidden, int TrainCount, int Epochs, Rng &R);

/// A random axis-aligned 2-D rectangle (slice) inside the safe region:
/// two of the five coordinates vary over their ranges, the others are
/// fixed. Returns the four corners in input space.
std::vector<Vector> randomSafeSlice(Rng &R);

} // namespace data
} // namespace prdnn

#endif // PRDNN_DATA_ACAS_H
