//===- data/Acas.cpp -----------------------------------------------------===//

#include "data/Acas.h"

#include "nn/ActivationLayers.h"
#include "nn/LinearLayers.h"

#include <cassert>
#include <cmath>

using namespace prdnn;
using namespace prdnn::data;

double prdnn::data::acasThreat(const Vector &X) {
  assert(X.size() == kAcasInputs && "ACAS state must be 5-D");
  double Rho = (X[0] + 1.0) / 2.0;    // 0 = on top of us, 1 = far away
  double Theta = X[1] * M_PI;        // bearing to the intruder
  double VInt = (X[4] + 1.0) / 2.0;  // intruder speed
  // Closer, more head-on, faster intruders are more threatening. The
  // bearing factor is in [0.2, 1], the speed factor in [0.6, 1].
  double Proximity = 1.0 - Rho;
  double Bearing = 0.6 + 0.4 * std::cos(Theta);
  double Speed = 0.6 + 0.4 * VInt;
  return Proximity * Bearing * Speed;
}

int prdnn::data::acasAdvisory(const Vector &X) {
  double Threat = acasThreat(X);
  if (Threat < kAcasCocThreat)
    return AcasCoc;
  // Intruder to the left (theta > 0) -> turn right, and vice versa;
  // near-zero bearing uses the relative heading to break the tie.
  double Direction = X[1];
  if (std::fabs(Direction) < 0.05)
    Direction = X[2] >= 0.0 ? -1.0 : 1.0;
  bool TurnRight = Direction > 0.0;
  bool Strong = Threat > 0.65;
  if (TurnRight)
    return Strong ? AcasStrongRight : AcasWeakRight;
  return Strong ? AcasStrongLeft : AcasWeakLeft;
}

bool prdnn::data::acasSafeAdvisory(int Advisory) {
  return Advisory == AcasCoc || Advisory == AcasWeakLeft;
}

Dataset prdnn::data::makeAcasDataset(int Count, Rng &R) {
  Dataset Data;
  for (int I = 0; I < Count; ++I) {
    Vector X(kAcasInputs);
    for (int J = 0; J < kAcasInputs; ++J)
      X[J] = R.uniform(-1.0, 1.0);
    int Label = acasAdvisory(X);
    Data.push(std::move(X), Label);
  }
  return Data;
}

Network prdnn::data::trainAcasNetwork(int Hidden, int TrainCount, int Epochs,
                                      Rng &R) {
  Network Net;
  auto RandomFc = [&R](int Out, int In) {
    Matrix W(Out, In);
    double Scale = std::sqrt(2.0 / In);
    for (int I = 0; I < Out; ++I)
      for (int J = 0; J < In; ++J)
        W(I, J) = Scale * R.normal();
    return std::make_unique<FullyConnectedLayer>(std::move(W), Vector(Out));
  };
  // 5 hidden ReLU layers, mirroring the N_{2,9} depth.
  int Size = kAcasInputs;
  for (int LayerIdx = 0; LayerIdx < 5; ++LayerIdx) {
    Net.addLayer(RandomFc(Hidden, Size));
    Net.addLayer(std::make_unique<ReLULayer>(Hidden));
    Size = Hidden;
  }
  Net.addLayer(RandomFc(kAcasAdvisories, Size));

  Dataset Train = makeAcasDataset(TrainCount, R);
  SgdOptions Options;
  Options.LearningRate = 0.05;
  Options.Momentum = 0.9;
  Options.BatchSize = 32;
  Options.Epochs = Epochs;
  trainSgd(Net, Train, Options, R);
  return Net;
}

std::vector<Vector> prdnn::data::randomSafeSlice(Rng &R) {
  // Fix three coordinates, vary two. x0 stays inside the safe region.
  int VaryA = R.uniformInt(1, kAcasInputs - 1);
  int VaryB = R.uniformInt(1, kAcasInputs - 1);
  while (VaryB == VaryA)
    VaryB = R.uniformInt(1, kAcasInputs - 1);

  Vector Base(kAcasInputs);
  Base[0] = R.uniform(kAcasSafeRho, 1.0);
  for (int J = 1; J < kAcasInputs; ++J)
    Base[J] = R.uniform(-1.0, 1.0);

  auto Corner = [&](double SA, double SB) {
    Vector V = Base;
    V[VaryA] = SA;
    V[VaryB] = SB;
    return V;
  };
  return {Corner(-1.0, -1.0), Corner(1.0, -1.0), Corner(1.0, 1.0),
          Corner(-1.0, 1.0)};
}
