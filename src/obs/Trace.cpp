//===- obs/Trace.cpp - span ring buffer + Chrome trace export -------------===//

#include "obs/Trace.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <fstream>

namespace prdnn {
namespace obs {

TraceBuffer::TraceBuffer(std::size_t Cap) : Capacity(Cap == 0 ? 1 : Cap) {
  Ring.reserve(Capacity);
}

void TraceBuffer::record(const TraceEvent &Event) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Ring.size() < Capacity) {
    Ring.push_back(Event);
  } else {
    Ring[Head] = Event;
    Head = (Head + 1) % Capacity;
  }
  ++Recorded;
}

std::vector<TraceEvent> TraceBuffer::events() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::vector<TraceEvent> Out;
  Out.reserve(Ring.size());
  // Once full the ring wraps: Head is the oldest slot.
  for (std::size_t I = 0; I < Ring.size(); ++I)
    Out.push_back(Ring[(Head + I) % Ring.size()]);
  return Out;
}

std::uint64_t TraceBuffer::recorded() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Recorded;
}

std::uint64_t TraceBuffer::dropped() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Recorded - Ring.size();
}

void TraceBuffer::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Ring.clear();
  Head = 0;
  Recorded = 0;
}

std::string TraceBuffer::exportChromeTrace() const {
  const std::vector<TraceEvent> Events = events();
  std::string Out = "{\"traceEvents\":[";
  Out += "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
         "\"args\":{\"name\":\"prdnn\"}}";
  char Buf[512];
  for (const TraceEvent &E : Events) {
    // ts/dur are microseconds (double) in the trace-event format.
    std::snprintf(
        Buf, sizeof(Buf),
        ",{\"ph\":\"X\",\"pid\":1,\"tid\":%" PRIu32 ",\"name\":\"%s\","
        "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"job\":%" PRIu64
        ",\"sweep_layer\":%" PRId32 ",\"cache_hits\":%" PRIu64
        ",\"cache_misses\":%" PRIu64 ",\"store_hits\":%" PRIu64
        ",\"items_done\":%" PRIu64 ",\"items_total\":%" PRIu64 "}}",
        E.ThreadId, E.Name, static_cast<double>(E.StartNanos) / 1e3,
        static_cast<double>(E.DurationNanos) / 1e3, E.JobId, E.SweepLayer,
        E.CacheHits, E.CacheMisses, E.StoreHits, E.ItemsDone, E.ItemsTotal);
    Out += Buf;
  }
  Out += "]}";
  return Out;
}

bool TraceBuffer::writeChromeTrace(const std::string &Path) const {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out)
    return false;
  const std::string Json = exportChromeTrace();
  Out.write(Json.data(), static_cast<std::streamsize>(Json.size()));
  return static_cast<bool>(Out);
}

std::uint64_t TraceBuffer::nowNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

} // namespace obs
} // namespace prdnn
