//===- obs/Telemetry.h - shared registry + trace bundle --------*- C++ -*-===//
///
/// \file
/// The handle bundle threaded through the stack: one MetricsRegistry
/// plus one TraceBuffer, with the engine-tier instruments
/// pre-registered so RepairEngine wiring is pointer stores rather than
/// name lookups on the hot path. Serve/rpc tiers register their own
/// metrics against \c Registry (keeping obs below them in the layer
/// order) and remove them via removeOwner() in their destructors.
///
/// Install via EngineOptions::Telemetry (or let RepairService create
/// one - ServiceOptions::Telemetry defaults to on). A null telemetry
/// pointer means "off" everywhere: no registration, no recording, and
/// - by the standing invariant - no difference in any repair bit.
///
//===----------------------------------------------------------------------===//

#ifndef PRDNN_OBS_TELEMETRY_H
#define PRDNN_OBS_TELEMETRY_H

#include "obs/Metrics.h"
#include "obs/Trace.h"

namespace prdnn {
namespace obs {

struct TelemetryOptions {
  /// Span capacity of the trace ring (most recent kept).
  std::size_t TraceCapacity = 1 << 14;
};

/// See the file comment. The pre-registered handles below are never
/// null and never move for the Telemetry's lifetime.
class Telemetry {
public:
  explicit Telemetry(const TelemetryOptions &Opts = TelemetryOptions());
  Telemetry(const Telemetry &) = delete;
  Telemetry &operator=(const Telemetry &) = delete;

  MetricsRegistry Registry;
  TraceBuffer Trace;

  // Engine job lifecycle.
  Counter *JobsSubmitted;
  Counter *JobsCompleted;
  Counter *JobsSucceeded;
  Counter *JobsInfeasible;
  Counter *JobsCancelled;
  Counter *JobsFailed;
  /// Resolved kernel determinism tier of each completed job
  /// (RepairStats::Determinism): fleet operators watch the Fast share
  /// to see how much traffic runs off the bit-reproducible tier.
  Counter *JobsStrictTier;
  Counter *JobsFastTier;
  Histogram *QueueWaitSeconds;
  Histogram *JobSeconds;

  // Per-attempt phase breakdown (one observation per sweep attempt).
  Counter *SweepAttempts;
  Histogram *JacobianSeconds;
  Histogram *LpSeconds;
  Histogram *LinRegionsSeconds;

  // LP kernel totals, folded from the winning attempt's SimplexStats.
  Counter *LpIterations;
  Counter *LpRefactors;
  Counter *LpPricingSeconds;
  Counter *LpFtranSeconds;
  Counter *LpBtranSeconds;
  Counter *LpRatioSeconds;
  Counter *LpUpdateSeconds;
  Counter *LpRefactorSeconds;

  /// Uniform reset: zeroes every registry instrument, runs the tier
  /// reset hooks (cache, store, admission, registry counters), and
  /// clears the trace ring.
  void reset();
};

} // namespace obs
} // namespace prdnn

#endif // PRDNN_OBS_TELEMETRY_H
