//===- obs/Trace.h - per-job phase span recorder ---------------*- C++ -*-===//
///
/// \file
/// The observability layer's tracing half: a bounded ring buffer of
/// completed spans (one per job phase per thread) exportable as Chrome
/// trace-event JSON, loadable straight into Perfetto
/// (https://ui.perfetto.dev) or chrome://tracing.
///
/// Spans are recorded by core::JobContext as phases begin and end
/// (including per-shard sweep layers under the sharded scheduler) and
/// by the engine for queue waits; each span carries the job id, a
/// static phase name, the recording thread's ordinal, monotonic
/// start/duration in nanoseconds, and cache/store hit-counter deltas
/// accumulated during the span. Recording is a short mutex-guarded
/// ring-buffer write with no allocation beyond the pre-sized ring -
/// inert by the same contract as obs/Metrics.h.
///
//===----------------------------------------------------------------------===//

#ifndef PRDNN_OBS_TRACE_H
#define PRDNN_OBS_TRACE_H

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace prdnn {
namespace obs {

/// One completed span. \c Name must point at a string with static
/// storage duration (phase names are compile-time literals); the ring
/// never copies or frees it.
struct TraceEvent {
  std::uint64_t JobId = 0;
  const char *Name = "";
  /// obs::threadOrdinal() of the recording thread.
  std::uint32_t ThreadId = 0;
  /// Monotonic (steady_clock) nanoseconds.
  std::uint64_t StartNanos = 0;
  std::uint64_t DurationNanos = 0;
  /// Sweep layer index for per-layer spans, -1 otherwise.
  std::int32_t SweepLayer = -1;
  /// Cache/store counter deltas accumulated during the span.
  std::uint64_t CacheHits = 0;
  std::uint64_t CacheMisses = 0;
  std::uint64_t StoreHits = 0;
  /// Phase progress at span end (items completed / total), 0/0 when
  /// the phase does not report item counts.
  std::uint64_t ItemsDone = 0;
  std::uint64_t ItemsTotal = 0;
};

/// Bounded MPSC-friendly span sink: any thread records, the ring keeps
/// the most recent \c Capacity spans (older ones are counted as
/// dropped, not resized into). All members are safe to call
/// concurrently.
class TraceBuffer {
public:
  explicit TraceBuffer(std::size_t Capacity = 1 << 14);

  void record(const TraceEvent &Event);

  /// Most recent spans, oldest first.
  std::vector<TraceEvent> events() const;

  /// Total spans ever recorded (including dropped).
  std::uint64_t recorded() const;

  /// Spans evicted by the capacity bound.
  std::uint64_t dropped() const;

  void clear();

  /// Chrome trace-event JSON (the `{"traceEvents": [...]}` object
  /// form): one "X" complete event per span with ts/dur in
  /// microseconds, pid 1, tid = recording thread ordinal, and the
  /// cache/items annotations under "args".
  std::string exportChromeTrace() const;

  /// exportChromeTrace() to \p Path; false on I/O failure.
  bool writeChromeTrace(const std::string &Path) const;

  /// Monotonic now, the clock all spans share.
  static std::uint64_t nowNanos();

private:
  mutable std::mutex Mutex;
  std::vector<TraceEvent> Ring;
  std::size_t Capacity;
  std::size_t Head = 0; ///< Next write slot once the ring is full.
  std::uint64_t Recorded = 0;
};

} // namespace obs
} // namespace prdnn

#endif // PRDNN_OBS_TRACE_H
