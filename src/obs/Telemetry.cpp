//===- obs/Telemetry.cpp - pre-registered engine instruments --------------===//

#include "obs/Telemetry.h"

namespace prdnn {
namespace obs {

Telemetry::Telemetry(const TelemetryOptions &Opts)
    : Trace(Opts.TraceCapacity) {
  auto Lat = defaultLatencyBuckets();

  JobsSubmitted = Registry.counter("prdnn_engine_jobs_submitted_total",
                                   "Jobs accepted by RepairEngine::submit");
  JobsCompleted = Registry.counter("prdnn_engine_jobs_completed_total",
                                   "Jobs resolved (any terminal status)");
  JobsSucceeded = Registry.counter("prdnn_engine_jobs_succeeded_total",
                                   "Jobs resolved with RepairStatus::Success");
  JobsInfeasible =
      Registry.counter("prdnn_engine_jobs_infeasible_total",
                       "Jobs resolved with RepairStatus::Infeasible");
  JobsCancelled =
      Registry.counter("prdnn_engine_jobs_cancelled_total",
                       "Jobs resolved with RepairStatus::Cancelled");
  JobsFailed =
      Registry.counter("prdnn_engine_jobs_solver_failure_total",
                       "Jobs resolved with RepairStatus::SolverFailure");
  JobsStrictTier =
      Registry.counter("prdnn_engine_jobs_strict_tier_total",
                       "Jobs that ran under the Strict determinism tier");
  JobsFastTier =
      Registry.counter("prdnn_engine_jobs_fast_tier_total",
                       "Jobs that ran under the Fast determinism tier");
  QueueWaitSeconds =
      Registry.histogram("prdnn_engine_queue_wait_seconds", Lat,
                         "Seconds from submit to worker pickup");
  JobSeconds = Registry.histogram("prdnn_engine_job_seconds", Lat,
                                  "Seconds of repair execution per job");

  SweepAttempts = Registry.counter("prdnn_job_sweep_attempts_total",
                                   "Per-layer repair attempts executed");
  JacobianSeconds =
      Registry.histogram("prdnn_job_jacobian_seconds", Lat,
                         "Jacobian-phase seconds per sweep attempt");
  LpSeconds = Registry.histogram("prdnn_job_lp_seconds", Lat,
                                 "LP-phase seconds per sweep attempt");
  LinRegionsSeconds =
      Registry.histogram("prdnn_job_linregions_seconds", Lat,
                         "LinRegions-phase seconds per sweep attempt");

  LpIterations = Registry.counter("prdnn_lp_iterations_total",
                                  "Simplex iterations, winning attempts");
  LpRefactors = Registry.counter("prdnn_lp_refactors_total",
                                 "Basis refactorizations, winning attempts");
  LpPricingSeconds = Registry.counter("prdnn_lp_pricing_seconds_total",
                                      "Pricing kernel seconds");
  LpFtranSeconds =
      Registry.counter("prdnn_lp_ftran_seconds_total", "FTRAN kernel seconds");
  LpBtranSeconds =
      Registry.counter("prdnn_lp_btran_seconds_total", "BTRAN kernel seconds");
  LpRatioSeconds = Registry.counter("prdnn_lp_ratio_seconds_total",
                                    "Ratio-test kernel seconds");
  LpUpdateSeconds = Registry.counter("prdnn_lp_update_seconds_total",
                                     "Eta-update kernel seconds");
  LpRefactorSeconds = Registry.counter("prdnn_lp_refactor_seconds_total",
                                       "Refactorization kernel seconds");
}

void Telemetry::reset() {
  Registry.reset();
  Trace.clear();
}

} // namespace obs
} // namespace prdnn
