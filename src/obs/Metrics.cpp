//===- obs/Metrics.cpp - metrics registry implementation ------------------===//

#include "obs/Metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace prdnn {
namespace obs {

namespace {

/// Round-trip-exact double formatting for the exposition output. %.17g
/// is exact for every finite double; integers render without noise via
/// the %g trailing-zero trim after a shortest-exact probe.
std::string formatDouble(double V) {
  char Buf[64];
  // Probe increasing precision until the text parses back bit-exact;
  // most metric values (integral counters) exit at the first probe.
  for (int Precision : {1, 6, 15, 17}) {
    std::snprintf(Buf, sizeof(Buf), "%.*g", Precision, V);
    if (std::strtod(Buf, nullptr) == V)
      return Buf;
  }
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  return Buf;
}

} // namespace

std::uint32_t threadOrdinal() {
  static std::atomic<std::uint32_t> Next{0};
  thread_local std::uint32_t Id = Next.fetch_add(1, std::memory_order_relaxed);
  return Id;
}

const char *toString(MetricType Type) {
  switch (Type) {
  case MetricType::Counter:
    return "counter";
  case MetricType::Gauge:
    return "gauge";
  case MetricType::Histogram:
    return "histogram";
  }
  return "unknown";
}

//===----------------------------------------------------------------------===//
// Counter / Gauge
//===----------------------------------------------------------------------===//

void Counter::add(double Delta) {
  auto &Cell = Cells[threadOrdinal() % kShards].V;
  // CAS loop instead of fetch_add: atomic<double>::fetch_add is C++20
  // and still lowers to a CAS loop on most targets anyway.
  double Cur = Cell.load(std::memory_order_relaxed);
  while (!Cell.compare_exchange_weak(Cur, Cur + Delta,
                                     std::memory_order_relaxed,
                                     std::memory_order_relaxed))
    ;
}

double Counter::value() const {
  double Total = 0.0;
  for (const auto &Cell : Cells)
    Total += Cell.V.load(std::memory_order_relaxed);
  return Total;
}

void Counter::reset() {
  for (auto &Cell : Cells)
    Cell.V.store(0.0, std::memory_order_relaxed);
}

void Gauge::add(double Delta) {
  double Cur = V.load(std::memory_order_relaxed);
  while (!V.compare_exchange_weak(Cur, Cur + Delta, std::memory_order_relaxed,
                                  std::memory_order_relaxed))
    ;
}

//===----------------------------------------------------------------------===//
// HistogramSnapshot
//===----------------------------------------------------------------------===//

std::uint64_t HistogramSnapshot::count() const {
  std::uint64_t Total = 0;
  for (std::uint64_t C : Counts)
    Total += C;
  return Total;
}

double HistogramSnapshot::quantile(double Q) const {
  const std::uint64_t Total = count();
  if (Total == 0 || Counts.empty())
    return 0.0;
  Q = std::min(std::max(Q, 0.0), 1.0);
  // Nearest-rank: the smallest rank whose cumulative count covers Q.
  const std::uint64_t Rank =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(
                                     std::ceil(Q * static_cast<double>(Total))));
  std::uint64_t Cum = 0;
  for (std::size_t I = 0; I < Counts.size(); ++I) {
    const std::uint64_t Prev = Cum;
    Cum += Counts[I];
    if (Rank > Cum)
      continue;
    if (I >= Edges.size()) // Overflow bucket: no finite upper bound.
      return Edges.empty() ? 0.0 : Edges.back();
    const double Lo = I == 0 ? 0.0 : Edges[I - 1];
    const double Hi = Edges[I];
    const double Frac = static_cast<double>(Rank - Prev) /
                        static_cast<double>(Counts[I]);
    return Lo + (Hi - Lo) * Frac;
  }
  return Edges.empty() ? 0.0 : Edges.back();
}

bool HistogramSnapshot::merge(const HistogramSnapshot &Other) {
  // A default-constructed accumulator adopts the first operand's
  // bucket layout (the fleet benches' parent-side merge loop).
  if (Edges.empty() && Counts.empty() && Sum == 0.0)
    Edges = Other.Edges;
  if (Edges != Other.Edges)
    return false;
  if (Counts.size() != Other.Counts.size()) {
    if (Counts.empty() && count() == 0)
      Counts.assign(Other.Counts.size(), 0);
    else
      return false;
  }
  for (std::size_t I = 0; I < Counts.size(); ++I)
    Counts[I] += Other.Counts[I];
  Sum += Other.Sum;
  return true;
}

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

Histogram::Histogram(std::vector<double> Edges) : EdgesV(std::move(Edges)) {
  std::sort(EdgesV.begin(), EdgesV.end());
  EdgesV.erase(std::unique(EdgesV.begin(), EdgesV.end()), EdgesV.end());
  const std::size_t NumBuckets = EdgesV.size() + 1;
  for (auto &S : Shards)
    S.Buckets = std::make_unique<std::atomic<std::uint64_t>[]>(NumBuckets);
}

void Histogram::observe(double Value) {
  // First bucket with Value <= edge; `le` convention means an exact
  // edge hit belongs to that edge's bucket.
  const std::size_t Bucket =
      std::lower_bound(EdgesV.begin(), EdgesV.end(), Value) - EdgesV.begin();
  auto &S = Shards[threadOrdinal() % kShards];
  S.Buckets[Bucket].fetch_add(1, std::memory_order_relaxed);
  double Cur = S.Sum.load(std::memory_order_relaxed);
  while (!S.Sum.compare_exchange_weak(Cur, Cur + Value,
                                      std::memory_order_relaxed,
                                      std::memory_order_relaxed))
    ;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot Snap;
  Snap.Edges = EdgesV;
  Snap.Counts.assign(EdgesV.size() + 1, 0);
  for (const auto &S : Shards) {
    for (std::size_t I = 0; I < Snap.Counts.size(); ++I)
      Snap.Counts[I] += S.Buckets[I].load(std::memory_order_relaxed);
    Snap.Sum += S.Sum.load(std::memory_order_relaxed);
  }
  return Snap;
}

void Histogram::reset() {
  for (auto &S : Shards) {
    for (std::size_t I = 0; I < EdgesV.size() + 1; ++I)
      S.Buckets[I].store(0, std::memory_order_relaxed);
    S.Sum.store(0.0, std::memory_order_relaxed);
  }
}

std::vector<double> defaultLatencyBuckets() {
  return {1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
          1e-1, 2.5e-1, 5e-1, 1.0,  2.5,    5.0,  10.0, 30.0,   60.0};
}

//===----------------------------------------------------------------------===//
// MetricsSnapshot
//===----------------------------------------------------------------------===//

const MetricSample *MetricsSnapshot::find(std::string_view Name) const {
  for (const MetricSample &S : Samples)
    if (S.Name == Name)
      return &S;
  return nullptr;
}

double MetricsSnapshot::value(std::string_view Name) const {
  const MetricSample *S = find(Name);
  return S ? S->Value : 0.0;
}

std::string MetricsSnapshot::renderPrometheus() const {
  std::string Out;
  Out.reserve(Samples.size() * 96);
  char Buf[64];
  for (const MetricSample &S : Samples) {
    if (!S.Help.empty()) {
      Out += "# HELP ";
      Out += S.Name;
      Out += ' ';
      Out += S.Help;
      Out += '\n';
    }
    Out += "# TYPE ";
    Out += S.Name;
    Out += ' ';
    Out += toString(S.Type);
    Out += '\n';
    if (S.Type != MetricType::Histogram) {
      Out += S.Name;
      Out += ' ';
      Out += formatDouble(S.Value);
      Out += '\n';
      continue;
    }
    // Histogram series: cumulative buckets, then _sum and _count.
    std::uint64_t Cum = 0;
    for (std::size_t I = 0; I < S.Hist.Counts.size(); ++I) {
      Cum += S.Hist.Counts[I];
      Out += S.Name;
      Out += "_bucket{le=\"";
      Out += I < S.Hist.Edges.size() ? formatDouble(S.Hist.Edges[I])
                                     : std::string("+Inf");
      Out += "\"} ";
      std::snprintf(Buf, sizeof(Buf), "%" PRIu64, Cum);
      Out += Buf;
      Out += '\n';
    }
    Out += S.Name;
    Out += "_sum ";
    Out += formatDouble(S.Hist.Sum);
    Out += '\n';
    Out += S.Name;
    Out += "_count ";
    std::snprintf(Buf, sizeof(Buf), "%" PRIu64, S.Hist.count());
    Out += Buf;
    Out += '\n';
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// MetricsRegistry
//===----------------------------------------------------------------------===//

MetricsRegistry::Entry *MetricsRegistry::findEntry(const std::string &Name) {
  for (Entry &E : Entries)
    if (E.Name == Name)
      return &E;
  return nullptr;
}

Counter *MetricsRegistry::counter(const std::string &Name, std::string Help) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Entry *E = findEntry(Name))
    return E->Type == MetricType::Counter ? E->C.get() : nullptr;
  Entry E;
  E.Name = Name;
  E.Help = std::move(Help);
  E.Type = MetricType::Counter;
  E.C = std::make_unique<Counter>();
  Counter *Handle = E.C.get();
  Entries.push_back(std::move(E));
  return Handle;
}

Gauge *MetricsRegistry::gauge(const std::string &Name, std::string Help) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Entry *E = findEntry(Name))
    return E->Type == MetricType::Gauge ? E->G.get() : nullptr;
  Entry E;
  E.Name = Name;
  E.Help = std::move(Help);
  E.Type = MetricType::Gauge;
  E.G = std::make_unique<Gauge>();
  Gauge *Handle = E.G.get();
  Entries.push_back(std::move(E));
  return Handle;
}

Histogram *MetricsRegistry::histogram(const std::string &Name,
                                      std::vector<double> Edges,
                                      std::string Help) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Entry *E = findEntry(Name))
    return E->Type == MetricType::Histogram ? E->H.get() : nullptr;
  Entry E;
  E.Name = Name;
  E.Help = std::move(Help);
  E.Type = MetricType::Histogram;
  E.H = std::make_unique<Histogram>(std::move(Edges));
  Histogram *Handle = E.H.get();
  Entries.push_back(std::move(E));
  return Handle;
}

void MetricsRegistry::addCollector(const void *Owner, const std::string &Name,
                                   MetricType Type, std::string Help,
                                   std::function<double()> Sample) {
  if (Owner == nullptr || !Sample || Type == MetricType::Histogram)
    return;
  std::lock_guard<std::mutex> Lock(Mutex);
  if (findEntry(Name) != nullptr)
    return;
  Entry E;
  E.Name = Name;
  E.Help = std::move(Help);
  E.Type = Type;
  E.Owner = Owner;
  E.Sample = std::move(Sample);
  Entries.push_back(std::move(E));
}

void MetricsRegistry::addResetHook(const void *Owner,
                                   std::function<void()> Hook) {
  if (Owner == nullptr || !Hook)
    return;
  std::lock_guard<std::mutex> Lock(Mutex);
  ResetHooks.emplace_back(Owner, std::move(Hook));
}

void MetricsRegistry::removeOwner(const void *Owner) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Entries.erase(std::remove_if(Entries.begin(), Entries.end(),
                               [Owner](const Entry &E) {
                                 return E.Owner == Owner;
                               }),
                Entries.end());
  ResetHooks.erase(std::remove_if(ResetHooks.begin(), ResetHooks.end(),
                                  [Owner](const auto &P) {
                                    return P.first == Owner;
                                  }),
                   ResetHooks.end());
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot Snap;
  std::lock_guard<std::mutex> Lock(Mutex);
  Snap.Samples.reserve(Entries.size());
  for (const Entry &E : Entries) {
    MetricSample S;
    S.Name = E.Name;
    S.Help = E.Help;
    S.Type = E.Type;
    if (E.Sample)
      S.Value = E.Sample();
    else if (E.C)
      S.Value = E.C->value();
    else if (E.G)
      S.Value = E.G->value();
    else if (E.H)
      S.Hist = E.H->snapshot();
    Snap.Samples.push_back(std::move(S));
  }
  return Snap;
}

void MetricsRegistry::reset() {
  std::vector<std::function<void()>> Hooks;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    for (Entry &E : Entries) {
      if (E.C)
        E.C->reset();
      else if (E.G)
        E.G->reset();
      else if (E.H)
        E.H->reset();
    }
    Hooks.reserve(ResetHooks.size());
    for (const auto &P : ResetHooks)
      Hooks.push_back(P.second);
  }
  // Hooks run outside the registry lock: they reach back into
  // components (engine, service) whose own locks may wrap registry
  // calls elsewhere.
  for (const auto &Hook : Hooks)
    Hook();
}

} // namespace obs
} // namespace prdnn
