//===- obs/Metrics.h - metrics registry for the serving stack --*- C++ -*-===//
///
/// \file
/// The unified observability layer's metrics half: named counters,
/// gauges, and fixed-bucket histograms behind one MetricsRegistry, with
/// a coherent point-in-time snapshot() and Prometheus-style text
/// exposition. The per-job span recorder lives in obs/Trace.h; the
/// pre-wired handle bundle the engine/serve/rpc tiers share is
/// obs/Telemetry.h.
///
/// Design constraints, in priority order:
///
///  1. *Inert*: recording a metric never perturbs repair results. All
///     instruments are pure side-channels - plain atomic accumulation,
///     no allocation, no locks on the record path (Counter/Histogram
///     shard their cells per thread), so tracing on vs off is
///     bit-for-bit identical (test-enforced, tests/obs_test.cpp).
///  2. *Concurrent*: record from any thread, snapshot/reset from any
///     other, under TSan. A snapshot taken during active jobs is
///     internally coherent per instrument (a histogram's count always
///     equals the sum of its buckets) and monotone across successive
///     snapshots; cross-instrument skew of in-flight increments is
///     documented, not forbidden.
///  3. *Uniform reset*: MetricsRegistry::reset() zeroes every owned
///     instrument and runs the registered reset hooks, so the external
///     counters mirrored by collectors (cache, store, admission,
///     registry) reset through the same single call - the fix for the
///     pre-obs asymmetry where clearCache() reset cache stats but
///     queue/admission counters had no reset path.
///
/// Naming scheme (see src/obs/README.md): prdnn_<tier>_<what>[_<unit>]
/// with Prometheus conventions - monotonic counters end in _total,
/// histograms carry their unit (_seconds), gauges are bare. Names are
/// flat (no labels); the only generated label is the histogram
/// exposition's `le`.
///
//===----------------------------------------------------------------------===//

#ifndef PRDNN_OBS_METRICS_H
#define PRDNN_OBS_METRICS_H

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace prdnn {
namespace obs {

/// Small dense id of the calling thread (assigned on first use,
/// monotonic per process): the shard selector for Counter/Histogram
/// cells and the `tid` of trace events - stable for a thread's
/// lifetime, unlike std::thread::id, and small enough to print.
std::uint32_t threadOrdinal();

enum class MetricType : std::uint8_t { Counter, Gauge, Histogram };

const char *toString(MetricType Type);

/// Monotonic counter, thread-sharded so concurrent add() calls do not
/// contend on one cache line. Double-valued on purpose: seconds totals
/// (e.g. cumulative LP kernel time) are counters too.
class Counter {
public:
  static constexpr std::size_t kShards = 16;

  void add(double Delta = 1.0);
  void inc() { add(1.0); }

  /// Sum over shards. Concurrent with add(); an in-flight add may or
  /// may not be included (each shard read is atomic).
  double value() const;

  void reset();

private:
  struct alignas(64) Cell {
    std::atomic<double> V{0.0};
  };
  std::array<Cell, kShards> Cells;
};

/// Last-writer-wins instantaneous value (queue depth, bytes held).
class Gauge {
public:
  void set(double Value) { V.store(Value, std::memory_order_relaxed); }
  void add(double Delta);
  double value() const { return V.load(std::memory_order_relaxed); }
  void reset() { set(0.0); }

private:
  std::atomic<double> V{0.0};
};

/// One decoded histogram observation set: fixed upper-bound edges plus
/// an overflow bucket, with *non-cumulative* per-bucket counts (the
/// Prometheus exposition cumulates at render time). The merge/quantile
/// members are what the fleet benches use to combine per-process
/// latency histograms without shipping raw samples.
struct HistogramSnapshot {
  /// Finite bucket upper bounds, ascending. A value v lands in the
  /// first bucket with v <= edge (Prometheus `le` convention - a value
  /// exactly on an edge belongs to that edge's bucket), else overflow.
  std::vector<double> Edges;
  /// Per-bucket counts, size Edges.size() + 1 (last = overflow).
  std::vector<std::uint64_t> Counts;
  double Sum = 0.0;

  std::uint64_t count() const;

  /// Quantile estimate at \p Q in [0, 1]: nearest-rank bucket walk with
  /// linear interpolation inside the bucket (lower bound 0 for the
  /// first bucket - observations are assumed non-negative). An
  /// overflow-bucket rank clamps to the last finite edge. 0 on empty.
  double quantile(double Q) const;

  /// Bucket-wise accumulate of \p Other into this. False (and no
  /// change) when the edge vectors differ - merging is only defined
  /// over one bucket preset.
  bool merge(const HistogramSnapshot &Other);
};

/// Fixed-bucket histogram, thread-sharded like Counter. Bucket edges
/// are immutable after construction; observe() is two relaxed atomic
/// updates on the caller's shard.
class Histogram {
public:
  explicit Histogram(std::vector<double> Edges);

  void observe(double Value);

  HistogramSnapshot snapshot() const;

  const std::vector<double> &edges() const { return EdgesV; }

  void reset();

private:
  static constexpr std::size_t kShards = 8;
  struct alignas(64) Shard {
    /// Edges + 1 buckets; storage sized at construction.
    std::unique_ptr<std::atomic<std::uint64_t>[]> Buckets;
    std::atomic<double> Sum{0.0};
  };
  std::vector<double> EdgesV;
  std::array<Shard, kShards> Shards;
};

/// Default latency buckets (seconds), log-spaced 100us..60s: shared by
/// the engine's queue-wait/job-duration histograms and the fleet
/// benches, so per-process histograms merge and p50/p95/p99 stay
/// comparable across BENCH_*.json files.
std::vector<double> defaultLatencyBuckets();

/// One named metric inside a MetricsSnapshot.
struct MetricSample {
  std::string Name;
  std::string Help;
  MetricType Type = MetricType::Counter;
  /// Counter/Gauge value (unused for histograms).
  double Value = 0.0;
  /// Histogram payload (empty otherwise).
  HistogramSnapshot Hist;
};

/// Point-in-time view of every metric in a registry, in registration
/// order (so exposition output is deterministic). Plain data: safe to
/// ship over the wire (rpc/Wire.h MetricsReply) or hold across the
/// registry's lifetime.
struct MetricsSnapshot {
  std::vector<MetricSample> Samples;

  const MetricSample *find(std::string_view Name) const;

  /// Counter/gauge value by name; 0 when absent (histograms: use
  /// find()->Hist).
  double value(std::string_view Name) const;

  /// Prometheus text exposition format: `# HELP` / `# TYPE` preamble
  /// per metric, histogram buckets as cumulative `_bucket{le="..."}`
  /// series plus `_sum` / `_count`. Doubles print round-trip exact.
  std::string renderPrometheus() const;
};

/// See the file comment. Handles returned by counter()/gauge()/
/// histogram() are stable for the registry's lifetime and safe to use
/// from any thread. Registration is idempotent by name (the existing
/// instrument is returned when name and type match; a name reused with
/// a different type returns null - a wiring bug surfaced as a no-op
/// handle rather than UB).
class MetricsRegistry {
public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry &) = delete;
  MetricsRegistry &operator=(const MetricsRegistry &) = delete;

  Counter *counter(const std::string &Name, std::string Help = "");
  Gauge *gauge(const std::string &Name, std::string Help = "");
  Histogram *histogram(const std::string &Name, std::vector<double> Edges,
                       std::string Help = "");

  /// Registers a callback-sampled metric mirroring an external counter
  /// or gauge (cache stats, admission depth, ...): \p Sample is called
  /// at snapshot() time. \p Owner tags the collector for removeOwner()
  /// - a component registers its collectors with itself as owner and
  /// removes them in its destructor, so a registry outliving the
  /// component never samples freed state. Duplicate names are ignored.
  void addCollector(const void *Owner, const std::string &Name,
                    MetricType Type, std::string Help,
                    std::function<double()> Sample);

  /// Registers a hook run by reset() (after zeroing owned
  /// instruments): how external counters mirrored by collectors join
  /// the uniform reset path. Same ownership discipline as collectors.
  void addResetHook(const void *Owner, std::function<void()> Hook);

  /// Drops every collector and reset hook registered under \p Owner.
  void removeOwner(const void *Owner);

  /// Coherent point-in-time view (see the file comment's concurrency
  /// contract). Safe concurrently with recording, registration, and
  /// running jobs.
  MetricsSnapshot snapshot() const;

  std::string renderPrometheus() const { return snapshot().renderPrometheus(); }

  /// The uniform reset: zeroes every owned counter/gauge/histogram,
  /// then runs every reset hook (outside the registry lock), so one
  /// call cleans the engine queue, admission, cache, and store
  /// counters alike before a measurement phase.
  void reset();

private:
  struct Entry {
    std::string Name;
    std::string Help;
    MetricType Type = MetricType::Counter;
    std::unique_ptr<Counter> C;
    std::unique_ptr<Gauge> G;
    std::unique_ptr<Histogram> H;
    /// Collector entries: non-null owner + sampling callback.
    const void *Owner = nullptr;
    std::function<double()> Sample;
  };

  Entry *findEntry(const std::string &Name);

  mutable std::mutex Mutex;
  /// Registration order = exposition order.
  std::vector<Entry> Entries;
  std::vector<std::pair<const void *, std::function<void()>>> ResetHooks;
};

} // namespace obs
} // namespace prdnn

#endif // PRDNN_OBS_METRICS_H
