//===- support/Table.h - aligned text tables for bench output --*- C++ -*-===//
///
/// \file
/// Formats the paper-style result tables printed by the bench binaries
/// (Tables 1-4) plus small formatting helpers that mimic the paper's
/// rendering of durations ("1m39.0s") and percentages.
///
//===----------------------------------------------------------------------===//

#ifndef PRDNN_SUPPORT_TABLE_H
#define PRDNN_SUPPORT_TABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace prdnn {

/// Collects rows of strings and prints them with aligned columns.
class TablePrinter {
public:
  explicit TablePrinter(std::vector<std::string> Headers)
      : Headers(std::move(Headers)) {}

  void addRow(std::vector<std::string> Row);

  /// Prints the table, a header separator, and all rows to \p Os.
  void print(std::ostream &Os) const;

private:
  std::vector<std::string> Headers;
  std::vector<std::vector<std::string>> Rows;
};

/// Renders a duration the way the paper does: "13.4s", "2m50.8s",
/// "1h22m18.7s".
std::string formatDuration(double Seconds);

/// Renders a ratio as a percentage with \p Digits fractional digits.
std::string formatPercent(double Fraction, int Digits = 1);

/// Fixed-precision double rendering.
std::string formatDouble(double Value, int Digits = 2);

} // namespace prdnn

#endif // PRDNN_SUPPORT_TABLE_H
