//===- support/Error.h - fatal errors and unreachable markers --*- C++ -*-===//
///
/// \file
/// Programmatic-error helpers in the spirit of llvm_unreachable and
/// report_fatal_error. The library does not use exceptions; recoverable
/// conditions are reported through status enums (e.g. lp::SolveStatus),
/// while invariant violations abort through these helpers.
///
//===----------------------------------------------------------------------===//

#ifndef PRDNN_SUPPORT_ERROR_H
#define PRDNN_SUPPORT_ERROR_H

namespace prdnn {

/// Prints \p Message to stderr and aborts. Used for invariant violations
/// that must be diagnosed even in builds without assertions.
[[noreturn]] void fatalError(const char *Message);

/// Internal hook behind PRDNN_UNREACHABLE.
[[noreturn]] void unreachableInternal(const char *Message, const char *File,
                                      unsigned Line);

} // namespace prdnn

/// Marks a point in control flow that must never execute.
#define PRDNN_UNREACHABLE(MSG)                                                 \
  ::prdnn::unreachableInternal(MSG, __FILE__, __LINE__)

#endif // PRDNN_SUPPORT_ERROR_H
