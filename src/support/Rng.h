//===- support/Rng.h - deterministic random number generation --*- C++ -*-===//
///
/// \file
/// SplitMix64-based RNG. All randomness in the library flows through this
/// class so that every experiment in bench/ is exactly reproducible from
/// its seed (cf. the paper's use of BenchExec for reproducibility).
///
//===----------------------------------------------------------------------===//

#ifndef PRDNN_SUPPORT_RNG_H
#define PRDNN_SUPPORT_RNG_H

#include <cstdint>
#include <vector>

namespace prdnn {

/// Deterministic, seedable pseudo-random generator (SplitMix64).
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  /// Next raw 64-bit value.
  uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [Lo, Hi).
  double uniform(double Lo, double Hi);

  /// Standard normal via Box-Muller (caches the spare deviate).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double Mean, double Stddev);

  /// Uniform integer in the inclusive range [Lo, Hi].
  int uniformInt(int Lo, int Hi);

  /// Bernoulli draw with success probability \p P.
  bool bernoulli(double P);

  /// Derives an independent child generator; advances this one.
  Rng fork();

  /// Fisher-Yates shuffle.
  template <typename T> void shuffle(std::vector<T> &Values) {
    for (int I = static_cast<int>(Values.size()) - 1; I > 0; --I) {
      int J = uniformInt(0, I);
      std::swap(Values[I], Values[J]);
    }
  }

private:
  uint64_t State;
  bool HasSpare = false;
  double Spare = 0.0;
};

} // namespace prdnn

#endif // PRDNN_SUPPORT_RNG_H
