//===- support/Parallel.h - thread pool and parallel-for -------*- C++ -*-===//
///
/// \file
/// A small persistent thread pool behind the parallelFor primitives:
/// the execution substrate of the batched repair engine (blocked GEMM,
/// batch Jacobians, parallel constraint assembly and violation scans).
///
/// Design rules, relied on throughout the library:
///  - Bodies write only to disjoint output slots, and every slot's
///    computation is independent of the partitioning, so all results
///    are bit-for-bit identical for any thread count (1 included).
///  - The calling thread participates in the loop; a pool of size 1
///    (or a nested parallelFor) degrades to a plain sequential loop.
///  - An exception thrown by a body cancels the remaining chunks and is
///    rethrown on the calling thread once the loop has drained; the
///    pool stays usable afterwards.
///
/// The global pool is sized from the PRDNN_NUM_THREADS environment
/// variable when set to a positive integer, otherwise from
/// std::thread::hardware_concurrency(), and can be resized at runtime
/// with setGlobalThreadCount (e.g. to compare 1-thread vs N-thread
/// runs, or from an application's --threads option).
///
//===----------------------------------------------------------------------===//

#ifndef PRDNN_SUPPORT_PARALLEL_H
#define PRDNN_SUPPORT_PARALLEL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace prdnn {

/// Persistent worker pool; see the file comment for the contract.
class ThreadPool {
public:
  /// Spawns \p NumThreads - 1 workers (the calling thread is the last
  /// "worker"); NumThreads < 1 is clamped to 1.
  explicit ThreadPool(int NumThreads);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  int numThreads() const { return NumThreadsTotal; }

  /// Runs \p Body(ChunkBegin, ChunkEnd) over a disjoint cover of
  /// [Begin, End) in chunks of about \p Grain indices (Grain <= 0
  /// picks one automatically). Blocks until every chunk finished;
  /// rethrows the first body exception.
  void forRanges(std::int64_t Begin, std::int64_t End, std::int64_t Grain,
                 const std::function<void(std::int64_t, std::int64_t)> &Body);

private:
  struct Loop;

  void workerMain();
  static void runChunks(Loop &L);

  int NumThreadsTotal;
  std::vector<std::thread> Workers;
  std::mutex Mutex;
  std::condition_variable WorkCv, DoneCv;
  std::mutex RunMutex;
  Loop *Current = nullptr;
  std::uint64_t Generation = 0;
  bool Stopping = false;
};

/// Thread count the global pool is created with: PRDNN_NUM_THREADS when
/// set to a positive integer, else std::thread::hardware_concurrency()
/// (at least 1).
int defaultThreadCount();

/// Current size of the global pool (creating it on first use).
int globalThreadCount();

/// Replaces the global pool with one of \p NumThreads threads (clamped
/// to >= 1). Safe against concurrent parallelFor callers: the global
/// pool is reference-counted, so in-flight loops finish on the pool
/// they started with (which is destroyed when the last of them
/// returns) while new loops pick up the resized pool. During the
/// handover both pools may briefly run loops concurrently.
void setGlobalThreadCount(int NumThreads);

/// Chunked parallel loop over [Begin, End) on the global pool; chunks
/// are contiguous, disjoint, and in ascending order within each call of
/// \p Body. \p Grain <= 0 picks a chunk size automatically.
void parallelForRanges(std::int64_t Begin, std::int64_t End,
                       const std::function<void(std::int64_t, std::int64_t)>
                           &Body,
                       std::int64_t Grain = 0);

/// Per-index parallel loop over [Begin, End) on the global pool.
template <typename FnT>
void parallelFor(std::int64_t Begin, std::int64_t End, FnT &&Body) {
  parallelForRanges(Begin, End,
                    [&Body](std::int64_t ChunkBegin, std::int64_t ChunkEnd) {
                      for (std::int64_t I = ChunkBegin; I < ChunkEnd; ++I)
                        Body(I);
                    });
}

} // namespace prdnn

#endif // PRDNN_SUPPORT_PARALLEL_H
