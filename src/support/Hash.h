//===- support/Hash.h - streaming 128-bit content hashing -----*- C++ -*-===//
///
/// \file
/// The hashing primitive behind the content-addressed artifact cache
/// (cache/ArtifactCache.h): a streaming 128-bit digest built from two
/// independent 64-bit lanes (FNV-1a over 64-bit words, and a
/// hash_combine-style accumulator), each finalized with a splitmix64
/// avalanche mixed with the stream length.
///
/// The digest is a pure function of the byte stream: the same bytes in
/// the same order always produce the same Digest128, across runs,
/// threads, and platforms of equal endianness. Cache correctness relies
/// on 128-bit collisions being negligible: two different streams would
/// have to collide in both lanes simultaneously.
///
//===----------------------------------------------------------------------===//

#ifndef PRDNN_SUPPORT_HASH_H
#define PRDNN_SUPPORT_HASH_H

#include <cstdint>
#include <cstring>
#include <string>

namespace prdnn {

/// 128-bit content digest; see Hasher.
struct Digest128 {
  std::uint64_t Hi = 0;
  std::uint64_t Lo = 0;

  bool operator==(const Digest128 &Other) const = default;
};

/// Streaming hasher producing a Digest128; see the file comment.
class Hasher {
public:
  Hasher() = default;

  /// Absorbs one 64-bit word into both lanes.
  void u64(std::uint64_t V) {
    // Lane A: FNV-1a over 64-bit words.
    A = (A ^ V) * 0x100000001b3ull;
    // Lane B: boost-style hash_combine with the golden-ratio constant.
    B ^= V + 0x9e3779b97f4a7c15ull + (B << 6) + (B >> 2);
    Len += 8;
  }

  void i64(std::int64_t V) { u64(static_cast<std::uint64_t>(V)); }
  void i32(int V) {
    u64(static_cast<std::uint64_t>(static_cast<std::uint32_t>(V)));
  }

  /// Absorbs the IEEE-754 bit pattern (so -0.0 != 0.0 and every NaN
  /// payload is distinguished: "same bits" is exactly the cache's
  /// determinism contract).
  void f64(double V) {
    std::uint64_t Bits;
    std::memcpy(&Bits, &V, sizeof(Bits));
    u64(Bits);
  }

  void doubles(const double *Data, std::size_t Count) {
    for (std::size_t I = 0; I < Count; ++I)
      f64(Data[I]);
  }

  /// Absorbs raw bytes, 8 at a time with a zero-padded tail (the
  /// stream length disambiguates paddings).
  void bytes(const void *Data, std::size_t Size) {
    const auto *P = static_cast<const unsigned char *>(Data);
    while (Size >= 8) {
      std::uint64_t W;
      std::memcpy(&W, P, 8);
      u64(W);
      P += 8;
      Size -= 8;
    }
    if (Size > 0) {
      std::uint64_t W = 0;
      std::memcpy(&W, P, Size);
      u64(W);
      Len -= 8 - static_cast<std::uint64_t>(Size); // count actual bytes
    }
  }

  void str(const std::string &S) {
    u64(S.size());
    bytes(S.data(), S.size());
  }

  /// Finalizes (without consuming the hasher state; more input may be
  /// absorbed and digest() taken again).
  Digest128 digest() const {
    return {mix(A ^ Len), mix(B + 0x632be59bd9b4e019ull * (Len + 1))};
  }

private:
  /// splitmix64 finalizer: full avalanche over one word.
  static std::uint64_t mix(std::uint64_t X) {
    X ^= X >> 30;
    X *= 0xbf58476d1ce4e5b9ull;
    X ^= X >> 27;
    X *= 0x94d049bb133111ebull;
    X ^= X >> 31;
    return X;
  }

  std::uint64_t A = 0xcbf29ce484222325ull; ///< FNV-1a offset basis
  std::uint64_t B = 0x9e3779b97f4a7c15ull;
  std::uint64_t Len = 0; ///< bytes absorbed, mixed into the digest
};

} // namespace prdnn

#endif // PRDNN_SUPPORT_HASH_H
