//===- support/Parallel.cpp -------------------------------------------------===//

#include "support/Parallel.h"

#include <algorithm>
#include <cstdlib>
#include <memory>

using namespace prdnn;

namespace {

/// True while the current thread is executing chunks of some loop;
/// nested parallelFor calls run inline to avoid pool deadlock.
thread_local bool InParallelRegion = false;

} // namespace

/// One in-flight parallel loop. Lives on the caller's stack; workers
/// register/deregister under the pool mutex so the caller can wait for
/// every participant to leave before returning.
struct ThreadPool::Loop {
  std::int64_t Begin = 0, End = 0, Chunk = 1;
  std::int64_t NumChunks = 0;
  std::atomic<std::int64_t> Next{0};
  const std::function<void(std::int64_t, std::int64_t)> *Body = nullptr;
  /// Workers currently inside runChunks (guarded by the pool mutex).
  int ActiveWorkers = 0;
  /// First exception thrown by a body (guarded by the pool mutex).
  std::exception_ptr Error;
  std::mutex *PoolMutex = nullptr;
};

ThreadPool::ThreadPool(int NumThreads)
    : NumThreadsTotal(std::max(1, NumThreads)) {
  Workers.reserve(static_cast<size_t>(NumThreadsTotal - 1));
  for (int I = 0; I < NumThreadsTotal - 1; ++I)
    Workers.emplace_back([this] { workerMain(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  WorkCv.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::runChunks(Loop &L) {
  bool WasInParallel = InParallelRegion;
  InParallelRegion = true;
  while (true) {
    std::int64_t C = L.Next.fetch_add(1, std::memory_order_relaxed);
    if (C >= L.NumChunks)
      break;
    std::int64_t ChunkBegin = L.Begin + C * L.Chunk;
    std::int64_t ChunkEnd = std::min(ChunkBegin + L.Chunk, L.End);
    try {
      (*L.Body)(ChunkBegin, ChunkEnd);
    } catch (...) {
      std::lock_guard<std::mutex> Lock(*L.PoolMutex);
      if (!L.Error)
        L.Error = std::current_exception();
      // Cancel the chunks nobody claimed yet.
      L.Next.store(L.NumChunks, std::memory_order_relaxed);
    }
  }
  InParallelRegion = WasInParallel;
}

void ThreadPool::workerMain() {
  std::uint64_t SeenGeneration = 0;
  std::unique_lock<std::mutex> Lock(Mutex);
  while (true) {
    WorkCv.wait(Lock, [&] {
      return Stopping || (Current && Generation != SeenGeneration);
    });
    if (Stopping)
      return;
    SeenGeneration = Generation;
    Loop *L = Current;
    ++L->ActiveWorkers;
    Lock.unlock();
    runChunks(*L);
    Lock.lock();
    if (--L->ActiveWorkers == 0)
      DoneCv.notify_all();
  }
}

void ThreadPool::forRanges(
    std::int64_t Begin, std::int64_t End, std::int64_t Grain,
    const std::function<void(std::int64_t, std::int64_t)> &Body) {
  std::int64_t Count = End - Begin;
  if (Count <= 0)
    return;
  if (NumThreadsTotal == 1 || Count == 1 || InParallelRegion) {
    // Sequential / nested fallback; still honors chunk granularity so a
    // chunk-order-sensitive caller sees the same chunks as the pool.
    // InParallelRegion is deliberately left as-is: a top-level loop
    // with a single item must not disable parallelism in nested calls
    // (e.g. keyPointSpec over one polytope still wants parallel
    // transforms inside).
    std::int64_t Chunk =
        Grain > 0 ? Grain
                  : std::max<std::int64_t>(1, Count / (NumThreadsTotal * 8));
    for (std::int64_t B = Begin; B < End; B += Chunk)
      Body(B, std::min(B + Chunk, End));
    return;
  }

  // One loop at a time; concurrent callers queue up here.
  std::lock_guard<std::mutex> RunLock(RunMutex);

  Loop L;
  L.Begin = Begin;
  L.End = End;
  L.Chunk = Grain > 0
                ? Grain
                : std::max<std::int64_t>(1, Count / (NumThreadsTotal * 8));
  L.NumChunks = (Count + L.Chunk - 1) / L.Chunk;
  L.Body = &Body;
  L.PoolMutex = &Mutex;

  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Current = &L;
    ++Generation;
  }
  WorkCv.notify_all();

  runChunks(L);

  std::unique_lock<std::mutex> Lock(Mutex);
  Current = nullptr;
  DoneCv.wait(Lock, [&] { return L.ActiveWorkers == 0; });
  std::exception_ptr Error = L.Error;
  Lock.unlock();
  if (Error)
    std::rethrow_exception(Error);
}

int prdnn::defaultThreadCount() {
  if (const char *Env = std::getenv("PRDNN_NUM_THREADS")) {
    int Parsed = std::atoi(Env);
    if (Parsed > 0)
      return Parsed;
  }
  unsigned Hardware = std::thread::hardware_concurrency();
  return Hardware == 0 ? 1 : static_cast<int>(Hardware);
}

namespace {

std::mutex GlobalPoolMutex;
std::shared_ptr<ThreadPool> GlobalPool;

/// Hands out a counted reference to the current global pool, creating
/// it on first use. Callers hold the reference for the duration of
/// their loop, so a concurrent setGlobalThreadCount never destroys a
/// pool that still has loops in flight (the old pool is torn down by
/// whichever thread drops the last reference, when all its workers are
/// idle again).
std::shared_ptr<ThreadPool> acquireGlobalPool() {
  std::lock_guard<std::mutex> Lock(GlobalPoolMutex);
  if (!GlobalPool)
    GlobalPool = std::make_shared<ThreadPool>(defaultThreadCount());
  return GlobalPool;
}

} // namespace

int prdnn::globalThreadCount() { return acquireGlobalPool()->numThreads(); }

void prdnn::setGlobalThreadCount(int NumThreads) {
  // Build the replacement outside the lock (thread spawning is slow),
  // then swap; the old pool dies when its last in-flight loop returns.
  auto NewPool = std::make_shared<ThreadPool>(std::max(1, NumThreads));
  std::shared_ptr<ThreadPool> Old;
  {
    std::lock_guard<std::mutex> Lock(GlobalPoolMutex);
    Old = std::move(GlobalPool);
    GlobalPool = std::move(NewPool);
  }
}

void prdnn::parallelForRanges(
    std::int64_t Begin, std::int64_t End,
    const std::function<void(std::int64_t, std::int64_t)> &Body,
    std::int64_t Grain) {
  // The shared_ptr keeps the pool alive across the whole loop even if
  // the global pool is swapped mid-flight.
  acquireGlobalPool()->forRanges(Begin, End, Grain, Body);
}
