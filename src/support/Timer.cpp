//===- support/Timer.cpp ---------------------------------------------------===//
// Header-only implementation; this TU anchors the library.

#include "support/Timer.h"
