//===- support/Error.cpp --------------------------------------------------===//

#include "support/Error.h"

#include <cstdio>
#include <cstdlib>

using namespace prdnn;

void prdnn::fatalError(const char *Message) {
  std::fprintf(stderr, "prdnn fatal error: %s\n", Message);
  std::abort();
}

void prdnn::unreachableInternal(const char *Message, const char *File,
                                unsigned Line) {
  std::fprintf(stderr, "UNREACHABLE executed at %s:%u: %s\n", File, Line,
               Message);
  std::abort();
}
