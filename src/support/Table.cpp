//===- support/Table.cpp ---------------------------------------------------===//

#include "support/Table.h"

#include <cassert>
#include <cmath>
#include <cstdio>

using namespace prdnn;

void TablePrinter::addRow(std::vector<std::string> Row) {
  assert(Row.size() == Headers.size() && "row width mismatch");
  Rows.push_back(std::move(Row));
}

void TablePrinter::print(std::ostream &Os) const {
  std::vector<size_t> Widths(Headers.size());
  for (size_t C = 0; C < Headers.size(); ++C)
    Widths[C] = Headers[C].size();
  for (const auto &Row : Rows)
    for (size_t C = 0; C < Row.size(); ++C)
      Widths[C] = std::max(Widths[C], Row[C].size());

  auto PrintRow = [&](const std::vector<std::string> &Row) {
    for (size_t C = 0; C < Row.size(); ++C) {
      Os << Row[C];
      if (C + 1 == Row.size())
        break;
      for (size_t Pad = Row[C].size(); Pad < Widths[C] + 2; ++Pad)
        Os << ' ';
    }
    Os << '\n';
  };

  PrintRow(Headers);
  size_t Total = 0;
  for (size_t C = 0; C < Widths.size(); ++C)
    Total += Widths[C] + (C + 1 == Widths.size() ? 0 : 2);
  for (size_t I = 0; I < Total; ++I)
    Os << '-';
  Os << '\n';
  for (const auto &Row : Rows)
    PrintRow(Row);
}

std::string prdnn::formatDuration(double Seconds) {
  char Buffer[64];
  if (Seconds < 0)
    Seconds = 0;
  int Whole = static_cast<int>(Seconds);
  int Hours = Whole / 3600;
  int Minutes = (Whole % 3600) / 60;
  double Rest = Seconds - Hours * 3600 - Minutes * 60;
  if (Hours > 0)
    std::snprintf(Buffer, sizeof(Buffer), "%dh%dm%.1fs", Hours, Minutes, Rest);
  else if (Minutes > 0)
    std::snprintf(Buffer, sizeof(Buffer), "%dm%.1fs", Minutes, Rest);
  else
    std::snprintf(Buffer, sizeof(Buffer), "%.1fs", Rest);
  return Buffer;
}

std::string prdnn::formatPercent(double Fraction, int Digits) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.*f", Digits, Fraction * 100.0);
  return Buffer;
}

std::string prdnn::formatDouble(double Value, int Digits) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.*f", Digits, Value);
  return Buffer;
}
