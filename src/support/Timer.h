//===- support/Timer.h - wall timing and phase profiling -------*- C++ -*-===//
///
/// \file
/// Timing utilities used to reproduce the paper's timing breakdowns
/// (Figure 7(b) and the RQ4 discussions): each repair records how long it
/// spent computing Jacobians, solving the LP, and doing everything else.
///
//===----------------------------------------------------------------------===//

#ifndef PRDNN_SUPPORT_TIMER_H
#define PRDNN_SUPPORT_TIMER_H

#include <chrono>
#include <map>
#include <string>

namespace prdnn {

/// Monotonic wall-clock stopwatch.
class WallTimer {
public:
  WallTimer() : Start(Clock::now()) {}

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  void reset() { Start = Clock::now(); }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

/// Accumulates named phase durations ("jacobian", "lp", ...).
class PhaseProfiler {
public:
  void add(const std::string &Phase, double Seconds) {
    Phases[Phase] += Seconds;
  }

  /// Total accumulated for \p Phase (0 if never recorded).
  double get(const std::string &Phase) const {
    auto It = Phases.find(Phase);
    return It == Phases.end() ? 0.0 : It->second;
  }

  /// Sum over all phases.
  double total() const {
    double Sum = 0.0;
    for (const auto &Entry : Phases)
      Sum += Entry.second;
    return Sum;
  }

  void clear() { Phases.clear(); }

  const std::map<std::string, double> &phases() const { return Phases; }

private:
  std::map<std::string, double> Phases;
};

/// RAII helper: adds the scope's duration to a profiler phase.
class ScopedPhase {
public:
  ScopedPhase(PhaseProfiler &Profiler, std::string Phase)
      : Profiler(Profiler), Phase(std::move(Phase)) {}
  ~ScopedPhase() { Profiler.add(Phase, Timer.seconds()); }

  ScopedPhase(const ScopedPhase &) = delete;
  ScopedPhase &operator=(const ScopedPhase &) = delete;

private:
  PhaseProfiler &Profiler;
  std::string Phase;
  WallTimer Timer;
};

} // namespace prdnn

#endif // PRDNN_SUPPORT_TIMER_H
