//===- support/Casting.h - LLVM-style isa/cast/dyn_cast --------*- C++ -*-===//
///
/// \file
/// Hand-rolled replacement for C++ RTTI in the style of LLVM's
/// llvm/Support/Casting.h. A class hierarchy opts in by exposing a kind
/// discriminator and `static bool classof(const Base *)` on each derived
/// class; see nn/Layer.h for the canonical use.
///
//===----------------------------------------------------------------------===//

#ifndef PRDNN_SUPPORT_CASTING_H
#define PRDNN_SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace prdnn {

/// Returns true if \p Val is an instance of \p To (per To::classof).
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

template <typename To, typename From>
  requires(!std::is_pointer_v<From>)
bool isa(const From &Val) {
  return To::classof(&Val);
}

/// Checked downcast; asserts that the cast is valid.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<To>() argument of incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<To>() argument of incompatible type");
  return static_cast<const To *>(Val);
}

template <typename To, typename From> To &cast(From &Val) {
  assert(isa<To>(Val) && "cast<To>() argument of incompatible type");
  return static_cast<To &>(Val);
}

template <typename To, typename From> const To &cast(const From &Val) {
  assert(isa<To>(Val) && "cast<To>() argument of incompatible type");
  return static_cast<const To &>(Val);
}

/// Checking downcast; returns null if \p Val is not a \p To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

} // namespace prdnn

#endif // PRDNN_SUPPORT_CASTING_H
