//===- support/Rng.cpp -----------------------------------------------------===//

#include "support/Rng.h"

#include <cassert>
#include <cmath>

using namespace prdnn;

uint64_t Rng::next() {
  // SplitMix64 (Steele, Lea, Flood 2014); passes BigCrush and is trivially
  // forkable, which is all we need for reproducible experiments.
  State += 0x9e3779b97f4a7c15ULL;
  uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double Lo, double Hi) {
  assert(Lo <= Hi && "empty uniform range");
  return Lo + (Hi - Lo) * uniform();
}

double Rng::normal() {
  if (HasSpare) {
    HasSpare = false;
    return Spare;
  }
  double U1 = uniform();
  double U2 = uniform();
  // Guard against log(0).
  if (U1 < 1e-300)
    U1 = 1e-300;
  double R = std::sqrt(-2.0 * std::log(U1));
  double Theta = 2.0 * M_PI * U2;
  Spare = R * std::sin(Theta);
  HasSpare = true;
  return R * std::cos(Theta);
}

double Rng::normal(double Mean, double Stddev) {
  return Mean + Stddev * normal();
}

int Rng::uniformInt(int Lo, int Hi) {
  assert(Lo <= Hi && "empty integer range");
  uint64_t Span = static_cast<uint64_t>(Hi) - static_cast<uint64_t>(Lo) + 1;
  return Lo + static_cast<int>(next() % Span);
}

bool Rng::bernoulli(double P) { return uniform() < P; }

Rng Rng::fork() { return Rng(next()); }
