//===- train/FineTune.cpp ------------------------------------------------------===//

#include "train/FineTune.h"

#include "support/Timer.h"

#include <cassert>

using namespace prdnn;

FineTuneResult prdnn::fineTune(const Network &Net, const Dataset &RepairSet,
                               const FineTuneOptions &Options, Rng &R) {
  assert(RepairSet.size() > 0 && "empty repair set");
  WallTimer Timer;
  FineTuneResult Result;
  Result.Tuned = Net;

  SgdOptions Sgd;
  Sgd.LearningRate = Options.LearningRate;
  Sgd.Momentum = Options.Momentum;
  Sgd.BatchSize = Options.BatchSize;
  Sgd.Epochs = 1;

  for (int Epoch = 0; Epoch < Options.MaxEpochs; ++Epoch) {
    if (accuracy(Result.Tuned, RepairSet.Inputs, RepairSet.Labels) >=
        1.0 - 1e-12) {
      Result.ReachedFullAccuracy = true;
      break;
    }
    if (Timer.seconds() > Options.TimeoutSeconds) {
      Result.TimedOut = true;
      break;
    }
    trainSgd(Result.Tuned, RepairSet, Sgd, R);
    ++Result.Epochs;
  }
  Result.RepairAccuracy =
      accuracy(Result.Tuned, RepairSet.Inputs, RepairSet.Labels);
  Result.ReachedFullAccuracy = Result.RepairAccuracy >= 1.0 - 1e-12;
  Result.Seconds = Timer.seconds();
  return Result;
}

ModifiedFineTuneResult
prdnn::modifiedFineTune(const Network &Net, const Dataset &RepairSet,
                        const ModifiedFineTuneOptions &Options, Rng &R) {
  assert(RepairSet.size() > 0 && "empty repair set");
  WallTimer Timer;

  // Reserve the holdout (25% by default), deterministically.
  std::vector<int> Order(static_cast<size_t>(RepairSet.size()));
  for (int I = 0; I < RepairSet.size(); ++I)
    Order[static_cast<size_t>(I)] = I;
  R.shuffle(Order);
  int HoldoutCount = std::max(
      1, static_cast<int>(Options.HoldoutFraction * RepairSet.size()));
  if (HoldoutCount >= RepairSet.size())
    HoldoutCount = RepairSet.size() - 1;
  Dataset Holdout, TrainSet;
  for (int I = 0; I < RepairSet.size(); ++I) {
    int Sample = Order[static_cast<size_t>(I)];
    if (I < HoldoutCount)
      Holdout.push(RepairSet.Inputs[Sample], RepairSet.Labels[Sample]);
    else
      TrainSet.push(RepairSet.Inputs[Sample], RepairSet.Labels[Sample]);
  }

  SgdOptions Sgd;
  Sgd.LearningRate = Options.LearningRate;
  Sgd.Momentum = Options.Momentum;
  Sgd.BatchSize = Options.BatchSize;
  Sgd.Epochs = 1;
  Sgd.OnlyLayer = Options.LayerIndex;
  Sgd.DriftPenaltyL1 = Options.PenaltyL1;
  Sgd.DriftPenaltyLInf = Options.PenaltyLInf;

  ModifiedFineTuneResult Result;
  Result.Tuned = Net;
  Network Best = Net;
  double BestHoldout = accuracy(Net, Holdout.Inputs, Holdout.Labels);

  for (int Epoch = 0; Epoch < Options.MaxEpochs; ++Epoch) {
    trainSgd(Result.Tuned, TrainSet, Sgd, R);
    ++Result.Epochs;
    double HoldoutAcc =
        accuracy(Result.Tuned, Holdout.Inputs, Holdout.Labels);
    if (HoldoutAcc > BestHoldout) {
      BestHoldout = HoldoutAcc;
      Best = Result.Tuned;
    } else if (HoldoutAcc < BestHoldout) {
      // "Stops once the accuracy on the holdout set begins to drop."
      break;
    }
  }
  Result.Tuned = std::move(Best);
  Result.HoldoutAccuracy = BestHoldout;
  Result.RepairAccuracy =
      accuracy(Result.Tuned, RepairSet.Inputs, RepairSet.Labels);
  Result.Seconds = Timer.seconds();
  return Result;
}
