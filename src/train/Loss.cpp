//===- train/Loss.cpp --------------------------------------------------------===//

#include "train/Loss.h"

#include <cassert>
#include <cmath>

using namespace prdnn;

double prdnn::crossEntropyLoss(const Vector &Logits, int Label) {
  assert(Label >= 0 && Label < Logits.size() && "label out of range");
  double Max = Logits[Logits.argmax()];
  double SumExp = 0.0;
  for (int I = 0; I < Logits.size(); ++I)
    SumExp += std::exp(Logits[I] - Max);
  return std::log(SumExp) - (Logits[Label] - Max);
}

double prdnn::crossEntropyLossGrad(const Vector &Logits, int Label,
                                   Vector &Grad) {
  assert(Label >= 0 && Label < Logits.size() && "label out of range");
  double Max = Logits[Logits.argmax()];
  double SumExp = 0.0;
  for (int I = 0; I < Logits.size(); ++I)
    SumExp += std::exp(Logits[I] - Max);
  Grad = Vector(Logits.size());
  for (int I = 0; I < Logits.size(); ++I)
    Grad[I] = std::exp(Logits[I] - Max) / SumExp;
  Grad[Label] -= 1.0;
  return std::log(SumExp) - (Logits[Label] - Max);
}
