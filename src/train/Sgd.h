//===- train/Sgd.h - minibatch SGD trainer ---------------------*- C++ -*-===//
///
/// \file
/// Minibatch SGD with momentum over softmax cross-entropy. Replaces the
/// PyTorch training loop the paper used to obtain its "buggy" networks
/// and to run the fine-tuning baselines. Deterministic given the Rng.
///
//===----------------------------------------------------------------------===//

#ifndef PRDNN_TRAIN_SGD_H
#define PRDNN_TRAIN_SGD_H

#include "nn/Network.h"
#include "support/Rng.h"

#include <vector>

namespace prdnn {

/// A labeled classification dataset.
struct Dataset {
  std::vector<Vector> Inputs;
  std::vector<int> Labels;

  int size() const { return static_cast<int>(Inputs.size()); }
  void push(Vector Input, int Label) {
    Inputs.push_back(std::move(Input));
    Labels.push_back(Label);
  }
  /// Appends all of \p Other.
  void append(const Dataset &Other);
};

struct SgdOptions {
  double LearningRate = 0.01;
  double Momentum = 0.9;
  int BatchSize = 16;
  int Epochs = 10;
  /// Optional: restrict updates to this layer only (used by MFT);
  /// -1 trains all parameterized layers.
  int OnlyLayer = -1;
  /// l1 penalty on the drift from the initial parameters of OnlyLayer
  /// (MFT's surrogate for its l0 penalty; only with OnlyLayer >= 0).
  double DriftPenaltyL1 = 0.0;
  /// l-infinity penalty on the same drift (subgradient step).
  double DriftPenaltyLInf = 0.0;
};

/// Per-epoch average loss trace returned by trainSgd.
struct TrainTrace {
  std::vector<double> EpochLoss;
};

/// Trains \p Net in place; returns the loss trace. Deterministic.
TrainTrace trainSgd(Network &Net, const Dataset &Data,
                    const SgdOptions &Options, Rng &R);

/// One forward/backward pass: accumulates d(loss)/d(params) for every
/// parameterized layer into \p Grads (indexed by layer index; sized by
/// the caller) and returns the loss.
double backprop(const Network &Net, const Vector &X, int Label,
                std::vector<std::vector<double>> &Grads);

} // namespace prdnn

#endif // PRDNN_TRAIN_SGD_H
