//===- train/Loss.h - classification losses --------------------*- C++ -*-===//
///
/// \file
/// Numerically-stable softmax cross-entropy, the loss used by the SGD
/// trainer and by the FT/MFT fine-tuning baselines of §7.
///
//===----------------------------------------------------------------------===//

#ifndef PRDNN_TRAIN_LOSS_H
#define PRDNN_TRAIN_LOSS_H

#include "linalg/Vector.h"

namespace prdnn {

/// -log softmax(Logits)[Label], computed stably.
double crossEntropyLoss(const Vector &Logits, int Label);

/// As crossEntropyLoss, also writing dLoss/dLogits into \p Grad.
double crossEntropyLossGrad(const Vector &Logits, int Label, Vector &Grad);

} // namespace prdnn

#endif // PRDNN_TRAIN_LOSS_H
