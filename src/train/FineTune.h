//===- train/FineTune.h - FT and MFT baselines (§7) ------------*- C++ -*-===//
///
/// \file
/// The two fine-tuning baselines the paper compares Provable Repair
/// against (§7, "Fine-Tuning Baselines"):
///
///  - FT [Sinitsin et al. 53]: gradient descent on *all* parameters,
///    run until every repair-set point is correctly classified (or an
///    epoch/time cap is hit - the paper's runs also time out).
///  - MFT (modified fine-tuning): (a) a single layer, (b) an added
///    penalty on the repair's size (the paper penalizes l0 and l-inf;
///    we use the standard l1 surrogate for l0), (c) a 25% holdout from
///    the repair set, (d) early-stops when holdout accuracy drops.
///    MFT does not reach full efficacy; it is a low-drawdown baseline,
///    not a repair algorithm.
///
//===----------------------------------------------------------------------===//

#ifndef PRDNN_TRAIN_FINETUNE_H
#define PRDNN_TRAIN_FINETUNE_H

#include "train/Sgd.h"

namespace prdnn {

struct FineTuneOptions {
  double LearningRate = 0.01;
  double Momentum = 0.0;
  int BatchSize = 16;
  /// FT's "until repaired" loop cap (the paper used 1000 epochs).
  int MaxEpochs = 1000;
  /// Wall-clock cap; FT runs that diverge are cut off here.
  double TimeoutSeconds = 1e9;
};

struct FineTuneResult {
  Network Tuned;
  /// Repair-set accuracy of Tuned.
  double RepairAccuracy = 0.0;
  bool ReachedFullAccuracy = false;
  bool TimedOut = false;
  int Epochs = 0;
  double Seconds = 0.0;
};

/// FT baseline; see file comment.
FineTuneResult fineTune(const Network &Net, const Dataset &RepairSet,
                        const FineTuneOptions &Options, Rng &R);

struct ModifiedFineTuneOptions {
  double LearningRate = 0.01;
  double Momentum = 0.0;
  int BatchSize = 16;
  int MaxEpochs = 200;
  /// The single layer MFT trains.
  int LayerIndex = 0;
  /// Penalties on the drift from the original parameters.
  double PenaltyL1 = 1e-3;
  double PenaltyLInf = 1e-3;
  /// Fraction of the repair set reserved as holdout (paper: 25%).
  double HoldoutFraction = 0.25;
};

struct ModifiedFineTuneResult {
  Network Tuned;
  /// Accuracy on the full repair set ("E" in Tables 1 and 3).
  double RepairAccuracy = 0.0;
  double HoldoutAccuracy = 0.0;
  int Epochs = 0;
  double Seconds = 0.0;
};

/// MFT baseline; see file comment.
ModifiedFineTuneResult modifiedFineTune(const Network &Net,
                                        const Dataset &RepairSet,
                                        const ModifiedFineTuneOptions &Options,
                                        Rng &R);

} // namespace prdnn

#endif // PRDNN_TRAIN_FINETUNE_H
