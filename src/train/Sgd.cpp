//===- train/Sgd.cpp ----------------------------------------------------------===//

#include "train/Sgd.h"

#include "nn/LinearLayers.h"
#include "support/Casting.h"
#include "train/Loss.h"

#include <cassert>
#include <cmath>
#include <numeric>

using namespace prdnn;

void Dataset::append(const Dataset &Other) {
  Inputs.insert(Inputs.end(), Other.Inputs.begin(), Other.Inputs.end());
  Labels.insert(Labels.end(), Other.Labels.begin(), Other.Labels.end());
}

double prdnn::backprop(const Network &Net, const Vector &X, int Label,
                       std::vector<std::vector<double>> &Grads) {
  assert(static_cast<int>(Grads.size()) == Net.numLayers() &&
         "gradient container must have one slot per layer");
  std::vector<Vector> Values = Net.intermediates(X);
  Vector Grad;
  double Loss = crossEntropyLossGrad(Values.back(), Label, Grad);
  for (int I = Net.numLayers() - 1; I >= 0; --I) {
    const Layer &L = Net.layer(I);
    const Vector &In = Values[static_cast<size_t>(I)];
    if (const auto *Linear = dyn_cast<LinearLayer>(&L)) {
      if (Linear->numParams() > 0 && !Grads[static_cast<size_t>(I)].empty())
        Linear->accumulateParamGrad(In, Grad, Grads[static_cast<size_t>(I)]);
      if (I > 0)
        Grad = Linear->vjpLinear(Grad);
    } else {
      // The activation's exact Jacobian at its input is the
      // linearization around that input.
      Grad = cast<ActivationLayer>(L).vjpLinearized(In, Grad);
    }
  }
  return Loss;
}

TrainTrace prdnn::trainSgd(Network &Net, const Dataset &Data,
                           const SgdOptions &Options, Rng &R) {
  assert(Data.size() > 0 && "cannot train on an empty dataset");
  TrainTrace Trace;

  std::vector<int> ParamLayers;
  if (Options.OnlyLayer >= 0)
    ParamLayers.push_back(Options.OnlyLayer);
  else
    ParamLayers = Net.parameterizedLayerIndices();

  // Gradient / momentum buffers, plus the initial parameters of the
  // drift-penalized layer.
  std::vector<std::vector<double>> Grads(
      static_cast<size_t>(Net.numLayers()));
  std::vector<std::vector<double>> Velocity(
      static_cast<size_t>(Net.numLayers()));
  std::vector<double> InitialParams;
  for (int LayerIdx : ParamLayers) {
    auto &L = cast<LinearLayer>(Net.layer(LayerIdx));
    Grads[static_cast<size_t>(LayerIdx)].assign(
        static_cast<size_t>(L.numParams()), 0.0);
    Velocity[static_cast<size_t>(LayerIdx)].assign(
        static_cast<size_t>(L.numParams()), 0.0);
  }
  bool Penalized = Options.OnlyLayer >= 0 &&
                   (Options.DriftPenaltyL1 > 0.0 ||
                    Options.DriftPenaltyLInf > 0.0);
  if (Penalized)
    cast<LinearLayer>(Net.layer(Options.OnlyLayer)).getParams(InitialParams);

  std::vector<int> Order(static_cast<size_t>(Data.size()));
  std::iota(Order.begin(), Order.end(), 0);
  std::vector<double> Params;

  for (int Epoch = 0; Epoch < Options.Epochs; ++Epoch) {
    R.shuffle(Order);
    double EpochLoss = 0.0;
    for (int Start = 0; Start < Data.size(); Start += Options.BatchSize) {
      int End = std::min(Data.size(), Start + Options.BatchSize);
      for (int LayerIdx : ParamLayers)
        std::fill(Grads[static_cast<size_t>(LayerIdx)].begin(),
                  Grads[static_cast<size_t>(LayerIdx)].end(), 0.0);
      for (int I = Start; I < End; ++I) {
        int Sample = Order[static_cast<size_t>(I)];
        EpochLoss += backprop(Net, Data.Inputs[Sample], Data.Labels[Sample],
                              Grads);
      }
      double Scale = 1.0 / static_cast<double>(End - Start);

      for (int LayerIdx : ParamLayers) {
        auto &L = cast<LinearLayer>(Net.layer(LayerIdx));
        auto &G = Grads[static_cast<size_t>(LayerIdx)];
        auto &V = Velocity[static_cast<size_t>(LayerIdx)];
        if (Penalized && LayerIdx == Options.OnlyLayer) {
          // Subgradients of lambda1 |theta - theta0|_1 and
          // lambdaInf |theta - theta0|_inf.
          L.getParams(Params);
          int ArgMax = -1;
          double MaxAbs = 0.0;
          for (size_t P = 0; P < Params.size(); ++P) {
            double Drift = Params[P] - InitialParams[P];
            if (Options.DriftPenaltyL1 > 0.0)
              G[P] += Options.DriftPenaltyL1 *
                      (Drift > 0.0 ? 1.0 : (Drift < 0.0 ? -1.0 : 0.0)) /
                      Scale;
            if (std::fabs(Drift) > MaxAbs) {
              MaxAbs = std::fabs(Drift);
              ArgMax = static_cast<int>(P);
            }
          }
          if (Options.DriftPenaltyLInf > 0.0 && ArgMax >= 0 && MaxAbs > 0.0)
            G[static_cast<size_t>(ArgMax)] +=
                Options.DriftPenaltyLInf *
                ((Params[static_cast<size_t>(ArgMax)] -
                  InitialParams[static_cast<size_t>(ArgMax)]) > 0.0
                     ? 1.0
                     : -1.0) /
                Scale;
        }
        L.getParams(Params);
        for (size_t P = 0; P < Params.size(); ++P) {
          V[P] = Options.Momentum * V[P] -
                 Options.LearningRate * G[P] * Scale;
          Params[P] += V[P];
        }
        L.setParams(Params);
      }
    }
    Trace.EpochLoss.push_back(EpochLoss / Data.size());
  }
  return Trace;
}
