//===- api/RepairRequest.h - one repair, described as data -----*- C++ -*-===//
///
/// \file
/// The value type the RepairEngine consumes: which network to repair,
/// against which specification (pointwise, Definition 5.1, or polytope,
/// Definition 6.1), editing which layer (a fixed index or an automatic
/// sweep over candidates), under which RepairOptions.
///
/// Networks are held by shared_ptr so many concurrent jobs can repair
/// different layers / specs of the *same* (immutable) network without
/// copies - the repair algorithms never mutate the input network (they
/// build a DecoupledNetwork copy for the patch). For synchronous runs
/// on a caller-owned network, borrow() wraps a reference without taking
/// ownership.
///
//===----------------------------------------------------------------------===//

#ifndef PRDNN_API_REPAIRREQUEST_H
#define PRDNN_API_REPAIRREQUEST_H

#include "core/PointRepair.h"
#include "core/Specification.h"

#include <memory>
#include <utility>
#include <variant>
#include <vector>

namespace prdnn {

/// RepairRequest::LayerIndex sentinel: try every candidate layer and
/// return the minimal-norm success (see RepairEngine).
inline constexpr int kAutoLayer = -1;

struct RepairRequest {
  /// Scheduling class for submitted jobs: the engine's queue serves
  /// strictly by class (High before Neutral before Low) and FIFO
  /// within a class, so a high-priority job overtakes every queued
  /// neutral job but never preempts one already running. run() calls
  /// ignore the priority (they execute inline).
  enum class Priority {
    High = 0,
    Neutral = 1,
    Low = 2,
  };

  /// The network to repair; never mutated. Must be non-null and must
  /// stay alive (and unmodified) until the job's report is ready.
  std::shared_ptr<const Network> Net;

  /// Point spec (Algorithm 1) or polytope spec (Algorithm 2).
  std::variant<PointSpec, PolytopeSpec> Spec;

  /// A parameterized linear layer index, or kAutoLayer to sweep.
  int LayerIndex = kAutoLayer;

  /// Candidate layers for the kAutoLayer sweep, tried in order; empty
  /// means Network::parameterizedLayerIndices(). Ignored for fixed
  /// LayerIndex requests.
  std::vector<int> SweepLayers;

  /// Queue class for submit(); see Priority.
  Priority JobPriority = Priority::Neutral;

  RepairOptions Options;

  bool isSweep() const { return LayerIndex == kAutoLayer; }
  bool isPolytope() const {
    return std::holds_alternative<PolytopeSpec>(Spec);
  }

  static RepairRequest points(std::shared_ptr<const Network> Net,
                              int LayerIndex, PointSpec Spec,
                              RepairOptions Options = RepairOptions()) {
    RepairRequest Request;
    Request.Net = std::move(Net);
    Request.Spec = std::move(Spec);
    Request.LayerIndex = LayerIndex;
    Request.Options = std::move(Options);
    return Request;
  }

  static RepairRequest polytopes(std::shared_ptr<const Network> Net,
                                 int LayerIndex, PolytopeSpec Spec,
                                 RepairOptions Options = RepairOptions()) {
    RepairRequest Request;
    Request.Net = std::move(Net);
    Request.Spec = std::move(Spec);
    Request.LayerIndex = LayerIndex;
    Request.Options = std::move(Options);
    return Request;
  }

  /// Non-owning view of a caller-managed network (no-op deleter): for
  /// synchronous run() calls, or submit() when the caller guarantees
  /// the network outlives the job.
  static std::shared_ptr<const Network> borrow(const Network &Net) {
    return std::shared_ptr<const Network>(&Net,
                                          [](const Network *) {});
  }
};

} // namespace prdnn

#endif // PRDNN_API_REPAIRREQUEST_H
