//===- api/RepairEngine.cpp -----------------------------------------------===//

#include "api/RepairEngine.h"

#include "core/PolytopeRepair.h"
#include "support/Timer.h"

#include <cassert>
#include <limits>
#include <optional>
#include <utility>

using namespace prdnn;

/// Shared state of one submitted job: the request, its context, and
/// the promise-like (mutex + condvar) result slot JobHandle waits on.
struct prdnn::detail::EngineJob {
  std::uint64_t Id = 0;
  RepairRequest Request;
  JobContext Ctx;
  WallTimer Submitted; ///< started at submit; read when a worker pops

  mutable std::mutex Mutex;
  mutable std::condition_variable Cv;
  bool Finished = false;
  RepairReport Report;

  void resolve(RepairReport NewReport) {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Report = std::move(NewReport);
      Finished = true;
    }
    Cv.notify_all();
  }
};

// --- JobHandle --------------------------------------------------------------

std::uint64_t JobHandle::id() const { return State ? State->Id : 0; }

bool JobHandle::done() const {
  assert(State && "invalid JobHandle");
  std::lock_guard<std::mutex> Lock(State->Mutex);
  return State->Finished;
}

void JobHandle::wait() const {
  assert(State && "invalid JobHandle");
  std::unique_lock<std::mutex> Lock(State->Mutex);
  State->Cv.wait(Lock, [&] { return State->Finished; });
}

const RepairReport &JobHandle::report() const {
  wait();
  return State->Report;
}

ProgressSnapshot JobHandle::progress() const {
  assert(State && "invalid JobHandle");
  return State->Ctx.snapshot();
}

void JobHandle::cancel() const {
  assert(State && "invalid JobHandle");
  State->Ctx.requestCancel();
}

// --- RepairEngine -----------------------------------------------------------

RepairEngine::RepairEngine(EngineOptions Options) : Opts(Options) {
  if (Opts.NumWorkers < 1)
    Opts.NumWorkers = 1;
  if (Opts.QueueCapacity < 1)
    Opts.QueueCapacity = 1;
}

RepairEngine::~RepairEngine() {
  std::deque<std::shared_ptr<detail::EngineJob>> Orphans;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stopping = true;
    Orphans.swap(Queue);
  }
  WorkCv.notify_all();
  SpaceCv.notify_all();
  // Resolve never-run jobs as Cancelled so their handles don't hang.
  for (auto &Job : Orphans) {
    Job->Ctx.requestCancel();
    RepairReport Report;
    Report.JobId = Job->Id;
    Report.Status = RepairStatus::Cancelled;
    Report.QueueSeconds = Job->Submitted.seconds();
    Job->Ctx.markDone();
    Job->resolve(std::move(Report));
  }
  {
    // Submitters parked in backpressure wake on Stopping, resolve
    // their jobs as Cancelled, and leave; wait for them so Mutex and
    // the condvars are never destroyed under a blocked submit().
    // (Calling submit() *after* destruction begins remains a caller
    // bug, as for any C++ object.)
    std::unique_lock<std::mutex> Lock(Mutex);
    SpaceCv.wait(Lock, [&] { return WaitingSubmitters == 0; });
  }
  for (std::thread &W : Workers)
    W.join();
}

RepairReport RepairEngine::run(const RepairRequest &Request) {
  JobContext Ctx;
  return execute(Request, Ctx, /*JobId=*/0, /*QueueSeconds=*/0.0);
}

JobHandle RepairEngine::submit(RepairRequest Request,
                               std::function<void(RepairPhase)>
                                   CheckpointHook) {
  auto Job = std::make_shared<detail::EngineJob>();
  Job->Request = std::move(Request);
  if (CheckpointHook)
    Job->Ctx.setCheckpointHook(std::move(CheckpointHook));
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    assert(!Stopping && "submit() on a destructing engine");
    // Lazy worker start: engines used only for run() stay threadless.
    if (Workers.empty()) {
      Workers.reserve(static_cast<size_t>(Opts.NumWorkers));
      for (int I = 0; I < Opts.NumWorkers; ++I)
        Workers.emplace_back([this] { workerMain(); });
    }
    ++WaitingSubmitters;
    SpaceCv.wait(Lock, [&] {
      return Stopping ||
             static_cast<int>(Queue.size()) < Opts.QueueCapacity;
    });
    --WaitingSubmitters;
    Job->Id = NextJobId++;
    Job->Submitted.reset();
    if (Stopping) {
      // Destruction began while we were parked in backpressure (the
      // destructor waits for us before tearing anything down): resolve
      // instead of enqueueing onto a queue nobody will drain.
      SpaceCv.notify_all(); // let the destructor's drain-wait proceed
      Lock.unlock();
      Job->Ctx.requestCancel();
      RepairReport Report;
      Report.JobId = Job->Id;
      Report.Status = RepairStatus::Cancelled;
      Job->Ctx.markDone();
      Job->resolve(std::move(Report));
      return JobHandle(Job);
    }
    Queue.push_back(Job);
  }
  WorkCv.notify_one();
  return JobHandle(Job);
}

int RepairEngine::pendingJobs() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return static_cast<int>(Queue.size()) + Running;
}

void RepairEngine::workerMain() {
  std::unique_lock<std::mutex> Lock(Mutex);
  while (true) {
    WorkCv.wait(Lock, [&] { return Stopping || !Queue.empty(); });
    if (Queue.empty())
      return; // Stopping and drained
    std::shared_ptr<detail::EngineJob> Job = Queue.front();
    Queue.pop_front();
    ++Running;
    SpaceCv.notify_one();
    Lock.unlock();

    double QueueSeconds = Job->Submitted.seconds();
    RepairReport Report =
        execute(Job->Request, Job->Ctx, Job->Id, QueueSeconds);

    // Drop the Running count before resolving, so a handle whose
    // report() returned never sees itself still counted as pending.
    Lock.lock();
    --Running;
    Lock.unlock();
    Job->resolve(std::move(Report));
    Lock.lock();
  }
}

RepairReport RepairEngine::execute(const RepairRequest &Request,
                                   JobContext &Ctx, std::uint64_t JobId,
                                   double QueueSeconds) {
  assert(Request.Net && "RepairRequest without a network");
  WallTimer Total;
  RepairReport Report;
  Report.JobId = JobId;
  Report.QueueSeconds = QueueSeconds;

  const Network &Net = *Request.Net;
  std::vector<int> Candidates;
  if (Request.isSweep())
    Candidates = Request.SweepLayers.empty()
                     ? Net.parameterizedLayerIndices()
                     : Request.SweepLayers;
  else
    Candidates.push_back(Request.LayerIndex);
  assert(!Candidates.empty() && "no candidate layers to repair");
  Ctx.beginSweep(static_cast<int>(Candidates.size()));

  /// The sweep's comparison measure: the objective norm of Delta
  /// (Definition 5.3), so "minimal-norm success" matches what each
  /// per-layer LP minimized.
  auto ObjectiveNorm = [&](const RepairResult &R) {
    switch (Request.Options.Objective) {
    case lp::Norm::L1:
      return R.DeltaL1;
    case lp::Norm::LInf:
      return R.DeltaLInf;
    case lp::Norm::L1PlusLInf:
      return R.DeltaL1 + R.DeltaLInf; // unit LInf weight, as in the LP
    }
    return R.DeltaL1;
  };

  RepairResult Best;
  double BestNorm = std::numeric_limits<double>::infinity();
  int BestLayer = -1;
  RepairResult LastUnsuccessful;
  bool SawCancel = false;
  bool SawFailure = false;

  // For polytope sweeps, the SyReNN transform is layer-independent:
  // compute the key points once (on the first attempt) and share them
  // across candidates instead of re-running Algorithm 2's LinRegions
  // phase per layer. Fixed-layer requests keep the exact
  // repairPolytopesImpl path of the one-shot wrappers.
  std::optional<PointSpec> SharedKeyPoints;
  double SharedLinRegionsSeconds = 0.0;
  int SharedRegions = 0;

  auto RunAttempt = [&](int Layer) -> RepairResult {
    if (!Request.isPolytope())
      return detail::repairPointsImpl(Net, Layer,
                                      std::get<PointSpec>(Request.Spec),
                                      Request.Options, &Ctx);
    const auto &PolySpec = std::get<PolytopeSpec>(Request.Spec);
    if (Candidates.size() == 1)
      return detail::repairPolytopesImpl(Net, Layer, PolySpec,
                                         Request.Options, &Ctx);
    WallTimer AttemptTotal;
    bool ComputedHere = false;
    if (!SharedKeyPoints) {
      Ctx.beginPhase(RepairPhase::LinRegions,
                     static_cast<std::int64_t>(PolySpec.size()));
      if (Ctx.checkpoint(RepairPhase::LinRegions)) {
        RepairResult Cancelled;
        Cancelled.Status = RepairStatus::Cancelled;
        Cancelled.Stats.TotalSeconds = AttemptTotal.seconds();
        return Cancelled;
      }
      SharedKeyPoints.emplace(keyPointSpec(
          Net, PolySpec, &SharedLinRegionsSeconds, &SharedRegions));
      Ctx.advance(static_cast<std::int64_t>(PolySpec.size()));
      ComputedHere = true;
    }
    RepairResult Attempt = detail::repairPointsImpl(
        Net, Layer, *SharedKeyPoints, Request.Options, &Ctx);
    // Stamp the Algorithm 2 stats as repairPolytopesImpl would; the
    // transform time lands on the attempt that paid it.
    Attempt.Stats.LinRegionsSeconds =
        ComputedHere ? SharedLinRegionsSeconds : 0.0;
    Attempt.Stats.KeyPoints = static_cast<int>(SharedKeyPoints->size());
    Attempt.Stats.LinearRegions = SharedRegions;
    Attempt.Stats.TotalSeconds = AttemptTotal.seconds();
    Attempt.Stats.OtherSeconds = std::max(
        0.0, Attempt.Stats.TotalSeconds - Attempt.Stats.JacobianSeconds -
                 Attempt.Stats.LpSeconds -
                 Attempt.Stats.LinRegionsSeconds);
    return Attempt;
  };

  for (size_t C = 0; C < Candidates.size(); ++C) {
    int Layer = Candidates[C];
    Ctx.beginSweepLayer(Layer);
    RepairResult Attempt = RunAttempt(Layer);
    SweepAttempt Entry;
    Entry.LayerIndex = Layer;
    Entry.Status = Attempt.Status;
    Entry.DeltaL1 = Attempt.DeltaL1;
    Entry.DeltaLInf = Attempt.DeltaLInf;
    Entry.Seconds = Attempt.Stats.TotalSeconds;
    Report.Sweep.push_back(Entry);
    Ctx.finishSweepLayer();

    if (Attempt.Status == RepairStatus::Cancelled) {
      SawCancel = true;
      LastUnsuccessful = std::move(Attempt);
      break;
    }
    if (Attempt.Status == RepairStatus::Success) {
      // Strict < keeps the earliest candidate on ties, making sweeps
      // deterministic for any tie pattern.
      double Norm = ObjectiveNorm(Attempt);
      if (Norm < BestNorm) {
        BestNorm = Norm;
        BestLayer = Layer;
        Best = std::move(Attempt);
      }
    } else {
      SawFailure |= Attempt.Status == RepairStatus::SolverFailure;
      LastUnsuccessful = std::move(Attempt);
    }
    // A cancel raised between attempts stops the sweep; the minimal-
    // norm contract needs the full sweep, so a cut-short sweep reports
    // Cancelled rather than a possibly-non-minimal best-so-far.
    if (C + 1 < Candidates.size() && Ctx.cancelRequested()) {
      SawCancel = true;
      break;
    }
  }

  if (SawCancel) {
    Report.Status = RepairStatus::Cancelled;
    // LastUnsuccessful is the cancelled attempt when one ran; when the
    // cancel landed *between* attempts it may be empty (or an earlier
    // failure), so restate the status either way for consistency.
    Report.Result = std::move(LastUnsuccessful);
    Report.Result.Status = RepairStatus::Cancelled;
  } else if (BestLayer >= 0) {
    Report.Status = RepairStatus::Success;
    Report.RepairedLayer = BestLayer;
    Report.Result = std::move(Best);
  } else {
    Report.Status = SawFailure ? RepairStatus::SolverFailure
                               : RepairStatus::Infeasible;
    Report.Result = std::move(LastUnsuccessful);
    Report.Result.Status = Report.Status;
  }
  Report.TotalSeconds = Total.seconds();
  Ctx.markDone();
  return Report;
}

// --- One-shot wrappers (the pre-engine public API) --------------------------
//
// Bit-for-bit identical to calling the algorithms directly: a fixed-
// layer request executes exactly one repair*Impl call with a null-
// equivalent context, and run() adds no work around it.

namespace {

RepairEngine &wrapperEngine() {
  // Function-local static: constructed on first use, threadless (run()
  // never spawns workers), so safe to keep for the process lifetime.
  static RepairEngine Engine;
  return Engine;
}

} // namespace

RepairResult prdnn::repairPoints(const Network &Net, int LayerIndex,
                                 const PointSpec &Spec,
                                 const RepairOptions &Options) {
  return wrapperEngine()
      .run(RepairRequest::points(RepairRequest::borrow(Net), LayerIndex,
                                 Spec, Options))
      .Result;
}

RepairResult prdnn::repairPolytopes(const Network &Net, int LayerIndex,
                                    const PolytopeSpec &Spec,
                                    const RepairOptions &Options) {
  return wrapperEngine()
      .run(RepairRequest::polytopes(RepairRequest::borrow(Net), LayerIndex,
                                    Spec, Options))
      .Result;
}
