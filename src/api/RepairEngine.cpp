//===- api/RepairEngine.cpp -----------------------------------------------===//

#include "api/RepairEngine.h"

#include "cache/Fingerprint.h"
#include "core/PolytopeRepair.h"
#include "lp/LpScheduler.h"
#include "persist/ArtifactStore.h"
#include "support/Parallel.h"
#include "support/Timer.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <limits>
#include <optional>
#include <utility>

using namespace prdnn;

/// Shared state of one submitted job: the request, its context, and
/// the promise-like (mutex + condvar) result slot JobHandle waits on.
struct prdnn::detail::EngineJob {
  std::uint64_t Id = 0;
  RepairRequest Request;
  JobContext Ctx;
  WallTimer Submitted; ///< started at submit; read when a worker pops

  /// Invoked once as the job resolves (see RepairEngine::submit);
  /// written before the job is published, read by the resolving thread.
  std::function<void(const RepairReport &)> CompletionHook;

  mutable std::mutex Mutex;
  mutable std::condition_variable Cv;
  bool Finished = false;
  RepairReport Report;

  void resolve(RepairReport NewReport) {
    // The hook runs before Finished flips so that a caller blocked in
    // report() can rely on completion-side effects (e.g. an admission
    // slot released) having happened by the time its wait returns.
    if (CompletionHook)
      CompletionHook(NewReport);
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Report = std::move(NewReport);
      Finished = true;
    }
    Cv.notify_all();
  }
};

// --- JobHandle --------------------------------------------------------------

std::uint64_t JobHandle::id() const { return State ? State->Id : 0; }

bool JobHandle::done() const {
  assert(State && "invalid JobHandle");
  std::lock_guard<std::mutex> Lock(State->Mutex);
  return State->Finished;
}

void JobHandle::wait() const {
  assert(State && "invalid JobHandle");
  std::unique_lock<std::mutex> Lock(State->Mutex);
  State->Cv.wait(Lock, [&] { return State->Finished; });
}

bool JobHandle::waitFor(double Seconds) const {
  assert(State && "invalid JobHandle");
  std::unique_lock<std::mutex> Lock(State->Mutex);
  return State->Cv.wait_for(
      Lock, std::chrono::duration<double>(Seconds > 0.0 ? Seconds : 0.0),
      [&] { return State->Finished; });
}

const RepairReport &JobHandle::report() const {
  wait();
  return State->Report;
}

ProgressSnapshot JobHandle::progress() const {
  assert(State && "invalid JobHandle");
  return State->Ctx.snapshot();
}

void JobHandle::cancel() const {
  assert(State && "invalid JobHandle");
  State->Ctx.requestCancel();
}

// --- RepairEngine -----------------------------------------------------------

RepairEngine::RepairEngine(EngineOptions Options) : Opts(Options) {
  if (Opts.NumWorkers < 1)
    Opts.NumWorkers = 1;
  if (Opts.QueueCapacity < 1)
    Opts.QueueCapacity = 1;
  if (Opts.CacheShards < 1)
    Opts.CacheShards = 1;
  if (Opts.EnableCache && Opts.CacheBudgetBytes > 0) {
    if (!Opts.StoreDirectory.empty()) {
      persist::StoreOptions StoreOpts;
      StoreOpts.Directory = Opts.StoreDirectory;
      StoreOpts.BudgetBytes = Opts.StoreBudgetBytes;
      Store = std::make_shared<persist::ArtifactStore>(std::move(StoreOpts));
    }
    Cache = std::make_shared<ArtifactCache>(Opts.CacheBudgetBytes,
                                            Opts.CacheShards, Store);
  }
  T = Opts.Telemetry.get();
  if (T)
    registerTelemetry();
}

void RepairEngine::registerTelemetry() {
  obs::MetricsRegistry &Reg = T->Registry;
  // Queue / worker state, sampled live at every snapshot. The
  // collectors capture `this`; the destructor removes them (owner
  // tag) before any engine state goes away.
  Reg.addCollector(this, "prdnn_engine_queue_depth", obs::MetricType::Gauge,
                   "Jobs queued across priority classes",
                   [this] { return double(queueStats().Depth); });
  Reg.addCollector(this, "prdnn_engine_jobs_running", obs::MetricType::Gauge,
                   "Jobs a worker is executing now",
                   [this] { return double(queueStats().Running); });
  Reg.addCollector(this, "prdnn_engine_queue_oldest_wait_seconds",
                   obs::MetricType::Gauge,
                   "Longest current queue wait in seconds",
                   [this] { return queueStats().OldestWaitSeconds; });
  // Cache / store counters, mirrored rather than owned: the cache
  // keeps its own atomics (older callers read cacheStats() directly),
  // the registry samples them.
  if (Cache) {
    auto CacheVal = [this](auto Member) {
      return [this, Member]() { return double(cacheStats().*Member); };
    };
    Reg.addCollector(this, "prdnn_cache_hits_total",
                     obs::MetricType::Counter, "Artifact-cache hits",
                     CacheVal(&CacheStats::Hits));
    Reg.addCollector(this, "prdnn_cache_misses_total",
                     obs::MetricType::Counter, "Artifact-cache misses",
                     CacheVal(&CacheStats::Misses));
    Reg.addCollector(this, "prdnn_cache_evictions_total",
                     obs::MetricType::Counter, "Artifact-cache evictions",
                     CacheVal(&CacheStats::Evictions));
    Reg.addCollector(this, "prdnn_cache_insertions_total",
                     obs::MetricType::Counter, "Artifact-cache insertions",
                     CacheVal(&CacheStats::Insertions));
    Reg.addCollector(this, "prdnn_cache_bytes_held", obs::MetricType::Gauge,
                     "Bytes of retained artifacts",
                     CacheVal(&CacheStats::BytesHeld));
    Reg.addCollector(this, "prdnn_cache_entries", obs::MetricType::Gauge,
                     "Retained artifact count",
                     CacheVal(&CacheStats::Entries));
  }
  if (Store) {
    auto StoreVal = [this](auto Member) {
      return [this, Member]() { return double(storeStats().*Member); };
    };
    Reg.addCollector(this, "prdnn_store_hits_total",
                     obs::MetricType::Counter, "L2 store load hits",
                     StoreVal(&persist::StoreStats::Hits));
    Reg.addCollector(this, "prdnn_store_misses_total",
                     obs::MetricType::Counter, "L2 store load misses",
                     StoreVal(&persist::StoreStats::Misses));
    Reg.addCollector(this, "prdnn_store_writes_total",
                     obs::MetricType::Counter, "L2 store entries published",
                     StoreVal(&persist::StoreStats::Writes));
    Reg.addCollector(this, "prdnn_store_evictions_total",
                     obs::MetricType::Counter, "L2 store GC evictions",
                     StoreVal(&persist::StoreStats::Evictions));
    Reg.addCollector(this, "prdnn_store_corrupt_skips_total",
                     obs::MetricType::Counter,
                     "L2 entries rejected by validation",
                     StoreVal(&persist::StoreStats::CorruptSkips));
    Reg.addCollector(this, "prdnn_store_bytes_held", obs::MetricType::Gauge,
                     "Approximate on-disk footprint",
                     StoreVal(&persist::StoreStats::BytesHeld));
  }
  // The uniform-reset hook: MetricsRegistry::reset() reaches the
  // cache/store counters the collectors above mirror.
  Reg.addResetHook(this, [this] { resetCacheStats(); });
}

void RepairEngine::recordJobMetrics(const RepairReport &Report) {
  if (!T)
    return;
  T->JobsCompleted->inc();
  switch (Report.Status) {
  case RepairStatus::Success:
    T->JobsSucceeded->inc();
    break;
  case RepairStatus::Infeasible:
    T->JobsInfeasible->inc();
    break;
  case RepairStatus::Cancelled:
    T->JobsCancelled->inc();
    break;
  case RepairStatus::SolverFailure:
    T->JobsFailed->inc();
    break;
  }
  if (Report.Result.Stats.Determinism == linalg::Determinism::Fast)
    T->JobsFastTier->inc();
  else
    T->JobsStrictTier->inc();
  T->QueueWaitSeconds->observe(Report.QueueSeconds);
  T->JobSeconds->observe(Report.TotalSeconds);
  for (const SweepAttempt &Attempt : Report.Sweep) {
    T->SweepAttempts->inc();
    T->JacobianSeconds->observe(Attempt.JacobianSeconds);
    T->LpSeconds->observe(Attempt.LpSeconds);
    if (Attempt.LinRegionsSeconds > 0.0)
      T->LinRegionsSeconds->observe(Attempt.LinRegionsSeconds);
  }
  // Kernel totals ride on the winning (or last) attempt's RepairStats.
  const lp::SimplexStats &K = Report.Result.Stats.LpKernels;
  T->LpIterations->add(double(K.Iterations));
  T->LpRefactors->add(double(K.Refactors));
  T->LpPricingSeconds->add(K.PricingSeconds);
  T->LpFtranSeconds->add(K.FtranSeconds);
  T->LpBtranSeconds->add(K.BtranSeconds);
  T->LpRatioSeconds->add(K.RatioSeconds);
  T->LpUpdateSeconds->add(K.UpdateSeconds);
  T->LpRefactorSeconds->add(K.RefactorSeconds);
}

bool RepairEngine::hasStore() const { return Store != nullptr; }

persist::StoreStats RepairEngine::storeStats() const {
  return Store ? Store->stats() : persist::StoreStats();
}

void RepairEngine::flushStore() {
  if (Store)
    Store->flush();
}

int RepairEngine::queuedCount() const {
  int Count = 0;
  for (const auto &Q : Queues)
    Count += static_cast<int>(Q.size());
  return Count;
}

std::shared_ptr<detail::EngineJob> RepairEngine::popNext() {
  if (Opts.AgingSeconds <= 0.0) {
    // Strict class order, FIFO within a class.
    for (auto &Q : Queues)
      if (!Q.empty()) {
        std::shared_ptr<detail::EngineJob> Job = Q.front();
        Q.pop_front();
        return Job;
      }
    assert(false && "popNext on an empty queue");
    return nullptr;
  }

  // Queue aging (EngineOptions::AgingSeconds): serve the job with the
  // best *effective* class - the requested class minus one promotion
  // per AgingSeconds waited - breaking ties on submission order. Only
  // queue fronts need inspecting: within one queue the front is the
  // oldest, so no job behind it has a better effective class or an
  // earlier id. Promotion is evaluated here, at pop time, which is the
  // only moment ordering matters (a job can only wait while every
  // worker is busy, and each worker re-pops as it frees).
  std::size_t BestQ = Queues.size();
  int BestClass = 0;
  std::uint64_t BestId = 0;
  for (std::size_t Q = 0; Q < Queues.size(); ++Q) {
    if (Queues[Q].empty())
      continue;
    const detail::EngineJob &Front = *Queues[Q].front();
    double Promotions = Front.Submitted.seconds() / Opts.AgingSeconds;
    int Class = static_cast<int>(Q);
    if (Promotions >= static_cast<double>(Class))
      Class = 0;
    else
      Class -= static_cast<int>(Promotions);
    if (BestQ == Queues.size() || Class < BestClass ||
        (Class == BestClass && Front.Id < BestId)) {
      BestQ = Q;
      BestClass = Class;
      BestId = Front.Id;
    }
  }
  assert(BestQ < Queues.size() && "popNext on an empty queue");
  std::shared_ptr<detail::EngineJob> Job = Queues[BestQ].front();
  Queues[BestQ].pop_front();
  return Job;
}

RepairEngine::~RepairEngine() {
  // First thing: detach our collectors/hook from the registry so a
  // Telemetry outliving this engine never samples torn-down state.
  if (T)
    T->Registry.removeOwner(this);
  std::deque<std::shared_ptr<detail::EngineJob>> Orphans;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stopping = true;
    // Drain in priority order: handles resolve in the order the queue
    // would have served.
    for (auto &Q : Queues) {
      for (auto &Job : Q)
        Orphans.push_back(std::move(Job));
      Q.clear();
    }
  }
  WorkCv.notify_all();
  SpaceCv.notify_all();
  // Resolve never-run jobs as Cancelled so their handles don't hang.
  for (auto &Job : Orphans) {
    Job->Ctx.requestCancel();
    RepairReport Report;
    Report.JobId = Job->Id;
    Report.Status = RepairStatus::Cancelled;
    Report.QueueSeconds = Job->Submitted.seconds();
    Job->Ctx.markDone();
    recordJobMetrics(Report);
    Job->resolve(std::move(Report));
  }
  {
    // Submitters parked in backpressure wake on Stopping, resolve
    // their jobs as Cancelled, and leave; wait for them so Mutex and
    // the condvars are never destroyed under a blocked submit().
    // (Calling submit() *after* destruction begins remains a caller
    // bug, as for any C++ object.)
    std::unique_lock<std::mutex> Lock(Mutex);
    SpaceCv.wait(Lock, [&] { return WaitingSubmitters == 0; });
  }
  for (std::thread &W : Workers)
    W.join();
}

RepairReport RepairEngine::run(const RepairRequest &Request) {
  JobContext Ctx;
  return execute(Request, Ctx, /*JobId=*/0, /*QueueSeconds=*/0.0);
}

JobHandle RepairEngine::submit(RepairRequest Request,
                               std::function<void(RepairPhase)>
                                   CheckpointHook,
                               std::function<void(const RepairReport &)>
                                   CompletionHook) {
  auto Job = std::make_shared<detail::EngineJob>();
  Job->Request = std::move(Request);
  if (CheckpointHook)
    Job->Ctx.setCheckpointHook(std::move(CheckpointHook));
  Job->CompletionHook = std::move(CompletionHook);
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    assert(!Stopping && "submit() on a destructing engine");
    // Lazy worker start: engines used only for run() stay threadless.
    if (Workers.empty()) {
      Workers.reserve(static_cast<size_t>(Opts.NumWorkers));
      for (int I = 0; I < Opts.NumWorkers; ++I)
        Workers.emplace_back([this] { workerMain(); });
    }
    ++WaitingSubmitters;
    SpaceCv.wait(Lock, [&] {
      return Stopping || queuedCount() < Opts.QueueCapacity;
    });
    --WaitingSubmitters;
    Job->Id = NextJobId++;
    Job->Submitted.reset();
    if (T)
      T->JobsSubmitted->inc();
    if (Stopping) {
      // Destruction began while we were parked in backpressure (the
      // destructor waits for us before tearing anything down): resolve
      // instead of enqueueing onto a queue nobody will drain.
      SpaceCv.notify_all(); // let the destructor's drain-wait proceed
      Lock.unlock();
      Job->Ctx.requestCancel();
      RepairReport Report;
      Report.JobId = Job->Id;
      Report.Status = RepairStatus::Cancelled;
      Job->Ctx.markDone();
      recordJobMetrics(Report);
      Job->resolve(std::move(Report));
      return JobHandle(Job);
    }
    Queues[static_cast<size_t>(Job->Request.JobPriority)].push_back(Job);
  }
  WorkCv.notify_one();
  return JobHandle(Job);
}

int RepairEngine::pendingJobs() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return queuedCount() + Running;
}

EngineQueueStats RepairEngine::queueStats() const {
  EngineQueueStats Stats;
  std::lock_guard<std::mutex> Lock(Mutex);
  for (std::size_t Q = 0; Q < Queues.size(); ++Q) {
    Stats.QueuedByClass[Q] = static_cast<int>(Queues[Q].size());
    Stats.Depth += Stats.QueuedByClass[Q];
    // FIFO within a class: the front is the class's oldest waiter.
    if (!Queues[Q].empty())
      Stats.OldestWaitSeconds =
          std::max(Stats.OldestWaitSeconds,
                   Queues[Q].front()->Submitted.seconds());
  }
  Stats.Running = Running;
  return Stats;
}

void RepairEngine::workerMain() {
  std::unique_lock<std::mutex> Lock(Mutex);
  while (true) {
    WorkCv.wait(Lock, [&] { return Stopping || queuedCount() > 0; });
    if (queuedCount() == 0)
      return; // Stopping and drained
    std::shared_ptr<detail::EngineJob> Job = popNext();
    ++Running;
    SpaceCv.notify_one();
    Lock.unlock();

    double QueueSeconds = Job->Submitted.seconds();
    if (T) {
      // The Queued span is the engine's to emit: the job context only
      // sees the job from execution onward.
      obs::TraceEvent E;
      E.JobId = Job->Id;
      E.Name = "Queued";
      E.ThreadId = obs::threadOrdinal();
      const auto QueueNanos =
          static_cast<std::uint64_t>(QueueSeconds * 1e9);
      const std::uint64_t Now = obs::TraceBuffer::nowNanos();
      E.StartNanos = Now > QueueNanos ? Now - QueueNanos : 0;
      E.DurationNanos = QueueNanos;
      T->Trace.record(E);
    }
    RepairReport Report =
        execute(Job->Request, Job->Ctx, Job->Id, QueueSeconds);

    // Drop the Running count before resolving, so a handle whose
    // report() returned never sees itself still counted as pending.
    Lock.lock();
    --Running;
    Lock.unlock();
    recordJobMetrics(Report);
    Job->resolve(std::move(Report));
    Lock.lock();
  }
}

RepairReport RepairEngine::execute(const RepairRequest &Request,
                                   JobContext &Ctx, std::uint64_t JobId,
                                   double QueueSeconds) {
  assert(Request.Net && "RepairRequest without a network");
  WallTimer Total;
  RepairReport Report;
  Report.JobId = JobId;
  Report.QueueSeconds = QueueSeconds;

  const Network &Net = *Request.Net;
  // Resolve the job's kernel determinism tier: an explicit request
  // tier wins, otherwise the engine default applies. Every attempt of
  // the job (and the shared polytope key points) runs under the
  // resolved tier, which the impls stamp into RepairStats and key
  // cached artifacts with.
  RepairOptions Options = Request.Options;
  if (!Options.Determinism)
    Options.Determinism = Opts.Determinism;
  const linalg::Determinism Tier = *Options.Determinism;
  // Hand the engine's shared artifact cache to the job. The network
  // fingerprint (content hash of topology + parameter bits) is what
  // keys this job's artifacts, so jobs on different - or mutated -
  // networks can never alias each other's entries.
  if (Cache && Options.UseCache)
    Ctx.setCache(Cache.get(), fingerprintNetwork(Net));
  // Same written-before-run contract as setCache. run() calls land
  // here too (JobId 0), so inline runs trace alongside queued jobs.
  if (T)
    Ctx.setTrace(&T->Trace, JobId);
  std::vector<int> Candidates;
  if (Request.isSweep())
    Candidates = Request.SweepLayers.empty()
                     ? Net.parameterizedLayerIndices()
                     : Request.SweepLayers;
  else
    Candidates.push_back(Request.LayerIndex);
  assert(!Candidates.empty() && "no candidate layers to repair");
  Ctx.beginSweep(static_cast<int>(Candidates.size()));

  /// The sweep's comparison measure: the objective norm of Delta
  /// (Definition 5.3), so "minimal-norm success" matches what each
  /// per-layer LP minimized.
  auto ObjectiveNorm = [&](const RepairResult &R) {
    switch (Options.Objective) {
    case lp::Norm::L1:
      return R.DeltaL1;
    case lp::Norm::LInf:
      return R.DeltaLInf;
    case lp::Norm::L1PlusLInf:
      return R.DeltaL1 + R.DeltaLInf; // unit LInf weight, as in the LP
    }
    return R.DeltaL1;
  };

  RepairResult Best;
  double BestNorm = std::numeric_limits<double>::infinity();
  int BestLayer = -1;
  RepairResult LastUnsuccessful;
  bool SawCancel = false;
  bool SawFailure = false;

  // For polytope sweeps, the SyReNN transform is layer-independent:
  // compute the key points once (on the first attempt) and share them
  // across candidates instead of re-running Algorithm 2's LinRegions
  // phase per layer - and, with the engine cache, across *jobs* too
  // (the within-sweep sharing generalizes to a SyrennTransform /
  // PatternBatch artifact hit on the first attempt). Fixed-layer
  // requests keep the exact repairPolytopesImpl path of the one-shot
  // wrappers.
  std::optional<KeyPointsResult> SharedKeyPoints;

  auto RunAttempt = [&](int Layer) -> RepairResult {
    if (!Request.isPolytope())
      return detail::repairPointsImpl(Net, Layer,
                                      std::get<PointSpec>(Request.Spec),
                                      Options, &Ctx);
    const auto &PolySpec = std::get<PolytopeSpec>(Request.Spec);
    if (Candidates.size() == 1)
      return detail::repairPolytopesImpl(Net, Layer, PolySpec, Options,
                                         &Ctx);
    WallTimer AttemptTotal;
    bool ComputedHere = false;
    if (!SharedKeyPoints) {
      Ctx.beginPhase(RepairPhase::LinRegions,
                     static_cast<std::int64_t>(PolySpec.size()));
      if (Ctx.checkpoint(RepairPhase::LinRegions)) {
        RepairResult Cancelled;
        Cancelled.Status = RepairStatus::Cancelled;
        Cancelled.Stats.TotalSeconds = AttemptTotal.seconds();
        return Cancelled;
      }
      SharedKeyPoints.emplace(
          keyPoints(Net, PolySpec, &Ctx, Options.UseCache, Tier));
      Ctx.advance(static_cast<std::int64_t>(PolySpec.size()));
      ComputedHere = true;
    }
    RepairResult Attempt = detail::repairPointsImpl(
        Net, Layer, SharedKeyPoints->Points, Options, &Ctx);
    // Stamp the Algorithm 2 stats as repairPolytopesImpl would; the
    // transform time (and its cache lookups) land on the attempt that
    // paid it.
    Attempt.Stats.LinRegionsSeconds =
        ComputedHere ? SharedKeyPoints->Seconds : 0.0;
    Attempt.Stats.KeyPoints =
        static_cast<int>(SharedKeyPoints->Points.size());
    Attempt.Stats.LinearRegions = SharedKeyPoints->LinearRegions;
    if (ComputedHere) {
      Attempt.Stats.LinRegionsCacheHits = SharedKeyPoints->TransformCacheHits;
      Attempt.Stats.LinRegionsCacheMisses =
          SharedKeyPoints->TransformCacheMisses;
      Attempt.Stats.PatternCacheHits = SharedKeyPoints->PatternCacheHits;
      Attempt.Stats.PatternCacheMisses = SharedKeyPoints->PatternCacheMisses;
      Attempt.Stats.LinRegionsStoreHits = SharedKeyPoints->TransformStoreHits;
      Attempt.Stats.PatternStoreHits = SharedKeyPoints->PatternStoreHits;
    }
    Attempt.Stats.TotalSeconds = AttemptTotal.seconds();
    Attempt.Stats.OtherSeconds = std::max(
        0.0, Attempt.Stats.TotalSeconds - Attempt.Stats.JacobianSeconds -
                 Attempt.Stats.LpSeconds -
                 Attempt.Stats.LinRegionsSeconds);
    return Attempt;
  };

  auto MakeEntry = [Tier](int Layer, const RepairResult &Attempt, int Shard) {
    SweepAttempt Entry;
    Entry.LayerIndex = Layer;
    Entry.Determinism = Tier;
    Entry.Status = Attempt.Status;
    Entry.DeltaL1 = Attempt.DeltaL1;
    Entry.DeltaLInf = Attempt.DeltaLInf;
    // The phase breakdown rides on RepairStats, which every exit path
    // of the impls stamps (early Infeasible returns and cancellations
    // included) - so these are valid for *all* attempts, making
    // cache-hit vs cache-miss attempts comparable in the sweep log.
    Entry.Seconds = Attempt.Stats.TotalSeconds;
    Entry.JacobianSeconds = Attempt.Stats.JacobianSeconds;
    Entry.LpSeconds = Attempt.Stats.LpSeconds;
    Entry.LinRegionsSeconds = Attempt.Stats.LinRegionsSeconds;
    Entry.LpIterations = Attempt.Stats.LpIterations;
    Entry.LpRefactors = Attempt.Stats.LpKernels.Refactors;
    Entry.CacheHits = Attempt.Stats.cacheHits();
    Entry.CacheMisses = Attempt.Stats.cacheMisses();
    Entry.StoreHits = Attempt.Stats.storeHits();
    Entry.WarmStarted = Attempt.Stats.BasisHits > 0;
    Entry.ShardId = Shard;
    return Entry;
  };

  /// Folds one finished attempt (in candidate order) into the winner /
  /// failure bookkeeping. Returns false when the sweep must stop here
  /// (the attempt was cancelled).
  auto FoldAttempt = [&](int Layer, RepairResult &&Attempt) {
    if (Attempt.Status == RepairStatus::Cancelled) {
      SawCancel = true;
      LastUnsuccessful = std::move(Attempt);
      return false;
    }
    if (Attempt.Status == RepairStatus::Success) {
      // Strict < keeps the earliest candidate on ties, making sweeps
      // deterministic for any tie pattern.
      double Norm = ObjectiveNorm(Attempt);
      if (Norm < BestNorm) {
        BestNorm = Norm;
        BestLayer = Layer;
        Best = std::move(Attempt);
      }
    } else {
      SawFailure |= Attempt.Status == RepairStatus::SolverFailure;
      LastUnsuccessful = std::move(Attempt);
    }
    return true;
  };

  // How many attempts of this sweep run concurrently
  // (EngineOptions::SweepShards; lp/LpScheduler.h). Hooked jobs stay
  // serialized - the checkpoint hook contract is "invoked on the job
  // thread", and the cancellation tests rely on it.
  int Shards = 1;
  if (Candidates.size() > 1 && !Ctx.hasCheckpointHook()) {
    Shards = Opts.SweepShards > 0 ? Opts.SweepShards : globalThreadCount();
    if (Shards > static_cast<int>(Candidates.size()))
      Shards = static_cast<int>(Candidates.size());
    if (Shards < 1)
      Shards = 1;
  }

  if (Shards == 1) {
    // Serialized sweep: the pre-scheduler loop, attempt by attempt.
    for (size_t C = 0; C < Candidates.size(); ++C) {
      int Layer = Candidates[C];
      Ctx.beginSweepLayer(Layer);
      RepairResult Attempt = RunAttempt(Layer);
      Report.Sweep.push_back(MakeEntry(Layer, Attempt, /*Shard=*/0));
      Ctx.finishSweepLayer();
      if (!FoldAttempt(Layer, std::move(Attempt)))
        break;
      // A cancel raised between attempts stops the sweep; the minimal-
      // norm contract needs the full sweep, so a cut-short sweep
      // reports Cancelled rather than a possibly-non-minimal
      // best-so-far.
      if (C + 1 < Candidates.size() && Ctx.cancelRequested()) {
        SawCancel = true;
        break;
      }
    }
  } else {
    // Sharded sweep: fan the independent attempts out across
    // LpScheduler shard threads, then assemble the report serially in
    // candidate order - bit-identical to the serialized loop because
    // attempts share no mutable state (each repair*Impl run is a pure
    // function of its inputs at any thread count, and the artifact
    // cache is a content-addressed concurrent consumer).
    //
    // The one shared input, a polytope sweep's key points, is computed
    // *before* the fan-out so RunAttempt only ever reads
    // SharedKeyPoints concurrently; its transform stats are credited
    // to the first candidate's attempt afterwards, exactly where the
    // serialized loop lands them.
    bool PrecomputedKeyPoints = false;
    if (Request.isPolytope() && !SharedKeyPoints) {
      const auto &PolySpec = std::get<PolytopeSpec>(Request.Spec);
      Ctx.beginPhase(RepairPhase::LinRegions,
                     static_cast<std::int64_t>(PolySpec.size()));
      if (Ctx.checkpoint(RepairPhase::LinRegions)) {
        SawCancel = true;
      } else {
        SharedKeyPoints.emplace(
            keyPoints(Net, PolySpec, &Ctx, Options.UseCache, Tier));
        Ctx.advance(static_cast<std::int64_t>(PolySpec.size()));
        PrecomputedKeyPoints = true;
      }
    }
    if (!SawCancel) {
      // Tasks are claimed in ascending candidate order, so the
      // completed attempts always form a prefix of the candidate list;
      // an unclaimed suffix can only mean cancellation (exceptions
      // rethrow out of runTasks).
      std::vector<std::optional<RepairResult>> Results(Candidates.size());
      std::vector<int> ShardOf(Candidates.size(), 0);
      lp::LpScheduler Scheduler(Shards);
      Scheduler.runTasks(
          static_cast<int>(Candidates.size()),
          /*ShouldStop=*/[&] { return Ctx.cancelRequested(); },
          [&](int Task, int Shard) {
            Ctx.beginSweepLayer(Candidates[static_cast<size_t>(Task)]);
            Results[static_cast<size_t>(Task)].emplace(
                RunAttempt(Candidates[static_cast<size_t>(Task)]));
            ShardOf[static_cast<size_t>(Task)] = Shard;
            Ctx.finishSweepLayer();
          });
      if (PrecomputedKeyPoints && Results[0]) {
        RepairStats &S = Results[0]->Stats;
        S.LinRegionsSeconds = SharedKeyPoints->Seconds;
        S.TotalSeconds += SharedKeyPoints->Seconds;
        S.LinRegionsCacheHits = SharedKeyPoints->TransformCacheHits;
        S.LinRegionsCacheMisses = SharedKeyPoints->TransformCacheMisses;
        S.PatternCacheHits = SharedKeyPoints->PatternCacheHits;
        S.PatternCacheMisses = SharedKeyPoints->PatternCacheMisses;
        S.LinRegionsStoreHits = SharedKeyPoints->TransformStoreHits;
        S.PatternStoreHits = SharedKeyPoints->PatternStoreHits;
      }
      for (size_t C = 0; C < Candidates.size(); ++C) {
        if (!Results[C]) {
          // Unclaimed tail: the cancel landed between claims, the
          // sharded analogue of a cancel between serial attempts.
          SawCancel = true;
          break;
        }
        RepairResult Attempt = std::move(*Results[C]);
        Report.Sweep.push_back(MakeEntry(Candidates[C], Attempt, ShardOf[C]));
        if (!FoldAttempt(Candidates[C], std::move(Attempt)))
          break;
      }
    }
  }

  if (SawCancel) {
    Report.Status = RepairStatus::Cancelled;
    // LastUnsuccessful is the cancelled attempt when one ran; when the
    // cancel landed *between* attempts it may be empty (or an earlier
    // failure), so restate the status either way for consistency.
    Report.Result = std::move(LastUnsuccessful);
    Report.Result.Status = RepairStatus::Cancelled;
  } else if (BestLayer >= 0) {
    Report.Status = RepairStatus::Success;
    Report.RepairedLayer = BestLayer;
    Report.Result = std::move(Best);
  } else {
    Report.Status = SawFailure ? RepairStatus::SolverFailure
                               : RepairStatus::Infeasible;
    Report.Result = std::move(LastUnsuccessful);
    Report.Result.Status = Report.Status;
  }
  for (const SweepAttempt &Attempt : Report.Sweep) {
    Report.CacheHits += Attempt.CacheHits;
    Report.CacheMisses += Attempt.CacheMisses;
    Report.StoreHits += Attempt.StoreHits;
  }
  // Attempts that ran stamped this already; restate it so jobs
  // cancelled before any attempt still report the tier they resolved.
  Report.Result.Stats.Determinism = Tier;
  Report.TotalSeconds = Total.seconds();
  Ctx.markDone();
  return Report;
}

// --- One-shot wrappers (the pre-engine public API) --------------------------
//
// Bit-for-bit identical to calling the algorithms directly: a fixed-
// layer request executes exactly one repair*Impl call with a null-
// equivalent context, and run() adds no work around it.

namespace {

RepairEngine &wrapperEngine() {
  // Function-local static: constructed on first use, threadless (run()
  // never spawns workers), so safe to keep for the process lifetime.
  // Cache disabled: the wrappers document themselves as bit-for-bit
  // thin wrappers with the seed's memory profile, and the benches rely
  // on repeated wrapper calls staying cold.
  static RepairEngine Engine([] {
    EngineOptions Options;
    Options.EnableCache = false;
    return Options;
  }());
  return Engine;
}

} // namespace

RepairResult prdnn::repairPoints(const Network &Net, int LayerIndex,
                                 const PointSpec &Spec,
                                 const RepairOptions &Options) {
  return wrapperEngine()
      .run(RepairRequest::points(RepairRequest::borrow(Net), LayerIndex,
                                 Spec, Options))
      .Result;
}

RepairResult prdnn::repairPolytopes(const Network &Net, int LayerIndex,
                                    const PolytopeSpec &Spec,
                                    const RepairOptions &Options) {
  return wrapperEngine()
      .run(RepairRequest::polytopes(RepairRequest::borrow(Net), LayerIndex,
                                    Spec, Options))
      .Result;
}
