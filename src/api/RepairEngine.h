//===- api/RepairEngine.h - repair-as-a-service over the pool --*- C++ -*-===//
///
/// \file
/// The unified entry point of the library: one engine serving many
/// repair requests - synchronously (run) or as queued jobs (submit)
/// with future-backed results, monotonic progress snapshots, and
/// cooperative cancellation.
///
/// Mapping to the paper:
///
///   RepairRequest{PointSpec}    -> Algorithm 1 (repairPoints, §5):
///     Jacobian phase = lines 4-6 (batch parameter Jacobians and
///     constraint assembly), Lp phase = lines 7-8 (norm-minimal Delta
///     by LP, with constraint generation), Verify phase = lines 9-10
///     (apply Delta, re-verify the spec on the DDNN itself).
///   RepairRequest{PolytopeSpec} -> Algorithm 2 (repairPolytopes, §6):
///     a LinRegions phase (SyReNN transform, line 2) reduces each
///     polytope to key points with pinned activation patterns
///     (Appendix B), then Algorithm 1's phases run on those points.
///   LayerIndex = kAutoLayer     -> the evaluation methodology of §7
///     as a first-class mode: attempt every candidate layer and return
///     the attempt minimizing the objective norm of Delta (ties break
///     to the earliest candidate, so sweeps are deterministic).
///
/// Concurrency model: submit() enqueues onto a bounded FIFO (submit
/// blocks while the queue is full) drained by NumWorkers job threads.
/// Jobs run the normal repair pipeline, whose data-parallel loops all
/// go through the one global thread pool (support/Parallel.h) - the
/// pool serializes parallel sections across jobs, so N concurrent jobs
/// share the machine instead of oversubscribing it, and every job's
/// numeric results are bit-for-bit identical to a serial run() of the
/// same request (the pool's determinism contract). Single-job phases
/// (notably the simplex solve) overlap freely across workers.
///
/// Cancellation is cooperative: JobHandle::cancel() raises a flag the
/// pipeline polls at phase/chunk boundaries and between simplex
/// iterations; the job resolves with RepairStatus::Cancelled and
/// stamped timing stats. Queued jobs cancel without running.
///
//===----------------------------------------------------------------------===//

#ifndef PRDNN_API_REPAIRENGINE_H
#define PRDNN_API_REPAIRENGINE_H

#include "api/RepairReport.h"
#include "api/RepairRequest.h"
#include "core/RepairContext.h"

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace prdnn {

namespace detail {
struct EngineJob;
} // namespace detail

struct EngineOptions {
  /// Job threads draining the queue: how many repairs execute
  /// concurrently. Their data-parallel phases share the global pool;
  /// see the file comment.
  int NumWorkers = 1;
  /// Bounded FIFO capacity; submit() blocks while the queue is full
  /// (backpressure instead of unbounded memory growth).
  int QueueCapacity = 64;
};

/// Handle to a submitted job. Copyable (shared state); the default-
/// constructed handle is invalid.
class JobHandle {
public:
  JobHandle() = default;

  bool valid() const { return State != nullptr; }
  std::uint64_t id() const;

  /// True once the report is ready (never blocks).
  bool done() const;

  /// Blocks until the report is ready.
  void wait() const;

  /// Blocks until ready, then returns the report. The reference stays
  /// valid for the handle's lifetime.
  const RepairReport &report() const;

  /// Current progress (never blocks; safe while the job runs).
  ProgressSnapshot progress() const;

  /// Requests cooperative cancellation; see the file comment.
  void cancel() const;

private:
  friend class RepairEngine;
  explicit JobHandle(std::shared_ptr<detail::EngineJob> State)
      : State(std::move(State)) {}

  std::shared_ptr<detail::EngineJob> State;
};

class RepairEngine {
public:
  explicit RepairEngine(EngineOptions Options = EngineOptions());

  /// Cancels still-queued jobs (they resolve as Cancelled without
  /// running), drains submitters parked in backpressure (their jobs
  /// also resolve as Cancelled), lets in-flight jobs finish, and joins
  /// the workers. Cancel running jobs explicitly first if you need a
  /// fast exit.
  ~RepairEngine();

  RepairEngine(const RepairEngine &) = delete;
  RepairEngine &operator=(const RepairEngine &) = delete;

  /// Executes \p Request on the calling thread and returns its report;
  /// does not touch the job queue, so concurrent run() calls (and
  /// run() next to submitted jobs) are fine.
  RepairReport run(const RepairRequest &Request);

  /// Enqueues \p Request; blocks while the queue is full. \p
  /// CheckpointHook, when set, is installed on the job's context before
  /// it can run (see JobContext::setCheckpointHook).
  JobHandle submit(RepairRequest Request,
                   std::function<void(RepairPhase)> CheckpointHook =
                       std::function<void(RepairPhase)>());

  /// Jobs submitted but not yet finished (queued + running).
  int pendingJobs() const;

  const EngineOptions &options() const { return Opts; }

private:
  void workerMain();
  RepairReport execute(const RepairRequest &Request, JobContext &Ctx,
                       std::uint64_t JobId, double QueueSeconds);

  EngineOptions Opts;
  mutable std::mutex Mutex;
  std::condition_variable WorkCv;  ///< workers wait for jobs
  std::condition_variable SpaceCv; ///< submitters wait for queue space
  std::deque<std::shared_ptr<detail::EngineJob>> Queue;
  std::vector<std::thread> Workers; ///< spawned lazily on first submit
  int Running = 0;
  int WaitingSubmitters = 0; ///< submit() calls parked in backpressure
  std::uint64_t NextJobId = 1;
  bool Stopping = false;
};

} // namespace prdnn

#endif // PRDNN_API_REPAIRENGINE_H
