//===- api/RepairEngine.h - repair-as-a-service over the pool --*- C++ -*-===//
///
/// \file
/// The unified entry point of the library: one engine serving many
/// repair requests - synchronously (run) or as queued jobs (submit)
/// with future-backed results, monotonic progress snapshots, and
/// cooperative cancellation.
///
/// Mapping to the paper:
///
///   RepairRequest{PointSpec}    -> Algorithm 1 (repairPoints, §5):
///     Jacobian phase = lines 4-6 (batch parameter Jacobians and
///     constraint assembly), Lp phase = lines 7-8 (norm-minimal Delta
///     by LP, with constraint generation), Verify phase = lines 9-10
///     (apply Delta, re-verify the spec on the DDNN itself).
///   RepairRequest{PolytopeSpec} -> Algorithm 2 (repairPolytopes, §6):
///     a LinRegions phase (SyReNN transform, line 2) reduces each
///     polytope to key points with pinned activation patterns
///     (Appendix B), then Algorithm 1's phases run on those points.
///   LayerIndex = kAutoLayer     -> the evaluation methodology of §7
///     as a first-class mode: attempt every candidate layer and return
///     the attempt minimizing the objective norm of Delta (ties break
///     to the earliest candidate, so sweeps are deterministic).
///
/// Concurrency model: submit() enqueues onto a bounded, priority-
/// classed queue (RepairRequest::Priority; strict class order, FIFO
/// within a class; submit blocks while the queue is full) drained by
/// NumWorkers job threads.
/// Jobs run the normal repair pipeline, whose data-parallel loops all
/// go through the one global thread pool (support/Parallel.h) - the
/// pool serializes parallel sections across jobs, so N concurrent jobs
/// share the machine instead of oversubscribing it, and every job's
/// numeric results are bit-for-bit identical to a serial run() of the
/// same request (the pool's determinism contract). Single-job phases
/// (notably the simplex solve) overlap freely across workers.
///
/// Cancellation is cooperative: JobHandle::cancel() raises a flag the
/// pipeline polls at phase/chunk boundaries and between simplex
/// iterations; the job resolves with RepairStatus::Cancelled and
/// stamped timing stats. Queued jobs cancel without running.
///
/// The engine owns one content-addressed ArtifactCache shared by all
/// its jobs (EngineOptions::EnableCache / CacheBudgetBytes): repeated
/// (network, layer, spec-prefix) keys - auto-layer sweeps, repeated-
/// spec server workloads, iterative patch loops - reuse Jacobian row
/// blocks, SyReNN transforms, and pattern batches instead of
/// recomputing them, with single-flight insertion so concurrent jobs
/// on the same key compute once. Hits are bit-for-bit identical to
/// recomputation, so warm runs equal cold runs exactly (see
/// cache/README.md for the determinism contract). With
/// EngineOptions::StoreDirectory set, the cache is additionally backed
/// by a persistent on-disk store (persist/ArtifactStore.h): a *fresh*
/// engine on the same directory starts warm, and engines in other
/// processes share the same artifacts - same determinism contract,
/// enforced by tests/persist_test.cpp.
///
//===----------------------------------------------------------------------===//

#ifndef PRDNN_API_REPAIRENGINE_H
#define PRDNN_API_REPAIRENGINE_H

#include "api/RepairReport.h"
#include "api/RepairRequest.h"
#include "cache/ArtifactCache.h"
#include "core/RepairContext.h"
#include "obs/Telemetry.h"

#include <array>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace prdnn {

namespace detail {
struct EngineJob;
} // namespace detail

struct EngineOptions {
  /// Job threads draining the queue: how many repairs execute
  /// concurrently. Their data-parallel phases share the global pool;
  /// see the file comment.
  int NumWorkers = 1;
  /// Bounded queue capacity, totalled across priority classes;
  /// submit() blocks while the queue is full (backpressure instead of
  /// unbounded memory growth).
  int QueueCapacity = 64;
  /// Own an ArtifactCache (cache/ArtifactCache.h) shared by every job
  /// of this engine: repeated (network, layer, spec-prefix) keys turn
  /// the Jacobian / LinRegions phases into lookups. Hits are
  /// bit-for-bit identical to recomputation (test-enforced), so the
  /// default on never changes results - disable only to reclaim the
  /// memory. Per-request opt-out: RepairOptions::UseCache.
  bool EnableCache = true;
  /// Byte budget of the cache's LRU (0 behaves like EnableCache =
  /// false).
  std::size_t CacheBudgetBytes = std::size_t(256) << 20;
  /// Shards of the cache's map (per-shard mutex + LRU slice).
  int CacheShards = 16;
  /// Directory of a persistent artifact store (persist/ArtifactStore.h)
  /// backing the cache as an L2 tier: misses read through to disk,
  /// inserts write behind asynchronously, so a fresh engine pointed at
  /// the same directory starts warm (server restarts), and concurrent
  /// engines / processes share one store safely (atomic
  /// write-temp-then-rename publication). Empty = no store. Requires
  /// the cache (EnableCache with a non-zero budget); L2 hits are
  /// bit-for-bit identical to recomputation, and a corrupted entry
  /// degrades to a recompute, never a wrong answer.
  std::string StoreDirectory;
  /// On-disk byte budget of the store (LRU-by-mtime GC).
  std::size_t StoreBudgetBytes = std::size_t(1) << 30;
  /// Queue aging, bounding the starvation the strict-class priority
  /// queue designs in: a queued job is *served* as if promoted one
  /// priority class per AgingSeconds waited (a Low job becomes
  /// Neutral-equivalent after AgingSeconds and High-equivalent after
  /// 2x), with ties between equal effective classes breaking to the
  /// earlier submission. 0 (the default) disables aging, preserving
  /// strict class order. Scheduling only - results are unaffected.
  double AgingSeconds = 0.0;
  /// Shards for auto-layer sweeps (lp/LpScheduler.h): how many
  /// candidate-layer attempts of one sweep run concurrently. 0 (the
  /// default) sizes the batch from the global pool
  /// (support/Parallel.h: PRDNN_NUM_THREADS or hardware concurrency);
  /// 1 serializes attempts, reproducing the pre-scheduler loop
  /// exactly. Sharded sweeps are bit-identical to serialized ones
  /// (attempts are independent; results are assembled in candidate
  /// order with the same strict minimal-norm tie-break), so this is a
  /// throughput knob only. Jobs submitted with a checkpoint hook are
  /// always serialized, preserving the hook's job-thread contract.
  int SweepShards = 0;
  /// Default kernel determinism tier (linalg/Kernels.h) for jobs whose
  /// RepairOptions::Determinism is unset. Strict (the default) keeps
  /// every job bit-for-bit reproducible and warm-start/basis-cache
  /// eligible; Fast trades that for SIMD throughput, epsilon-verified
  /// against Strict (see src/linalg/README.md). A request's explicit
  /// tier always wins over this engine default.
  linalg::Determinism Determinism = linalg::Determinism::Strict;
  /// Telemetry sink (obs/Telemetry.h): when set, the engine registers
  /// queue/cache/store collectors with its MetricsRegistry, records
  /// job lifecycle counters and phase/kernel timings, and feeds each
  /// job's phase spans into its TraceBuffer. Null (the default) is
  /// "off": no registration, no recording, and - by the standing
  /// invariant, test-enforced - bit-for-bit identical repair results.
  /// Sharing one Telemetry across an engine, a RepairService, and an
  /// RpcServer yields one unified exposition page.
  std::shared_ptr<obs::Telemetry> Telemetry;
};

/// One observation of an engine's job queue, in the spirit of
/// ProgressSnapshot: plain data, safe to take concurrently with
/// submits and running jobs, consumed by admission controllers
/// (serve/AdmissionController.h) and the latency benches.
struct EngineQueueStats {
  /// Jobs queued across all priority classes (excludes running).
  int Depth = 0;
  /// Queued jobs per RepairRequest::Priority class, indexed by the
  /// enum value (High = 0, Neutral = 1, Low = 2).
  std::array<int, 3> QueuedByClass{};
  /// Jobs a worker is currently executing.
  int Running = 0;
  /// Seconds the longest-queued job has waited so far (0 when the
  /// queue is empty). Queues are FIFO within a class, so this is the
  /// max over the class fronts.
  double OldestWaitSeconds = 0.0;
};

/// Handle to a submitted job. Copyable (shared state); the default-
/// constructed handle is invalid.
class JobHandle {
public:
  JobHandle() = default;

  bool valid() const { return State != nullptr; }
  std::uint64_t id() const;

  /// True once the report is ready (never blocks).
  bool done() const;

  /// Blocks until the report is ready.
  void wait() const;

  /// Blocks until the report is ready or \p Seconds elapse; true when
  /// the job finished. A timeout leaves the job untouched (it keeps
  /// running and can be waited on again) - the deadline primitive of
  /// the RPC server's Await exchange.
  bool waitFor(double Seconds) const;

  /// Blocks until ready, then returns the report. The reference stays
  /// valid for the handle's lifetime.
  const RepairReport &report() const;

  /// Current progress (never blocks; safe while the job runs).
  ProgressSnapshot progress() const;

  /// Requests cooperative cancellation; see the file comment.
  void cancel() const;

private:
  friend class RepairEngine;
  explicit JobHandle(std::shared_ptr<detail::EngineJob> State)
      : State(std::move(State)) {}

  std::shared_ptr<detail::EngineJob> State;
};

class RepairEngine {
public:
  explicit RepairEngine(EngineOptions Options = EngineOptions());

  /// Cancels still-queued jobs (they resolve as Cancelled without
  /// running), drains submitters parked in backpressure (their jobs
  /// also resolve as Cancelled), lets in-flight jobs finish, and joins
  /// the workers. Cancel running jobs explicitly first if you need a
  /// fast exit.
  ~RepairEngine();

  RepairEngine(const RepairEngine &) = delete;
  RepairEngine &operator=(const RepairEngine &) = delete;

  /// Executes \p Request on the calling thread and returns its report;
  /// does not touch the job queue, so concurrent run() calls (and
  /// run() next to submitted jobs) are fine.
  RepairReport run(const RepairRequest &Request);

  /// Enqueues \p Request; blocks while the queue is full. \p
  /// CheckpointHook, when set, is installed on the job's context before
  /// it can run (see JobContext::setCheckpointHook). \p CompletionHook,
  /// when set, is invoked exactly once with the job's report as it
  /// resolves - on the worker thread for executed jobs, on the
  /// resolving thread for jobs cancelled without running (engine
  /// teardown, backpressure cancellation) - and before any report()
  /// call returns. Unlike a checkpoint hook it does not serialize
  /// sweeps. It must not call back into this engine.
  JobHandle submit(RepairRequest Request,
                   std::function<void(RepairPhase)> CheckpointHook =
                       std::function<void(RepairPhase)>(),
                   std::function<void(const RepairReport &)>
                       CompletionHook =
                           std::function<void(const RepairReport &)>());

  /// Jobs submitted but not yet finished (queued + running).
  int pendingJobs() const;

  /// Snapshot of the job queue (depth, per-class counts, oldest wait);
  /// see EngineQueueStats.
  EngineQueueStats queueStats() const;

  const EngineOptions &options() const { return Opts; }

  /// True when this engine owns an artifact cache (EnableCache with a
  /// non-zero budget).
  bool hasCache() const { return Cache != nullptr; }

  /// Aggregate hit/miss/eviction/byte counters of the engine's cache
  /// (all-zero when hasCache() is false). When a persistent store is
  /// attached, its counters ride along in CacheStats::Store.
  CacheStats cacheStats() const {
    return Cache ? Cache->stats() : CacheStats();
  }

  /// Drops every cached artifact *and zeroes the hit/miss/eviction
  /// counters* (cache and store alike), so a measurement phase after
  /// clearCache() starts both cold and clean - see cache/README.md.
  /// The persistent store's on-disk entries are kept (they address
  /// immutable content); in-flight jobs are unaffected beyond
  /// recomputing (or re-loading from the store).
  void clearCache() {
    if (Cache) {
      Cache->clear();
      Cache->resetStats();
    }
  }

  /// Zeroes the cache's (and store's) monotonic counters without
  /// dropping entries: for benches that want clean counters over a
  /// *warm* phase.
  void resetCacheStats() {
    if (Cache)
      Cache->resetStats();
  }

  /// The uniform counter reset (the registry-wide analogue of
  /// resetCacheStats): with telemetry installed, delegates to
  /// MetricsRegistry::reset(), which zeroes every engine instrument
  /// *and* - via the registered reset hooks - the cache and store
  /// counters mirrored by collectors, in one call. Without telemetry
  /// it falls back to resetCacheStats(), the only counters the
  /// pre-obs engine could reset. Live state (queue depth, running
  /// jobs, cached entries) is untouched either way.
  void resetStats() {
    if (Opts.Telemetry)
      Opts.Telemetry->Registry.reset();
    else
      resetCacheStats();
  }

  /// This engine's telemetry sink, or null when telemetry is off.
  const std::shared_ptr<obs::Telemetry> &telemetry() const {
    return Opts.Telemetry;
  }

  /// True when this engine's cache is backed by a persistent store
  /// (EngineOptions::StoreDirectory).
  bool hasStore() const;

  /// Counters of the persistent store (all-zero when hasStore() is
  /// false).
  persist::StoreStats storeStats() const;

  /// Blocks until every queued write-behind store write has been
  /// published to disk - call before tearing an engine down when a
  /// successor (or another process) should find the store fully warm.
  /// No-op without a store.
  void flushStore();

private:
  void workerMain();
  RepairReport execute(const RepairRequest &Request, JobContext &Ctx,
                       std::uint64_t JobId, double QueueSeconds);

  /// Registers the queue/cache/store collectors and the uniform-reset
  /// hook with the telemetry registry (ctor; T non-null).
  void registerTelemetry();
  /// Folds one resolved job's report into the lifecycle counters and
  /// phase/kernel histograms (no-op when T is null). Called at every
  /// resolve site: worker completion, teardown orphans, and
  /// submit-during-stop cancellations.
  void recordJobMetrics(const RepairReport &Report);

  /// Queued jobs across all priority classes.
  int queuedCount() const;
  /// Pops the front of the highest non-empty priority class (caller
  /// holds Mutex and guarantees non-emptiness).
  std::shared_ptr<detail::EngineJob> popNext();

  EngineOptions Opts;
  /// Raw view of Opts.Telemetry (null = off), checked on the hot paths.
  obs::Telemetry *T = nullptr;
  std::shared_ptr<persist::ArtifactStore> Store; ///< null without L2
  std::shared_ptr<ArtifactCache> Cache; ///< null when caching is off
  mutable std::mutex Mutex;
  std::condition_variable WorkCv;  ///< workers wait for jobs
  std::condition_variable SpaceCv; ///< submitters wait for queue space
  /// One FIFO per RepairRequest::Priority, indexed by the enum value:
  /// a stable priority queue (strict class order, FIFO within).
  std::array<std::deque<std::shared_ptr<detail::EngineJob>>, 3> Queues;
  std::vector<std::thread> Workers; ///< spawned lazily on first submit
  int Running = 0;
  int WaitingSubmitters = 0; ///< submit() calls parked in backpressure
  std::uint64_t NextJobId = 1;
  bool Stopping = false;
};

} // namespace prdnn

#endif // PRDNN_API_REPAIRENGINE_H
