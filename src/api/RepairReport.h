//===- api/RepairReport.h - unified result of an engine job ----*- C++ -*-===//
///
/// \file
/// What a RepairEngine job resolves to: the winning RepairResult (with
/// its RepairStats timing breakdown), the layer that won, the per-layer
/// attempt log for sweeps, and engine-side timings (queue wait, total
/// job wall time). One type answers "did it work, what changed, what
/// did it cost" for both Algorithm 1 and Algorithm 2 requests.
///
//===----------------------------------------------------------------------===//

#ifndef PRDNN_API_REPAIRREPORT_H
#define PRDNN_API_REPAIRREPORT_H

#include "core/PointRepair.h"

#include <cstdint>
#include <vector>

namespace prdnn {

/// One layer attempt of a kAutoLayer sweep (or the single attempt of a
/// fixed-layer request), in execution order.
struct SweepAttempt {
  int LayerIndex = -1;
  RepairStatus Status = RepairStatus::SolverFailure;
  double DeltaL1 = 0.0;
  double DeltaLInf = 0.0;
  double Seconds = 0.0;
  // Per-attempt phase breakdown, stamped on *every* exit path (early
  // Infeasible/SolverFailure returns and cancellations included, like
  // TotalSeconds) so cache-hit and cache-miss attempts are comparable.
  double JacobianSeconds = 0.0;
  double LpSeconds = 0.0;
  double LinRegionsSeconds = 0.0;
  /// Simplex work this attempt's LP phase did (all CG rounds): total
  /// iterations and basis refactorizations. The full per-kernel
  /// breakdown (SimplexStats) rides on the attempt's RepairStats
  /// (`RepairResult::Stats::LpKernels`) for the winning attempt.
  int LpIterations = 0;
  int LpRefactors = 0;
  /// Artifact-cache lookups this attempt performed, all phases.
  int CacheHits = 0;
  int CacheMisses = 0;
  /// Of CacheHits, those the persistent L2 store served (0 without a
  /// store).
  int StoreHits = 0;
  /// Whether any LP solve of this attempt started from a cached
  /// simplex basis (RepairOptions::WarmStartBasis; equals the
  /// attempt's RepairStats::BasisHits > 0). Warm attempts are
  /// bit-identical to cold ones - this only explains the pivot counts.
  bool WarmStarted = false;
  /// Which LpScheduler shard ran this attempt (0 for serialized
  /// sweeps and fixed-layer requests). Purely informational: results
  /// are independent of shard assignment.
  int ShardId = 0;
  /// Kernel determinism tier the attempt ran under (the request's
  /// RepairOptions::Determinism resolved against the engine default).
  /// Uniform across a sweep - stamped per attempt so the log is
  /// self-describing.
  linalg::Determinism Determinism = linalg::Determinism::Strict;
};

struct RepairReport {
  /// Engine-assigned id (monotonic per engine; 0 for inline run()s).
  std::uint64_t JobId = 0;

  /// Success iff some attempt succeeded (for sweeps: the minimal-norm
  /// one). Cancelled if the job was cancelled before a winner was
  /// chosen. Otherwise Infeasible when every attempt was proved
  /// infeasible (a definitive per-layer non-existence proof,
  /// Theorem 5.4), else SolverFailure.
  RepairStatus Status = RepairStatus::SolverFailure;

  /// The layer the winning repair edited (-1 if none succeeded). For
  /// fixed-layer requests this is the requested layer on success.
  int RepairedLayer = -1;

  /// The winning attempt's full result - repaired DDNN, Delta, norms,
  /// and RepairStats (Jacobian / LP / verify / LinRegions timings). For
  /// unsuccessful jobs, the last attempt's result (its Stats are still
  /// stamped; for cancelled jobs Status/TotalSeconds reflect where the
  /// cancellation landed).
  RepairResult Result;

  /// Every layer attempt, in execution order; size 1 for fixed-layer
  /// requests, up to |candidates| for sweeps (cancellation may cut the
  /// sweep short).
  std::vector<SweepAttempt> Sweep;

  /// Seconds spent queued before a worker picked the job up (0 for
  /// inline run()s).
  double QueueSeconds = 0.0;

  /// Engine-side wall time executing the job (all sweep attempts).
  double TotalSeconds = 0.0;

  /// Artifact-cache lookups across every attempt of the job (0 / 0
  /// when the engine runs without a cache or the request opted out).
  /// Per-phase breakdowns live in each attempt's RepairStats.
  std::int64_t CacheHits = 0;
  std::int64_t CacheMisses = 0;
  /// Of CacheHits, those served by the engine's persistent L2 store
  /// (persist/ArtifactStore.h) rather than memory: the warm-restart
  /// signal. 0 when the engine has no store.
  std::int64_t StoreHits = 0;

  const RepairStats &stats() const { return Result.Stats; }
  bool succeeded() const { return Status == RepairStatus::Success; }
};

} // namespace prdnn

#endif // PRDNN_API_REPAIRREPORT_H
