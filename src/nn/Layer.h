//===- nn/Layer.h - layer class hierarchy ----------------------*- C++ -*-===//
///
/// \file
/// The layer hierarchy underlying prdnn::Network. The paper formalizes a
/// DNN as alternating (W, sigma) pairs (Definition 2.1); real
/// architectures interleave arbitrary linear maps (fully-connected,
/// convolution, average pooling) with activations, so we model a network
/// as a layer sequence and split the hierarchy accordingly:
///
///   Layer
///   |- LinearLayer       (affine maps; FC and Conv carry parameters)
///   |- ActivationLayer   (sigma; PWL ones also expose discrete patterns)
///
/// ActivationLayer exposes the two operations the DDNN semantics need
/// (Definition 4.3): Linearize[sigma, Center] evaluation and its
/// vector-Jacobian product, plus - for piecewise-linear activations -
/// evaluation under a *pinned* discrete activation pattern, which is how
/// Appendix B's region-pinned key points are realized.
///
/// Uses LLVM-style `classof` discrimination (support/Casting.h), no RTTI.
///
//===----------------------------------------------------------------------===//

#ifndef PRDNN_NN_LAYER_H
#define PRDNN_NN_LAYER_H

#include "linalg/Matrix.h"
#include "linalg/Vector.h"

#include <memory>
#include <string>
#include <vector>

namespace prdnn {

/// Discriminator for the Layer hierarchy. Order matters: linear kinds
/// first, then piecewise-linear activations, then smooth activations
/// (classof range checks rely on it).
enum class LayerKind {
  // Linear layers.
  FullyConnected,
  Conv2D,
  AvgPool2D,
  Flatten,
  // Piecewise-linear activations.
  ReLU,
  LeakyReLU,
  HardTanh,
  MaxPool2D,
  // Smooth activations.
  Tanh,
  Sigmoid,
};

const char *toString(LayerKind Kind);

/// Abstract network layer; see file comment for the hierarchy.
class Layer {
public:
  virtual ~Layer();

  LayerKind getKind() const { return Kind; }

  virtual int inputSize() const = 0;
  virtual int outputSize() const = 0;

  /// Standard forward evaluation.
  virtual Vector apply(const Vector &In) const = 0;

  /// Batched forward evaluation: \p In holds one input per row, the
  /// result one output per row (bit-for-bit equal to apply() on each
  /// row). The default runs apply() row by row on the global thread
  /// pool; FullyConnectedLayer overrides with a blocked GEMM and
  /// ElementwiseActivation with a fused elementwise sweep.
  virtual Matrix applyBatch(const Matrix &In) const;

  virtual std::unique_ptr<Layer> clone() const = 0;

  /// One-line human-readable description ("fc 10x100", "relu 64", ...).
  virtual std::string describe() const = 0;

  /// True for layers computing affine functions of their input.
  bool isLinear() const { return Kind <= LayerKind::Flatten; }

  /// True unless the layer is a smooth (non-PWL) activation.
  bool isPiecewiseLinear() const { return Kind < LayerKind::Tanh; }

protected:
  explicit Layer(LayerKind Kind) : Kind(Kind) {}

private:
  LayerKind Kind;
};

/// A layer computing an affine function In -> W In + b (possibly with
/// structure, e.g. convolution). FullyConnected and Conv2D carry
/// repairable parameters; AvgPool2D and Flatten are parameter-free.
class LinearLayer : public Layer {
public:
  static bool classof(const Layer *L) { return L->isLinear(); }

  /// Vector-Jacobian product W^T * GradOut.
  virtual Vector vjpLinear(const Vector &GradOut) const = 0;

  /// Batched VJP: row r of the result is vjpLinear(row r of GradOut),
  /// bit-for-bit. This is how paramJacobianBatch shares one backward
  /// accumulation matrix across a whole batch of points: the default
  /// runs vjpLinear row by row on the global thread pool, and
  /// FullyConnectedLayer overrides with a single GEMM GradOut * W.
  virtual Matrix vjpLinearBatch(const Matrix &GradOut) const;

  /// Number of repairable parameters (0 for parameter-free layers).
  virtual int numParams() const { return 0; }

  /// Copies the parameters into \p Out (resized to numParams()).
  virtual void getParams(std::vector<double> &Out) const;

  /// Overwrites the parameters from \p In (size numParams()).
  virtual void setParams(const std::vector<double> &In);

  /// Adds \p Delta to the parameters (size numParams()); this is the
  /// repair update of Algorithm 1, line 9.
  virtual void addToParams(const std::vector<double> &Delta);

  /// Accumulates d(loss)/d(params) given the layer input and the
  /// gradient at the layer output (for SGD training and fine-tuning).
  virtual void accumulateParamGrad(const Vector &In, const Vector &GradOut,
                                   std::vector<double> &Accum) const;

  /// Accumulates the parameter Jacobian: given M = d(net output)/d(layer
  /// output) (rows = network outputs), adds M * d(layer output)/d(params)
  /// at input \p In into \p J (shape M.rows() x numParams()).
  virtual void paramJacobian(const Matrix &M, const Vector &In,
                             Matrix &J) const;

protected:
  using Layer::Layer;
};

/// Maps every vector of \p Rows through \p L with one applyBatch call
/// (row p becomes L.apply(Rows[p]), bit-for-bit). The batching hook for
/// callers that keep their points in a std::vector<Vector> (the SyReNN
/// transforms).
void applyBatchToRows(const Layer &L, std::vector<Vector> &Rows);

/// An activation layer sigma. All activations support linearization
/// around a center (Definition 4.2); piecewise-linear ones additionally
/// expose discrete activation patterns (Definition 2.5).
class ActivationLayer : public Layer {
public:
  static bool classof(const Layer *L) { return !L->isLinear(); }

  /// Discrete activation pattern at pre-activation \p In (PWL only).
  /// Encoding is per-kind: ReLU/LeakyReLU 0/1, HardTanh -1/0/1,
  /// MaxPool2D the in-window argmax index.
  virtual std::vector<int> pattern(const Vector &In) const;

  /// Evaluates under a pinned pattern instead of deriving the pattern
  /// from \p In (PWL only). Realizes Appendix B's "repair the vertex as
  /// if it belongs to a specific linear region".
  virtual Vector applyWithPattern(const Vector &In,
                                  const std::vector<int> &Pat) const;

  /// Linearize[sigma, Center](In) = sigma(Center) + Dsigma(Center) *
  /// (In - Center) (Definition 4.2). Exact for PWL activations away
  /// from region boundaries; the value channel of a DDNN is evaluated
  /// through this.
  virtual Vector applyLinearized(const Vector &Center,
                                 const Vector &In) const = 0;

  /// Vector-Jacobian product through Dsigma(Center).
  virtual Vector vjpLinearized(const Vector &Center,
                               const Vector &GradOut) const = 0;

  /// Vector-Jacobian product through the pinned pattern (PWL only).
  virtual Vector vjpWithPattern(const std::vector<int> &Pat,
                                const Vector &GradOut) const;

  /// Appends every fraction s in (0, 1) at which the activation pattern
  /// changes along the pre-activation segment Left -> Right (PWL only).
  /// Over-approximation is allowed (extra fractions merely oversubdivide
  /// the partition); missing a genuine change is not. Used by the
  /// SyReNN line/plane transforms.
  virtual void appendCrossings(const Vector &Left, const Vector &Right,
                               std::vector<double> &Fractions) const;

protected:
  using Layer::Layer;
};

} // namespace prdnn

#endif // PRDNN_NN_LAYER_H
