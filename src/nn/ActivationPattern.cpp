//===- nn/ActivationPattern.cpp ----------------------------------------------===//

#include "nn/ActivationPattern.h"

#include "support/Casting.h"

#include <cassert>

using namespace prdnn;

NetworkPattern prdnn::computePattern(const Network &Net, const Vector &X) {
  assert(Net.isPiecewiseLinear() &&
         "activation patterns require a PWL network");
  NetworkPattern Result;
  Result.Patterns.resize(static_cast<size_t>(Net.numLayers()));
  Vector Current = X;
  for (int I = 0; I < Net.numLayers(); ++I) {
    const Layer &L = Net.layer(I);
    if (const auto *Act = dyn_cast<ActivationLayer>(&L))
      Result.Patterns[static_cast<size_t>(I)] = Act->pattern(Current);
    Current = L.apply(Current);
  }
  return Result;
}

std::vector<Vector>
prdnn::intermediatesWithPattern(const Network &Net, const Vector &X,
                                const NetworkPattern &Pattern) {
  assert(static_cast<int>(Pattern.Patterns.size()) == Net.numLayers() &&
         "pattern layer count mismatch");
  std::vector<Vector> Values;
  Values.reserve(static_cast<size_t>(Net.numLayers()) + 1);
  Values.push_back(X);
  for (int I = 0; I < Net.numLayers(); ++I) {
    const Layer &L = Net.layer(I);
    if (const auto *Act = dyn_cast<ActivationLayer>(&L))
      Values.push_back(Act->applyWithPattern(
          Values.back(), Pattern.Patterns[static_cast<size_t>(I)]));
    else
      Values.push_back(L.apply(Values.back()));
  }
  return Values;
}

Vector prdnn::evaluateWithPattern(const Network &Net, const Vector &X,
                                  const NetworkPattern &Pattern) {
  return intermediatesWithPattern(Net, X, Pattern).back();
}
