//===- nn/ActivationPattern.cpp ----------------------------------------------===//

#include "nn/ActivationPattern.h"

#include "support/Casting.h"
#include "support/Parallel.h"

#include <cassert>

using namespace prdnn;

NetworkPattern prdnn::computePattern(const Network &Net, const Vector &X) {
  assert(Net.isPiecewiseLinear() &&
         "activation patterns require a PWL network");
  NetworkPattern Result;
  Result.Patterns.resize(static_cast<size_t>(Net.numLayers()));
  Vector Current = X;
  for (int I = 0; I < Net.numLayers(); ++I) {
    const Layer &L = Net.layer(I);
    if (const auto *Act = dyn_cast<ActivationLayer>(&L))
      Result.Patterns[static_cast<size_t>(I)] = Act->pattern(Current);
    Current = L.apply(Current);
  }
  return Result;
}

std::vector<NetworkPattern> prdnn::computePatternBatch(const Network &Net,
                                                       const Matrix &Xs) {
  assert(Net.isPiecewiseLinear() &&
         "activation patterns require a PWL network");
  int NumPoints = Xs.rows();
  std::vector<NetworkPattern> Result(static_cast<size_t>(NumPoints));
  for (auto &Pattern : Result)
    Pattern.Patterns.resize(static_cast<size_t>(Net.numLayers()));
  Matrix Current = Xs;
  for (int I = 0; I < Net.numLayers(); ++I) {
    const Layer &L = Net.layer(I);
    if (const auto *Act = dyn_cast<ActivationLayer>(&L))
      parallelFor(0, NumPoints, [&](std::int64_t P) {
        Result[static_cast<size_t>(P)].Patterns[static_cast<size_t>(I)] =
            Act->pattern(Current.row(static_cast<int>(P)));
      });
    Current = L.applyBatch(Current);
  }
  return Result;
}

std::vector<NetworkPattern>
prdnn::computePatternBatch(const Network &Net,
                           const std::vector<Vector> &Xs) {
  if (Xs.empty())
    return {};
  return computePatternBatch(Net, Matrix::fromRowVectors(Xs));
}

std::vector<Matrix> prdnn::intermediatesBatchWithPatterns(
    const Network &Net, const Matrix &Xs,
    const std::vector<const NetworkPattern *> &Pinned) {
  assert((Pinned.empty() ||
          static_cast<int>(Pinned.size()) == Xs.rows()) &&
         "one (nullable) pinned pattern per batch row");
  int NumPoints = Xs.rows();
  // An all-null pattern list is plain batched evaluation; take the
  // fused applyBatch route for every layer.
  bool AnyPinned = false;
  for (const NetworkPattern *P : Pinned)
    AnyPinned = AnyPinned || P != nullptr;
  if (!AnyPinned)
    return Net.intermediatesBatch(Xs);
  std::vector<Matrix> Values;
  Values.reserve(static_cast<size_t>(Net.numLayers()) + 1);
  Values.push_back(Xs);
  for (int I = 0; I < Net.numLayers(); ++I) {
    const Layer &L = Net.layer(I);
    const auto *Act = dyn_cast<ActivationLayer>(&L);
    if (!Act) {
      Values.push_back(L.applyBatch(Values.back()));
      continue;
    }
    const Matrix &In = Values.back();
    Matrix Out(NumPoints, L.outputSize());
    parallelFor(0, NumPoints, [&](std::int64_t P) {
      const NetworkPattern *Pattern = Pinned[static_cast<size_t>(P)];
      Vector Row = In.row(static_cast<int>(P));
      Out.setRow(static_cast<int>(P),
                 Pattern ? Act->applyWithPattern(
                               Row,
                               Pattern->Patterns[static_cast<size_t>(I)])
                         : Act->apply(Row));
    });
    Values.push_back(std::move(Out));
  }
  return Values;
}

std::vector<Vector>
prdnn::intermediatesWithPattern(const Network &Net, const Vector &X,
                                const NetworkPattern &Pattern) {
  assert(static_cast<int>(Pattern.Patterns.size()) == Net.numLayers() &&
         "pattern layer count mismatch");
  std::vector<Vector> Values;
  Values.reserve(static_cast<size_t>(Net.numLayers()) + 1);
  Values.push_back(X);
  for (int I = 0; I < Net.numLayers(); ++I) {
    const Layer &L = Net.layer(I);
    if (const auto *Act = dyn_cast<ActivationLayer>(&L))
      Values.push_back(Act->applyWithPattern(
          Values.back(), Pattern.Patterns[static_cast<size_t>(I)]));
    else
      Values.push_back(L.apply(Values.back()));
  }
  return Values;
}

Vector prdnn::evaluateWithPattern(const Network &Net, const Vector &X,
                                  const NetworkPattern &Pattern) {
  return intermediatesWithPattern(Net, X, Pattern).back();
}
