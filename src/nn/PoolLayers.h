//===- nn/PoolLayers.h - max / average pooling -----------------*- C++ -*-===//
///
/// \file
/// 2-D pooling layers over (Channels, Height, Width) tensors flattened
/// row-major. MaxPool2D is a piecewise-linear *activation* whose
/// discrete pattern is the in-window argmax; AvgPool2D is a
/// parameter-free *linear* layer (its linearization is itself).
///
//===----------------------------------------------------------------------===//

#ifndef PRDNN_NN_POOLLAYERS_H
#define PRDNN_NN_POOLLAYERS_H

#include "nn/Layer.h"

namespace prdnn {

/// Geometry shared by the pooling layers. Windows must tile the input
/// exactly (asserted), which the in-repo architectures guarantee.
struct PoolGeometry {
  int Channels, InH, InW;
  int WindowH, WindowW, Stride;
  int OutH, OutW;

  PoolGeometry(int Channels, int InH, int InW, int WindowH, int WindowW,
               int Stride);

  int inputSize() const { return Channels * InH * InW; }
  int outputSize() const { return Channels * OutH * OutW; }

  /// Invokes Fn(OutIndex, InIndex, TapIndex) for every window tap;
  /// TapIndex enumerates the window cells 0..WindowH*WindowW-1.
  template <typename FnT> void forEachTap(FnT Fn) const {
    for (int C = 0; C < Channels; ++C)
      for (int OY = 0; OY < OutH; ++OY)
        for (int OX = 0; OX < OutW; ++OX) {
          int OutIndex = (C * OutH + OY) * OutW + OX;
          for (int Y = 0; Y < WindowH; ++Y)
            for (int X = 0; X < WindowW; ++X) {
              int IY = OY * Stride + Y;
              int IX = OX * Stride + X;
              int InIndex = (C * InH + IY) * InW + IX;
              Fn(OutIndex, InIndex, Y * WindowW + X);
            }
        }
  }
};

/// Max pooling: a PWL activation. Pattern entry per output position:
/// the argmax tap index within the window (first maximum wins, making
/// the boundary choice consistent; cf. Appendix C).
class MaxPool2DLayer : public ActivationLayer {
public:
  MaxPool2DLayer(int Channels, int InH, int InW, int WindowH, int WindowW,
                 int Stride);

  static bool classof(const Layer *L) {
    return L->getKind() == LayerKind::MaxPool2D;
  }

  int inputSize() const override { return Geo.inputSize(); }
  int outputSize() const override { return Geo.outputSize(); }
  Vector apply(const Vector &In) const override;
  /// Window sweep directly over the batch rows (no per-row copies).
  Matrix applyBatch(const Matrix &In) const override;
  std::unique_ptr<Layer> clone() const override;
  std::string describe() const override;

  std::vector<int> pattern(const Vector &In) const override;
  Vector applyWithPattern(const Vector &In,
                          const std::vector<int> &Pat) const override;
  Vector applyLinearized(const Vector &Center,
                         const Vector &In) const override;
  Vector vjpLinearized(const Vector &Center,
                       const Vector &GradOut) const override;
  Vector vjpWithPattern(const std::vector<int> &Pat,
                        const Vector &GradOut) const override;
  void appendCrossings(const Vector &Left, const Vector &Right,
                       std::vector<double> &Fractions) const override;

  const PoolGeometry &geometry() const { return Geo; }

private:
  PoolGeometry Geo;
};

/// Average pooling: a parameter-free linear layer.
class AvgPool2DLayer : public LinearLayer {
public:
  AvgPool2DLayer(int Channels, int InH, int InW, int WindowH, int WindowW,
                 int Stride);

  static bool classof(const Layer *L) {
    return L->getKind() == LayerKind::AvgPool2D;
  }

  int inputSize() const override { return Geo.inputSize(); }
  int outputSize() const override { return Geo.outputSize(); }
  Vector apply(const Vector &In) const override;
  std::unique_ptr<Layer> clone() const override;
  std::string describe() const override;
  Vector vjpLinear(const Vector &GradOut) const override;

  const PoolGeometry &geometry() const { return Geo; }

private:
  PoolGeometry Geo;
};

} // namespace prdnn

#endif // PRDNN_NN_POOLLAYERS_H
