//===- nn/Network.h - feed-forward network ---------------------*- C++ -*-===//
///
/// \file
/// A feed-forward network as a sequence of layers (Definition 2.1/2.2,
/// generalized to arbitrary interleavings of linear and activation
/// layers). Owns its layers; copyable via deep clone.
///
//===----------------------------------------------------------------------===//

#ifndef PRDNN_NN_NETWORK_H
#define PRDNN_NN_NETWORK_H

#include "nn/Layer.h"

#include <memory>
#include <vector>

namespace prdnn {

/// Feed-forward DNN: N(v) = L_n(...L_2(L_1(v))).
class Network {
public:
  Network() = default;
  Network(Network &&) = default;
  Network &operator=(Network &&) = default;
  Network(const Network &Other);
  Network &operator=(const Network &Other);

  /// Appends a layer; adjacent layer sizes must match. Returns its
  /// index.
  int addLayer(std::unique_ptr<Layer> L);

  int numLayers() const { return static_cast<int>(Layers.size()); }
  Layer &layer(int Index) { return *Layers[static_cast<size_t>(Index)]; }
  const Layer &layer(int Index) const {
    return *Layers[static_cast<size_t>(Index)];
  }

  int inputSize() const;
  int outputSize() const;

  /// Forward evaluation N(x) (Definition 2.2).
  Vector evaluate(const Vector &X) const;

  /// Batched forward evaluation: row p of the result is N(row p of
  /// \p Xs), bit-for-bit equal to evaluate() on that row. Linear layers
  /// run as blocked GEMMs, activations as fused sweeps, both on the
  /// global thread pool (support/Parallel.h).
  Matrix applyBatch(const Matrix &Xs) const;

  /// Argmax of the output (classification).
  int classify(const Vector &X) const { return evaluate(X).argmax(); }

  /// Inputs to every layer plus the final output: result[i] is the
  /// input of layer i, result[numLayers()] is N(x).
  std::vector<Vector> intermediates(const Vector &X) const;

  /// Batched intermediates: result[i] holds the inputs of layer i one
  /// point per row, result[numLayers()] the outputs - the batch
  /// analogue of intermediates(), and the unpinned fast path of
  /// intermediatesBatchWithPatterns.
  std::vector<Matrix> intermediatesBatch(const Matrix &Xs) const;

  /// True iff every layer is PWL (required for polytope repair, §6).
  bool isPiecewiseLinear() const;

  /// Indices of layers carrying repairable parameters (FC/Conv).
  std::vector<int> parameterizedLayerIndices() const;

  /// Total parameter count across all layers.
  int totalParams() const;

  /// Multi-line architecture summary.
  std::string describe() const;

private:
  std::vector<std::unique_ptr<Layer>> Layers;
};

/// Fraction of \p Inputs whose argmax matches \p Labels.
double accuracy(const Network &Net, const std::vector<Vector> &Inputs,
                const std::vector<int> &Labels);

} // namespace prdnn

#endif // PRDNN_NN_NETWORK_H
