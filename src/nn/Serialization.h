//===- nn/Serialization.h - network text (de)serialization -----*- C++ -*-===//
///
/// \file
/// A small self-describing text format for networks (the repo-local
/// stand-in for the ONNX plumbing the paper's artifact used). Full
/// double precision round-trips; loading returns std::nullopt on any
/// malformed input (no exceptions). The reader validates every
/// dimension (positive, bounded, pool/conv geometry consistent, layer
/// sizes chained) before constructing layers, so truncated or garbage
/// input can never abort or fabricate a partial network - the same
/// hardening contract as the binary persist::Codec path.
///
/// loadNetwork() auto-detects format: files beginning with the
/// persist/Codec.h frame magic load through the bounds-checked binary
/// reader (persist::loadNetworkBinary, bit-exact parameters); anything
/// else parses as text. persist::saveNetworkBinary is the matching
/// writer.
///
//===----------------------------------------------------------------------===//

#ifndef PRDNN_NN_SERIALIZATION_H
#define PRDNN_NN_SERIALIZATION_H

#include "nn/Network.h"

#include <iosfwd>
#include <optional>
#include <string>

namespace prdnn {

/// Writes \p Net to \p Os in the prdnn-network v1 text format.
void writeNetwork(const Network &Net, std::ostream &Os);

/// Parses a network; std::nullopt on malformed input.
std::optional<Network> readNetwork(std::istream &Is);

/// File-based convenience wrappers; return false / nullopt on I/O error.
/// loadNetwork reads both the text format and persist::Codec binary
/// blobs (detected by magic).
bool saveNetwork(const Network &Net, const std::string &Path);
std::optional<Network> loadNetwork(const std::string &Path);

} // namespace prdnn

#endif // PRDNN_NN_SERIALIZATION_H
