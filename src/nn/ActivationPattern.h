//===- nn/ActivationPattern.h - network activation patterns ----*- C++ -*-===//
///
/// \file
/// Discrete activation patterns of a PWL network (Definition 2.5) and
/// pattern-pinned evaluation. A pattern fixes, for every PWL activation
/// layer, which affine piece each unit uses; evaluating under a pinned
/// pattern realizes the affine function of one linear region on all of
/// input space, which is exactly what Appendix B requires for key
/// points on region boundaries.
///
//===----------------------------------------------------------------------===//

#ifndef PRDNN_NN_ACTIVATIONPATTERN_H
#define PRDNN_NN_ACTIVATIONPATTERN_H

#include "nn/Network.h"

#include <vector>

namespace prdnn {

/// Per-layer discrete patterns; entry i is empty for linear layers.
struct NetworkPattern {
  std::vector<std::vector<int>> Patterns;

  bool operator==(const NetworkPattern &Other) const = default;
};

/// The activation pattern induced by input \p X (network must be PWL).
NetworkPattern computePattern(const Network &Net, const Vector &X);

/// Batched computePattern: result[p] is the pattern of row p of \p Xs.
/// Linear layers run batched; per-row pattern capture is parallelized
/// on the global thread pool.
std::vector<NetworkPattern> computePatternBatch(const Network &Net,
                                                const Matrix &Xs);

/// Convenience overload for callers holding their points in a vector
/// (the key-point pipeline): result[p] == computePattern(Net, Xs[p]),
/// bit-for-bit.
std::vector<NetworkPattern>
computePatternBatch(const Network &Net, const std::vector<Vector> &Xs);

/// Evaluates \p Net at \p X with every PWL activation pinned to
/// \p Pattern instead of its input-derived region. For X inside the
/// pattern's linear region this equals evaluate(X); elsewhere it
/// extends that region's affine function.
Vector evaluateWithPattern(const Network &Net, const Vector &X,
                           const NetworkPattern &Pattern);

/// Inputs to every layer plus the final output under a pinned pattern
/// (mirrors Network::intermediates).
std::vector<Vector> intermediatesWithPattern(const Network &Net,
                                             const Vector &X,
                                             const NetworkPattern &Pattern);

/// Mixed-batch intermediates: row p of each matrix follows
/// intermediatesWithPattern(Net, Xs row p, *Pinned[p]) when Pinned[p]
/// is non-null and plain intermediates otherwise, bit-for-bit. Linear
/// layers run as one batched GEMM shared by pinned and unpinned rows;
/// activation rows are dispatched per point in parallel. \p Pinned may
/// be empty (no pinning) or have one (nullable) entry per row.
std::vector<Matrix>
intermediatesBatchWithPatterns(const Network &Net, const Matrix &Xs,
                               const std::vector<const NetworkPattern *>
                                   &Pinned);

} // namespace prdnn

#endif // PRDNN_NN_ACTIVATIONPATTERN_H
