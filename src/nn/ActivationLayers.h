//===- nn/ActivationLayers.h - elementwise activations ---------*- C++ -*-===//
///
/// \file
/// Elementwise activation layers. ReLU, LeakyReLU and HardTanh are
/// piecewise-linear (Definition 2.4) and participate in polytope repair;
/// Tanh and Sigmoid are smooth and supported by pointwise repair only
/// (paper §5, "Assumptions on the DNN").
///
/// The shared elementwise machinery lives in ElementwiseActivation;
/// subclasses provide the scalar function, its derivative, and - for
/// PWL kinds - the discrete region encoding.
///
//===----------------------------------------------------------------------===//

#ifndef PRDNN_NN_ACTIVATIONLAYERS_H
#define PRDNN_NN_ACTIVATIONLAYERS_H

#include "nn/Layer.h"

namespace prdnn {

/// Base for activations applied independently per coordinate.
class ElementwiseActivation : public ActivationLayer {
public:
  static bool classof(const Layer *L) {
    return !L->isLinear() && L->getKind() != LayerKind::MaxPool2D;
  }

  int inputSize() const override { return Size; }
  int outputSize() const override { return Size; }

  Vector apply(const Vector &In) const override;
  /// Fused elementwise sweep over the whole batch buffer.
  Matrix applyBatch(const Matrix &In) const override;
  Vector applyLinearized(const Vector &Center, const Vector &In) const override;
  Vector vjpLinearized(const Vector &Center,
                       const Vector &GradOut) const override;

  // PWL-only entry points; ElementwiseActivation implements them in
  // terms of regionOf/regionValue and subclasses opt in by overriding
  // isRegional() to true.
  std::vector<int> pattern(const Vector &In) const override;
  Vector applyWithPattern(const Vector &In,
                          const std::vector<int> &Pat) const override;
  Vector vjpWithPattern(const std::vector<int> &Pat,
                        const Vector &GradOut) const override;
  void appendCrossings(const Vector &Left, const Vector &Right,
                       std::vector<double> &Fractions) const override;

  /// Scalar pre-activation thresholds separating the affine pieces
  /// (PWL only): {0} for (Leaky)ReLU, {-1, 1} for HardTanh.
  virtual std::vector<double> thresholds() const;

protected:
  ElementwiseActivation(LayerKind Kind, int Size)
      : ActivationLayer(Kind), Size(Size) {}

  /// Scalar activation value.
  virtual double value(double X) const = 0;
  /// Scalar derivative (one-sided convention at kinks; ReLU'(0) = 0 per
  /// Appendix C).
  virtual double derivative(double X) const = 0;

  /// Discrete linear-region id of scalar input \p X (PWL only).
  virtual int regionOf(double X) const;
  /// Value of the region-\p R affine piece at \p X (PWL only).
  virtual double regionValue(int R, double X) const;
  /// Slope of the region-\p R affine piece (PWL only).
  virtual double regionSlope(int R) const;

private:
  int Size;
};

/// ReLU (Definition 2.3). Regions: 0 = inactive (zero), 1 = active
/// (identity). At exactly 0 the zero region is chosen, consistently
/// (Appendix C).
class ReLULayer : public ElementwiseActivation {
public:
  explicit ReLULayer(int Size)
      : ElementwiseActivation(LayerKind::ReLU, Size) {}
  static bool classof(const Layer *L) {
    return L->getKind() == LayerKind::ReLU;
  }
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<ReLULayer>(inputSize());
  }
  std::string describe() const override;

protected:
  double value(double X) const override { return X > 0.0 ? X : 0.0; }
  double derivative(double X) const override { return X > 0.0 ? 1.0 : 0.0; }
  int regionOf(double X) const override { return X > 0.0 ? 1 : 0; }
  double regionValue(int R, double X) const override { return R ? X : 0.0; }
  double regionSlope(int R) const override { return R ? 1.0 : 0.0; }

public:
  std::vector<double> thresholds() const override { return {0.0}; }
};

/// LeakyReLU with negative-side slope \p Alpha. Regions: 0 = negative
/// side, 1 = positive side.
class LeakyReLULayer : public ElementwiseActivation {
public:
  LeakyReLULayer(int Size, double Alpha)
      : ElementwiseActivation(LayerKind::LeakyReLU, Size), Alpha(Alpha) {}
  static bool classof(const Layer *L) {
    return L->getKind() == LayerKind::LeakyReLU;
  }
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<LeakyReLULayer>(inputSize(), Alpha);
  }
  std::string describe() const override;
  double alpha() const { return Alpha; }

protected:
  double value(double X) const override { return X > 0.0 ? X : Alpha * X; }
  double derivative(double X) const override {
    return X > 0.0 ? 1.0 : Alpha;
  }
  int regionOf(double X) const override { return X > 0.0 ? 1 : 0; }
  double regionValue(int R, double X) const override {
    return R ? X : Alpha * X;
  }
  double regionSlope(int R) const override { return R ? 1.0 : Alpha; }

public:
  std::vector<double> thresholds() const override { return {0.0}; }

private:
  double Alpha;
};

/// HardTanh: clamp to [-1, 1]. Regions: -1 = saturated low, 0 = linear,
/// 1 = saturated high.
class HardTanhLayer : public ElementwiseActivation {
public:
  explicit HardTanhLayer(int Size)
      : ElementwiseActivation(LayerKind::HardTanh, Size) {}
  static bool classof(const Layer *L) {
    return L->getKind() == LayerKind::HardTanh;
  }
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<HardTanhLayer>(inputSize());
  }
  std::string describe() const override;

protected:
  double value(double X) const override {
    return X < -1.0 ? -1.0 : (X > 1.0 ? 1.0 : X);
  }
  double derivative(double X) const override {
    return (X > -1.0 && X < 1.0) ? 1.0 : 0.0;
  }
  int regionOf(double X) const override {
    return X < -1.0 ? -1 : (X > 1.0 ? 1 : 0);
  }
  double regionValue(int R, double X) const override {
    return R == 0 ? X : static_cast<double>(R);
  }
  double regionSlope(int R) const override { return R == 0 ? 1.0 : 0.0; }

public:
  std::vector<double> thresholds() const override { return {-1.0, 1.0}; }
};

/// Hyperbolic tangent (smooth; pointwise repair only).
class TanhLayer : public ElementwiseActivation {
public:
  explicit TanhLayer(int Size)
      : ElementwiseActivation(LayerKind::Tanh, Size) {}
  static bool classof(const Layer *L) {
    return L->getKind() == LayerKind::Tanh;
  }
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<TanhLayer>(inputSize());
  }
  std::string describe() const override;

protected:
  double value(double X) const override;
  double derivative(double X) const override;
};

/// Logistic sigmoid (smooth; pointwise repair only).
class SigmoidLayer : public ElementwiseActivation {
public:
  explicit SigmoidLayer(int Size)
      : ElementwiseActivation(LayerKind::Sigmoid, Size) {}
  static bool classof(const Layer *L) {
    return L->getKind() == LayerKind::Sigmoid;
  }
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<SigmoidLayer>(inputSize());
  }
  std::string describe() const override;

protected:
  double value(double X) const override;
  double derivative(double X) const override;
};

} // namespace prdnn

#endif // PRDNN_NN_ACTIVATIONLAYERS_H
