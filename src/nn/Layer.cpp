//===- nn/Layer.cpp --------------------------------------------------------===//

#include "nn/Layer.h"

#include "support/Error.h"
#include "support/Parallel.h"

using namespace prdnn;

const char *prdnn::toString(LayerKind Kind) {
  switch (Kind) {
  case LayerKind::FullyConnected:
    return "fc";
  case LayerKind::Conv2D:
    return "conv";
  case LayerKind::AvgPool2D:
    return "avgpool";
  case LayerKind::Flatten:
    return "flatten";
  case LayerKind::ReLU:
    return "relu";
  case LayerKind::LeakyReLU:
    return "leakyrelu";
  case LayerKind::HardTanh:
    return "hardtanh";
  case LayerKind::MaxPool2D:
    return "maxpool";
  case LayerKind::Tanh:
    return "tanh";
  case LayerKind::Sigmoid:
    return "sigmoid";
  }
  PRDNN_UNREACHABLE("bad LayerKind");
}

Layer::~Layer() = default;

Matrix Layer::applyBatch(const Matrix &In) const {
  assert(In.cols() == inputSize() && "batched input size mismatch");
  Matrix Out(In.rows(), outputSize());
  parallelFor(0, In.rows(), [&](std::int64_t R) {
    Out.setRow(static_cast<int>(R), apply(In.row(static_cast<int>(R))));
  });
  return Out;
}

void prdnn::applyBatchToRows(const Layer &L, std::vector<Vector> &Rows) {
  Matrix Out = L.applyBatch(Matrix::fromRowVectors(Rows));
  for (size_t I = 0; I < Rows.size(); ++I)
    Rows[I] = Out.row(static_cast<int>(I));
}

Matrix LinearLayer::vjpLinearBatch(const Matrix &GradOut) const {
  assert(GradOut.cols() == outputSize() && "batched gradient size mismatch");
  Matrix Out(GradOut.rows(), inputSize());
  parallelFor(0, GradOut.rows(), [&](std::int64_t R) {
    Out.setRow(static_cast<int>(R),
               vjpLinear(GradOut.row(static_cast<int>(R))));
  });
  return Out;
}

void LinearLayer::getParams(std::vector<double> &Out) const {
  Out.clear();
  assert(numParams() == 0 && "parameterized layer must override getParams");
}

void LinearLayer::setParams(const std::vector<double> &In) {
  (void)In;
  assert(numParams() == 0 && "parameterized layer must override setParams");
}

void LinearLayer::addToParams(const std::vector<double> &Delta) {
  (void)Delta;
  assert(numParams() == 0 && "parameterized layer must override addToParams");
}

void LinearLayer::accumulateParamGrad(const Vector &In, const Vector &GradOut,
                                      std::vector<double> &Accum) const {
  (void)In;
  (void)GradOut;
  (void)Accum;
  assert(numParams() == 0 &&
         "parameterized layer must override accumulateParamGrad");
}

void LinearLayer::paramJacobian(const Matrix &M, const Vector &In,
                                Matrix &J) const {
  (void)M;
  (void)In;
  (void)J;
  PRDNN_UNREACHABLE("paramJacobian requested on a parameter-free layer");
}

std::vector<int> ActivationLayer::pattern(const Vector &In) const {
  (void)In;
  PRDNN_UNREACHABLE("activation patterns require a piecewise-linear layer");
}

Vector ActivationLayer::applyWithPattern(const Vector &In,
                                         const std::vector<int> &Pat) const {
  (void)In;
  (void)Pat;
  PRDNN_UNREACHABLE("pinned-pattern evaluation requires a PWL layer");
}

Vector ActivationLayer::vjpWithPattern(const std::vector<int> &Pat,
                                       const Vector &GradOut) const {
  (void)Pat;
  (void)GradOut;
  PRDNN_UNREACHABLE("pinned-pattern VJP requires a PWL layer");
}

void ActivationLayer::appendCrossings(const Vector &Left, const Vector &Right,
                                      std::vector<double> &Fractions) const {
  (void)Left;
  (void)Right;
  (void)Fractions;
  PRDNN_UNREACHABLE("pattern crossings require a PWL layer");
}
