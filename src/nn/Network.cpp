//===- nn/Network.cpp -------------------------------------------------------===//

#include "nn/Network.h"

#include "nn/LinearLayers.h"
#include "support/Casting.h"

#include <cassert>

using namespace prdnn;

Network::Network(const Network &Other) {
  Layers.reserve(Other.Layers.size());
  for (const auto &L : Other.Layers)
    Layers.push_back(L->clone());
}

Network &Network::operator=(const Network &Other) {
  if (this == &Other)
    return *this;
  Layers.clear();
  Layers.reserve(Other.Layers.size());
  for (const auto &L : Other.Layers)
    Layers.push_back(L->clone());
  return *this;
}

int Network::addLayer(std::unique_ptr<Layer> L) {
  assert(L && "null layer");
  assert((Layers.empty() || Layers.back()->outputSize() == L->inputSize()) &&
         "adjacent layer sizes must match");
  Layers.push_back(std::move(L));
  return numLayers() - 1;
}

int Network::inputSize() const {
  assert(!Layers.empty() && "empty network");
  return Layers.front()->inputSize();
}

int Network::outputSize() const {
  assert(!Layers.empty() && "empty network");
  return Layers.back()->outputSize();
}

Vector Network::evaluate(const Vector &X) const {
  Vector Current = X;
  for (const auto &L : Layers)
    Current = L->apply(Current);
  return Current;
}

Matrix Network::applyBatch(const Matrix &Xs) const {
  Matrix Current = Xs;
  for (const auto &L : Layers)
    Current = L->applyBatch(Current);
  return Current;
}

std::vector<Vector> Network::intermediates(const Vector &X) const {
  std::vector<Vector> Values;
  Values.reserve(Layers.size() + 1);
  Values.push_back(X);
  for (const auto &L : Layers)
    Values.push_back(L->apply(Values.back()));
  return Values;
}

std::vector<Matrix> Network::intermediatesBatch(const Matrix &Xs) const {
  std::vector<Matrix> Values;
  Values.reserve(Layers.size() + 1);
  Values.push_back(Xs);
  for (const auto &L : Layers)
    Values.push_back(L->applyBatch(Values.back()));
  return Values;
}

bool Network::isPiecewiseLinear() const {
  for (const auto &L : Layers)
    if (!L->isPiecewiseLinear())
      return false;
  return true;
}

std::vector<int> Network::parameterizedLayerIndices() const {
  std::vector<int> Result;
  for (int I = 0; I < numLayers(); ++I) {
    const auto *Linear = dyn_cast<LinearLayer>(&layer(I));
    if (Linear && Linear->numParams() > 0)
      Result.push_back(I);
  }
  return Result;
}

int Network::totalParams() const {
  int Total = 0;
  for (int I = 0; I < numLayers(); ++I)
    if (const auto *Linear = dyn_cast<LinearLayer>(&layer(I)))
      Total += Linear->numParams();
  return Total;
}

std::string Network::describe() const {
  std::string Result;
  for (const auto &L : Layers) {
    Result += L->describe();
    Result += '\n';
  }
  return Result;
}

double prdnn::accuracy(const Network &Net, const std::vector<Vector> &Inputs,
                       const std::vector<int> &Labels) {
  assert(Inputs.size() == Labels.size() && "inputs/labels length mismatch");
  if (Inputs.empty())
    return 0.0;
  int Correct = 0;
  for (size_t I = 0; I < Inputs.size(); ++I)
    if (Net.classify(Inputs[I]) == Labels[I])
      ++Correct;
  return static_cast<double>(Correct) / static_cast<double>(Inputs.size());
}
