//===- nn/Serialization.cpp ---------------------------------------------------===//

#include "nn/Serialization.h"

#include "nn/ActivationLayers.h"
#include "nn/LinearLayers.h"
#include "nn/PoolLayers.h"
#include "persist/Serialize.h"
#include "support/Casting.h"
#include "support/Error.h"

#include <cstring>
#include <fstream>
#include <iomanip>
#include <sstream>

using namespace prdnn;

void prdnn::writeNetwork(const Network &Net, std::ostream &Os) {
  Os << "prdnn-network v1\n";
  Os << "layers " << Net.numLayers() << "\n";
  Os << std::setprecision(17);
  for (int I = 0; I < Net.numLayers(); ++I) {
    const Layer &L = Net.layer(I);
    switch (L.getKind()) {
    case LayerKind::FullyConnected: {
      const auto &Fc = cast<FullyConnectedLayer>(L);
      Os << "fc " << Fc.outputSize() << " " << Fc.inputSize() << "\n";
      std::vector<double> Params;
      Fc.getParams(Params);
      for (size_t P = 0; P < Params.size(); ++P)
        Os << Params[P] << (P + 1 == Params.size() ? "\n" : " ");
      break;
    }
    case LayerKind::Conv2D: {
      const auto &Conv = cast<Conv2DLayer>(L);
      Os << "conv " << Conv.inChannels() << " " << Conv.inHeight() << " "
         << Conv.inWidth() << " " << Conv.outChannels() << " "
         << Conv.kernelHeight() << " " << Conv.kernelWidth() << " "
         << Conv.stride() << " " << Conv.padding() << "\n";
      std::vector<double> Params;
      Conv.getParams(Params);
      for (size_t P = 0; P < Params.size(); ++P)
        Os << Params[P] << (P + 1 == Params.size() ? "\n" : " ");
      break;
    }
    case LayerKind::AvgPool2D: {
      const auto &Pool = cast<AvgPool2DLayer>(L);
      const PoolGeometry &G = Pool.geometry();
      Os << "avgpool " << G.Channels << " " << G.InH << " " << G.InW << " "
         << G.WindowH << " " << G.WindowW << " " << G.Stride << "\n";
      break;
    }
    case LayerKind::MaxPool2D: {
      const auto &Pool = cast<MaxPool2DLayer>(L);
      const PoolGeometry &G = Pool.geometry();
      Os << "maxpool " << G.Channels << " " << G.InH << " " << G.InW << " "
         << G.WindowH << " " << G.WindowW << " " << G.Stride << "\n";
      break;
    }
    case LayerKind::Flatten:
      Os << "flatten " << L.inputSize() << "\n";
      break;
    case LayerKind::ReLU:
      Os << "relu " << L.inputSize() << "\n";
      break;
    case LayerKind::LeakyReLU:
      Os << "leakyrelu " << L.inputSize() << " "
         << cast<LeakyReLULayer>(L).alpha() << "\n";
      break;
    case LayerKind::HardTanh:
      Os << "hardtanh " << L.inputSize() << "\n";
      break;
    case LayerKind::Tanh:
      Os << "tanh " << L.inputSize() << "\n";
      break;
    case LayerKind::Sigmoid:
      Os << "sigmoid " << L.inputSize() << "\n";
      break;
    }
  }
}

namespace {

/// Pulls N doubles; false on malformed input.
bool readDoubles(std::istream &Is, size_t N, std::vector<double> &Out) {
  Out.resize(N);
  for (size_t I = 0; I < N; ++I)
    if (!(Is >> Out[I]))
      return false;
  return true;
}

// Dimension sanity bounds, mirroring persist/Serialize.cpp: hostile or
// bit-rotted input must fail validation, not trigger huge allocations,
// signed overflow, or constructor asserts that vanish in Release.
constexpr int kMaxDim = 1 << 22;
constexpr long long kMaxParams = 1ll << 28;

bool validDim(int V) { return V > 0 && V <= kMaxDim; }

/// A*B*C as a flat activation size: every partial product is checked
/// before multiplying, so dimensions that each pass validDim cannot
/// overflow (or merely explode) the product.
bool validSize3(int A, int B, int C) {
  long long AB = static_cast<long long>(A) * B;
  return AB <= kMaxDim && AB * C <= kMaxDim;
}

/// OutC*InC*KH*KW + OutC without intermediate overflow; -1 when over
/// the kMaxParams bound.
long long convParamCount(int OutC, int InC, int KH, int KW) {
  long long A = static_cast<long long>(OutC) * InC; // <= 2^44
  long long B = static_cast<long long>(KH) * KW;    // <= 2^44
  if (A > kMaxParams || B > kMaxParams || A > kMaxParams / B)
    return -1;
  long long Total = A * B + OutC;
  return Total > kMaxParams ? -1 : Total;
}

} // namespace

std::optional<Network> prdnn::readNetwork(std::istream &Is) {
  std::string Magic, Version;
  if (!(Is >> Magic >> Version) || Magic != "prdnn-network" ||
      Version != "v1")
    return std::nullopt;
  std::string Token;
  int NumLayers = 0;
  if (!(Is >> Token >> NumLayers) || Token != "layers" || NumLayers < 0 ||
      NumLayers > kMaxDim)
    return std::nullopt;

  Network Net;
  /// Appends \p L after validating the size chain Network::addLayer
  /// only asserts (asserts are compiled out in Release; malformed
  /// input must yield nullopt, never an inconsistent network).
  auto Append = [&](std::unique_ptr<Layer> L) {
    if (Net.numLayers() > 0 &&
        Net.layer(Net.numLayers() - 1).outputSize() != L->inputSize())
      return false;
    Net.addLayer(std::move(L));
    return true;
  };
  for (int I = 0; I < NumLayers; ++I) {
    std::string Kind;
    if (!(Is >> Kind))
      return std::nullopt;
    if (Kind == "fc") {
      int Out = 0, In = 0;
      if (!(Is >> Out >> In) || !validDim(Out) || !validDim(In) ||
          static_cast<long long>(Out) * In + Out > kMaxParams)
        return std::nullopt;
      std::vector<double> Params;
      if (!readDoubles(Is, static_cast<size_t>(Out) * In + Out, Params))
        return std::nullopt;
      Matrix W(Out, In);
      size_t P = 0;
      for (int R = 0; R < Out; ++R)
        for (int C = 0; C < In; ++C)
          W(R, C) = Params[P++];
      Vector B(Out);
      for (int R = 0; R < Out; ++R)
        B[R] = Params[P++];
      if (!Append(std::make_unique<FullyConnectedLayer>(std::move(W),
                                                        std::move(B))))
        return std::nullopt;
    } else if (Kind == "conv") {
      int InC, InH, InW, OutC, KH, KW, Stride, Pad;
      if (!(Is >> InC >> InH >> InW >> OutC >> KH >> KW >> Stride >> Pad))
        return std::nullopt;
      if (!validDim(InC) || !validDim(InH) || !validDim(InW) ||
          !validDim(OutC) || !validDim(KH) || !validDim(KW) || Stride < 1 ||
          Pad < 0 || Pad > kMaxDim || InH + 2 * Pad < KH ||
          InW + 2 * Pad < KW || !validSize3(InC, InH, InW))
        return std::nullopt;
      int OutH = (InH + 2 * Pad - KH) / Stride + 1;
      int OutW = (InW + 2 * Pad - KW) / Stride + 1;
      if (!validSize3(OutC, OutH, OutW))
        return std::nullopt;
      long long TotalParams = convParamCount(OutC, InC, KH, KW);
      if (TotalParams < 0)
        return std::nullopt;
      std::vector<double> Params;
      size_t KernelCount = static_cast<size_t>(TotalParams - OutC);
      if (!readDoubles(Is, KernelCount + static_cast<size_t>(OutC), Params))
        return std::nullopt;
      std::vector<double> Kernels(Params.begin(),
                                  Params.begin() + KernelCount);
      std::vector<double> Bias(Params.begin() + KernelCount, Params.end());
      if (!Append(std::make_unique<Conv2DLayer>(InC, InH, InW, OutC, KH, KW,
                                                Stride, Pad,
                                                std::move(Kernels),
                                                std::move(Bias))))
        return std::nullopt;
    } else if (Kind == "avgpool" || Kind == "maxpool") {
      int C, H, W, WH, WW, S;
      if (!(Is >> C >> H >> W >> WH >> WW >> S))
        return std::nullopt;
      if (!validDim(C) || !validDim(H) || !validDim(W) || !validDim(WH) ||
          !validDim(WW) || S < 1 || WH > H || WW > W || (H - WH) % S != 0 ||
          (W - WW) % S != 0 || !validSize3(C, H, W))
        return std::nullopt;
      std::unique_ptr<Layer> L;
      if (Kind == "avgpool")
        L = std::make_unique<AvgPool2DLayer>(C, H, W, WH, WW, S);
      else
        L = std::make_unique<MaxPool2DLayer>(C, H, W, WH, WW, S);
      if (!Append(std::move(L)))
        return std::nullopt;
    } else if (Kind == "leakyrelu") {
      int N;
      double Alpha;
      if (!(Is >> N >> Alpha) || !validDim(N))
        return std::nullopt;
      if (!Append(std::make_unique<LeakyReLULayer>(N, Alpha)))
        return std::nullopt;
    } else if (Kind == "flatten" || Kind == "relu" || Kind == "hardtanh" ||
               Kind == "tanh" || Kind == "sigmoid") {
      int N;
      if (!(Is >> N) || !validDim(N))
        return std::nullopt;
      std::unique_ptr<Layer> L;
      if (Kind == "flatten")
        L = std::make_unique<FlattenLayer>(N);
      else if (Kind == "relu")
        L = std::make_unique<ReLULayer>(N);
      else if (Kind == "hardtanh")
        L = std::make_unique<HardTanhLayer>(N);
      else if (Kind == "tanh")
        L = std::make_unique<TanhLayer>(N);
      else
        L = std::make_unique<SigmoidLayer>(N);
      if (!Append(std::move(L)))
        return std::nullopt;
    } else {
      return std::nullopt;
    }
  }
  return Net;
}

bool prdnn::saveNetwork(const Network &Net, const std::string &Path) {
  std::ofstream Os(Path);
  if (!Os)
    return false;
  writeNetwork(Net, Os);
  return static_cast<bool>(Os);
}

std::optional<Network> prdnn::loadNetwork(const std::string &Path) {
  {
    // Binary blobs (persist/Codec.h frames) are detected by magic and
    // load through the bounds-checked binary reader.
    std::ifstream Probe(Path, std::ios::binary);
    if (!Probe)
      return std::nullopt;
    char Magic[4] = {};
    Probe.read(Magic, sizeof(Magic));
    if (Probe.gcount() == sizeof(Magic) &&
        std::memcmp(Magic, "PRDA", sizeof(Magic)) == 0)
      return persist::loadNetworkBinary(Path);
  }
  std::ifstream Is(Path);
  if (!Is)
    return std::nullopt;
  return readNetwork(Is);
}
