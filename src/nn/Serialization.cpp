//===- nn/Serialization.cpp ---------------------------------------------------===//

#include "nn/Serialization.h"

#include "nn/ActivationLayers.h"
#include "nn/LinearLayers.h"
#include "nn/PoolLayers.h"
#include "support/Casting.h"
#include "support/Error.h"

#include <fstream>
#include <iomanip>
#include <sstream>

using namespace prdnn;

void prdnn::writeNetwork(const Network &Net, std::ostream &Os) {
  Os << "prdnn-network v1\n";
  Os << "layers " << Net.numLayers() << "\n";
  Os << std::setprecision(17);
  for (int I = 0; I < Net.numLayers(); ++I) {
    const Layer &L = Net.layer(I);
    switch (L.getKind()) {
    case LayerKind::FullyConnected: {
      const auto &Fc = cast<FullyConnectedLayer>(L);
      Os << "fc " << Fc.outputSize() << " " << Fc.inputSize() << "\n";
      std::vector<double> Params;
      Fc.getParams(Params);
      for (size_t P = 0; P < Params.size(); ++P)
        Os << Params[P] << (P + 1 == Params.size() ? "\n" : " ");
      break;
    }
    case LayerKind::Conv2D: {
      const auto &Conv = cast<Conv2DLayer>(L);
      Os << "conv " << Conv.inChannels() << " " << Conv.inHeight() << " "
         << Conv.inWidth() << " " << Conv.outChannels() << " "
         << Conv.kernelHeight() << " " << Conv.kernelWidth() << " "
         << Conv.stride() << " " << Conv.padding() << "\n";
      std::vector<double> Params;
      Conv.getParams(Params);
      for (size_t P = 0; P < Params.size(); ++P)
        Os << Params[P] << (P + 1 == Params.size() ? "\n" : " ");
      break;
    }
    case LayerKind::AvgPool2D: {
      const auto &Pool = cast<AvgPool2DLayer>(L);
      const PoolGeometry &G = Pool.geometry();
      Os << "avgpool " << G.Channels << " " << G.InH << " " << G.InW << " "
         << G.WindowH << " " << G.WindowW << " " << G.Stride << "\n";
      break;
    }
    case LayerKind::MaxPool2D: {
      const auto &Pool = cast<MaxPool2DLayer>(L);
      const PoolGeometry &G = Pool.geometry();
      Os << "maxpool " << G.Channels << " " << G.InH << " " << G.InW << " "
         << G.WindowH << " " << G.WindowW << " " << G.Stride << "\n";
      break;
    }
    case LayerKind::Flatten:
      Os << "flatten " << L.inputSize() << "\n";
      break;
    case LayerKind::ReLU:
      Os << "relu " << L.inputSize() << "\n";
      break;
    case LayerKind::LeakyReLU:
      Os << "leakyrelu " << L.inputSize() << " "
         << cast<LeakyReLULayer>(L).alpha() << "\n";
      break;
    case LayerKind::HardTanh:
      Os << "hardtanh " << L.inputSize() << "\n";
      break;
    case LayerKind::Tanh:
      Os << "tanh " << L.inputSize() << "\n";
      break;
    case LayerKind::Sigmoid:
      Os << "sigmoid " << L.inputSize() << "\n";
      break;
    }
  }
}

namespace {

/// Pulls N doubles; false on malformed input.
bool readDoubles(std::istream &Is, size_t N, std::vector<double> &Out) {
  Out.resize(N);
  for (size_t I = 0; I < N; ++I)
    if (!(Is >> Out[I]))
      return false;
  return true;
}

} // namespace

std::optional<Network> prdnn::readNetwork(std::istream &Is) {
  std::string Magic, Version;
  if (!(Is >> Magic >> Version) || Magic != "prdnn-network" ||
      Version != "v1")
    return std::nullopt;
  std::string Token;
  int NumLayers = 0;
  if (!(Is >> Token >> NumLayers) || Token != "layers" || NumLayers < 0)
    return std::nullopt;

  Network Net;
  for (int I = 0; I < NumLayers; ++I) {
    std::string Kind;
    if (!(Is >> Kind))
      return std::nullopt;
    if (Kind == "fc") {
      int Out = 0, In = 0;
      if (!(Is >> Out >> In) || Out <= 0 || In <= 0)
        return std::nullopt;
      std::vector<double> Params;
      if (!readDoubles(Is, static_cast<size_t>(Out) * In + Out, Params))
        return std::nullopt;
      Matrix W(Out, In);
      size_t P = 0;
      for (int R = 0; R < Out; ++R)
        for (int C = 0; C < In; ++C)
          W(R, C) = Params[P++];
      Vector B(Out);
      for (int R = 0; R < Out; ++R)
        B[R] = Params[P++];
      Net.addLayer(std::make_unique<FullyConnectedLayer>(std::move(W),
                                                         std::move(B)));
    } else if (Kind == "conv") {
      int InC, InH, InW, OutC, KH, KW, Stride, Pad;
      if (!(Is >> InC >> InH >> InW >> OutC >> KH >> KW >> Stride >> Pad))
        return std::nullopt;
      std::vector<double> Params;
      size_t KernelCount =
          static_cast<size_t>(OutC) * InC * KH * KW;
      if (!readDoubles(Is, KernelCount + static_cast<size_t>(OutC), Params))
        return std::nullopt;
      std::vector<double> Kernels(Params.begin(),
                                  Params.begin() + KernelCount);
      std::vector<double> Bias(Params.begin() + KernelCount, Params.end());
      Net.addLayer(std::make_unique<Conv2DLayer>(InC, InH, InW, OutC, KH, KW,
                                                 Stride, Pad,
                                                 std::move(Kernels),
                                                 std::move(Bias)));
    } else if (Kind == "avgpool" || Kind == "maxpool") {
      int C, H, W, WH, WW, S;
      if (!(Is >> C >> H >> W >> WH >> WW >> S))
        return std::nullopt;
      if (Kind == "avgpool")
        Net.addLayer(std::make_unique<AvgPool2DLayer>(C, H, W, WH, WW, S));
      else
        Net.addLayer(std::make_unique<MaxPool2DLayer>(C, H, W, WH, WW, S));
    } else if (Kind == "flatten") {
      int N;
      if (!(Is >> N))
        return std::nullopt;
      Net.addLayer(std::make_unique<FlattenLayer>(N));
    } else if (Kind == "relu") {
      int N;
      if (!(Is >> N))
        return std::nullopt;
      Net.addLayer(std::make_unique<ReLULayer>(N));
    } else if (Kind == "leakyrelu") {
      int N;
      double Alpha;
      if (!(Is >> N >> Alpha))
        return std::nullopt;
      Net.addLayer(std::make_unique<LeakyReLULayer>(N, Alpha));
    } else if (Kind == "hardtanh") {
      int N;
      if (!(Is >> N))
        return std::nullopt;
      Net.addLayer(std::make_unique<HardTanhLayer>(N));
    } else if (Kind == "tanh") {
      int N;
      if (!(Is >> N))
        return std::nullopt;
      Net.addLayer(std::make_unique<TanhLayer>(N));
    } else if (Kind == "sigmoid") {
      int N;
      if (!(Is >> N))
        return std::nullopt;
      Net.addLayer(std::make_unique<SigmoidLayer>(N));
    } else {
      return std::nullopt;
    }
  }
  return Net;
}

bool prdnn::saveNetwork(const Network &Net, const std::string &Path) {
  std::ofstream Os(Path);
  if (!Os)
    return false;
  writeNetwork(Net, Os);
  return static_cast<bool>(Os);
}

std::optional<Network> prdnn::loadNetwork(const std::string &Path) {
  std::ifstream Is(Path);
  if (!Is)
    return std::nullopt;
  return readNetwork(Is);
}
