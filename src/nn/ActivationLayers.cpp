//===- nn/ActivationLayers.cpp ----------------------------------------------===//

#include "nn/ActivationLayers.h"

#include "support/Error.h"
#include "support/Parallel.h"

#include <cassert>
#include <cmath>
#include <cstdio>

using namespace prdnn;

Vector ElementwiseActivation::apply(const Vector &In) const {
  assert(In.size() == Size && "activation input size mismatch");
  Vector Out(Size);
  for (int I = 0; I < Size; ++I)
    Out[I] = value(In[I]);
  return Out;
}

Matrix ElementwiseActivation::applyBatch(const Matrix &In) const {
  assert(In.cols() == Size && "activation input size mismatch");
  Matrix Out(In.rows(), Size);
  parallelForRanges(0, In.rows(), [&](std::int64_t Begin, std::int64_t End) {
    for (int R = static_cast<int>(Begin); R < End; ++R) {
      const double *InRow = In.rowData(R);
      double *OutRow = Out.rowData(R);
      for (int I = 0; I < Size; ++I)
        OutRow[I] = value(InRow[I]);
    }
  });
  return Out;
}

Vector ElementwiseActivation::applyLinearized(const Vector &Center,
                                              const Vector &In) const {
  // Linearize[sigma, Center](In) = sigma(c) + sigma'(c) (In - c),
  // coordinatewise (Definition 4.2).
  assert(Center.size() == Size && In.size() == Size &&
         "activation input size mismatch");
  Vector Out(Size);
  for (int I = 0; I < Size; ++I) {
    double C = Center[I];
    Out[I] = value(C) + derivative(C) * (In[I] - C);
  }
  return Out;
}

Vector ElementwiseActivation::vjpLinearized(const Vector &Center,
                                            const Vector &GradOut) const {
  assert(Center.size() == Size && GradOut.size() == Size &&
         "activation gradient size mismatch");
  Vector Out(Size);
  for (int I = 0; I < Size; ++I)
    Out[I] = derivative(Center[I]) * GradOut[I];
  return Out;
}

std::vector<int> ElementwiseActivation::pattern(const Vector &In) const {
  assert(isPiecewiseLinear() && "patterns require a PWL activation");
  assert(In.size() == Size && "activation input size mismatch");
  std::vector<int> Pat(static_cast<size_t>(Size));
  for (int I = 0; I < Size; ++I)
    Pat[I] = regionOf(In[I]);
  return Pat;
}

Vector ElementwiseActivation::applyWithPattern(
    const Vector &In, const std::vector<int> &Pat) const {
  assert(isPiecewiseLinear() && "pinned patterns require a PWL activation");
  assert(static_cast<int>(Pat.size()) == Size && "pattern size mismatch");
  Vector Out(Size);
  for (int I = 0; I < Size; ++I)
    Out[I] = regionValue(Pat[I], In[I]);
  return Out;
}

Vector ElementwiseActivation::vjpWithPattern(const std::vector<int> &Pat,
                                             const Vector &GradOut) const {
  assert(isPiecewiseLinear() && "pinned patterns require a PWL activation");
  assert(static_cast<int>(Pat.size()) == Size && "pattern size mismatch");
  Vector Out(Size);
  for (int I = 0; I < Size; ++I)
    Out[I] = regionSlope(Pat[I]) * GradOut[I];
  return Out;
}

void ElementwiseActivation::appendCrossings(
    const Vector &Left, const Vector &Right,
    std::vector<double> &Fractions) const {
  assert(isPiecewiseLinear() && "pattern crossings require a PWL activation");
  assert(Left.size() == inputSize() && Right.size() == inputSize() &&
         "crossing segment size mismatch");
  std::vector<double> Thresholds = thresholds();
  for (int I = 0; I < inputSize(); ++I) {
    for (double Th : Thresholds) {
      double L = Left[I] - Th, R = Right[I] - Th;
      if ((L < 0.0 && R > 0.0) || (L > 0.0 && R < 0.0))
        Fractions.push_back(L / (L - R));
    }
  }
}

std::vector<double> ElementwiseActivation::thresholds() const {
  PRDNN_UNREACHABLE("thresholds on a non-PWL activation");
}

int ElementwiseActivation::regionOf(double X) const {
  (void)X;
  PRDNN_UNREACHABLE("regionOf on a non-PWL activation");
}

double ElementwiseActivation::regionValue(int R, double X) const {
  (void)R;
  (void)X;
  PRDNN_UNREACHABLE("regionValue on a non-PWL activation");
}

double ElementwiseActivation::regionSlope(int R) const {
  (void)R;
  PRDNN_UNREACHABLE("regionSlope on a non-PWL activation");
}

std::string ReLULayer::describe() const {
  char Buffer[32];
  std::snprintf(Buffer, sizeof(Buffer), "relu %d", inputSize());
  return Buffer;
}

std::string LeakyReLULayer::describe() const {
  char Buffer[48];
  std::snprintf(Buffer, sizeof(Buffer), "leakyrelu %d (alpha=%g)",
                inputSize(), Alpha);
  return Buffer;
}

std::string HardTanhLayer::describe() const {
  char Buffer[32];
  std::snprintf(Buffer, sizeof(Buffer), "hardtanh %d", inputSize());
  return Buffer;
}

double TanhLayer::value(double X) const { return std::tanh(X); }

double TanhLayer::derivative(double X) const {
  double T = std::tanh(X);
  return 1.0 - T * T;
}

std::string TanhLayer::describe() const {
  char Buffer[32];
  std::snprintf(Buffer, sizeof(Buffer), "tanh %d", inputSize());
  return Buffer;
}

double SigmoidLayer::value(double X) const {
  return 1.0 / (1.0 + std::exp(-X));
}

double SigmoidLayer::derivative(double X) const {
  double S = value(X);
  return S * (1.0 - S);
}

std::string SigmoidLayer::describe() const {
  char Buffer[32];
  std::snprintf(Buffer, sizeof(Buffer), "sigmoid %d", inputSize());
  return Buffer;
}
