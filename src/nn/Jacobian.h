//===- nn/Jacobian.h - parameter Jacobians under fixed patterns -*- C++ -*-===//
///
/// \file
/// Computes the Jacobian of the network output with respect to the
/// parameters of one linear layer, holding all activation linearizations
/// fixed - i.e. the quantity D_{params} N'(x) of Algorithm 1, line 5.
/// By Theorem 4.5 this linearization is *exact* for a DDNN when only
/// that value-channel layer changes:
///
///    N'(x; Delta) = N(x) + J_x Delta.
///
/// The paper computes these with PyTorch autodiff; here they come from a
/// closed-form backward accumulation through the layers' vector-Jacobian
/// products. Passing a pinned NetworkPattern computes the Jacobian "as
/// if x belongs to that linear region" (Appendix B), which Algorithm 2
/// needs for key points lying on region boundaries.
///
//===----------------------------------------------------------------------===//

#ifndef PRDNN_NN_JACOBIAN_H
#define PRDNN_NN_JACOBIAN_H

#include "nn/ActivationPattern.h"
#include "nn/Network.h"

namespace prdnn {

struct JacobianResult {
  /// outputSize x numParams(LayerIndex); N'(x; Delta) = Output + J Delta.
  Matrix J;
  /// N(x), evaluated under the pinned pattern when one is given.
  Vector Output;
};

/// See file comment. \p LayerIndex must name a parameterized linear
/// layer; \p Pinned (optional) fixes the activation pattern used both
/// for the forward values and the backward masks.
JacobianResult paramJacobian(const Network &Net, int LayerIndex,
                             const Vector &X,
                             const NetworkPattern *Pinned = nullptr);

/// Batched paramJacobian: result[p] is bit-for-bit the paramJacobian of
/// point \p Xs[p] (pinned to *Pinned[p] when that entry is non-null).
/// Instead of one backward sweep per point, the batch stacks every
/// point's accumulation matrix into a single (batch * outputSize) x dim
/// matrix, so each linear layer's VJP runs as one blocked GEMM shared
/// across the batch and each elementwise activation as one fused
/// diagonal scaling; the per-point work that remains (non-elementwise
/// VJPs, the final parameter-Jacobian assembly) runs in parallel on the
/// global thread pool. \p Pinned may be empty (no pinning) or have one
/// nullable entry per point.
std::vector<JacobianResult>
paramJacobianBatch(const Network &Net, int LayerIndex,
                   const std::vector<Vector> &Xs,
                   const std::vector<const NetworkPattern *> &Pinned = {});

} // namespace prdnn

#endif // PRDNN_NN_JACOBIAN_H
