//===- nn/PoolLayers.cpp ----------------------------------------------------===//

#include "nn/PoolLayers.h"

#include "support/Parallel.h"

#include <cassert>
#include <cstdio>
#include <limits>

using namespace prdnn;

PoolGeometry::PoolGeometry(int Channels, int InH, int InW, int WindowH,
                           int WindowW, int Stride)
    : Channels(Channels), InH(InH), InW(InW), WindowH(WindowH),
      WindowW(WindowW), Stride(Stride) {
  assert(Stride >= 1 && "pool stride must be positive");
  assert((InH - WindowH) % Stride == 0 && (InW - WindowW) % Stride == 0 &&
         "pool windows must tile the input exactly");
  OutH = (InH - WindowH) / Stride + 1;
  OutW = (InW - WindowW) / Stride + 1;
  assert(OutH > 0 && OutW > 0 && "pool window larger than input");
}

// --- MaxPool2DLayer ----------------------------------------------------------

MaxPool2DLayer::MaxPool2DLayer(int Channels, int InH, int InW, int WindowH,
                               int WindowW, int Stride)
    : ActivationLayer(LayerKind::MaxPool2D),
      Geo(Channels, InH, InW, WindowH, WindowW, Stride) {}

Vector MaxPool2DLayer::apply(const Vector &In) const {
  assert(In.size() == inputSize() && "maxpool input size mismatch");
  Vector Out =
      Vector::constant(outputSize(), -std::numeric_limits<double>::infinity());
  Geo.forEachTap([&](int OutIndex, int InIndex, int Tap) {
    (void)Tap;
    if (In[InIndex] > Out[OutIndex])
      Out[OutIndex] = In[InIndex];
  });
  return Out;
}

Matrix MaxPool2DLayer::applyBatch(const Matrix &In) const {
  assert(In.cols() == inputSize() && "batched input size mismatch");
  Matrix Out(In.rows(), outputSize());
  parallelForRanges(0, In.rows(), [&](std::int64_t Begin, std::int64_t End) {
    for (int R = static_cast<int>(Begin); R < End; ++R) {
      const double *InRow = In.rowData(R);
      double *OutRow = Out.rowData(R);
      for (int O = 0; O < outputSize(); ++O)
        OutRow[O] = -std::numeric_limits<double>::infinity();
      Geo.forEachTap([&](int OutIndex, int InIndex, int Tap) {
        (void)Tap;
        if (InRow[InIndex] > OutRow[OutIndex])
          OutRow[OutIndex] = InRow[InIndex];
      });
    }
  });
  return Out;
}

std::unique_ptr<Layer> MaxPool2DLayer::clone() const {
  return std::make_unique<MaxPool2DLayer>(Geo.Channels, Geo.InH, Geo.InW,
                                          Geo.WindowH, Geo.WindowW,
                                          Geo.Stride);
}

std::string MaxPool2DLayer::describe() const {
  char Buffer[80];
  std::snprintf(Buffer, sizeof(Buffer), "maxpool %dx%dx%d (w=%dx%d s=%d)",
                Geo.Channels, Geo.InH, Geo.InW, Geo.WindowH, Geo.WindowW,
                Geo.Stride);
  return Buffer;
}

std::vector<int> MaxPool2DLayer::pattern(const Vector &In) const {
  assert(In.size() == inputSize() && "maxpool input size mismatch");
  std::vector<int> Pat(static_cast<size_t>(outputSize()), 0);
  Vector Best =
      Vector::constant(outputSize(), -std::numeric_limits<double>::infinity());
  Geo.forEachTap([&](int OutIndex, int InIndex, int Tap) {
    // Strict comparison: the first maximum wins, giving a consistent
    // choice on window-tie boundaries.
    if (In[InIndex] > Best[OutIndex]) {
      Best[OutIndex] = In[InIndex];
      Pat[static_cast<size_t>(OutIndex)] = Tap;
    }
  });
  return Pat;
}

Vector MaxPool2DLayer::applyWithPattern(const Vector &In,
                                        const std::vector<int> &Pat) const {
  assert(In.size() == inputSize() && "maxpool input size mismatch");
  assert(static_cast<int>(Pat.size()) == outputSize() &&
         "maxpool pattern size mismatch");
  Vector Out(outputSize());
  Geo.forEachTap([&](int OutIndex, int InIndex, int Tap) {
    if (Pat[static_cast<size_t>(OutIndex)] == Tap)
      Out[OutIndex] = In[InIndex];
  });
  return Out;
}

Vector MaxPool2DLayer::applyLinearized(const Vector &Center,
                                       const Vector &In) const {
  // Linearize[max, c](x) selects, for each window, the coordinate that
  // attains the max at the center: max(c) + (x - c)[argmax] = x[argmax].
  return applyWithPattern(In, pattern(Center));
}

Vector MaxPool2DLayer::vjpLinearized(const Vector &Center,
                                     const Vector &GradOut) const {
  return vjpWithPattern(pattern(Center), GradOut);
}

Vector MaxPool2DLayer::vjpWithPattern(const std::vector<int> &Pat,
                                      const Vector &GradOut) const {
  assert(GradOut.size() == outputSize() && "maxpool gradient size mismatch");
  assert(static_cast<int>(Pat.size()) == outputSize() &&
         "maxpool pattern size mismatch");
  Vector GradIn(inputSize());
  Geo.forEachTap([&](int OutIndex, int InIndex, int Tap) {
    if (Pat[static_cast<size_t>(OutIndex)] == Tap)
      GradIn[InIndex] += GradOut[OutIndex];
  });
  return GradIn;
}

void MaxPool2DLayer::appendCrossings(const Vector &Left, const Vector &Right,
                                     std::vector<double> &Fractions) const {
  assert(Left.size() == inputSize() && Right.size() == inputSize() &&
         "crossing segment size mismatch");
  // The in-window argmax can change wherever two window entries cross;
  // collecting every pairwise crossing over-approximates the true
  // pattern-change set, which only oversubdivides (sound).
  int WindowSize = Geo.WindowH * Geo.WindowW;
  std::vector<int> Taps(static_cast<size_t>(WindowSize));
  for (int C = 0; C < Geo.Channels; ++C)
    for (int OY = 0; OY < Geo.OutH; ++OY)
      for (int OX = 0; OX < Geo.OutW; ++OX) {
        int T = 0;
        for (int Y = 0; Y < Geo.WindowH; ++Y)
          for (int X = 0; X < Geo.WindowW; ++X) {
            int IY = OY * Geo.Stride + Y;
            int IX = OX * Geo.Stride + X;
            Taps[static_cast<size_t>(T++)] = (C * Geo.InH + IY) * Geo.InW + IX;
          }
        for (int A = 0; A < WindowSize; ++A)
          for (int B = A + 1; B < WindowSize; ++B) {
            double L = Left[Taps[A]] - Left[Taps[B]];
            double R = Right[Taps[A]] - Right[Taps[B]];
            if ((L < 0.0 && R > 0.0) || (L > 0.0 && R < 0.0))
              Fractions.push_back(L / (L - R));
          }
      }
}

// --- AvgPool2DLayer ----------------------------------------------------------

AvgPool2DLayer::AvgPool2DLayer(int Channels, int InH, int InW, int WindowH,
                               int WindowW, int Stride)
    : LinearLayer(LayerKind::AvgPool2D),
      Geo(Channels, InH, InW, WindowH, WindowW, Stride) {}

Vector AvgPool2DLayer::apply(const Vector &In) const {
  assert(In.size() == inputSize() && "avgpool input size mismatch");
  Vector Out(outputSize());
  double Scale = 1.0 / (Geo.WindowH * Geo.WindowW);
  Geo.forEachTap([&](int OutIndex, int InIndex, int Tap) {
    (void)Tap;
    Out[OutIndex] += Scale * In[InIndex];
  });
  return Out;
}

std::unique_ptr<Layer> AvgPool2DLayer::clone() const {
  return std::make_unique<AvgPool2DLayer>(Geo.Channels, Geo.InH, Geo.InW,
                                          Geo.WindowH, Geo.WindowW,
                                          Geo.Stride);
}

std::string AvgPool2DLayer::describe() const {
  char Buffer[80];
  std::snprintf(Buffer, sizeof(Buffer), "avgpool %dx%dx%d (w=%dx%d s=%d)",
                Geo.Channels, Geo.InH, Geo.InW, Geo.WindowH, Geo.WindowW,
                Geo.Stride);
  return Buffer;
}

Vector AvgPool2DLayer::vjpLinear(const Vector &GradOut) const {
  assert(GradOut.size() == outputSize() && "avgpool gradient size mismatch");
  Vector GradIn(inputSize());
  double Scale = 1.0 / (Geo.WindowH * Geo.WindowW);
  Geo.forEachTap([&](int OutIndex, int InIndex, int Tap) {
    (void)Tap;
    GradIn[InIndex] += Scale * GradOut[OutIndex];
  });
  return GradIn;
}
