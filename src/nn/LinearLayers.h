//===- nn/LinearLayers.h - FC / Conv2D / Flatten layers --------*- C++ -*-===//
///
/// \file
/// The parameterized linear layers (fully-connected and 2-D convolution,
/// both repairable by Algorithms 1 and 2) plus the trivial Flatten
/// marker layer.
///
//===----------------------------------------------------------------------===//

#ifndef PRDNN_NN_LINEARLAYERS_H
#define PRDNN_NN_LINEARLAYERS_H

#include "nn/Layer.h"

namespace prdnn {

/// Dense affine layer: In -> W In + b.
/// Parameter layout: W row-major (outputSize x inputSize), then b.
class FullyConnectedLayer : public LinearLayer {
public:
  FullyConnectedLayer(Matrix Weights, Vector Bias);

  static bool classof(const Layer *L) {
    return L->getKind() == LayerKind::FullyConnected;
  }

  int inputSize() const override { return Weights.cols(); }
  int outputSize() const override { return Weights.rows(); }

  Vector apply(const Vector &In) const override;
  /// Blocked GEMM In * W^T with the bias broadcast over rows.
  Matrix applyBatch(const Matrix &In) const override;
  std::unique_ptr<Layer> clone() const override;
  std::string describe() const override;

  Vector vjpLinear(const Vector &GradOut) const override;
  /// Single GEMM GradOut * W (row-wise W^T products).
  Matrix vjpLinearBatch(const Matrix &GradOut) const override;
  int numParams() const override {
    return Weights.rows() * Weights.cols() + Bias.size();
  }
  void getParams(std::vector<double> &Out) const override;
  void setParams(const std::vector<double> &In) override;
  void addToParams(const std::vector<double> &Delta) override;
  void accumulateParamGrad(const Vector &In, const Vector &GradOut,
                           std::vector<double> &Accum) const override;
  void paramJacobian(const Matrix &M, const Vector &In,
                     Matrix &J) const override;

  const Matrix &weights() const { return Weights; }
  const Vector &bias() const { return Bias; }

private:
  Matrix Weights;
  Vector Bias;
};

/// 2-D convolution over a (Channels, Height, Width) tensor flattened
/// row-major into a Vector. Parameter layout: kernels
/// (OutChannels x InChannels x KernelH x KernelW) row-major, then one
/// bias per output channel.
class Conv2DLayer : public LinearLayer {
public:
  Conv2DLayer(int InChannels, int InHeight, int InWidth, int OutChannels,
              int KernelH, int KernelW, int Stride, int Pad,
              std::vector<double> Kernels, std::vector<double> Bias);

  static bool classof(const Layer *L) {
    return L->getKind() == LayerKind::Conv2D;
  }

  int inputSize() const override { return InC * InH * InW; }
  int outputSize() const override { return OutC * OutH * OutW; }

  Vector apply(const Vector &In) const override;
  /// Flat-tap kernel over every row in parallel (see buildTapTable).
  Matrix applyBatch(const Matrix &In) const override;
  std::unique_ptr<Layer> clone() const override;
  std::string describe() const override;

  Vector vjpLinear(const Vector &GradOut) const override;
  int numParams() const override {
    return OutC * InC * KH * KW + OutC;
  }
  void getParams(std::vector<double> &Out) const override;
  void setParams(const std::vector<double> &In) override;
  void addToParams(const std::vector<double> &Delta) override;
  void accumulateParamGrad(const Vector &In, const Vector &GradOut,
                           std::vector<double> &Accum) const override;
  void paramJacobian(const Matrix &M, const Vector &In,
                     Matrix &J) const override;

  int inChannels() const { return InC; }
  int inHeight() const { return InH; }
  int inWidth() const { return InW; }
  int outChannels() const { return OutC; }
  int outHeight() const { return OutH; }
  int outWidth() const { return OutW; }
  int kernelHeight() const { return KH; }
  int kernelWidth() const { return KW; }
  int stride() const { return Stride; }
  int padding() const { return Pad; }

private:
  int InC, InH, InW;
  int OutC, KH, KW, Stride, Pad;
  int OutH, OutW;
  std::vector<double> Kernels;
  std::vector<double> Bias;

  /// One in-range (input index, kernel parameter index) contribution to
  /// some output position.
  struct Tap {
    int In, Param;
  };
  /// Taps grouped by output position in forEachTap emission order:
  /// output o's taps are Taps[TapOffsets[o] .. TapOffsets[o+1]). Built
  /// once at construction so the forward/VJP hot loops run over flat
  /// arrays instead of re-deriving the six-deep tap geometry per point
  /// (the batched engine's conv kernels iterate this table).
  std::vector<Tap> Taps;
  std::vector<int> TapOffsets;
  /// Interior fast path: outputs whose window is unclipped by padding
  /// share one input-offset stencil (InteriorOffsets, in (C,Y,X) tap
  /// order) and read their kernel parameters contiguously, so the
  /// forward loop needs no per-tap index pairs. InteriorBase[o] is the
  /// window's input base index, or -1 for border outputs (which use the
  /// generic tap list). Accumulation order is unchanged either way.
  std::vector<int> InteriorBase;
  std::vector<int> InteriorOffsets;
  void buildTapTable();

  /// Forward kernel for one input row (see buildTapTable).
  void forwardRow(const double *InRow, double *OutRow) const;

  /// Invokes Fn(OutIndex, InIndex, ParamIndex) for every (output
  /// position, kernel entry) pair whose input position is in range, and
  /// Fn(OutIndex, -1, BiasParamIndex) for each bias contribution.
  template <typename FnT> void forEachTap(FnT Fn) const;
};

/// Shape marker; the identity on flat vectors. Kept so that serialized
/// architectures document where tensors become flat.
class FlattenLayer : public LinearLayer {
public:
  explicit FlattenLayer(int Size) : LinearLayer(LayerKind::Flatten),
                                    Size(Size) {}

  static bool classof(const Layer *L) {
    return L->getKind() == LayerKind::Flatten;
  }

  int inputSize() const override { return Size; }
  int outputSize() const override { return Size; }
  Vector apply(const Vector &In) const override { return In; }
  Matrix applyBatch(const Matrix &In) const override { return In; }
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<FlattenLayer>(Size);
  }
  std::string describe() const override;
  Vector vjpLinear(const Vector &GradOut) const override { return GradOut; }

private:
  int Size;
};

} // namespace prdnn

#endif // PRDNN_NN_LINEARLAYERS_H
