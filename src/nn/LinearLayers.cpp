//===- nn/LinearLayers.cpp -------------------------------------------------===//

#include "nn/LinearLayers.h"

#include <cassert>
#include <cstdio>

using namespace prdnn;

// --- FullyConnectedLayer -----------------------------------------------------

FullyConnectedLayer::FullyConnectedLayer(Matrix Weights, Vector Bias)
    : LinearLayer(LayerKind::FullyConnected), Weights(std::move(Weights)),
      Bias(std::move(Bias)) {
  assert(this->Weights.rows() == this->Bias.size() &&
         "bias dimension must match output dimension");
}

Vector FullyConnectedLayer::apply(const Vector &In) const {
  Vector Out = Weights.apply(In);
  Out += Bias;
  return Out;
}

std::unique_ptr<Layer> FullyConnectedLayer::clone() const {
  return std::make_unique<FullyConnectedLayer>(Weights, Bias);
}

std::string FullyConnectedLayer::describe() const {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "fc %dx%d", Weights.rows(),
                Weights.cols());
  return Buffer;
}

Vector FullyConnectedLayer::vjpLinear(const Vector &GradOut) const {
  return Weights.applyTransposed(GradOut);
}

void FullyConnectedLayer::getParams(std::vector<double> &Out) const {
  Out.resize(static_cast<size_t>(numParams()));
  size_t P = 0;
  for (int R = 0; R < Weights.rows(); ++R)
    for (int C = 0; C < Weights.cols(); ++C)
      Out[P++] = Weights(R, C);
  for (int R = 0; R < Bias.size(); ++R)
    Out[P++] = Bias[R];
}

void FullyConnectedLayer::setParams(const std::vector<double> &In) {
  assert(static_cast<int>(In.size()) == numParams() && "bad parameter count");
  size_t P = 0;
  for (int R = 0; R < Weights.rows(); ++R)
    for (int C = 0; C < Weights.cols(); ++C)
      Weights(R, C) = In[P++];
  for (int R = 0; R < Bias.size(); ++R)
    Bias[R] = In[P++];
}

void FullyConnectedLayer::addToParams(const std::vector<double> &Delta) {
  assert(static_cast<int>(Delta.size()) == numParams() &&
         "bad parameter count");
  size_t P = 0;
  for (int R = 0; R < Weights.rows(); ++R)
    for (int C = 0; C < Weights.cols(); ++C)
      Weights(R, C) += Delta[P++];
  for (int R = 0; R < Bias.size(); ++R)
    Bias[R] += Delta[P++];
}

void FullyConnectedLayer::accumulateParamGrad(
    const Vector &In, const Vector &GradOut,
    std::vector<double> &Accum) const {
  assert(static_cast<int>(Accum.size()) == numParams() &&
         "gradient accumulator size mismatch");
  int Rows = Weights.rows(), Cols = Weights.cols();
  size_t P = 0;
  for (int R = 0; R < Rows; ++R) {
    double G = GradOut[R];
    if (G == 0.0) {
      P += static_cast<size_t>(Cols);
      continue;
    }
    for (int C = 0; C < Cols; ++C)
      Accum[P++] += G * In[C];
  }
  for (int R = 0; R < Rows; ++R)
    Accum[P++] += GradOut[R];
}

void FullyConnectedLayer::paramJacobian(const Matrix &M, const Vector &In,
                                        Matrix &J) const {
  // Layer output z = W In + b, so dz_p/dW_pq = In_q and dz_p/db_p = 1;
  // J[r, (p,q)] = M[r,p] * In_q, J[r, bias_p] = M[r,p].
  assert(M.cols() == outputSize() && "backward matrix shape mismatch");
  assert(J.rows() == M.rows() && J.cols() == numParams() &&
         "Jacobian shape mismatch");
  int Rows = Weights.rows(), Cols = Weights.cols();
  int BiasBase = Rows * Cols;
  for (int R = 0; R < M.rows(); ++R) {
    double *JRow = J.rowData(R);
    const double *MRow = M.rowData(R);
    for (int P = 0; P < Rows; ++P) {
      double Scale = MRow[P];
      if (Scale == 0.0)
        continue;
      double *Block = JRow + static_cast<size_t>(P) * Cols;
      for (int Q = 0; Q < Cols; ++Q)
        Block[Q] += Scale * In[Q];
      JRow[BiasBase + P] += Scale;
    }
  }
}

// --- Conv2DLayer -------------------------------------------------------------

Conv2DLayer::Conv2DLayer(int InChannels, int InHeight, int InWidth,
                         int OutChannels, int KernelH, int KernelW,
                         int Stride, int Pad, std::vector<double> Kernels,
                         std::vector<double> Bias)
    : LinearLayer(LayerKind::Conv2D), InC(InChannels), InH(InHeight),
      InW(InWidth), OutC(OutChannels), KH(KernelH), KW(KernelW),
      Stride(Stride), Pad(Pad), Kernels(std::move(Kernels)),
      Bias(std::move(Bias)) {
  assert(Stride >= 1 && "stride must be positive");
  assert(Pad >= 0 && "negative padding");
  OutH = (InH + 2 * Pad - KH) / Stride + 1;
  OutW = (InW + 2 * Pad - KW) / Stride + 1;
  assert(OutH > 0 && OutW > 0 && "kernel larger than padded input");
  assert(static_cast<int>(this->Kernels.size()) == OutC * InC * KH * KW &&
         "kernel parameter count mismatch");
  assert(static_cast<int>(this->Bias.size()) == OutC &&
         "bias parameter count mismatch");
}

template <typename FnT> void Conv2DLayer::forEachTap(FnT Fn) const {
  for (int K = 0; K < OutC; ++K) {
    for (int OY = 0; OY < OutH; ++OY) {
      for (int OX = 0; OX < OutW; ++OX) {
        int OutIndex = (K * OutH + OY) * OutW + OX;
        for (int C = 0; C < InC; ++C) {
          for (int Y = 0; Y < KH; ++Y) {
            int IY = OY * Stride - Pad + Y;
            if (IY < 0 || IY >= InH)
              continue;
            for (int X = 0; X < KW; ++X) {
              int IX = OX * Stride - Pad + X;
              if (IX < 0 || IX >= InW)
                continue;
              int InIndex = (C * InH + IY) * InW + IX;
              int ParamIndex = ((K * InC + C) * KH + Y) * KW + X;
              Fn(OutIndex, InIndex, ParamIndex);
            }
          }
        }
        Fn(OutIndex, -1, OutC * InC * KH * KW + K);
      }
    }
  }
}

Vector Conv2DLayer::apply(const Vector &In) const {
  assert(In.size() == inputSize() && "conv input size mismatch");
  Vector Out(outputSize());
  forEachTap([&](int OutIndex, int InIndex, int ParamIndex) {
    if (InIndex < 0)
      Out[OutIndex] += Bias[ParamIndex - OutC * InC * KH * KW];
    else
      Out[OutIndex] += Kernels[static_cast<size_t>(ParamIndex)] * In[InIndex];
  });
  return Out;
}

std::unique_ptr<Layer> Conv2DLayer::clone() const {
  return std::make_unique<Conv2DLayer>(InC, InH, InW, OutC, KH, KW, Stride,
                                       Pad, Kernels, Bias);
}

std::string Conv2DLayer::describe() const {
  char Buffer[96];
  std::snprintf(Buffer, sizeof(Buffer),
                "conv %dx%dx%d -> %dx%dx%d (k=%dx%d s=%d p=%d)", InC, InH,
                InW, OutC, OutH, OutW, KH, KW, Stride, Pad);
  return Buffer;
}

Vector Conv2DLayer::vjpLinear(const Vector &GradOut) const {
  assert(GradOut.size() == outputSize() && "conv gradient size mismatch");
  Vector GradIn(inputSize());
  forEachTap([&](int OutIndex, int InIndex, int ParamIndex) {
    if (InIndex < 0)
      return;
    GradIn[InIndex] +=
        Kernels[static_cast<size_t>(ParamIndex)] * GradOut[OutIndex];
  });
  return GradIn;
}

void Conv2DLayer::getParams(std::vector<double> &Out) const {
  Out = Kernels;
  Out.insert(Out.end(), Bias.begin(), Bias.end());
}

void Conv2DLayer::setParams(const std::vector<double> &In) {
  assert(static_cast<int>(In.size()) == numParams() && "bad parameter count");
  size_t KernelCount = Kernels.size();
  std::copy(In.begin(), In.begin() + KernelCount, Kernels.begin());
  std::copy(In.begin() + KernelCount, In.end(), Bias.begin());
}

void Conv2DLayer::addToParams(const std::vector<double> &Delta) {
  assert(static_cast<int>(Delta.size()) == numParams() &&
         "bad parameter count");
  size_t KernelCount = Kernels.size();
  for (size_t I = 0; I < KernelCount; ++I)
    Kernels[I] += Delta[I];
  for (size_t I = 0; I < Bias.size(); ++I)
    Bias[I] += Delta[KernelCount + I];
}

void Conv2DLayer::accumulateParamGrad(const Vector &In, const Vector &GradOut,
                                      std::vector<double> &Accum) const {
  assert(static_cast<int>(Accum.size()) == numParams() &&
         "gradient accumulator size mismatch");
  forEachTap([&](int OutIndex, int InIndex, int ParamIndex) {
    double G = GradOut[OutIndex];
    if (G == 0.0)
      return;
    if (InIndex < 0)
      Accum[static_cast<size_t>(ParamIndex)] += G;
    else
      Accum[static_cast<size_t>(ParamIndex)] += G * In[InIndex];
  });
}

void Conv2DLayer::paramJacobian(const Matrix &M, const Vector &In,
                                Matrix &J) const {
  assert(M.cols() == outputSize() && "backward matrix shape mismatch");
  assert(J.rows() == M.rows() && J.cols() == numParams() &&
         "Jacobian shape mismatch");
  int NumRows = M.rows();
  forEachTap([&](int OutIndex, int InIndex, int ParamIndex) {
    double Factor = InIndex < 0 ? 1.0 : In[InIndex];
    if (Factor == 0.0)
      return;
    for (int R = 0; R < NumRows; ++R) {
      double Scale = M(R, OutIndex);
      if (Scale != 0.0)
        J(R, ParamIndex) += Scale * Factor;
    }
  });
}

// --- FlattenLayer ------------------------------------------------------------

std::string FlattenLayer::describe() const {
  char Buffer[32];
  std::snprintf(Buffer, sizeof(Buffer), "flatten %d", Size);
  return Buffer;
}
