//===- nn/LinearLayers.cpp -------------------------------------------------===//

#include "nn/LinearLayers.h"

#include "support/Parallel.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

using namespace prdnn;

// --- FullyConnectedLayer -----------------------------------------------------

FullyConnectedLayer::FullyConnectedLayer(Matrix Weights, Vector Bias)
    : LinearLayer(LayerKind::FullyConnected), Weights(std::move(Weights)),
      Bias(std::move(Bias)) {
  assert(this->Weights.rows() == this->Bias.size() &&
         "bias dimension must match output dimension");
}

Vector FullyConnectedLayer::apply(const Vector &In) const {
  Vector Out = Weights.apply(In);
  Out += Bias;
  return Out;
}

Matrix FullyConnectedLayer::applyBatch(const Matrix &In) const {
  assert(In.cols() == inputSize() && "batched input size mismatch");
  Matrix Out = In.multiplyTransposed(Weights);
  for (int R = 0; R < Out.rows(); ++R) {
    double *Row = Out.rowData(R);
    for (int C = 0; C < Out.cols(); ++C)
      Row[C] += Bias[C];
  }
  return Out;
}

std::unique_ptr<Layer> FullyConnectedLayer::clone() const {
  return std::make_unique<FullyConnectedLayer>(Weights, Bias);
}

std::string FullyConnectedLayer::describe() const {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "fc %dx%d", Weights.rows(),
                Weights.cols());
  return Buffer;
}

Vector FullyConnectedLayer::vjpLinear(const Vector &GradOut) const {
  return Weights.applyTransposed(GradOut);
}

Matrix FullyConnectedLayer::vjpLinearBatch(const Matrix &GradOut) const {
  assert(GradOut.cols() == outputSize() && "batched gradient size mismatch");
  // Row r of GradOut * W is W^T (row r), with the same inner
  // accumulation order (and zero-skips) as applyTransposed.
  return GradOut.multiply(Weights);
}

void FullyConnectedLayer::getParams(std::vector<double> &Out) const {
  Out.resize(static_cast<size_t>(numParams()));
  size_t P = 0;
  for (int R = 0; R < Weights.rows(); ++R)
    for (int C = 0; C < Weights.cols(); ++C)
      Out[P++] = Weights(R, C);
  for (int R = 0; R < Bias.size(); ++R)
    Out[P++] = Bias[R];
}

void FullyConnectedLayer::setParams(const std::vector<double> &In) {
  assert(static_cast<int>(In.size()) == numParams() && "bad parameter count");
  size_t P = 0;
  for (int R = 0; R < Weights.rows(); ++R)
    for (int C = 0; C < Weights.cols(); ++C)
      Weights(R, C) = In[P++];
  for (int R = 0; R < Bias.size(); ++R)
    Bias[R] = In[P++];
}

void FullyConnectedLayer::addToParams(const std::vector<double> &Delta) {
  assert(static_cast<int>(Delta.size()) == numParams() &&
         "bad parameter count");
  size_t P = 0;
  for (int R = 0; R < Weights.rows(); ++R)
    for (int C = 0; C < Weights.cols(); ++C)
      Weights(R, C) += Delta[P++];
  for (int R = 0; R < Bias.size(); ++R)
    Bias[R] += Delta[P++];
}

void FullyConnectedLayer::accumulateParamGrad(
    const Vector &In, const Vector &GradOut,
    std::vector<double> &Accum) const {
  assert(static_cast<int>(Accum.size()) == numParams() &&
         "gradient accumulator size mismatch");
  int Rows = Weights.rows(), Cols = Weights.cols();
  size_t P = 0;
  for (int R = 0; R < Rows; ++R) {
    double G = GradOut[R];
    if (G == 0.0) {
      P += static_cast<size_t>(Cols);
      continue;
    }
    for (int C = 0; C < Cols; ++C)
      Accum[P++] += G * In[C];
  }
  for (int R = 0; R < Rows; ++R)
    Accum[P++] += GradOut[R];
}

void FullyConnectedLayer::paramJacobian(const Matrix &M, const Vector &In,
                                        Matrix &J) const {
  // Layer output z = W In + b, so dz_p/dW_pq = In_q and dz_p/db_p = 1;
  // J[r, (p,q)] = M[r,p] * In_q, J[r, bias_p] = M[r,p].
  assert(M.cols() == outputSize() && "backward matrix shape mismatch");
  assert(J.rows() == M.rows() && J.cols() == numParams() &&
         "Jacobian shape mismatch");
  int Rows = Weights.rows(), Cols = Weights.cols();
  int BiasBase = Rows * Cols;
  for (int R = 0; R < M.rows(); ++R) {
    double *JRow = J.rowData(R);
    const double *MRow = M.rowData(R);
    for (int P = 0; P < Rows; ++P) {
      double Scale = MRow[P];
      if (Scale == 0.0)
        continue;
      double *Block = JRow + static_cast<size_t>(P) * Cols;
      for (int Q = 0; Q < Cols; ++Q)
        Block[Q] += Scale * In[Q];
      JRow[BiasBase + P] += Scale;
    }
  }
}

// --- Conv2DLayer -------------------------------------------------------------

Conv2DLayer::Conv2DLayer(int InChannels, int InHeight, int InWidth,
                         int OutChannels, int KernelH, int KernelW,
                         int Stride, int Pad, std::vector<double> Kernels,
                         std::vector<double> Bias)
    : LinearLayer(LayerKind::Conv2D), InC(InChannels), InH(InHeight),
      InW(InWidth), OutC(OutChannels), KH(KernelH), KW(KernelW),
      Stride(Stride), Pad(Pad), Kernels(std::move(Kernels)),
      Bias(std::move(Bias)) {
  assert(Stride >= 1 && "stride must be positive");
  assert(Pad >= 0 && "negative padding");
  OutH = (InH + 2 * Pad - KH) / Stride + 1;
  OutW = (InW + 2 * Pad - KW) / Stride + 1;
  assert(OutH > 0 && OutW > 0 && "kernel larger than padded input");
  assert(static_cast<int>(this->Kernels.size()) == OutC * InC * KH * KW &&
         "kernel parameter count mismatch");
  assert(static_cast<int>(this->Bias.size()) == OutC &&
         "bias parameter count mismatch");
  buildTapTable();
}

void Conv2DLayer::buildTapTable() {
  // Interior stencil: offsets relative to the window base, in the same
  // (C, Y, X) order forEachTap emits.
  InteriorOffsets.clear();
  InteriorOffsets.reserve(static_cast<size_t>(InC) * KH * KW);
  for (int C = 0; C < InC; ++C)
    for (int Y = 0; Y < KH; ++Y)
      for (int X = 0; X < KW; ++X)
        InteriorOffsets.push_back((C * InH + Y) * InW + X);
  InteriorBase.assign(static_cast<size_t>(outputSize()), -1);
  for (int K = 0; K < OutC; ++K)
    for (int OY = 0; OY < OutH; ++OY)
      for (int OX = 0; OX < OutW; ++OX) {
        int IY = OY * Stride - Pad, IX = OX * Stride - Pad;
        if (IY < 0 || IX < 0 || IY + KH > InH || IX + KW > InW)
          continue;
        InteriorBase[static_cast<size_t>((K * OutH + OY) * OutW + OX)] =
            IY * InW + IX;
      }

  // Explicit taps only for the border outputs the stencil can't serve;
  // interior outputs (the vast majority) would never read theirs.
  TapOffsets.assign(static_cast<size_t>(outputSize()) + 1, 0);
  Taps.clear();
  forEachTap([&](int OutIndex, int InIndex, int ParamIndex) {
    if (InIndex < 0 || InteriorBase[static_cast<size_t>(OutIndex)] >= 0)
      return;
    Taps.push_back({InIndex, ParamIndex});
    // forEachTap emits outputs in ascending order, so this finalizes
    // the offset of every output once its taps are done.
    TapOffsets[static_cast<size_t>(OutIndex) + 1] =
        static_cast<int>(Taps.size());
  });
  for (int O = 0; O < outputSize(); ++O)
    TapOffsets[static_cast<size_t>(O) + 1] =
        std::max(TapOffsets[static_cast<size_t>(O)],
                 TapOffsets[static_cast<size_t>(O) + 1]);
}

template <typename FnT> void Conv2DLayer::forEachTap(FnT Fn) const {
  for (int K = 0; K < OutC; ++K) {
    for (int OY = 0; OY < OutH; ++OY) {
      for (int OX = 0; OX < OutW; ++OX) {
        int OutIndex = (K * OutH + OY) * OutW + OX;
        for (int C = 0; C < InC; ++C) {
          for (int Y = 0; Y < KH; ++Y) {
            int IY = OY * Stride - Pad + Y;
            if (IY < 0 || IY >= InH)
              continue;
            for (int X = 0; X < KW; ++X) {
              int IX = OX * Stride - Pad + X;
              if (IX < 0 || IX >= InW)
                continue;
              int InIndex = (C * InH + IY) * InW + IX;
              int ParamIndex = ((K * InC + C) * KH + Y) * KW + X;
              Fn(OutIndex, InIndex, ParamIndex);
            }
          }
        }
        Fn(OutIndex, -1, OutC * InC * KH * KW + K);
      }
    }
  }
}

// Shared forward kernel: flat-tap sweep with the interior stencil fast
// path; tap order (hence accumulation order) matches forEachTap
// exactly, with the bias added last as before.
void Conv2DLayer::forwardRow(const double *InRow, double *OutRow) const {
  int PlaneSize = OutH * OutW;
  int KernelSize = InC * KH * KW;
  const int *Offsets = InteriorOffsets.data();
  for (int O = 0; O < outputSize(); ++O) {
    double Sum = 0.0;
    int Base = InteriorBase[static_cast<size_t>(O)];
    if (Base >= 0) {
      const double *KParams =
          Kernels.data() +
          static_cast<size_t>(O / PlaneSize) * KernelSize;
      const double *Window = InRow + Base;
      for (int T = 0; T < KernelSize; ++T)
        Sum += KParams[T] * Window[Offsets[T]];
    } else {
      for (int T = TapOffsets[static_cast<size_t>(O)],
               TEnd = TapOffsets[static_cast<size_t>(O) + 1];
           T < TEnd; ++T)
        Sum +=
            Kernels[static_cast<size_t>(Taps[static_cast<size_t>(T)].Param)] *
            InRow[Taps[static_cast<size_t>(T)].In];
    }
    OutRow[O] = Sum + Bias[static_cast<size_t>(O / PlaneSize)];
  }
}

Vector Conv2DLayer::apply(const Vector &In) const {
  assert(In.size() == inputSize() && "conv input size mismatch");
  Vector Out(outputSize());
  forwardRow(In.data(), Out.data());
  return Out;
}

Matrix Conv2DLayer::applyBatch(const Matrix &In) const {
  assert(In.cols() == inputSize() && "batched input size mismatch");
  Matrix Out(In.rows(), outputSize());
  parallelForRanges(0, In.rows(), [&](std::int64_t Begin, std::int64_t End) {
    for (int R = static_cast<int>(Begin); R < End; ++R)
      forwardRow(In.rowData(R), Out.rowData(R));
  });
  return Out;
}

std::unique_ptr<Layer> Conv2DLayer::clone() const {
  return std::make_unique<Conv2DLayer>(InC, InH, InW, OutC, KH, KW, Stride,
                                       Pad, Kernels, Bias);
}

std::string Conv2DLayer::describe() const {
  char Buffer[96];
  std::snprintf(Buffer, sizeof(Buffer),
                "conv %dx%dx%d -> %dx%dx%d (k=%dx%d s=%d p=%d)", InC, InH,
                InW, OutC, OutH, OutW, KH, KW, Stride, Pad);
  return Buffer;
}

Vector Conv2DLayer::vjpLinear(const Vector &GradOut) const {
  assert(GradOut.size() == outputSize() && "conv gradient size mismatch");
  Vector GradIn(inputSize());
  // Flat-tap scatter in forEachTap order (bit-identical accumulation),
  // with the interior stencil fast path mirroring forwardRow.
  double *GradData = GradIn.data();
  int PlaneSize = OutH * OutW;
  int KernelSize = InC * KH * KW;
  const int *Offsets = InteriorOffsets.data();
  for (int O = 0; O < outputSize(); ++O) {
    double G = GradOut[O];
    int Base = InteriorBase[static_cast<size_t>(O)];
    if (Base >= 0) {
      const double *KParams =
          Kernels.data() +
          static_cast<size_t>(O / PlaneSize) * KernelSize;
      double *Window = GradData + Base;
      for (int T = 0; T < KernelSize; ++T)
        Window[Offsets[T]] += KParams[T] * G;
    } else {
      for (int T = TapOffsets[static_cast<size_t>(O)],
               TEnd = TapOffsets[static_cast<size_t>(O) + 1];
           T < TEnd; ++T)
        GradData[Taps[static_cast<size_t>(T)].In] +=
            Kernels[static_cast<size_t>(Taps[static_cast<size_t>(T)].Param)] *
            G;
    }
  }
  return GradIn;
}

void Conv2DLayer::getParams(std::vector<double> &Out) const {
  Out = Kernels;
  Out.insert(Out.end(), Bias.begin(), Bias.end());
}

void Conv2DLayer::setParams(const std::vector<double> &In) {
  assert(static_cast<int>(In.size()) == numParams() && "bad parameter count");
  size_t KernelCount = Kernels.size();
  std::copy(In.begin(), In.begin() + KernelCount, Kernels.begin());
  std::copy(In.begin() + KernelCount, In.end(), Bias.begin());
}

void Conv2DLayer::addToParams(const std::vector<double> &Delta) {
  assert(static_cast<int>(Delta.size()) == numParams() &&
         "bad parameter count");
  size_t KernelCount = Kernels.size();
  for (size_t I = 0; I < KernelCount; ++I)
    Kernels[I] += Delta[I];
  for (size_t I = 0; I < Bias.size(); ++I)
    Bias[I] += Delta[KernelCount + I];
}

void Conv2DLayer::accumulateParamGrad(const Vector &In, const Vector &GradOut,
                                      std::vector<double> &Accum) const {
  assert(static_cast<int>(Accum.size()) == numParams() &&
         "gradient accumulator size mismatch");
  forEachTap([&](int OutIndex, int InIndex, int ParamIndex) {
    double G = GradOut[OutIndex];
    if (G == 0.0)
      return;
    if (InIndex < 0)
      Accum[static_cast<size_t>(ParamIndex)] += G;
    else
      Accum[static_cast<size_t>(ParamIndex)] += G * In[InIndex];
  });
}

void Conv2DLayer::paramJacobian(const Matrix &M, const Vector &In,
                                Matrix &J) const {
  assert(M.cols() == outputSize() && "backward matrix shape mismatch");
  assert(J.rows() == M.rows() && J.cols() == numParams() &&
         "Jacobian shape mismatch");
  int NumRows = M.rows();
  forEachTap([&](int OutIndex, int InIndex, int ParamIndex) {
    double Factor = InIndex < 0 ? 1.0 : In[InIndex];
    if (Factor == 0.0)
      return;
    for (int R = 0; R < NumRows; ++R) {
      double Scale = M(R, OutIndex);
      if (Scale != 0.0)
        J(R, ParamIndex) += Scale * Factor;
    }
  });
}

// --- FlattenLayer ------------------------------------------------------------

std::string FlattenLayer::describe() const {
  char Buffer[32];
  std::snprintf(Buffer, sizeof(Buffer), "flatten %d", Size);
  return Buffer;
}
