//===- nn/Jacobian.cpp -------------------------------------------------------===//

#include "nn/Jacobian.h"

#include "nn/ActivationLayers.h"
#include "nn/LinearLayers.h"
#include "support/Casting.h"
#include "support/Parallel.h"

#include <cassert>

using namespace prdnn;

JacobianResult prdnn::paramJacobian(const Network &Net, int LayerIndex,
                                    const Vector &X,
                                    const NetworkPattern *Pinned) {
  assert(LayerIndex >= 0 && LayerIndex < Net.numLayers() &&
         "layer index out of range");
  const auto *Target = dyn_cast<LinearLayer>(&Net.layer(LayerIndex));
  assert(Target && Target->numParams() > 0 &&
         "Jacobian target must be a parameterized linear layer");

  std::vector<Vector> Values =
      Pinned ? intermediatesWithPattern(Net, X, *Pinned)
             : Net.intermediates(X);

  int OutDim = Net.outputSize();
  // M = d(net output) / d(layer i output), accumulated backward from the
  // identity at the output layer.
  Matrix M = Matrix::identity(OutDim);
  for (int I = Net.numLayers() - 1; I > LayerIndex; --I) {
    const Layer &L = Net.layer(I);
    Matrix Next(OutDim, L.inputSize());
    for (int R = 0; R < OutDim; ++R) {
      Vector GradOut = M.row(R);
      Vector GradIn;
      if (const auto *Linear = dyn_cast<LinearLayer>(&L)) {
        GradIn = Linear->vjpLinear(GradOut);
      } else {
        const auto &Act = cast<ActivationLayer>(L);
        if (Pinned && L.isPiecewiseLinear())
          GradIn = Act.vjpWithPattern(
              Pinned->Patterns[static_cast<size_t>(I)], GradOut);
        else
          GradIn = Act.vjpLinearized(Values[static_cast<size_t>(I)], GradOut);
      }
      Next.setRow(R, GradIn);
    }
    M = std::move(Next);
  }

  JacobianResult Result;
  Result.J = Matrix(OutDim, Target->numParams());
  Target->paramJacobian(M, Values[static_cast<size_t>(LayerIndex)], Result.J);
  Result.Output = Values.back();
  return Result;
}

std::vector<JacobianResult> prdnn::paramJacobianBatch(
    const Network &Net, int LayerIndex, const std::vector<Vector> &Xs,
    const std::vector<const NetworkPattern *> &Pinned) {
  assert(LayerIndex >= 0 && LayerIndex < Net.numLayers() &&
         "layer index out of range");
  assert((Pinned.empty() || Pinned.size() == Xs.size()) &&
         "one (nullable) pinned pattern per point");
  const auto *Target = dyn_cast<LinearLayer>(&Net.layer(LayerIndex));
  assert(Target && Target->numParams() > 0 &&
         "Jacobian target must be a parameterized linear layer");

  int NumPoints = static_cast<int>(Xs.size());
  std::vector<JacobianResult> Results(static_cast<size_t>(NumPoints));
  if (NumPoints == 0)
    return Results;

  auto PinnedAt = [&](int P) -> const NetworkPattern * {
    return Pinned.empty() ? nullptr : Pinned[static_cast<size_t>(P)];
  };

  std::vector<Matrix> Values = intermediatesBatchWithPatterns(
      Net, Matrix::fromRowVectors(Xs), Pinned);

  int OutDim = Net.outputSize();
  // Every point's backward accumulation matrix, stacked: rows
  // [p*OutDim, (p+1)*OutDim) belong to point p. Initialized to one
  // identity block per point, then swept backward layer by layer.
  Matrix Stacked(NumPoints * OutDim, OutDim);
  for (int P = 0; P < NumPoints; ++P)
    for (int R = 0; R < OutDim; ++R)
      Stacked(P * OutDim + R, R) = 1.0;

  for (int I = Net.numLayers() - 1; I > LayerIndex; --I) {
    const Layer &L = Net.layer(I);
    if (const auto *Linear = dyn_cast<LinearLayer>(&L)) {
      // One GEMM (or parallel row sweep) shared by the whole batch.
      Stacked = Linear->vjpLinearBatch(Stacked);
      continue;
    }
    const auto &Act = cast<ActivationLayer>(L);
    bool Pwl = L.isPiecewiseLinear();
    if (isa<ElementwiseActivation>(&L)) {
      // Diagonal Jacobian: one scale vector per point (its VJP of the
      // all-ones vector, so scales match the scalar path exactly),
      // applied to the point's whole row block in place.
      parallelFor(0, NumPoints, [&](std::int64_t PIdx) {
        int P = static_cast<int>(PIdx);
        const NetworkPattern *Pattern = PinnedAt(P);
        Vector Ones = Vector::constant(L.outputSize(), 1.0);
        Vector Scale =
            Pattern && Pwl
                ? Act.vjpWithPattern(
                      Pattern->Patterns[static_cast<size_t>(I)], Ones)
                : Act.vjpLinearized(
                      Values[static_cast<size_t>(I)].row(P), Ones);
        for (int R = 0; R < OutDim; ++R) {
          double *Row = Stacked.rowData(P * OutDim + R);
          for (int C = 0; C < L.outputSize(); ++C)
            Row[C] *= Scale[C];
        }
      });
      continue;
    }
    // Non-elementwise activation (MaxPool): fall back to per-row VJPs.
    Matrix Next(NumPoints * OutDim, L.inputSize());
    parallelFor(0, static_cast<std::int64_t>(NumPoints) * OutDim,
                [&](std::int64_t RowIdx) {
                  int P = static_cast<int>(RowIdx / OutDim);
                  const NetworkPattern *Pattern = PinnedAt(P);
                  Vector GradOut = Stacked.row(static_cast<int>(RowIdx));
                  Vector GradIn =
                      Pattern && Pwl
                          ? Act.vjpWithPattern(
                                Pattern->Patterns[static_cast<size_t>(I)],
                                GradOut)
                          : Act.vjpLinearized(
                                Values[static_cast<size_t>(I)].row(P),
                                GradOut);
                  Next.setRow(static_cast<int>(RowIdx), GradIn);
                });
    Stacked = std::move(Next);
  }

  parallelFor(0, NumPoints, [&](std::int64_t PIdx) {
    int P = static_cast<int>(PIdx);
    Matrix M(OutDim, Stacked.cols());
    for (int R = 0; R < OutDim; ++R)
      M.setRow(R, Stacked.row(P * OutDim + R));
    JacobianResult &Result = Results[static_cast<size_t>(P)];
    Result.J = Matrix(OutDim, Target->numParams());
    Target->paramJacobian(M, Values[static_cast<size_t>(LayerIndex)].row(P),
                          Result.J);
    Result.Output = Values.back().row(P);
  });
  return Results;
}
