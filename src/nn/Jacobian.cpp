//===- nn/Jacobian.cpp -------------------------------------------------------===//

#include "nn/Jacobian.h"

#include "nn/LinearLayers.h"
#include "support/Casting.h"

#include <cassert>

using namespace prdnn;

static Vector rowOf(const Matrix &M, int Row) {
  Vector Result(M.cols());
  const double *Data = M.rowData(Row);
  for (int C = 0; C < M.cols(); ++C)
    Result[C] = Data[C];
  return Result;
}

static void setRow(Matrix &M, int Row, const Vector &V) {
  assert(V.size() == M.cols() && "row width mismatch");
  double *Data = M.rowData(Row);
  for (int C = 0; C < M.cols(); ++C)
    Data[C] = V[C];
}

JacobianResult prdnn::paramJacobian(const Network &Net, int LayerIndex,
                                    const Vector &X,
                                    const NetworkPattern *Pinned) {
  assert(LayerIndex >= 0 && LayerIndex < Net.numLayers() &&
         "layer index out of range");
  const auto *Target = dyn_cast<LinearLayer>(&Net.layer(LayerIndex));
  assert(Target && Target->numParams() > 0 &&
         "Jacobian target must be a parameterized linear layer");

  std::vector<Vector> Values =
      Pinned ? intermediatesWithPattern(Net, X, *Pinned)
             : Net.intermediates(X);

  int OutDim = Net.outputSize();
  // M = d(net output) / d(layer i output), accumulated backward from the
  // identity at the output layer.
  Matrix M = Matrix::identity(OutDim);
  for (int I = Net.numLayers() - 1; I > LayerIndex; --I) {
    const Layer &L = Net.layer(I);
    Matrix Next(OutDim, L.inputSize());
    for (int R = 0; R < OutDim; ++R) {
      Vector GradOut = rowOf(M, R);
      Vector GradIn;
      if (const auto *Linear = dyn_cast<LinearLayer>(&L)) {
        GradIn = Linear->vjpLinear(GradOut);
      } else {
        const auto &Act = cast<ActivationLayer>(L);
        if (Pinned && L.isPiecewiseLinear())
          GradIn = Act.vjpWithPattern(
              Pinned->Patterns[static_cast<size_t>(I)], GradOut);
        else
          GradIn = Act.vjpLinearized(Values[static_cast<size_t>(I)], GradOut);
      }
      setRow(Next, R, GradIn);
    }
    M = std::move(Next);
  }

  JacobianResult Result;
  Result.J = Matrix(OutDim, Target->numParams());
  Target->paramJacobian(M, Values[static_cast<size_t>(LayerIndex)], Result.J);
  Result.Output = Values.back();
  return Result;
}
