//===- rpc/RpcClient.h - client library for the repair RPC -----*- C++ -*-===//
///
/// \file
/// The client side of rpc/Wire.h: a blocking, single-connection handle
/// to a remote RpcServer. One RpcClient owns one TCP connection and
/// runs one exchange at a time (submit, await, progress, status,
/// cancel); callers wanting concurrency open more clients - the
/// server's per-connection threads make that the natural unit.
///
/// Every call returns a typed RpcError; None means the out-parameters
/// hold the server's answer. A server-side ErrorReply surfaces as that
/// reply's error code (Timeout from an expired Await deadline leaves
/// the connection - and the remote job - intact; re-await at will).
/// A ConnectionReject{Saturated} frame, sent when the server is at its
/// connection bound, marks the connection dead and is remembered in
/// lastConnectionReject().
///
/// repair() is the retail loop the examples and benches use: submit
/// with bounded retry-with-backoff on load-shed rejects (Saturated /
/// ClassQuota / connection-level Saturated, reconnecting as needed),
/// then await until the report arrives - so a briefly overloaded
/// server costs latency, not failure, and a genuinely unavailable one
/// fails typed after RetryLimit attempts.
///
//===----------------------------------------------------------------------===//

#ifndef PRDNN_RPC_RPCCLIENT_H
#define PRDNN_RPC_RPCCLIENT_H

#include "rpc/Wire.h"

#include <cstdint>
#include <string>

namespace prdnn {
namespace rpc {

struct RpcClientOptions {
  std::string Host = "127.0.0.1";
  int Port = 0;
  /// connect(2) deadline; IoError past it.
  double ConnectTimeoutSeconds = 5.0;
  /// Receive deadline for any non-Await reply (SO_RCVTIMEO). Await
  /// waits its own deadline plus this much slack.
  double RequestTimeoutSeconds = 10.0;
  /// How long repair() lets the server hold each Await before asking
  /// again (0 = the server's default deadline).
  double AwaitSliceSeconds = 1.0;
  /// repair(): attempts beyond the first on load-shed rejects.
  int RetryLimit = 8;
  /// repair(): first backoff sleep; doubles per retry.
  double InitialBackoffSeconds = 0.01;
  /// repair(): backoff ceiling.
  double MaxBackoffSeconds = 0.5;
  WireLimits Limits;
};

/// Monotonic counters of one client (the benches' wire accounting).
struct RpcClientStats {
  std::uint64_t BytesSent = 0;
  std::uint64_t BytesReceived = 0;
  /// repair() submits retried after a load-shed reject.
  std::uint64_t Retries = 0;
  /// Load-shed rejects observed (Saturated/ClassQuota submits plus
  /// connection-level rejects).
  std::uint64_t ShedRejects = 0;
  std::uint64_t Reconnects = 0;
};

/// See the file comment.
class RpcClient {
public:
  explicit RpcClient(RpcClientOptions Options);

  /// Closes the connection if open.
  ~RpcClient();

  RpcClient(const RpcClient &) = delete;
  RpcClient &operator=(const RpcClient &) = delete;

  /// Establishes the TCP connection (with the configured timeout).
  /// Idempotent while connected; reconnects after a close.
  RpcError connect();

  bool connected() const { return Fd >= 0; }

  void close();

  /// Submit -> SubmitReply. None means \p Reply holds the server's
  /// typed admission decision (which may itself be a reject - check
  /// Reply.accepted()).
  RpcError submit(const serve::ServeRequest &Request, SubmitReply &Reply);

  /// Await -> ReportReply. \p DeadlineMillis bounds the server-side
  /// wait (0 = server default). Timeout means the deadline expired
  /// with the job still running: re-await later. \p Found false means
  /// the server does not know \p JobId.
  RpcError await(std::uint64_t JobId, std::uint64_t DeadlineMillis,
                 bool &Found, RepairReport &Report);

  /// Progress -> ProgressReply (a poll; never blocks on the job).
  RpcError progress(std::uint64_t JobId, bool &Found,
                    ProgressSnapshot &Snapshot);

  /// Status -> StatusReply: the service's aggregated ServiceStats.
  RpcError status(serve::ServiceStats &Stats);

  /// Metrics -> MetricsReply: one coherent snapshot of the server's
  /// whole metrics registry (engine, cache, store, admission,
  /// registry, and RPC instruments). A server running without
  /// telemetry answers an empty snapshot - not an error - so a
  /// scraper can poll any fleet member uniformly. Render it with
  /// MetricsSnapshot::renderPrometheus() (tools/prdnn_stats.cpp is
  /// the retail scraper).
  RpcError metrics(obs::MetricsSnapshot &Snapshot);

  /// Cancel -> CancelReply. The job resolves Cancelled; await()
  /// collects its report.
  RpcError cancel(std::uint64_t JobId, bool &Found);

  /// The retail loop (see the file comment): submit with bounded
  /// backoff-retry on load-shed rejects, then await to completion.
  /// Returns None with \p Reject == None when \p Report holds the
  /// resolved report; None with \p Reject naming the reason (and
  /// \p Report untouched) when the service's answer was a typed
  /// reject - a non-shed reject (UnknownModel/ModelCorrupt/
  /// ModelMismatch) fails fast, a shed one only after RetryLimit
  /// attempts; and a wire-level RpcError when the exchange itself
  /// failed.
  RpcError repair(const serve::ServeRequest &Request, RepairReport &Report,
                  serve::ServeReject &Reject);

  /// The ServeReject carried by the last ConnectionReject frame
  /// received (None if never rejected at the connection level).
  serve::ServeReject lastConnectionReject() const { return ConnReject; }

  RpcClientStats stats() const { return Counters; }

  const RpcClientOptions &options() const { return Opts; }

private:
  /// One request->reply exchange: sends \p Payload as \p Kind, then
  /// receives one frame. ErrorReply is decoded into its RpcError;
  /// ConnectionReject marks the connection dead and records the
  /// reject. On None, \p ReplyKind/\p ReplyPayload hold the reply.
  RpcError exchange(MessageKind Kind,
                    const std::vector<std::uint8_t> &Payload,
                    std::uint8_t &ReplyKind,
                    std::vector<std::uint8_t> &ReplyPayload,
                    double ReceiveTimeoutSeconds);

  RpcClientOptions Opts;
  int Fd = -1;
  serve::ServeReject ConnReject = serve::ServeReject::None;
  RpcClientStats Counters;
};

} // namespace rpc
} // namespace prdnn

#endif // PRDNN_RPC_RPCCLIENT_H
