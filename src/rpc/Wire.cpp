//===- rpc/Wire.cpp -------------------------------------------------------===//

#include "rpc/Wire.h"

#include "core/DecoupledNetwork.h"
#include "nn/Network.h"

#include <cerrno>
#include <cmath>
#include <cstring>
#include <sys/socket.h>

using namespace prdnn;
using namespace prdnn::rpc;
using persist::ByteReader;
using persist::ByteWriter;
using persist::CodecError;

const char *prdnn::rpc::toString(RpcError Error) {
  switch (Error) {
  case RpcError::None:
    return "none";
  case RpcError::Truncated:
    return "truncated";
  case RpcError::BadMagic:
    return "bad-magic";
  case RpcError::BadVersion:
    return "bad-version";
  case RpcError::Corrupt:
    return "corrupt";
  case RpcError::Oversized:
    return "oversized";
  case RpcError::BadKind:
    return "bad-kind";
  case RpcError::Timeout:
    return "timeout";
  case RpcError::Closed:
    return "closed";
  case RpcError::IoError:
    return "io-error";
  }
  // Error codes arrive from the peer; an out-of-range byte must print,
  // not abort.
  return "unknown";
}

RpcError prdnn::rpc::fromCodecError(CodecError Error) {
  switch (Error) {
  case CodecError::None:
    return RpcError::None;
  case CodecError::Truncated:
    return RpcError::Truncated;
  case CodecError::BadMagic:
    return RpcError::BadMagic;
  case CodecError::BadVersion:
    return RpcError::BadVersion;
  case CodecError::ForeignEndian:
  case CodecError::Corrupt:
    return RpcError::Corrupt;
  }
  return RpcError::Corrupt;
}

// --- Payload serializers ----------------------------------------------------

namespace {

/// Guards a count against the bytes actually left (>= \p ElementBytes
/// per element), so a corrupted count fails before allocating.
bool plausible(ByteReader &R, std::uint64_t Count,
               std::size_t ElementBytes) {
  if (Count > R.remaining() / ElementBytes) {
    R.fail(CodecError::Corrupt);
    return false;
  }
  return true;
}

/// Reads a u8 that must be a valid enum value in [0, MaxValue].
bool readEnum8(ByteReader &R, std::uint8_t &V, std::uint8_t MaxValue) {
  if (!R.u8(V))
    return false;
  if (V > MaxValue) {
    R.fail(CodecError::Corrupt);
    return false;
  }
  return true;
}

void writeDoubleSeq(ByteWriter &W, const std::vector<double> &Values) {
  W.u64(Values.size());
  W.doubles(Values.data(), Values.size());
}

bool readDoubleSeq(ByteReader &R, std::vector<double> &Values) {
  std::uint64_t Count = 0;
  if (!R.u64(Count) || !plausible(R, Count, 8))
    return false;
  Values.resize(static_cast<std::size_t>(Count));
  return R.doubles(Values.data(), Values.size());
}

void writeConstraint(ByteWriter &W, const OutputConstraint &C) {
  persist::writeMatrix(W, C.A);
  persist::writeVector(W, C.B);
}

bool readConstraint(ByteReader &R, OutputConstraint &C) {
  if (!persist::readMatrix(R, C.A) || !persist::readVector(R, C.B))
    return false;
  if (C.B.size() != C.A.rows()) {
    R.fail(CodecError::Corrupt);
    return false;
  }
  return true;
}

void writePointSpec(ByteWriter &W, const PointSpec &Spec) {
  W.u64(Spec.size());
  for (const SpecPoint &P : Spec) {
    persist::writeVector(W, P.X);
    writeConstraint(W, P.Constraint);
    W.u8(P.Pattern ? 1 : 0);
    if (P.Pattern)
      persist::writePattern(W, *P.Pattern);
  }
}

bool readPointSpec(ByteReader &R, PointSpec &Spec) {
  std::uint64_t Count = 0;
  if (!R.u64(Count) || !plausible(R, Count, 8))
    return false;
  Spec.resize(static_cast<std::size_t>(Count));
  for (SpecPoint &P : Spec) {
    if (!persist::readVector(R, P.X) || !readConstraint(R, P.Constraint))
      return false;
    std::uint8_t HasPattern = 0;
    if (!readEnum8(R, HasPattern, 1))
      return false;
    if (HasPattern) {
      NetworkPattern Pattern;
      if (!persist::readPattern(R, Pattern))
        return false;
      P.Pattern = std::move(Pattern);
    } else {
      P.Pattern.reset();
    }
  }
  return true;
}

void writePolytopeSpec(ByteWriter &W, const PolytopeSpec &Spec) {
  W.u64(Spec.size());
  for (const SpecPolytope &P : Spec) {
    if (const auto *Segment = std::get_if<SegmentPolytope>(&P.Shape)) {
      W.u8(0);
      persist::writeVector(W, Segment->A);
      persist::writeVector(W, Segment->B);
    } else {
      const auto &Plane = std::get<PlanePolytope>(P.Shape);
      W.u8(1);
      W.u32(static_cast<std::uint32_t>(Plane.Vertices.size()));
      for (const Vector &V : Plane.Vertices)
        persist::writeVector(W, V);
    }
    writeConstraint(W, P.Constraint);
  }
}

bool readPolytopeSpec(ByteReader &R, PolytopeSpec &Spec) {
  std::uint64_t Count = 0;
  if (!R.u64(Count) || !plausible(R, Count, 8))
    return false;
  Spec.resize(static_cast<std::size_t>(Count));
  for (SpecPolytope &P : Spec) {
    std::uint8_t Tag = 0;
    if (!readEnum8(R, Tag, 1))
      return false;
    if (Tag == 0) {
      SegmentPolytope Segment;
      if (!persist::readVector(R, Segment.A) ||
          !persist::readVector(R, Segment.B))
        return false;
      P.Shape = std::move(Segment);
    } else {
      std::uint32_t Verts = 0;
      if (!R.u32(Verts) || !plausible(R, Verts, 8))
        return false;
      PlanePolytope Plane;
      Plane.Vertices.resize(Verts);
      for (Vector &V : Plane.Vertices)
        if (!persist::readVector(R, V))
          return false;
      P.Shape = std::move(Plane);
    }
    if (!readConstraint(R, P.Constraint))
      return false;
  }
  return true;
}

void writeRepairOptions(ByteWriter &W, const RepairOptions &O) {
  W.u8(static_cast<std::uint8_t>(O.Objective));
  W.f64(O.DeltaBound);
  W.f64(O.RowMargin);
  W.u8(O.UseConstraintGeneration ? 1 : 0);
  W.i32(O.MaxCgRounds);
  W.i32(O.CgBatch);
  W.u8(O.ParamMask ? 1 : 0);
  if (O.ParamMask) {
    W.u64(O.ParamMask->size());
    for (bool Bit : *O.ParamMask)
      W.u8(Bit ? 1 : 0);
  }
  W.u8(O.BatchedJacobians ? 1 : 0);
  W.u8(O.UseCache ? 1 : 0);
  W.u8(O.WarmStartBasis ? 1 : 0);
  // Optional determinism tier: 0 = unset (server default applies),
  // else 1 + the linalg::Determinism value (1 = Strict, 2 = Fast).
  W.u8(O.Determinism
           ? static_cast<std::uint8_t>(
                 static_cast<std::uint8_t>(*O.Determinism) + 1)
           : 0);
  // SimplexOptions, minus its two non-owning pointers (CancelFlag,
  // WarmBasis): those are process-local wiring the server re-installs.
  W.f64(O.Lp.FeasTol);
  W.f64(O.Lp.OptTol);
  W.f64(O.Lp.PivotTol);
  W.i32(O.Lp.MaxIterations);
  W.u8(O.Lp.ScaleRows ? 1 : 0);
  W.i32(O.Lp.StallLimit);
  W.i32(O.Lp.RefactorInterval);
  W.u8(O.Lp.ParallelKernels ? 1 : 0);
  W.i32(O.Lp.ParallelMinDim);
  W.u8(O.Lp.ExportBasis ? 1 : 0);
  W.u8(static_cast<std::uint8_t>(O.Lp.Determinism));
}

bool readRepairOptions(ByteReader &R, RepairOptions &O) {
  std::uint8_t Objective = 0, Flag = 0;
  if (!readEnum8(R, Objective, 2))
    return false;
  O.Objective = static_cast<lp::Norm>(Objective);
  if (!R.f64(O.DeltaBound) || !R.f64(O.RowMargin))
    return false;
  if (!readEnum8(R, Flag, 1))
    return false;
  O.UseConstraintGeneration = Flag != 0;
  if (!R.i32(O.MaxCgRounds) || !R.i32(O.CgBatch))
    return false;
  std::uint8_t HasMask = 0;
  if (!readEnum8(R, HasMask, 1))
    return false;
  if (HasMask) {
    std::uint64_t Count = 0;
    if (!R.u64(Count) || !plausible(R, Count, 1))
      return false;
    std::vector<bool> Mask(static_cast<std::size_t>(Count));
    for (std::size_t I = 0; I < Mask.size(); ++I) {
      std::uint8_t Bit = 0;
      if (!readEnum8(R, Bit, 1))
        return false;
      Mask[I] = Bit != 0;
    }
    O.ParamMask = std::move(Mask);
  } else {
    O.ParamMask.reset();
  }
  if (!readEnum8(R, Flag, 1))
    return false;
  O.BatchedJacobians = Flag != 0;
  if (!readEnum8(R, Flag, 1))
    return false;
  O.UseCache = Flag != 0;
  if (!readEnum8(R, Flag, 1))
    return false;
  O.WarmStartBasis = Flag != 0;
  if (!readEnum8(R, Flag, 2))
    return false;
  if (Flag == 0)
    O.Determinism.reset();
  else
    O.Determinism = static_cast<linalg::Determinism>(Flag - 1);
  if (!R.f64(O.Lp.FeasTol) || !R.f64(O.Lp.OptTol) || !R.f64(O.Lp.PivotTol))
    return false;
  if (!R.i32(O.Lp.MaxIterations))
    return false;
  if (!readEnum8(R, Flag, 1))
    return false;
  O.Lp.ScaleRows = Flag != 0;
  if (!R.i32(O.Lp.StallLimit) || !R.i32(O.Lp.RefactorInterval))
    return false;
  if (!readEnum8(R, Flag, 1))
    return false;
  O.Lp.ParallelKernels = Flag != 0;
  if (!R.i32(O.Lp.ParallelMinDim))
    return false;
  if (!readEnum8(R, Flag, 1))
    return false;
  O.Lp.ExportBasis = Flag != 0;
  if (!readEnum8(R, Flag, 1))
    return false;
  O.Lp.Determinism = static_cast<linalg::Determinism>(Flag);
  O.Lp.CancelFlag = nullptr;
  O.Lp.WarmBasis = nullptr;
  return true;
}

void writeSimplexStats(ByteWriter &W, const lp::SimplexStats &S) {
  W.i32(S.Iterations);
  W.i32(S.Pivots);
  W.i32(S.BoundFlips);
  W.i32(S.Refactors);
  W.u64(S.PivotHash);
  W.f64(S.PricingSeconds);
  W.f64(S.FtranSeconds);
  W.f64(S.BtranSeconds);
  W.f64(S.RatioSeconds);
  W.f64(S.UpdateSeconds);
  W.f64(S.RefactorSeconds);
  W.u8(S.ParallelKernels ? 1 : 0);
}

bool readSimplexStats(ByteReader &R, lp::SimplexStats &S) {
  std::uint8_t Flag = 0;
  if (!R.i32(S.Iterations) || !R.i32(S.Pivots) || !R.i32(S.BoundFlips) ||
      !R.i32(S.Refactors) || !R.u64(S.PivotHash) ||
      !R.f64(S.PricingSeconds) || !R.f64(S.FtranSeconds) ||
      !R.f64(S.BtranSeconds) || !R.f64(S.RatioSeconds) ||
      !R.f64(S.UpdateSeconds) || !R.f64(S.RefactorSeconds) ||
      !readEnum8(R, Flag, 1))
    return false;
  S.ParallelKernels = Flag != 0;
  return true;
}

void writeRepairStats(ByteWriter &W, const RepairStats &S) {
  W.f64(S.JacobianSeconds);
  W.f64(S.LpSeconds);
  W.f64(S.OtherSeconds);
  W.f64(S.TotalSeconds);
  W.i32(S.SpecPoints);
  W.i32(S.SpecRows);
  W.i32(S.LpRowsUsed);
  W.i32(S.CgRounds);
  W.i32(S.LpIterations);
  writeSimplexStats(W, S.LpKernels);
  W.f64(S.VerifiedViolation);
  W.f64(S.LinRegionsSeconds);
  W.i32(S.KeyPoints);
  W.i32(S.LinearRegions);
  W.i32(S.JacobianCacheHits);
  W.i32(S.JacobianCacheMisses);
  W.i32(S.LinRegionsCacheHits);
  W.i32(S.LinRegionsCacheMisses);
  W.i32(S.PatternCacheHits);
  W.i32(S.PatternCacheMisses);
  W.i32(S.BasisHits);
  W.i32(S.BasisMisses);
  W.i32(S.JacobianStoreHits);
  W.i32(S.LinRegionsStoreHits);
  W.i32(S.PatternStoreHits);
  W.i32(S.BasisStoreHits);
  W.u8(static_cast<std::uint8_t>(S.Determinism));
}

bool readRepairStats(ByteReader &R, RepairStats &S) {
  if (!R.f64(S.JacobianSeconds) || !R.f64(S.LpSeconds) ||
      !R.f64(S.OtherSeconds) || !R.f64(S.TotalSeconds) ||
      !R.i32(S.SpecPoints) || !R.i32(S.SpecRows) || !R.i32(S.LpRowsUsed) ||
      !R.i32(S.CgRounds) || !R.i32(S.LpIterations))
    return false;
  if (!readSimplexStats(R, S.LpKernels))
    return false;
  if (!R.f64(S.VerifiedViolation) || !R.f64(S.LinRegionsSeconds) ||
      !R.i32(S.KeyPoints) || !R.i32(S.LinearRegions) ||
      !R.i32(S.JacobianCacheHits) || !R.i32(S.JacobianCacheMisses) ||
      !R.i32(S.LinRegionsCacheHits) || !R.i32(S.LinRegionsCacheMisses) ||
      !R.i32(S.PatternCacheHits) || !R.i32(S.PatternCacheMisses) ||
      !R.i32(S.BasisHits) || !R.i32(S.BasisMisses) ||
      !R.i32(S.JacobianStoreHits) || !R.i32(S.LinRegionsStoreHits) ||
      !R.i32(S.PatternStoreHits) || !R.i32(S.BasisStoreHits))
    return false;
  std::uint8_t Tier = 0;
  if (!readEnum8(R, Tier, 1))
    return false;
  S.Determinism = static_cast<linalg::Determinism>(Tier);
  return true;
}

void writeRepairResult(ByteWriter &W, const RepairResult &Result) {
  W.u8(static_cast<std::uint8_t>(Result.Status));
  W.u8(Result.Repaired ? 1 : 0);
  if (Result.Repaired) {
    persist::serializeNetwork(Result.Repaired->activationChannel(), W);
    persist::serializeNetwork(Result.Repaired->valueChannel(), W);
  }
  writeDoubleSeq(W, Result.Delta);
  W.f64(Result.DeltaL1);
  W.f64(Result.DeltaLInf);
  writeRepairStats(W, Result.Stats);
}

bool readRepairResult(ByteReader &R, RepairResult &Result) {
  std::uint8_t Status = 0, HasRepaired = 0;
  if (!readEnum8(R, Status, 3))
    return false;
  Result.Status = static_cast<RepairStatus>(Status);
  if (!readEnum8(R, HasRepaired, 1))
    return false;
  if (HasRepaired) {
    std::optional<Network> Activation = persist::deserializeNetwork(R);
    if (!Activation)
      return false;
    std::optional<Network> Value = persist::deserializeNetwork(R);
    if (!Value)
      return false;
    // The DecoupledNetwork constructor only asserts channel agreement;
    // a wire payload must be validated, not trusted.
    if (Activation->numLayers() != Value->numLayers() ||
        Activation->inputSize() != Value->inputSize() ||
        Activation->outputSize() != Value->outputSize()) {
      R.fail(CodecError::Corrupt);
      return false;
    }
    for (int I = 0; I < Activation->numLayers(); ++I)
      if (Activation->layer(I).getKind() != Value->layer(I).getKind() ||
          Activation->layer(I).inputSize() != Value->layer(I).inputSize() ||
          Activation->layer(I).outputSize() !=
              Value->layer(I).outputSize()) {
        R.fail(CodecError::Corrupt);
        return false;
      }
    Result.Repaired.emplace(std::move(*Activation), std::move(*Value));
  } else {
    Result.Repaired.reset();
  }
  return readDoubleSeq(R, Result.Delta) && R.f64(Result.DeltaL1) &&
         R.f64(Result.DeltaLInf) && readRepairStats(R, Result.Stats);
}

void writeSweepAttempt(ByteWriter &W, const SweepAttempt &A) {
  W.i32(A.LayerIndex);
  W.u8(static_cast<std::uint8_t>(A.Status));
  W.f64(A.DeltaL1);
  W.f64(A.DeltaLInf);
  W.f64(A.Seconds);
  W.f64(A.JacobianSeconds);
  W.f64(A.LpSeconds);
  W.f64(A.LinRegionsSeconds);
  W.i32(A.LpIterations);
  W.i32(A.LpRefactors);
  W.i32(A.CacheHits);
  W.i32(A.CacheMisses);
  W.i32(A.StoreHits);
  W.u8(A.WarmStarted ? 1 : 0);
  W.i32(A.ShardId);
  W.u8(static_cast<std::uint8_t>(A.Determinism));
}

bool readSweepAttempt(ByteReader &R, SweepAttempt &A) {
  std::uint8_t Status = 0, Warm = 0, Tier = 0;
  if (!R.i32(A.LayerIndex) || !readEnum8(R, Status, 3))
    return false;
  A.Status = static_cast<RepairStatus>(Status);
  if (!R.f64(A.DeltaL1) || !R.f64(A.DeltaLInf) || !R.f64(A.Seconds) ||
      !R.f64(A.JacobianSeconds) || !R.f64(A.LpSeconds) ||
      !R.f64(A.LinRegionsSeconds) || !R.i32(A.LpIterations) ||
      !R.i32(A.LpRefactors) || !R.i32(A.CacheHits) ||
      !R.i32(A.CacheMisses) || !R.i32(A.StoreHits) ||
      !readEnum8(R, Warm, 1) || !R.i32(A.ShardId) ||
      !readEnum8(R, Tier, 1))
    return false;
  A.WarmStarted = Warm != 0;
  A.Determinism = static_cast<linalg::Determinism>(Tier);
  return true;
}

} // namespace

void prdnn::rpc::writeServeRequest(ByteWriter &W,
                                   const serve::ServeRequest &Request) {
  W.u64(Request.Model.Digest.Hi);
  W.u64(Request.Model.Digest.Lo);
  if (const auto *Points = std::get_if<PointSpec>(&Request.Spec)) {
    W.u8(0);
    writePointSpec(W, *Points);
  } else {
    W.u8(1);
    writePolytopeSpec(W, std::get<PolytopeSpec>(Request.Spec));
  }
  W.i32(Request.LayerIndex);
  W.u32(static_cast<std::uint32_t>(Request.SweepLayers.size()));
  for (int Layer : Request.SweepLayers)
    W.i32(Layer);
  W.u8(static_cast<std::uint8_t>(Request.Class));
  writeRepairOptions(W, Request.Options);
}

bool prdnn::rpc::readServeRequest(ByteReader &R,
                                  serve::ServeRequest &Request) {
  if (!R.u64(Request.Model.Digest.Hi) || !R.u64(Request.Model.Digest.Lo))
    return false;
  std::uint8_t SpecTag = 0;
  if (!readEnum8(R, SpecTag, 1))
    return false;
  if (SpecTag == 0) {
    PointSpec Spec;
    if (!readPointSpec(R, Spec))
      return false;
    Request.Spec = std::move(Spec);
  } else {
    PolytopeSpec Spec;
    if (!readPolytopeSpec(R, Spec))
      return false;
    Request.Spec = std::move(Spec);
  }
  if (!R.i32(Request.LayerIndex))
    return false;
  std::uint32_t SweepCount = 0;
  if (!R.u32(SweepCount) || !plausible(R, SweepCount, 4))
    return false;
  Request.SweepLayers.resize(SweepCount);
  for (int &Layer : Request.SweepLayers)
    if (!R.i32(Layer))
      return false;
  std::uint8_t Class = 0;
  if (!readEnum8(R, Class, 2))
    return false;
  Request.Class = static_cast<RepairRequest::Priority>(Class);
  return readRepairOptions(R, Request.Options);
}

void prdnn::rpc::writeRepairReport(ByteWriter &W,
                                   const RepairReport &Report) {
  W.u64(Report.JobId);
  W.u8(static_cast<std::uint8_t>(Report.Status));
  W.i32(Report.RepairedLayer);
  writeRepairResult(W, Report.Result);
  W.u32(static_cast<std::uint32_t>(Report.Sweep.size()));
  for (const SweepAttempt &A : Report.Sweep)
    writeSweepAttempt(W, A);
  W.f64(Report.QueueSeconds);
  W.f64(Report.TotalSeconds);
  W.i64(Report.CacheHits);
  W.i64(Report.CacheMisses);
  W.i64(Report.StoreHits);
}

bool prdnn::rpc::readRepairReport(ByteReader &R, RepairReport &Report) {
  std::uint8_t Status = 0;
  if (!R.u64(Report.JobId) || !readEnum8(R, Status, 3))
    return false;
  Report.Status = static_cast<RepairStatus>(Status);
  if (!R.i32(Report.RepairedLayer) || !readRepairResult(R, Report.Result))
    return false;
  std::uint32_t SweepCount = 0;
  if (!R.u32(SweepCount) || !plausible(R, SweepCount, 8))
    return false;
  Report.Sweep.resize(SweepCount);
  for (SweepAttempt &A : Report.Sweep)
    if (!readSweepAttempt(R, A))
      return false;
  return R.f64(Report.QueueSeconds) && R.f64(Report.TotalSeconds) &&
         R.i64(Report.CacheHits) && R.i64(Report.CacheMisses) &&
         R.i64(Report.StoreHits);
}

void prdnn::rpc::writeProgressSnapshot(ByteWriter &W,
                                       const ProgressSnapshot &Snapshot) {
  W.u8(static_cast<std::uint8_t>(Snapshot.Phase));
  W.i64(Snapshot.ItemsDone);
  W.i64(Snapshot.ItemsTotal);
  W.i32(Snapshot.SweepLayer);
  W.i32(Snapshot.SweepDone);
  W.i32(Snapshot.SweepTotal);
  W.u8(Snapshot.CancelRequested ? 1 : 0);
  W.i64(Snapshot.CacheHits);
  W.i64(Snapshot.CacheMisses);
  W.i64(Snapshot.StoreHits);
}

bool prdnn::rpc::readProgressSnapshot(ByteReader &R,
                                      ProgressSnapshot &Snapshot) {
  std::uint8_t Phase = 0, Cancel = 0;
  if (!readEnum8(R, Phase, 5))
    return false;
  Snapshot.Phase = static_cast<RepairPhase>(Phase);
  if (!R.i64(Snapshot.ItemsDone) || !R.i64(Snapshot.ItemsTotal) ||
      !R.i32(Snapshot.SweepLayer) || !R.i32(Snapshot.SweepDone) ||
      !R.i32(Snapshot.SweepTotal) || !readEnum8(R, Cancel, 1) ||
      !R.i64(Snapshot.CacheHits) || !R.i64(Snapshot.CacheMisses) ||
      !R.i64(Snapshot.StoreHits))
    return false;
  Snapshot.CancelRequested = Cancel != 0;
  return true;
}

void prdnn::rpc::writeServiceStats(ByteWriter &W,
                                   const serve::ServiceStats &Stats) {
  W.u64(Stats.Accepted);
  W.u64(Stats.Rejected);
  for (std::uint64_t Count : Stats.RejectsByReason)
    W.u64(Count);
  W.u64(Stats.Registry.Publishes);
  W.u64(Stats.Registry.PublishSkips);
  W.u64(Stats.Registry.Resolves);
  W.u64(Stats.Registry.CacheHits);
  W.u64(Stats.Registry.DiskLoads);
  W.u64(Stats.Registry.NotFound);
  W.u64(Stats.Registry.CorruptRejects);
  W.u64(Stats.Registry.MismatchRejects);
  W.i32(Stats.Admission.Depth);
  for (int Count : Stats.Admission.ByClass)
    W.i32(Count);
  W.f64(Stats.Admission.OldestWaitSeconds);
  W.u64(Stats.Admission.Admitted);
  W.u64(Stats.Admission.SaturatedRejects);
  W.u64(Stats.Admission.QuotaRejects);
  W.i32(Stats.Engine.Depth);
  for (int Count : Stats.Engine.QueuedByClass)
    W.i32(Count);
  W.i32(Stats.Engine.Running);
  W.f64(Stats.Engine.OldestWaitSeconds);
  W.u64(Stats.Cache.Hits);
  W.u64(Stats.Cache.Misses);
  W.u64(Stats.Cache.Evictions);
  W.u64(Stats.Cache.Insertions);
  W.u64(Stats.Cache.BytesHeld);
  W.u64(Stats.Cache.Entries);
  W.u64(Stats.Cache.BudgetBytes);
  W.u8(Stats.Cache.HasStore ? 1 : 0);
  W.u64(Stats.Cache.Store.Hits);
  W.u64(Stats.Cache.Store.Misses);
  W.u64(Stats.Cache.Store.Writes);
  W.u64(Stats.Cache.Store.WriteSkips);
  W.u64(Stats.Cache.Store.Evictions);
  W.u64(Stats.Cache.Store.CorruptSkips);
  W.u64(Stats.Cache.Store.BytesHeld);
  W.u64(Stats.Cache.Store.Entries);
  W.u64(Stats.Cache.Store.BudgetBytes);
  W.u64(Stats.Cache.Store.PendingWrites);
}

bool prdnn::rpc::readServiceStats(ByteReader &R,
                                  serve::ServiceStats &Stats) {
  if (!R.u64(Stats.Accepted) || !R.u64(Stats.Rejected))
    return false;
  for (std::uint64_t &Count : Stats.RejectsByReason)
    if (!R.u64(Count))
      return false;
  if (!R.u64(Stats.Registry.Publishes) ||
      !R.u64(Stats.Registry.PublishSkips) ||
      !R.u64(Stats.Registry.Resolves) ||
      !R.u64(Stats.Registry.CacheHits) ||
      !R.u64(Stats.Registry.DiskLoads) ||
      !R.u64(Stats.Registry.NotFound) ||
      !R.u64(Stats.Registry.CorruptRejects) ||
      !R.u64(Stats.Registry.MismatchRejects))
    return false;
  if (!R.i32(Stats.Admission.Depth))
    return false;
  for (int &Count : Stats.Admission.ByClass)
    if (!R.i32(Count))
      return false;
  if (!R.f64(Stats.Admission.OldestWaitSeconds) ||
      !R.u64(Stats.Admission.Admitted) ||
      !R.u64(Stats.Admission.SaturatedRejects) ||
      !R.u64(Stats.Admission.QuotaRejects))
    return false;
  if (!R.i32(Stats.Engine.Depth))
    return false;
  for (int &Count : Stats.Engine.QueuedByClass)
    if (!R.i32(Count))
      return false;
  if (!R.i32(Stats.Engine.Running) ||
      !R.f64(Stats.Engine.OldestWaitSeconds))
    return false;
  std::uint8_t HasStore = 0;
  if (!R.u64(Stats.Cache.Hits) || !R.u64(Stats.Cache.Misses) ||
      !R.u64(Stats.Cache.Evictions) || !R.u64(Stats.Cache.Insertions) ||
      !R.u64(Stats.Cache.BytesHeld) || !R.u64(Stats.Cache.Entries) ||
      !R.u64(Stats.Cache.BudgetBytes) || !readEnum8(R, HasStore, 1))
    return false;
  Stats.Cache.HasStore = HasStore != 0;
  return R.u64(Stats.Cache.Store.Hits) && R.u64(Stats.Cache.Store.Misses) &&
         R.u64(Stats.Cache.Store.Writes) &&
         R.u64(Stats.Cache.Store.WriteSkips) &&
         R.u64(Stats.Cache.Store.Evictions) &&
         R.u64(Stats.Cache.Store.CorruptSkips) &&
         R.u64(Stats.Cache.Store.BytesHeld) &&
         R.u64(Stats.Cache.Store.Entries) &&
         R.u64(Stats.Cache.Store.BudgetBytes) &&
         R.u64(Stats.Cache.Store.PendingWrites);
}

void prdnn::rpc::writeMetricsSnapshot(ByteWriter &W,
                                      const obs::MetricsSnapshot &Snapshot) {
  W.u64(Snapshot.Samples.size());
  for (const obs::MetricSample &S : Snapshot.Samples) {
    W.str(S.Name);
    W.str(S.Help);
    W.u8(static_cast<std::uint8_t>(S.Type));
    if (S.Type != obs::MetricType::Histogram) {
      W.f64(S.Value);
      continue;
    }
    writeDoubleSeq(W, S.Hist.Edges);
    // Counts are Edges + 1 by construction; the count is implied.
    for (std::uint64_t Count : S.Hist.Counts)
      W.u64(Count);
    W.f64(S.Hist.Sum);
  }
}

bool prdnn::rpc::readMetricsSnapshot(ByteReader &R,
                                     obs::MetricsSnapshot &Snapshot) {
  std::uint64_t NumSamples = 0;
  // Each sample is at least 2 length-prefixed strings + a kind byte.
  if (!R.u64(NumSamples) || !plausible(R, NumSamples, 17))
    return false;
  Snapshot.Samples.clear();
  Snapshot.Samples.reserve(static_cast<std::size_t>(NumSamples));
  for (std::uint64_t I = 0; I < NumSamples; ++I) {
    obs::MetricSample S;
    std::uint8_t Type = 0;
    if (!R.str(S.Name) || !R.str(S.Help) ||
        !readEnum8(R, Type,
                   static_cast<std::uint8_t>(obs::MetricType::Histogram)))
      return false;
    S.Type = static_cast<obs::MetricType>(Type);
    if (S.Type != obs::MetricType::Histogram) {
      if (!R.f64(S.Value))
        return false;
    } else {
      if (!readDoubleSeq(R, S.Hist.Edges))
        return false;
      // A histogram's edges must be strictly ascending and finite - a
      // malformed preset would poison downstream merges.
      for (std::size_t E = 0; E < S.Hist.Edges.size(); ++E) {
        if (!std::isfinite(S.Hist.Edges[E]) ||
            (E > 0 && S.Hist.Edges[E] <= S.Hist.Edges[E - 1])) {
          R.fail(CodecError::Corrupt);
          return false;
        }
      }
      const std::size_t NumBuckets = S.Hist.Edges.size() + 1;
      if (!plausible(R, NumBuckets, 8))
        return false;
      S.Hist.Counts.resize(NumBuckets);
      for (std::uint64_t &Count : S.Hist.Counts)
        if (!R.u64(Count))
          return false;
      if (!R.f64(S.Hist.Sum))
        return false;
    }
    Snapshot.Samples.push_back(std::move(S));
  }
  return true;
}

// --- Frame transport --------------------------------------------------------

namespace {

RpcError sendAll(int Fd, const std::uint8_t *Data, std::size_t Size) {
  std::size_t Sent = 0;
  while (Sent < Size) {
    // MSG_NOSIGNAL: a peer that vanished mid-write must surface as a
    // typed error on this call, not a process-wide SIGPIPE.
    ssize_t N = ::send(Fd, Data + Sent, Size - Sent, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return (errno == EPIPE || errno == ECONNRESET) ? RpcError::Closed
                                                     : RpcError::IoError;
    }
    Sent += static_cast<std::size_t>(N);
  }
  return RpcError::None;
}

/// Reads exactly \p Size bytes. \p ReadSoFar distinguishes orderly EOF
/// at a frame boundary (Closed) from EOF inside a frame (Truncated).
RpcError recvExact(int Fd, std::uint8_t *Data, std::size_t Size,
                   std::size_t &ReadSoFar) {
  std::size_t Got = 0;
  while (Got < Size) {
    ssize_t N = ::recv(Fd, Data + Got, Size - Got, 0);
    if (N == 0)
      return (ReadSoFar + Got) == 0 ? RpcError::Closed : RpcError::Truncated;
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        return RpcError::Timeout; // SO_RCVTIMEO expired
      if (errno == ECONNRESET)
        return (ReadSoFar + Got) == 0 ? RpcError::Closed
                                      : RpcError::Truncated;
      return RpcError::IoError;
    }
    Got += static_cast<std::size_t>(N);
  }
  ReadSoFar += Got;
  return RpcError::None;
}

} // namespace

RpcError prdnn::rpc::sendFrame(int Fd, MessageKind Kind,
                               const std::vector<std::uint8_t> &Payload,
                               std::uint64_t *BytesSent) {
  std::vector<std::uint8_t> Frame =
      persist::frame(static_cast<std::uint8_t>(Kind), Payload);
  RpcError Err = sendAll(Fd, Frame.data(), Frame.size());
  if (Err == RpcError::None && BytesSent)
    *BytesSent += Frame.size();
  return Err;
}

RpcError prdnn::rpc::recvFrame(int Fd, std::uint8_t &Kind,
                               std::vector<std::uint8_t> &Payload,
                               const WireLimits &Limits,
                               std::uint64_t *BytesReceived) {
  std::uint8_t Header[persist::kFrameHeaderSize];
  std::size_t ReadSoFar = 0;
  RpcError Err = recvExact(Fd, Header, sizeof(Header), ReadSoFar);
  if (Err != RpcError::None)
    return Err;

  std::uint8_t PeekKind = 0;
  std::uint64_t PayloadSize = 0;
  persist::CodecError Peek =
      persist::peekFrame(Header, sizeof(Header), PeekKind, PayloadSize);
  if (Peek != persist::CodecError::None)
    return fromCodecError(Peek);
  // Enforce the bound before allocating: a hostile or corrupt length
  // field cannot force a multi-gigabyte buffer.
  if (PayloadSize > Limits.MaxFrameBytes)
    return RpcError::Oversized;

  std::vector<std::uint8_t> Frame(sizeof(Header) +
                                  static_cast<std::size_t>(PayloadSize) +
                                  persist::kFrameTrailerSize);
  std::memcpy(Frame.data(), Header, sizeof(Header));
  Err = recvExact(Fd, Frame.data() + sizeof(Header),
                  Frame.size() - sizeof(Header), ReadSoFar);
  if (Err != RpcError::None)
    return Err;

  // Full end-to-end validation (digest trailer included): the stream
  // stays in sync either way - exactly one frame was consumed - so a
  // Corrupt verdict leaves the connection recoverable.
  persist::FrameView View;
  persist::CodecError Unframe =
      persist::unframe(Frame.data(), Frame.size(), View);
  if (Unframe != persist::CodecError::None)
    return fromCodecError(Unframe);

  Kind = View.BlobKind;
  Payload.assign(View.Payload, View.Payload + View.PayloadSize);
  if (BytesReceived)
    *BytesReceived += Frame.size();
  return RpcError::None;
}
