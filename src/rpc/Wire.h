//===- rpc/Wire.h - network wire protocol of the repair fleet --*- C++ -*-===//
///
/// \file
/// The byte-level protocol rpc/RpcServer.h and rpc/RpcClient.h speak
/// over TCP: every message is one persist/Codec.h frame (magic "PRDA" +
/// format version + endian tag + kind byte + length-prefixed payload +
/// Digest128 trailer), so the network path inherits the artifact
/// store's framing discipline verbatim - a torn, bit-rotted, or
/// foreign message is a typed RpcError, never UB and never a partially
/// admitted job. Message kinds live at 0x50+ to stay disjoint from the
/// store's ArtifactKind bytes and kNetworkBlobKind (0x40), so a frame
/// can never be mistaken for the wrong consumer's payload.
///
/// The exchanges (client sends the request kind, server answers with
/// the reply kind; one outstanding exchange per connection):
///
///   Submit(ServeRequest)     -> SubmitReply{ServeReject, JobId}
///   Await{JobId, Deadline}   -> ReportReply{Found, RepairReport}
///                               or ErrorReply{Timeout} (job unharmed;
///                               re-await later)
///   Progress{JobId}          -> ProgressReply{Found, ProgressSnapshot}
///   Status{}                 -> StatusReply{ServiceStats}
///   Cancel{JobId}            -> CancelReply{Found}
///   Metrics{}                -> MetricsReply{obs::MetricsSnapshot}
///                               (empty snapshot when the service runs
///                               without telemetry)
///
/// plus two server-initiated frames: ConnectionReject{ServeReject},
/// sent (then the socket closed) when the accepted-connection bound is
/// hit - the same typed-reject vocabulary as admission - and
/// ErrorReply{RpcError}, answering any malformed or unserviceable
/// request.
///
/// Determinism contract: the payload serializers are bit-exact -
/// doubles travel as IEEE-754 bit patterns via persist::ByteWriter, so
/// a RepairReport decoded from the wire compares bit-for-bit equal
/// (Delta bits, norms, repaired-network parameters) to the in-process
/// report it was encoded from. Enforced by tests/rpc_test.cpp and
/// bench/bench_rpc_fleet.cpp. See src/rpc/README.md for the exact byte
/// layout of every message.
///
//===----------------------------------------------------------------------===//

#ifndef PRDNN_RPC_WIRE_H
#define PRDNN_RPC_WIRE_H

#include "persist/Serialize.h"
#include "serve/RepairService.h"

#include <cstdint>
#include <vector>

namespace prdnn {
namespace rpc {

/// Why a wire operation failed; None means success. The frame-level
/// values mirror persist::CodecError; the transport-level values cover
/// what a socket adds on top of a file.
enum class RpcError : std::uint8_t {
  None,
  /// The peer's frame ended early (cut connection mid-frame, or a
  /// declared payload longer than what arrived).
  Truncated,
  /// The first bytes are not "PRDA": the peer is not speaking this
  /// protocol (stream desynchronized; the connection is closed).
  BadMagic,
  /// A frame format version this build does not speak.
  BadVersion,
  /// Structurally present but invalid: digest mismatch, malformed
  /// payload, out-of-range enum, foreign endianness.
  Corrupt,
  /// The frame declares a payload larger than the negotiated bound
  /// (WireLimits::MaxFrameBytes) - rejected before buffering it.
  Oversized,
  /// A well-formed frame whose kind byte names no known message.
  BadKind,
  /// The request's deadline expired (Await past DeadlineMillis, or a
  /// socket receive timeout).
  Timeout,
  /// The peer closed the connection (orderly EOF between frames).
  Closed,
  /// An OS-level socket failure (send/recv/connect errno).
  IoError,
};

const char *toString(RpcError Error);

/// Maps a persist codec failure onto the wire vocabulary
/// (ForeignEndian folds into Corrupt: a foreign-endian *network* peer
/// is simply not speaking this build's protocol).
RpcError fromCodecError(persist::CodecError Error);

/// Frame kind bytes; disjoint from ArtifactKind and kNetworkBlobKind.
enum class MessageKind : std::uint8_t {
  Submit = 0x50,
  SubmitReply = 0x51,
  Await = 0x52,
  ReportReply = 0x53,
  Progress = 0x54,
  ProgressReply = 0x55,
  Status = 0x56,
  StatusReply = 0x57,
  Cancel = 0x58,
  CancelReply = 0x59,
  ErrorReply = 0x5A,
  ConnectionReject = 0x5B,
  Metrics = 0x5C,
  MetricsReply = 0x5D,
};

/// Bounds a receiver enforces before buffering a frame.
struct WireLimits {
  /// Largest payload a peer may declare; a frame above it is rejected
  /// as Oversized without allocating. Generous enough for a repaired
  /// network plus its full sweep log.
  std::size_t MaxFrameBytes = std::size_t(256) << 20;
};

// --- Message payload structs (the non-obvious ones) -------------------------

/// SubmitReply payload: the service's typed admission decision plus
/// the engine job id to Await/Progress/Cancel by (0 when rejected).
struct SubmitReply {
  serve::ServeReject Reject = serve::ServeReject::None;
  std::uint64_t JobId = 0;

  bool accepted() const { return Reject == serve::ServeReject::None; }
};

/// Await payload: which job, and how long the server may block before
/// answering ErrorReply{Timeout}. 0 millis = the server's default
/// deadline (RpcServerOptions::DefaultAwaitSeconds).
struct AwaitRequest {
  std::uint64_t JobId = 0;
  std::uint64_t DeadlineMillis = 0;
};

/// ErrorReply payload: the typed failure plus a human-readable detail
/// line (diagnostic only - programs branch on Error).
struct ErrorReply {
  RpcError Error = RpcError::None;
  std::string Detail;
};

// --- Payload serializers ----------------------------------------------------
//
// Each writeX appends X's payload encoding to a ByteWriter; each readX
// decodes one X, returning false on malformed input with the reader
// failed (R.error() says why - out-of-range enums and impossible
// counts fail as Corrupt). All multi-byte integers little-endian; all
// doubles IEEE-754 bit patterns (persist::ByteWriter), so every value
// round-trips bit-exactly.

void writeServeRequest(persist::ByteWriter &W,
                       const serve::ServeRequest &Request);
bool readServeRequest(persist::ByteReader &R, serve::ServeRequest &Request);

void writeRepairReport(persist::ByteWriter &W, const RepairReport &Report);
bool readRepairReport(persist::ByteReader &R, RepairReport &Report);

void writeProgressSnapshot(persist::ByteWriter &W,
                           const ProgressSnapshot &Snapshot);
bool readProgressSnapshot(persist::ByteReader &R,
                          ProgressSnapshot &Snapshot);

void writeServiceStats(persist::ByteWriter &W,
                       const serve::ServiceStats &Stats);
bool readServiceStats(persist::ByteReader &R, serve::ServiceStats &Stats);

void writeMetricsSnapshot(persist::ByteWriter &W,
                          const obs::MetricsSnapshot &Snapshot);
bool readMetricsSnapshot(persist::ByteReader &R,
                         obs::MetricsSnapshot &Snapshot);

// --- Frame transport over a connected socket --------------------------------

/// Wraps \p Payload in a persist::frame of \p Kind and writes it to
/// \p Fd with SIGPIPE suppressed (MSG_NOSIGNAL): a peer that vanished
/// mid-write surfaces as Closed/IoError, never a process signal.
/// \p BytesSent, when non-null, is incremented by the framed size on
/// success (the benches' bytes-on-the-wire counter).
RpcError sendFrame(int Fd, MessageKind Kind,
                   const std::vector<std::uint8_t> &Payload,
                   std::uint64_t *BytesSent = nullptr);

/// Reads exactly one frame from \p Fd: the fixed header first
/// (persist::peekFrame validates magic/version/endianness and yields
/// the declared payload size), then - after the Oversized check
/// against \p Limits - the payload and digest trailer, re-validated
/// end-to-end with persist::unframe. Orderly EOF *between* frames is
/// Closed; EOF *inside* a frame is Truncated; a socket receive
/// timeout (SO_RCVTIMEO) is Timeout. On success \p Kind and \p Payload
/// hold the message; \p BytesReceived, when non-null, is incremented
/// by the framed size.
RpcError recvFrame(int Fd, std::uint8_t &Kind,
                   std::vector<std::uint8_t> &Payload,
                   const WireLimits &Limits,
                   std::uint64_t *BytesReceived = nullptr);

} // namespace rpc
} // namespace prdnn

#endif // PRDNN_RPC_WIRE_H
