//===- rpc/RpcServer.h - TCP front end over a RepairService ----*- C++ -*-===//
///
/// \file
/// The network server of the repair fleet: one RpcServer listens on a
/// TCP socket and exposes a serve/RepairService.h over the rpc/Wire.h
/// protocol, turning the in-process fleet (N processes over one store
/// directory) into a multi-host one (clients anywhere on the network).
///
/// Threading model (the support/Parallel.h discipline, applied to
/// connections): one acceptor thread plus one worker thread per live
/// connection, each a plain blocking loop - connections are long-lived
/// and block on I/O, so they get dedicated threads instead of pool
/// slots, and the repair work itself still runs on the
/// RepairService's engine workers and the one global pool. The
/// accepted-connection count is bounded (RpcServerOptions::
/// MaxConnections); a connection beyond the bound is answered with
/// ConnectionReject{ServeReject::Saturated} - the same typed-reject
/// vocabulary as admission - and closed, so the accept loop never
/// wedges and never queues unbounded work.
///
/// Robustness contract (test-enforced, tests/rpc_test.cpp):
///  - a client killed mid-request never crashes the server, never
///    wedges the accept loop, and never leaks an admission ticket:
///    the connection's jobs are cancelled on disconnect and every
///    ticket releases through the service's completion hook as the
///    job resolves;
///  - malformed frames get typed replies: in-sync failures (digest
///    corruption, malformed payloads, unknown kinds) answer
///    ErrorReply and keep the connection usable; desynchronizing
///    failures (bad magic, wrong version, truncation, oversized
///    declarations) answer ErrorReply and close it;
///  - writes are SIGPIPE-safe (MSG_NOSIGNAL throughout);
///  - Await deadlines expire with ErrorReply{Timeout}, leaving the
///    job running and re-awaitable.
///
/// Shutdown is drain-then-stop, mirroring engine teardown: stop()
/// closes the listener, unblocks and joins every connection thread,
/// then cancels and resolves any job no client will come back for -
/// so by the time stop() returns, every admission ticket has been
/// released and the underlying RepairService can be torn down or
/// handed to a successor.
///
//===----------------------------------------------------------------------===//

#ifndef PRDNN_RPC_RPCSERVER_H
#define PRDNN_RPC_RPCSERVER_H

#include "rpc/Wire.h"

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

namespace prdnn {
namespace rpc {

struct RpcServerOptions {
  /// Address to bind; loopback by default (the two-host-simulation
  /// benches and tests talk over localhost).
  std::string BindAddress = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  int Port = 0;
  /// listen(2) backlog.
  int Backlog = 64;
  /// Live connections served concurrently; an accept beyond this is
  /// answered ConnectionReject{Saturated} and closed.
  int MaxConnections = 64;
  /// Await with DeadlineMillis == 0 blocks this long before answering
  /// ErrorReply{Timeout}.
  double DefaultAwaitSeconds = 30.0;
  /// Hard cap on any client-requested Await deadline: one connection
  /// cannot park a worker thread forever.
  double MaxAwaitSeconds = 300.0;
  /// Per-connection receive timeout (SO_RCVTIMEO): an idle or wedged
  /// peer is timed out and disconnected after this long between
  /// frames. 0 disables (connections may idle indefinitely).
  double ReceiveTimeoutSeconds = 0.0;
  /// Frame-size bound enforced before buffering (see WireLimits).
  WireLimits Limits;
};

/// Monotonic counters of one RpcServer (all safe to read while the
/// server runs).
struct RpcServerStats {
  std::uint64_t ConnectionsAccepted = 0;
  /// Connections answered ConnectionReject{Saturated} at the bound.
  std::uint64_t ConnectionsRejected = 0;
  /// Frames answered ErrorReply for a wire-level failure.
  std::uint64_t MalformedFrames = 0;
  /// Awaits answered ErrorReply{Timeout}.
  std::uint64_t AwaitTimeouts = 0;
  /// Jobs cancelled because their connection disconnected first.
  std::uint64_t OrphanedJobs = 0;
  std::uint64_t BytesSent = 0;
  std::uint64_t BytesReceived = 0;
};

/// See the file comment.
class RpcServer {
public:
  /// \p Service must outlive the server. The server does not listen
  /// until start().
  RpcServer(serve::RepairService &Service, RpcServerOptions Options);

  /// stop()s if still running.
  ~RpcServer();

  RpcServer(const RpcServer &) = delete;
  RpcServer &operator=(const RpcServer &) = delete;

  /// Binds, listens, and spawns the acceptor. False (with \p Error =
  /// IoError when non-null) on any socket failure; the server can be
  /// start()ed again after a failure.
  bool start(RpcError *Error = nullptr);

  /// Graceful drain-then-shutdown; see the file comment. Idempotent.
  void stop();

  bool running() const { return Running.load(std::memory_order_acquire); }

  /// The bound TCP port (the ephemeral port when Options.Port == 0);
  /// 0 before a successful start().
  int port() const { return BoundPort.load(std::memory_order_acquire); }

  RpcServerStats stats() const;

  /// Zeroes the monotonic counters (connections, frames, bytes,
  /// per-error counts). Live connections and in-flight jobs are
  /// untouched. With the service's telemetry on, the registry's reset
  /// hook reaches these too - this is the manual path.
  void resetStats();

  const RpcServerOptions &options() const { return Opts; }

private:
  struct Connection {
    int Fd = -1;
    std::thread Thread;
    /// Set by the connection thread as its last action; the acceptor
    /// (or stop()) joins and closes only Done connections, so an fd is
    /// never closed while its thread may still use it.
    std::atomic<bool> Done{false};
  };

  struct JobEntry {
    JobHandle Handle;
    std::uint64_t ConnId = 0;
  };

  void acceptLoop();
  void connectionMain(std::uint64_t ConnId, int Fd);
  /// Dispatches one decoded frame; false when the connection must
  /// close (desynchronized stream or send failure).
  bool handleFrame(std::uint64_t ConnId, int Fd, std::uint8_t Kind,
                   const std::vector<std::uint8_t> &Payload);
  bool sendReply(int Fd, MessageKind Kind,
                 const std::vector<std::uint8_t> &Payload);
  bool sendError(int Fd, RpcError Error, const std::string &Detail);
  /// Cancels and forgets every job submitted over \p ConnId.
  void orphanJobs(std::uint64_t ConnId);
  /// Joins and closes connections whose threads have finished.
  void reapFinished();
  /// Registers this server's counters with the service's telemetry
  /// registry (ctor, only when the service carries one).
  void registerTelemetry();

  serve::RepairService &Service;
  RpcServerOptions Opts;

  /// The service's telemetry sink, or null: the server publishes its
  /// connection/frame/error counters into the same registry the
  /// Metrics exchange snapshots.
  obs::Telemetry *T = nullptr;
  obs::Counter *FramesInCount = nullptr;
  obs::Counter *FramesOutCount = nullptr;
  /// Indexed by RpcError value; counts ErrorReply frames sent, by
  /// kind. Null entries when telemetry is off (and at index None,
  /// which is never an error reply).
  std::array<obs::Counter *, 10> ErrorCounters{};

  int ListenFd = -1;
  std::atomic<int> BoundPort{0};
  std::atomic<bool> Running{false};
  std::atomic<bool> Stopping{false};
  std::thread Acceptor;

  mutable std::mutex ConnMutex;
  std::map<std::uint64_t, Connection> Connections;
  std::uint64_t NextConnId = 1;

  mutable std::mutex JobsMutex;
  std::unordered_map<std::uint64_t, JobEntry> Jobs;

  std::atomic<std::uint64_t> AcceptedCount{0};
  std::atomic<std::uint64_t> RejectedCount{0};
  std::atomic<std::uint64_t> MalformedCount{0};
  std::atomic<std::uint64_t> TimeoutCount{0};
  std::atomic<std::uint64_t> OrphanCount{0};
  std::atomic<std::uint64_t> BytesOut{0};
  std::atomic<std::uint64_t> BytesIn{0};
};

} // namespace rpc
} // namespace prdnn

#endif // PRDNN_RPC_RPCSERVER_H
