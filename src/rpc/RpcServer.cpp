//===- rpc/RpcServer.cpp --------------------------------------------------===//

#include "rpc/RpcServer.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#include <vector>

using namespace prdnn;
using namespace prdnn::rpc;
using persist::ByteReader;
using persist::ByteWriter;

namespace {

void setReceiveTimeout(int Fd, double Seconds) {
  if (Seconds <= 0.0)
    return;
  timeval Tv{};
  Tv.tv_sec = static_cast<time_t>(Seconds);
  Tv.tv_usec = static_cast<suseconds_t>(
      (Seconds - std::floor(Seconds)) * 1e6);
  ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv));
}

/// Metric-safe spelling of an error kind ("bad-magic" -> "bad_magic").
std::string errorSlug(RpcError Error) {
  std::string Slug = toString(Error);
  for (char &C : Slug)
    if (C == '-')
      C = '_';
  return Slug;
}

} // namespace

RpcServer::RpcServer(serve::RepairService &Service, RpcServerOptions Options)
    : Service(Service), Opts(std::move(Options)) {
  if (Opts.MaxConnections < 1)
    Opts.MaxConnections = 1;
  if (Opts.DefaultAwaitSeconds <= 0.0)
    Opts.DefaultAwaitSeconds = 30.0;
  if (Opts.MaxAwaitSeconds < Opts.DefaultAwaitSeconds)
    Opts.MaxAwaitSeconds = Opts.DefaultAwaitSeconds;
  T = Service.telemetry().get();
  if (T)
    registerTelemetry();
}

RpcServer::~RpcServer() {
  stop();
  // The telemetry sink may outlive this server (shared_ptr held by the
  // service or a scraper): stop sampling our freed atomics.
  if (T)
    T->Registry.removeOwner(this);
}

void RpcServer::registerTelemetry() {
  obs::MetricsRegistry &Reg = T->Registry;
  auto Val = [](const std::atomic<std::uint64_t> &Count) {
    return [&Count]() { return double(Count.load(std::memory_order_relaxed)); };
  };
  Reg.addCollector(this, "prdnn_rpc_connections_accepted_total",
                   obs::MetricType::Counter, "TCP connections accepted",
                   Val(AcceptedCount));
  Reg.addCollector(this, "prdnn_rpc_connections_rejected_total",
                   obs::MetricType::Counter,
                   "Connections rejected at MaxConnections",
                   Val(RejectedCount));
  Reg.addCollector(this, "prdnn_rpc_malformed_frames_total",
                   obs::MetricType::Counter,
                   "Frames answered ErrorReply for a wire-level failure",
                   Val(MalformedCount));
  Reg.addCollector(this, "prdnn_rpc_await_timeouts_total",
                   obs::MetricType::Counter,
                   "Awaits answered ErrorReply{Timeout}", Val(TimeoutCount));
  Reg.addCollector(this, "prdnn_rpc_orphaned_jobs_total",
                   obs::MetricType::Counter,
                   "Jobs cancelled because their connection disconnected",
                   Val(OrphanCount));
  Reg.addCollector(this, "prdnn_rpc_bytes_sent_total",
                   obs::MetricType::Counter, "Framed bytes written to peers",
                   Val(BytesOut));
  Reg.addCollector(this, "prdnn_rpc_bytes_received_total",
                   obs::MetricType::Counter, "Framed bytes read from peers",
                   Val(BytesIn));
  // Owned instruments (registry-allocated; survive this server).
  FramesInCount = Reg.counter("prdnn_rpc_frames_received_total",
                              "Well-formed frames decoded from peers");
  FramesOutCount =
      Reg.counter("prdnn_rpc_frames_sent_total", "Frames written to peers");
  for (std::size_t I = 1; I < ErrorCounters.size(); ++I) {
    const auto Error = static_cast<RpcError>(I);
    ErrorCounters[I] =
        Reg.counter("prdnn_rpc_errors_" + errorSlug(Error) + "_total",
                    std::string("ErrorReply frames sent with kind ") +
                        toString(Error));
  }
  Reg.addResetHook(this, [this] { resetStats(); });
}

void RpcServer::resetStats() {
  AcceptedCount.store(0, std::memory_order_relaxed);
  RejectedCount.store(0, std::memory_order_relaxed);
  MalformedCount.store(0, std::memory_order_relaxed);
  TimeoutCount.store(0, std::memory_order_relaxed);
  OrphanCount.store(0, std::memory_order_relaxed);
  BytesOut.store(0, std::memory_order_relaxed);
  BytesIn.store(0, std::memory_order_relaxed);
}

bool RpcServer::start(RpcError *Error) {
  auto Fail = [&](int Fd) {
    if (Fd >= 0)
      ::close(Fd);
    if (Error)
      *Error = RpcError::IoError;
    return false;
  };
  if (running())
    return true;

  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return Fail(-1);
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));

  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(static_cast<std::uint16_t>(Opts.Port));
  if (::inet_pton(AF_INET, Opts.BindAddress.c_str(), &Addr.sin_addr) != 1)
    return Fail(Fd);
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0)
    return Fail(Fd);
  if (::listen(Fd, Opts.Backlog) != 0)
    return Fail(Fd);

  sockaddr_in Bound{};
  socklen_t BoundLen = sizeof(Bound);
  if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Bound), &BoundLen) !=
      0)
    return Fail(Fd);

  ListenFd = Fd;
  BoundPort.store(static_cast<int>(ntohs(Bound.sin_port)),
                  std::memory_order_release);
  Stopping.store(false, std::memory_order_release);
  Running.store(true, std::memory_order_release);
  Acceptor = std::thread([this] { acceptLoop(); });
  if (Error)
    *Error = RpcError::None;
  return true;
}

void RpcServer::stop() {
  if (!Running.exchange(false, std::memory_order_acq_rel))
    return;
  Stopping.store(true, std::memory_order_release);

  // Unblock and join the acceptor first: no new connections arrive
  // while we drain the existing ones.
  ::shutdown(ListenFd, SHUT_RDWR);
  if (Acceptor.joinable())
    Acceptor.join();
  ::close(ListenFd);
  ListenFd = -1;

  // Cancel outstanding jobs first: a connection thread may be parked
  // in JobHandle::waitFor() serving an Await, which only the job
  // resolving (not a socket shutdown) unblocks. Keep the handles:
  // disconnecting connections orphan (and erase) their own entries, so
  // the drain below must not depend on the table still holding them.
  std::vector<JobHandle> Pending;
  {
    std::lock_guard<std::mutex> Lock(JobsMutex);
    for (auto &[Id, Entry] : Jobs)
      Pending.push_back(Entry.Handle);
  }
  for (JobHandle &Handle : Pending)
    Handle.cancel();

  // Unblock every connection's recv, then join. The fd is closed only
  // after its thread is joined, so a thread never races a close (and
  // no fd number can be reused under a live reader).
  {
    std::lock_guard<std::mutex> Lock(ConnMutex);
    for (auto &[Id, Conn] : Connections)
      ::shutdown(Conn.Fd, SHUT_RDWR);
  }
  for (;;) {
    std::map<std::uint64_t, Connection>::node_type Node;
    {
      std::lock_guard<std::mutex> Lock(ConnMutex);
      if (Connections.empty())
        break;
      Node = Connections.extract(Connections.begin());
    }
    if (Node.mapped().Thread.joinable())
      Node.mapped().Thread.join();
    ::close(Node.mapped().Fd);
  }

  // Drain: any job still in the table was submitted over a connection
  // that never collected it. Cancel and resolve each - mirroring
  // engine teardown - so every admission ticket is released (via the
  // service's completion hook) before stop() returns.
  {
    std::lock_guard<std::mutex> Lock(JobsMutex);
    for (auto &[Id, Entry] : Jobs)
      Pending.push_back(Entry.Handle);
    Jobs.clear();
  }
  for (JobHandle &Handle : Pending) {
    Handle.cancel();
    Handle.wait();
  }
}

RpcServerStats RpcServer::stats() const {
  RpcServerStats Stats;
  Stats.ConnectionsAccepted = AcceptedCount.load(std::memory_order_relaxed);
  Stats.ConnectionsRejected = RejectedCount.load(std::memory_order_relaxed);
  Stats.MalformedFrames = MalformedCount.load(std::memory_order_relaxed);
  Stats.AwaitTimeouts = TimeoutCount.load(std::memory_order_relaxed);
  Stats.OrphanedJobs = OrphanCount.load(std::memory_order_relaxed);
  Stats.BytesSent = BytesOut.load(std::memory_order_relaxed);
  Stats.BytesReceived = BytesIn.load(std::memory_order_relaxed);
  return Stats;
}

void RpcServer::reapFinished() {
  for (;;) {
    std::map<std::uint64_t, Connection>::node_type Node;
    {
      std::lock_guard<std::mutex> Lock(ConnMutex);
      auto It = Connections.begin();
      while (It != Connections.end() &&
             !It->second.Done.load(std::memory_order_acquire))
        ++It;
      if (It == Connections.end())
        return;
      Node = Connections.extract(It);
    }
    if (Node.mapped().Thread.joinable())
      Node.mapped().Thread.join();
    ::close(Node.mapped().Fd);
  }
}

void RpcServer::acceptLoop() {
  while (!Stopping.load(std::memory_order_acquire)) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (Stopping.load(std::memory_order_acquire))
        return;
      if (errno == EINTR || errno == ECONNABORTED)
        continue; // transient; the accept loop never wedges
      if (errno == EMFILE || errno == ENFILE)
        continue; // fd pressure: keep serving, new peers retry
      return;     // listener gone (EBADF/EINVAL): stop() is underway
    }
    // Reap finished connections before counting live ones, so churn
    // against the bound does not accumulate joinable threads.
    reapFinished();

    int Live;
    {
      std::lock_guard<std::mutex> Lock(ConnMutex);
      Live = static_cast<int>(Connections.size());
    }
    if (Live >= Opts.MaxConnections) {
      // Same typed-reject vocabulary as admission: tell the peer why,
      // then close. Best-effort - the peer may already be gone.
      ByteWriter W;
      W.u8(static_cast<std::uint8_t>(serve::ServeReject::Saturated));
      std::uint64_t Sent = 0;
      RpcError Err =
          sendFrame(Fd, MessageKind::ConnectionReject, W.buffer(), &Sent);
      BytesOut.fetch_add(Sent, std::memory_order_relaxed);
      if (Err == RpcError::None && FramesOutCount)
        FramesOutCount->inc();
      RejectedCount.fetch_add(1, std::memory_order_relaxed);
      ::close(Fd);
      continue;
    }

    setReceiveTimeout(Fd, Opts.ReceiveTimeoutSeconds);
    AcceptedCount.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> Lock(ConnMutex);
    std::uint64_t Id = NextConnId++;
    Connection &Conn = Connections[Id];
    Conn.Fd = Fd;
    Conn.Thread = std::thread([this, Id, Fd] { connectionMain(Id, Fd); });
  }
}

void RpcServer::connectionMain(std::uint64_t ConnId, int Fd) {
  std::vector<std::uint8_t> Payload;
  for (;;) {
    std::uint8_t Kind = 0;
    std::uint64_t Received = 0;
    RpcError Err = recvFrame(Fd, Kind, Payload, Opts.Limits, &Received);
    BytesIn.fetch_add(Received, std::memory_order_relaxed);
    if (Err == RpcError::None && FramesInCount)
      FramesInCount->inc();

    if (Err == RpcError::Closed)
      break; // orderly EOF between frames
    if (Err == RpcError::Corrupt) {
      // Exactly one frame was consumed (digest mismatch): the stream
      // is still in sync, so report and keep serving.
      MalformedCount.fetch_add(1, std::memory_order_relaxed);
      if (!sendError(Fd, Err, "frame failed validation"))
        break;
      continue;
    }
    if (Err != RpcError::None) {
      // Desynchronizing failure (BadMagic/BadVersion/Truncated/
      // Oversized/Timeout/IoError): best-effort typed reply, then
      // close - the byte stream can no longer be trusted.
      MalformedCount.fetch_add(1, std::memory_order_relaxed);
      sendError(Fd, Err, "stream desynchronized");
      break;
    }

    if (!handleFrame(ConnId, Fd, Kind, Payload))
      break;
  }

  orphanJobs(ConnId);
  // Send FIN now: the fd is *closed* by whoever joins this thread
  // (reapFinished or stop()), which may be much later - without the
  // shutdown a peer waiting for EOF would hang until then.
  ::shutdown(Fd, SHUT_RDWR);
  // Publish Done last: the acceptor/stop() joins only Done threads.
  std::lock_guard<std::mutex> Lock(ConnMutex);
  auto It = Connections.find(ConnId);
  if (It != Connections.end())
    It->second.Done.store(true, std::memory_order_release);
}

bool RpcServer::sendReply(int Fd, MessageKind Kind,
                          const std::vector<std::uint8_t> &Payload) {
  std::uint64_t Sent = 0;
  RpcError Err = sendFrame(Fd, Kind, Payload, &Sent);
  BytesOut.fetch_add(Sent, std::memory_order_relaxed);
  if (Err == RpcError::None && FramesOutCount)
    FramesOutCount->inc();
  return Err == RpcError::None;
}

bool RpcServer::sendError(int Fd, RpcError Error,
                          const std::string &Detail) {
  const auto Index = static_cast<std::size_t>(Error);
  if (Index < ErrorCounters.size() && ErrorCounters[Index])
    ErrorCounters[Index]->inc();
  ByteWriter W;
  W.u8(static_cast<std::uint8_t>(Error));
  W.str(Detail);
  return sendReply(Fd, MessageKind::ErrorReply, W.buffer());
}

void RpcServer::orphanJobs(std::uint64_t ConnId) {
  std::vector<JobHandle> Orphans;
  {
    std::lock_guard<std::mutex> Lock(JobsMutex);
    for (auto It = Jobs.begin(); It != Jobs.end();) {
      if (It->second.ConnId == ConnId) {
        Orphans.push_back(It->second.Handle);
        It = Jobs.erase(It);
      } else {
        ++It;
      }
    }
  }
  // Cancel outside the lock; the admission ticket releases through the
  // service's completion hook as each job resolves, so a killed client
  // never leaks a ticket - the job just stops early.
  for (JobHandle &Handle : Orphans)
    Handle.cancel();
  OrphanCount.fetch_add(Orphans.size(), std::memory_order_relaxed);
}

bool RpcServer::handleFrame(std::uint64_t ConnId, int Fd, std::uint8_t Kind,
                            const std::vector<std::uint8_t> &Payload) {
  ByteReader R(Payload.data(), Payload.size());
  switch (static_cast<MessageKind>(Kind)) {
  case MessageKind::Submit: {
    serve::ServeRequest Request;
    if (!readServeRequest(R, Request) || R.remaining() != 0) {
      // Malformed payload in a digest-valid frame: in sync, keep the
      // connection. Nothing was admitted.
      MalformedCount.fetch_add(1, std::memory_order_relaxed);
      return sendError(Fd, RpcError::Corrupt, "malformed ServeRequest");
    }
    serve::ServeSubmission Submission = Service.submit(std::move(Request));
    ByteWriter W;
    W.u8(static_cast<std::uint8_t>(Submission.Reject));
    std::uint64_t JobId =
        Submission.accepted() ? Submission.Handle.id() : 0;
    W.u64(JobId);
    if (Submission.accepted()) {
      std::lock_guard<std::mutex> Lock(JobsMutex);
      Jobs[JobId] = JobEntry{Submission.Handle, ConnId};
    }
    return sendReply(Fd, MessageKind::SubmitReply, W.buffer());
  }

  case MessageKind::Await: {
    AwaitRequest Await;
    if (!R.u64(Await.JobId) || !R.u64(Await.DeadlineMillis) ||
        R.remaining() != 0) {
      MalformedCount.fetch_add(1, std::memory_order_relaxed);
      return sendError(Fd, RpcError::Corrupt, "malformed Await");
    }
    JobHandle Handle;
    {
      std::lock_guard<std::mutex> Lock(JobsMutex);
      auto It = Jobs.find(Await.JobId);
      if (It != Jobs.end())
        Handle = It->second.Handle;
    }
    if (!Handle.valid()) {
      ByteWriter W;
      W.u8(0); // not found
      return sendReply(Fd, MessageKind::ReportReply, W.buffer());
    }
    double Deadline =
        Await.DeadlineMillis == 0
            ? Opts.DefaultAwaitSeconds
            : static_cast<double>(Await.DeadlineMillis) / 1000.0;
    if (Deadline > Opts.MaxAwaitSeconds)
      Deadline = Opts.MaxAwaitSeconds;
    if (!Handle.waitFor(Deadline)) {
      // Deadline expired: the job is untouched and re-awaitable.
      TimeoutCount.fetch_add(1, std::memory_order_relaxed);
      return sendError(Fd, RpcError::Timeout, "await deadline expired");
    }
    ByteWriter W;
    W.u8(1);
    writeRepairReport(W, Handle.report());
    {
      // Delivered: the server's reference is no longer needed.
      std::lock_guard<std::mutex> Lock(JobsMutex);
      Jobs.erase(Await.JobId);
    }
    return sendReply(Fd, MessageKind::ReportReply, W.buffer());
  }

  case MessageKind::Progress: {
    std::uint64_t JobId = 0;
    if (!R.u64(JobId) || R.remaining() != 0) {
      MalformedCount.fetch_add(1, std::memory_order_relaxed);
      return sendError(Fd, RpcError::Corrupt, "malformed Progress");
    }
    JobHandle Handle;
    {
      std::lock_guard<std::mutex> Lock(JobsMutex);
      auto It = Jobs.find(JobId);
      if (It != Jobs.end())
        Handle = It->second.Handle;
    }
    ByteWriter W;
    W.u8(Handle.valid() ? 1 : 0);
    if (Handle.valid())
      writeProgressSnapshot(W, Handle.progress());
    return sendReply(Fd, MessageKind::ProgressReply, W.buffer());
  }

  case MessageKind::Status: {
    if (R.remaining() != 0) {
      MalformedCount.fetch_add(1, std::memory_order_relaxed);
      return sendError(Fd, RpcError::Corrupt, "malformed Status");
    }
    ByteWriter W;
    writeServiceStats(W, Service.stats());
    return sendReply(Fd, MessageKind::StatusReply, W.buffer());
  }

  case MessageKind::Metrics: {
    if (R.remaining() != 0) {
      MalformedCount.fetch_add(1, std::memory_order_relaxed);
      return sendError(Fd, RpcError::Corrupt, "malformed Metrics");
    }
    // Snapshot the service's whole registry (every tier registered its
    // instruments there, this server included); a telemetry-less
    // service answers an empty snapshot rather than an error, so a
    // scraper can poll any fleet member uniformly.
    obs::MetricsSnapshot Snapshot;
    if (const auto &Telem = Service.telemetry())
      Snapshot = Telem->Registry.snapshot();
    ByteWriter W;
    writeMetricsSnapshot(W, Snapshot);
    return sendReply(Fd, MessageKind::MetricsReply, W.buffer());
  }

  case MessageKind::Cancel: {
    std::uint64_t JobId = 0;
    if (!R.u64(JobId) || R.remaining() != 0) {
      MalformedCount.fetch_add(1, std::memory_order_relaxed);
      return sendError(Fd, RpcError::Corrupt, "malformed Cancel");
    }
    JobHandle Handle;
    {
      std::lock_guard<std::mutex> Lock(JobsMutex);
      auto It = Jobs.find(JobId);
      if (It != Jobs.end())
        Handle = It->second.Handle;
    }
    if (Handle.valid())
      Handle.cancel(); // the entry stays: Await collects the
                       // Cancelled report
    ByteWriter W;
    W.u8(Handle.valid() ? 1 : 0);
    return sendReply(Fd, MessageKind::CancelReply, W.buffer());
  }

  case MessageKind::SubmitReply:
  case MessageKind::ReportReply:
  case MessageKind::ProgressReply:
  case MessageKind::StatusReply:
  case MessageKind::CancelReply:
  case MessageKind::MetricsReply:
  case MessageKind::ErrorReply:
  case MessageKind::ConnectionReject:
    // Reply kinds arriving at the server: a confused peer. Typed
    // answer, stream still in sync.
    MalformedCount.fetch_add(1, std::memory_order_relaxed);
    return sendError(Fd, RpcError::BadKind, "reply kind sent to server");
  }
  MalformedCount.fetch_add(1, std::memory_order_relaxed);
  return sendError(Fd, RpcError::BadKind, "unknown message kind");
}
