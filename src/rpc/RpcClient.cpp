//===- rpc/RpcClient.cpp --------------------------------------------------===//

#include "rpc/RpcClient.h"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

using namespace prdnn;
using namespace prdnn::rpc;
using persist::ByteReader;
using persist::ByteWriter;

namespace {

void setReceiveTimeout(int Fd, double Seconds) {
  timeval Tv{};
  if (Seconds > 0.0) {
    Tv.tv_sec = static_cast<time_t>(Seconds);
    Tv.tv_usec =
        static_cast<suseconds_t>((Seconds - std::floor(Seconds)) * 1e6);
  }
  ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv));
}

/// connect(2) with a deadline: non-blocking connect, poll for
/// writability, then SO_ERROR tells whether the handshake succeeded.
bool connectWithTimeout(int Fd, const sockaddr_in &Addr, double Seconds) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  if (Flags < 0)
    return false;
  if (::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) < 0)
    return false;

  bool Ok = false;
  int Rc = ::connect(Fd, reinterpret_cast<const sockaddr *>(&Addr),
                     sizeof(Addr));
  if (Rc == 0) {
    Ok = true;
  } else if (errno == EINPROGRESS) {
    pollfd Pfd{};
    Pfd.fd = Fd;
    Pfd.events = POLLOUT;
    int TimeoutMs =
        Seconds > 0.0 ? static_cast<int>(Seconds * 1000.0) : -1;
    if (::poll(&Pfd, 1, TimeoutMs) == 1) {
      int Err = 0;
      socklen_t Len = sizeof(Err);
      if (::getsockopt(Fd, SOL_SOCKET, SO_ERROR, &Err, &Len) == 0 &&
          Err == 0)
        Ok = true;
    }
  }
  ::fcntl(Fd, F_SETFL, Flags);
  return Ok;
}

} // namespace

RpcClient::RpcClient(RpcClientOptions Options) : Opts(std::move(Options)) {
  if (Opts.RetryLimit < 0)
    Opts.RetryLimit = 0;
  if (Opts.InitialBackoffSeconds < 0.0)
    Opts.InitialBackoffSeconds = 0.0;
  if (Opts.MaxBackoffSeconds < Opts.InitialBackoffSeconds)
    Opts.MaxBackoffSeconds = Opts.InitialBackoffSeconds;
}

RpcClient::~RpcClient() { close(); }

RpcError RpcClient::connect() {
  if (connected())
    return RpcError::None;

  int NewFd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (NewFd < 0)
    return RpcError::IoError;

  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(static_cast<std::uint16_t>(Opts.Port));
  if (::inet_pton(AF_INET, Opts.Host.c_str(), &Addr.sin_addr) != 1) {
    ::close(NewFd);
    return RpcError::IoError;
  }
  if (!connectWithTimeout(NewFd, Addr, Opts.ConnectTimeoutSeconds)) {
    ::close(NewFd);
    return RpcError::IoError;
  }
  setReceiveTimeout(NewFd, Opts.RequestTimeoutSeconds);
  Fd = NewFd;
  return RpcError::None;
}

void RpcClient::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

RpcError RpcClient::exchange(MessageKind Kind,
                             const std::vector<std::uint8_t> &Payload,
                             std::uint8_t &ReplyKind,
                             std::vector<std::uint8_t> &ReplyPayload,
                             double ReceiveTimeoutSeconds) {
  if (!connected())
    return RpcError::Closed;

  std::uint64_t Sent = 0;
  RpcError Err = sendFrame(Fd, Kind, Payload, &Sent);
  Counters.BytesSent += Sent;
  if (Err != RpcError::None) {
    close();
    return Err;
  }

  setReceiveTimeout(Fd, ReceiveTimeoutSeconds);
  std::uint64_t Received = 0;
  Err = recvFrame(Fd, ReplyKind, ReplyPayload, Opts.Limits, &Received);
  Counters.BytesReceived += Received;
  setReceiveTimeout(Fd, Opts.RequestTimeoutSeconds);
  if (Err != RpcError::None) {
    close();
    return Err;
  }

  if (static_cast<MessageKind>(ReplyKind) == MessageKind::ConnectionReject) {
    // The server shed this connection at its bound; it closes after
    // sending, so the connection is dead.
    ByteReader R(ReplyPayload.data(), ReplyPayload.size());
    std::uint8_t Reason = 0;
    if (R.u8(Reason) && Reason <= 5)
      ConnReject = static_cast<serve::ServeReject>(Reason);
    else
      ConnReject = serve::ServeReject::Saturated;
    Counters.ShedRejects += 1;
    close();
    return RpcError::Closed;
  }

  if (static_cast<MessageKind>(ReplyKind) == MessageKind::ErrorReply) {
    ByteReader R(ReplyPayload.data(), ReplyPayload.size());
    std::uint8_t Code = 0;
    std::string Detail;
    if (!R.u8(Code) || !R.str(Detail) ||
        Code > static_cast<std::uint8_t>(RpcError::IoError)) {
      close();
      return RpcError::Corrupt;
    }
    RpcError Remote = static_cast<RpcError>(Code);
    // Mirror the server's in-sync/desync split: after Corrupt or
    // Timeout the stream is still aligned; anything else means the
    // server is about to close (or already has).
    if (Remote != RpcError::Corrupt && Remote != RpcError::Timeout)
      close();
    return Remote == RpcError::None ? RpcError::Corrupt : Remote;
  }

  return RpcError::None;
}

RpcError RpcClient::submit(const serve::ServeRequest &Request,
                           SubmitReply &Reply) {
  ByteWriter W;
  writeServeRequest(W, Request);
  std::uint8_t Kind = 0;
  std::vector<std::uint8_t> Payload;
  RpcError Err = exchange(MessageKind::Submit, W.buffer(), Kind, Payload,
                          Opts.RequestTimeoutSeconds);
  if (Err != RpcError::None)
    return Err;
  if (static_cast<MessageKind>(Kind) != MessageKind::SubmitReply) {
    close();
    return RpcError::BadKind;
  }
  ByteReader R(Payload.data(), Payload.size());
  std::uint8_t Reject = 0;
  if (!R.u8(Reject) || Reject > 5 || !R.u64(Reply.JobId) ||
      R.remaining() != 0) {
    close();
    return RpcError::Corrupt;
  }
  Reply.Reject = static_cast<serve::ServeReject>(Reject);
  return RpcError::None;
}

RpcError RpcClient::await(std::uint64_t JobId, std::uint64_t DeadlineMillis,
                          bool &Found, RepairReport &Report) {
  ByteWriter W;
  W.u64(JobId);
  W.u64(DeadlineMillis);
  // The server may legitimately hold the reply for the whole deadline;
  // give the socket that long plus the ordinary request slack.
  double Slack = Opts.RequestTimeoutSeconds +
                 (DeadlineMillis == 0
                      ? 0.0
                      : static_cast<double>(DeadlineMillis) / 1000.0);
  if (DeadlineMillis == 0)
    Slack = 0.0; // server-default deadline: unknown, wait indefinitely
  std::uint8_t Kind = 0;
  std::vector<std::uint8_t> Payload;
  RpcError Err =
      exchange(MessageKind::Await, W.buffer(), Kind, Payload, Slack);
  if (Err != RpcError::None)
    return Err;
  if (static_cast<MessageKind>(Kind) != MessageKind::ReportReply) {
    close();
    return RpcError::BadKind;
  }
  ByteReader R(Payload.data(), Payload.size());
  std::uint8_t Flag = 0;
  if (!R.u8(Flag) || Flag > 1) {
    close();
    return RpcError::Corrupt;
  }
  Found = Flag == 1;
  if (Found && (!readRepairReport(R, Report) || R.remaining() != 0)) {
    close();
    return RpcError::Corrupt;
  }
  return RpcError::None;
}

RpcError RpcClient::progress(std::uint64_t JobId, bool &Found,
                             ProgressSnapshot &Snapshot) {
  ByteWriter W;
  W.u64(JobId);
  std::uint8_t Kind = 0;
  std::vector<std::uint8_t> Payload;
  RpcError Err = exchange(MessageKind::Progress, W.buffer(), Kind, Payload,
                          Opts.RequestTimeoutSeconds);
  if (Err != RpcError::None)
    return Err;
  if (static_cast<MessageKind>(Kind) != MessageKind::ProgressReply) {
    close();
    return RpcError::BadKind;
  }
  ByteReader R(Payload.data(), Payload.size());
  std::uint8_t Flag = 0;
  if (!R.u8(Flag) || Flag > 1) {
    close();
    return RpcError::Corrupt;
  }
  Found = Flag == 1;
  if (Found && (!readProgressSnapshot(R, Snapshot) || R.remaining() != 0)) {
    close();
    return RpcError::Corrupt;
  }
  return RpcError::None;
}

RpcError RpcClient::status(serve::ServiceStats &Stats) {
  std::uint8_t Kind = 0;
  std::vector<std::uint8_t> Payload;
  RpcError Err = exchange(MessageKind::Status, {}, Kind, Payload,
                          Opts.RequestTimeoutSeconds);
  if (Err != RpcError::None)
    return Err;
  if (static_cast<MessageKind>(Kind) != MessageKind::StatusReply) {
    close();
    return RpcError::BadKind;
  }
  ByteReader R(Payload.data(), Payload.size());
  if (!readServiceStats(R, Stats) || R.remaining() != 0) {
    close();
    return RpcError::Corrupt;
  }
  return RpcError::None;
}

RpcError RpcClient::metrics(obs::MetricsSnapshot &Snapshot) {
  std::uint8_t Kind = 0;
  std::vector<std::uint8_t> Payload;
  RpcError Err = exchange(MessageKind::Metrics, {}, Kind, Payload,
                          Opts.RequestTimeoutSeconds);
  if (Err != RpcError::None)
    return Err;
  if (static_cast<MessageKind>(Kind) != MessageKind::MetricsReply) {
    close();
    return RpcError::BadKind;
  }
  ByteReader R(Payload.data(), Payload.size());
  if (!readMetricsSnapshot(R, Snapshot) || R.remaining() != 0) {
    close();
    return RpcError::Corrupt;
  }
  return RpcError::None;
}

RpcError RpcClient::cancel(std::uint64_t JobId, bool &Found) {
  ByteWriter W;
  W.u64(JobId);
  std::uint8_t Kind = 0;
  std::vector<std::uint8_t> Payload;
  RpcError Err = exchange(MessageKind::Cancel, W.buffer(), Kind, Payload,
                          Opts.RequestTimeoutSeconds);
  if (Err != RpcError::None)
    return Err;
  if (static_cast<MessageKind>(Kind) != MessageKind::CancelReply) {
    close();
    return RpcError::BadKind;
  }
  ByteReader R(Payload.data(), Payload.size());
  std::uint8_t Flag = 0;
  if (!R.u8(Flag) || Flag > 1 || R.remaining() != 0) {
    close();
    return RpcError::Corrupt;
  }
  Found = Flag == 1;
  return RpcError::None;
}

RpcError RpcClient::repair(const serve::ServeRequest &Request,
                           RepairReport &Report,
                           serve::ServeReject &Reject) {
  Reject = serve::ServeReject::None;
  double Backoff = Opts.InitialBackoffSeconds;
  RpcError LastErr = RpcError::None;

  for (int Attempt = 0; Attempt <= Opts.RetryLimit; ++Attempt) {
    if (Attempt > 0) {
      Counters.Retries += 1;
      if (Backoff > 0.0)
        std::this_thread::sleep_for(std::chrono::duration<double>(Backoff));
      Backoff = std::min(Backoff > 0.0 ? Backoff * 2.0
                                       : Opts.InitialBackoffSeconds,
                         Opts.MaxBackoffSeconds);
    }

    if (!connected()) {
      RpcError Err = connect();
      if (Err != RpcError::None) {
        LastErr = Err;
        continue; // server may be between restarts: keep retrying
      }
      if (Attempt > 0)
        Counters.Reconnects += 1;
    }

    SubmitReply Submitted;
    RpcError Err = submit(Request, Submitted);
    if (Err == RpcError::Closed &&
        ConnReject != serve::ServeReject::None) {
      // ConnectionReject at the server's bound: a shed, not a fault.
      LastErr = Err;
      ConnReject = serve::ServeReject::None;
      continue;
    }
    if (Err != RpcError::None) {
      LastErr = Err;
      continue;
    }

    if (!Submitted.accepted()) {
      Counters.ShedRejects +=
          (Submitted.Reject == serve::ServeReject::Saturated ||
           Submitted.Reject == serve::ServeReject::ClassQuota)
              ? 1
              : 0;
      if (Submitted.Reject != serve::ServeReject::Saturated &&
          Submitted.Reject != serve::ServeReject::ClassQuota) {
        // Not load shedding: retrying cannot help.
        Reject = Submitted.Reject;
        return RpcError::None;
      }
      Reject = Submitted.Reject;
      continue; // shed: back off and resubmit
    }

    // Admitted: await to completion, riding out deadline expiries.
    for (;;) {
      bool Found = false;
      std::uint64_t SliceMillis =
          Opts.AwaitSliceSeconds > 0.0
              ? static_cast<std::uint64_t>(Opts.AwaitSliceSeconds * 1000.0)
              : 0;
      Err = await(Submitted.JobId, SliceMillis, Found, Report);
      if (Err == RpcError::Timeout)
        continue; // job still running; ask again
      if (Err != RpcError::None)
        return Err; // connection-level failure mid-await
      if (!Found)
        return RpcError::Corrupt; // server forgot an admitted job
      Reject = serve::ServeReject::None;
      return RpcError::None;
    }
  }

  // Out of attempts: report the last typed outcome we saw.
  if (Reject != serve::ServeReject::None)
    return RpcError::None;
  return LastErr == RpcError::None ? RpcError::IoError : LastErr;
}
