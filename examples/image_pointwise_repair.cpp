//===- examples/image_pointwise_repair.cpp - Task-1-style point repair --------===//
//
// The paper's SqueezeNet/NAE scenario (§1, §7.1) on the ShapeWorld
// substrate: a convolutional classifier misclassifies
// "natural adversarial examples"; Provable Point Repair fixes a batch
// of them with a provably l1-minimal single-layer change, and we
// compare drawdown against the FT fine-tuning baseline.
//
// The layer choice uses the RepairEngine's kAutoLayer sweep (the §7
// methodology as an API mode): the engine attempts each candidate
// layer and returns the minimal-norm success, with per-layer attempts
// in the report's sweep log.
//
//===----------------------------------------------------------------------===//

#include "api/RepairEngine.h"
#include "data/ShapeWorld.h"
#include "train/FineTune.h"

#include <cstdio>

using namespace prdnn;
using namespace prdnn::data;

int main() {
  Rng R(424242);
  std::printf("Training a conv ShapeWorld classifier (ImageNet stand-in)"
              "...\n");
  Network Net = trainShapeClassifier(/*TrainCount=*/1350, /*Epochs=*/6, R);

  Rng EvalR(5);
  Dataset Validation = makeShapeWorld(450, EvalR);
  std::printf("  validation accuracy: %.1f%%\n",
              100 * accuracy(Net, Validation.Inputs, Validation.Labels));

  Rng AdvR(6);
  Dataset Adversarials = makeNaturalAdversarials(Net, 45, AdvR);
  std::printf("  accuracy on %d natural-adversarial images: %.1f%%\n",
              Adversarials.size(),
              100 * accuracy(Net, Adversarials.Inputs, Adversarials.Labels));

  // Point spec: each adversarial must be classified correctly. As in
  // §7, the repair set also includes non-buggy anchor points (fresh
  // correctly-classified images) to keep the minimal repair local.
  PointSpec Spec;
  for (int I = 0; I < Adversarials.size(); ++I)
    Spec.push_back({Adversarials.Inputs[I],
                    classificationConstraint(kShapeClasses,
                                             Adversarials.Labels[I], 1e-4),
                    std::nullopt});
  Rng AnchorR(8);
  int Anchors = 0;
  while (Anchors < 90) {
    int Shape = Anchors % kShapeClasses;
    Vector Image = makeShapeImage(Shape, AnchorR);
    if (Net.classify(Image) != Shape)
      continue;
    Spec.push_back({std::move(Image),
                    classificationConstraint(kShapeClasses, Shape, 1e-4),
                    std::nullopt});
    ++Anchors;
  }

  // Sweep the two rearmost repairable layers (the paper's heuristic:
  // later layers repair with less drawdown) and keep the minimal-norm
  // success; an Infeasible attempt is a *proof* that no single-layer
  // repair of that layer exists.
  std::vector<int> Layers = Net.parameterizedLayerIndices();
  RepairRequest Request;
  Request.Net = RepairRequest::borrow(Net);
  Request.Spec = Spec;
  Request.LayerIndex = kAutoLayer;
  Request.SweepLayers = {Layers[Layers.size() - 2], Layers.back()};
  std::printf("\nProvable Point Repair sweep over layers %d and %d on "
              "%zu points...\n",
              Request.SweepLayers[0], Request.SweepLayers[1], Spec.size());

  RepairEngine Engine;
  RepairReport Report = Engine.run(Request);
  for (const SweepAttempt &Attempt : Report.Sweep)
    std::printf("  layer %d (%s): %s, |Delta|_1 = %.3f, %.1fs%s\n",
                Attempt.LayerIndex,
                Net.layer(Attempt.LayerIndex).describe().c_str(),
                toString(Attempt.Status), Attempt.DeltaL1, Attempt.Seconds,
                Attempt.Status == RepairStatus::Infeasible
                    ? " (proof: this layer cannot satisfy the spec)"
                    : "");
  if (Report.Status != RepairStatus::Success) {
    std::printf("no single-layer repair found\n");
    return 1;
  }
  std::printf("  winner: layer %d (minimal objective norm)\n",
              Report.RepairedLayer);
  RepairResult Result = std::move(Report.Result);
  const DecoupledNetwork &Repaired = *Result.Repaired;
  double Efficacy =
      Repaired.accuracy(Adversarials.Inputs, Adversarials.Labels);
  double DrawBefore = accuracy(Net, Validation.Inputs, Validation.Labels);
  double DrawAfter = Repaired.accuracy(Validation.Inputs, Validation.Labels);
  std::printf("  efficacy: %.1f%% (guaranteed 100%%)\n", 100 * Efficacy);
  std::printf("  drawdown: %.1f%% -> %.1f%% validation accuracy\n",
              100 * DrawBefore, 100 * DrawAfter);
  std::printf("  |Delta|_1 = %.3f over %d parameters; %.1fs "
              "(jac %.1fs, lp %.1fs)\n",
              Result.DeltaL1, static_cast<int>(Result.Delta.size()),
              Result.Stats.TotalSeconds, Result.Stats.JacobianSeconds,
              Result.Stats.LpSeconds);

  // FT baseline for contrast.
  std::printf("\nFT baseline (gradient descent on all parameters)...\n");
  FineTuneOptions FtOptions;
  FtOptions.LearningRate = 0.005;
  FtOptions.BatchSize = 2;
  FtOptions.MaxEpochs = 200;
  Rng FtR(7);
  FineTuneResult Ft = fineTune(Net, Adversarials, FtOptions, FtR);
  std::printf("  efficacy: %.1f%% after %d epochs (%.1fs)\n",
              100 * Ft.RepairAccuracy, Ft.Epochs, Ft.Seconds);
  std::printf("  drawdown: %.1f%% -> %.1f%% validation accuracy\n",
              100 * DrawBefore,
              100 * accuracy(Ft.Tuned, Validation.Inputs,
                             Validation.Labels));
  return Efficacy >= 1.0 ? 0 : 1;
}
