//===- examples/quickstart.cpp - the paper's running example -----------------===//
//
// Reproduces §3 of "Provable Repair of Deep Neural Networks" end to end
// on the Figure 3 network N1, through the RepairEngine request/job API:
//
//   1. compute LinRegions(N1, [-1, 2])            (Equation 1);
//   2. provable *point* repair for Equation 2 (a synchronous
//      engine.run), recovering the paper's l1-minimal deltas
//      (Delta2 = 0.6, Delta3 = 1.13...) and the repaired network N5 of
//      Figure 5;
//   3. provable *polytope* repair for Equation 3 (an asynchronous
//      engine.submit + report), recovering the single-weight change
//      Delta2 = -0.2 and network N6.
//
// Exits non-zero if any reproduced number deviates from the paper.
//
//===----------------------------------------------------------------------===//

#include "api/RepairEngine.h"
#include "nn/ActivationLayers.h"
#include "nn/LinearLayers.h"
#include "syrenn/LineTransform.h"

#include <cmath>
#include <cstdio>
#include <memory>

using namespace prdnn;

static bool Ok = true;

static void check(bool Condition, const char *What) {
  std::printf("  [%s] %s\n", Condition ? "ok" : "FAIL", What);
  Ok = Ok && Condition;
}

static bool near(double A, double B, double Tol = 1e-6) {
  return std::fabs(A - B) <= Tol;
}

int main() {
  // --- Figure 3(a): N1 ------------------------------------------------------
  // h = ReLU([-1; 1; 1] x + [0; 0; -1]),  y = -h1 - h2 + h3.
  Network N1;
  N1.addLayer(std::make_unique<FullyConnectedLayer>(
      Matrix::fromRows({{-1.0}, {1.0}, {1.0}}), Vector{0.0, 0.0, -1.0}));
  N1.addLayer(std::make_unique<ReLULayer>(3));
  N1.addLayer(std::make_unique<FullyConnectedLayer>(
      Matrix::fromRows({{-1.0, -1.0, 1.0}}), Vector{0.0}));

  std::printf("N1 (Figure 3a):\n%s", N1.describe().c_str());
  std::printf("N1(0.5) = %.3f, N1(1.5) = %.3f\n",
              N1.evaluate(Vector{0.5})[0], N1.evaluate(Vector{1.5})[0]);

  // --- LinRegions (Equation 1) ----------------------------------------------
  LinePartition Regions = lineRegions(N1, Vector{-1.0}, Vector{2.0});
  std::printf("\nLinRegions(N1, [-1, 2]) in x-coordinates:");
  for (double T : Regions.Ts)
    std::printf(" %.3f", -1.0 + 3.0 * T);
  std::printf("\n");
  check(Regions.numPieces() == 3, "three linear regions (Equation 1)");

  // One engine serves both repairs; run() executes inline, submit()
  // queues the job on the engine's workers.
  RepairEngine Engine;

  // The paper's drawn network has no bias edges into h1/h2; freeze them
  // so the LP matches the paper's four Delta variables exactly.
  RepairOptions Options;
  Options.Objective = lp::Norm::L1;
  Options.RowMargin = 0.0;
  Options.ParamMask = std::vector<bool>{true, true, true, false, false, true};

  // --- Point repair (§3.1, Equation 2) ---------------------------------------
  std::printf("\nPoint repair: -1 <= N'(0.5) <= -0.8  and  "
              "-0.2 <= N'(1.5) <= 0\n");
  PointSpec PointSpecification;
  PointSpecification.push_back({Vector{0.5},
                                boxConstraint(Vector{-1.0}, Vector{-0.8}),
                                std::nullopt});
  PointSpecification.push_back({Vector{1.5},
                                boxConstraint(Vector{-0.2}, Vector{0.0}),
                                std::nullopt});
  RepairReport Point = Engine.run(RepairRequest::points(
      RepairRequest::borrow(N1), 0, PointSpecification, Options));
  check(Point.Status == RepairStatus::Success, "point repair succeeded");
  const RepairResult &PointResult = Point.Result;
  std::printf("  Delta = (%.4f, %.4f, %.4f | bias3 %.4f),  |Delta|_1 = "
              "%.4f\n",
              PointResult.Delta[0], PointResult.Delta[1],
              PointResult.Delta[2], PointResult.Delta[5],
              PointResult.DeltaL1);
  check(near(PointResult.Delta[1], 0.6), "Delta2 = 0.6 (paper §3.1)");
  check(near(PointResult.Delta[2], 17.0 / 15.0),
        "Delta3 = 1.1333 (paper §3.1)");
  const DecoupledNetwork &N5 = *PointResult.Repaired;
  std::printf("  N5(0.5) = %.4f, N5(1.5) = %.4f (Figure 5c)\n",
              N5.evaluate(Vector{0.5})[0], N5.evaluate(Vector{1.5})[0]);
  check(near(N5.evaluate(Vector{0.5})[0], -0.8), "N5(0.5) = -0.8");
  check(near(N5.evaluate(Vector{1.5})[0], -0.2), "N5(1.5) = -0.2");

  // --- Polytope repair (§3.2, Equation 3) -------------------------------------
  std::printf("\nPolytope repair: for all x in [0.5, 1.5], "
              "-0.8 <= N'(x) <= -0.4\n");
  PolytopeSpec PolySpecification;
  PolySpecification.push_back(
      SpecPolytope{SegmentPolytope{Vector{0.5}, Vector{1.5}},
                   boxConstraint(Vector{-0.8}, Vector{-0.4})});
  JobHandle PolyJob = Engine.submit(RepairRequest::polytopes(
      RepairRequest::borrow(N1), 0, PolySpecification, Options));
  const RepairReport &Poly = PolyJob.report();
  check(Poly.Status == RepairStatus::Success, "polytope repair succeeded");
  const RepairResult &PolyResult = Poly.Result;
  std::printf("  key points: %d over %d linear regions (async job %llu)\n",
              PolyResult.Stats.KeyPoints, PolyResult.Stats.LinearRegions,
              static_cast<unsigned long long>(Poly.JobId));
  check(PolyResult.Stats.KeyPoints == 4, "4 key points: {0.5, 1, 1, 1.5}");
  std::printf("  Delta = (%.4f, %.4f, %.4f | bias3 %.4f),  |Delta|_1 = "
              "%.4f\n",
              PolyResult.Delta[0], PolyResult.Delta[1], PolyResult.Delta[2],
              PolyResult.Delta[5], PolyResult.DeltaL1);
  check(near(PolyResult.Delta[1], -0.2), "single weight change Delta2 = -0.2");

  const DecoupledNetwork &N6 = *PolyResult.Repaired;
  bool AllInside = true;
  for (int I = 0; I <= 1000; ++I) {
    double Y = N6.evaluate(Vector{0.5 + I / 1000.0})[0];
    AllInside = AllInside && Y <= -0.4 + 1e-9 && Y >= -0.8 - 1e-9;
  }
  check(AllInside, "all 1001 sampled points of [0.5, 1.5] satisfy the spec");

  std::printf("\n%s\n", Ok ? "quickstart: all checks passed"
                           : "quickstart: CHECKS FAILED");
  return Ok ? 0 : 1;
}
