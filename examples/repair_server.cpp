//===- examples/repair_server.cpp - many jobs through one engine -------------===//
//
// The RepairEngine as a repair *service*: a dozen repair requests -
// point and polytope specs, fixed layers and auto layer sweeps, over
// two shared (immutable) networks - are submitted concurrently to one
// engine and drain through its bounded FIFO queue and worker threads,
// all sharing the one global compute pool.
//
// While the jobs run, the main thread polls progress snapshots (phase +
// per-phase item counters). When everything is done, every async
// result is compared bit-for-bit against a serial repairPoints /
// repairPolytopes call of the same request - the engine's determinism
// contract. The same mix is then resubmitted *warm*: the engine's
// artifact cache turns the Jacobian / LinRegions phases into lookups
// and every LP solve replays its cached terminal simplex basis
// (BasisHits > 0) - and the warm results must still be bit-identical.
// A final high-priority job demonstrates cooperative cancellation (and
// the priority-classed queue).
//
// Finally, the persistent-store restart demo: an engine whose cache is
// backed by an on-disk artifact store drains the same mix, is torn
// down (flushing its write-behind queue), and a *fresh* engine on the
// same directory drains it again - the restarted engine's lookups come
// back from disk (L2 hits), its LPs warm-start from the persisted
// simplex bases, and its results are still bit-identical to the serial
// runs.
//
// Exits non-zero if any job fails, diverges from its serial twin, the
// warm pass misses the cache, the cancelled job doesn't report
// Cancelled, or the restarted engine misses the store.
//
//===----------------------------------------------------------------------===//

#include "examples/DemoNetworks.h"

#include "api/RepairEngine.h"
#include "core/PolytopeRepair.h"
#include "support/Rng.h"

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace prdnn;
using namespace prdnn::demo;

int main() {
  Rng R(20260727);
  auto Classifier = std::make_shared<Network>(makeClassifier(R));
  auto Regressor = std::make_shared<Network>(makeRegressor(R));
  std::printf("shared networks: classifier (%d params), regressor "
              "(%d params)\n",
              Classifier->totalParams(), Regressor->totalParams());

  // --- Build the request mix -------------------------------------------------
  // 12 jobs: point repairs across all three classifier layers, segment
  // (polytope) repairs on the regressor, and two auto layer sweeps.
  std::vector<RepairRequest> Requests;
  for (int Layer : {0, 2, 4})
    for (int Seed : {1, 2})
      Requests.push_back(RepairRequest::points(
          Classifier, Layer,
          [&] {
            Rng SpecR(1000 + 10 * Layer + Seed);
            return makeFlipSpec(*Classifier, SpecR, 30);
          }()));
  for (int Seed : {5, 6, 7, 8}) {
    Rng SpecR(2000 + Seed);
    Requests.push_back(RepairRequest::polytopes(
        Regressor, 2, makeSegmentSpec(*Regressor, SpecR, 3)));
  }
  for (int Seed : {9, 10}) {
    Rng SpecR(3000 + Seed);
    RepairRequest Sweep;
    Sweep.Net = Classifier;
    Sweep.Spec = makeFlipSpec(*Classifier, SpecR, 24);
    Sweep.LayerIndex = kAutoLayer; // minimal-norm layer sweep
    Requests.push_back(std::move(Sweep));
  }

  // --- Serial ground truth ---------------------------------------------------
  // The same requests run inline with the cache disabled: a genuinely
  // cache-free reference, so the bit-identity checks below test the
  // concurrent *and* cached paths against independent recomputation.
  EngineOptions SerialOptions;
  SerialOptions.EnableCache = false;
  RepairEngine SerialEngine(SerialOptions); // run() executes inline
  std::vector<RepairReport> Serial;
  for (const RepairRequest &Request : Requests)
    Serial.push_back(SerialEngine.run(Request));

  // --- Concurrent drain ------------------------------------------------------
  EngineOptions Options;
  Options.NumWorkers = 4;
  Options.QueueCapacity = 8; // smaller than the job count: backpressure
  RepairEngine Engine(Options);
  std::printf("submitting %zu jobs to %d workers (queue capacity %d)"
              "...\n\n",
              Requests.size(), Options.NumWorkers, Options.QueueCapacity);

  std::vector<JobHandle> Handles;
  Handles.reserve(Requests.size());
  for (const RepairRequest &Request : Requests)
    Handles.push_back(Engine.submit(Request));

  // Poll progress while the queue drains.
  while (Engine.pendingJobs() > 0) {
    std::string Line = "  [progress]";
    for (const JobHandle &H : Handles) {
      ProgressSnapshot S = H.progress();
      Line += " " + std::to_string(H.id()) + ":" +
              std::string(toString(S.Phase)).substr(0, 3);
    }
    std::printf("%s\n", Line.c_str());
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  // --- Report and verify -----------------------------------------------------
  std::printf("\n%-4s %-9s %-10s %-6s %-10s %-9s %-9s %s\n", "job",
              "kind", "status", "layer", "|Delta|_1", "queue(ms)",
              "total(ms)", "bit-identical-to-serial");
  int Completed = 0;
  bool AllMatch = true;
  for (size_t I = 0; I < Handles.size(); ++I) {
    const RepairReport &Report = Handles[I].report();
    bool Match = bitIdentical(Report.Result, Serial[I].Result) &&
                 Report.Status == Serial[I].Status &&
                 Report.RepairedLayer == Serial[I].RepairedLayer;
    AllMatch = AllMatch && Match;
    Completed += Report.Status == RepairStatus::Success;
    std::printf("%-4llu %-9s %-10s %-6d %-10.4f %-9.1f %-9.1f %s\n",
                static_cast<unsigned long long>(Report.JobId),
                Requests[I].isPolytope()
                    ? "polytope"
                    : (Requests[I].isSweep() ? "sweep" : "points"),
                toString(Report.Status), Report.RepairedLayer,
                Report.Result.DeltaL1, 1e3 * Report.QueueSeconds,
                1e3 * Report.TotalSeconds, Match ? "yes" : "NO");
  }

  // --- Warm resubmission: the artifact cache at work -------------------------
  // The same requests again: Jacobian row blocks, SyReNN transforms,
  // and pattern batches now come from the engine's shared cache, and
  // the results are still bit-identical (the cache's determinism
  // contract).
  std::vector<JobHandle> WarmHandles;
  WarmHandles.reserve(Requests.size());
  for (const RepairRequest &Request : Requests)
    WarmHandles.push_back(Engine.submit(Request));
  bool WarmMatch = true;
  std::int64_t WarmHits = 0, WarmMisses = 0, WarmBasisHits = 0;
  for (size_t I = 0; I < WarmHandles.size(); ++I) {
    const RepairReport &Report = WarmHandles[I].report();
    WarmMatch = WarmMatch && bitIdentical(Report.Result, Serial[I].Result) &&
                Report.Status == Serial[I].Status;
    WarmHits += Report.CacheHits;
    WarmMisses += Report.CacheMisses;
    // Resubmitted LPs replay their cached terminal bases: zero pivots,
    // same bits (the bitIdentical check above is what makes "warm" safe).
    WarmBasisHits += Report.Result.Stats.BasisHits;
  }
  CacheStats Stats = Engine.cacheStats();
  std::printf("\nwarm pass: %lld cache hits / %lld misses across jobs "
              "(%lld simplex-basis replays); results %s first pass\n",
              static_cast<long long>(WarmHits),
              static_cast<long long>(WarmMisses),
              static_cast<long long>(WarmBasisHits),
              WarmMatch ? "bit-identical to" : "DIVERGED from");
  std::printf("engine cache: %.1f%% hit rate, %llu entries, %.2f MiB held "
              "(budget %.0f MiB), %llu evictions\n",
              100.0 * Stats.hitRate(),
              static_cast<unsigned long long>(Stats.Entries),
              static_cast<double>(Stats.BytesHeld) / (1024.0 * 1024.0),
              static_cast<double>(Stats.BudgetBytes) / (1024.0 * 1024.0),
              static_cast<unsigned long long>(Stats.Evictions));

  // --- Cancellation demo (submitted as High priority) ------------------------
  Rng CancelR(4001);
  RepairRequest DoomedRequest = RepairRequest::points(
      Classifier, 4, makeFlipSpec(*Classifier, CancelR, 600));
  DoomedRequest.JobPriority = RepairRequest::Priority::High;
  JobHandle Doomed = Engine.submit(std::move(DoomedRequest));
  Doomed.cancel();
  const RepairReport &DoomedReport = Doomed.report();
  std::printf("\ncancellation demo: job %llu -> %s (%.1fms)\n",
              static_cast<unsigned long long>(DoomedReport.JobId),
              toString(DoomedReport.Status),
              1e3 * DoomedReport.TotalSeconds);

  // --- Warm restart: the persistent artifact store at work -------------------
  // A repair service that restarts should not re-derive every Jacobian
  // block and SyReNN transform from scratch: an engine backed by an
  // on-disk store leaves its artifacts behind, and its successor reads
  // them back (bit-identically) on first touch.
  namespace fs = std::filesystem;
  const fs::path StoreDir =
      fs::temp_directory_path() /
      ("prdnn-repair-server-" +
       std::to_string(
           std::chrono::steady_clock::now().time_since_epoch().count()));
  EngineOptions StoreOptions;
  StoreOptions.NumWorkers = 4;
  StoreOptions.QueueCapacity = 8;
  StoreOptions.StoreDirectory = StoreDir.string();
  {
    RepairEngine FirstLife(StoreOptions);
    std::vector<JobHandle> ColdHandles;
    for (const RepairRequest &Request : Requests)
      ColdHandles.push_back(FirstLife.submit(Request));
    for (JobHandle &Handle : ColdHandles)
      Handle.wait();
    // Orderly shutdown: drain the asynchronous write-behind queue so
    // the successor finds every artifact on disk.
    FirstLife.flushStore();
    std::printf("\nstore engine (first life): %llu artifacts written to "
                "%s\n",
                static_cast<unsigned long long>(
                    FirstLife.storeStats().Writes),
                StoreDir.string().c_str());
  } // engine destroyed - in a real server, the process exits here

  RepairEngine SecondLife(StoreOptions);
  std::vector<JobHandle> RestartHandles;
  for (const RepairRequest &Request : Requests)
    RestartHandles.push_back(SecondLife.submit(Request));
  bool RestartMatch = true;
  std::int64_t RestartStoreHits = 0, RestartBasisHits = 0;
  for (size_t I = 0; I < RestartHandles.size(); ++I) {
    const RepairReport &Report = RestartHandles[I].report();
    RestartMatch = RestartMatch &&
                   bitIdentical(Report.Result, Serial[I].Result) &&
                   Report.Status == Serial[I].Status;
    RestartStoreHits += Report.StoreHits;
    // Bases persist too: the fresh engine warm-starts its LPs from
    // bases its predecessor left on disk - still bit-identically.
    RestartBasisHits += Report.Result.Stats.BasisHits;
  }
  persist::StoreStats RestartStats = SecondLife.storeStats();
  std::printf("restarted engine: %lld L2 (disk) hits across jobs "
              "(%lld simplex-basis replays), %.1f%% store hit rate, "
              "%.2f MiB on disk; results %s serial runs\n",
              static_cast<long long>(RestartStoreHits),
              static_cast<long long>(RestartBasisHits),
              100.0 * RestartStats.hitRate(),
              static_cast<double>(RestartStats.BytesHeld) /
                  (1024.0 * 1024.0),
              RestartMatch ? "bit-identical to" : "DIVERGED from");
  {
    std::error_code Ec;
    fs::remove_all(StoreDir, Ec);
  }

  bool Ok = AllMatch && WarmMatch && WarmHits > 0 && WarmBasisHits > 0 &&
            Completed >= 8 &&
            DoomedReport.Status == RepairStatus::Cancelled &&
            RestartMatch && RestartStoreHits > 0 && RestartBasisHits > 0;
  std::printf("\n%d/%zu jobs succeeded; results %s serial runs; "
              "cancellation %s\n",
              Completed, Handles.size(),
              AllMatch ? "bit-identical to" : "DIVERGED from",
              DoomedReport.Status == RepairStatus::Cancelled ? "ok"
                                                             : "FAILED");
  std::printf("%s\n", Ok ? "repair_server: all checks passed"
                         : "repair_server: CHECKS FAILED");
  return Ok ? 0 : 1;
}
