//===- examples/fog_line_repair.cpp - Task-2-style line repair ---------------===//
//
// The paper's motivating MNIST-C scenario (§1, Figure 2) on the
// synthetic digit substrate: a digit classifier that collapses on
// fog-corrupted images is repaired over *lines* from clean images to
// their fogged versions, guaranteeing correct classification for every
// one of the infinitely many fog levels in between (Provable Polytope
// Repair, §6).
//
// The repair runs as an asynchronous RepairEngine job: submitted with
// submit(), observed through progress snapshots (LinRegions ->
// Jacobian -> Lp -> Verify), and collected with report().
//
//===----------------------------------------------------------------------===//

#include "api/RepairEngine.h"
#include "data/Corruptions.h"
#include "data/Digits.h"

#include <chrono>
#include <cstdio>
#include <thread>

using namespace prdnn;
using namespace prdnn::data;

int main() {
  Rng R(20240610);

  std::printf("Training a digit classifier (synthetic MNIST stand-in)...\n");
  Network Net = trainDigitClassifier(/*Hidden=*/32, /*TrainCount=*/2500,
                                     /*Epochs=*/12, R);

  Rng EvalR(7);
  Dataset Clean = makeDigits(500, EvalR);
  Dataset Fogged;
  Rng FogR(8);
  for (int I = 0; I < Clean.size(); ++I)
    Fogged.push(fogCorrupt(Clean.Inputs[I], kDigitImage, kDigitImage,
                           FogR.uniform(0.5, 0.75), FogR),
                Clean.Labels[I]);
  std::printf("  clean accuracy:  %.1f%%\n",
              100 * accuracy(Net, Clean.Inputs, Clean.Labels));
  std::printf("  fogged accuracy: %.1f%% (the bug)\n",
              100 * accuracy(Net, Fogged.Inputs, Fogged.Labels));

  // Build 12 repair lines clean -> fogged (each an infinite family of
  // fog levels).
  PolytopeSpec Spec;
  Rng LineR(9);
  int Made = 0;
  for (int I = 0; I < Clean.size() && Made < 12; ++I) {
    if (Net.classify(Clean.Inputs[I]) != Clean.Labels[I])
      continue; // anchor lines at correctly-classified clean images
    Vector Fog = fogCorrupt(Clean.Inputs[I], kDigitImage, kDigitImage,
                            LineR.uniform(0.5, 0.75), LineR);
    Spec.push_back(SpecPolytope{
        SegmentPolytope{Clean.Inputs[I], Fog},
        classificationConstraint(kDigitClasses, Clean.Labels[I], 1e-4)});
    ++Made;
  }
  std::printf("\nRepairing the output layer over %d clean->fog lines...\n",
              Made);

  int OutputLayer = Net.parameterizedLayerIndices().back();
  RepairEngine Engine;
  JobHandle Job = Engine.submit(RepairRequest::polytopes(
      RepairRequest::borrow(Net), OutputLayer, Spec));
  while (!Job.done()) {
    ProgressSnapshot S = Job.progress();
    std::printf("  [job %llu] phase %s (%lld/%lld)\n",
                static_cast<unsigned long long>(Job.id()),
                toString(S.Phase), static_cast<long long>(S.ItemsDone),
                static_cast<long long>(S.ItemsTotal));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  RepairResult Result = Job.report().Result;
  if (Result.Status != RepairStatus::Success) {
    std::printf("repair failed: %s\n", toString(Result.Status));
    return 1;
  }
  std::printf("  key points: %d over %d linear regions; |Delta|_1 = %.3f; "
              "%.1fs\n",
              Result.Stats.KeyPoints, Result.Stats.LinearRegions,
              Result.DeltaL1, Result.Stats.TotalSeconds);

  // Provable guarantee check: dense samples along each repaired line.
  const DecoupledNetwork &Repaired = *Result.Repaired;
  int Bad = 0, Total = 0;
  for (const SpecPolytope &P : Spec) {
    const auto &Segment = std::get<SegmentPolytope>(P.Shape);
    for (int S = 0; S <= 50; ++S) {
      Vector X = Segment.B;
      X -= Segment.A;
      X *= S / 50.0;
      X += Segment.A;
      Vector Y = Repaired.evaluate(X);
      if (P.Constraint.violation(Y) > 1e-7)
        ++Bad;
      ++Total;
    }
  }
  std::printf("  spec check on %d dense line samples: %d violations\n",
              Total, Bad);

  // Drawdown (clean set) and generalization (fresh fogged set).
  double DrawBefore = accuracy(Net, Clean.Inputs, Clean.Labels);
  double DrawAfter = Repaired.accuracy(Clean.Inputs, Clean.Labels);
  double GenBefore = accuracy(Net, Fogged.Inputs, Fogged.Labels);
  double GenAfter = Repaired.accuracy(Fogged.Inputs, Fogged.Labels);
  std::printf("\n  drawdown:        %.1f%% -> %.1f%% (lower drop is "
              "better)\n",
              100 * DrawBefore, 100 * DrawAfter);
  std::printf("  generalization:  %.1f%% -> %.1f%% on unseen fogged "
              "digits\n",
              100 * GenBefore, 100 * GenAfter);
  return Bad == 0 ? 0 : 1;
}
