//===- examples/acas_safety_repair.cpp - Task-3-style 2-D repair -------------===//
//
// The paper's aircraft collision-avoidance scenario (§1, §7.3) on the
// ACAS substrate: a trained advisory network violates the phi_8-style
// property "far-away intruders never trigger a right/strong turn" in
// pockets of the safe region. We locate violating 2-D slices, repair
// them with Provable Polytope Repair, and verify the property on dense
// samples of the repaired slices.
//
//===----------------------------------------------------------------------===//

#include "api/RepairEngine.h"
#include "core/PolytopeRepair.h"
#include "data/Acas.h"
#include "syrenn/PlaneTransform.h"

#include <cstdio>

using namespace prdnn;
using namespace prdnn::data;

namespace {

/// Counts property violations of \p Classify over a dense grid of the
/// slice spanned by four corners (axis-aligned rectangle).
template <typename ClassifyT>
int countViolations(const std::vector<Vector> &Slice, ClassifyT Classify,
                    int GridSize) {
  int Violations = 0;
  for (int A = 0; A <= GridSize; ++A)
    for (int B = 0; B <= GridSize; ++B) {
      double SA = static_cast<double>(A) / GridSize;
      double SB = static_cast<double>(B) / GridSize;
      // Bilinear corner interpolation of the rectangle.
      Vector X = Slice[0] * ((1 - SA) * (1 - SB));
      X += Slice[1] * (SA * (1 - SB));
      X += Slice[2] * (SA * SB);
      X += Slice[3] * ((1 - SA) * SB);
      if (!acasSafeAdvisory(Classify(X)))
        ++Violations;
    }
  return Violations;
}

} // namespace

int main() {
  Rng R(777);
  std::printf("Training an ACAS-style advisory network...\n");
  Network Net = trainAcasNetwork(/*Hidden=*/16, /*TrainCount=*/6000,
                                 /*Epochs=*/15, R);
  Rng TestR(3);
  Dataset Test = makeAcasDataset(2000, TestR);
  std::printf("  advisory accuracy vs. ground-truth policy: %.1f%%\n",
              100 * accuracy(Net, Test.Inputs, Test.Labels));

  // Find violating slices inside the safe region.
  Rng SliceR(4);
  std::vector<std::vector<Vector>> BadSlices;
  int Scanned = 0;
  while (BadSlices.size() < 3 && Scanned < 4000) {
    ++Scanned;
    std::vector<Vector> Slice = randomSafeSlice(SliceR);
    if (countViolations(Slice, [&](const Vector &X) {
          return Net.classify(X);
        }, 12) > 0)
      BadSlices.push_back(std::move(Slice));
  }
  std::printf("  scanned %d safe slices, found %zu with phi_8-style "
              "violations\n",
              Scanned, BadSlices.size());
  if (BadSlices.empty()) {
    std::printf("  network already satisfies the property on sampled "
                "slices; nothing to repair\n");
    return 0;
  }

  // Strengthen the disjunctive "COC or weak-left" spec per key point to
  // whichever of the two the buggy network already ranks higher (§7.3).
  PolytopeSpec Raw;
  for (const auto &Slice : BadSlices)
    Raw.push_back(SpecPolytope{PlanePolytope{Slice},
                               classificationConstraint(kAcasAdvisories,
                                                        AcasCoc)});
  PointSpec Points = keyPointSpec(Net, Raw);
  for (SpecPoint &P : Points) {
    Vector Y = evaluateWithPattern(Net, P.X, *P.Pattern);
    int Target = Y[AcasCoc] >= Y[AcasWeakLeft] ? AcasCoc : AcasWeakLeft;
    P.Constraint = classificationConstraint(kAcasAdvisories, Target, 1e-5);
  }
  std::printf("\nRepairing the output layer on %zu key points from %zu "
              "slices...\n",
              Points.size(), BadSlices.size());

  int OutputLayer = Net.parameterizedLayerIndices().back();
  RepairEngine Engine;
  RepairResult Result =
      Engine
          .run(RepairRequest::points(RepairRequest::borrow(Net),
                                     OutputLayer, Points))
          .Result;
  if (Result.Status != RepairStatus::Success) {
    std::printf("repair failed: %s\n", toString(Result.Status));
    return 1;
  }
  std::printf("  |Delta|_1 = %.4f, |Delta|_inf = %.4f, %.1fs\n",
              Result.DeltaL1, Result.DeltaLInf, Result.Stats.TotalSeconds);

  // Verify the property on dense samples of every repaired slice.
  const DecoupledNetwork &Repaired = *Result.Repaired;
  int Violations = 0;
  for (const auto &Slice : BadSlices)
    Violations += countViolations(Slice, [&](const Vector &X) {
      return Repaired.classify(X);
    }, 40);
  std::printf("  dense re-check of repaired slices (41x41 grids): %d "
              "violations\n",
              Violations);

  // Drawdown: advisory agreement with the buggy network elsewhere.
  int Same = 0;
  for (int I = 0; I < Test.size(); ++I)
    if (Repaired.classify(Test.Inputs[I]) == Net.classify(Test.Inputs[I]))
      ++Same;
  std::printf("  agreement with the original network on random states: "
              "%.1f%%\n",
              100.0 * Same / Test.size());
  return Violations == 0 ? 0 : 1;
}
