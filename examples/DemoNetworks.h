//===- examples/DemoNetworks.h - shared demo builders ----------*- C++ -*-===//
///
/// \file
/// The seeded network / spec builders shared by the example programs
/// and the serving bench (examples/repair_server.cpp,
/// examples/fleet_serve.cpp, bench/bench_serve_fleet.cpp): small ReLU
/// MLPs, flip-to-runner-up classification specs, segment polytope
/// specs, and the bit-identity check every demo's determinism gate
/// uses. Header-only so non-library binaries can share them without a
/// new target; everything is deterministic given the caller's Rng.
///
/// RNG discipline: each builder consumes its Rng in a fixed order
/// (weights matrix, then bias vector, per layer) - changing that order
/// changes every demo's networks and thereby its outputs, so keep it.
///
//===----------------------------------------------------------------------===//

#ifndef PRDNN_EXAMPLES_DEMONETWORKS_H
#define PRDNN_EXAMPLES_DEMONETWORKS_H

#include "core/PolytopeRepair.h"
#include "nn/ActivationLayers.h"
#include "nn/LinearLayers.h"
#include "support/Rng.h"

#include <cmath>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

namespace prdnn {
namespace demo {

inline Vector randomVector(Rng &R, int Size, double Scale = 1.0) {
  Vector V(Size);
  for (int I = 0; I < Size; ++I)
    V[I] = Scale * R.normal();
  return V;
}

inline Matrix randomMatrix(Rng &R, int Rows, int Cols, double Scale = 1.0) {
  Matrix M(Rows, Cols);
  for (int I = 0; I < Rows; ++I)
    for (int J = 0; J < Cols; ++J)
      M(I, J) = Scale * R.normal();
  return M;
}

/// Fully-connected ReLU MLP over \p Sizes (input size first), with one
/// weight/bias scale pair per linear layer. No ReLU after the last
/// linear layer. Parameterized layers sit at even indices 0, 2, ...
inline Network makeReluMlp(Rng &R, const std::vector<int> &Sizes,
                           const std::vector<double> &WeightScales,
                           const std::vector<double> &BiasScales) {
  Network Net;
  for (size_t L = 0; L + 1 < Sizes.size(); ++L) {
    // Matrix first, then bias: the fixed consumption order (see the
    // file comment).
    Matrix W = randomMatrix(R, Sizes[L + 1], Sizes[L], WeightScales[L]);
    Vector B = randomVector(R, Sizes[L + 1], BiasScales[L]);
    Net.addLayer(
        std::make_unique<FullyConnectedLayer>(std::move(W), std::move(B)));
    if (L + 2 < Sizes.size())
      Net.addLayer(std::make_unique<ReLULayer>(Sizes[L + 1]));
  }
  return Net;
}

/// 8 -> 24 -> 24 -> 5 ReLU classifier (parameterized layers 0, 2, 4).
inline Network makeClassifier(Rng &R) {
  return makeReluMlp(R, {8, 24, 24, 5}, {0.8, 0.7, 0.8}, {0.3, 0.3, 0.3});
}

/// 2 -> 12 -> 2 regressor for segment (polytope) jobs.
inline Network makeRegressor(Rng &R) {
  return makeReluMlp(R, {2, 12, 2}, {0.9, 0.8}, {0.2, 0.2});
}

/// Classification spec: every third point flips to its runner-up class.
inline PointSpec makeFlipSpec(const Network &Net, Rng &R, int Count) {
  PointSpec Spec;
  for (int I = 0; I < Count; ++I) {
    Vector X = randomVector(R, Net.inputSize());
    Vector Y = Net.evaluate(X);
    int Top = Y.argmax();
    int Target = Top;
    if (I % 3 == 0) {
      double Best = -1e300;
      for (int C = 0; C < Y.size(); ++C)
        if (C != Top && Y[C] > Best) {
          Best = Y[C];
          Target = C;
        }
    }
    Spec.push_back({std::move(X),
                    classificationConstraint(Net.outputSize(), Target, 1e-3),
                    std::nullopt});
  }
  return Spec;
}

/// Segment spec: outputs along a random segment must stay in a box
/// slightly tighter than what the network currently produces.
inline PolytopeSpec makeSegmentSpec(const Network &Net, Rng &R,
                                    int Segments) {
  PolytopeSpec Spec;
  for (int S = 0; S < Segments; ++S) {
    Vector A = randomVector(R, Net.inputSize());
    Vector B = randomVector(R, Net.inputSize());
    Vector Lo(Net.outputSize()), Hi(Net.outputSize());
    Vector Ya = Net.evaluate(A), Yb = Net.evaluate(B);
    for (int O = 0; O < Net.outputSize(); ++O) {
      double Mid = 0.5 * (Ya[O] + Yb[O]);
      double Span = std::max(1.0, std::fabs(Ya[O] - Yb[O]));
      Lo[O] = Mid - 1.2 * Span;
      Hi[O] = Mid + 1.2 * Span;
    }
    Spec.push_back(SpecPolytope{SegmentPolytope{A, B},
                                boxConstraint(Lo, Hi)});
  }
  return Spec;
}

/// Exact equality of two repair results - status, every Delta bit, and
/// the norms. The check behind every demo's determinism gate.
inline bool bitIdentical(const RepairResult &A, const RepairResult &B) {
  if (A.Status != B.Status || A.Delta.size() != B.Delta.size())
    return false;
  for (size_t I = 0; I < A.Delta.size(); ++I)
    if (A.Delta[I] != B.Delta[I])
      return false;
  return A.DeltaL1 == B.DeltaL1 && A.DeltaLInf == B.DeltaLInf;
}

} // namespace demo
} // namespace prdnn

#endif // PRDNN_EXAMPLES_DEMONETWORKS_H
