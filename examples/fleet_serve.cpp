//===- examples/fleet_serve.cpp - fingerprint-addressed serving --------------===//
//
// The serving tier end to end: two RepairServices - two independent
// registry caches, admission controllers, and engines, as if two
// server processes - share one store directory. A publisher registers
// two networks through service A's registry; clients then name models
// by NetworkFingerprint only. Service A resolves from the cache its
// publish seeded and is driven in-process; service B proves BOTH
// cross-process paths at once: its models come off the shared disk
// (fingerprint-re-verified), and every request reaches it over TCP
// localhost through rpc::RpcClient - submit, await, status, all as
// framed wire messages against the RpcServer wrapping it.
//
// A mixed workload - point repairs across layers, polytope repairs,
// an auto layer sweep, mixed priority classes - is split across both
// services, and every report is compared bit-for-bit against a serial,
// cache-free run of the equivalent RepairRequest: which service served
// a request - and whether a socket sat in the middle - must never
// change the answer.
//
// Then the failure paths, each of which must degrade to a typed reject
// (now carried across the wire) and never a crash or a silently-wrong
// model:
//   - a fingerprint nobody published       -> ServeReject::UnknownModel
//   - an entry whose bytes live under a
//     foreign address (copied file)        -> ServeReject::ModelMismatch
//   - a truncated entry                    -> ServeReject::ModelCorrupt
// and a deterministic AdmissionController walkthrough (saturation,
// per-class quota, release, queueStats).
//
// Exits non-zero if any check fails.
//
//===----------------------------------------------------------------------===//

#include "examples/DemoNetworks.h"

#include "rpc/RpcClient.h"
#include "rpc/RpcServer.h"
#include "serve/RepairService.h"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

using namespace prdnn;
using namespace prdnn::demo;
using namespace prdnn::serve;

int main() {
  namespace fs = std::filesystem;
  const fs::path StoreDir =
      fs::temp_directory_path() /
      ("prdnn-fleet-serve-" +
       std::to_string(
           std::chrono::steady_clock::now().time_since_epoch().count()));
  bool Ok = true;
  auto Check = [&](bool Condition, const char *What) {
    if (!Condition) {
      std::printf("FAILED: %s\n", What);
      Ok = false;
    }
  };

  Rng R(20260808);
  Network Classifier = makeClassifier(R);
  Network Regressor = makeRegressor(R);

  // --- Two serving processes over one directory ------------------------------
  ServiceOptions Options;
  Options.StoreDirectory = StoreDir.string();
  Options.Engine.NumWorkers = 2;
  Options.Admission.MaxInFlight = 8;
  RepairService ServiceA(Options);
  RepairService ServiceB(Options);

  // Service B goes behind a socket: an RpcServer on an ephemeral
  // localhost port, and an RpcClient as the only way this "client
  // side" ever talks to it.
  rpc::RpcServer ServerB(ServiceB, rpc::RpcServerOptions{});
  rpc::RpcError RpcErr = rpc::RpcError::None;
  if (!ServerB.start(&RpcErr)) {
    std::printf("FAILED: RpcServer start: %s\n", toString(RpcErr));
    return 1;
  }
  rpc::RpcClientOptions ClientOptions;
  ClientOptions.Port = ServerB.port();
  rpc::RpcClient ClientB(ClientOptions);
  Check(ClientB.connect() == rpc::RpcError::None, "RpcClient connect");
  std::printf("service B listening on 127.0.0.1:%d\n", ServerB.port());

  // --- Publish: models become content addresses ------------------------------
  RegistryError PubErr = RegistryError::None;
  NetworkFingerprint ClassifierFp =
      ServiceA.registry().publish(Classifier, &PubErr);
  Check(PubErr == RegistryError::None, "classifier publish");
  NetworkFingerprint RegressorFp =
      ServiceA.registry().publish(Regressor, &PubErr);
  Check(PubErr == RegistryError::None, "regressor publish");
  std::printf("published classifier %s\n          regressor  %s\n",
              toHex(ClassifierFp).c_str(), toHex(RegressorFp).c_str());
  Check(ServiceA.registry().list().size() == 2, "registry list");

  // --- The client-side view: requests carry fingerprints, not weights --------
  struct Job {
    ServeRequest Serve;
    RepairRequest Twin; ///< the equivalent carry-the-weights request
  };
  std::vector<Job> Jobs;
  auto AddPoints = [&](int Layer, int Seed, RepairRequest::Priority Class) {
    Rng SpecR(100 + Seed);
    PointSpec Spec = makeFlipSpec(Classifier, SpecR, 24);
    Job J;
    J.Serve.Model = ClassifierFp;
    J.Serve.Spec = Spec;
    J.Serve.LayerIndex = Layer;
    J.Serve.Class = Class;
    J.Twin = RepairRequest::points(RepairRequest::borrow(Classifier), Layer,
                                   std::move(Spec));
    Jobs.push_back(std::move(J));
  };
  AddPoints(0, 1, RepairRequest::Priority::High);
  AddPoints(2, 2, RepairRequest::Priority::Neutral);
  AddPoints(4, 3, RepairRequest::Priority::Low);
  for (int Seed : {4, 5}) {
    Rng SpecR(200 + Seed);
    PolytopeSpec Spec = makeSegmentSpec(Regressor, SpecR, 3);
    Job J;
    J.Serve.Model = RegressorFp;
    J.Serve.Spec = Spec;
    J.Serve.LayerIndex = 2;
    J.Twin = RepairRequest::polytopes(RepairRequest::borrow(Regressor), 2,
                                      std::move(Spec));
    Jobs.push_back(std::move(J));
  }
  {
    Rng SpecR(301);
    PointSpec Spec = makeFlipSpec(Classifier, SpecR, 18);
    Job J;
    J.Serve.Model = ClassifierFp;
    J.Serve.Spec = Spec;
    J.Serve.LayerIndex = kAutoLayer; // minimal-norm layer sweep
    J.Twin.Net = RepairRequest::borrow(Classifier);
    J.Twin.Spec = std::move(Spec);
    J.Twin.LayerIndex = kAutoLayer;
    Jobs.push_back(std::move(J));
  }

  // Serial ground truth: inline, cache-free runs.
  EngineOptions SerialOptions;
  SerialOptions.EnableCache = false;
  RepairEngine SerialEngine(SerialOptions);
  std::vector<RepairReport> Serial;
  for (const Job &J : Jobs)
    Serial.push_back(SerialEngine.run(J.Twin));

  // --- Serve the mix, alternating services -----------------------------------
  std::printf("\nsubmitting %zu fingerprint-addressed jobs: evens "
              "in-process to A, odds over TCP to B...\n",
              Jobs.size());
  std::vector<std::pair<size_t, JobHandle>> LocalHandles; // A, in-process
  std::vector<std::pair<size_t, std::uint64_t>> WireIds;  // B, over the wire
  for (size_t I = 0; I < Jobs.size(); ++I) {
    if (I % 2 == 0) {
      ServeSubmission Submission = ServiceA.submit(Jobs[I].Serve);
      Check(Submission.accepted(), "in-process submission accepted");
      if (Submission.accepted())
        LocalHandles.emplace_back(I, Submission.Handle);
    } else {
      rpc::SubmitReply Reply;
      Check(ClientB.submit(Jobs[I].Serve, Reply) == rpc::RpcError::None &&
                Reply.accepted(),
            "wire submission accepted");
      if (Reply.accepted())
        WireIds.emplace_back(I, Reply.JobId);
    }
  }
  ServiceQueueStats Queue = ServiceA.queueStats();
  std::printf("service A queue: admission depth %d (oldest wait %.1fms), "
              "engine depth %d + %d running\n",
              Queue.Admission.Depth, 1e3 * Queue.Admission.OldestWaitSeconds,
              Queue.Engine.Depth, Queue.Engine.Running);

  bool AllMatch = true;
  size_t Collected = 0;
  auto Compare = [&](size_t I, const RepairReport &Report) {
    AllMatch = AllMatch && bitIdentical(Report.Result, Serial[I].Result) &&
               Report.Status == Serial[I].Status &&
               Report.RepairedLayer == Serial[I].RepairedLayer;
    ++Collected;
  };
  for (auto &[I, Handle] : LocalHandles)
    Compare(I, Handle.report());
  for (auto &[I, JobId] : WireIds) {
    bool Found = false;
    RepairReport Report;
    Check(ClientB.await(JobId, 0, Found, Report) == rpc::RpcError::None &&
              Found,
          "wire await delivers the report");
    if (Found)
      Compare(I, Report);
  }
  Check(AllMatch && Collected == Jobs.size(),
        "served results bit-identical to serial twins");
  std::printf("all %zu reports (%zu over the wire) %s their serial twins\n",
              Collected, WireIds.size(),
              AllMatch ? "bit-identical to" : "DIVERGED from");

  // Service B never saw a publish: its models came off the shared disk,
  // fingerprint-verified, then stuck in its per-process cache.
  RegistryStats StatsB = ServiceB.registry().stats();
  Check(StatsB.DiskLoads >= 1, "service B loaded models from shared disk");
  Check(StatsB.MismatchRejects == 0 && StatsB.CorruptRejects == 0,
        "service B resolutions verified clean");
  std::printf("service B registry: %llu resolves, %llu disk loads, "
              "%.0f%% cache hit rate\n",
              static_cast<unsigned long long>(StatsB.Resolves),
              static_cast<unsigned long long>(StatsB.DiskLoads),
              100.0 * StatsB.cacheHitRate());

  // --- Typed failure paths ---------------------------------------------------
  std::printf("\nfailure paths (each a typed reject carried over the "
              "wire, never a crash):\n");
  ServeRequest Unknown = Jobs[0].Serve;
  Unknown.Model.Digest.Lo ^= 0x1; // nobody published this address
  rpc::SubmitReply UnknownSub;
  Check(ClientB.submit(Unknown, UnknownSub) == rpc::RpcError::None &&
            UnknownSub.Reject == ServeReject::UnknownModel,
        "unknown fingerprint -> UnknownModel");
  std::printf("  unknown fingerprint  -> %s\n", toString(UnknownSub.Reject));

  // An entry whose bytes live under a foreign address: copy the
  // classifier's file to a made-up digest. The decode succeeds, but the
  // recomputed fingerprint can't match the address - rejected, deleted.
  NetworkFingerprint BogusFp = ClassifierFp;
  BogusFp.Digest.Hi ^= 0xdeadbeef;
  fs::copy_file(ServiceB.registry().entryPath(ClassifierFp),
                ServiceB.registry().entryPath(BogusFp));
  ServeRequest Mismatched = Jobs[0].Serve;
  Mismatched.Model = BogusFp;
  rpc::SubmitReply MismatchSub;
  Check(ClientB.submit(Mismatched, MismatchSub) == rpc::RpcError::None &&
            MismatchSub.Reject == ServeReject::ModelMismatch,
        "foreign-address entry -> ModelMismatch");
  Check(!fs::exists(ServiceB.registry().entryPath(BogusFp)),
        "mismatched entry deleted");
  std::printf("  foreign-address copy -> %s (entry deleted)\n",
              toString(MismatchSub.Reject));

  // A truncated entry: corrupt the regressor's file on disk, drop B's
  // in-memory copy so the next resolve must re-read it.
  {
    std::ofstream Truncate(ServiceB.registry().entryPath(RegressorFp),
                           std::ios::binary | std::ios::trunc);
    Truncate << "not a framed network";
  }
  ServiceB.registry().dropCache();
  ServeRequest Corrupted = Jobs[3].Serve;
  rpc::SubmitReply CorruptSub;
  Check(ClientB.submit(Corrupted, CorruptSub) == rpc::RpcError::None &&
            CorruptSub.Reject == ServeReject::ModelCorrupt,
        "truncated entry -> ModelCorrupt");
  std::printf("  truncated entry      -> %s (entry deleted)\n",
              toString(CorruptSub.Reject));
  // Republish heals: the same fingerprint serves again - and the
  // client's retail loop (submit + await + shed-retry) delivers the
  // same bits through the socket.
  ServiceB.registry().publish(Regressor);
  RepairReport HealedReport;
  ServeReject HealedReject = ServeReject::None;
  Check(ClientB.repair(Jobs[3].Serve, HealedReport, HealedReject) ==
                rpc::RpcError::None &&
            HealedReject == ServeReject::None,
        "republish heals the corrupt entry");
  Check(bitIdentical(HealedReport.Result, Serial[3].Result),
        "healed entry still bit-identical");

  // --- Admission control, deterministically ----------------------------------
  std::printf("\nadmission control (MaxInFlight=3, Low quota=1):\n");
  AdmissionOptions AdmitOptions;
  AdmitOptions.MaxInFlight = 3;
  AdmitOptions.ClassQuota[static_cast<int>(RepairRequest::Priority::Low)] = 1;
  AdmissionController Admission(AdmitOptions);
  AdmitReject Why = AdmitReject::None;
  std::uint64_t High = Admission.tryAdmit(RepairRequest::Priority::High);
  std::uint64_t Low = Admission.tryAdmit(RepairRequest::Priority::Low);
  Check(High != 0 && Low != 0, "first two admissions");
  // A free total slot remains, but Low is at its quota.
  Check(Admission.tryAdmit(RepairRequest::Priority::Low, &Why) == 0 &&
            Why == AdmitReject::ClassQuota,
        "second Low -> ClassQuota");
  std::printf("  3rd (Low)     -> %s\n", toString(Why));
  Check(Admission.tryAdmit(RepairRequest::Priority::Neutral) != 0,
        "Neutral takes the last slot");
  Check(Admission.tryAdmit(RepairRequest::Priority::Neutral, &Why) == 0 &&
            Why == AdmitReject::Saturated,
        "fourth admission -> Saturated");
  std::printf("  4th (Neutral) -> %s\n", toString(Why));
  AdmissionSnapshot Snap = Admission.queueStats();
  Check(Snap.Depth == 3 && Snap.SaturatedRejects == 1 &&
            Snap.QuotaRejects == 1,
        "admission snapshot");
  Admission.release(Low);
  Check(Admission.tryAdmit(RepairRequest::Priority::Low) != 0,
        "release frees the Low quota slot");

  // The fleet-health snapshot travels too: Status over the socket.
  ServiceStats FinalB;
  Check(ClientB.status(FinalB) == rpc::RpcError::None,
        "status over the wire");
  std::printf("\nservice B: %llu accepted, %llu rejected (%llu unknown, "
              "%llu mismatch, %llu corrupt)\n",
              static_cast<unsigned long long>(FinalB.Accepted),
              static_cast<unsigned long long>(FinalB.Rejected),
              static_cast<unsigned long long>(FinalB.RejectsByReason[static_cast<int>(
                  ServeReject::UnknownModel)]),
              static_cast<unsigned long long>(FinalB.RejectsByReason[static_cast<int>(
                  ServeReject::ModelMismatch)]),
              static_cast<unsigned long long>(FinalB.RejectsByReason[static_cast<int>(
                  ServeReject::ModelCorrupt)]));

  // Counters are only final once both sides are quiescent: close the
  // client, drain-stop the server (joining its connection threads),
  // then cross-check the socket's byte accounting.
  rpc::RpcClientStats ClientStats = ClientB.stats();
  ClientB.close();
  ServerB.stop(); // drain-then-stop: every ticket released
  rpc::RpcServerStats WireB = ServerB.stats();
  Check(WireB.BytesReceived == ClientStats.BytesSent &&
            WireB.BytesSent == ClientStats.BytesReceived,
        "byte counters agree across the socket");
  std::printf("wire: %llu connections, %.1f KiB sent / %.1f KiB received "
              "by the server\n",
              static_cast<unsigned long long>(WireB.ConnectionsAccepted),
              static_cast<double>(WireB.BytesSent) / 1024.0,
              static_cast<double>(WireB.BytesReceived) / 1024.0);
  Check(ServiceB.stats().Admission.Depth == 0,
        "no admission ticket outlives the server");

  {
    std::error_code Ec;
    fs::remove_all(StoreDir, Ec);
  }
  std::printf("%s\n", Ok ? "fleet_serve: all checks passed"
                         : "fleet_serve: CHECKS FAILED");
  return Ok ? 0 : 1;
}
