//===- tools/prdnn_stats.cpp - telemetry scraper for a repair server ------===//
//
// The retail consumer of the RPC Metrics exchange: connects to a
// running RpcServer, requests one coherent snapshot of the service's
// whole metrics registry (engine jobs, LP kernels, cache/store,
// admission, model registry, and the RPC tier itself), and prints it
// as Prometheus text exposition - the same bytes a scrape endpoint
// would serve. With --watch it polls on an interval, emitting a fresh
// page each round, so `prdnn_stats --port N --watch 2` is a live
// terminal dashboard over any fleet member.
//
//   prdnn_stats --port 7411                 one snapshot, print, exit
//   prdnn_stats --port 7411 --watch 2       poll every 2s until killed
//   prdnn_stats --port 7411 --watch 1 --count 10   ten rounds, then exit
//
// A server running without telemetry answers an empty snapshot; the
// tool says so and exits 0 (scraping is uniform across the fleet).
// Connection or wire failures exit non-zero with the typed RpcError.
//
//===----------------------------------------------------------------------===//

#include "rpc/RpcClient.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

using namespace prdnn;
using namespace prdnn::rpc;

namespace {

struct StatsConfig {
  std::string Host = "127.0.0.1";
  int Port = 0;
  double WatchSeconds = 0.0; ///< 0 = one snapshot and exit
  long Count = -1;           ///< watch rounds; -1 = until killed
};

void usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s --port PORT [--host HOST] [--watch SECONDS] "
               "[--count N]\n"
               "  Scrapes a prdnn RpcServer's Metrics exchange and prints\n"
               "  Prometheus text exposition to stdout.\n",
               Argv0);
}

bool parseArgs(int Argc, char **Argv, StatsConfig &Config) {
  for (int I = 1; I < Argc; ++I) {
    auto Next = [&](const char *Flag) -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "%s: %s needs a value\n", Argv[0], Flag);
        return nullptr;
      }
      return Argv[++I];
    };
    if (std::strcmp(Argv[I], "--host") == 0) {
      const char *V = Next("--host");
      if (!V)
        return false;
      Config.Host = V;
    } else if (std::strcmp(Argv[I], "--port") == 0) {
      const char *V = Next("--port");
      if (!V)
        return false;
      Config.Port = std::atoi(V);
    } else if (std::strcmp(Argv[I], "--watch") == 0) {
      const char *V = Next("--watch");
      if (!V)
        return false;
      Config.WatchSeconds = std::atof(V);
    } else if (std::strcmp(Argv[I], "--count") == 0) {
      const char *V = Next("--count");
      if (!V)
        return false;
      Config.Count = std::atol(V);
    } else if (std::strcmp(Argv[I], "--help") == 0 ||
               std::strcmp(Argv[I], "-h") == 0) {
      usage(Argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "%s: unknown argument %s\n", Argv[0], Argv[I]);
      return false;
    }
  }
  if (Config.Port <= 0) {
    usage(Argv[0]);
    return false;
  }
  return true;
}

/// One scrape: connect (or reuse the connection), fetch, print.
/// Returns false on a wire failure after printing the typed error.
bool scrapeOnce(RpcClient &Client) {
  RpcError Err = Client.connect();
  if (Err != RpcError::None) {
    std::fprintf(stderr, "prdnn_stats: connect failed: %s\n", toString(Err));
    return false;
  }
  obs::MetricsSnapshot Snapshot;
  Err = Client.metrics(Snapshot);
  if (Err != RpcError::None) {
    std::fprintf(stderr, "prdnn_stats: metrics exchange failed: %s\n",
                 toString(Err));
    return false;
  }
  if (Snapshot.Samples.empty()) {
    std::printf("# server runs without telemetry (empty snapshot)\n");
    return true;
  }
  std::string Page = Snapshot.renderPrometheus();
  std::fwrite(Page.data(), 1, Page.size(), stdout);
  std::fflush(stdout);
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  StatsConfig Config;
  if (!parseArgs(Argc, Argv, Config))
    return 2;

  RpcClientOptions Options;
  Options.Host = Config.Host;
  Options.Port = Config.Port;
  RpcClient Client(Options);

  if (Config.WatchSeconds <= 0.0)
    return scrapeOnce(Client) ? 0 : 1;

  for (long Round = 0; Config.Count < 0 || Round < Config.Count; ++Round) {
    if (Round > 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(Config.WatchSeconds));
      std::printf("\n");
    }
    if (!scrapeOnce(Client))
      return 1;
  }
  return 0;
}
