//===- bench/bench_serve_fleet.cpp - multi-process serving bench -------------===//
//
// The serving tier under fleet load: the parent re-execs itself into
// TWO child processes ("servers"), each hosting one RepairService, both
// pointed at one shared store directory. Every child race-publishes the
// same model set (publication is content-addressed and atomic, so the
// race is benign), then replays a stream of mixed-priority clients:
// each client submits a fingerprint-addressed request drawn from a
// fixed template pool, retries on typed admission rejects, waits for
// its report, and compares it bit-for-bit against the template's
// serial, cache-free twin - computed independently inside each child.
// Any divergence fails that child, and the parent propagates the
// failure: which process served a request must never change its bits.
//
// Child 0 additionally probes the registry's verification: a model file
// copied under a foreign digest must resolve to a typed
// FingerprintMismatch (and never be served), even while clients hammer
// the same directory.
//
// The parent merges the children's stats and emits
// BENCH_serve_fleet.json: jobs/sec, p50/p95/p99 client latency,
// admission rejects, and registry / engine-cache / store hit rates, per
// child and aggregated. --smoke shrinks the replay for CI. Exits
// non-zero if any child diverged, any probe failed, or any client gave
// up.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "examples/DemoNetworks.h"
#include "serve/RepairService.h"
#include "support/Timer.h"

#include <sys/wait.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace prdnn;
using namespace prdnn::bench;
using namespace prdnn::demo;
using namespace prdnn::serve;

namespace {

namespace fs = std::filesystem;

struct FleetConfig {
  int Processes = 2;
  /// More clients than admission slots, so saturation (and its typed
  /// reject + retry path) actually happens under load.
  int ClientThreads = 8;
  int JobsPerProcess = 1500;
  int MaxInFlight = 4;
  int Workers = 2;
};

FleetConfig smokeConfig() {
  FleetConfig C;
  C.ClientThreads = 4;
  C.JobsPerProcess = 30;
  C.MaxInFlight = 2;
  return C;
}

/// The shared model set and request templates every process rebuilds
/// identically (fixed seeds): two classifiers and a regressor, with a
/// mixed-priority pool of point, polytope, and sweep requests.
struct Workload {
  std::vector<std::shared_ptr<Network>> Models;
  struct Template {
    int Model = 0; ///< index into Models
    ServeRequest Serve;
    RepairRequest Twin;
  };
  std::vector<Template> Templates;
};

Workload makeWorkload() {
  Workload W;
  Rng R(771100);
  W.Models.push_back(std::make_shared<Network>(makeClassifier(R)));
  W.Models.push_back(std::make_shared<Network>(makeClassifier(R)));
  W.Models.push_back(std::make_shared<Network>(makeRegressor(R)));

  const RepairRequest::Priority Classes[] = {
      RepairRequest::Priority::High, RepairRequest::Priority::Neutral,
      RepairRequest::Priority::Neutral, RepairRequest::Priority::Low};
  int Seed = 0;
  auto AddPoints = [&](int Model, int Layer) {
    Rng SpecR(5000 + Seed);
    PointSpec Spec = makeFlipSpec(*W.Models[Model], SpecR, 12);
    Workload::Template T;
    T.Model = Model;
    T.Serve.Spec = Spec;
    T.Serve.LayerIndex = Layer;
    T.Serve.Class = Classes[Seed % 4];
    T.Twin = RepairRequest::points(W.Models[Model], Layer, std::move(Spec));
    ++Seed;
    W.Templates.push_back(std::move(T));
  };
  for (int Model : {0, 1})
    for (int Layer : {0, 2, 4})
      AddPoints(Model, Layer);
  for (int I = 0; I < 2; ++I) {
    Rng SpecR(6000 + I);
    PolytopeSpec Spec = makeSegmentSpec(*W.Models[2], SpecR, 2);
    Workload::Template T;
    T.Model = 2;
    T.Serve.Spec = Spec;
    T.Serve.LayerIndex = 2;
    T.Serve.Class = Classes[I % 4];
    T.Twin = RepairRequest::polytopes(W.Models[2], 2, std::move(Spec));
    W.Templates.push_back(std::move(T));
  }
  {
    Rng SpecR(7000);
    PointSpec Spec = makeFlipSpec(*W.Models[0], SpecR, 10);
    Workload::Template T;
    T.Model = 0;
    T.Serve.Spec = Spec;
    T.Serve.LayerIndex = kAutoLayer;
    T.Twin.Net = W.Models[0];
    T.Twin.Spec = std::move(Spec);
    T.Twin.LayerIndex = kAutoLayer;
    W.Templates.push_back(std::move(T));
  }
  return W;
}

// --- Child: one serving process ---------------------------------------------

int childMain(int Role, const std::string &Dir,
              const std::string &StatsFile, const FleetConfig &Config) {
  Workload W = makeWorkload();

  ServiceOptions Options;
  Options.StoreDirectory = Dir;
  Options.Engine.NumWorkers = Config.Workers;
  Options.Admission.MaxInFlight = Config.MaxInFlight;
  RepairService Service(Options);

  // Every process publishes every model: the registry's atomic,
  // idempotent publication makes the cross-process race benign, and the
  // loser's PublishSkips counter proves the race actually happened.
  std::vector<NetworkFingerprint> Fps;
  for (const auto &Model : W.Models) {
    RegistryError Error = RegistryError::None;
    Fps.push_back(Service.registry().publish(*Model, &Error));
    if (Error != RegistryError::None) {
      std::fprintf(stderr, "[child %d] publish failed: %s\n", Role,
                   toString(Error));
      return 1;
    }
  }
  for (size_t T = 0; T < W.Templates.size(); ++T)
    W.Templates[T].Serve.Model = Fps[static_cast<size_t>(
        W.Templates[T].Model)];

  // Serial ground truth, computed in-process and cache-free.
  std::vector<RepairReport> Twins;
  {
    EngineOptions SerialOptions;
    SerialOptions.EnableCache = false;
    RepairEngine SerialEngine(SerialOptions);
    for (const auto &T : W.Templates)
      Twins.push_back(SerialEngine.run(T.Twin));
  }

  // Start the replay cold on the registry side: publish seeded this
  // process's cache, so drop it - the first resolve of each model is
  // then a verified disk load (the cross-process path), and the rest
  // hit the per-process cache.
  Service.registry().dropCache();

  // The client replay: ClientThreads concurrent clients drain a shared
  // stream of JobsPerProcess requests round-robined over the templates.
  std::atomic<int> NextJob{0};
  std::atomic<int> Divergences{0};
  std::atomic<int> GiveUps{0};
  std::atomic<std::uint64_t> RetriedRejects{0};
  // Thread-sharded: every client thread observes into the one
  // histogram, and the snapshot below is the exact per-bucket merge.
  obs::Histogram LatencyHist(obs::defaultLatencyBuckets());
  WallTimer ReplayTimer;
  std::vector<std::thread> Clients;
  for (int C = 0; C < Config.ClientThreads; ++C) {
    Clients.emplace_back([&] {
      for (;;) {
        int Job = NextJob.fetch_add(1, std::memory_order_relaxed);
        if (Job >= Config.JobsPerProcess)
          return;
        const auto &T =
            W.Templates[static_cast<size_t>(Job) % W.Templates.size()];
        WallTimer JobTimer;
        ServeSubmission Submission;
        int Attempts = 0;
        for (;;) {
          Submission = Service.submit(T.Serve);
          if (Submission.accepted() ||
              (Submission.Reject != ServeReject::Saturated &&
               Submission.Reject != ServeReject::ClassQuota))
            break;
          // Saturation is the designed backpressure: retry after a
          // beat, like a client bouncing to a less-loaded server.
          RetriedRejects.fetch_add(1, std::memory_order_relaxed);
          if (++Attempts > 100000) {
            GiveUps.fetch_add(1, std::memory_order_relaxed);
            return;
          }
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        if (!Submission.accepted()) {
          // Unknown/corrupt/mismatch mid-replay would be a bug.
          Divergences.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        const RepairReport &Report = Submission.Handle.report();
        LatencyHist.observe(JobTimer.seconds());
        const RepairReport &Twin =
            Twins[static_cast<size_t>(Job) % W.Templates.size()];
        if (!bitIdentical(Report.Result, Twin.Result) ||
            Report.Status != Twin.Status ||
            Report.RepairedLayer != Twin.RepairedLayer)
          Divergences.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Child 0's verification probe, run while the clients hammer the
  // directory: bytes under a foreign address must never be served.
  bool ProbeOk = true;
  if (Role == 0) {
    NetworkFingerprint Bogus = Fps[0];
    Bogus.Digest.Lo ^= 0x5a5a5a5aull;
    std::error_code Ec;
    fs::copy_file(Service.registry().entryPath(Fps[0]),
                  Service.registry().entryPath(Bogus),
                  fs::copy_options::overwrite_existing, Ec);
    if (!Ec) {
      RegistryError Error = RegistryError::None;
      ProbeOk = Service.registry().resolve(Bogus, &Error) == nullptr &&
                Error == RegistryError::FingerprintMismatch;
    }
  }

  for (std::thread &Client : Clients)
    Client.join();
  double ReplaySeconds = ReplayTimer.seconds();
  Service.flush(); // leave the store fully published for the other child

  const obs::HistogramSnapshot Latency = LatencyHist.snapshot();
  const auto Jobs = static_cast<long long>(Latency.count());

  RegistryStats Registry = Service.registry().stats();
  CacheStats Cache = Service.engine().cacheStats();
  persist::StoreStats Store = Service.engine().storeStats();
  AdmissionSnapshot Admission = Service.queueStats().Admission;
  ServiceStats Stats = Service.stats();

  std::ofstream Os(StatsFile);
  if (!Os) {
    std::fprintf(stderr, "[child %d] cannot write %s\n", Role,
                 StatsFile.c_str());
    return 1;
  }
  bool ChildOk = Divergences.load() == 0 && GiveUps.load() == 0 && ProbeOk &&
                 Jobs == Config.JobsPerProcess;
  Os << "ok " << (ChildOk ? 1 : 0) << "\n"
     << "jobs " << Jobs << "\n"
     << "replay_seconds " << ReplaySeconds << "\n"
     << "accepted " << Stats.Accepted << "\n"
     << "saturated_rejects " << Admission.SaturatedRejects << "\n"
     << "quota_rejects " << Admission.QuotaRejects << "\n"
     << "publish_skips " << Registry.PublishSkips << "\n"
     << "registry_resolves " << Registry.Resolves << "\n"
     << "registry_cache_hits " << Registry.CacheHits << "\n"
     << "registry_disk_loads " << Registry.DiskLoads << "\n"
     << "cache_hits " << Cache.Hits << "\n"
     << "cache_misses " << Cache.Misses << "\n"
     << "store_hits " << Store.Hits << "\n"
     << "store_writes " << Store.Writes << "\n";
  writeLatencyHistogram(Os, Latency);
  Os.close();

  if (!ChildOk)
    std::fprintf(stderr,
                 "[child %d] FAILED: %d divergences, %d give-ups, probe %s, "
                 "%lld/%d jobs\n",
                 Role, Divergences.load(), GiveUps.load(),
                 ProbeOk ? "ok" : "FAILED", Jobs,
                 Config.JobsPerProcess);
  return ChildOk ? 0 : 1;
}

// --- Parent: spawn, merge, report -------------------------------------------

struct ChildStats {
  bool Ok = false;
  long long Jobs = 0;
  double ReplaySeconds = 0.0;
  long long SaturatedRejects = 0, QuotaRejects = 0;
  long long PublishSkips = 0;
  long long RegistryResolves = 0, RegistryCacheHits = 0,
            RegistryDiskLoads = 0;
  long long CacheHits = 0, CacheMisses = 0;
  long long StoreHits = 0, StoreWrites = 0;
  /// Bucket counts as read off the stats file; finalized into
  /// LatencyHist once the file is fully parsed.
  std::vector<std::uint64_t> LatencyCounts;
  double LatencySum = 0.0;
  obs::HistogramSnapshot LatencyHist;
};

bool readChildStats(const std::string &File, ChildStats &Stats) {
  std::ifstream Is(File);
  if (!Is)
    return false;
  std::string Key;
  while (Is >> Key) {
    if (Key == "ok") {
      int V;
      Is >> V;
      Stats.Ok = V == 1;
    } else if (Key == "jobs")
      Is >> Stats.Jobs;
    else if (Key == "replay_seconds")
      Is >> Stats.ReplaySeconds;
    else if (Key == "saturated_rejects")
      Is >> Stats.SaturatedRejects;
    else if (Key == "quota_rejects")
      Is >> Stats.QuotaRejects;
    else if (Key == "publish_skips")
      Is >> Stats.PublishSkips;
    else if (Key == "registry_resolves")
      Is >> Stats.RegistryResolves;
    else if (Key == "registry_cache_hits")
      Is >> Stats.RegistryCacheHits;
    else if (Key == "registry_disk_loads")
      Is >> Stats.RegistryDiskLoads;
    else if (Key == "cache_hits")
      Is >> Stats.CacheHits;
    else if (Key == "cache_misses")
      Is >> Stats.CacheMisses;
    else if (Key == "store_hits")
      Is >> Stats.StoreHits;
    else if (Key == "store_writes")
      Is >> Stats.StoreWrites;
    else if (Key == "lat_bucket") {
      std::uint64_t Count;
      Is >> Count;
      Stats.LatencyCounts.push_back(Count);
    } else if (Key == "lat_sum")
      Is >> Stats.LatencySum;
    else {
      std::string Skip;
      Is >> Skip;
    }
  }
  Stats.LatencyHist =
      latencySnapshotFromCounts(Stats.LatencyCounts, Stats.LatencySum);
  return true;
}

int parentMain(const std::string &Argv0, bool Smoke) {
  const FleetConfig Config = Smoke ? smokeConfig() : FleetConfig();
  const fs::path StoreDir =
      fs::temp_directory_path() /
      ("prdnn-serve-fleet-" +
       std::to_string(
           std::chrono::steady_clock::now().time_since_epoch().count()));
  fs::create_directories(StoreDir);

  std::printf("=== Fleet serving: %d processes x %d clients x %d jobs "
              "(%s) ===\n",
              Config.Processes, Config.ClientThreads, Config.JobsPerProcess,
              Smoke ? "smoke" : "full");
  std::printf("shared store: %s\n\n", StoreDir.string().c_str());
  std::fflush(stdout);

  std::vector<int> ExitCodes(static_cast<size_t>(Config.Processes), 1);
  std::vector<std::string> StatsFiles;
  for (int P = 0; P < Config.Processes; ++P)
    StatsFiles.push_back((StoreDir / ("child-" + std::to_string(P) +
                                      ".stats")).string());
  WallTimer FleetTimer;
  std::vector<std::thread> Spawners;
  for (int P = 0; P < Config.Processes; ++P) {
    Spawners.emplace_back([&, P] {
      std::ostringstream Command;
      Command << '"' << Argv0 << "\" --child " << P << " --dir \""
              << StoreDir.string() << "\" --stats \"" << StatsFiles[static_cast<size_t>(P)]
              << "\" --clients " << Config.ClientThreads << " --jobs "
              << Config.JobsPerProcess << " --inflight "
              << Config.MaxInFlight << " --workers " << Config.Workers;
      int Status = std::system(Command.str().c_str());
      ExitCodes[static_cast<size_t>(P)] =
          Status == -1 ? 127
                       : (WIFEXITED(Status) ? WEXITSTATUS(Status) : 126);
    });
  }
  for (std::thread &Spawner : Spawners)
    Spawner.join();
  double FleetSeconds = FleetTimer.seconds();

  bool Ok = true;
  BenchJson Json("serve_fleet");
  ChildStats Total;
  Total.Ok = true;
  for (int P = 0; P < Config.Processes; ++P) {
    ChildStats Stats;
    bool Read = readChildStats(StatsFiles[static_cast<size_t>(P)], Stats);
    Ok = Ok && Read && Stats.Ok && ExitCodes[static_cast<size_t>(P)] == 0;
    const obs::HistogramSnapshot &Latency = Stats.LatencyHist;
    double JobsPerSec = Stats.ReplaySeconds > 0
                            ? static_cast<double>(Stats.Jobs) /
                                  Stats.ReplaySeconds
                            : 0.0;
    std::printf("child %d: exit %d, %lld jobs, %.1f jobs/s, p50 %.1fms "
                "p99 %.1fms, %lld saturated rejects, registry %lld "
                "cache hits / %lld disk loads, %lld L2 store hits\n",
                P, ExitCodes[static_cast<size_t>(P)], Stats.Jobs, JobsPerSec,
                1e3 * Latency.quantile(0.50), 1e3 * Latency.quantile(0.99),
                Stats.SaturatedRejects, Stats.RegistryCacheHits,
                Stats.RegistryDiskLoads, Stats.StoreHits);

    Json.beginRecord();
    Json.add("scope", "child" + std::to_string(P));
    Json.add("exit_code", ExitCodes[static_cast<size_t>(P)]);
    Json.add("jobs", static_cast<int>(Stats.Jobs));
    Json.add("replay_seconds", Stats.ReplaySeconds);
    Json.add("jobs_per_sec", JobsPerSec);
    addLatencyRecord(Json, Latency);
    Json.add("saturated_rejects", static_cast<int>(Stats.SaturatedRejects));
    Json.add("quota_rejects", static_cast<int>(Stats.QuotaRejects));
    Json.add("publish_skips", static_cast<int>(Stats.PublishSkips));
    Json.add("registry_cache_hit_rate",
             Stats.RegistryResolves > 0
                 ? static_cast<double>(Stats.RegistryCacheHits) /
                       static_cast<double>(Stats.RegistryResolves)
                 : 0.0);
    Json.add("registry_disk_loads", static_cast<int>(Stats.RegistryDiskLoads));
    Json.add("engine_cache_hit_rate",
             Stats.CacheHits + Stats.CacheMisses > 0
                 ? static_cast<double>(Stats.CacheHits) /
                       static_cast<double>(Stats.CacheHits +
                                           Stats.CacheMisses)
                 : 0.0);
    Json.add("store_hits", static_cast<int>(Stats.StoreHits));
    Json.add("store_writes", static_cast<int>(Stats.StoreWrites));

    Total.Jobs += Stats.Jobs;
    Total.SaturatedRejects += Stats.SaturatedRejects;
    Total.QuotaRejects += Stats.QuotaRejects;
    Total.PublishSkips += Stats.PublishSkips;
    Total.RegistryResolves += Stats.RegistryResolves;
    Total.RegistryCacheHits += Stats.RegistryCacheHits;
    Total.RegistryDiskLoads += Stats.RegistryDiskLoads;
    Total.CacheHits += Stats.CacheHits;
    Total.CacheMisses += Stats.CacheMisses;
    Total.StoreHits += Stats.StoreHits;
    Total.StoreWrites += Stats.StoreWrites;
    // Exact cross-process merge: bucket counts add, no re-sampling.
    Total.LatencyHist.merge(Stats.LatencyHist);
  }

  // The publication race is real: with both children publishing the
  // same three models into one directory, somebody loses the rename
  // race or finds the file already there.
  if (Total.PublishSkips < 1) {
    std::printf("NOTE: no publish race observed (publish_skips = 0)\n");
    // Not a failure: the children may simply not have overlapped.
  }

  const obs::HistogramSnapshot &FleetLatency = Total.LatencyHist;
  double FleetJobsPerSec =
      FleetSeconds > 0 ? static_cast<double>(Total.Jobs) / FleetSeconds
                       : 0.0;
  Json.beginRecord();
  Json.add("scope", "fleet");
  Json.add("processes", Config.Processes);
  Json.add("clients_per_process", Config.ClientThreads);
  Json.add("jobs", static_cast<int>(Total.Jobs));
  Json.add("wall_seconds", FleetSeconds);
  Json.add("jobs_per_sec", FleetJobsPerSec);
  addLatencyRecord(Json, FleetLatency);
  Json.add("saturated_rejects", static_cast<int>(Total.SaturatedRejects));
  Json.add("quota_rejects", static_cast<int>(Total.QuotaRejects));
  Json.add("publish_skips", static_cast<int>(Total.PublishSkips));
  Json.add("registry_cache_hit_rate",
           Total.RegistryResolves > 0
               ? static_cast<double>(Total.RegistryCacheHits) /
                     static_cast<double>(Total.RegistryResolves)
               : 0.0);
  Json.add("registry_disk_loads", static_cast<int>(Total.RegistryDiskLoads));
  Json.add("engine_cache_hit_rate",
           Total.CacheHits + Total.CacheMisses > 0
               ? static_cast<double>(Total.CacheHits) /
                     static_cast<double>(Total.CacheHits + Total.CacheMisses)
               : 0.0);
  Json.add("store_hits", static_cast<int>(Total.StoreHits));
  Json.add("smoke", Smoke ? 1 : 0);

  std::printf("\nfleet: %lld jobs in %.1fs (%.1f jobs/s), p50 %.1fms "
              "p95 %.1fms p99 %.1fms\n",
              Total.Jobs, FleetSeconds, FleetJobsPerSec,
              1e3 * FleetLatency.quantile(0.50),
              1e3 * FleetLatency.quantile(0.95),
              1e3 * FleetLatency.quantile(0.99));
  std::string JsonFile = Json.write();
  if (!JsonFile.empty())
    std::printf("wrote %s\n", JsonFile.c_str());

  {
    std::error_code Ec;
    fs::remove_all(StoreDir, Ec);
  }
  std::printf("%s\n", Ok ? "bench_serve_fleet: all children bit-identical"
                         : "bench_serve_fleet: FAILED");
  return Ok ? 0 : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  std::setvbuf(stdout, nullptr, _IOFBF, 1 << 16);
  bool Smoke = false;
  int ChildRole = -1;
  std::string Dir, StatsFile;
  FleetConfig Config;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&] { return I + 1 < Argc ? Argv[++I] : ""; };
    if (Arg == "--smoke")
      Smoke = true;
    else if (Arg == "--child")
      ChildRole = std::atoi(Next());
    else if (Arg == "--dir")
      Dir = Next();
    else if (Arg == "--stats")
      StatsFile = Next();
    else if (Arg == "--clients")
      Config.ClientThreads = std::atoi(Next());
    else if (Arg == "--jobs")
      Config.JobsPerProcess = std::atoi(Next());
    else if (Arg == "--inflight")
      Config.MaxInFlight = std::atoi(Next());
    else if (Arg == "--workers")
      Config.Workers = std::atoi(Next());
  }
  if (ChildRole >= 0)
    return childMain(ChildRole, Dir, StatsFile, Config);
  return parentMain(Argv[0], Smoke);
}
