//===- bench/bench_engine_jobs.cpp - engine job throughput -------------------===//
//
// Throughput and latency of the RepairEngine's async job path: a fixed
// pool of point-repair jobs is pushed through one engine at 1, 4, and 8
// concurrent workers and compared against the serial baseline (the
// same requests as one-shot repairPoints calls, back to back).
//
// Emits BENCH_engine_jobs.json: jobs/sec and p50/p95 job latency
// (submit -> report, i.e. queue wait + execution) per concurrency
// level, the speedup over serial, and the max Delta divergence from
// the serial results (must be exactly 0: the engine's determinism
// contract - the bench exits non-zero on any divergence). Jobs/sec
// gains come from overlapping the single-threaded phases of different
// jobs (above all the simplex solves), so the speedup tracks the
// machine's core count; the JSON records both.
//
// --trace runs the engine legs with an obs::Telemetry sink attached
// and writes TRACE_engine_jobs.json (Chrome trace-event JSON; open in
// Perfetto) plus METRICS_engine_jobs.prom (Prometheus text exposition)
// next to the BENCH json. Because the serial baseline runs without
// telemetry, the max-divergence check doubles as the inertness proof:
// tracing on vs. off must not move a single bit. --smoke shrinks the
// job pool for CI.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "api/RepairEngine.h"
#include "nn/ActivationLayers.h"
#include "nn/LinearLayers.h"
#include "support/Parallel.h"
#include "support/Table.h"
#include "support/Timer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace prdnn;
using namespace prdnn::bench;

namespace {

Vector randomVector(Rng &R, int Size, double Scale = 1.0) {
  Vector V(Size);
  for (int I = 0; I < Size; ++I)
    V[I] = Scale * R.normal();
  return V;
}

Matrix randomMatrix(Rng &R, int Rows, int Cols, double Scale = 1.0) {
  Matrix M(Rows, Cols);
  for (int I = 0; I < Rows; ++I)
    for (int J = 0; J < Cols; ++J)
      M(I, J) = Scale * R.normal();
  return M;
}

/// 12 -> 32 -> 32 -> 6 ReLU classifier (parameterized layers 0, 2, 4).
Network makeClassifier(Rng &R) {
  Network Net;
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      randomMatrix(R, 32, 12, 0.8), randomVector(R, 32, 0.3)));
  Net.addLayer(std::make_unique<ReLULayer>(32));
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      randomMatrix(R, 32, 32, 0.7), randomVector(R, 32, 0.3)));
  Net.addLayer(std::make_unique<ReLULayer>(32));
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      randomMatrix(R, 6, 32, 0.8), randomVector(R, 6, 0.3)));
  return Net;
}

/// Every third point flips to its runner-up class; the rest anchor.
PointSpec makeFlipSpec(const Network &Net, Rng &R, int Count) {
  PointSpec Spec;
  for (int I = 0; I < Count; ++I) {
    Vector X = randomVector(R, Net.inputSize());
    Vector Y = Net.evaluate(X);
    int Top = Y.argmax();
    int Target = Top;
    if (I % 3 == 0) {
      double Best = -1e300;
      for (int C = 0; C < Y.size(); ++C)
        if (C != Top && Y[C] > Best) {
          Best = Y[C];
          Target = C;
        }
    }
    Spec.push_back({std::move(X),
                    classificationConstraint(Net.outputSize(), Target, 1e-3),
                    std::nullopt});
  }
  return Spec;
}

double maxDeltaDiff(const RepairResult &A, const RepairResult &B) {
  if (A.Delta.size() != B.Delta.size())
    return 1e300;
  double Max = 0.0;
  for (size_t I = 0; I < A.Delta.size(); ++I)
    Max = std::max(Max, std::fabs(A.Delta[I] - B.Delta[I]));
  return Max;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Smoke = false;
  bool Trace = false;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--smoke")
      Smoke = true;
    else if (Arg == "--trace")
      Trace = true;
    else {
      std::fprintf(stderr, "usage: %s [--smoke] [--trace]\n", Argv[0]);
      return 2;
    }
  }
  const int NumJobs = Smoke ? 6 : 16;
  const int PointsPerJob = Smoke ? 24 : 60;

  Rng R(67001);
  auto Net = std::make_shared<Network>(makeClassifier(R));
  std::printf("=== Engine job throughput: %d point-repair jobs "
              "(%d points each) ===\n",
              NumJobs, PointsPerJob);
  std::printf("network: %d params; pool threads: %d; hardware "
              "concurrency: %u\n\n",
              Net->totalParams(), globalThreadCount(),
              std::thread::hardware_concurrency());

  const int Layers[] = {0, 2, 4};
  std::vector<RepairRequest> Requests;
  for (int J = 0; J < NumJobs; ++J) {
    Rng SpecR(9000 + J);
    Requests.push_back(RepairRequest::points(
        Net, Layers[J % 3], makeFlipSpec(*Net, SpecR, PointsPerJob)));
  }

  // --- Serial baseline: one-shot wrapper calls, back to back ----------------
  std::vector<RepairResult> Serial(NumJobs);
  std::vector<double> SerialLatency(NumJobs);
  WallTimer SerialTimer;
  for (int J = 0; J < NumJobs; ++J) {
    WallTimer JobTimer;
    Serial[static_cast<size_t>(J)] =
        repairPoints(*Net, Requests[static_cast<size_t>(J)].LayerIndex,
                     std::get<PointSpec>(
                         Requests[static_cast<size_t>(J)].Spec));
    SerialLatency[static_cast<size_t>(J)] = JobTimer.seconds();
  }
  double SerialWall = SerialTimer.seconds();
  double SerialJobsPerSec = NumJobs / SerialWall;
  int SerialSuccesses = 0;
  for (const RepairResult &Result : Serial)
    SerialSuccesses += Result.Status == RepairStatus::Success;

  BenchJson Json("engine_jobs");
  Json.beginRecord();
  Json.add("mode", "serial");
  Json.add("concurrency", 1);
  Json.add("jobs", NumJobs);
  Json.add("successes", SerialSuccesses);
  Json.add("wall_seconds", SerialWall);
  Json.add("jobs_per_sec", SerialJobsPerSec);
  Json.add("p50_latency_seconds", percentile(SerialLatency, 0.50));
  Json.add("p95_latency_seconds", percentile(SerialLatency, 0.95));
  Json.add("speedup_vs_serial", 1.0);
  Json.add("max_delta_diff_vs_serial", 0.0);
  Json.add("pool_threads", globalThreadCount());
  Json.add("hardware_concurrency",
           static_cast<int>(std::thread::hardware_concurrency()));

  TablePrinter Table({"mode", "workers", "wall(s)", "jobs/s", "p50(ms)",
                      "p95(ms)", "speedup", "max |dDelta|"});
  Table.addRow({"serial", "1", formatDouble(SerialWall, 3),
                formatDouble(SerialJobsPerSec, 2),
                formatDouble(1e3 * percentile(SerialLatency, 0.50), 1),
                formatDouble(1e3 * percentile(SerialLatency, 0.95), 1),
                "1.00", "0"});

  // --- Engine at 1 / 4 / 8 concurrent workers -------------------------------
  // One telemetry sink shared by every engine leg (when --trace): the
  // trace ring accumulates all legs' spans, and the exposition page at
  // the end is the sum over them - exactly what a long-lived serving
  // process would show a scraper.
  std::shared_ptr<obs::Telemetry> Telemetry =
      Trace ? std::make_shared<obs::Telemetry>() : nullptr;
  double MaxDiffOverall = 0.0;
  for (int Workers : {1, 4, 8}) {
    EngineOptions Options;
    Options.NumWorkers = Workers;
    Options.QueueCapacity = NumJobs;
    Options.Telemetry = Telemetry;
    RepairEngine Engine(Options);

    std::vector<JobHandle> Handles;
    Handles.reserve(static_cast<size_t>(NumJobs));
    WallTimer EngineTimer;
    for (const RepairRequest &Request : Requests)
      Handles.push_back(Engine.submit(Request));
    for (JobHandle &Handle : Handles)
      Handle.wait();
    double EngineWall = EngineTimer.seconds();

    std::vector<double> Latency;
    double MaxDiff = 0.0;
    int Successes = 0;
    for (int J = 0; J < NumJobs; ++J) {
      const RepairReport &Report =
          Handles[static_cast<size_t>(J)].report();
      // Service latency: queue wait + execution.
      Latency.push_back(Report.QueueSeconds + Report.TotalSeconds);
      MaxDiff = std::max(
          MaxDiff, maxDeltaDiff(Report.Result, Serial[static_cast<size_t>(J)]));
      Successes += Report.Status == RepairStatus::Success;
    }
    double JobsPerSec = NumJobs / EngineWall;
    double Speedup = JobsPerSec / SerialJobsPerSec;

    Json.beginRecord();
    Json.add("mode", "engine");
    Json.add("concurrency", Workers);
    Json.add("jobs", NumJobs);
    Json.add("successes", Successes);
    Json.add("wall_seconds", EngineWall);
    Json.add("jobs_per_sec", JobsPerSec);
    Json.add("p50_latency_seconds", percentile(Latency, 0.50));
    Json.add("p95_latency_seconds", percentile(Latency, 0.95));
    Json.add("speedup_vs_serial", Speedup);
    Json.add("max_delta_diff_vs_serial", MaxDiff);
    Json.add("pool_threads", globalThreadCount());
    Json.add("hardware_concurrency",
             static_cast<int>(std::thread::hardware_concurrency()));

    Table.addRow({"engine", std::to_string(Workers),
                  formatDouble(EngineWall, 3), formatDouble(JobsPerSec, 2),
                  formatDouble(1e3 * percentile(Latency, 0.50), 1),
                  formatDouble(1e3 * percentile(Latency, 0.95), 1),
                  formatDouble(Speedup, 2),
                  MaxDiff == 0.0 ? "0" : formatDouble(MaxDiff, 12)});
    MaxDiffOverall = std::max(MaxDiffOverall, MaxDiff);
  }

  Table.print(std::cout);
  std::string JsonFile = Json.write();
  if (!JsonFile.empty())
    std::printf("\nwrote %s\n", JsonFile.c_str());

  if (Telemetry) {
    if (Telemetry->Trace.writeChromeTrace("TRACE_engine_jobs.json"))
      std::printf("wrote TRACE_engine_jobs.json (%llu spans; open in "
                  "Perfetto)\n",
                  static_cast<unsigned long long>(
                      Telemetry->Trace.recorded()));
    std::ofstream Prom("METRICS_engine_jobs.prom");
    if (Prom) {
      Prom << Telemetry->Registry.renderPrometheus();
      Prom.close();
      std::printf("wrote METRICS_engine_jobs.prom\n");
    }
  }

  // The determinism contract doubles as the telemetry-inertness proof:
  // the serial baseline ran without a sink, the engine legs (with
  // --trace) ran with one, and the bits must agree exactly.
  if (MaxDiffOverall != 0.0) {
    std::printf("FAILED: engine diverged from serial by %g%s\n",
                MaxDiffOverall, Trace ? " with tracing enabled" : "");
    return 1;
  }
  return 0;
}
