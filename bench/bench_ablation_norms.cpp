//===- bench/bench_ablation_norms.cpp - norm-objective ablation ---------------===//
//
// Ablation of Definition 5.3's "user-defined measure of size": the same
// Task-2 line-repair problem solved under l1, l-infinity, and combined
// objectives. l1 touches few weights (sparser repairs, typically lower
// drawdown); l-infinity spreads tiny changes over many weights. The
// paper mentions both encodings (§2, §3.1); this quantifies the choice.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "api/RepairEngine.h"
#include "core/PolytopeRepair.h"
#include "support/Table.h"

#include <cmath>
#include <cstdio>
#include <iostream>

using namespace prdnn;
using namespace prdnn::bench;

int main() {
  std::printf("=== Ablation: repair-norm objective (l1 vs l-inf vs "
              "l1+l-inf) ===\n");
  Task2Workload W = makeTask2Workload(25);
  std::printf("buggy network: %.1f%% clean, %.1f%% fogged\n\n",
              100 * W.CleanAccuracy, 100 * W.FogAccuracy);
  PointSpec Points = keyPointSpec(W.Net, task2Spec(W, 25, 1e-4));
  int OutputLayer = W.Net.parameterizedLayerIndices().back();

  TablePrinter Table({"Objective", "|Delta|_1", "|Delta|_inf",
                      "changed params", "D", "G", "T"});
  RepairEngine Engine;
  for (lp::Norm Objective :
       {lp::Norm::L1, lp::Norm::LInf, lp::Norm::L1PlusLInf}) {
    RepairOptions Options;
    Options.Objective = Objective;
    RepairResult Result =
        Engine
            .run(RepairRequest::points(RepairRequest::borrow(W.Net),
                                       OutputLayer, Points, Options))
            .Result;
    if (Result.Status != RepairStatus::Success) {
      Table.addRow({toString(Objective), "-", "-", "-",
                    toString(Result.Status), "-", "-"});
      continue;
    }
    int Changed = 0;
    for (double D : Result.Delta)
      if (std::fabs(D) > 1e-9)
        ++Changed;
    double D = 100 * (W.CleanAccuracy -
                      Result.Repaired->accuracy(W.CleanTest.Inputs,
                                                W.CleanTest.Labels));
    double G = 100 * (Result.Repaired->accuracy(W.FogTest.Inputs,
                                                W.FogTest.Labels) -
                      W.FogAccuracy);
    Table.addRow({toString(Objective), formatDouble(Result.DeltaL1, 3),
                  formatDouble(Result.DeltaLInf, 4),
                  std::to_string(Changed) + " / " +
                      std::to_string(static_cast<int>(Result.Delta.size())),
                  formatDouble(D, 1), formatDouble(G, 1),
                  formatDuration(Result.Stats.TotalSeconds)});
  }
  Table.print(std::cout);
  return 0;
}
