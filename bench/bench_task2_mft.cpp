//===- bench/bench_task2_mft.cpp - Table 3 -------------------------------------===//
//
// Task 2's modified fine-tuning grid (Table 3): MFT[1]/MFT[2] on
// Layer 2 and Layer 3 over 10/25/50/100 lines, trained on sampled line
// points with a holdout. Columns: efficacy E on the sampled repair set,
// drawdown D, generalization G, time T. MFT is not a repair algorithm
// (E < 100), but exhibits low drawdown - the paper's trade-off.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/PolytopeRepair.h"
#include "support/Table.h"

#include <cstdio>
#include <iostream>

using namespace prdnn;
using namespace prdnn::bench;

int main() {
  const int LineCounts[] = {10, 25, 50, 100};
  std::printf("=== Task 2: MFT baselines (Table 3) ===\n");
  Task2Workload W = makeTask2Workload(100);
  std::printf("buggy network: %.1f%% clean, %.1f%% fogged\n\n",
              100 * W.CleanAccuracy, 100 * W.FogAccuracy);

  std::vector<int> Layers = W.Net.parameterizedLayerIndices();
  int Layer2 = Layers[1];
  int Layer3 = Layers[2];

  TablePrinter Table({"Lines", "Cfg", "Layer", "E", "D", "G", "T"});
  for (int NumLines : LineCounts) {
    // Sample as many points as PR has key points (cf. Table 2).
    PointSpec Points = keyPointSpec(W.Net, task2Spec(W, NumLines, 1e-4));
    for (int Config = 1; Config <= 2; ++Config) {
      for (int LayerIdx : {Layer2, Layer3}) {
        Rng R(6000 + 10 * NumLines + Config);
        Dataset Samples = task2Samples(
            W, NumLines, static_cast<int>(Points.size()), R);
        ModifiedFineTuneOptions Options;
        Options.LearningRate = Config == 1 ? 0.05 : 0.01;
        Options.Momentum = 0.9;
        Options.BatchSize = 16;
        Options.LayerIndex = LayerIdx;
        Options.MaxEpochs = 80;
        ModifiedFineTuneResult Result =
            modifiedFineTune(W.Net, Samples, Options, R);
        double D = 100 * (W.CleanAccuracy -
                          accuracy(Result.Tuned, W.CleanTest.Inputs,
                                   W.CleanTest.Labels));
        double G = 100 * (accuracy(Result.Tuned, W.FogTest.Inputs,
                                   W.FogTest.Labels) -
                          W.FogAccuracy);
        Table.addRow({std::to_string(NumLines),
                      "MFT[" + std::to_string(Config) + "]",
                      LayerIdx == Layer2 ? "2" : "3",
                      formatDouble(100 * Result.RepairAccuracy, 1),
                      formatDouble(D, 1), formatDouble(G, 1),
                      formatDuration(Result.Seconds)});
      }
    }
  }
  std::printf("Table 3 (E: efficacy %%, D: drawdown %%, G: generalization "
              "%%, T: time):\n");
  Table.print(std::cout);
  return 0;
}
