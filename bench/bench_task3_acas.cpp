//===- bench/bench_task3_acas.cpp - §7.3 numbers -------------------------------===//
//
// Task 3 (§7.3): 2-D polytope repair of an ACAS-style advisory network
// against a phi_8-style safety property. Regenerates the section's
// prose numbers: PR efficacy on all repair slices (provably 100%),
// drawdown / generalization on held-out point sets, the timing
// breakdown (LinRegions / Jacobian / LP / other), per-layer
// feasibility (the paper found only the last layer satisfiable), and
// the FT / MFT comparison.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "api/RepairEngine.h"
#include "support/Table.h"

#include <cstdio>
#include <iostream>

using namespace prdnn;
using namespace prdnn::bench;
using namespace prdnn::data;

int main() {
  std::printf("=== Task 3: 2-D polytope ACAS repair (§7.3) ===\n");
  Task3Workload W = makeTask3Workload(/*NumRepairSlices=*/10,
                                      /*NumOtherSlices=*/12,
                                      /*SetSize=*/2000);
  std::printf("buggy network: %.1f%% advisory accuracy; %zu repair "
              "slices; %zu generalization counterexamples; %d drawdown "
              "points\n",
              100 * W.PolicyAccuracy, W.RepairSlices.size(),
              W.Generalization.size(), W.Drawdown.size());

  double LinRegionsSeconds = 0.0;
  int NumRegions = 0;
  Dataset FtSamples;
  PointSpec Spec = task3Spec(W, &LinRegionsSeconds, &NumRegions, &FtSamples);
  std::printf("LinRegions: %d regions over the %zu slices -> %zu key "
              "points (%.1fs)\n\n",
              NumRegions, W.RepairSlices.size(), Spec.size(),
              LinRegionsSeconds);

  // --- RQ1/RQ4: repair the last layer -----------------------------------------
  std::vector<int> Layers = W.Net.parameterizedLayerIndices();
  int LastLayer = Layers.back();
  RepairEngine Engine;
  auto RunLayer = [&](int LayerIdx) {
    return Engine
        .run(RepairRequest::points(RepairRequest::borrow(W.Net), LayerIdx,
                                   Spec))
        .Result;
  };
  RepairResult Result = RunLayer(LastLayer);
  if (Result.Status != RepairStatus::Success) {
    std::printf("last-layer repair FAILED: %s\n", toString(Result.Status));
    return 1;
  }
  std::printf("PR (last layer): SUCCESS; |Delta|_1 = %.4f; total %.1fs "
              "(LinRegions %.1fs, Jacobian %.1fs, LP %.1fs, other "
              "%.1fs)\n",
              Result.DeltaL1,
              Result.Stats.TotalSeconds + LinRegionsSeconds,
              LinRegionsSeconds, Result.Stats.JacobianSeconds,
              Result.Stats.LpSeconds, Result.Stats.OtherSeconds);

  const DecoupledNetwork &Repaired = *Result.Repaired;
  // RQ2 drawdown: points the buggy network classified correctly.
  int StillCorrect = 0;
  for (int I = 0; I < W.Drawdown.size(); ++I)
    if (Repaired.classify(W.Drawdown.Inputs[I]) == W.Drawdown.Labels[I])
      ++StillCorrect;
  std::printf("RQ2 drawdown: %d of %d previously-correct points still "
              "correct (drawdown %.2f%%)\n",
              StillCorrect, W.Drawdown.size(),
              100.0 * (W.Drawdown.size() - StillCorrect) /
                  W.Drawdown.size());

  // RQ3 generalization: counterexamples outside the repair slices.
  double GenBefore = safeFraction(W.Generalization, [&](const Vector &X) {
    return W.Net.classify(X);
  });
  double GenAfter = safeFraction(W.Generalization, [&](const Vector &X) {
    return Repaired.classify(X);
  });
  std::printf("RQ3 generalization: property satisfaction on held-out "
              "counterexamples %.1f%% -> %.1f%%\n\n",
              100 * GenBefore, 100 * GenAfter);

  // --- Per-layer feasibility (paper: only the last layer satisfiable) --------
  TablePrinter LayerTable({"Layer", "Kind", "Status", "T"});
  for (int LayerIdx : Layers) {
    if (LayerIdx == LastLayer) {
      LayerTable.addRow({std::to_string(LayerIdx),
                         W.Net.layer(LayerIdx).describe(), "Success",
                         formatDuration(Result.Stats.TotalSeconds)});
      continue;
    }
    RepairResult Other = RunLayer(LayerIdx);
    LayerTable.addRow({std::to_string(LayerIdx),
                       W.Net.layer(LayerIdx).describe(),
                       toString(Other.Status),
                       formatDuration(Other.Stats.TotalSeconds)});
  }
  std::printf("Per-layer repair feasibility:\n");
  LayerTable.print(std::cout);

  // --- FT / MFT baselines ------------------------------------------------------
  std::printf("\nBaselines on the %d sampled key points:\n",
              FtSamples.size());
  double BuggySampleAcc =
      accuracy(W.Net, FtSamples.Inputs, FtSamples.Labels);
  std::printf("  buggy accuracy on sampled repair points: %.1f%%\n",
              100 * BuggySampleAcc);
  {
    FineTuneOptions Options;
    Options.LearningRate = 0.001;
    Options.Momentum = 0.9;
    Options.BatchSize = 16;
    Options.MaxEpochs = 250;
    Options.TimeoutSeconds = 60.0;
    Rng R(7001);
    FineTuneResult Ft = fineTune(W.Net, FtSamples, Options, R);
    int FtCorrect = 0;
    for (int I = 0; I < W.Drawdown.size(); ++I)
      if (Ft.Tuned.classify(W.Drawdown.Inputs[I]) == W.Drawdown.Labels[I])
        ++FtCorrect;
    std::printf("  FT: efficacy %.1f%%%s, drawdown %.2f%%, "
                "generalization -> %.1f%%, %s\n",
                100 * Ft.RepairAccuracy, Ft.TimedOut ? " (timed out)" : "",
                100.0 * (W.Drawdown.size() - FtCorrect) / W.Drawdown.size(),
                100 * safeFraction(W.Generalization, [&](const Vector &X) {
                  return Ft.Tuned.classify(X);
                }),
                formatDuration(Ft.Seconds).c_str());
  }
  for (int LayerIdx : {Layers[Layers.size() - 2], LastLayer}) {
    ModifiedFineTuneOptions Options;
    Options.LearningRate = 0.001;
    Options.Momentum = 0.9;
    Options.BatchSize = 16;
    Options.LayerIndex = LayerIdx;
    Options.MaxEpochs = 80;
    Rng R(7100 + LayerIdx);
    ModifiedFineTuneResult Mft = modifiedFineTune(W.Net, FtSamples, Options,
                                                  R);
    int MftCorrect = 0;
    for (int I = 0; I < W.Drawdown.size(); ++I)
      if (Mft.Tuned.classify(W.Drawdown.Inputs[I]) == W.Drawdown.Labels[I])
        ++MftCorrect;
    std::printf("  MFT(layer %d): efficacy %.1f%%, drawdown %.2f%%, "
                "generalization -> %.1f%%, %s\n",
                LayerIdx, 100 * Mft.RepairAccuracy,
                100.0 * (W.Drawdown.size() - MftCorrect) /
                    W.Drawdown.size(),
                100 * safeFraction(W.Generalization, [&](const Vector &X) {
                  return Mft.Tuned.classify(X);
                }),
                formatDuration(Mft.Seconds).c_str());
  }
  return 0;
}
