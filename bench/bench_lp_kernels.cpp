//===- bench/bench_lp_kernels.cpp - parallel simplex kernel bench -------------===//
//
// Measures the blocked/parallel revised-simplex kernels (pricing,
// FTRAN/BTRAN, refactorization, eta update, ratio preselection) against
// the scalar reference path on dense LPs of M in {64, 256, 1024} kept
// rows (M/2 structural variables, so NT = 1.5 M columns), at 1, 4, and
// 8 pool threads. The parallel path promises bit-for-bit the scalar
// solutions, so besides end-to-end and per-kernel speedups the bench
// checks - and exits non-zero on - any solution divergence (status, X,
// duals, objective bits) or pivot-sequence mismatch (pivot hash /
// iteration counts) at any thread count.
//
// Emits BENCH_lp_kernels.json, one record per (M, threads): scalar and
// parallel wall seconds, end-to-end speedup, per-kernel seconds and
// speedups, iterations/refactors, max solution divergence (must be 0),
// and pivot-hash agreement. Kernel speedups track core count: on a
// 1-core container every speedup is ~1x by construction; the 4/8
// thread rows become meaningful on CI-class multicore hosts.
//
// Run with --smoke (CI) to drop the M = 1024 size and repeats.
//
// --tier strict|fast selects the kernel determinism tier
// (src/linalg/Kernels.h) for BOTH paths. Under the default Strict the
// gates above apply unchanged. Under Fast the SIMD dot products may
// legitimately tip near-tie pivot choices, so the bit gates are
// replaced by solution-level ones: statuses must match and objectives
// must agree to 1e-6 relative - the pivot-hash and |dX| == 0 checks
// are reported but not enforced.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "lp/Simplex.h"
#include "support/Parallel.h"
#include "support/Rng.h"
#include "support/Table.h"
#include "support/Timer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

using namespace prdnn;
using namespace prdnn::lp;
using namespace prdnn::bench;

namespace {

/// Dense feasible LP with M rows and M/2 bounded variables, built
/// around a witness point; mixed <= / >= / two-sided rows keep both
/// phase-1 and phase-2 pivoting busy.
LinearProgram makeDenseLp(int M, uint64_t Seed) {
  int Vars = M / 2;
  Rng R(Seed);
  LinearProgram P;
  std::vector<double> Witness(static_cast<size_t>(Vars));
  for (int J = 0; J < Vars; ++J) {
    P.addVariable(-10.0, 10.0, R.normal());
    Witness[static_cast<size_t>(J)] = R.uniform(-5.0, 5.0);
  }
  for (int I = 0; I < M; ++I) {
    std::vector<int> Index(static_cast<size_t>(Vars));
    std::vector<double> Value(static_cast<size_t>(Vars));
    double Activity = 0.0;
    for (int J = 0; J < Vars; ++J) {
      Index[static_cast<size_t>(J)] = J;
      double C = R.normal();
      Value[static_cast<size_t>(J)] = C;
      Activity += C * Witness[static_cast<size_t>(J)];
    }
    double Slack = R.uniform(0.1, 1.5);
    if (I % 3 == 0)
      P.addRow(std::move(Index), std::move(Value), Activity - Slack,
               Activity + Slack);
    else if (I % 3 == 1)
      P.addRowLe(std::move(Index), std::move(Value), Activity + Slack);
    else
      P.addRowGe(std::move(Index), std::move(Value), Activity - Slack);
  }
  return P;
}

/// Max absolute elementwise difference; huge if shapes differ or one
/// side is NaN where the other is not (a plain fabs of a NaN difference
/// would vanish inside std::max and hide the divergence).
double maxDiff(const std::vector<double> &A, const std::vector<double> &B) {
  if (A.size() != B.size())
    return 1e300;
  double Max = 0.0;
  for (size_t I = 0; I < A.size(); ++I) {
    double D = std::fabs(A[I] - B[I]);
    if (std::isnan(D))
      D = std::isnan(A[I]) && std::isnan(B[I]) ? 0.0 : 1e300;
    Max = std::max(Max, D);
  }
  return Max;
}

struct Measured {
  LpSolution Sol;
  double Seconds = 0.0; // best-of-repeats wall time
};

Measured solveTimed(const LinearProgram &P, const SimplexOptions &Options,
                    int Repeats) {
  Measured Out;
  Out.Seconds = 1e300;
  for (int Rep = 0; Rep < Repeats; ++Rep) {
    WallTimer Timer;
    LpSolution Sol = solveLp(P, Options);
    Out.Seconds = std::min(Out.Seconds, Timer.seconds());
    Out.Sol = std::move(Sol);
  }
  return Out;
}

double ratio(double Num, double Den) { return Den > 0.0 ? Num / Den : 0.0; }

} // namespace

int main(int argc, char **argv) {
  bool Smoke = false;
  linalg::Determinism Tier = linalg::Determinism::Strict;
  for (int I = 1; I < argc; ++I) {
    Smoke = Smoke || std::strcmp(argv[I], "--smoke") == 0;
    if (std::strcmp(argv[I], "--tier") == 0 && I + 1 < argc) {
      ++I;
      if (std::strcmp(argv[I], "fast") == 0) {
        Tier = linalg::Determinism::Fast;
      } else if (std::strcmp(argv[I], "strict") != 0) {
        std::printf("unknown tier '%s' (expected strict|fast)\n", argv[I]);
        return 1;
      }
    }
  }
  const bool Fast = Tier == linalg::Determinism::Fast;
  std::vector<int> Sizes = Smoke ? std::vector<int>{64, 256}
                                 : std::vector<int>{64, 256, 1024};
  const int Repeats = Smoke ? 1 : 3;

  int SavedThreads = globalThreadCount();
  std::printf("=== Parallel simplex kernels vs scalar path%s, %s tier ===\n",
              Smoke ? " (smoke)" : "", linalg::toString(Tier));
  std::printf("hardware concurrency: %u; initial pool threads: %d\n\n",
              std::thread::hardware_concurrency(), SavedThreads);

  BenchJson Json("lp_kernels");
  TablePrinter Table({"M", "threads", "scalar(s)", "parallel(s)", "speedup",
                      "pricing x", "ftran x", "btran x", "refactor x",
                      "iters", "max |dX|"});

  bool DivergenceOk = true;
  bool PivotsOk = true;

  for (int M : Sizes) {
    LinearProgram P = makeDenseLp(M, 42000 + static_cast<uint64_t>(M));

    // Scalar reference: kernel path fixed to the scalar loops.
    SimplexOptions ScalarOpts;
    ScalarOpts.ParallelKernels = false;
    ScalarOpts.Determinism = Tier;
    setGlobalThreadCount(1);
    Measured Scalar = solveTimed(P, ScalarOpts, Repeats);
    if (Scalar.Sol.Status != SolveStatus::Optimal) {
      std::printf("M=%d: scalar solve returned %s - bench workload must be "
                  "Optimal\n",
                  M, toString(Scalar.Sol.Status));
      setGlobalThreadCount(SavedThreads);
      return 1;
    }

    SimplexOptions ParOpts;
    ParOpts.ParallelKernels = true;
    ParOpts.ParallelMinDim = 1; // measure the kernels at every size
    ParOpts.Determinism = Tier;
    for (int Threads : {1, 4, 8}) {
      setGlobalThreadCount(Threads);
      Measured Par = solveTimed(P, ParOpts, Repeats);

      double Diff = std::max(maxDiff(Par.Sol.X, Scalar.Sol.X),
                             maxDiff(Par.Sol.RowDuals, Scalar.Sol.RowDuals));
      if (Par.Sol.Status != Scalar.Sol.Status ||
          Par.Sol.Objective != Scalar.Sol.Objective)
        Diff = std::max(Diff, 1e300);
      bool SamePivots =
          Par.Sol.Stats.PivotHash == Scalar.Sol.Stats.PivotHash &&
          Par.Sol.Iterations == Scalar.Sol.Iterations &&
          Par.Sol.Stats.Refactors == Scalar.Sol.Stats.Refactors;
      if (Fast) {
        // Fast simplex may pivot differently near ties: enforce the
        // solution, not the path - same status, same objective to
        // 1e-6 relative. Diff/SamePivots stay in the JSON as data.
        double ObjTol =
            1e-6 * std::max(1.0, std::fabs(Scalar.Sol.Objective));
        DivergenceOk = DivergenceOk &&
                       Par.Sol.Status == Scalar.Sol.Status &&
                       std::fabs(Par.Sol.Objective - Scalar.Sol.Objective) <=
                           ObjTol;
      } else {
        DivergenceOk = DivergenceOk && Diff == 0.0;
        PivotsOk = PivotsOk && SamePivots;
      }

      const SimplexStats &Ss = Scalar.Sol.Stats;
      const SimplexStats &Ps = Par.Sol.Stats;
      double Speedup = ratio(Scalar.Seconds, Par.Seconds);

      Json.beginRecord();
      Json.add("m", M);
      Json.add("vars", P.numVariables());
      Json.add("threads", Threads);
      Json.add("smoke", Smoke ? 1 : 0);
      Json.add("tier", linalg::toString(Tier));
      Json.add("scalar_seconds", Scalar.Seconds);
      Json.add("parallel_seconds", Par.Seconds);
      Json.add("end_to_end_speedup", Speedup);
      Json.add("scalar_pricing_seconds", Ss.PricingSeconds);
      Json.add("scalar_ftran_seconds", Ss.FtranSeconds);
      Json.add("scalar_btran_seconds", Ss.BtranSeconds);
      Json.add("scalar_ratio_seconds", Ss.RatioSeconds);
      Json.add("scalar_update_seconds", Ss.UpdateSeconds);
      Json.add("scalar_refactor_seconds", Ss.RefactorSeconds);
      Json.add("parallel_pricing_seconds", Ps.PricingSeconds);
      Json.add("parallel_ftran_seconds", Ps.FtranSeconds);
      Json.add("parallel_btran_seconds", Ps.BtranSeconds);
      Json.add("parallel_ratio_seconds", Ps.RatioSeconds);
      Json.add("parallel_update_seconds", Ps.UpdateSeconds);
      Json.add("parallel_refactor_seconds", Ps.RefactorSeconds);
      Json.add("pricing_speedup", ratio(Ss.PricingSeconds, Ps.PricingSeconds));
      Json.add("ftran_speedup", ratio(Ss.FtranSeconds, Ps.FtranSeconds));
      Json.add("btran_speedup", ratio(Ss.BtranSeconds, Ps.BtranSeconds));
      Json.add("refactor_speedup",
               ratio(Ss.RefactorSeconds, Ps.RefactorSeconds));
      Json.add("update_speedup", ratio(Ss.UpdateSeconds, Ps.UpdateSeconds));
      Json.add("iterations", Par.Sol.Iterations);
      Json.add("refactors", Ps.Refactors);
      Json.add("pivots", Ps.Pivots);
      Json.add("bound_flips", Ps.BoundFlips);
      Json.add("max_divergence", Diff);
      Json.add("pivot_hash_match", SamePivots ? 1 : 0);
      Json.add("hardware_concurrency",
               static_cast<int>(std::thread::hardware_concurrency()));

      Table.addRow({std::to_string(M), std::to_string(Threads),
                    formatDouble(Scalar.Seconds, 4),
                    formatDouble(Par.Seconds, 4), formatDouble(Speedup, 2),
                    formatDouble(ratio(Ss.PricingSeconds, Ps.PricingSeconds), 2),
                    formatDouble(ratio(Ss.FtranSeconds, Ps.FtranSeconds), 2),
                    formatDouble(ratio(Ss.BtranSeconds, Ps.BtranSeconds), 2),
                    formatDouble(ratio(Ss.RefactorSeconds, Ps.RefactorSeconds),
                                 2),
                    std::to_string(Par.Sol.Iterations),
                    Diff == 0.0 ? "0" : formatDouble(Diff, 12)});
    }
  }
  setGlobalThreadCount(SavedThreads);

  Table.print(std::cout);
  std::string JsonFile = Json.write();
  if (!JsonFile.empty())
    std::printf("\nwrote %s\n", JsonFile.c_str());

  bool Ok = DivergenceOk && PivotsOk;
  std::printf("%s\n",
              !Ok ? "bench_lp_kernels: DETERMINISM CHECK FAILED"
              : Fast
                  ? "bench_lp_kernels: fast-tier solutions match the "
                    "scalar path (status + objective) at 1/4/8 threads"
                  : "bench_lp_kernels: parallel kernels bit-identical "
                    "to the scalar path at 1/4/8 threads");
  return Ok ? 0 : 1;
}
