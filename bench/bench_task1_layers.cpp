//===- bench/bench_task1_layers.cpp - Figure 7(a) and 7(b) -------------------===//
//
// Per-layer view of Task 1 at the 400-point repair set: drawdown as a
// function of the repaired layer (Figure 7a) and the time split into
// Jacobian / LP / other per layer (Figure 7b). The paper's headline
// trends: later layers repair with less drawdown, and the time budget
// is dominated by one phase (Jacobians for the paper's PyTorch; the LP
// for our closed-form Jacobians - noted in EXPERIMENTS.md).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/PointRepair.h"
#include "nn/LinearLayers.h"
#include "support/Casting.h"
#include "support/Table.h"

#include <cstdio>
#include <iostream>

using namespace prdnn;
using namespace prdnn::bench;

int main() {
  // The paper plots the 400-point set; we use 100 (+40 anchors) at our
  // ~100x smaller network scale - the per-layer trends are the target.
  std::printf("=== Task 1 per-layer repair at 100 points "
              "(Figure 7a / 7b) ===\n");
  Task1Workload W = makeTask1Workload(100);
  std::printf("buggy network: %.1f%% validation accuracy\n\n",
              100 * W.ValidationAccuracy);
  PointSpec Spec = task1Spec(W, 100, /*AnchorCount=*/40);

  TablePrinter Table({"Layer", "Kind", "Params", "Drawdown(%)",
                      "T total", "T jacobian", "T lp", "T other",
                      "LP rows used", "CG rounds"});
  for (int LayerIdx : W.Net.parameterizedLayerIndices()) {
    RepairResult Result = repairPoints(W.Net, LayerIdx, Spec);
    std::string Drawdown = "infeasible";
    if (Result.Status == RepairStatus::Success)
      Drawdown = formatDouble(
          100 * (W.ValidationAccuracy -
                 Result.Repaired->accuracy(W.Validation.Inputs,
                                           W.Validation.Labels)),
          1);
    int NumParams =
        cast<LinearLayer>(W.Net.layer(LayerIdx)).numParams();
    Table.addRow({std::to_string(LayerIdx),
                  W.Net.layer(LayerIdx).describe(),
                  std::to_string(NumParams),
                  Drawdown, formatDuration(Result.Stats.TotalSeconds),
                  formatDuration(Result.Stats.JacobianSeconds),
                  formatDuration(Result.Stats.LpSeconds),
                  formatDuration(Result.Stats.OtherSeconds),
                  std::to_string(Result.Stats.LpRowsUsed),
                  std::to_string(Result.Stats.CgRounds)});
  }
  Table.print(std::cout);
  std::printf("\nFigure 7(a): the Drawdown column by layer; "
              "Figure 7(b): the T jacobian / T lp / T other columns.\n");
  return 0;
}
