//===- bench/bench_task1_layers.cpp - Figure 7(a) and 7(b) -------------------===//
//
// Per-layer view of Task 1 at the 400-point repair set: drawdown as a
// function of the repaired layer (Figure 7a) and the time split into
// Jacobian / LP / other per layer (Figure 7b). The paper's headline
// trends: later layers repair with less drawdown, and the time budget
// is dominated by one phase (Jacobians for the paper's PyTorch; the LP
// for our closed-form Jacobians - noted in EXPERIMENTS.md).
//
// The per-layer runs go through one RepairEngine, and the same
// experiment is then repeated as a single kAutoLayer request: the
// engine's layer sweep reproduces the per-layer attempts and returns
// the minimal-|Delta| success (the §7 methodology as an API mode).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "api/RepairEngine.h"
#include "nn/LinearLayers.h"
#include "support/Casting.h"
#include "support/Table.h"

#include <cstdio>
#include <iostream>

using namespace prdnn;
using namespace prdnn::bench;

int main() {
  // The paper plots the 400-point set; we use 100 (+40 anchors) at our
  // ~100x smaller network scale - the per-layer trends are the target.
  std::printf("=== Task 1 per-layer repair at 100 points "
              "(Figure 7a / 7b) ===\n");
  Task1Workload W = makeTask1Workload(100);
  std::printf("buggy network: %.1f%% validation accuracy\n\n",
              100 * W.ValidationAccuracy);
  PointSpec Spec = task1Spec(W, 100, /*AnchorCount=*/40);

  RepairEngine Engine;
  TablePrinter Table({"Layer", "Kind", "Params", "Drawdown(%)",
                      "T total", "T jacobian", "T lp", "T other",
                      "LP rows used", "CG rounds"});
  for (int LayerIdx : W.Net.parameterizedLayerIndices()) {
    RepairResult Result =
        Engine
            .run(RepairRequest::points(RepairRequest::borrow(W.Net),
                                       LayerIdx, Spec))
            .Result;
    std::string Drawdown = "infeasible";
    if (Result.Status == RepairStatus::Success)
      Drawdown = formatDouble(
          100 * (W.ValidationAccuracy -
                 Result.Repaired->accuracy(W.Validation.Inputs,
                                           W.Validation.Labels)),
          1);
    int NumParams =
        cast<LinearLayer>(W.Net.layer(LayerIdx)).numParams();
    Table.addRow({std::to_string(LayerIdx),
                  W.Net.layer(LayerIdx).describe(),
                  std::to_string(NumParams),
                  Drawdown, formatDuration(Result.Stats.TotalSeconds),
                  formatDuration(Result.Stats.JacobianSeconds),
                  formatDuration(Result.Stats.LpSeconds),
                  formatDuration(Result.Stats.OtherSeconds),
                  std::to_string(Result.Stats.LpRowsUsed),
                  std::to_string(Result.Stats.CgRounds)});
  }
  Table.print(std::cout);
  std::printf("\nFigure 7(a): the Drawdown column by layer; "
              "Figure 7(b): the T jacobian / T lp / T other columns.\n");

  // --- The same experiment as one kAutoLayer sweep request -------------------
  RepairRequest Sweep;
  Sweep.Net = RepairRequest::borrow(W.Net);
  Sweep.Spec = Spec;
  Sweep.LayerIndex = kAutoLayer;
  RepairReport Report = Engine.run(Sweep);
  std::printf("\nkAutoLayer sweep: %s", toString(Report.Status));
  if (Report.succeeded())
    std::printf(", minimal-|Delta| layer = %d (|Delta|_1 = %.4f)",
                Report.RepairedLayer, Report.Result.DeltaL1);
  std::printf("; %zu attempts, %.1fs total\n", Report.Sweep.size(),
              Report.TotalSeconds);
  for (const SweepAttempt &Attempt : Report.Sweep)
    std::printf("  layer %d: %s, |Delta|_1 = %.4f, %s\n",
                Attempt.LayerIndex, toString(Attempt.Status),
                Attempt.DeltaL1,
                formatDuration(Attempt.Seconds).c_str());
  return 0;
}
