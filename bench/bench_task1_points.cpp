//===- bench/bench_task1_points.cpp - Table 1 and Table 4 --------------------===//
//
// Task 1 (§7.1): pointwise repair of a convolutional image classifier
// on natural-adversarial-style points. Regenerates Table 1 (summary:
// best-drawdown PR vs FT[1]/FT[2] vs best-drawdown MFT[1]/MFT[2]) and
// Table 4 (extended per-layer results). Our substrate is ShapeWorld
// (DESIGN.md §3); absolute numbers differ from the paper, the shape -
// PR reaching 100% efficacy with the smallest drawdown, FT slower with
// worse drawdown, MFT fast/low-drawdown but low-efficacy - is the
// reproduction target.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/PointRepair.h"
#include "support/Table.h"
#include "support/Timer.h"

#include <cstdio>
#include <iostream>

using namespace prdnn;
using namespace prdnn::bench;

namespace {

struct PrRow {
  int Feasible = 0, Total = 0;
  double BestDrawdown = 1e9, WorstDrawdown = -1e9;
  double BestTime = 0.0, FastestTime = 1e9, SlowestTime = 0.0;
};

} // namespace

int main() {
  // The paper uses 100/200/400/752 points on a 727k-parameter network;
  // our substrate is ~100x smaller, so the sweep is scaled to
  // 50/100/200 (documented in EXPERIMENTS.md).
  const int Sizes[] = {50, 100, 200};
  std::printf("=== Task 1: Pointwise repair of a conv image classifier "
              "(Tables 1 and 4) ===\n");
  Task1Workload W = makeTask1Workload(200);
  std::printf("buggy network: %.1f%% validation accuracy, %.1f%% on %d "
              "adversarial images\n",
              100 * W.ValidationAccuracy, 100 * W.AdversarialAccuracy,
              W.Adversarials.size());
  std::vector<int> Layers = W.Net.parameterizedLayerIndices();
  std::printf("repairable layers:");
  for (int L : Layers)
    std::printf(" %d (%s)", L, W.Net.layer(L).describe().c_str());
  std::printf("\n\n");

  TablePrinter Table1({"Points", "PR(BD) D", "T", "FT[1] D", "T",
                       "FT[2] D", "T", "MFT[1] E", "D", "T", "MFT[2] E",
                       "D", "T"});
  TablePrinter Table4({"Points", "Efficacy", "D best", "D worst",
                       "T fastest", "T slowest", "T bestD"});

  const int AnchorCount = 40;
  for (int Size : Sizes) {
    PointSpec Spec = task1Spec(W, Size, AnchorCount);
    // FT/MFT train on the same repair set, incl. the non-buggy anchors
    // ("In all cases PR, FT, and MFT were given the same repair set").
    Dataset RepairSet;
    for (int I = 0; I < Size; ++I)
      RepairSet.push(W.Adversarials.Inputs[I], W.Adversarials.Labels[I]);
    for (int I = 0; I < AnchorCount; ++I)
      RepairSet.push(W.Anchors.Inputs[I], W.Anchors.Labels[I]);

    // --- PR on every repairable layer --------------------------------------
    PrRow Pr;
    Pr.Total = static_cast<int>(Layers.size());
    for (int LayerIdx : Layers) {
      RepairResult Result = repairPoints(W.Net, LayerIdx, Spec);
      if (Result.Status != RepairStatus::Success)
        continue;
      ++Pr.Feasible;
      double Drawdown =
          100 * (W.ValidationAccuracy -
                 Result.Repaired->accuracy(W.Validation.Inputs,
                                           W.Validation.Labels));
      double T = Result.Stats.TotalSeconds;
      Pr.FastestTime = std::min(Pr.FastestTime, T);
      Pr.SlowestTime = std::max(Pr.SlowestTime, T);
      Pr.WorstDrawdown = std::max(Pr.WorstDrawdown, Drawdown);
      if (Drawdown < Pr.BestDrawdown) {
        Pr.BestDrawdown = Drawdown;
        Pr.BestTime = T;
      }
    }

    // --- FT[1] / FT[2] -------------------------------------------------------
    FineTuneOptions Ft1;
    Ft1.LearningRate = 0.003;
    Ft1.BatchSize = 2;
    Ft1.MaxEpochs = 100;
    Ft1.TimeoutSeconds = 60.0;
    FineTuneOptions Ft2 = Ft1;
    Ft2.BatchSize = 16;
    Rng FtR1(4001), FtR2(4002);
    FineTuneResult FtA = fineTune(W.Net, RepairSet, Ft1, FtR1);
    FineTuneResult FtB = fineTune(W.Net, RepairSet, Ft2, FtR2);
    double FtAD = 100 * (W.ValidationAccuracy -
                         accuracy(FtA.Tuned, W.Validation.Inputs,
                                  W.Validation.Labels));
    double FtBD = 100 * (W.ValidationAccuracy -
                         accuracy(FtB.Tuned, W.Validation.Inputs,
                                  W.Validation.Labels));

    // --- MFT[1]/MFT[2]: best-drawdown layer ----------------------------------
    auto RunMft = [&](int BatchSize, uint64_t Seed) {
      double BestD = 1e9, BestE = 0.0, BestT = 0.0;
      for (int LayerIdx : Layers) {
        ModifiedFineTuneOptions Options;
        Options.LearningRate = 0.003;
        Options.BatchSize = BatchSize;
        Options.LayerIndex = LayerIdx;
        Options.MaxEpochs = 25;
        Rng R(Seed + LayerIdx);
        WallTimer Timer;
        ModifiedFineTuneResult Result =
            modifiedFineTune(W.Net, RepairSet, Options, R);
        double D = 100 * (W.ValidationAccuracy -
                          accuracy(Result.Tuned, W.Validation.Inputs,
                                   W.Validation.Labels));
        if (D < BestD) {
          BestD = D;
          BestE = 100 * Result.RepairAccuracy;
          BestT = Timer.seconds();
        }
      }
      return std::tuple<double, double, double>(BestE, BestD, BestT);
    };
    auto [MftAE, MftAD, MftAT] = RunMft(2, 4101);
    auto [MftBE, MftBD, MftBT] = RunMft(16, 4201);

    Table1.addRow({std::to_string(Size), formatDouble(Pr.BestDrawdown, 1),
                   formatDuration(Pr.BestTime), formatDouble(FtAD, 1),
                   formatDuration(FtA.Seconds), formatDouble(FtBD, 1),
                   formatDuration(FtB.Seconds), formatDouble(MftAE, 1),
                   formatDouble(MftAD, 1), formatDuration(MftAT),
                   formatDouble(MftBE, 1), formatDouble(MftBD, 1),
                   formatDuration(MftBT)});
    Table4.addRow({std::to_string(Size),
                   std::to_string(Pr.Feasible) + " / " +
                       std::to_string(Pr.Total),
                   formatDouble(Pr.BestDrawdown, 1),
                   formatDouble(Pr.WorstDrawdown, 1),
                   formatDuration(Pr.FastestTime),
                   formatDuration(Pr.SlowestTime),
                   formatDuration(Pr.BestTime)});
  }

  std::printf("Table 1 (D: drawdown %%, T: time; PR/FT efficacy is 100%%, "
              "E: MFT efficacy %%):\n");
  Table1.print(std::cout);
  std::printf("\nTable 4 (extended per-layer PR results):\n");
  Table4.print(std::cout);
  return 0;
}
