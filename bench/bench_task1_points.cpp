//===- bench/bench_task1_points.cpp - Table 1 and Table 4 --------------------===//
//
// Task 1 (§7.1): pointwise repair of a convolutional image classifier
// on natural-adversarial-style points. Regenerates Table 1 (summary:
// best-drawdown PR vs FT[1]/FT[2] vs best-drawdown MFT[1]/MFT[2]) and
// Table 4 (extended per-layer results). Our substrate is ShapeWorld
// (DESIGN.md §3); absolute numbers differ from the paper, the shape -
// PR reaching 100% efficacy with the smallest drawdown, FT slower with
// worse drawdown, MFT fast/low-drawdown but low-efficacy - is the
// reproduction target.
//
// --tier strict|fast selects the kernel determinism tier
// (src/linalg/Kernels.h) for every PR repair in the run; the tier is
// stamped into each JSON record. The seed-vs-engine Jacobian
// bit-identity sanity check always runs Strict - it is a check of the
// deterministic path, not of the tier under test.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "api/RepairEngine.h"
#include "nn/Jacobian.h"
#include "nn/LinearLayers.h"
#include "support/Casting.h"
#include "support/Parallel.h"
#include "support/Table.h"
#include "support/Timer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>

using namespace prdnn;
using namespace prdnn::bench;

namespace {

struct PrRow {
  int Feasible = 0, Total = 0;
  double BestDrawdown = 1e9, WorstDrawdown = -1e9;
  double BestTime = 0.0, FastestTime = 1e9, SlowestTime = 0.0;
};

// --- Frozen seed-reference Jacobian phase -----------------------------------
//
// The single-threaded baseline the JSON speedup numbers are measured
// against: a faithful copy of the pre-batch-engine (seed) per-point
// pipeline - convolution kernels that re-derive the tap geometry per
// point, one scalar backward sweep per point, sequential row assembly.
// It lives in the bench (not the library) precisely so future kernel
// work cannot silently accelerate the baseline; it produces bit-for-bit
// the same Jacobians as the current engine, which main() verifies.

struct SeedConv {
  int InC, InH, InW, OutC, KH, KW, Stride, Pad, OutH, OutW;
  std::vector<double> Kernels, Bias;

  template <typename FnT> void forEachTap(FnT Fn) const {
    for (int K = 0; K < OutC; ++K) {
      for (int OY = 0; OY < OutH; ++OY) {
        for (int OX = 0; OX < OutW; ++OX) {
          int OutIndex = (K * OutH + OY) * OutW + OX;
          for (int C = 0; C < InC; ++C) {
            for (int Y = 0; Y < KH; ++Y) {
              int IY = OY * Stride - Pad + Y;
              if (IY < 0 || IY >= InH)
                continue;
              for (int X = 0; X < KW; ++X) {
                int IX = OX * Stride - Pad + X;
                if (IX < 0 || IX >= InW)
                  continue;
                int InIndex = (C * InH + IY) * InW + IX;
                int ParamIndex = ((K * InC + C) * KH + Y) * KW + X;
                Fn(OutIndex, InIndex, ParamIndex);
              }
            }
          }
          Fn(OutIndex, -1, OutC * InC * KH * KW + K);
        }
      }
    }
  }

  Vector apply(const Vector &In) const {
    Vector Out(OutC * OutH * OutW);
    forEachTap([&](int OutIndex, int InIndex, int ParamIndex) {
      if (InIndex < 0)
        Out[OutIndex] += Bias[static_cast<size_t>(ParamIndex -
                                                  OutC * InC * KH * KW)];
      else
        Out[OutIndex] +=
            Kernels[static_cast<size_t>(ParamIndex)] * In[InIndex];
    });
    return Out;
  }

  Vector vjp(const Vector &GradOut) const {
    Vector GradIn(InC * InH * InW);
    forEachTap([&](int OutIndex, int InIndex, int ParamIndex) {
      if (InIndex < 0)
        return;
      GradIn[InIndex] +=
          Kernels[static_cast<size_t>(ParamIndex)] * GradOut[OutIndex];
    });
    return GradIn;
  }
};

std::map<int, SeedConv> collectSeedConvs(const Network &Net) {
  std::map<int, SeedConv> Result;
  for (int I = 0; I < Net.numLayers(); ++I) {
    const auto *Conv = dyn_cast<Conv2DLayer>(&Net.layer(I));
    if (!Conv)
      continue;
    SeedConv S;
    S.InC = Conv->inChannels();
    S.InH = Conv->inHeight();
    S.InW = Conv->inWidth();
    S.OutC = Conv->outChannels();
    S.KH = Conv->kernelHeight();
    S.KW = Conv->kernelWidth();
    S.Stride = Conv->stride();
    S.Pad = Conv->padding();
    S.OutH = Conv->outHeight();
    S.OutW = Conv->outWidth();
    std::vector<double> Params;
    Conv->getParams(Params);
    size_t KernelCount =
        static_cast<size_t>(S.OutC) * S.InC * S.KH * S.KW;
    S.Kernels.assign(Params.begin(), Params.begin() + KernelCount);
    S.Bias.assign(Params.begin() + KernelCount, Params.end());
    Result.emplace(I, std::move(S));
  }
  return Result;
}

JacobianResult seedParamJacobian(const Network &Net,
                                 const std::map<int, SeedConv> &Convs,
                                 int LayerIndex, const Vector &X) {
  const auto *Target = cast<LinearLayer>(&Net.layer(LayerIndex));
  std::vector<Vector> Values;
  Values.push_back(X);
  for (int I = 0; I < Net.numLayers(); ++I) {
    auto It = Convs.find(I);
    Values.push_back(It != Convs.end()
                         ? It->second.apply(Values.back())
                         : Net.layer(I).apply(Values.back()));
  }
  int OutDim = Net.outputSize();
  Matrix M = Matrix::identity(OutDim);
  for (int I = Net.numLayers() - 1; I > LayerIndex; --I) {
    const Layer &L = Net.layer(I);
    Matrix Next(OutDim, L.inputSize());
    auto It = Convs.find(I);
    for (int R = 0; R < OutDim; ++R) {
      Vector GradOut = M.row(R);
      Vector GradIn;
      if (It != Convs.end())
        GradIn = It->second.vjp(GradOut);
      else if (const auto *Linear = dyn_cast<LinearLayer>(&L))
        GradIn = Linear->vjpLinear(GradOut);
      else
        GradIn = cast<ActivationLayer>(L).vjpLinearized(
            Values[static_cast<size_t>(I)], GradOut);
      Next.setRow(R, GradIn);
    }
    M = std::move(Next);
  }
  JacobianResult Result;
  Result.J = Matrix(OutDim, Target->numParams());
  Target->paramJacobian(M, Values[static_cast<size_t>(LayerIndex)],
                        Result.J);
  Result.Output = Values.back();
  return Result;
}

/// Seed-style row assembly for one point; returns a |row| checksum that
/// doubles as an optimization barrier.
double assembleRowsChecksum(const JacobianResult &Jr,
                            const OutputConstraint &C, int NumParams,
                            double RowMargin) {
  double Checksum = 0.0;
  for (int K = 0; K < C.numRows(); ++K) {
    std::vector<double> Coef(static_cast<size_t>(NumParams), 0.0);
    double Activity = 0.0;
    for (int O = 0; O < C.A.cols(); ++O) {
      double AKo = C.A(K, O);
      if (AKo == 0.0)
        continue;
      Activity += AKo * Jr.Output[O];
      const double *JRow = Jr.J.rowData(O);
      for (int E = 0; E < NumParams; ++E)
        Coef[static_cast<size_t>(E)] += AKo * JRow[E];
    }
    Checksum += std::fabs(C.B[K] - Activity - RowMargin) +
                std::fabs(Coef[0]);
  }
  return Checksum;
}

/// Times the full seed Jacobian/constraint-assembly phase (sequential,
/// per point, frozen PR-0 kernels).
double seedJacobianPhaseSeconds(const Network &Net, const PointSpec &Spec,
                                int LayerIndex, double RowMargin,
                                double *HiChecksum) {
  std::map<int, SeedConv> Convs = collectSeedConvs(Net);
  int NumParams =
      cast<LinearLayer>(&Net.layer(LayerIndex))->numParams();
  double Checksum = 0.0;
  WallTimer Timer;
  for (const SpecPoint &P : Spec)
    Checksum += assembleRowsChecksum(
        seedParamJacobian(Net, Convs, LayerIndex, P.X), P.Constraint,
        NumParams, RowMargin);
  double Seconds = Timer.seconds();
  if (HiChecksum)
    *HiChecksum = Checksum;
  return Seconds;
}

/// Same phase through today's per-point kernels (no batching).
double perPointPhaseSeconds(const Network &Net, const PointSpec &Spec,
                            int LayerIndex, double RowMargin) {
  int NumParams =
      cast<LinearLayer>(&Net.layer(LayerIndex))->numParams();
  double Checksum = 0.0;
  WallTimer Timer;
  for (const SpecPoint &P : Spec)
    Checksum += assembleRowsChecksum(
        paramJacobian(Net, LayerIndex, P.X,
                      P.Pattern ? &*P.Pattern : nullptr),
        P.Constraint, NumParams, RowMargin);
  (void)Checksum;
  return Timer.seconds();
}

/// Same phase through the batched engine (mirrors repairPoints'
/// batched Jacobian phase: one batch call + parallel row assembly).
double batchedPhaseSeconds(const Network &Net, const PointSpec &Spec,
                           int LayerIndex, double RowMargin) {
  int NumParams =
      cast<LinearLayer>(&Net.layer(LayerIndex))->numParams();
  std::vector<double> PerPoint(Spec.size(), 0.0);
  WallTimer Timer;
  std::vector<Vector> Xs;
  Xs.reserve(Spec.size());
  for (const SpecPoint &P : Spec)
    Xs.push_back(P.X);
  std::vector<JacobianResult> Jrs =
      paramJacobianBatch(Net, LayerIndex, Xs);
  parallelFor(0, static_cast<std::int64_t>(Spec.size()),
              [&](std::int64_t I) {
                PerPoint[static_cast<size_t>(I)] = assembleRowsChecksum(
                    Jrs[static_cast<size_t>(I)],
                    Spec[static_cast<size_t>(I)].Constraint, NumParams,
                    RowMargin);
              });
  return Timer.seconds();
}

} // namespace

int main(int argc, char **argv) {
  linalg::Determinism Tier = linalg::Determinism::Strict;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--tier") == 0 && I + 1 < argc) {
      ++I;
      if (std::strcmp(argv[I], "fast") == 0) {
        Tier = linalg::Determinism::Fast;
      } else if (std::strcmp(argv[I], "strict") != 0) {
        std::printf("unknown tier '%s' (expected strict|fast)\n", argv[I]);
        return 1;
      }
    }
  }
  // The paper uses 100/200/400/752 points on a 727k-parameter network;
  // our substrate is ~100x smaller, so the sweep is scaled to
  // 50/100/200 (documented in EXPERIMENTS.md).
  const int Sizes[] = {50, 100, 200};
  std::printf("=== Task 1: Pointwise repair of a conv image classifier "
              "(Tables 1 and 4), %s tier ===\n",
              linalg::toString(Tier));
  Task1Workload W = makeTask1Workload(200);
  std::printf("buggy network: %.1f%% validation accuracy, %.1f%% on %d "
              "adversarial images\n",
              100 * W.ValidationAccuracy, 100 * W.AdversarialAccuracy,
              W.Adversarials.size());
  std::vector<int> Layers = W.Net.parameterizedLayerIndices();
  std::printf("repairable layers:");
  for (int L : Layers)
    std::printf(" %d (%s)", L, W.Net.layer(L).describe().c_str());
  std::printf("\n\n");

  RepairEngine Engine;
  auto RunRepair = [&](int LayerIdx, const PointSpec &Spec,
                       RepairOptions Options = RepairOptions()) {
    Options.Determinism = Tier;
    return Engine
        .run(RepairRequest::points(RepairRequest::borrow(W.Net), LayerIdx,
                                   Spec, std::move(Options)))
        .Result;
  };

  TablePrinter Table1({"Points", "PR(BD) D", "T", "FT[1] D", "T",
                       "FT[2] D", "T", "MFT[1] E", "D", "T", "MFT[2] E",
                       "D", "T"});
  TablePrinter Table4({"Points", "Efficacy", "D best", "D worst",
                       "T fastest", "T slowest", "T bestD"});

  // Machine-readable trajectory output (BENCH_task1_points.json): per
  // spec size, the batched engine's Jacobian/constraint-assembly phase
  // vs the single-threaded seed per-point path, plus the Delta
  // divergence between the two (must stay ~1e-9).
  BenchJson Json("task1_points");
  // Honor an explicit PRDNN_NUM_THREADS; otherwise use at least 4
  // threads so the JSON tracks the multi-threaded engine.
  const int BenchThreads = std::getenv("PRDNN_NUM_THREADS")
                               ? defaultThreadCount()
                               : std::max(4, defaultThreadCount());

  const int AnchorCount = 40;
  for (int Size : Sizes) {
    PointSpec Spec = task1Spec(W, Size, AnchorCount);

    // --- Batched-engine ablation on the last repairable layer --------------
    {
      int AblationLayer = Layers.back();

      // Sanity: the frozen seed reference must produce bit-for-bit the
      // same Jacobian as the current engine (checked outside timers).
      {
        std::map<int, SeedConv> Convs = collectSeedConvs(W.Net);
        JacobianResult Ref =
            seedParamJacobian(W.Net, Convs, AblationLayer, Spec[0].X);
        JacobianResult Cur =
            paramJacobian(W.Net, AblationLayer, Spec[0].X);
        if (Ref.J.maxAbsDiff(Cur.J) != 0.0 ||
            Ref.Output.maxAbsDiff(Cur.Output) != 0.0) {
          std::fprintf(stderr,
                       "seed reference diverged from current engine\n");
          return 1;
        }
      }

      // Phase-only timings (no LP), min of three runs: wall-clock noise
      // on shared machines dwarfs the phase itself at small sizes.
      const int Reps = 3;
      double RowMargin = RepairOptions().RowMargin;

      // Seed baseline: frozen PR-0 per-point pipeline, single-threaded.
      double SeedChecksum = 0.0;
      double SeedSeconds = 1e99;
      for (int Rep = 0; Rep < Reps; ++Rep)
        SeedSeconds = std::min(
            SeedSeconds,
            seedJacobianPhaseSeconds(W.Net, Spec, AblationLayer,
                                     RowMargin, &SeedChecksum));
      // Current per-point path (today's kernels, no batching), 1 thread.
      setGlobalThreadCount(1);
      double PerPointSeconds = 1e99;
      for (int Rep = 0; Rep < Reps; ++Rep)
        PerPointSeconds = std::min(
            PerPointSeconds,
            perPointPhaseSeconds(W.Net, Spec, AblationLayer, RowMargin));
      // Batched engine.
      setGlobalThreadCount(BenchThreads);
      double BatchedSeconds = 1e99;
      for (int Rep = 0; Rep < Reps; ++Rep)
        BatchedSeconds = std::min(
            BatchedSeconds,
            batchedPhaseSeconds(W.Net, Spec, AblationLayer, RowMargin));

      // One full repair per path (LP included) for the Delta/status
      // comparison and the end-to-end stats.
      RepairOptions PerPointOptions;
      PerPointOptions.BatchedJacobians = false;
      setGlobalThreadCount(1);
      RepairResult PerPointRun =
          RunRepair(AblationLayer, Spec, PerPointOptions);
      setGlobalThreadCount(BenchThreads);
      RepairResult BatchRun = RunRepair(AblationLayer, Spec);

      double MaxDeltaDiff = 0.0;
      if (PerPointRun.Delta.size() == BatchRun.Delta.size())
        for (size_t P = 0; P < PerPointRun.Delta.size(); ++P)
          MaxDeltaDiff =
              std::max(MaxDeltaDiff,
                       std::fabs(PerPointRun.Delta[P] - BatchRun.Delta[P]));

      int SpecPoints = Size + AnchorCount;
      double SpeedupVsSeed =
          BatchedSeconds > 0.0 ? SeedSeconds / BatchedSeconds : 0.0;
      double SpeedupVsPerPoint =
          BatchedSeconds > 0.0 ? PerPointSeconds / BatchedSeconds : 0.0;
      Json.beginRecord();
      Json.add("points", SpecPoints);
      Json.add("rows", BatchRun.Stats.SpecRows);
      Json.add("tier", linalg::toString(Tier));
      Json.add("threads", BenchThreads);
      Json.add("layer", AblationLayer);
      Json.add("status_batched", toString(BatchRun.Status));
      Json.add("jacobian_seconds_seed_1t", SeedSeconds);
      Json.add("jacobian_seconds_perpoint_1t", PerPointSeconds);
      Json.add("jacobian_seconds_batched", BatchedSeconds);
      Json.add("jacobian_speedup_vs_seed", SpeedupVsSeed);
      Json.add("jacobian_speedup_vs_perpoint", SpeedupVsPerPoint);
      Json.add("lp_seconds", BatchRun.Stats.LpSeconds);
      Json.add("other_seconds", BatchRun.Stats.OtherSeconds);
      Json.add("total_seconds", BatchRun.Stats.TotalSeconds);
      Json.add("points_per_sec",
               BatchedSeconds > 0.0 ? SpecPoints / BatchedSeconds : 0.0);
      Json.add("max_delta_diff", MaxDeltaDiff);
      Json.add("seed_row_checksum", SeedChecksum);
      std::printf("[ablation] %d points: Jacobian phase %.3fs (seed, 1t) / "
                  "%.3fs (per-point, 1t) -> %.3fs (batched, %dt): "
                  "%.2fx vs seed, %.2fx vs per-point; max |Delta diff| = "
                  "%.3g\n",
                  SpecPoints, SeedSeconds, PerPointSeconds, BatchedSeconds,
                  BenchThreads, SpeedupVsSeed, SpeedupVsPerPoint,
                  MaxDeltaDiff);
    }
    // FT/MFT train on the same repair set, incl. the non-buggy anchors
    // ("In all cases PR, FT, and MFT were given the same repair set").
    Dataset RepairSet;
    for (int I = 0; I < Size; ++I)
      RepairSet.push(W.Adversarials.Inputs[I], W.Adversarials.Labels[I]);
    for (int I = 0; I < AnchorCount; ++I)
      RepairSet.push(W.Anchors.Inputs[I], W.Anchors.Labels[I]);

    // --- PR on every repairable layer --------------------------------------
    PrRow Pr;
    Pr.Total = static_cast<int>(Layers.size());
    for (int LayerIdx : Layers) {
      RepairResult Result = RunRepair(LayerIdx, Spec);
      if (Result.Status != RepairStatus::Success)
        continue;
      ++Pr.Feasible;
      double Drawdown =
          100 * (W.ValidationAccuracy -
                 Result.Repaired->accuracy(W.Validation.Inputs,
                                           W.Validation.Labels));
      double T = Result.Stats.TotalSeconds;
      Pr.FastestTime = std::min(Pr.FastestTime, T);
      Pr.SlowestTime = std::max(Pr.SlowestTime, T);
      Pr.WorstDrawdown = std::max(Pr.WorstDrawdown, Drawdown);
      if (Drawdown < Pr.BestDrawdown) {
        Pr.BestDrawdown = Drawdown;
        Pr.BestTime = T;
      }
    }

    // --- FT[1] / FT[2] -------------------------------------------------------
    FineTuneOptions Ft1;
    Ft1.LearningRate = 0.003;
    Ft1.BatchSize = 2;
    Ft1.MaxEpochs = 100;
    Ft1.TimeoutSeconds = 60.0;
    FineTuneOptions Ft2 = Ft1;
    Ft2.BatchSize = 16;
    Rng FtR1(4001), FtR2(4002);
    FineTuneResult FtA = fineTune(W.Net, RepairSet, Ft1, FtR1);
    FineTuneResult FtB = fineTune(W.Net, RepairSet, Ft2, FtR2);
    double FtAD = 100 * (W.ValidationAccuracy -
                         accuracy(FtA.Tuned, W.Validation.Inputs,
                                  W.Validation.Labels));
    double FtBD = 100 * (W.ValidationAccuracy -
                         accuracy(FtB.Tuned, W.Validation.Inputs,
                                  W.Validation.Labels));

    // --- MFT[1]/MFT[2]: best-drawdown layer ----------------------------------
    auto RunMft = [&](int BatchSize, uint64_t Seed) {
      double BestD = 1e9, BestE = 0.0, BestT = 0.0;
      for (int LayerIdx : Layers) {
        ModifiedFineTuneOptions Options;
        Options.LearningRate = 0.003;
        Options.BatchSize = BatchSize;
        Options.LayerIndex = LayerIdx;
        Options.MaxEpochs = 25;
        Rng R(Seed + LayerIdx);
        WallTimer Timer;
        ModifiedFineTuneResult Result =
            modifiedFineTune(W.Net, RepairSet, Options, R);
        double D = 100 * (W.ValidationAccuracy -
                          accuracy(Result.Tuned, W.Validation.Inputs,
                                   W.Validation.Labels));
        if (D < BestD) {
          BestD = D;
          BestE = 100 * Result.RepairAccuracy;
          BestT = Timer.seconds();
        }
      }
      return std::tuple<double, double, double>(BestE, BestD, BestT);
    };
    auto [MftAE, MftAD, MftAT] = RunMft(2, 4101);
    auto [MftBE, MftBD, MftBT] = RunMft(16, 4201);

    Table1.addRow({std::to_string(Size), formatDouble(Pr.BestDrawdown, 1),
                   formatDuration(Pr.BestTime), formatDouble(FtAD, 1),
                   formatDuration(FtA.Seconds), formatDouble(FtBD, 1),
                   formatDuration(FtB.Seconds), formatDouble(MftAE, 1),
                   formatDouble(MftAD, 1), formatDuration(MftAT),
                   formatDouble(MftBE, 1), formatDouble(MftBD, 1),
                   formatDuration(MftBT)});
    Table4.addRow({std::to_string(Size),
                   std::to_string(Pr.Feasible) + " / " +
                       std::to_string(Pr.Total),
                   formatDouble(Pr.BestDrawdown, 1),
                   formatDouble(Pr.WorstDrawdown, 1),
                   formatDuration(Pr.FastestTime),
                   formatDuration(Pr.SlowestTime),
                   formatDuration(Pr.BestTime)});
  }

  std::printf("Table 1 (D: drawdown %%, T: time; PR/FT efficacy is 100%%, "
              "E: MFT efficacy %%):\n");
  Table1.print(std::cout);
  std::printf("\nTable 4 (extended per-layer PR results):\n");
  Table4.print(std::cout);

  std::string JsonFile = Json.write();
  if (!JsonFile.empty())
    std::printf("\nwrote %s\n", JsonFile.c_str());
  return 0;
}
