//===- bench/BenchUtil.cpp ---------------------------------------------------===//

#include "BenchUtil.h"

#include "linalg/Kernels.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <thread>

// Provenance macros, defined by CMakeLists.txt for the bench_util
// target; fall back to "unknown" so BenchUtil.cpp still compiles when
// pulled into an ad-hoc build.
#ifndef PRDNN_GIT_SHA
#define PRDNN_GIT_SHA "unknown"
#endif
#ifndef PRDNN_BUILD_TYPE
#define PRDNN_BUILD_TYPE "unknown"
#endif

using namespace prdnn;
using namespace prdnn::bench;
using namespace prdnn::data;

void BenchJson::beginRecord() { Records.emplace_back(); }

void BenchJson::add(const std::string &Key, double Value) {
  assert(!Records.empty() && "beginRecord before add");
  Records.back().push_back({Key, Value});
}

void BenchJson::add(const std::string &Key, int Value) {
  assert(!Records.empty() && "beginRecord before add");
  Records.back().push_back({Key, Value});
}

void BenchJson::add(const std::string &Key, const std::string &Value) {
  assert(!Records.empty() && "beginRecord before add");
  Records.back().push_back({Key, Value});
}

std::string BenchJson::write() const {
  std::string FileName = "BENCH_" + Name + ".json";
  std::ofstream Os(FileName);
  if (!Os)
    return "";
  Os << "{\"bench\": \"" << Name << "\", \"git_sha\": \"" PRDNN_GIT_SHA
     << "\", \"build_type\": \"" PRDNN_BUILD_TYPE
     << "\", \"hardware_concurrency\": "
     << std::thread::hardware_concurrency()
     << ", \"kernel_backend\": \"" << linalg::kernelBackendName()
     << "\", \"kernel_backend_simd\": "
     << (linalg::kernelBackendIsSimd() ? 1 : 0) << ", \"records\": [";
  for (size_t R = 0; R < Records.size(); ++R) {
    Os << (R == 0 ? "\n" : ",\n") << "  {";
    const auto &Record = Records[R];
    for (size_t E = 0; E < Record.size(); ++E) {
      if (E != 0)
        Os << ", ";
      Os << '"' << Record[E].first << "\": ";
      if (const double *D = std::get_if<double>(&Record[E].second)) {
        if (!std::isfinite(*D)) {
          // NaN/Inf are not valid JSON literals.
          Os << "null";
        } else {
          char Buffer[32];
          std::snprintf(Buffer, sizeof(Buffer), "%.9g", *D);
          Os << Buffer;
        }
      } else if (const int *I = std::get_if<int>(&Record[E].second)) {
        Os << *I;
      } else {
        Os << '"';
        for (char C : std::get<std::string>(Record[E].second)) {
          if (C == '"' || C == '\\')
            Os << '\\';
          Os << C;
        }
        Os << '"';
      }
    }
    Os << "}";
  }
  Os << "\n]}\n";
  Os.close(); // surface close-time write errors in the stream state
  return Os ? FileName : "";
}

double prdnn::bench::percentile(std::vector<double> Values, double P) {
  if (Values.empty())
    return 0.0;
  std::sort(Values.begin(), Values.end());
  size_t Index = static_cast<size_t>(
      std::min<double>(static_cast<double>(Values.size()) - 1.0,
                       P * static_cast<double>(Values.size())));
  return Values[Index];
}

void prdnn::bench::addLatencyRecord(BenchJson &Json,
                                    const obs::HistogramSnapshot &Latency) {
  Json.add("p50_latency_seconds", Latency.quantile(0.50));
  Json.add("p95_latency_seconds", Latency.quantile(0.95));
  Json.add("p99_latency_seconds", Latency.quantile(0.99));
}

void prdnn::bench::writeLatencyHistogram(
    std::ostream &Os, const obs::HistogramSnapshot &Latency) {
  for (std::uint64_t Count : Latency.Counts)
    Os << "lat_bucket " << Count << "\n";
  Os << "lat_sum " << Latency.Sum << "\n";
}

obs::HistogramSnapshot prdnn::bench::latencySnapshotFromCounts(
    const std::vector<std::uint64_t> &Counts, double Sum) {
  obs::HistogramSnapshot Snapshot;
  Snapshot.Edges = obs::defaultLatencyBuckets();
  Snapshot.Counts.assign(Snapshot.Edges.size() + 1, 0);
  if (Counts.size() == Snapshot.Counts.size()) {
    Snapshot.Counts = Counts;
    Snapshot.Sum = Sum;
  }
  return Snapshot;
}

Task1Workload prdnn::bench::makeTask1Workload(int AdversarialCount) {
  Task1Workload W;
  Rng R(1001);
  W.Net = trainShapeClassifier(/*TrainCount=*/1800, /*Epochs=*/8, R);
  Rng EvalR(1002);
  W.Validation = makeShapeWorld(450, EvalR);
  Rng AdvR(1003);
  W.Adversarials = makeNaturalAdversarials(W.Net, AdversarialCount, AdvR);
  // Anchor pool: fresh in-distribution images the network already gets
  // right (disjoint from the validation/drawdown set by seed).
  Rng AnchorR(1004);
  while (W.Anchors.size() < 200) {
    int Shape = W.Anchors.size() % kShapeClasses;
    Vector Image = makeShapeImage(Shape, AnchorR);
    if (W.Net.classify(Image) == Shape)
      W.Anchors.push(std::move(Image), Shape);
  }
  W.ValidationAccuracy =
      accuracy(W.Net, W.Validation.Inputs, W.Validation.Labels);
  W.AdversarialAccuracy =
      accuracy(W.Net, W.Adversarials.Inputs, W.Adversarials.Labels);
  return W;
}

PointSpec prdnn::bench::task1Spec(const Task1Workload &W, int Count,
                                  int AnchorCount) {
  assert(Count <= W.Adversarials.size() && "repair pool too small");
  assert(AnchorCount <= W.Anchors.size() && "anchor pool too small");
  PointSpec Spec;
  for (int I = 0; I < Count; ++I)
    Spec.push_back({W.Adversarials.Inputs[I],
                    classificationConstraint(kShapeClasses,
                                             W.Adversarials.Labels[I], 1e-4),
                    std::nullopt});
  for (int I = 0; I < AnchorCount; ++I)
    Spec.push_back({W.Anchors.Inputs[I],
                    classificationConstraint(kShapeClasses,
                                             W.Anchors.Labels[I], 1e-4),
                    std::nullopt});
  return Spec;
}

Task2Workload prdnn::bench::makeTask2Workload(int MaxLines) {
  Task2Workload W;
  Rng R(2001);
  W.Net = trainDigitClassifier(/*Hidden=*/32, /*TrainCount=*/2500,
                               /*Epochs=*/14, R);
  Rng EvalR(2002);
  W.CleanTest = makeDigits(1000, EvalR);
  Rng FogR(2003);
  for (int I = 0; I < W.CleanTest.size(); ++I)
    W.FogTest.push(fogCorrupt(W.CleanTest.Inputs[I], kDigitImage,
                              kDigitImage, FogR.uniform(0.5, 0.75), FogR),
                   W.CleanTest.Labels[I]);

  // Repair lines: clean digit -> its fogged version, anchored at
  // correctly-classified clean images (as in the paper's construction).
  Rng LineR(2004);
  int Correct2 = 0;
  while (static_cast<int>(W.Lines.size()) < MaxLines) {
    int Digit = static_cast<int>(W.Lines.size()) % kDigitClasses;
    Vector Clean = makeDigitImage(Digit, LineR);
    if (W.Net.classify(Clean) != Digit)
      continue;
    Vector Fog = fogCorrupt(Clean, kDigitImage, kDigitImage,
                            LineR.uniform(0.5, 0.75), LineR);
    if (W.Net.classify(Fog) == Digit)
      ++Correct2;
    W.Lines.push_back(Task2Workload::Line{std::move(Clean), std::move(Fog),
                                          Digit});
  }
  W.CleanAccuracy = accuracy(W.Net, W.CleanTest.Inputs, W.CleanTest.Labels);
  W.FogAccuracy = accuracy(W.Net, W.FogTest.Inputs, W.FogTest.Labels);
  W.LineEndpointAccuracy =
      MaxLines == 0 ? 0.0
                    : static_cast<double>(Correct2) / MaxLines;
  return W;
}

PolytopeSpec prdnn::bench::task2Spec(const Task2Workload &W, int NumLines,
                                     double Margin) {
  assert(NumLines <= static_cast<int>(W.Lines.size()) && "too few lines");
  PolytopeSpec Spec;
  for (int I = 0; I < NumLines; ++I)
    Spec.push_back(SpecPolytope{
        SegmentPolytope{W.Lines[static_cast<size_t>(I)].Clean,
                        W.Lines[static_cast<size_t>(I)].Fogged},
        classificationConstraint(kDigitClasses,
                                 W.Lines[static_cast<size_t>(I)].Label,
                                 Margin)});
  return Spec;
}

Dataset prdnn::bench::task2Samples(const Task2Workload &W, int NumLines,
                                   int Count, Rng &R) {
  Dataset Data;
  for (int I = 0; I < Count; ++I) {
    const Task2Workload::Line &Line =
        W.Lines[static_cast<size_t>(I % NumLines)];
    double T = R.uniform();
    Vector X = Line.Fogged;
    X -= Line.Clean;
    X *= T;
    X += Line.Clean;
    Data.push(std::move(X), Line.Label);
  }
  return Data;
}

Task3Workload prdnn::bench::makeTask3Workload(int NumRepairSlices,
                                              int NumOtherSlices,
                                              int SetSize) {
  Task3Workload W;
  Rng R(3001);
  W.Net = trainAcasNetwork(/*Hidden=*/24, /*TrainCount=*/8000,
                           /*Epochs=*/16, R);
  Rng TestR(3002);
  Dataset Policy = makeAcasDataset(3000, TestR);
  W.PolicyAccuracy = accuracy(W.Net, Policy.Inputs, Policy.Labels);

  // Violation scan helper over a slice (coarse grid).
  auto SliceViolations = [&](const std::vector<Vector> &Slice,
                             std::vector<Vector> *Out) {
    int Violations = 0;
    const int Grid = 16;
    for (int A = 0; A <= Grid; ++A)
      for (int B = 0; B <= Grid; ++B) {
        double SA = static_cast<double>(A) / Grid;
        double SB = static_cast<double>(B) / Grid;
        Vector X = Slice[0] * ((1 - SA) * (1 - SB));
        X += Slice[1] * (SA * (1 - SB));
        X += Slice[2] * (SA * SB);
        X += Slice[3] * ((1 - SA) * SB);
        if (!data::acasSafeAdvisory(W.Net.classify(X))) {
          ++Violations;
          if (Out)
            Out->push_back(std::move(X));
        }
      }
    return Violations;
  };

  // Repair slices: randomly-selected 2-D planes containing violations.
  Rng SliceR(3003);
  int Scanned = 0;
  while (static_cast<int>(W.RepairSlices.size()) < NumRepairSlices &&
         Scanned < 20000) {
    ++Scanned;
    std::vector<Vector> Slice = data::randomSafeSlice(SliceR);
    if (SliceViolations(Slice, nullptr) > 0)
      W.RepairSlices.push_back(std::move(Slice));
  }

  // Generalization set: counterexamples harvested from *other*
  // violating slices (at least NumOtherSlices of them, or until the
  // set is full).
  int OtherSlicesUsed = 0;
  while (static_cast<int>(W.Generalization.size()) < SetSize &&
         Scanned < 60000) {
    ++Scanned;
    std::vector<Vector> Slice = data::randomSafeSlice(SliceR);
    std::vector<Vector> Found;
    if (SliceViolations(Slice, &Found) == 0)
      continue;
    ++OtherSlicesUsed;
    for (Vector &X : Found) {
      if (static_cast<int>(W.Generalization.size()) >= SetSize)
        break;
      W.Generalization.push_back(std::move(X));
    }
    if (OtherSlicesUsed >= NumOtherSlices &&
        static_cast<int>(W.Generalization.size()) >= SetSize)
      break;
  }

  // Drawdown set: random states the buggy network already handles
  // correctly (matching the ground-truth policy), same size.
  Rng DrawR(3004);
  while (W.Drawdown.size() < SetSize) {
    Vector X(data::kAcasInputs);
    for (int J = 0; J < data::kAcasInputs; ++J)
      X[J] = DrawR.uniform(-1.0, 1.0);
    int Truth = data::acasAdvisory(X);
    if (W.Net.classify(X) == Truth)
      W.Drawdown.push(std::move(X), Truth);
  }
  return W;
}

PointSpec prdnn::bench::task3Spec(const Task3Workload &W,
                                  double *LinRegionsSeconds,
                                  int *NumRegions, Dataset *FtSamples) {
  PolytopeSpec Raw;
  for (const auto &Slice : W.RepairSlices)
    Raw.push_back(SpecPolytope{
        PlanePolytope{Slice},
        classificationConstraint(data::kAcasAdvisories, data::AcasCoc)});
  PointSpec Points = keyPointSpec(W.Net, Raw, LinRegionsSeconds, NumRegions);
  // Strengthen the disjunctive "COC or weak-left" property per key
  // point to whichever advisory the buggy network ranks higher; any
  // network satisfying the strengthened spec satisfies the property.
  for (SpecPoint &P : Points) {
    Vector Y = evaluateWithPattern(W.Net, P.X, *P.Pattern);
    int Target = Y[data::AcasCoc] >= Y[data::AcasWeakLeft]
                     ? data::AcasCoc
                     : data::AcasWeakLeft;
    P.Constraint =
        classificationConstraint(data::kAcasAdvisories, Target, 1e-5);
    if (FtSamples)
      FtSamples->push(P.X, Target);
  }
  return Points;
}
