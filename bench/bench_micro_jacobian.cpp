//===- bench/bench_micro_jacobian.cpp - Jacobian microbenchmarks ---------------===//
//
// RQ4 support: cost of the closed-form parameter Jacobian per layer of
// the Task-1 conv architecture (the paper's Figure 7(b) shows Jacobians
// dominating its PyTorch-based pipeline; ours are cheap, which shifts
// the time budget to the LP - recorded in EXPERIMENTS.md).
//
//===----------------------------------------------------------------------===//

#include "nn/ActivationLayers.h"
#include "nn/Jacobian.h"
#include "nn/LinearLayers.h"
#include "nn/PoolLayers.h"
#include "support/Rng.h"

#include <benchmark/benchmark.h>

using namespace prdnn;

namespace {

Network makeConvNet(Rng &R) {
  Network Net;
  auto RandomConv = [&R](int InC, int InH, int InW, int OutC, int K) {
    std::vector<double> Kernels(
        static_cast<size_t>(OutC) * InC * K * K);
    for (double &V : Kernels)
      V = 0.3 * R.normal();
    return std::make_unique<Conv2DLayer>(InC, InH, InW, OutC, K, K, 1, 1,
                                         std::move(Kernels),
                                         std::vector<double>(OutC, 0.0));
  };
  auto RandomFc = [&R](int Out, int In) {
    Matrix W(Out, In);
    for (int I = 0; I < Out; ++I)
      for (int J = 0; J < In; ++J)
        W(I, J) = 0.3 * R.normal();
    return std::make_unique<FullyConnectedLayer>(std::move(W), Vector(Out));
  };
  Net.addLayer(RandomConv(3, 16, 16, 6, 3));
  Net.addLayer(std::make_unique<ReLULayer>(6 * 16 * 16));
  Net.addLayer(std::make_unique<MaxPool2DLayer>(6, 16, 16, 2, 2, 2));
  Net.addLayer(RandomConv(6, 8, 8, 8, 3));
  Net.addLayer(std::make_unique<ReLULayer>(8 * 8 * 8));
  Net.addLayer(std::make_unique<MaxPool2DLayer>(8, 8, 8, 2, 2, 2));
  Net.addLayer(RandomFc(24, 8 * 4 * 4));
  Net.addLayer(std::make_unique<ReLULayer>(24));
  Net.addLayer(RandomFc(9, 24));
  return Net;
}

void BM_ParamJacobian(benchmark::State &State) {
  Rng R(11);
  Network Net = makeConvNet(R);
  std::vector<int> Layers = Net.parameterizedLayerIndices();
  int LayerIdx = Layers[static_cast<size_t>(State.range(0))];
  Vector X(Net.inputSize());
  for (int I = 0; I < X.size(); ++I)
    X[I] = R.uniform();
  for (auto _ : State) {
    JacobianResult Jr = paramJacobian(Net, LayerIdx, X);
    benchmark::DoNotOptimize(Jr.J.rows());
  }
  State.SetLabel(Net.layer(LayerIdx).describe());
}

void BM_ForwardPass(benchmark::State &State) {
  Rng R(12);
  Network Net = makeConvNet(R);
  Vector X(Net.inputSize());
  for (int I = 0; I < X.size(); ++I)
    X[I] = R.uniform();
  for (auto _ : State) {
    Vector Y = Net.evaluate(X);
    benchmark::DoNotOptimize(Y[0]);
  }
}

} // namespace

BENCHMARK(BM_ParamJacobian)->Arg(0)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ForwardPass)->Unit(benchmark::kMicrosecond);
