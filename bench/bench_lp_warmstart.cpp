//===- bench/bench_lp_warmstart.cpp - warm bases + sharded sweeps ------------===//
//
// The two LP-phase optimizations of the warm-start PR, measured and
// self-checked:
//
//  1. Basis replay: a cold solve exports its terminal basis
//     (SimplexOptions::ExportBasis); re-solving the identical LP from
//     that basis (SimplexOptions::WarmBasis) must terminate at zero
//     pivots with the bit-identical solution. Reported as cold vs warm
//     seconds and pivots/sec, per LP size.
//
//  2. Engine-level warm resubmission and sharded sweeps: an auto-layer
//     sweep runs cold, then resubmits on the same engine (every LP now
//     replays its cached basis: BasisHits > 0, zero simplex
//     iterations), and the cold sweep is re-run at 1/4/8 pool threads
//     with EngineOptions::SweepShards fanning the per-layer attempts
//     across LpScheduler shards. Reported as sweep wall-clock per
//     thread count.
//
// Self-checking: exits non-zero if any warm, resubmitted, or sharded
// run diverges by a single bit from its cold/serial baseline (status,
// X, duals, objective, Delta), if a replay pivots, or if a
// resubmission misses the basis cache. Run with --smoke (CI) for
// reduced sizes and repeats.
//
// Sweep speedups track core count (every record stamps the host's
// hardware_concurrency): on a 1-core container shard threads
// time-slice one core, so the 4/8-thread rows hover at ~1x and only
// become meaningful on CI-class multicore hosts. The replay and
// resubmission speedups are core-count independent (they eliminate
// pivots, not serialize them).
//
// Emits BENCH_lp_warmstart.json, one record per measured
// configuration ("phase": "replay" | "resubmit" | "sweep").
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "api/RepairEngine.h"
#include "lp/Simplex.h"
#include "nn/ActivationLayers.h"
#include "nn/LinearLayers.h"
#include "support/Parallel.h"
#include "support/Rng.h"
#include "support/Table.h"
#include "support/Timer.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

using namespace prdnn;
using namespace prdnn::lp;
using namespace prdnn::bench;

namespace {

/// Dense feasible LP with M rows and M/2 bounded variables (same
/// construction as bench_lp_kernels): mixed <= / >= / two-sided rows
/// around a witness point keep both phases pivoting.
LinearProgram makeDenseLp(int M, uint64_t Seed) {
  int Vars = M / 2;
  Rng R(Seed);
  LinearProgram P;
  std::vector<double> Witness(static_cast<size_t>(Vars));
  for (int J = 0; J < Vars; ++J) {
    P.addVariable(-10.0, 10.0, R.normal());
    Witness[static_cast<size_t>(J)] = R.uniform(-5.0, 5.0);
  }
  for (int I = 0; I < M; ++I) {
    std::vector<int> Index(static_cast<size_t>(Vars));
    std::vector<double> Value(static_cast<size_t>(Vars));
    double Activity = 0.0;
    for (int J = 0; J < Vars; ++J) {
      Index[static_cast<size_t>(J)] = J;
      double C = R.normal();
      Value[static_cast<size_t>(J)] = C;
      Activity += C * Witness[static_cast<size_t>(J)];
    }
    double Slack = R.uniform(0.1, 1.5);
    if (I % 3 == 0)
      P.addRow(std::move(Index), std::move(Value), Activity - Slack,
               Activity + Slack);
    else if (I % 3 == 1)
      P.addRowLe(std::move(Index), std::move(Value), Activity + Slack);
    else
      P.addRowGe(std::move(Index), std::move(Value), Activity - Slack);
  }
  return P;
}

bool sameBits(const std::vector<double> &A, const std::vector<double> &B) {
  return A.size() == B.size() &&
         (A.empty() ||
          std::memcmp(A.data(), B.data(), A.size() * sizeof(double)) == 0);
}

bool sameBits(double A, double B) {
  return std::memcmp(&A, &B, sizeof(double)) == 0;
}

/// Bitwise LpSolution agreement (status, X, duals, objective).
bool sameSolution(const LpSolution &A, const LpSolution &B) {
  return A.Status == B.Status && sameBits(A.X, B.X) &&
         sameBits(A.RowDuals, B.RowDuals) &&
         sameBits(A.Objective, B.Objective);
}

/// Bitwise RepairResult agreement (status, Delta, norms).
bool sameResult(const RepairResult &A, const RepairResult &B) {
  return A.Status == B.Status && sameBits(A.Delta, B.Delta) &&
         sameBits(A.DeltaL1, B.DeltaL1) && sameBits(A.DeltaLInf, B.DeltaLInf);
}

Vector randomVector(Rng &R, int Size, double Scale = 1.0) {
  Vector V(Size);
  for (int I = 0; I < Size; ++I)
    V[I] = Scale * R.normal();
  return V;
}

Matrix randomMatrix(Rng &R, int Rows, int Cols, double Scale = 1.0) {
  Matrix M(Rows, Cols);
  for (int I = 0; I < Rows; ++I)
    for (int J = 0; J < Cols; ++J)
      M(I, J) = Scale * R.normal();
  return M;
}

/// 16 -> 32 x4 -> 8 ReLU classifier: five parameterized layers, so an
/// auto-layer sweep has five independent attempts to shard.
Network makeSweepNet(Rng &R) {
  Network Net;
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      randomMatrix(R, 32, 16, 0.7), randomVector(R, 32, 0.3)));
  Net.addLayer(std::make_unique<ReLULayer>(32));
  for (int I = 0; I < 3; ++I) {
    Net.addLayer(std::make_unique<FullyConnectedLayer>(
        randomMatrix(R, 32, 32, 0.6), randomVector(R, 32, 0.3)));
    Net.addLayer(std::make_unique<ReLULayer>(32));
  }
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      randomMatrix(R, 8, 32, 0.7), randomVector(R, 8, 0.3)));
  return Net;
}

PointSpec makeFlipSpec(const Network &Net, Rng &R, int Count) {
  PointSpec Spec;
  for (int I = 0; I < Count; ++I) {
    Vector X = randomVector(R, Net.inputSize());
    Vector Y = Net.evaluate(X);
    int Top = Y.argmax();
    int Target = Top;
    if (I % 3 == 0) {
      double Best = -1e300;
      for (int C = 0; C < Y.size(); ++C)
        if (C != Top && Y[C] > Best) {
          Best = Y[C];
          Target = C;
        }
    }
    Spec.push_back({std::move(X),
                    classificationConstraint(Net.outputSize(), Target, 1e-3),
                    std::nullopt});
  }
  return Spec;
}

double ratio(double Num, double Den) { return Den > 0.0 ? Num / Den : 0.0; }

} // namespace

int main(int argc, char **argv) {
  bool Smoke = false;
  for (int I = 1; I < argc; ++I)
    Smoke = Smoke || std::strcmp(argv[I], "--smoke") == 0;
  const int Repeats = Smoke ? 1 : 3;
  int SavedThreads = globalThreadCount();

  std::printf("=== Warm-start basis replay + sharded sweeps%s ===\n\n",
              Smoke ? " (smoke)" : "");

  BenchJson Json("lp_warmstart");
  bool Ok = true;
  auto Check = [&Ok](bool Cond, const char *What) {
    if (!Cond) {
      std::printf("DETERMINISM CHECK FAILED: %s\n", What);
      Ok = false;
    }
  };

  // --- 1. LP-level exact basis replay ---------------------------------------
  {
    TablePrinter Table({"M", "cold(s)", "warm(s)", "speedup", "cold pivots",
                        "warm pivots", "cold pivots/s"});
    std::vector<int> Sizes =
        Smoke ? std::vector<int>{64, 256} : std::vector<int>{64, 256, 1024};
    for (int M : Sizes) {
      LinearProgram P = makeDenseLp(M, 52000 + static_cast<uint64_t>(M));

      SimplexOptions ColdOpts;
      ColdOpts.ExportBasis = true;
      LpSolution Cold;
      double ColdSeconds = 1e300;
      for (int Rep = 0; Rep < Repeats; ++Rep) {
        WallTimer Timer;
        Cold = solveLp(P, ColdOpts);
        ColdSeconds = std::min(ColdSeconds, Timer.seconds());
      }
      Check(Cold.Status == SolveStatus::Optimal, "cold workload not Optimal");
      if (Cold.Status != SolveStatus::Optimal)
        break;

      SimplexOptions WarmOpts;
      WarmOpts.WarmBasis = Cold.OptimalBasis.get();
      LpSolution Warm;
      double WarmSeconds = 1e300;
      for (int Rep = 0; Rep < Repeats; ++Rep) {
        WallTimer Timer;
        Warm = solveLp(P, WarmOpts);
        WarmSeconds = std::min(WarmSeconds, Timer.seconds());
      }
      Check(Warm.WarmStarted, "replay did not warm-start");
      Check(Warm.Stats.Pivots == 0, "replay pivoted");
      Check(sameSolution(Warm, Cold), "replay diverged from cold bits");

      Json.beginRecord();
      Json.add("phase", std::string("replay"));
      Json.add("m", M);
      Json.add("smoke", Smoke ? 1 : 0);
      Json.add("cold_seconds", ColdSeconds);
      Json.add("warm_seconds", WarmSeconds);
      Json.add("replay_speedup", ratio(ColdSeconds, WarmSeconds));
      Json.add("cold_pivots", Cold.Stats.Pivots);
      Json.add("warm_pivots", Warm.Stats.Pivots);
      Json.add("cold_pivots_per_sec",
               ratio(Cold.Stats.Pivots, ColdSeconds));
      Json.add("bit_identical", sameSolution(Warm, Cold) ? 1 : 0);
      Table.addRow({std::to_string(M), formatDouble(ColdSeconds, 4),
                    formatDouble(WarmSeconds, 4),
                    formatDouble(ratio(ColdSeconds, WarmSeconds), 2),
                    std::to_string(Cold.Stats.Pivots),
                    std::to_string(Warm.Stats.Pivots),
                    formatDouble(ratio(Cold.Stats.Pivots, ColdSeconds), 1)});
    }
    std::printf("-- exact basis replay (cold export -> warm re-solve) --\n");
    Table.print(std::cout);
  }

  // --- 2. Engine warm resubmission + sharded sweep wall-clock ---------------
  Rng R(77001);
  auto Net = std::make_shared<Network>(makeSweepNet(R));
  PointSpec Spec = makeFlipSpec(*Net, R, Smoke ? 12 : 24);
  RepairRequest Request;
  Request.Net = Net;
  Request.Spec = Spec;
  Request.LayerIndex = kAutoLayer;

  // Serial cold baseline (1 thread, serialized attempts) - also the
  // bit-identity reference for every other configuration.
  setGlobalThreadCount(1);
  EngineOptions SerialOpts;
  SerialOpts.SweepShards = 1;
  double SerialSeconds = 1e300;
  RepairReport Baseline;
  for (int Rep = 0; Rep < Repeats; ++Rep) {
    RepairEngine Engine(SerialOpts); // fresh engine: cold cache
    WallTimer Timer;
    Baseline = Engine.run(Request);
    SerialSeconds = std::min(SerialSeconds, Timer.seconds());
  }
  Check(Baseline.succeeded(), "serial sweep baseline failed");

  // Warm resubmission: second run on one engine replays every basis.
  {
    RepairEngine Engine(SerialOpts);
    RepairReport ColdRun = Engine.run(Request);
    WallTimer Timer;
    RepairReport WarmRun = Engine.run(Request);
    double WarmSeconds = Timer.seconds();
    Check(sameResult(WarmRun.Result, ColdRun.Result),
          "warm resubmission diverged from cold bits");
    Check(WarmRun.Result.Stats.BasisHits > 0, "resubmission had no basis hits");
    Check(WarmRun.Result.Stats.BasisMisses == 0,
          "resubmission missed the basis cache");
    Check(WarmRun.Result.Stats.LpIterations <
              ColdRun.Result.Stats.LpIterations,
          "resubmission did not reduce simplex iterations");

    std::printf("\n-- warm resubmission (one engine, same request twice) --\n");
    std::printf("cold: %d simplex iterations; warm: %d iterations, "
                "%d basis hits, %.4fs (%.2fx vs serial cold)\n",
                ColdRun.Result.Stats.LpIterations,
                WarmRun.Result.Stats.LpIterations,
                WarmRun.Result.Stats.BasisHits, WarmSeconds,
                ratio(SerialSeconds, WarmSeconds));

    Json.beginRecord();
    Json.add("phase", std::string("resubmit"));
    Json.add("smoke", Smoke ? 1 : 0);
    Json.add("cold_seconds", SerialSeconds);
    Json.add("warm_seconds", WarmSeconds);
    Json.add("warm_speedup", ratio(SerialSeconds, WarmSeconds));
    Json.add("cold_lp_iterations", ColdRun.Result.Stats.LpIterations);
    Json.add("warm_lp_iterations", WarmRun.Result.Stats.LpIterations);
    Json.add("basis_hits", WarmRun.Result.Stats.BasisHits);
    Json.add("basis_misses", WarmRun.Result.Stats.BasisMisses);
    Json.add("bit_identical",
             sameResult(WarmRun.Result, ColdRun.Result) ? 1 : 0);
  }

  // Sharded cold sweeps at 1/4/8 pool threads.
  {
    TablePrinter Table({"threads", "shards", "seconds", "speedup",
                        "attempts", "identical"});
    std::printf("\n-- sharded auto-layer sweep (cold cache per run) --\n");
    for (int Threads : {1, 4, 8}) {
      setGlobalThreadCount(Threads);
      EngineOptions Opts;
      Opts.SweepShards = Threads;
      double Seconds = 1e300;
      RepairReport Report;
      for (int Rep = 0; Rep < Repeats; ++Rep) {
        RepairEngine Engine(Opts); // fresh engine: cold cache
        WallTimer Timer;
        Report = Engine.run(Request);
        Seconds = std::min(Seconds, Timer.seconds());
      }
      bool Identical = sameResult(Report.Result, Baseline.Result) &&
                       Report.RepairedLayer == Baseline.RepairedLayer &&
                       Report.Sweep.size() == Baseline.Sweep.size();
      for (size_t C = 0; Identical && C < Baseline.Sweep.size(); ++C)
        Identical = Report.Sweep[C].LayerIndex == Baseline.Sweep[C].LayerIndex &&
                    Report.Sweep[C].Status == Baseline.Sweep[C].Status &&
                    sameBits(Report.Sweep[C].DeltaL1,
                             Baseline.Sweep[C].DeltaL1) &&
                    sameBits(Report.Sweep[C].DeltaLInf,
                             Baseline.Sweep[C].DeltaLInf);
      Check(Identical, "sharded sweep diverged from the serial baseline");

      Json.beginRecord();
      Json.add("phase", std::string("sweep"));
      Json.add("threads", Threads);
      Json.add("shards", Threads);
      Json.add("smoke", Smoke ? 1 : 0);
      Json.add("serial_seconds", SerialSeconds);
      Json.add("sweep_seconds", Seconds);
      Json.add("sweep_speedup", ratio(SerialSeconds, Seconds));
      Json.add("attempts", static_cast<int>(Report.Sweep.size()));
      Json.add("bit_identical", Identical ? 1 : 0);
      Table.addRow({std::to_string(Threads), std::to_string(Threads),
                    formatDouble(Seconds, 4),
                    formatDouble(ratio(SerialSeconds, Seconds), 2),
                    std::to_string(static_cast<int>(Report.Sweep.size())),
                    Identical ? "yes" : "NO"});
    }
    Table.print(std::cout);
  }
  setGlobalThreadCount(SavedThreads);

  std::string JsonFile = Json.write();
  if (!JsonFile.empty())
    std::printf("\nwrote %s\n", JsonFile.c_str());

  std::printf("%s\n",
              Ok ? "bench_lp_warmstart: warm replays, resubmissions, and "
                   "sharded sweeps bit-identical to the cold serial baseline"
                 : "bench_lp_warmstart: DETERMINISM CHECK FAILED");
  return Ok ? 0 : 1;
}
