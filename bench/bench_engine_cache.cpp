//===- bench/bench_engine_cache.cpp - warm vs cold engine caching ------------===//
//
// The repeated-spec server workload the artifact cache targets: a fixed
// mix of point- and polytope-repair requests is pushed through one
// RepairEngine several times over (as a repair service sees the same
// (network, layer, spec) keys again and again). The first drain is
// cold (every artifact computed and inserted); subsequent drains are
// warm (Jacobian row blocks, SyReNN transforms, and pattern batches
// come from the cache). A cache-off engine provides the baseline.
//
// Emits BENCH_engine_cache.json: cold / warm / cache-off jobs-per-sec,
// warm-over-cold speedup, hit rate, and bytes held at 1, 4, and 8
// workers, plus the max Delta divergence of every job against the
// cache-free serial wrappers. Self-checking: exits non-zero if any
// divergence is not exactly 0 (the cache's determinism contract), so
// the CI smoke run enforces the contract on this workload mix too.
// Run with --smoke (CI) for a reduced job mix.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "api/RepairEngine.h"
#include "nn/ActivationLayers.h"
#include "nn/LinearLayers.h"
#include "support/Parallel.h"
#include "support/Table.h"
#include "support/Timer.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace prdnn;
using namespace prdnn::bench;

namespace {

Vector randomVector(Rng &R, int Size, double Scale = 1.0) {
  Vector V(Size);
  for (int I = 0; I < Size; ++I)
    V[I] = Scale * R.normal();
  return V;
}

Matrix randomMatrix(Rng &R, int Rows, int Cols, double Scale = 1.0) {
  Matrix M(Rows, Cols);
  for (int I = 0; I < Rows; ++I)
    for (int J = 0; J < Cols; ++J)
      M(I, J) = Scale * R.normal();
  return M;
}

/// 16 -> 48 -> 48 -> 8 ReLU classifier: wide enough that the Jacobian
/// phase (what warm hits skip) carries real weight.
Network makeClassifier(Rng &R) {
  Network Net;
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      randomMatrix(R, 48, 16, 0.7), randomVector(R, 48, 0.3)));
  Net.addLayer(std::make_unique<ReLULayer>(48));
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      randomMatrix(R, 48, 48, 0.6), randomVector(R, 48, 0.3)));
  Net.addLayer(std::make_unique<ReLULayer>(48));
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      randomMatrix(R, 8, 48, 0.7), randomVector(R, 8, 0.3)));
  return Net;
}

/// 2 -> 16 -> 2 regressor for the polytope (segment) jobs.
Network makeRegressor(Rng &R) {
  Network Net;
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      randomMatrix(R, 16, 2, 0.9), randomVector(R, 16, 0.2)));
  Net.addLayer(std::make_unique<ReLULayer>(16));
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      randomMatrix(R, 2, 16, 0.8), randomVector(R, 2, 0.2)));
  return Net;
}

PointSpec makeFlipSpec(const Network &Net, Rng &R, int Count) {
  PointSpec Spec;
  for (int I = 0; I < Count; ++I) {
    Vector X = randomVector(R, Net.inputSize());
    Vector Y = Net.evaluate(X);
    int Top = Y.argmax();
    int Target = Top;
    if (I % 3 == 0) {
      double Best = -1e300;
      for (int C = 0; C < Y.size(); ++C)
        if (C != Top && Y[C] > Best) {
          Best = Y[C];
          Target = C;
        }
    }
    Spec.push_back({std::move(X),
                    classificationConstraint(Net.outputSize(), Target, 1e-3),
                    std::nullopt});
  }
  return Spec;
}

PolytopeSpec makeSegmentSpec(const Network &Net, Rng &R, int Segments) {
  PolytopeSpec Spec;
  for (int S = 0; S < Segments; ++S) {
    Vector A = randomVector(R, Net.inputSize());
    Vector B = randomVector(R, Net.inputSize());
    Vector Lo(Net.outputSize()), Hi(Net.outputSize());
    Vector Ya = Net.evaluate(A), Yb = Net.evaluate(B);
    for (int O = 0; O < Net.outputSize(); ++O) {
      double Mid = 0.5 * (Ya[O] + Yb[O]);
      double Span = std::max(1.0, std::fabs(Ya[O] - Yb[O]));
      Lo[O] = Mid - 1.2 * Span;
      Hi[O] = Mid + 1.2 * Span;
    }
    Spec.push_back(SpecPolytope{SegmentPolytope{A, B},
                                boxConstraint(Lo, Hi)});
  }
  return Spec;
}

double maxDeltaDiff(const RepairResult &A, const RepairResult &B) {
  if (A.Delta.size() != B.Delta.size())
    return 1e300;
  double Max = 0.0;
  for (size_t I = 0; I < A.Delta.size(); ++I)
    Max = std::max(Max, std::fabs(A.Delta[I] - B.Delta[I]));
  return Max;
}

/// Drains \p Requests through \p Engine once; returns wall seconds and
/// accumulates the divergence from \p Reference.
double drainOnce(RepairEngine &Engine,
                 const std::vector<RepairRequest> &Requests,
                 const std::vector<RepairResult> &Reference,
                 double &MaxDiff, int &Successes) {
  std::vector<JobHandle> Handles;
  Handles.reserve(Requests.size());
  WallTimer Timer;
  for (const RepairRequest &Request : Requests)
    Handles.push_back(Engine.submit(Request));
  for (JobHandle &Handle : Handles)
    Handle.wait();
  double Wall = Timer.seconds();
  for (size_t I = 0; I < Handles.size(); ++I) {
    const RepairReport &Report = Handles[I].report();
    MaxDiff = std::max(MaxDiff, maxDeltaDiff(Report.Result, Reference[I]));
    Successes += Report.Status == RepairStatus::Success;
  }
  return Wall;
}

} // namespace

int main(int argc, char **argv) {
  bool Smoke = false;
  for (int I = 1; I < argc; ++I)
    Smoke = Smoke || std::strcmp(argv[I], "--smoke") == 0;
  const int PointJobs = Smoke ? 6 : 12;
  const int PointsPerJob = Smoke ? 40 : 80;
  const int PolyJobs = Smoke ? 2 : 4;
  const int SegmentsPerJob = Smoke ? 2 : 3;
  const int WarmRounds = Smoke ? 2 : 4;

  Rng R(88001);
  auto Classifier = std::make_shared<Network>(makeClassifier(R));
  auto Regressor = std::make_shared<Network>(makeRegressor(R));
  std::printf("=== Engine artifact cache: repeated-spec workload "
              "(%d point + %d polytope jobs, %d warm rounds%s) ===\n",
              PointJobs, PolyJobs, WarmRounds, Smoke ? ", smoke" : "");
  std::printf("classifier: %d params; pool threads: %d; hardware "
              "concurrency: %u\n\n",
              Classifier->totalParams(), globalThreadCount(),
              std::thread::hardware_concurrency());

  // The repeated request mix: distinct (layer, spec) keys a server
  // would see resubmitted every round.
  const int Layers[] = {0, 2, 4};
  std::vector<RepairRequest> Requests;
  for (int J = 0; J < PointJobs; ++J) {
    Rng SpecR(7000 + J);
    Requests.push_back(RepairRequest::points(
        Classifier, Layers[J % 3],
        makeFlipSpec(*Classifier, SpecR, PointsPerJob)));
  }
  for (int J = 0; J < PolyJobs; ++J) {
    Rng SpecR(7500 + J);
    Requests.push_back(RepairRequest::polytopes(
        Regressor, 2, makeSegmentSpec(*Regressor, SpecR, SegmentsPerJob)));
  }
  int NumJobs = static_cast<int>(Requests.size());

  // Cache-free serial ground truth (one-shot wrappers).
  std::vector<RepairResult> Reference;
  Reference.reserve(Requests.size());
  for (const RepairRequest &Request : Requests) {
    if (Request.isPolytope())
      Reference.push_back(
          repairPolytopes(*Request.Net, Request.LayerIndex,
                          std::get<PolytopeSpec>(Request.Spec)));
    else
      Reference.push_back(repairPoints(
          *Request.Net, Request.LayerIndex,
          std::get<PointSpec>(Request.Spec)));
  }

  int RefSuccesses = 0;
  for (const RepairResult &Result : Reference)
    RefSuccesses += Result.Status == RepairStatus::Success;

  BenchJson Json("engine_cache");
  TablePrinter Table({"workers", "mode", "wall(s)", "jobs/s", "speedup",
                      "hit rate", "MiB held", "max |dDelta|"});
  double WorstDiff = 0.0;
  bool SuccessesOk = true;

  for (int Workers : {1, 4, 8}) {
    // Cache-off baseline at this concurrency.
    EngineOptions OffOptions;
    OffOptions.NumWorkers = Workers;
    OffOptions.QueueCapacity = NumJobs;
    OffOptions.EnableCache = false;
    RepairEngine OffEngine(OffOptions);
    double OffDiff = 0.0;
    int OffSuccesses = 0;
    double OffWall =
        drainOnce(OffEngine, Requests, Reference, OffDiff, OffSuccesses);

    // Cache-on: one cold drain, then warm drains on the same engine.
    EngineOptions Options;
    Options.NumWorkers = Workers;
    Options.QueueCapacity = NumJobs;
    RepairEngine Engine(Options);
    double MaxDiff = 0.0;
    int Successes = 0;
    double ColdWall =
        drainOnce(Engine, Requests, Reference, MaxDiff, Successes);
    double WarmWall = 0.0;
    for (int Round = 1; Round < WarmRounds; ++Round)
      WarmWall += drainOnce(Engine, Requests, Reference, MaxDiff, Successes);
    double WarmPerRound = WarmWall / (WarmRounds - 1);
    CacheStats Stats = Engine.cacheStats();
    WorstDiff = std::max(WorstDiff, std::max(MaxDiff, OffDiff));
    SuccessesOk = SuccessesOk && OffSuccesses == RefSuccesses &&
                  Successes == WarmRounds * RefSuccesses;

    double OffJobsPerSec = NumJobs / OffWall;
    double ColdJobsPerSec = NumJobs / ColdWall;
    double WarmJobsPerSec = NumJobs / WarmPerRound;

    Json.beginRecord();
    Json.add("workers", Workers);
    Json.add("jobs_per_round", NumJobs);
    Json.add("warm_rounds", WarmRounds - 1);
    Json.add("smoke", Smoke ? 1 : 0);
    Json.add("cache_off_jobs_per_sec", OffJobsPerSec);
    Json.add("cold_jobs_per_sec", ColdJobsPerSec);
    Json.add("warm_jobs_per_sec", WarmJobsPerSec);
    Json.add("warm_speedup_vs_cold", WarmJobsPerSec / ColdJobsPerSec);
    Json.add("warm_speedup_vs_cache_off", WarmJobsPerSec / OffJobsPerSec);
    Json.add("hit_rate", Stats.hitRate());
    Json.add("cache_hits", static_cast<int>(Stats.Hits));
    Json.add("cache_misses", static_cast<int>(Stats.Misses));
    Json.add("cache_evictions", static_cast<int>(Stats.Evictions));
    Json.add("bytes_held", static_cast<double>(Stats.BytesHeld));
    Json.add("max_delta_diff_vs_serial", std::max(MaxDiff, OffDiff));
    Json.add("successes_per_round", Successes / WarmRounds);
    Json.add("pool_threads", globalThreadCount());
    Json.add("hardware_concurrency",
             static_cast<int>(std::thread::hardware_concurrency()));

    auto Mib = [](std::uint64_t Bytes) {
      return static_cast<double>(Bytes) / (1024.0 * 1024.0);
    };
    Table.addRow({std::to_string(Workers), "cache-off",
                  formatDouble(OffWall, 3), formatDouble(OffJobsPerSec, 2),
                  "1.00", "-", "-",
                  OffDiff == 0.0 ? "0" : formatDouble(OffDiff, 12)});
    Table.addRow({std::to_string(Workers), "cold",
                  formatDouble(ColdWall, 3), formatDouble(ColdJobsPerSec, 2),
                  formatDouble(ColdJobsPerSec / OffJobsPerSec, 2), "-", "-",
                  "-"});
    Table.addRow({std::to_string(Workers), "warm",
                  formatDouble(WarmPerRound, 3),
                  formatDouble(WarmJobsPerSec, 2),
                  formatDouble(WarmJobsPerSec / OffJobsPerSec, 2),
                  formatDouble(Stats.hitRate(), 3),
                  formatDouble(Mib(Stats.BytesHeld), 2),
                  MaxDiff == 0.0 ? "0" : formatDouble(MaxDiff, 12)});
  }

  Table.print(std::cout);
  std::string JsonFile = Json.write();
  if (!JsonFile.empty())
    std::printf("\nwrote %s\n", JsonFile.c_str());

  bool Ok = WorstDiff == 0.0 && SuccessesOk;
  std::printf("%s\n",
              Ok ? "bench_engine_cache: cold/warm/cache-off bit-identical "
                   "to serial"
                 : "bench_engine_cache: DETERMINISM CHECK FAILED");
  return Ok ? 0 : 1;
}
