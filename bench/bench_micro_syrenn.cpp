//===- bench/bench_micro_syrenn.cpp - LinRegions microbenchmarks ---------------===//
//
// RQ4 support: cost of the exact 1-D line transform and 2-D plane
// transform as network width grows (the paper reports LinRegions as a
// small fraction of total repair time; these benches confirm it).
//
//===----------------------------------------------------------------------===//

#include "nn/ActivationLayers.h"
#include "nn/LinearLayers.h"
#include "support/Rng.h"
#include "syrenn/LineTransform.h"
#include "syrenn/PlaneTransform.h"

#include <benchmark/benchmark.h>

#include <cmath>

using namespace prdnn;

namespace {

Network makeFcNet(Rng &R, int InputSize, int Hidden, int Depth, int Out) {
  Network Net;
  int Size = InputSize;
  auto RandomFc = [&R](int OutSize, int InSize) {
    Matrix W(OutSize, InSize);
    for (int I = 0; I < OutSize; ++I)
      for (int J = 0; J < InSize; ++J)
        W(I, J) = R.normal() / std::sqrt(InSize);
    Vector B(OutSize);
    for (int I = 0; I < OutSize; ++I)
      B[I] = 0.1 * R.normal();
    return std::make_unique<FullyConnectedLayer>(std::move(W), std::move(B));
  };
  for (int D = 0; D < Depth; ++D) {
    Net.addLayer(RandomFc(Hidden, Size));
    Net.addLayer(std::make_unique<ReLULayer>(Hidden));
    Size = Hidden;
  }
  Net.addLayer(RandomFc(Out, Size));
  return Net;
}

void BM_LineRegions(benchmark::State &State) {
  Rng R(21);
  int Hidden = static_cast<int>(State.range(0));
  Network Net = makeFcNet(R, 32, Hidden, 2, 10);
  Vector A(32), B(32);
  for (int I = 0; I < 32; ++I) {
    A[I] = R.normal();
    B[I] = R.normal();
  }
  int Pieces = 0;
  for (auto _ : State) {
    LinePartition P = lineRegions(Net, A, B);
    Pieces = P.numPieces();
    benchmark::DoNotOptimize(Pieces);
  }
  State.SetLabel("hidden " + std::to_string(Hidden) + ", " +
                 std::to_string(Pieces) + " pieces");
}

void BM_PlaneRegions(benchmark::State &State) {
  Rng R(22);
  int Hidden = static_cast<int>(State.range(0));
  Network Net = makeFcNet(R, 5, Hidden, 3, 5);
  Vector O(5), E1(5), E2(5);
  for (int I = 0; I < 5; ++I) {
    O[I] = 0.3 * R.normal();
    E1[I] = R.normal();
    E2[I] = R.normal();
  }
  std::vector<Vector> Polygon = {O, O + E1, O + E1 + E2, O + E2};
  size_t Regions = 0;
  for (auto _ : State) {
    std::vector<PlaneRegion> Result = planeRegions(Net, Polygon);
    Regions = Result.size();
    benchmark::DoNotOptimize(Regions);
  }
  State.SetLabel("hidden " + std::to_string(Hidden) + ", " +
                 std::to_string(Regions) + " regions");
}

} // namespace

BENCHMARK(BM_LineRegions)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PlaneRegions)->Arg(8)->Arg(16)->Arg(24)
    ->Unit(benchmark::kMillisecond);
