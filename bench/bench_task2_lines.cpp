//===- bench/bench_task2_lines.cpp - Table 2 ----------------------------------===//
//
// Task 2 (§7.2): 1-D polytope (line) repair of an FC digit classifier
// over clean->fog lines. Regenerates Table 2: PR on the middle layer
// ("Layer 2") and output layer ("Layer 3") vs FT[1]/FT[2] trained on
// sampled line points, over 10/25/50/100 lines. Columns: key points,
// drawdown D (clean test), generalization G (fogged test), time T.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "api/RepairEngine.h"
#include "core/PolytopeRepair.h"
#include "support/Table.h"
#include "support/Timer.h"

#include <cstdio>
#include <iostream>

using namespace prdnn;
using namespace prdnn::bench;

int main() {
  const int LineCounts[] = {10, 25, 50, 100};
  std::printf("=== Task 2: 1-D polytope (fog-line) repair "
              "(Table 2) ===\n");
  Task2Workload W = makeTask2Workload(100);
  std::printf("buggy network: %.1f%% clean accuracy (drawdown set), "
              "%.1f%% fogged accuracy (generalization set), %.1f%% on "
              "line fog-endpoints\n\n",
              100 * W.CleanAccuracy, 100 * W.FogAccuracy,
              100 * W.LineEndpointAccuracy);

  std::vector<int> Layers = W.Net.parameterizedLayerIndices();
  int Layer2 = Layers[1]; // hidden->hidden ("Layer 2" in the paper)
  int Layer3 = Layers[2]; // hidden->output ("Layer 3")

  TablePrinter Table({"Lines", "Points", "PR(L2) D", "G", "T",
                      "PR(L3) D", "G", "T", "FT[1] D", "G", "T",
                      "FT[2] D", "G", "T"});

  for (int NumLines : LineCounts) {
    PolytopeSpec Spec = task2Spec(W, NumLines, 1e-4);
    double LinRegionsSeconds = 0.0;
    int NumRegions = 0;
    PointSpec Points =
        keyPointSpec(W.Net, Spec, &LinRegionsSeconds, &NumRegions);

    RepairEngine Engine;
    auto RunPr = [&](int LayerIdx, double &D, double &G, double &T) {
      WallTimer Timer;
      RepairResult Result =
          Engine
              .run(RepairRequest::points(RepairRequest::borrow(W.Net),
                                         LayerIdx, Points))
              .Result;
      T = Timer.seconds() + LinRegionsSeconds;
      if (Result.Status != RepairStatus::Success) {
        D = G = -999;
        return;
      }
      D = 100 * (W.CleanAccuracy -
                 Result.Repaired->accuracy(W.CleanTest.Inputs,
                                           W.CleanTest.Labels));
      G = 100 * (Result.Repaired->accuracy(W.FogTest.Inputs,
                                           W.FogTest.Labels) -
                 W.FogAccuracy);
    };
    double D2, G2, T2, D3, G3, T3;
    RunPr(Layer2, D2, G2, T2);
    RunPr(Layer3, D3, G3, T3);

    // FT on sampled line points: the paper gives FT the same number of
    // sampled points as PR has key points.
    auto RunFt = [&](double LearningRate, uint64_t Seed, double &D,
                     double &G, double &T) {
      Rng R(Seed);
      Dataset Samples =
          task2Samples(W, NumLines, static_cast<int>(Points.size()), R);
      FineTuneOptions Options;
      Options.LearningRate = LearningRate;
      Options.Momentum = 0.9;
      Options.BatchSize = 16;
      Options.MaxEpochs = 300;
      Options.TimeoutSeconds = 60.0;
      FineTuneResult Result = fineTune(W.Net, Samples, Options, R);
      T = Result.Seconds;
      D = 100 * (W.CleanAccuracy -
                 accuracy(Result.Tuned, W.CleanTest.Inputs,
                          W.CleanTest.Labels));
      G = 100 * (accuracy(Result.Tuned, W.FogTest.Inputs,
                          W.FogTest.Labels) -
                 W.FogAccuracy);
    };
    double FD1, FG1, FT1, FD2, FG2, FT2sec;
    RunFt(0.05, 5001, FD1, FG1, FT1);
    RunFt(0.01, 5002, FD2, FG2, FT2sec);

    Table.addRow({std::to_string(NumLines),
                  std::to_string(static_cast<int>(Points.size())),
                  formatDouble(D2, 1), formatDouble(G2, 1),
                  formatDuration(T2), formatDouble(D3, 1),
                  formatDouble(G3, 1), formatDuration(T3),
                  formatDouble(FD1, 1), formatDouble(FG1, 1),
                  formatDuration(FT1), formatDouble(FD2, 1),
                  formatDouble(FG2, 1), formatDuration(FT2sec)});
  }
  std::printf("Table 2 (D: drawdown %%, G: generalization %%, T: time; "
              "PR guarantees all infinitely-many line points, FT only "
              "its samples):\n");
  Table.print(std::cout);
  return 0;
}
