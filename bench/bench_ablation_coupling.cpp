//===- bench/bench_ablation_coupling.cpp - why decoupling matters --------------===//
//
// Ablation of the paper's core insight ("the two roles of a ReLU",
// §3.1). The LP of Algorithm 1 is exact for the *decoupled* network.
// Applying the same Delta to the original *coupled* DNN moves the
// linear-region boundaries, so spec rows that the DDNN provably
// satisfies can be violated by the coupled network - increasingly so
// for earlier layers (more downstream activations to flip). For the
// final (post-activation) layer the two coincide: no activation is
// downstream, so there is nothing to re-couple.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "api/RepairEngine.h"
#include "nn/LinearLayers.h"
#include "support/Casting.h"
#include "support/Table.h"

#include <cstdio>
#include <iostream>

using namespace prdnn;
using namespace prdnn::bench;

int main() {
  std::printf("=== Ablation: DDNN (decoupled) vs coupled application of "
              "the repair Delta ===\n");
  Task2Workload W = makeTask2Workload(10);

  // A pointwise spec on the fogged endpoints of 10 lines.
  PointSpec Spec;
  for (const auto &Line : W.Lines)
    Spec.push_back({Line.Fogged,
                    classificationConstraint(data::kDigitClasses, Line.Label,
                                             1e-4),
                    std::nullopt});

  TablePrinter Table({"Layer", "Kind", "DDNN violations",
                      "coupled violations", "DDNN max viol",
                      "coupled max viol"});
  RepairEngine Engine;
  for (int LayerIdx : W.Net.parameterizedLayerIndices()) {
    RepairResult Result =
        Engine
            .run(RepairRequest::points(RepairRequest::borrow(W.Net),
                                       LayerIdx, Spec))
            .Result;
    if (Result.Status != RepairStatus::Success) {
      Table.addRow({std::to_string(LayerIdx),
                    W.Net.layer(LayerIdx).describe(),
                    toString(Result.Status), "-", "-", "-"});
      continue;
    }
    // Apply the same Delta to a plain copy of the network (re-coupled).
    Network Coupled = W.Net;
    cast<LinearLayer>(Coupled.layer(LayerIdx)).addToParams(Result.Delta);

    int DdnnViolations = 0, CoupledViolations = 0;
    double DdnnMax = 0.0, CoupledMax = 0.0;
    for (const SpecPoint &P : Spec) {
      double VD = P.Constraint.violation(Result.Repaired->evaluate(P.X));
      double VC = P.Constraint.violation(Coupled.evaluate(P.X));
      if (VD > 1e-7)
        ++DdnnViolations;
      if (VC > 1e-7)
        ++CoupledViolations;
      DdnnMax = std::max(DdnnMax, VD);
      CoupledMax = std::max(CoupledMax, VC);
    }
    Table.addRow({std::to_string(LayerIdx),
                  W.Net.layer(LayerIdx).describe(),
                  std::to_string(DdnnViolations) + " / " +
                      std::to_string(static_cast<int>(Spec.size())),
                  std::to_string(CoupledViolations) + " / " +
                      std::to_string(static_cast<int>(Spec.size())),
                  formatDouble(DdnnMax, 6), formatDouble(CoupledMax, 6)});
  }
  Table.print(std::cout);
  std::printf("\nThe DDNN column is provably zero (Theorem 5.4); the "
              "coupled column shows the repair breaking once weight "
              "changes also move the linear regions.\n");
  return 0;
}
