//===- bench/bench_rpc_fleet.cpp - two-host-simulation RPC bench -------------===//
//
// The RPC tier under fleet load: the parent re-execs itself into one
// SERVER process (RepairService behind an RpcServer on an ephemeral
// TCP port) and two CLIENT processes that connect over localhost -
// separate address spaces talking through real sockets, the closest a
// single machine gets to two hosts. The server publishes a fixed-seed
// model set and writes its port to a file; each client rebuilds the
// identical workload, computes every template's serial, CACHE-FREE
// twin in its own process, then floods the server with a stream of
// fingerprint-addressed, mixed-priority requests via
// RpcClient::repair() - riding out typed Saturated rejects with the
// client library's bounded backoff - and compares every wire-served
// RepairReport bit-for-bit against its local twin. Which process (or
// which side of a socket) served a request must never change its bits.
//
// The parent merges the sides' stats and emits BENCH_rpc_fleet.json:
// jobs/sec, p50/p95/p99 client latency, shed rejects and retries,
// and bytes on the wire, per client and aggregated. --smoke shrinks
// the replay for CI. Exits non-zero if any report diverged, any job
// went unserved, the server leaked an admission ticket, or the wire
// byte counters disagree across the socket.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "cache/Fingerprint.h"
#include "examples/DemoNetworks.h"
#include "rpc/RpcClient.h"
#include "rpc/RpcServer.h"
#include "serve/RepairService.h"
#include "support/Timer.h"

#include <sys/wait.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace prdnn;
using namespace prdnn::bench;
using namespace prdnn::demo;
using namespace prdnn::rpc;
using namespace prdnn::serve;

namespace {

namespace fs = std::filesystem;

struct FleetConfig {
  int ClientProcesses = 2;
  /// More concurrent client connections than admission slots, so
  /// saturation (typed ConnectionReject / Saturated + the client
  /// library's retry-with-backoff) actually happens under load.
  int ThreadsPerClient = 4;
  int JobsPerClient = 600; ///< x2 processes = 1200 >= 1000 jobs total
  int MaxInFlight = 4;
  int Workers = 2;
};

FleetConfig smokeConfig() {
  FleetConfig C;
  C.ThreadsPerClient = 2;
  C.JobsPerClient = 20;
  C.MaxInFlight = 2;
  return C;
}

/// The model set and request templates both sides rebuild identically
/// (fixed seeds). The client never ships a network over the wire: it
/// names models by content fingerprint, computed locally, and the
/// server must resolve the same address from its registry.
struct Workload {
  std::vector<std::shared_ptr<Network>> Models;
  struct Template {
    int Model = 0; ///< index into Models
    ServeRequest Serve;
    RepairRequest Twin;
  };
  std::vector<Template> Templates;
};

Workload makeWorkload() {
  Workload W;
  Rng R(881200);
  W.Models.push_back(std::make_shared<Network>(makeClassifier(R)));
  W.Models.push_back(std::make_shared<Network>(makeRegressor(R)));

  const RepairRequest::Priority Classes[] = {
      RepairRequest::Priority::High, RepairRequest::Priority::Neutral,
      RepairRequest::Priority::Neutral, RepairRequest::Priority::Low};
  int Seed = 0;
  auto AddPoints = [&](int Model, int Layer) {
    Rng SpecR(9000 + Seed);
    PointSpec Spec = makeFlipSpec(*W.Models[Model], SpecR, 10);
    Workload::Template T;
    T.Model = Model;
    T.Serve.Model = fingerprintNetwork(*W.Models[Model]);
    T.Serve.Spec = Spec;
    T.Serve.LayerIndex = Layer;
    T.Serve.Class = Classes[Seed % 4];
    T.Twin = RepairRequest::points(W.Models[Model], Layer, std::move(Spec));
    ++Seed;
    W.Templates.push_back(std::move(T));
  };
  for (int Layer : {0, 2, 4})
    AddPoints(0, Layer);
  {
    Rng SpecR(9100);
    PolytopeSpec Spec = makeSegmentSpec(*W.Models[1], SpecR, 2);
    Workload::Template T;
    T.Model = 1;
    T.Serve.Model = fingerprintNetwork(*W.Models[1]);
    T.Serve.Spec = Spec;
    T.Serve.LayerIndex = 2;
    T.Serve.Class = RepairRequest::Priority::Low;
    T.Twin = RepairRequest::polytopes(W.Models[1], 2, std::move(Spec));
    W.Templates.push_back(std::move(T));
  }
  {
    Rng SpecR(9200);
    PointSpec Spec = makeFlipSpec(*W.Models[0], SpecR, 8);
    Workload::Template T;
    T.Model = 0;
    T.Serve.Model = fingerprintNetwork(*W.Models[0]);
    T.Serve.Spec = Spec;
    T.Serve.LayerIndex = kAutoLayer;
    T.Twin.Net = W.Models[0];
    T.Twin.Spec = std::move(Spec);
    T.Twin.LayerIndex = kAutoLayer;
    W.Templates.push_back(std::move(T));
  }
  return W;
}

/// Atomic small-file write (tmp + rename), so a polling reader never
/// sees a half-written port number.
bool writeFileAtomic(const fs::path &Path, const std::string &Contents) {
  fs::path Tmp = Path;
  Tmp += ".tmp";
  {
    std::ofstream Os(Tmp);
    if (!Os)
      return false;
    Os << Contents;
  }
  std::error_code Ec;
  fs::rename(Tmp, Path, Ec);
  return !Ec;
}

// --- Server process ---------------------------------------------------------

int serverMain(const std::string &Dir, const std::string &StatsFile,
               const FleetConfig &Config) {
  Workload W = makeWorkload();

  ServiceOptions Options;
  Options.StoreDirectory = (fs::path(Dir) / "store").string();
  Options.Engine.NumWorkers = Config.Workers;
  Options.Admission.MaxInFlight = Config.MaxInFlight;
  RepairService Service(Options);

  for (const auto &Model : W.Models) {
    RegistryError Error = RegistryError::None;
    Service.registry().publish(*Model, &Error);
    if (Error != RegistryError::None) {
      std::fprintf(stderr, "[server] publish failed: %s\n", toString(Error));
      return 1;
    }
  }

  RpcServerOptions ServerOptions;
  ServerOptions.Port = 0; // ephemeral: announced via the port file
  ServerOptions.MaxConnections =
      Config.ClientProcesses * Config.ThreadsPerClient + 4;
  RpcServer Server(Service, ServerOptions);
  RpcError Error = RpcError::None;
  if (!Server.start(&Error)) {
    std::fprintf(stderr, "[server] start failed: %s\n", toString(Error));
    return 1;
  }
  if (!writeFileAtomic(fs::path(Dir) / "port",
                       std::to_string(Server.port()))) {
    std::fprintf(stderr, "[server] cannot announce port\n");
    return 1;
  }

  // Serve until the parent says every client has exited.
  const fs::path StopFile = fs::path(Dir) / "stop";
  while (!fs::exists(StopFile))
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // Counters are only final once the connection threads are joined:
  // stop first, then snapshot.
  Server.stop();
  RpcServerStats Wire = Server.stats();
  ServiceStats Stats = Service.stats();

  // A leaked ticket (or a still-queued job) after drain is a bug the
  // bench must fail on, not average away.
  bool ServerOk = Stats.Admission.Depth == 0 && Stats.Engine.Depth == 0 &&
                  Stats.Engine.Running == 0;

  std::ofstream Os(StatsFile);
  if (!Os) {
    std::fprintf(stderr, "[server] cannot write %s\n", StatsFile.c_str());
    return 1;
  }
  Os << "ok " << (ServerOk ? 1 : 0) << "\n"
     << "accepted " << Stats.Accepted << "\n"
     << "rejected " << Stats.Rejected << "\n"
     << "saturated_rejects " << Stats.Admission.SaturatedRejects << "\n"
     << "connections " << Wire.ConnectionsAccepted << "\n"
     << "connection_rejects " << Wire.ConnectionsRejected << "\n"
     << "malformed_frames " << Wire.MalformedFrames << "\n"
     << "await_timeouts " << Wire.AwaitTimeouts << "\n"
     << "orphaned_jobs " << Wire.OrphanedJobs << "\n"
     << "bytes_sent " << Wire.BytesSent << "\n"
     << "bytes_received " << Wire.BytesReceived << "\n"
     << "admission_depth " << Stats.Admission.Depth << "\n";
  Os.close();

  if (!ServerOk)
    std::fprintf(stderr,
                 "[server] FAILED: admission depth %d, engine depth %d, "
                 "running %d after drain\n",
                 Stats.Admission.Depth, Stats.Engine.Depth,
                 Stats.Engine.Running);
  return ServerOk ? 0 : 1;
}

// --- Client process ---------------------------------------------------------

int clientMain(int Role, const std::string &Dir,
               const std::string &StatsFile, const FleetConfig &Config) {
  Workload W = makeWorkload();

  // Serial ground truth, computed in THIS process, cache-free: the
  // wire-served reports must match these bits exactly.
  std::vector<RepairReport> Twins;
  {
    EngineOptions SerialOptions;
    SerialOptions.EnableCache = false;
    RepairEngine SerialEngine(SerialOptions);
    for (const auto &T : W.Templates)
      Twins.push_back(SerialEngine.run(T.Twin));
  }

  // Wait for the server to announce its ephemeral port.
  const fs::path PortFile = fs::path(Dir) / "port";
  int Port = 0;
  for (int Spin = 0; Spin < 600 && Port == 0; ++Spin) {
    if (fs::exists(PortFile)) {
      std::ifstream Is(PortFile);
      Is >> Port;
    }
    if (Port == 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  if (Port == 0) {
    std::fprintf(stderr, "[client %d] server never announced a port\n", Role);
    return 1;
  }

  std::atomic<int> NextJob{0};
  std::atomic<int> Divergences{0};
  std::atomic<int> Unserved{0};
  std::atomic<std::uint64_t> BytesSent{0}, BytesReceived{0};
  std::atomic<std::uint64_t> Retries{0}, ShedRejects{0}, Reconnects{0};
  // Thread-sharded: every connection thread observes into the one
  // histogram, and the snapshot below is the exact per-bucket merge.
  obs::Histogram LatencyHist(obs::defaultLatencyBuckets());
  WallTimer ReplayTimer;
  std::vector<std::thread> Threads;
  for (int C = 0; C < Config.ThreadsPerClient; ++C) {
    Threads.emplace_back([&] {
      RpcClientOptions ClientOptions;
      ClientOptions.Port = Port;
      // Saturation is the designed backpressure: retry essentially
      // forever with a tight backoff, like a client bouncing off a
      // loaded server, and let Unserved catch real give-ups.
      ClientOptions.RetryLimit = 1000000;
      ClientOptions.InitialBackoffSeconds = 0.0002;
      ClientOptions.MaxBackoffSeconds = 0.002;
      RpcClient Client(ClientOptions);
      for (;;) {
        int Job = NextJob.fetch_add(1, std::memory_order_relaxed);
        if (Job >= Config.JobsPerClient)
          break;
        const size_t Slot =
            static_cast<size_t>(Job) % W.Templates.size();
        WallTimer JobTimer;
        RepairReport Report;
        ServeReject Reject = ServeReject::None;
        RpcError Error = Client.repair(W.Templates[Slot].Serve, Report,
                                       Reject);
        if (Error != RpcError::None || Reject != ServeReject::None) {
          std::fprintf(stderr,
                       "[client %d] job %d unserved: rpc %s, reject %s\n",
                       Role, Job, toString(Error), toString(Reject));
          Unserved.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        LatencyHist.observe(JobTimer.seconds());
        const RepairReport &Twin = Twins[Slot];
        if (!bitIdentical(Report.Result, Twin.Result) ||
            Report.Status != Twin.Status ||
            Report.RepairedLayer != Twin.RepairedLayer)
          Divergences.fetch_add(1, std::memory_order_relaxed);
      }
      RpcClientStats Stats = Client.stats();
      BytesSent.fetch_add(Stats.BytesSent, std::memory_order_relaxed);
      BytesReceived.fetch_add(Stats.BytesReceived,
                              std::memory_order_relaxed);
      Retries.fetch_add(Stats.Retries, std::memory_order_relaxed);
      ShedRejects.fetch_add(Stats.ShedRejects, std::memory_order_relaxed);
      Reconnects.fetch_add(Stats.Reconnects, std::memory_order_relaxed);
    });
  }
  for (std::thread &T : Threads)
    T.join();
  double ReplaySeconds = ReplayTimer.seconds();

  const obs::HistogramSnapshot Latency = LatencyHist.snapshot();
  const auto Jobs = static_cast<long long>(Latency.count());

  bool ClientOk = Divergences.load() == 0 && Unserved.load() == 0 &&
                  Jobs == Config.JobsPerClient;
  std::ofstream Os(StatsFile);
  if (!Os) {
    std::fprintf(stderr, "[client %d] cannot write %s\n", Role,
                 StatsFile.c_str());
    return 1;
  }
  Os << "ok " << (ClientOk ? 1 : 0) << "\n"
     << "jobs " << Jobs << "\n"
     << "replay_seconds " << ReplaySeconds << "\n"
     << "divergences " << Divergences.load() << "\n"
     << "unserved " << Unserved.load() << "\n"
     << "retries " << Retries.load() << "\n"
     << "shed_rejects " << ShedRejects.load() << "\n"
     << "reconnects " << Reconnects.load() << "\n"
     << "bytes_sent " << BytesSent.load() << "\n"
     << "bytes_received " << BytesReceived.load() << "\n";
  writeLatencyHistogram(Os, Latency);
  Os.close();

  if (!ClientOk)
    std::fprintf(stderr,
                 "[client %d] FAILED: %d divergences, %d unserved, %lld/%d "
                 "jobs\n",
                 Role, Divergences.load(), Unserved.load(), Jobs,
                 Config.JobsPerClient);
  return ClientOk ? 0 : 1;
}

// --- Parent: spawn, merge, report -------------------------------------------

struct SideStats {
  bool Ok = false;
  long long Jobs = 0;
  double ReplaySeconds = 0.0;
  long long Divergences = 0, Unserved = 0;
  long long Retries = 0, ShedRejects = 0, Reconnects = 0;
  long long BytesSent = 0, BytesReceived = 0;
  long long Accepted = 0, SaturatedRejects = 0;
  long long Connections = 0, ConnectionRejects = 0;
  long long MalformedFrames = 0, AwaitTimeouts = 0, OrphanedJobs = 0;
  long long AdmissionDepth = 0;
  /// Bucket counts as read off the stats file; finalized into
  /// LatencyHist once the file is fully parsed.
  std::vector<std::uint64_t> LatencyCounts;
  double LatencySum = 0.0;
  obs::HistogramSnapshot LatencyHist;
};

bool readSideStats(const std::string &File, SideStats &Stats) {
  std::ifstream Is(File);
  if (!Is)
    return false;
  std::string Key;
  while (Is >> Key) {
    if (Key == "ok") {
      int V;
      Is >> V;
      Stats.Ok = V == 1;
    } else if (Key == "jobs")
      Is >> Stats.Jobs;
    else if (Key == "replay_seconds")
      Is >> Stats.ReplaySeconds;
    else if (Key == "divergences")
      Is >> Stats.Divergences;
    else if (Key == "unserved")
      Is >> Stats.Unserved;
    else if (Key == "retries")
      Is >> Stats.Retries;
    else if (Key == "shed_rejects")
      Is >> Stats.ShedRejects;
    else if (Key == "reconnects")
      Is >> Stats.Reconnects;
    else if (Key == "bytes_sent")
      Is >> Stats.BytesSent;
    else if (Key == "bytes_received")
      Is >> Stats.BytesReceived;
    else if (Key == "accepted")
      Is >> Stats.Accepted;
    else if (Key == "saturated_rejects")
      Is >> Stats.SaturatedRejects;
    else if (Key == "connections")
      Is >> Stats.Connections;
    else if (Key == "connection_rejects")
      Is >> Stats.ConnectionRejects;
    else if (Key == "malformed_frames")
      Is >> Stats.MalformedFrames;
    else if (Key == "await_timeouts")
      Is >> Stats.AwaitTimeouts;
    else if (Key == "orphaned_jobs")
      Is >> Stats.OrphanedJobs;
    else if (Key == "admission_depth")
      Is >> Stats.AdmissionDepth;
    else if (Key == "lat_bucket") {
      std::uint64_t Count;
      Is >> Count;
      Stats.LatencyCounts.push_back(Count);
    } else if (Key == "lat_sum")
      Is >> Stats.LatencySum;
    else {
      std::string Skip;
      Is >> Skip;
    }
  }
  Stats.LatencyHist =
      latencySnapshotFromCounts(Stats.LatencyCounts, Stats.LatencySum);
  return true;
}

int parentMain(const std::string &Argv0, bool Smoke) {
  const FleetConfig Config = Smoke ? smokeConfig() : FleetConfig();
  const fs::path RunDir =
      fs::temp_directory_path() /
      ("prdnn-rpc-fleet-" +
       std::to_string(
           std::chrono::steady_clock::now().time_since_epoch().count()));
  fs::create_directories(RunDir);

  std::printf("=== RPC fleet: 1 server + %d client processes x %d "
              "connections x %d jobs over TCP localhost (%s) ===\n",
              Config.ClientProcesses, Config.ThreadsPerClient,
              Config.JobsPerClient, Smoke ? "smoke" : "full");
  std::printf("run dir: %s\n\n", RunDir.string().c_str());
  std::fflush(stdout);

  auto Spawn = [&](const std::string &RoleArgs, int &ExitCode) {
    std::ostringstream Command;
    Command << '"' << Argv0 << "\" " << RoleArgs << " --dir \""
            << RunDir.string() << "\" --threads "
            << Config.ThreadsPerClient << " --jobs " << Config.JobsPerClient
            << " --inflight " << Config.MaxInFlight << " --workers "
            << Config.Workers << " --processes " << Config.ClientProcesses;
    int Status = std::system(Command.str().c_str());
    ExitCode = Status == -1
                   ? 127
                   : (WIFEXITED(Status) ? WEXITSTATUS(Status) : 126);
  };

  const std::string ServerStats = (RunDir / "server.stats").string();
  std::vector<std::string> ClientStats;
  for (int P = 0; P < Config.ClientProcesses; ++P)
    ClientStats.push_back((RunDir / ("client-" + std::to_string(P) +
                                     ".stats")).string());

  int ServerExit = 1;
  std::vector<int> ClientExits(static_cast<size_t>(Config.ClientProcesses),
                               1);
  WallTimer FleetTimer;
  std::thread ServerThread([&] {
    Spawn("--server --stats \"" + ServerStats + "\"", ServerExit);
  });
  std::vector<std::thread> ClientThreads;
  for (int P = 0; P < Config.ClientProcesses; ++P)
    ClientThreads.emplace_back([&, P] {
      Spawn("--client " + std::to_string(P) + " --stats \"" +
                ClientStats[static_cast<size_t>(P)] + "\"",
            ClientExits[static_cast<size_t>(P)]);
    });
  for (std::thread &T : ClientThreads)
    T.join();
  // Every client has exited: tell the server to drain and report.
  writeFileAtomic(RunDir / "stop", "stop\n");
  ServerThread.join();
  double FleetSeconds = FleetTimer.seconds();

  bool Ok = true;
  BenchJson Json("rpc_fleet");
  SideStats Total;
  for (int P = 0; P < Config.ClientProcesses; ++P) {
    SideStats Stats;
    bool Read =
        readSideStats(ClientStats[static_cast<size_t>(P)], Stats);
    Ok = Ok && Read && Stats.Ok &&
         ClientExits[static_cast<size_t>(P)] == 0;
    const obs::HistogramSnapshot &Latency = Stats.LatencyHist;
    double JobsPerSec =
        Stats.ReplaySeconds > 0
            ? static_cast<double>(Stats.Jobs) / Stats.ReplaySeconds
            : 0.0;
    std::printf("client %d: exit %d, %lld jobs, %.1f jobs/s, p50 %.1fms "
                "p99 %.1fms, %lld shed rejects, %lld retries, %lld "
                "reconnects, %.1f KiB out / %.1f KiB in\n",
                P, ClientExits[static_cast<size_t>(P)], Stats.Jobs,
                JobsPerSec, 1e3 * Latency.quantile(0.50),
                1e3 * Latency.quantile(0.99), Stats.ShedRejects,
                Stats.Retries, Stats.Reconnects,
                static_cast<double>(Stats.BytesSent) / 1024.0,
                static_cast<double>(Stats.BytesReceived) / 1024.0);

    Json.beginRecord();
    Json.add("scope", "client" + std::to_string(P));
    Json.add("exit_code", ClientExits[static_cast<size_t>(P)]);
    Json.add("jobs", static_cast<int>(Stats.Jobs));
    Json.add("replay_seconds", Stats.ReplaySeconds);
    Json.add("jobs_per_sec", JobsPerSec);
    addLatencyRecord(Json, Latency);
    Json.add("divergences", static_cast<int>(Stats.Divergences));
    Json.add("unserved", static_cast<int>(Stats.Unserved));
    Json.add("retries", static_cast<int>(Stats.Retries));
    Json.add("shed_rejects", static_cast<int>(Stats.ShedRejects));
    Json.add("reconnects", static_cast<int>(Stats.Reconnects));
    Json.add("bytes_sent", static_cast<double>(Stats.BytesSent));
    Json.add("bytes_received", static_cast<double>(Stats.BytesReceived));

    Total.Jobs += Stats.Jobs;
    Total.Divergences += Stats.Divergences;
    Total.Unserved += Stats.Unserved;
    Total.Retries += Stats.Retries;
    Total.ShedRejects += Stats.ShedRejects;
    Total.Reconnects += Stats.Reconnects;
    Total.BytesSent += Stats.BytesSent;
    Total.BytesReceived += Stats.BytesReceived;
    // Exact cross-process merge: bucket counts add, no re-sampling.
    Total.LatencyHist.merge(Stats.LatencyHist);
  }

  SideStats Server;
  bool ServerRead = readSideStats(ServerStats, Server);
  Ok = Ok && ServerRead && Server.Ok && ServerExit == 0;

  // Cross-socket accounting: every byte a client sent the server
  // received, and vice versa. (Connection-bound rejects close before
  // the client's request bytes are drained, so only demand equality
  // when nothing was shed at the accept gate.)
  if (ServerRead && Server.ConnectionRejects == 0 &&
      (Server.BytesReceived != Total.BytesSent ||
       Server.BytesSent != Total.BytesReceived)) {
    std::printf("BYTE MISMATCH: server rx %lld vs clients tx %lld, "
                "server tx %lld vs clients rx %lld\n",
                Server.BytesReceived, Total.BytesSent, Server.BytesSent,
                Total.BytesReceived);
    Ok = false;
  }

  const obs::HistogramSnapshot &FleetLatency = Total.LatencyHist;
  double FleetJobsPerSec =
      FleetSeconds > 0 ? static_cast<double>(Total.Jobs) / FleetSeconds
                       : 0.0;
  std::printf("server: exit %d, %lld accepted, %lld saturated rejects, "
              "%lld connections (%lld rejected), %lld await timeouts, "
              "%lld orphans, admission depth %lld after drain\n",
              ServerExit, Server.Accepted, Server.SaturatedRejects,
              Server.Connections, Server.ConnectionRejects,
              Server.AwaitTimeouts, Server.OrphanedJobs,
              Server.AdmissionDepth);
  std::printf("\nfleet: %lld jobs in %.1fs (%.1f jobs/s), p50 %.1fms "
              "p95 %.1fms p99 %.1fms, %.1f MiB on the wire\n",
              Total.Jobs, FleetSeconds, FleetJobsPerSec,
              1e3 * FleetLatency.quantile(0.50),
              1e3 * FleetLatency.quantile(0.95),
              1e3 * FleetLatency.quantile(0.99),
              static_cast<double>(Total.BytesSent + Total.BytesReceived) /
                  (1024.0 * 1024.0));

  Json.beginRecord();
  Json.add("scope", "fleet");
  Json.add("client_processes", Config.ClientProcesses);
  Json.add("connections_per_client", Config.ThreadsPerClient);
  Json.add("jobs", static_cast<int>(Total.Jobs));
  Json.add("wall_seconds", FleetSeconds);
  Json.add("jobs_per_sec", FleetJobsPerSec);
  addLatencyRecord(Json, FleetLatency);
  Json.add("divergences", static_cast<int>(Total.Divergences));
  Json.add("unserved", static_cast<int>(Total.Unserved));
  Json.add("retries", static_cast<int>(Total.Retries));
  Json.add("shed_rejects", static_cast<int>(Total.ShedRejects));
  Json.add("server_accepted", static_cast<int>(Server.Accepted));
  Json.add("server_saturated_rejects",
           static_cast<int>(Server.SaturatedRejects));
  Json.add("server_connections", static_cast<int>(Server.Connections));
  Json.add("server_connection_rejects",
           static_cast<int>(Server.ConnectionRejects));
  Json.add("server_malformed_frames",
           static_cast<int>(Server.MalformedFrames));
  Json.add("server_await_timeouts",
           static_cast<int>(Server.AwaitTimeouts));
  Json.add("server_admission_depth_after_drain",
           static_cast<int>(Server.AdmissionDepth));
  Json.add("bytes_on_wire",
           static_cast<double>(Total.BytesSent + Total.BytesReceived));
  Json.add("smoke", Smoke ? 1 : 0);

  std::string JsonFile = Json.write();
  if (!JsonFile.empty())
    std::printf("wrote %s\n", JsonFile.c_str());

  {
    std::error_code Ec;
    fs::remove_all(RunDir, Ec);
  }
  std::printf("%s\n", Ok ? "bench_rpc_fleet: every wire-served report "
                           "bit-identical to its serial twin"
                         : "bench_rpc_fleet: FAILED");
  return Ok ? 0 : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  std::setvbuf(stdout, nullptr, _IOFBF, 1 << 16);
  bool Smoke = false;
  bool ServerRole = false;
  int ClientRole = -1;
  std::string Dir, StatsFile;
  FleetConfig Config;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&] { return I + 1 < Argc ? Argv[++I] : ""; };
    if (Arg == "--smoke")
      Smoke = true;
    else if (Arg == "--server")
      ServerRole = true;
    else if (Arg == "--client")
      ClientRole = std::atoi(Next());
    else if (Arg == "--dir")
      Dir = Next();
    else if (Arg == "--stats")
      StatsFile = Next();
    else if (Arg == "--threads")
      Config.ThreadsPerClient = std::atoi(Next());
    else if (Arg == "--jobs")
      Config.JobsPerClient = std::atoi(Next());
    else if (Arg == "--inflight")
      Config.MaxInFlight = std::atoi(Next());
    else if (Arg == "--workers")
      Config.Workers = std::atoi(Next());
    else if (Arg == "--processes")
      Config.ClientProcesses = std::atoi(Next());
  }
  if (ServerRole)
    return serverMain(Dir, StatsFile, Config);
  if (ClientRole >= 0)
    return clientMain(ClientRole, Dir, StatsFile, Config);
  return parentMain(Argv[0], Smoke);
}
