//===- bench/bench_kernel_backends.cpp - Strict vs Fast kernel tiers ----------===//
//
// Measures the two kernel determinism tiers (src/linalg/Kernels.h)
// against each other: dense GEMM throughput (Matrix::multiply /
// multiplyTransposed, the Jacobian-phase hot loops) in GFLOP/s at 1, 4,
// and 8 pool threads, and end-to-end repair seconds through the public
// RepairOptions::Determinism switch.
//
// The Fast tier promises epsilon-, not bit-, equality, so this bench is
// also the executable form of the epsilon contract
// (src/linalg/README.md): every Fast GEMM element must satisfy
//
//   |Fast - Strict| <= 16 * n * eps * sum_k |A(i,k) * B(k,j)|
//
// (n = inner dimension, eps = 2^-52), and a Fast repair must agree with
// the Strict repair on status and objective norm to 1e-6 relative. Any
// violation exits non-zero. In full mode (no --smoke) the bench
// additionally gates throughput: on a SIMD backend the Fast tier must
// reach >= 1.5x the Strict GEMM GFLOP/s; on the portable fallback it
// must not regress below ~1x (0.95 floor for timer noise).
//
// Emits BENCH_kernel_backends.json: per-(shape, threads) GFLOP/s for
// both tiers, max |delta| and its share of the bound, and per-tier
// repair seconds. Run with --smoke (CI) for small shapes and the
// epsilon gates only.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "api/RepairEngine.h"
#include "linalg/Kernels.h"
#include "linalg/Matrix.h"
#include "nn/ActivationLayers.h"
#include "nn/LinearLayers.h"
#include "support/Parallel.h"
#include "support/Rng.h"
#include "support/Table.h"
#include "support/Timer.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace prdnn;
using namespace prdnn::bench;

namespace {

constexpr double kEps = 2.220446049250313e-16; // 2^-52
constexpr double kBoundFactor = 16.0;

Matrix randomMatrix(Rng &R, int Rows, int Cols, double Scale = 1.0) {
  Matrix M(Rows, Cols);
  for (int I = 0; I < Rows; ++I)
    for (int J = 0; J < Cols; ++J)
      M(I, J) = Scale * R.normal();
  return M;
}

Vector randomVector(Rng &R, int Size, double Scale = 1.0) {
  Vector V(Size);
  for (int I = 0; I < Size; ++I)
    V[I] = Scale * R.normal();
  return V;
}

Matrix absMatrix(const Matrix &M) {
  Matrix A(M.rows(), M.cols());
  for (int I = 0; I < M.rows(); ++I)
    for (int J = 0; J < M.cols(); ++J)
      A(I, J) = std::fabs(M(I, J));
  return A;
}

/// Checks the elementwise epsilon contract of \p Fast against \p Strict
/// with the per-element magnitude envelope \p AbsRef (= |A|*|B|, the
/// sum of absolute products each output element accumulated) and inner
/// dimension \p N. Returns the worst |delta| and its share of the
/// bound; Ok is false when any element exceeds its bound (or a NaN
/// appears on one side only).
struct EpsilonCheck {
  bool Ok = true;
  double MaxDiff = 0.0;
  double MaxBoundShare = 0.0;
};

EpsilonCheck checkEpsilon(const Matrix &Strict, const Matrix &Fast,
                          const Matrix &AbsRef, int N) {
  EpsilonCheck Out;
  for (int I = 0; I < Strict.rows(); ++I)
    for (int J = 0; J < Strict.cols(); ++J) {
      double S = Strict(I, J), F = Fast(I, J);
      if (std::isnan(S) || std::isnan(F)) {
        // NaN must reproduce: a tier may not invent or lose one.
        if (std::isnan(S) != std::isnan(F))
          Out.Ok = false;
        continue;
      }
      double Diff = std::fabs(F - S);
      double Bound = kBoundFactor * static_cast<double>(N) * kEps *
                     AbsRef(I, J);
      Out.MaxDiff = std::max(Out.MaxDiff, Diff);
      if (Bound > 0.0)
        Out.MaxBoundShare = std::max(Out.MaxBoundShare, Diff / Bound);
      if (Diff > Bound)
        Out.Ok = false;
    }
  return Out;
}

double timedMultiply(const Matrix &A, const Matrix &B,
                     linalg::Determinism Tier, int Repeats, Matrix *Out) {
  double Best = 1e300;
  for (int Rep = 0; Rep < Repeats; ++Rep) {
    WallTimer Timer;
    Matrix C = A.multiply(B, Tier);
    Best = std::min(Best, Timer.seconds());
    if (Out)
      *Out = std::move(C);
  }
  return Best;
}

double timedMultiplyT(const Matrix &A, const Matrix &B,
                      linalg::Determinism Tier, int Repeats, Matrix *Out) {
  double Best = 1e300;
  for (int Rep = 0; Rep < Repeats; ++Rep) {
    WallTimer Timer;
    Matrix C = A.multiplyTransposed(B, Tier);
    Best = std::min(Best, Timer.seconds());
    if (Out)
      *Out = std::move(C);
  }
  return Best;
}

Network makeReluClassifier(Rng &R, int InputSize, int Hidden, int Classes) {
  Network Net;
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      randomMatrix(R, Hidden, InputSize, 0.9), randomVector(R, Hidden, 0.3)));
  Net.addLayer(std::make_unique<ReLULayer>(Hidden));
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      randomMatrix(R, Hidden, Hidden, 0.9), randomVector(R, Hidden, 0.3)));
  Net.addLayer(std::make_unique<ReLULayer>(Hidden));
  Net.addLayer(std::make_unique<FullyConnectedLayer>(
      randomMatrix(R, Classes, Hidden, 0.9), randomVector(R, Classes, 0.3)));
  return Net;
}

double gflops(double Seconds, int M, int N, int K) {
  if (Seconds <= 0.0)
    return 0.0;
  return 2.0 * M * N * K / Seconds / 1e9;
}

} // namespace

int main(int argc, char **argv) {
  bool Smoke = false;
  for (int I = 1; I < argc; ++I)
    Smoke = Smoke || std::strcmp(argv[I], "--smoke") == 0;

  const int Repeats = Smoke ? 2 : 4;
  std::vector<int> Sizes = Smoke ? std::vector<int>{128}
                                 : std::vector<int>{192, 384};
  int SavedThreads = globalThreadCount();

  std::printf("=== Kernel backends: Strict vs Fast determinism tiers%s ===\n",
              Smoke ? " (smoke)" : "");
  std::printf("resolved backend: %s (%s); hardware concurrency: %u\n\n",
              linalg::kernelBackendName(),
              linalg::kernelBackendIsSimd() ? "simd" : "scalar",
              std::thread::hardware_concurrency());

  BenchJson Json("kernel_backends");
  TablePrinter Table({"kernel", "n", "threads", "strict GF/s", "fast GF/s",
                      "fast/strict", "max |d|", "bound share"});

  bool EpsilonOk = true;
  // Single-thread throughput ratio at the largest size, per kernel -
  // what the full-mode speedup gate judges.
  double GateRatioMultiply = 0.0;
  double GateRatioMultiplyT = 0.0;

  Rng R(90210);
  for (int N : Sizes) {
    Matrix A = randomMatrix(R, N, N);
    Matrix B = randomMatrix(R, N, N);
    // Magnitude envelopes for the epsilon bound: |A|*|B| under Strict.
    Matrix AbsMul = absMatrix(A).multiply(absMatrix(B),
                                          linalg::Determinism::Strict);
    Matrix AbsMulT = absMatrix(A).multiplyTransposed(
        absMatrix(B), linalg::Determinism::Strict);

    for (int Threads : {1, 4, 8}) {
      setGlobalThreadCount(Threads);
      Matrix StrictMul(0, 0), FastMul(0, 0), StrictMulT(0, 0), FastMulT(0, 0);
      double StrictMulS =
          timedMultiply(A, B, linalg::Determinism::Strict, Repeats,
                        &StrictMul);
      double FastMulS = timedMultiply(A, B, linalg::Determinism::Fast,
                                      Repeats, &FastMul);
      double StrictMulTS = timedMultiplyT(A, B, linalg::Determinism::Strict,
                                          Repeats, &StrictMulT);
      double FastMulTS = timedMultiplyT(A, B, linalg::Determinism::Fast,
                                        Repeats, &FastMulT);

      EpsilonCheck MulCheck = checkEpsilon(StrictMul, FastMul, AbsMul, N);
      EpsilonCheck MulTCheck = checkEpsilon(StrictMulT, FastMulT, AbsMulT, N);
      EpsilonOk = EpsilonOk && MulCheck.Ok && MulTCheck.Ok;

      double MulRatio =
          StrictMulS > 0.0 && FastMulS > 0.0 ? StrictMulS / FastMulS : 0.0;
      double MulTRatio = StrictMulTS > 0.0 && FastMulTS > 0.0
                             ? StrictMulTS / FastMulTS
                             : 0.0;
      if (Threads == 1 && N == Sizes.back()) {
        GateRatioMultiply = MulRatio;
        GateRatioMultiplyT = MulTRatio;
      }

      for (int Which = 0; Which < 2; ++Which) {
        const char *Kernel = Which == 0 ? "multiply" : "multiply_transposed";
        double StrictS = Which == 0 ? StrictMulS : StrictMulTS;
        double FastS = Which == 0 ? FastMulS : FastMulTS;
        const EpsilonCheck &Check = Which == 0 ? MulCheck : MulTCheck;
        Json.beginRecord();
        Json.add("kernel", Kernel);
        Json.add("n", N);
        Json.add("threads", Threads);
        Json.add("smoke", Smoke ? 1 : 0);
        Json.add("tier_strict_seconds", StrictS);
        Json.add("tier_fast_seconds", FastS);
        Json.add("tier_strict_gflops", gflops(StrictS, N, N, N));
        Json.add("tier_fast_gflops", gflops(FastS, N, N, N));
        Json.add("fast_over_strict", StrictS > 0.0 ? StrictS / FastS : 0.0);
        Json.add("max_abs_delta", Check.MaxDiff);
        Json.add("bound_share", Check.MaxBoundShare);
        Json.add("epsilon_ok", Check.Ok ? 1 : 0);
        Table.addRow({Kernel, std::to_string(N), std::to_string(Threads),
                      formatDouble(gflops(StrictS, N, N, N), 2),
                      formatDouble(gflops(FastS, N, N, N), 2),
                      formatDouble(Which == 0 ? MulRatio : MulTRatio, 2),
                      formatDouble(Check.MaxDiff, 3),
                      formatDouble(Check.MaxBoundShare, 3)});
      }
    }
  }
  setGlobalThreadCount(SavedThreads);

  // --- End-to-end: the same repair under each tier --------------------------
  // Status and objective norm must agree to epsilon; Delta vectors may
  // differ (Fast simplex can pivot differently between equal-objective
  // vertices), so the solution-level contract is what gates.
  Rng WorkloadRng(777);
  const int Hidden = Smoke ? 24 : 32;
  const int Points = Smoke ? 12 : 24;
  const int Classes = 4;
  Network Net = makeReluClassifier(WorkloadRng, 6, Hidden, Classes);
  PointSpec Spec;
  for (int I = 0; I < Points; ++I)
    Spec.push_back({randomVector(WorkloadRng, 6, 1.5),
                    classificationConstraint(
                        Classes, WorkloadRng.uniformInt(0, Classes - 1), 1e-3),
                    std::nullopt});
  int Layer = Net.parameterizedLayerIndices().back();

  bool RepairOk = true;
  double StrictL1 = 0.0;
  for (int Threads : {1, 4, 8}) {
    setGlobalThreadCount(Threads);
    double Seconds[2] = {0.0, 0.0};
    RepairStatus Statuses[2] = {RepairStatus::SolverFailure,
                                RepairStatus::SolverFailure};
    double Norms[2] = {0.0, 0.0};
    for (int TierIdx = 0; TierIdx < 2; ++TierIdx) {
      linalg::Determinism Tier = TierIdx == 0 ? linalg::Determinism::Strict
                                              : linalg::Determinism::Fast;
      RepairOptions Options;
      Options.Determinism = Tier;
      WallTimer Timer;
      RepairResult Result = repairPoints(Net, Layer, Spec, Options);
      Seconds[TierIdx] = Timer.seconds();
      Statuses[TierIdx] = Result.Status;
      Norms[TierIdx] = Result.DeltaL1;
      if (Result.Stats.Determinism != Tier)
        RepairOk = false; // the tier must be stamped through the stack
      if (Result.Status == RepairStatus::Success &&
          Result.Stats.VerifiedViolation > 1e-6)
        RepairOk = false;
    }
    if (Threads == 1)
      StrictL1 = Norms[0];
    if (Statuses[0] != Statuses[1])
      RepairOk = false;
    double NormTol = 1e-6 * std::max(1.0, std::fabs(Norms[0]));
    if (std::fabs(Norms[0] - Norms[1]) > NormTol)
      RepairOk = false;

    Json.beginRecord();
    Json.add("kernel", "repair_end_to_end");
    Json.add("threads", Threads);
    Json.add("smoke", Smoke ? 1 : 0);
    Json.add("spec_points", Points);
    Json.add("tier_strict_seconds", Seconds[0]);
    Json.add("tier_fast_seconds", Seconds[1]);
    Json.add("strict_delta_l1", Norms[0]);
    Json.add("fast_delta_l1", Norms[1]);
    Json.add("status_match", Statuses[0] == Statuses[1] ? 1 : 0);
    Table.addRow({"repair", std::to_string(Points) + "pt",
                  std::to_string(Threads), formatDouble(Seconds[0], 3),
                  formatDouble(Seconds[1], 3),
                  formatDouble(Seconds[1] > 0.0 ? Seconds[0] / Seconds[1]
                                                : 0.0,
                               2),
                  formatDouble(std::fabs(Norms[0] - Norms[1]), 3), "-"});
  }
  setGlobalThreadCount(SavedThreads);
  (void)StrictL1;

  // --- Gates ----------------------------------------------------------------
  bool SpeedOk = true;
  if (!Smoke) {
    double Gate = linalg::kernelBackendIsSimd() ? 1.5 : 0.95;
    SpeedOk = GateRatioMultiply >= Gate && GateRatioMultiplyT >= Gate;
    std::printf("\nspeedup gate (%s backend, 1 thread, n=%d): multiply "
                "%.2fx, multiply_transposed %.2fx, required >= %.2fx: %s\n",
                linalg::kernelBackendName(), Sizes.back(), GateRatioMultiply,
                GateRatioMultiplyT, Gate, SpeedOk ? "PASS" : "FAIL");
  }

  Json.beginRecord();
  Json.add("kernel", "summary");
  Json.add("smoke", Smoke ? 1 : 0);
  Json.add("epsilon_ok", EpsilonOk ? 1 : 0);
  Json.add("repair_ok", RepairOk ? 1 : 0);
  Json.add("speed_ok", SpeedOk ? 1 : 0);
  Json.add("gate_ratio_multiply", GateRatioMultiply);
  Json.add("gate_ratio_multiply_transposed", GateRatioMultiplyT);

  Table.print(std::cout);
  std::string JsonFile = Json.write();
  if (!JsonFile.empty())
    std::printf("\nwrote %s\n", JsonFile.c_str());

  bool Ok = EpsilonOk && RepairOk && SpeedOk;
  std::printf("%s\n",
              Ok ? "bench_kernel_backends: Fast tier within the epsilon "
                   "contract of Strict"
                 : "bench_kernel_backends: TIER CONTRACT CHECK FAILED");
  return Ok ? 0 : 1;
}
