//===- bench/BenchUtil.h - shared workloads for the bench harness -*- C++ -*-===//
///
/// \file
/// Builders for the three evaluation workloads (§7) shared by the bench
/// binaries, so that every table/figure binary sees the same trained
/// networks and datasets (all seeded and deterministic).
///
//===----------------------------------------------------------------------===//

#ifndef PRDNN_BENCH_BENCHUTIL_H
#define PRDNN_BENCH_BENCHUTIL_H

#include "core/PolytopeRepair.h"
#include "data/Acas.h"
#include "data/Corruptions.h"
#include "data/Digits.h"
#include "data/ShapeWorld.h"
#include "obs/Metrics.h"
#include "train/FineTune.h"

#include <cstdint>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace prdnn {
namespace bench {

/// Task 1 (§7.1): conv ShapeWorld classifier + NAE-style repair pool.
struct Task1Workload {
  Network Net;
  /// Drawdown set: held-out in-distribution validation images.
  Dataset Validation;
  /// Repair pool: misclassified natural-adversarial images.
  Dataset Adversarials;
  /// Non-buggy anchor pool (correctly classified, disjoint from the
  /// validation set): §7 notes the repair sets "included a number of
  /// non-buggy points" - this is what keeps minimal repairs local.
  Dataset Anchors;
  double ValidationAccuracy = 0.0;
  double AdversarialAccuracy = 0.0;
};

Task1Workload makeTask1Workload(int AdversarialCount);

/// Point spec asking for correct classification of the first \p Count
/// adversarials plus \p AnchorCount non-buggy anchor points.
PointSpec task1Spec(const Task1Workload &W, int Count,
                    int AnchorCount = 100);

/// Task 2 (§7.2): digit classifier + clean->fog repair lines.
struct Task2Workload {
  Network Net;
  struct Line {
    Vector Clean, Fogged;
    int Label;
  };
  std::vector<Line> Lines;
  /// Drawdown set: clean test digits.
  Dataset CleanTest;
  /// Generalization set: independently fogged test digits.
  Dataset FogTest;
  double CleanAccuracy = 0.0;
  double FogAccuracy = 0.0;
  double LineEndpointAccuracy = 0.0;
};

Task2Workload makeTask2Workload(int MaxLines);

/// Polytope spec over the first \p NumLines lines.
PolytopeSpec task2Spec(const Task2Workload &W, int NumLines, double Margin);

/// Uniform samples along the first \p NumLines lines (the finite stand-
/// in the FT/MFT baselines train on; the paper samples as many points
/// as the PR key points).
Dataset task2Samples(const Task2Workload &W, int NumLines, int Count,
                     Rng &R);

/// Task 3 (§7.3): ACAS network + violating safe-region slices.
struct Task3Workload {
  Network Net;
  /// 2-D slices (rectangles) of the safe region containing violations.
  std::vector<std::vector<Vector>> RepairSlices;
  /// Counterexample points from *other* slices (generalization set).
  std::vector<Vector> Generalization;
  /// Points the buggy network handles correctly (drawdown set), with
  /// ground-truth policy labels.
  Dataset Drawdown;
  double PolicyAccuracy = 0.0;
};

Task3Workload makeTask3Workload(int NumRepairSlices, int NumOtherSlices,
                                int SetSize);

/// The phi_8-style point spec over the repair slices' key points, with
/// the disjunction strengthened per key point to the buggy network's
/// preferred safe advisory (§7.3). Outputs transform time / region
/// counts like keyPointSpec. \p FtSamples, when non-null, receives the
/// matching labeled dataset the FT/MFT baselines train on.
PointSpec task3Spec(const Task3Workload &W, double *LinRegionsSeconds,
                    int *NumRegions, Dataset *FtSamples = nullptr);

/// Machine-readable benchmark output: accumulates named records of
/// key/value metrics and writes them as BENCH_<name>.json next to the
/// binary, so successive PRs can track the performance trajectory
/// (points/sec, Jacobian/LP seconds, thread count, ...) without
/// scraping the human-readable tables. Every file is stamped with the
/// host's hardware_concurrency, the git commit the tree was configured
/// at, the CMake build type ("unknown" when not built through the
/// repo's CMakeLists), and the resolved Fast-tier kernel backend
/// (linalg::kernelBackendName() - "avx2_fma" or "portable" -
/// plus a 0/1 SIMD flag), so archived artifacts stay attributable and
/// numbers from SIMD and portable hosts are never conflated. Schema:
///
///   { "bench": "<name>", "git_sha": "<sha|unknown>",
///     "build_type": "<Release|...|unknown>", "hardware_concurrency": n,
///     "kernel_backend": "<name>", "kernel_backend_simd": 0|1,
///     "records": [ {"k": v | "s", ...}, ... ] }
class BenchJson {
public:
  explicit BenchJson(std::string BenchName) : Name(std::move(BenchName)) {}

  /// Starts a new record (one measured configuration).
  void beginRecord();

  void add(const std::string &Key, double Value);
  void add(const std::string &Key, int Value);
  void add(const std::string &Key, const std::string &Value);

  /// Writes BENCH_<name>.json into the working directory and returns
  /// the file name (empty on I/O failure).
  std::string write() const;

private:
  using Value = std::variant<double, int, std::string>;
  std::string Name;
  std::vector<std::vector<std::pair<std::string, Value>>> Records;
};

/// Nearest-rank percentile of \p Values at \p P in [0, 1] (sorts a
/// copy; 0 on empty input): index = min(n - 1, floor(P * n)). For
/// small exact sample sets (a dozen engine jobs); the fleet benches
/// summarize through obs::Histogram instead, so their p50/p95/p99 are
/// the same numbers a live scrape of the serving registry reports.
double percentile(std::vector<double> Values, double P);

/// Adds the p50/p95/p99 of \p Latency (an obs::Histogram snapshot over
/// defaultLatencyBuckets()) to \p Json under "p50_latency_seconds" /
/// "p95..." / "p99..." - the shared key schema of the latency benches.
void addLatencyRecord(BenchJson &Json, const obs::HistogramSnapshot &Latency);

/// Streams \p Latency into a multi-process stats file: one
/// "lat_bucket <count>" line per bucket (in edge order, overflow
/// last) plus "lat_sum <seconds>". The inverse of
/// latencySnapshotFromCounts - the fleet benches' children report
/// bucket counts, not raw samples, so a parent merge is exact and
/// O(buckets) regardless of job count.
void writeLatencyHistogram(std::ostream &Os,
                           const obs::HistogramSnapshot &Latency);

/// Rebuilds a snapshot over defaultLatencyBuckets() from parsed
/// "lat_bucket"/"lat_sum" values. A count vector of the wrong length
/// (torn stats file) yields an all-zero snapshot, which the benches'
/// jobs-served cross-checks then flag.
obs::HistogramSnapshot
latencySnapshotFromCounts(const std::vector<std::uint64_t> &Counts,
                          double Sum);

/// Fraction of \p Points whose advisory under \p Classify is safe.
template <typename ClassifyT>
double safeFraction(const std::vector<Vector> &Points, ClassifyT Classify) {
  if (Points.empty())
    return 0.0;
  int Safe = 0;
  for (const Vector &X : Points)
    if (data::acasSafeAdvisory(Classify(X)))
      ++Safe;
  return static_cast<double>(Safe) / static_cast<double>(Points.size());
}

} // namespace bench
} // namespace prdnn

#endif // PRDNN_BENCH_BENCHUTIL_H
